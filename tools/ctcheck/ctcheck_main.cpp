// ctgrind-style constant-time verification harness (tools/ctcheck).
//
// Drives the secret-domain hot paths — ChaCha20, Schnorr signing, share
// evaluation, ct_equal — plus a deliberately leaky negative control, under
// two interchangeable checkers:
//
//   --mode poison   Arms the DKG_CTCHECK taint plumbing (crypto/secret.hpp):
//                   secret buffers are marked undefined via valgrind client
//                   requests (or MSan), so running this binary under
//                   `valgrind --error-exitcode=99` flags ANY secret-dependent
//                   branch or table index anywhere in the op's call graph.
//                   Without a checker attached the poison is inert and the
//                   run is a smoke test.
//
//   --mode timing   A dudect-style statistical check that needs no external
//                   tooling: each op is timed over two interleaved input
//                   classes (fixed secret vs fresh random secret), outliers
//                   are cropped at the 99th percentile, and Welch's t-test
//                   compares the class means. |t| above the threshold means
//                   the running time depends on the secret value. The
//                   `leaky` op is the negative control proving the detector
//                   actually fires (its ctest entry is WILL_FAIL).
//
// Ops: chacha20 | schnorr_sign | share_eval | ct_equal | ec_ladder | leaky
//
// Exit codes: 0 pass, 1 leak detected (timing), 2 usage error. Poison-mode
// failures surface as the checker's own exit code.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/element.hpp"
#include "crypto/group.hpp"
#include "crypto/polynomial.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secret.hpp"

namespace {

using namespace dkg;
using namespace dkg::crypto;

volatile std::uint8_t g_sink;  // data-flow sink: consumes results branch-free

std::uint64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// One measurable operation. prepare(class_b) refreshes the secret input
/// (outside the timed region); run() executes `reps` iterations of the op.
struct Op {
  std::function<void(bool class_b, Drbg& rng)> prepare;
  std::function<void()> run;
  int reps;  // inner repetitions per timed sample (lifts ns ops above timer noise)
};

Op make_chacha20() {
  auto key = std::make_shared<std::array<std::uint8_t, 32>>();
  auto op = Op{};
  op.prepare = [key](bool class_b, Drbg& rng) {
    if (class_b) {
      rng.fill(key->data(), key->size());
    } else {
      key->fill(0x42);
    }
    ct_poison(key->data(), key->size());
  };
  op.run = [key] {
    std::array<std::uint8_t, 12> nonce{};
    std::array<std::uint8_t, 64> block = chacha20_block(*key, nonce, 1);
    ct_unpoison(block.data(), block.size());
    g_sink = g_sink ^ block[0];
  };
  op.reps = 64;
  return op;
}

Op make_schnorr_sign() {
  const Group& grp = Group::tiny256();
  auto kp = std::make_shared<KeyPair>();
  Bytes msg = {'c', 't', 'c', 'h', 'e', 'c', 'k'};
  auto op = Op{};
  op.prepare = [kp, &grp](bool class_b, Drbg& rng) {
    if (class_b) {
      *kp = schnorr_keygen(grp, rng);
    } else {
      Drbg fixed(7);
      *kp = schnorr_keygen(grp, fixed);
    }
  };
  op.run = [kp, msg] {
    Signature sig = schnorr_sign(*kp, msg);
    g_sink = g_sink ^ sig.s.to_bytes()[0];
  };
  op.reps = 1;
  return op;
}

Op make_share_eval() {
  const Group& grp = Group::tiny256();
  auto poly = std::make_shared<std::unique_ptr<Polynomial>>();
  auto op = Op{};
  op.prepare = [poly, &grp](bool class_b, Drbg& rng) {
    if (class_b) {
      *poly = std::make_unique<Polynomial>(Polynomial::random(grp, 8, rng));
    } else {
      Drbg fixed(11);
      *poly = std::make_unique<Polynomial>(Polynomial::random(grp, 8, fixed));
    }
  };
  op.run = [poly] {
    SecretScalar y = (*poly)->eval_at(7);  // result stays secret; wiped on drop
    g_sink = g_sink ^ static_cast<std::uint8_t>(y.empty());
  };
  op.reps = 4;
  return op;
}

Op make_ct_equal() {
  auto a = std::make_shared<Bytes>(64, 0);
  auto b = std::make_shared<Bytes>(64, 0);
  auto op = Op{};
  op.prepare = [a, b](bool class_b, Drbg& rng) {
    rng.fill(a->data(), a->size());
    *b = *a;
    // Class A: equal. Class B: differ in the FIRST byte — the classic
    // early-exit comparison leak shows up as a large timing delta here.
    if (class_b) (*b)[0] ^= 0xff;
    ct_poison(a->data(), a->size());
    ct_poison(b->data(), b->size());
  };
  op.run = [a, b] {
    bool eq = ct_equal(*a, *b);
    g_sink = g_sink ^ static_cast<std::uint8_t>(eq);  // data flow, no branch
  };
  op.reps = 256;
  return op;
}

Op make_ec_ladder() {
  const Group& grp = Group::ec256();
  auto sec = std::make_shared<std::unique_ptr<SecretScalar>>();
  auto op = Op{};
  op.prepare = [sec, &grp](bool class_b, Drbg& rng) {
    if (class_b) {
      *sec = std::make_unique<SecretScalar>(SecretScalar::random(grp, rng));
    } else {
      Drbg fixed(13);
      *sec = std::make_unique<SecretScalar>(SecretScalar::random(grp, fixed));
    }
  };
  op.run = [sec] {
    // g^x through ec256::scalar_mul_ct — the fixed-window secp256k1 ladder.
    // SecretScalar limbs carry the taint, so poison mode flags any
    // value-dependent branch or table index inside the ladder; timing mode
    // compares a pinned exponent against fresh ones.
    Element e = (*sec)->commit_to();
    g_sink = g_sink ^ e.to_bytes()[0];
  };
  op.reps = 1;
  return op;
}

/// Negative control: branches on the secret AND does secret-dependent work,
/// so the poison checker reports a conditional jump on tainted data and the
/// timing checker sees a huge class separation.
Op make_leaky() {
  auto secret = std::make_shared<Bytes>(32, 0);
  auto op = Op{};
  op.prepare = [secret](bool class_b, Drbg& rng) {
    if (class_b) {
      rng.fill(secret->data(), secret->size());
      (*secret)[0] |= 1;  // ensure the slow path is taken for class B
    } else {
      std::fill(secret->begin(), secret->end(), 0);
    }
    ct_poison(secret->data(), secret->size());
  };
  op.run = [secret] {
    std::uint32_t acc = 1;
    if ((*secret)[0] & 1) {  // secret-dependent branch (the bug ctcheck exists to catch)
      for (int i = 0; i < 20000; ++i) acc = acc * 1664525u + 1013904223u;
    }
    g_sink = g_sink ^ static_cast<std::uint8_t>(acc);
  };
  op.reps = 1;
  return op;
}

Op make_op(const std::string& name) {
  if (name == "chacha20") return make_chacha20();
  if (name == "schnorr_sign") return make_schnorr_sign();
  if (name == "share_eval") return make_share_eval();
  if (name == "ct_equal") return make_ct_equal();
  if (name == "ec_ladder") return make_ec_ladder();
  if (name == "leaky") return make_leaky();
  std::fprintf(stderr, "ctcheck: unknown op '%s'\n", name.c_str());
  std::exit(2);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Welch's t statistic over the two cropped sample sets.
double welch_t(const std::vector<double>& x, const std::vector<double>& y) {
  auto stats = [](const std::vector<double>& s) {
    double m = 0;
    for (double v : s) m += v;
    m /= static_cast<double>(s.size());
    double var = 0;
    for (double v : s) var += (v - m) * (v - m);
    var /= static_cast<double>(s.size() - 1);
    return std::pair<double, double>(m, var);
  };
  auto [mx, vx] = stats(x);
  auto [my, vy] = stats(y);
  double denom = std::sqrt(vx / static_cast<double>(x.size()) +
                           vy / static_cast<double>(y.size()));
  if (denom == 0.0) return 0.0;
  return (mx - my) / denom;
}

int run_timing(Op& op, int samples, double threshold) {
  Drbg rng(20090612);
  Drbg order_rng(577);
  std::vector<double> cls[2];
  cls[0].reserve(static_cast<std::size_t>(samples));
  cls[1].reserve(static_cast<std::size_t>(samples));
  // Warmup: fault in code paths and caches for both classes.
  for (int c = 0; c < 2; ++c) {
    op.prepare(c == 1, rng);
    for (int r = 0; r < op.reps; ++r) op.run();
  }
  while (cls[0].size() < static_cast<std::size_t>(samples) ||
         cls[1].size() < static_cast<std::size_t>(samples)) {
    // Interleave classes in DRBG order so drift affects both equally.
    std::uint8_t coin;
    order_rng.fill(&coin, 1);
    int c = coin & 1;
    if (cls[c].size() >= static_cast<std::size_t>(samples)) c ^= 1;
    op.prepare(c == 1, rng);
    std::uint64_t t0 = now_ns();
    for (int r = 0; r < op.reps; ++r) op.run();
    cls[c].push_back(static_cast<double>(now_ns() - t0));
  }
  // Crop the common tail (scheduler blips) at the pooled 99th percentile.
  std::vector<double> pooled = cls[0];
  pooled.insert(pooled.end(), cls[1].begin(), cls[1].end());
  double cut = percentile(pooled, 0.99);
  std::vector<double> a, b;
  for (double v : cls[0])
    if (v <= cut) a.push_back(v);
  for (double v : cls[1])
    if (v <= cut) b.push_back(v);
  if (a.size() < 8 || b.size() < 8) {
    std::fprintf(stderr, "ctcheck: too few samples after cropping\n");
    return 2;
  }
  double t = welch_t(a, b);
  std::printf("ctcheck: timing t=%.2f (threshold %.1f, %zu/%zu samples)\n", t, threshold,
              a.size(), b.size());
  if (std::fabs(t) > threshold) {
    std::printf("ctcheck: LEAK — running time depends on the secret class\n");
    return 1;
  }
  std::printf("ctcheck: PASS — no secret-dependent timing detected\n");
  return 0;
}

int run_poison(Op& op, int samples) {
  // Under valgrind/MSan with a DKG_CTCHECK build, any secret-dependent
  // branch inside op.run aborts via the checker; standalone this is a smoke
  // run of the same code path.
  Drbg rng(20090612);
  for (int i = 0; i < samples; ++i) {
    op.prepare(i % 2 == 1, rng);
    op.run();
  }
  std::printf("ctcheck: poison run complete (checker reports leaks, if any)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string opname, mode = "timing";
  int samples = 0;
  double threshold = 10.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ctcheck: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--op") {
      opname = next();
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--samples") {
      samples = std::stoi(next());
    } else if (arg == "--threshold") {
      threshold = std::stod(next());
    } else {
      std::fprintf(stderr,
                   "usage: dkg_ctcheck --op <chacha20|schnorr_sign|share_eval|ct_equal|ec_ladder|leaky>"
                   " [--mode timing|poison] [--samples N] [--threshold T]\n");
      return 2;
    }
  }
  if (opname.empty()) {
    std::fprintf(stderr, "ctcheck: --op is required\n");
    return 2;
  }
  Op op = make_op(opname);
  if (mode == "timing") {
    if (samples == 0) samples = 1000;
    return run_timing(op, samples, threshold);
  }
  if (mode == "poison") {
    if (samples == 0) samples = 8;
    return run_poison(op, samples);
  }
  std::fprintf(stderr, "ctcheck: unknown mode '%s'\n", mode.c_str());
  return 2;
}
