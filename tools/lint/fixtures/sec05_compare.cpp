// SEC05 fixture: adversary-timed comparisons must go through ct_equal.
// Not compiled.
#include <cstring>

#include "common/bytes.hpp"

namespace dkg::fixture {

bool check_digest(const Bytes& a, const Bytes& b, const Bytes& expected) {
  if (std::memcmp(a.data(), b.data(), a.size()) == 0) return true;  // EXPECT-SEC05
  if (bytes_equal(a, b)) return true;                               // EXPECT-SEC05
  return ct_equal(a, expected);
}

struct Commitment {
  Bytes digest() const;
};

bool check_commitment(const Commitment& c, const Bytes& claimed) {
  if (claimed == c.digest()) return true;  // EXPECT-SEC05
  if (c.digest() != claimed) return false;  // EXPECT-SEC05
  return ct_equal(claimed, c.digest());
}

bool check_point_encoding(const Bytes& point_a, const Bytes& point_b) {
  // ec256: compressed 33-byte point encodings are adversary-timed material
  // on the verify path, same as digests — memcmp leaks the first differing
  // byte's position.
  if (std::memcmp(point_a.data(), point_b.data(), 33) == 0) return true;  // EXPECT-SEC05
  return ct_equal(point_a, point_b);
}

}  // namespace dkg::fixture
