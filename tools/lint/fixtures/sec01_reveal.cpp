// SEC01 fixture: declassification sites with and without justification.
// Not compiled — consumed by `secret_lint.py --self-test`.
#include "crypto/secret.hpp"

namespace dkg::fixture {

void leaky(const crypto::SecretScalar& share, crypto::Scalar& out) {
  out = share.reveal();  // EXPECT-SEC01
}

void leaky_bytes(const crypto::SecretScalar& share, Bytes& out) {
  out = share.reveal_bytes();  // EXPECT-SEC01
}

void justified_same_line(const crypto::SecretScalar& share, crypto::Scalar& out) {
  out = share.reveal();  // reveal-ok: fixture — published by protocol design.
}

void justified_above(const crypto::SecretScalar& share, crypto::Scalar& out) {
  // reveal-ok: fixture — the value is addressed to its owner.
  out = share.reveal();
}

void justified_too_far(const crypto::SecretScalar& share, crypto::Scalar& out) {
  // reveal-ok: fixture — this comment is OUT OF the 3-line window below,
  // so the reveal must still be flagged: drive-by justifications that
  // drift away from their call site stop counting.
  int filler_a = 0;
  int filler_b = filler_a;
  (void)filler_b;
  out = share.reveal();  // EXPECT-SEC01
}

}  // namespace dkg::fixture
