// SEC01 fixture: declassification sites with and without justification.
// Not compiled — consumed by `secret_lint.py --self-test`.
#include "crypto/secret.hpp"

namespace dkg::fixture {

void leaky(const crypto::SecretScalar& share, crypto::Scalar& out) {
  out = share.reveal();  // EXPECT-SEC01
}

void leaky_bytes(const crypto::SecretScalar& share, Bytes& out) {
  out = share.reveal_bytes();  // EXPECT-SEC01
}

void justified_same_line(const crypto::SecretScalar& share, crypto::Scalar& out) {
  out = share.reveal();  // reveal-ok: fixture — published by protocol design.
}

void justified_above(const crypto::SecretScalar& share, crypto::Scalar& out) {
  // reveal-ok: fixture — the value is addressed to its owner.
  out = share.reveal();
}

// --- ec256 backend cases ---------------------------------------------------
// SecretScalar is backend-agnostic, so the rule needs no curve knowledge;
// these pin the EC shapes: declassifying a share to feed the variable-time
// ec256::scalar_mul is exactly the bug commit_to()'s constant-time ladder
// exists to prevent, and staying in the taint domain needs no marker.

void ladder_bypass(const crypto::SecretScalar& ec_share, crypto::Scalar& out) {
  out = ec_share.reveal();  // EXPECT-SEC01
}

void ladder_kept_secret(const crypto::SecretScalar& ec_share, crypto::Element& out) {
  out = ec_share.commit_to();  // constant-time ladder; nothing declassified
}

void justified_too_far(const crypto::SecretScalar& share, crypto::Scalar& out) {
  // reveal-ok: fixture — this comment is OUT OF the 3-line window below,
  // so the reveal must still be flagged: drive-by justifications that
  // drift away from their call site stop counting.
  int filler_a = 0;
  int filler_b = filler_a;
  (void)filler_b;
  out = share.reveal();  // EXPECT-SEC01
}

}  // namespace dkg::fixture
