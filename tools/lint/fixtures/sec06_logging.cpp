// SEC06 fixture: taint types must never reach streams or hex dumps.
// Not compiled.
#include <iostream>

#include "crypto/secret.hpp"

namespace dkg::fixture {

void debug_dump(const crypto::SecretScalar& share, std::ostream& os) {
  os << "share=" << crypto::SecretScalar(share).group().name();  // EXPECT-SEC06
}

void dump_typed(std::ostream& os) {
  os << sizeof(crypto::SecretScalar);  // EXPECT-SEC06
}

std::string hex_of_seed(const crypto::SecretBytes& seed) {  // declaration alone is fine
  return to_hex(crypto::SecretBytes(seed).reveal());  // EXPECT-SEC01 EXPECT-SEC06
}

std::string hex_of_curve_share(const crypto::SecretScalar& ec_share) {
  // reveal-ok: fixture — justified declassification so only the SEC06 half
  // fires: a curve-backed share's limbs are as dumpable-looking (and as
  // secret) as a mod-p one's.
  return to_hex(crypto::SecretScalar(ec_share).reveal_bytes());  // EXPECT-SEC06
}

void fine(std::ostream& os, const Bytes& public_digest) {
  os << to_hex(public_digest);
}

}  // namespace dkg::fixture
