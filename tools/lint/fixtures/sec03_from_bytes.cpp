// SEC03 fixture: wire-facing code must deserialize commitments through the
// _checked/_interned variants. Not compiled.
#include "crypto/feldman.hpp"
#include "crypto/pedersen.hpp"

namespace dkg::fixture {

void decode_wire(const crypto::Group& grp, const Bytes& b, std::size_t t) {
  auto m1 = crypto::FeldmanMatrix::from_bytes(grp, b, t);      // EXPECT-SEC03
  auto v1 = crypto::FeldmanVector::from_bytes(grp, b, t);      // EXPECT-SEC03
  auto p1 = crypto::PedersenMatrix::from_bytes(grp, b, t, t);  // EXPECT-SEC03

  auto m2 = crypto::FeldmanMatrix::from_bytes_checked(grp, b, t);
  auto v2 = crypto::FeldmanVector::from_bytes_checked(grp, b, t);
  auto m3 = crypto::FeldmanMatrix::from_bytes_interned(grp, b, t);
  (void)m1, (void)v1, (void)p1, (void)m2, (void)v2, (void)m3;
}

}  // namespace dkg::fixture
