// SEC03 fixture: wire-facing code must deserialize commitments through the
// _checked/_interned variants. Not compiled.
#include "crypto/feldman.hpp"
#include "crypto/pedersen.hpp"

namespace dkg::fixture {

void decode_wire(const crypto::Group& grp, const Bytes& b, std::size_t t) {
  auto m1 = crypto::FeldmanMatrix::from_bytes(grp, b, t);      // EXPECT-SEC03
  auto v1 = crypto::FeldmanVector::from_bytes(grp, b, t);      // EXPECT-SEC03
  auto p1 = crypto::PedersenMatrix::from_bytes(grp, b, t, t);  // EXPECT-SEC03

  auto m2 = crypto::FeldmanMatrix::from_bytes_checked(grp, b, t);
  auto v2 = crypto::FeldmanVector::from_bytes_checked(grp, b, t);
  auto m3 = crypto::FeldmanMatrix::from_bytes_interned(grp, b, t);
  (void)m1, (void)v1, (void)p1, (void)m2, (void)v2, (void)m3;
}

void decode_curve_wire(const Bytes& b, std::size_t t) {
  // Backend-generic rule: an ec256-group commitment off the wire needs the
  // checked decoder just like a mod-p one — the _checked path is what runs
  // the strict 33-byte canonical / on-curve validation.
  const crypto::Group& grp = crypto::Group::ec256();
  auto m1 = crypto::FeldmanMatrix::from_bytes(grp, b, t);  // EXPECT-SEC03
  auto m2 = crypto::FeldmanMatrix::from_bytes_interned(grp, b, t);
  (void)m1, (void)m2;
}

}  // namespace dkg::fixture
