// SEC02 fixture: this file's `sec02_` prefix marks it as serializer/metrics
// surface, where taint types must never appear. Not compiled.
#include "common/serialize.hpp"
#include "crypto/secret.hpp"

namespace dkg::fixture {

void write_share(Writer& w, const crypto::SecretScalar& share);  // EXPECT-SEC02

struct MetricsRow {
  crypto::SecretBytes seed;  // EXPECT-SEC02
};

// KeyPair is deliberately NOT banned on this surface (bench signatures
// take one); only the raw taint types are.
void bench_arg(const crypto::KeyPair& kp);

void write_public(Writer& w, const crypto::Scalar& value);

// ec256 backend: a curve-backed share is the same taint type, banned from
// the wire surface exactly like a mod-p one; the 33-byte compressed point
// encodings it commits to are public values and ship freely.
void write_curve_share(Writer& w, const crypto::SecretScalar& ec_share);  // EXPECT-SEC02

void write_compressed_point(Writer& w, const Bytes& point33);

}  // namespace dkg::fixture
