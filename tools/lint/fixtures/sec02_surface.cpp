// SEC02 fixture: this file's `sec02_` prefix marks it as serializer/metrics
// surface, where taint types must never appear. Not compiled.
#include "common/serialize.hpp"
#include "crypto/secret.hpp"

namespace dkg::fixture {

void write_share(Writer& w, const crypto::SecretScalar& share);  // EXPECT-SEC02

struct MetricsRow {
  crypto::SecretBytes seed;  // EXPECT-SEC02
};

// KeyPair is deliberately NOT banned on this surface (bench signatures
// take one); only the raw taint types are.
void bench_arg(const crypto::KeyPair& kp);

void write_public(Writer& w, const crypto::Scalar& value);

}  // namespace dkg::fixture
