// SEC04 fixture: Message type() strings must be unique and registered in
// the fixture registry (message_types.txt next to this file). Not compiled.
#include "sim/message.hpp"

namespace dkg::fixture {

struct GoodMsg : sim::Message {
  std::string_view type() const override { return "fixture.good"; }
};

struct RogueMsg : sim::Message {
  std::string_view type() const override { return "fixture.rogue"; }  // EXPECT-SEC04
};

struct AliasedMsg : sim::Message {
  std::string_view type() const override { return "fixture.good"; }  // EXPECT-SEC04
};

}  // namespace dkg::fixture
