#!/usr/bin/env python3
"""Secret-hygiene lint fleet for the DKG codebase.

Enforces the taint-type discipline introduced with crypto/secret.hpp: secret
material (SecretScalar / SecretBytes) may only be declassified at audited
call sites, may never reach the wire/metrics/log surface, and the untrusted
deserialization and message-registry invariants the wire layer depends on
hold tree-wide.

Rules
-----
  SEC01  every ``.reveal()`` / ``.reveal_bytes()`` in src/ carries a
         ``// reveal-ok: <reason>`` justification on the same line or one of
         the three lines above it. tests/, bench/, examples/ and tools/ are
         auto-allowlisted (they hold no long-lived secrets).
  SEC02  secret types (SecretScalar, SecretBytes, KeyPair) must not appear
         in the serializer / Metrics / logging / bench surface
         (src/common/serialize.*, src/sim/*, bench/*) — secrets reach those
         layers only as already-declassified public values.
  SEC03  outside src/crypto/, commitment deserialization must use the
         ``from_bytes_checked`` / ``from_bytes_interned`` variants; the
         unchecked ``from_bytes`` skips subgroup/shape validation and is
         reserved for trusted-local callers inside the crypto layer.
  SEC04  every sim::Message subclass ``type()`` string is unique and listed
         in tools/lint/message_types.txt (and the registry holds no stale
         entries), so wire-format dispatch can never alias two messages.
  SEC05  no variable-time comparisons of adversary-timed material:
         ``memcmp`` / ``bytes_equal`` / ``==`` on digest() results are
         banned in src/ — use dkg::ct_equal.
  SEC06  secret types must not be streamed or hex-dumped (``<<`` /
         ``to_hex``) in src/.

Engines
-------
Two interchangeable engines produce candidate sites; the rule logic
(allowlists, registries) is shared:

  * ``clang``  — libclang (python3 clang.cindex) over compile_commands.json:
    resolves member calls by cursor, so aliases/macros can't hide a reveal.
  * ``text``   — dependency-free tokenizing fallback with comment-aware
    line scanning. Used automatically when libclang or the compilation
    database is unavailable (e.g. minimal containers).

``--engine auto`` (default) picks clang when importable, else text.

Self-test
---------
``--self-test`` runs every rule over tools/lint/fixtures/, where each known-
bad snippet line carries an ``EXPECT-SECnn`` marker. The self-test fails if
any marked line is NOT flagged (a rule went blind) or any unmarked line IS
flagged (a rule went trigger-happy). This is wired into ctest under the
``lint`` label.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

# --------------------------------------------------------------------------
# configuration

RULES = {
    "SEC01": "unjustified reveal() — add `// reveal-ok: <reason>`",
    "SEC02": "secret type on the serializer/metrics/log/bench surface",
    "SEC03": "unchecked from_bytes on untrusted wire data — use _checked/_interned",
    "SEC04": "Message type() string not unique / not registered",
    "SEC05": "variable-time comparison — use dkg::ct_equal",
    "SEC06": "secret type streamed or hex-dumped",
}

SECRET_TYPES = ("SecretScalar", "SecretBytes", "KeyPair")
# KeyPair is allowed on the bench surface (signing benchmarks need one); the
# raw taint types never are.
SURFACE_TYPES = ("SecretScalar", "SecretBytes")

# SEC02: globs (relative to repo root) forming the public surface where
# secret types are banned outright.
SURFACE_PREFIXES = ("src/common/serialize", "src/sim/", "bench/")

# SEC03: unchecked deserializers of wire commitments.
UNCHECKED_FROM_BYTES = re.compile(
    r"\b(FeldmanMatrix|FeldmanVector|PedersenMatrix)::from_bytes\(")

REVEAL_CALL = re.compile(r"\.\s*reveal(_bytes)?\s*\(")
REVEAL_OK = re.compile(r"//.*reveal-ok\s*:")
REVEAL_OK_LOOKBACK = 3  # lines above a reveal that may carry the comment

TYPE_OVERRIDE = re.compile(
    r"type\(\)\s*const\s*override\s*\{\s*return\s*\"([^\"]+)\"")

MEMCMP = re.compile(r"\b(memcmp|bytes_equal)\s*\(")
DIGEST_EQ = re.compile(r"(==|!=)\s*[A-Za-z_][\w.\->]*digest\(\)|digest\(\)\s*(==|!=)")

STREAM_OR_HEX = re.compile(r"<<|\bto_hex\s*\(")

SRC_EXTS = (".cpp", ".hpp", ".h", ".cc")


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative
    line: int  # 1-based
    detail: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.detail}"


# --------------------------------------------------------------------------
# comment-aware line model (shared by both engines)

def split_code_comment(lines: List[str]) -> List[Tuple[str, str]]:
    """Returns (code, comment) per line, tracking /* */ across lines.

    String literals are blanked from the code part so tokens inside quotes
    don't trigger rules; the comment part keeps its text for reveal-ok.
    """
    out: List[Tuple[str, str]] = []
    in_block = False
    for raw in lines:
        code_chars: List[str] = []
        comment_chars: List[str] = []
        i, n = 0, len(raw)
        in_str: Optional[str] = None
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                comment_chars.append(c)
                if c == "*" and nxt == "/":
                    comment_chars.append(nxt)
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                if c == "\\":
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                code_chars.append(" ")
                i += 1
                continue
            if c in "\"'":
                in_str = c
                code_chars.append(" ")
                i += 1
                continue
            if c == "/" and nxt == "/":
                comment_chars.extend(raw[i:])
                break
            if c == "/" and nxt == "*":
                in_block = True
                comment_chars.append("/*")
                i += 2
                continue
            code_chars.append(c)
            i += 1
        out.append(("".join(code_chars), "".join(comment_chars)))
    return out


# For SEC04 the registry strings live inside quotes, so run the pattern on
# the raw line instead of the blanked code part.
def type_strings(raw_lines: List[str], code_comment: List[Tuple[str, str]]
                 ) -> List[Tuple[int, str]]:
    got = []
    for idx, raw in enumerate(raw_lines):
        code, _ = code_comment[idx]
        # Require the structural tokens to be real code (not commented out).
        if "type()" not in code:
            continue
        m = TYPE_OVERRIDE.search(raw)
        if m:
            got.append((idx + 1, m.group(1)))
    return got


# --------------------------------------------------------------------------
# file inventory

@dataclass
class SourceFile:
    path: str              # repo-relative, forward slashes
    raw: List[str]
    cc: List[Tuple[str, str]]

    @property
    def in_src(self) -> bool:
        return self.path.startswith("src/")

    @property
    def in_crypto(self) -> bool:
        return self.path.startswith("src/crypto/")

    @property
    def on_surface(self) -> bool:
        return any(self.path.startswith(p) for p in SURFACE_PREFIXES)


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), "r", encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    return SourceFile(rel.replace(os.sep, "/"), raw, split_code_comment(raw))


def walk_sources(root: str, subdirs: Iterable[str]) -> List[SourceFile]:
    files: List[SourceFile] = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SRC_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(load_file(root, rel))
    return files


# --------------------------------------------------------------------------
# the rules (engine-independent logic; takes candidate reveal sites)

def rule_sec01(f: SourceFile, reveal_lines: Iterable[int]) -> List[Finding]:
    out = []
    for ln in reveal_lines:  # 1-based
        window = range(max(1, ln - REVEAL_OK_LOOKBACK), ln + 1)
        justified = any(REVEAL_OK.search(f.cc[i - 1][1]) for i in window)
        if not justified:
            out.append(Finding("SEC01", f.path, ln, RULES["SEC01"]))
    return out


def rule_sec02(f: SourceFile) -> List[Finding]:
    out = []
    for idx, (code, _) in enumerate(f.cc):
        for t in SURFACE_TYPES:
            if re.search(rf"\b{t}\b", code):
                out.append(Finding("SEC02", f.path, idx + 1,
                                   f"{RULES['SEC02']} ({t})"))
                break
    return out


def rule_sec03(f: SourceFile, unchecked_lines: Iterable[int]) -> List[Finding]:
    return [Finding("SEC03", f.path, ln, RULES["SEC03"]) for ln in unchecked_lines]


def rule_sec05(f: SourceFile) -> List[Finding]:
    out = []
    for idx, (code, _) in enumerate(f.cc):
        if MEMCMP.search(code) or DIGEST_EQ.search(code):
            out.append(Finding("SEC05", f.path, idx + 1, RULES["SEC05"]))
    return out


def rule_sec06(f: SourceFile) -> List[Finding]:
    out = []
    for idx, (code, _) in enumerate(f.cc):
        if not STREAM_OR_HEX.search(code):
            continue
        # Shift operators inside arithmetic are fine; only flag when a
        # secret type token is on the same code line.
        if any(re.search(rf"\b{t}\b", code) for t in SECRET_TYPES):
            out.append(Finding("SEC06", f.path, idx + 1, RULES["SEC06"]))
    return out


def rule_sec04(files: List[SourceFile], registry_path: str,
               registry_rel: str) -> List[Finding]:
    out: List[Finding] = []
    registered: Dict[str, int] = {}
    if os.path.exists(registry_path):
        with open(registry_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                entry = line.split("#", 1)[0].strip()
                if entry:
                    registered[entry] = lineno
    seen: Dict[str, Tuple[str, int]] = {}
    used = set()
    for sf in files:
        for ln, s in type_strings(sf.raw, sf.cc):
            if s in seen:
                first = seen[s]
                out.append(Finding("SEC04", sf.path, ln,
                                   f'duplicate type() string "{s}" '
                                   f"(first at {first[0]}:{first[1]})"))
            else:
                seen[s] = (sf.path, ln)
            if s not in registered:
                out.append(Finding("SEC04", sf.path, ln,
                                   f'type() string "{s}" not in {registry_rel}'))
            used.add(s)
    for s, lineno in sorted(registered.items(), key=lambda kv: kv[1]):
        if s not in used:
            out.append(Finding("SEC04", registry_rel, lineno,
                               f'stale registry entry "{s}" (no type() override found)'))
    return out


# --------------------------------------------------------------------------
# engines: produce reveal / unchecked-from_bytes candidate lines per file

class TextEngine:
    name = "text"

    def reveal_sites(self, f: SourceFile) -> List[int]:
        return [i + 1 for i, (code, _) in enumerate(f.cc) if REVEAL_CALL.search(code)]

    def unchecked_from_bytes(self, f: SourceFile) -> List[int]:
        return [i + 1 for i, (code, _) in enumerate(f.cc)
                if UNCHECKED_FROM_BYTES.search(code)]


class ClangEngine:
    """libclang-backed engine: resolves calls from the AST, so a reveal hidden
    behind `auto fn = &SecretScalar::reveal;` or a macro still surfaces."""

    name = "clang"

    def __init__(self, root: str):
        import clang.cindex as ci  # noqa: deferred import
        self.ci = ci
        self.index = ci.Index.create()
        db_dir = None
        for cand in (os.path.join(root, "build"), root):
            if os.path.exists(os.path.join(cand, "compile_commands.json")):
                db_dir = cand
                break
        if db_dir is None:
            raise RuntimeError("compile_commands.json not found")
        self.db = ci.CompilationDatabase.fromDirectory(db_dir)
        self.root = root
        self._cache: Dict[str, Tuple[List[int], List[int]]] = {}

    def _analyze(self, f: SourceFile) -> Tuple[List[int], List[int]]:
        if f.path in self._cache:
            return self._cache[f.path]
        abspath = os.path.join(self.root, f.path)
        cmds = self.db.getCompileCommands(abspath)
        args: List[str] = []
        if cmds:
            it = list(cmds[0].arguments)[1:-1]  # strip compiler and filename
            args = [a for a in it if a not in ("-c", "-o") and not a.endswith(".o")]
        tu = self.index.parse(abspath, args=args)
        reveals: List[int] = []
        unchecked: List[int] = []
        ci = self.ci
        for cur in tu.cursor.walk_preorder():
            if cur.location.file is None or \
                    os.path.realpath(cur.location.file.name) != os.path.realpath(abspath):
                continue
            if cur.kind == ci.CursorKind.CALL_EXPR:
                ref = cur.referenced
                if ref is None:
                    continue
                if ref.spelling in ("reveal", "reveal_bytes") and \
                        ref.semantic_parent is not None and \
                        ref.semantic_parent.spelling in ("SecretScalar", "SecretBytes"):
                    reveals.append(cur.location.line)
                if ref.spelling == "from_bytes" and \
                        ref.semantic_parent is not None and \
                        ref.semantic_parent.spelling in (
                            "FeldmanMatrix", "FeldmanVector", "PedersenMatrix"):
                    unchecked.append(cur.location.line)
        got = (sorted(set(reveals)), sorted(set(unchecked)))
        self._cache[f.path] = got
        return got

    def reveal_sites(self, f: SourceFile) -> List[int]:
        try:
            return self._analyze(f)[0]
        except Exception:
            return TextEngine().reveal_sites(f)

    def unchecked_from_bytes(self, f: SourceFile) -> List[int]:
        try:
            return self._analyze(f)[1]
        except Exception:
            return TextEngine().unchecked_from_bytes(f)


def make_engine(kind: str, root: str):
    if kind in ("clang", "auto"):
        try:
            return ClangEngine(root)
        except Exception as e:  # ImportError, missing DB, ...
            if kind == "clang":
                sys.stderr.write(f"secret_lint: clang engine unavailable: {e}\n")
                sys.exit(2)
            sys.stderr.write(f"secret_lint: falling back to text engine ({e})\n")
    return TextEngine()


# --------------------------------------------------------------------------
# drivers

def lint_tree(root: str, engine) -> List[Finding]:
    findings: List[Finding] = []
    src_files = walk_sources(root, ["src"])
    surface_extra = walk_sources(root, ["bench"])
    for f in src_files:
        findings += rule_sec01(f, engine.reveal_sites(f))
        if f.on_surface:
            findings += rule_sec02(f)
        if not f.in_crypto:
            findings += rule_sec03(f, engine.unchecked_from_bytes(f))
        findings += rule_sec05(f)
        findings += rule_sec06(f)
    for f in surface_extra:
        findings += rule_sec02(f)
    findings += rule_sec04(
        src_files,
        os.path.join(root, "tools/lint/message_types.txt"),
        "tools/lint/message_types.txt")
    return findings


EXPECT = re.compile(r"EXPECT-(SEC\d\d)")


def self_test(root: str, engine) -> int:
    """Every EXPECT-SECnn line must be flagged with that rule; no other line
    may be flagged. Fixture filenames opt into rule contexts:
    ``sec02_*`` is treated as surface, everything is treated as src/."""
    fixdir = os.path.join(root, "tools/lint/fixtures")
    files = walk_sources(fixdir, ["."])
    findings: List[Finding] = []
    for f in files:
        name = os.path.basename(f.path)
        findings += rule_sec01(f, TextEngine().reveal_sites(f))
        if name.startswith("sec02"):
            findings += rule_sec02(f)
        findings += rule_sec03(f, TextEngine().unchecked_from_bytes(f))
        findings += rule_sec05(f)
        findings += rule_sec06(f)
    findings += rule_sec04(
        files,
        os.path.join(fixdir, "message_types.txt"),
        "message_types.txt")

    expected = set()  # (path, line, rule)
    for f in files:
        for idx, raw in enumerate(f.raw):
            for m in EXPECT.finditer(raw):
                expected.add((f.path, idx + 1, m.group(1)))
    reg = os.path.join(fixdir, "message_types.txt")
    if os.path.exists(reg):
        with open(reg, encoding="utf-8") as fh:
            for idx, raw in enumerate(fh):
                for m in EXPECT.finditer(raw):
                    expected.add(("message_types.txt", idx + 1, m.group(1)))

    actual = {(f.path, f.line, f.rule) for f in findings}
    missed = sorted(expected - actual)
    surprise = sorted(actual - expected)
    for p, ln, rule in missed:
        print(f"self-test: {p}:{ln}: {rule} expected but NOT reported (rule went blind)")
    for p, ln, rule in surprise:
        print(f"self-test: {p}:{ln}: {rule} reported but NOT expected (false positive)")
    ok = not missed and not surprise
    print(f"self-test: {len(expected)} expected findings, "
          f"{len(actual)} reported, engine={engine.name}: "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--engine", choices=["auto", "clang", "text"], default="auto")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules over tools/lint/fixtures/")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0

    root = args.root or os.path.realpath(
        os.path.join(os.path.dirname(__file__), "..", ".."))
    engine = make_engine(args.engine, root)

    if args.self_test:
        # Self-test exercises the rule logic itself; the text candidate
        # generator is used so the result is identical in every environment.
        return self_test(root, engine)

    findings = lint_tree(root, engine)
    for f in findings:
        print(f)
    n_files = len(walk_sources(root, ["src"]))
    print(f"secret_lint: {len(findings)} finding(s) over {n_files} src file(s), "
          f"engine={engine.name}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
