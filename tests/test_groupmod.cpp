// Protocol tests: group modification (paper §6) — agreement, membership
// arithmetic, node addition end-to-end, removal and t/f adjustment rules.
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "groupmod/agreement.hpp"
#include "groupmod/node_add.hpp"
#include "proactive/runner.hpp"

namespace dkg::groupmod {
namespace {

using crypto::Element;
using crypto::Scalar;

TEST(Membership, AddNodeRaisesThresholdWhenFlagged) {
  Membership m{7, 1, 1};
  Proposal p{ModKind::AddNode, 8, Absorb::Threshold, 1};
  // 8 < 3*2 + 2*1 + 1 = 9, so t cannot rise yet.
  auto m2 = m.apply(p);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->n, 8u);
  EXPECT_EQ(m2->t, 1u);
  // Two more additions reach n = 10 >= 3*2 + 2*1 + 1.
  auto m3 = m2->apply(Proposal{ModKind::AddNode, 9, Absorb::Threshold, 1});
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(m3->t, 2u);
}

TEST(Membership, AddNodeRaisesCrashLimitWhenFlagged) {
  Membership m{8, 1, 1};
  auto m2 = m.apply(Proposal{ModKind::AddNode, 9, Absorb::CrashLimit, 1});
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->n, 9u);
  EXPECT_EQ(m2->f, 2u);  // 9 >= 3*1 + 2*2 + 1 = 8
}

TEST(Membership, RemovalPreservingResilience) {
  Membership m{10, 2, 1};
  auto m2 = m.apply(Proposal{ModKind::RemoveNode, 10, Absorb::Threshold, 1});
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->n, 9u);
  EXPECT_EQ(m2->t, 1u);
  EXPECT_TRUE(m2->resilient());
}

TEST(Membership, RemovalBreakingBoundIsRefused) {
  Membership m{4, 1, 0};  // exactly 3t+1
  // Removing a node without lowering t would give 3 < 3*1+1... and t
  // cannot go below 0 after absorbing; crash-limit absorb leaves t=1.
  EXPECT_FALSE(m.apply(Proposal{ModKind::RemoveNode, 4, Absorb::CrashLimit, 1}).has_value());
}

TEST(Membership, QueueSkipsInvalidProposals) {
  Membership m{7, 1, 1};
  std::vector<Proposal> queue{
      Proposal{ModKind::RemoveNode, 7, Absorb::CrashLimit, 1},  // 6 >= 3+0+1? f->0: 6>=3*1+1=4 ok
      Proposal{ModKind::RemoveNode, 6, Absorb::CrashLimit, 2},  // f already 0 -> invalid (5 < ...)
      Proposal{ModKind::AddNode, 8, Absorb::Threshold, 3},
  };
  auto [result, accepted] = m.apply_queue(queue);
  EXPECT_TRUE(result.resilient());
  EXPECT_LE(accepted.size(), queue.size());
}

TEST(Agreement, AllNodesAcceptProposedModification) {
  GmParams params{7, 1, 1};
  sim::Simulator sim(7, std::make_unique<sim::UniformDelay>(5, 40), 31);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    sim.set_node(i, std::make_unique<GroupModNode>(params, i));
  }
  Proposal p{ModKind::AddNode, 8, Absorb::Threshold, 3};
  sim.post_operator(3, std::make_shared<ProposeOp>(p), 0);
  ASSERT_TRUE(sim.run());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    const auto& q = dynamic_cast<GroupModNode&>(sim.node(i)).queue();
    ASSERT_EQ(q.size(), 1u) << "node " << i;
    EXPECT_TRUE(q[0] == p);
  }
}

TEST(Agreement, RejectedByPolicyNeverAccepted) {
  GmParams params{7, 1, 1};
  sim::Simulator sim(7, std::make_unique<sim::UniformDelay>(5, 40), 32);
  // Every node's policy refuses removals.
  auto policy = [](const Proposal& p) { return p.kind != ModKind::RemoveNode; };
  for (sim::NodeId i = 1; i <= 7; ++i) {
    sim.set_node(i, std::make_unique<GroupModNode>(params, i, policy));
  }
  sim.post_operator(2, std::make_shared<ProposeOp>(Proposal{ModKind::RemoveNode, 5,
                                                            Absorb::CrashLimit, 2}), 0);
  ASSERT_TRUE(sim.run());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    EXPECT_TRUE(dynamic_cast<GroupModNode&>(sim.node(i)).queue().empty());
  }
}

TEST(Agreement, CommutativeProposalsConvergeAsSets) {
  GmParams params{7, 1, 1};
  sim::Simulator sim(7, std::make_unique<sim::UniformDelay>(5, 60), 33);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    sim.set_node(i, std::make_unique<GroupModNode>(params, i));
  }
  Proposal p1{ModKind::AddNode, 8, Absorb::Threshold, 1};
  Proposal p2{ModKind::AddNode, 9, Absorb::CrashLimit, 2};
  sim.post_operator(1, std::make_shared<ProposeOp>(p1), 0);
  sim.post_operator(2, std::make_shared<ProposeOp>(p2), 3);
  ASSERT_TRUE(sim.run());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    auto q = dynamic_cast<GroupModNode&>(sim.node(i)).queue();
    ASSERT_EQ(q.size(), 2u);
    std::set<Bytes> keys{q[0].encode(), q[1].encode()};
    EXPECT_EQ(keys.size(), 2u);
    EXPECT_TRUE(keys.count(p1.encode()) == 1 && keys.count(p2.encode()) == 1);
  }
}

class NodeAddTest : public ::testing::Test {
 protected:
  // Run a DKG to get share states, then execute the node-addition protocol.
  void run_addition(std::uint64_t seed) {
    core::RunnerConfig cfg;
    cfg.n = 7;
    cfg.t = 1;
    cfg.f = 1;
    cfg.seed = seed;
    proactive::ProactiveRunner pro(cfg);
    ASSERT_TRUE(pro.run_dkg());
    secret_ = pro.reconstruct();
    old_states_ = pro.states();
    group_vec_.emplace(pro.states()[1].commitment);

    auto keyring = crypto::Keyring::generate(*cfg.grp, cfg.n, seed ^ 0x9e3779b97f4a7c15ULL);
    core::DkgParams params;
    params.vss.grp = cfg.grp;
    params.vss.n = cfg.n;
    params.vss.t = cfg.t;
    params.vss.f = cfg.f;
    params.vss.keyring = keyring;
    params.tau = 3;
    params.timeout_base = 10'000;

    sim_ = std::make_unique<sim::Simulator>(cfg.n, std::make_unique<sim::UniformDelay>(5, 40),
                                            seed);
    sim::NodeId new_id = sim_->add_node_slot();
    ASSERT_EQ(new_id, 8u);
    for (sim::NodeId i = 1; i <= cfg.n; ++i) {
      sim_->set_node(i, std::make_unique<NodeAddNode>(params, i, pro.states()[i], new_id));
    }
    auto joining = std::make_unique<JoiningNode>(*cfg.grp, cfg.t, new_id, params.tau);
    joining_ = joining.get();
    sim_->set_node(new_id, std::move(joining));
    for (sim::NodeId i = 1; i <= cfg.n; ++i) {
      sim_->post_operator(i, std::make_shared<core::DkgStartOp>(params.tau, std::nullopt), 0);
    }
    ASSERT_TRUE(sim_->run_until([&] { return joining_->has_share(); }));
  }

  std::unique_ptr<sim::Simulator> sim_;

  crypto::Scalar secret_;
  std::vector<proactive::ShareState> old_states_;
  std::optional<crypto::FeldmanVector> group_vec_;
  JoiningNode* joining_ = nullptr;
};

TEST_F(NodeAddTest, NewShareLiesOnOldPolynomial) {
  run_addition(41);
  ASSERT_TRUE(joining_->has_share());
  // The new node's share is F_old(8): it verifies against the old group
  // commitment vector at index 8.
  EXPECT_TRUE(group_vec_->verify_share(8, joining_->share().reveal()));
}

TEST_F(NodeAddTest, NewShareExtendsReconstruction) {
  run_addition(42);
  ASSERT_TRUE(joining_->has_share());
  // Secret reconstructable from the NEW node's share plus t old shares
  // (old shares still work — addition does not renew, §6.2).
  std::vector<std::pair<std::uint64_t, Scalar>> pts{{1, old_states_[1].share.reveal()},
                                                    {8, joining_->share().reveal()}};
  EXPECT_EQ(crypto::interpolate_at(crypto::Group::tiny256(), pts, 0), secret_);
  EXPECT_EQ(Element::exp_g(secret_), group_vec_->c0());
  // The joining node learned the authentic group verification vector.
  EXPECT_TRUE(joining_->group_vec() == *group_vec_);
}

TEST(NodeAdd, SubshareVerificationRejectsGarbage) {
  const crypto::Group& grp = crypto::Group::tiny256();
  crypto::Drbg rng(7);
  crypto::Polynomial f_old = crypto::Polynomial::random(grp, 2, rng);
  crypto::FeldmanVector group_vec = crypto::FeldmanVector::commit(f_old);
  JoiningNode joining(grp, 2, 8, 3);

  sim::Simulator sim(1, std::make_unique<sim::FixedDelay>(1), 1);
  struct Shell : sim::Node {
    JoiningNode* j;
    explicit Shell(JoiningNode* jj) : j(jj) {}
    void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override {
      j->on_message(ctx, from, msg);
    }
  };
  sim.set_node(1, std::make_unique<Shell>(&joining));
  // Garbage subshare: h-commitment whose c0 doesn't match V_old(8).
  crypto::Polynomial h_bad = crypto::Polynomial::random(grp, 2, rng);
  auto hc = std::make_shared<const crypto::FeldmanVector>(crypto::FeldmanVector::commit(h_bad));
  auto gv = std::make_shared<const crypto::FeldmanVector>(group_vec);
  sim.post_operator(1, std::make_shared<SubshareMsg>(3, hc, gv, h_bad.eval_at(1).reveal()), 0);
  ASSERT_TRUE(sim.run());
  EXPECT_FALSE(joining.has_share());
  EXPECT_GT(joining.rejected(), 0u);
}

}  // namespace
}  // namespace dkg::groupmod
