// Unit tests: wire encodings of protocol messages — the serialized sizes
// back every communication-complexity measurement, so they must be
// canonical, cached consistently, and scale the way the analysis assumes.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "dkg/dkg_messages.hpp"
#include "vss/vss_messages.hpp"

namespace dkg {
namespace {

using crypto::BiPolynomial;
using crypto::Drbg;
using crypto::FeldmanMatrix;
using crypto::Group;
using crypto::Scalar;

const Group& grp() { return Group::tiny256(); }

std::shared_ptr<const FeldmanMatrix> make_commitment(std::size_t t, std::uint64_t seed) {
  Drbg rng(seed);
  return std::make_shared<const FeldmanMatrix>(
      FeldmanMatrix::commit(BiPolynomial::random(Scalar::from_u64(grp(), 1), t, rng)));
}

TEST(WireFormat, WireSizeIsCachedAndStable) {
  auto c = make_commitment(2, 1);
  vss::EchoMsg msg(vss::SessionId{1, 1}, c, c->digest(), Scalar::from_u64(grp(), 5));
  std::size_t s1 = msg.wire_size();
  std::size_t s2 = msg.wire_size();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(msg.wire_bytes().size(), s1);
}

TEST(WireFormat, SendMessageScalesWithMatrix) {
  // Send carries the (t+1)^2 matrix: quadratic in t.
  auto size_at = [](std::size_t t) {
    auto c = make_commitment(t, t);
    Drbg rng(t + 50);
    vss::SendMsg msg(vss::SessionId{1, 1}, c,
                     crypto::Polynomial::random(grp(), t, rng));
    return msg.wire_size();
  };
  std::size_t s2 = size_at(2), s5 = size_at(5);
  // Matrix bytes: (t+1)^2 * 32; row: (t+1) * 8.
  EXPECT_GT(s5, s2 * 3);
  EXPECT_LT(s5, s2 * 5);
}

TEST(WireFormat, HashedEchoIsConstantSize) {
  auto c2 = make_commitment(2, 1);
  auto c5 = make_commitment(5, 2);
  vss::EchoMsg hashed2(vss::SessionId{1, 1}, nullptr, c2->digest(), Scalar::from_u64(grp(), 5));
  vss::EchoMsg hashed5(vss::SessionId{1, 1}, nullptr, c5->digest(), Scalar::from_u64(grp(), 5));
  EXPECT_EQ(hashed2.wire_size(), hashed5.wire_size());  // digest is 32B regardless of t
  vss::EchoMsg full2(vss::SessionId{1, 1}, c2, c2->digest(), Scalar::from_u64(grp(), 5));
  EXPECT_GT(full2.wire_size(), hashed2.wire_size());
}

TEST(WireFormat, ReadySignatureAddsFixedOverhead) {
  auto c = make_commitment(2, 3);
  Scalar alpha = Scalar::from_u64(grp(), 9);
  vss::ReadyMsg unsigned_msg(vss::SessionId{1, 1}, nullptr, c->digest(), alpha, std::nullopt);
  Drbg rng(4);
  crypto::KeyPair kp = crypto::schnorr_keygen(grp(), rng);
  vss::ReadyMsg signed_msg(vss::SessionId{1, 1}, nullptr, c->digest(), alpha,
                           crypto::schnorr_sign(kp, bytes_of("x")));
  EXPECT_EQ(signed_msg.wire_size(), unsigned_msg.wire_size() + crypto::signature_bytes(grp()));
}

TEST(WireFormat, DkgSendGrowsWithProofSets) {
  core::DkgSendMsg empty(1, 1, core::NodeSet{1, 2});
  core::DkgSendMsg with_proofs(1, 1, core::NodeSet{1, 2});
  auto ring = crypto::Keyring::generate(grp(), 7, 1);
  Bytes digest = crypto::sha256(bytes_of("c"));
  for (sim::NodeId d : {1u, 2u}) {
    core::DealerProof p;
    p.dealer = d;
    p.commit_digest = digest;
    Bytes payload = vss::ready_sig_payload(vss::SessionId{d, 1}, digest);
    for (sim::NodeId s = 1; s <= 5; ++s) {
      p.sigs.push_back(vss::ReadySig{s, ring->sign_as(s, payload)});
    }
    with_proofs.dealer_proofs[d] = p;
  }
  // 2 dealers x 5 sigs x (4 + sig bytes) plus digests.
  EXPECT_GT(with_proofs.wire_size(),
            empty.wire_size() + 10 * crypto::signature_bytes(grp()));
}

TEST(WireFormat, SessionDisambiguationInPayloads) {
  Bytes d = crypto::sha256(bytes_of("c"));
  EXPECT_NE(vss::ready_sig_payload(vss::SessionId{1, 1}, d),
            vss::ready_sig_payload(vss::SessionId{2, 1}, d));
  EXPECT_NE(vss::ready_sig_payload(vss::SessionId{1, 1}, d),
            vss::ready_sig_payload(vss::SessionId{1, 2}, d));
  EXPECT_NE(core::dkg_echo_payload(1, 1, {1, 2}), core::dkg_ready_payload(1, 1, {1, 2}));
  EXPECT_NE(core::dkg_echo_payload(1, 1, {1, 2}), core::dkg_echo_payload(1, 2, {1, 2}));
  EXPECT_NE(core::lead_ch_payload(1, 2), core::lead_ch_payload(1, 3));
}

TEST(WireFormat, SendDecodeRoundTripsAndChecks) {
  auto c = make_commitment(2, 21);
  Drbg rng(22);
  crypto::Polynomial row = crypto::Polynomial::random(grp(), 2, rng);
  vss::SendMsg msg(vss::SessionId{3, 7}, c, row);
  Writer w;
  msg.serialize(w);
  auto back = vss::decode_send(grp(), 2, w.data());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->sid == msg.sid);
  EXPECT_TRUE(*back->commitment == *c);
  ASSERT_TRUE(back->row.has_value());
  EXPECT_TRUE(*back->row == row);
  // Wrong threshold, truncation, trailing garbage: all rejected.
  EXPECT_FALSE(vss::decode_send(grp(), 3, w.data()).has_value());
  Bytes truncated(w.data().begin(), w.data().end() - 1);
  EXPECT_FALSE(vss::decode_send(grp(), 2, truncated).has_value());
  Bytes extended = w.data();
  extended.push_back(0);
  EXPECT_FALSE(vss::decode_send(grp(), 2, extended).has_value());
  // Garbage INSIDE the length-prefixed row blob (frame-level framing still
  // consistent) must also be rejected: re-serialize with a padded row blob.
  Writer w2;
  vss::SendMsg probe(vss::SessionId{3, 7}, c, std::nullopt);
  probe.serialize(w2);  // sid + commitment blob + empty row blob
  Bytes padded_row = row.to_bytes();
  padded_row.push_back(0);
  Bytes frame = w2.take();
  // Overwrite the empty row blob (last 4 bytes: length 0) with the padded one.
  frame.resize(frame.size() - 4);
  Writer tail;
  tail.blob(padded_row);
  frame.insert(frame.end(), tail.data().begin(), tail.data().end());
  EXPECT_FALSE(vss::decode_send(grp(), 2, frame).has_value());
}

TEST(WireFormat, CheckedDecodeRejectsOutOfSubgroupCommitments) {
  // An adversarial dealer ships a matrix whose bytes parse fine but whose
  // first entry lies outside the order-q subgroup (p-1 has order 2: q is an
  // odd prime, so (p-1)^q = p-1 != 1). Plain from_bytes accepts it — the
  // documented caveat — while the checked wire-decode boundary rejects it.
  auto c = make_commitment(2, 23);
  Bytes mat = c->to_bytes();
  Bytes evil = crypto::mpz_to_bytes(grp().p() - 1, grp().p_bytes());
  ASSERT_FALSE(crypto::Element::from_bytes(grp(), evil).in_subgroup());
  std::copy(evil.begin(), evil.end(), mat.begin() + 4);  // u32 degree prefix
  EXPECT_TRUE(FeldmanMatrix::from_bytes(grp(), mat, 2).has_value());
  EXPECT_FALSE(FeldmanMatrix::from_bytes_checked(grp(), mat, 2).has_value());

  // Splice the tampered matrix into a send frame: sid (8 bytes) + blob
  // length prefix (4 bytes), then the matrix bytes.
  vss::SendMsg msg(vss::SessionId{1, 1}, c, std::nullopt);
  Writer w2;
  msg.serialize(w2);
  Bytes frame = w2.take();
  std::copy(mat.begin(), mat.end(), frame.begin() + 12);
  EXPECT_FALSE(vss::decode_send(grp(), 2, frame).has_value());
  // The reply path enforces the same boundary.
  vss::CommitmentReply reply(vss::SessionId{1, 1}, c);
  Writer w3;
  reply.serialize(w3);
  auto ok = vss::decode_ccreply(grp(), 2, w3.data());
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok->commitment == *c);
  Bytes rframe = w3.take();
  std::copy(mat.begin(), mat.end(), rframe.begin() + 12);
  EXPECT_FALSE(vss::decode_ccreply(grp(), 2, rframe).has_value());
}

TEST(WireFormat, MessageTypesAreDistinctAndPrefixed) {
  auto c = make_commitment(1, 9);
  Drbg rng(10);
  std::vector<std::string_view> types{
      vss::SendMsg(vss::SessionId{1, 1}, c, crypto::Polynomial::random(grp(), 1, rng)).type(),
      vss::EchoMsg(vss::SessionId{1, 1}, c, c->digest(), Scalar::from_u64(grp(), 1)).type(),
      vss::ReadyMsg(vss::SessionId{1, 1}, c, c->digest(), Scalar::from_u64(grp(), 1),
                    std::nullopt)
          .type(),
      vss::HelpMsg(vss::SessionId{1, 1}).type(),
      vss::RecShareMsg(vss::SessionId{1, 1}, c->digest(), Scalar::from_u64(grp(), 1)).type(),
      core::DkgSendMsg(1, 1, {}).type(),
      core::DkgHelpMsg(1).type(),
  };
  std::set<std::string_view> unique(types.begin(), types.end());
  EXPECT_EQ(unique.size(), types.size());
  for (std::string_view t : types) {
    EXPECT_TRUE(t.rfind("vss.", 0) == 0 || t.rfind("dkg.", 0) == 0) << t;
  }
}

}  // namespace
}  // namespace dkg
