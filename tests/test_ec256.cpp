// Differential property suite for the ec256 (secp256k1) backend: every
// fast path — Straus multiexp, Horner index products, the fixed-base comb,
// the constant-time ladder — is checked against the naive group-law
// evaluation on random inputs, the protocol-level algebra (Lagrange in the
// scalar field and in the exponent, Feldman verification, Schnorr/DLEQ) is
// exercised end-to-end on the curve group, and the strict 33-byte decoder
// faces both targeted malformed vectors and randomized byte-stream mutation
// of whole commitment frames (the test_robustness treatment; CI runs this
// under ASan+UBSan where Reader/limb overreads would trip).
//
// Seeded via DKG_PROPERTY_SEED, scaled via DKG_PROPERTY_REPEAT (ctest
// label `property`; see tests/property_test.hpp).
#include <gtest/gtest.h>

#include "crypto/bipolynomial.hpp"
#include "crypto/dleq.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec256.hpp"
#include "crypto/feldman.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sigverify.hpp"
#include "property_test.hpp"

namespace dkg::crypto {
namespace {

const Group& grp() { return Group::ec256(); }

Element random_element(Drbg& rng) { return Element::exp_g(Scalar::random(grp(), rng)); }

// --- curve engine ----------------------------------------------------------

TEST(Ec256Curve, ParametersAreValidAndStandard) {
  EXPECT_TRUE(grp().valid());
  EXPECT_EQ(grp().element_bytes(), ec256::kEncodedBytes);
  EXPECT_EQ(grp().kappa(), 256u);
  // The standard compressed secp256k1 base point pins the whole encoding
  // pipeline (fe_to_be, parity prefix) to the published constant.
  EXPECT_EQ(to_hex(Element::generator(grp()).to_bytes()),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
}

TEST(Ec256Curve, GroupLawIsComplete) {
  const ec256::Point& g = ec256::generator();
  ec256::Point inf{};
  EXPECT_TRUE(ec256::eq(ec256::add(inf, g), g));        // 0 + P
  EXPECT_TRUE(ec256::eq(ec256::add(g, inf), g));        // P + 0
  EXPECT_TRUE(ec256::add(g, ec256::negate(g)).inf);     // P + (-P)
  EXPECT_TRUE(ec256::eq(ec256::add(g, g),               // P + P == [2]P
                        ec256::scalar_mul_u64(g, 2)));
  EXPECT_TRUE(ec256::scalar_mul(g, grp().q()).inf);     // [n]G = 0
  EXPECT_TRUE(ec256::eq(ec256::scalar_mul(g, grp().q() - 1), ec256::negate(g)));
}

TEST(Ec256Curve, HashToCurveIsDeterministicAndSeparated) {
  Bytes data = bytes_of("ec256 htc probe");
  ec256::Point a = ec256::hash_to_curve("domain/a", data);
  ec256::Point b = ec256::hash_to_curve("domain/a", data);
  ec256::Point c = ec256::hash_to_curve("domain/b", data);
  EXPECT_TRUE(ec256::on_curve(a));
  EXPECT_FALSE(a.inf);
  EXPECT_TRUE(ec256::eq(a, b));
  EXPECT_FALSE(ec256::eq(a, c));
}

TEST(Ec256Curve, ScalarMulMatchesRepeatedAddition) {
  Drbg rng(testprop::property_seed());
  ec256::Point base = Element::exp_g(Scalar::random(grp(), rng)).point();
  ec256::Point acc{};
  for (std::uint64_t e = 0; e <= 17; ++e) {
    EXPECT_TRUE(ec256::eq(ec256::scalar_mul_u64(base, e), acc)) << "e=" << e;
    acc = ec256::add(acc, base);
  }
}

// --- differential fast paths ----------------------------------------------

TEST(Ec256Property, MultiexpMatchesNaiveProduct) {
  Drbg rng(testprop::property_seed() ^ 0xec256001);
  for (std::size_t iter = 0; iter < testprop::property_cases(8); ++iter) {
    std::size_t k = 1 + rng.uniform(6);
    std::vector<Element> bases;
    std::vector<Scalar> exps;
    Element naive = Element::identity(grp());
    for (std::size_t i = 0; i < k; ++i) {
      bases.push_back(random_element(rng));
      // Mix degenerate exponents in: zero and q-1 hit the skip paths.
      Scalar e = rng.uniform(4) == 0 ? Scalar::zero(grp()) : Scalar::random(grp(), rng);
      exps.push_back(e);
      naive *= bases.back().pow(e);
    }
    EXPECT_EQ(multiexp(grp(), bases, exps), naive);
  }
}

TEST(Ec256Property, MultiexpIndexMatchesNaiveHorner) {
  Drbg rng(testprop::property_seed() ^ 0xec256002);
  for (std::size_t iter = 0; iter < testprop::property_cases(8); ++iter) {
    std::size_t k = 1 + rng.uniform(5);
    std::vector<Element> bases;
    for (std::size_t i = 0; i < k; ++i) bases.push_back(random_element(rng));
    // Indices beyond any n the engine uses, including ones whose powers
    // wrap q many times over — Horner must stay exact on the prime-order
    // curve with no order_q_bases escort.
    std::uint64_t idx = 1 + rng.uniform(1u << 20);
    Element naive = Element::identity(grp());
    Scalar ip = Scalar::one(grp());
    Scalar x = Scalar::from_u64(grp(), idx);
    for (std::size_t j = 0; j < k; ++j) {
      naive *= bases[j].pow(ip);
      ip = ip * x;
    }
    EXPECT_EQ(multiexp_index(grp(), bases, idx), naive);
    EXPECT_EQ(multiexp_index(grp(), bases, idx, /*order_q_bases=*/true), naive);
  }
}

TEST(Ec256Property, FixedBaseCombMatchesPow) {
  Drbg rng(testprop::property_seed() ^ 0xec256003);
  Element base = random_element(rng);
  std::unique_ptr<const FixedBaseTable> tab = FixedBaseTable::build(grp(), base.value());
  for (std::size_t iter = 0; iter < testprop::property_cases(16); ++iter) {
    Scalar e = iter == 0 ? Scalar::zero(grp()) : Scalar::random(grp(), rng);
    EXPECT_EQ(tab->pow(e), base.pow(e));
  }
}

TEST(Ec256Property, CtLadderMatchesVariableTime) {
  Drbg rng(testprop::property_seed() ^ 0xec256004);
  Element base = random_element(rng);
  for (std::size_t iter = 0; iter < testprop::property_cases(12); ++iter) {
    SecretScalar x = SecretScalar::random(grp(), rng);
    Scalar xr = x.reveal();
    EXPECT_EQ(x.commit_to(), Element::exp_g(xr));
    EXPECT_EQ(x.commit_to(base), base.pow(xr));
  }
}

// --- protocol algebra on the curve ----------------------------------------

TEST(Ec256Property, LagrangeRoundTrips) {
  Drbg rng(testprop::property_seed() ^ 0xec256005);
  for (std::size_t iter = 0; iter < testprop::property_cases(4); ++iter) {
    std::size_t t = 1 + rng.uniform(5);
    Polynomial a = Polynomial::random(grp(), t, rng);
    Scalar a0 = a.eval_at(0).reveal();
    std::vector<std::pair<std::uint64_t, Scalar>> pts;
    std::vector<std::pair<std::uint64_t, Element>> epts;
    for (std::uint64_t i = 1; i <= t + 1; ++i) {
      Scalar s = a.eval_at(i).reveal();
      pts.emplace_back(i, s);
      epts.emplace_back(i, Element::exp_g(s));
    }
    EXPECT_EQ(interpolate_at(grp(), pts, 0), a0);
    // Lagrange in the exponent drives a Straus multiexp on the curve.
    EXPECT_EQ(exp_interpolate_at(grp(), epts, 0), Element::exp_g(a0));
  }
}

TEST(Ec256Property, FeldmanVerifyRoundTrips) {
  Drbg rng(testprop::property_seed() ^ 0xec256006);
  std::size_t t = 3;
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp(), rng), t, rng);
  FeldmanMatrix mat = FeldmanMatrix::commit(f);
  for (std::uint64_t i = 1; i <= 2 * t + 1; ++i) {
    EXPECT_TRUE(mat.verify_poly(i, f.row(i)));
    for (std::uint64_t m = 1; m <= t + 1; ++m) {
      EXPECT_TRUE(mat.verify_point(i, m, f.eval_at(m, i).reveal()));
    }
  }
  EXPECT_FALSE(mat.verify_poly(1, f.row(2)));
  FeldmanVector vec = FeldmanVector::commit(f.row(1));
  for (std::uint64_t i = 1; i <= 2 * t + 1; ++i) {
    EXPECT_TRUE(vec.verify_share(i, f.eval_at(1, i).reveal()));
  }
  EXPECT_FALSE(vec.verify_share(1, f.eval_at(1, 2).reveal()));
}

TEST(Ec256Property, SchnorrSignVerifyAndBatchAttribution) {
  Drbg rng(testprop::property_seed() ^ 0xec256007);
  std::vector<KeyPair> kps;
  std::vector<Bytes> msgs;
  std::vector<Signature> sigs;
  for (std::size_t i = 0; i < 6; ++i) {
    kps.push_back(schnorr_keygen(grp(), rng));
    msgs.push_back(rng.bytes(24));
    sigs.push_back(schnorr_sign(kps.back(), msgs.back()));
    EXPECT_TRUE(schnorr_verify(kps.back().pk, msgs.back(), sigs.back()));
  }
  sigs[3].s = sigs[3].s + Scalar::one(grp());  // forge one response
  std::vector<SigCheck> checks;
  for (std::size_t i = 0; i < kps.size(); ++i) {
    checks.push_back({&kps[i].pk, &msgs[i], &sigs[i], nullptr});
  }
  std::vector<std::size_t> bad;
  EXPECT_FALSE(schnorr_verify_batch(grp(), checks, &bad));
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 3u);
}

TEST(Ec256Property, DleqProvesAndRejects) {
  Drbg rng(testprop::property_seed() ^ 0xec256008);
  Element g1 = Element::generator(grp());
  Element g2 = hash_to_group(grp(), bytes_of("ec256 dleq second base"));
  SecretScalar x = SecretScalar::random(grp(), rng);
  Element h1 = x.commit_to(g1);
  Element h2 = x.commit_to(g2);
  DleqProof proof = dleq_prove(g1, h1, g2, h2, x);
  EXPECT_TRUE(dleq_verify(g1, h1, g2, h2, proof));
  EXPECT_FALSE(dleq_verify(g1, h2, g2, h1, proof));
}

// --- strict decoder --------------------------------------------------------

TEST(Ec256Curve, DecodeRejectsMalformedVectors) {
  Bytes g = Element::generator(grp()).to_bytes();
  ec256::Point out;
  // Frame length: only exactly 33 bytes may decode.
  EXPECT_FALSE(ec256::decode(out, g.data(), 32));
  EXPECT_FALSE(ec256::decode(out, g.data(), 0));
  Bytes wide = g;
  wide.push_back(0);
  EXPECT_FALSE(ec256::decode(out, wide.data(), wide.size()));
  // Junk prefixes, including uncompressed-style 0x04.
  for (std::uint8_t prefix : {0x00, 0x01, 0x04, 0x05, 0xff}) {
    Bytes b = g;
    b[0] = prefix;
    EXPECT_FALSE(ec256::decode(out, b.data(), b.size())) << int(prefix);
  }
  // The identity is ONLY the all-zero frame; a zero x with a point prefix
  // must stand on its own merits and a nonzero tail under prefix 0 is junk.
  Bytes zid(ec256::kEncodedBytes, 0);
  ASSERT_TRUE(ec256::decode(out, zid.data(), zid.size()));
  EXPECT_TRUE(out.inf);
  zid[32] = 1;
  EXPECT_FALSE(ec256::decode(out, zid.data(), zid.size()));
  // Non-canonical x >= p (here x = p and x = 2^256 - 1).
  Bytes xp = mpz_to_bytes(grp().p(), 32);
  Bytes b(1, 0x02);
  b.insert(b.end(), xp.begin(), xp.end());
  EXPECT_FALSE(ec256::decode(out, b.data(), b.size()));
  Bytes ff(ec256::kEncodedBytes, 0xff);
  ff[0] = 0x03;
  EXPECT_FALSE(ec256::decode(out, ff.data(), ff.size()));
}

TEST(Ec256Property, DecodeSurvivesMutationAndStaysCanonical) {
  Drbg rng(testprop::property_seed() ^ 0xec256009);
  for (std::size_t iter = 0; iter < testprop::property_cases(64); ++iter) {
    Bytes frame = random_element(rng).to_bytes();
    // Random byte/bit damage anywhere in the frame.
    std::size_t at = rng.uniform(frame.size());
    frame[at] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    Element e = Element::from_bytes(grp(), frame);
    if (e.empty()) continue;  // rejected — fine
    // Anything accepted must be a genuine canonical group member: on the
    // curve, in the (whole) group, and re-encoding bit-exactly.
    EXPECT_TRUE(e.in_subgroup());
    EXPECT_TRUE(e.is_identity() || ec256::on_curve(e.point()));
    EXPECT_EQ(e.to_bytes(), frame);
  }
}

TEST(Ec256Property, CommitmentFramesRejectOrDecodeCleanly) {
  Drbg rng(testprop::property_seed() ^ 0xec25600a);
  std::size_t t = 2;
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp(), rng), t, rng);
  FeldmanMatrix mat = FeldmanMatrix::commit(f);
  const Bytes& frame = mat.to_bytes();
  EXPECT_EQ(frame.size(), 4 + (t + 1) * (t + 1) * grp().element_bytes());
  ASSERT_TRUE(FeldmanMatrix::from_bytes_checked(grp(), frame, t).has_value());
  for (std::size_t iter = 0; iter < testprop::property_cases(64); ++iter) {
    Bytes b = frame;
    switch (rng.uniform(4)) {
      case 0:
        b[rng.uniform(b.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
        break;
      case 1:
        b.resize(rng.uniform(b.size() + 1));
        break;
      case 2:
        b.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
        break;
      default: {
        std::size_t at = rng.uniform(b.size());
        std::size_t len = 1 + rng.uniform(std::min<std::size_t>(16, b.size() - at));
        for (std::size_t j = 0; j < len; ++j) {
          b[at + j] = static_cast<std::uint8_t>(rng.uniform(256));
        }
        break;
      }
    }
    std::optional<FeldmanMatrix> m = FeldmanMatrix::from_bytes_checked(grp(), b, t);
    if (!m.has_value()) continue;
    EXPECT_EQ(m->degree(), t);
    for (std::size_t j = 0; j <= t; ++j) {
      for (std::size_t l = 0; l <= t; ++l) {
        EXPECT_TRUE(m->entry(j, l).in_subgroup());
      }
    }
  }
}

}  // namespace
}  // namespace dkg::crypto
