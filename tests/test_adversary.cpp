// Adversary strategy library tests: the sim-layer delay adversaries
// (PartitionDelay, AdaptiveDelay), the engine-level AdversarySpec plumbing
// (names, churn plans, verdict columns), and the end-to-end properties the
// paper claims — safety under every strategy, liveness wherever promised,
// the E10 honest-mesh non-degradation, and bit-reproducible adversarial
// transcripts.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/adversary_spec.hpp"
#include "engine/runner.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "sim/adversary.hpp"
#include "sim/delay.hpp"

namespace dkg::engine {
namespace {

/// Minimal message carrying only a protocol-phase type tag, for driving the
/// DelayModel interfaces directly.
struct TaggedMsg : sim::Message {
  std::string tag;
  explicit TaggedMsg(std::string t) : tag(std::move(t)) {}
  std::string_view type() const override { return tag; }
  void serialize(Writer&) const override {}
};

sim::MessagePtr tagged(const std::string& t) { return std::make_shared<TaggedMsg>(t); }

ScenarioSpec adv_spec(Variant v, AdversaryKind kind, std::uint64_t seed = 11001) {
  ScenarioSpec spec;
  spec.variant = v;
  spec.label = std::string(variant_name(v)) + " adv=" + adversary_name(kind);
  spec.n = 7;
  spec.t = 1;
  spec.f = 1;
  spec.seed = seed;
  spec.adversary.kind = kind;
  return spec;
}

bool extra_bool(const ScenarioResult& r, std::string_view key) {
  const MetricValue* v = r.extra(key);
  const bool* b = v ? std::get_if<bool>(v) : nullptr;
  return b != nullptr && *b;
}

TEST(AdversarySpec, NamesRoundTripForEveryKind) {
  EXPECT_EQ(all_adversary_kinds().size(), 10u);
  for (AdversaryKind k : all_adversary_kinds()) {
    ASSERT_NE(k, AdversaryKind::None);
    auto back = adversary_from_name(adversary_name(k));
    ASSERT_TRUE(back.has_value()) << adversary_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_EQ(adversary_from_name("none"), AdversaryKind::None);
  EXPECT_FALSE(adversary_from_name("no-such-adversary").has_value());
}

TEST(PartitionDelayModel, HoldsOnlyCrossCutTrafficUntilTheHeal) {
  // Side {3,4} vs the rest; split during [20, 100). Cross-cut messages in
  // that window are held until just after the heal; same-side and
  // out-of-window traffic sees only the base delay.
  sim::PartitionDelay d(std::make_unique<sim::FixedDelay>(10), {3, 4}, /*split_at=*/20,
                        /*heal_at=*/100);
  crypto::Drbg rng(1);
  sim::MessagePtr msg = tagged("vss.echo");
  EXPECT_EQ(d.delay(1, 3, msg, /*now=*/10, rng), 10u);   // before the split
  EXPECT_EQ(d.delay(1, 3, msg, /*now=*/50, rng), 60u);   // held: (100-50) + 10
  EXPECT_EQ(d.delay(3, 1, msg, /*now=*/50, rng), 60u);   // both directions
  EXPECT_EQ(d.delay(3, 4, msg, /*now=*/50, rng), 10u);   // same minority side
  EXPECT_EQ(d.delay(1, 2, msg, /*now=*/50, rng), 10u);   // same majority side
  EXPECT_EQ(d.delay(1, 3, msg, /*now=*/100, rng), 10u);  // healed
}

TEST(AdaptiveDelayModel, StallsOnlyCorruptedFrontierLinks) {
  // The phase ladder orders the protocol; the adversary stalls exactly
  // frontier-phase traffic with a corrupted endpoint. Honest-to-honest
  // links and already-passed phases are never penalized (E10's setting).
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("vss.send"), 1);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("vss.echo"), 2);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("vss.ready"), 3);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("dkg.send"), 4);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("dkg.echo"), 5);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("dkg.ready"), 6);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("dkg.lead-ch"), 7);
  EXPECT_EQ(sim::AdaptiveDelay::phase_rank("vss.rec-share"), 0);

  sim::AdaptiveDelay d(std::make_unique<sim::FixedDelay>(10), {7}, /*penalty=*/1000);
  crypto::Drbg rng(1);
  // Frontier starts at vss.send: corrupted links at the frontier stall.
  EXPECT_EQ(d.delay(1, 7, tagged("vss.send"), 0, rng), 1010u);
  EXPECT_EQ(d.delay(1, 2, tagged("vss.send"), 0, rng), 10u);  // honest mesh untouched
  // vss.echo advances the frontier to rank 2...
  EXPECT_EQ(d.delay(7, 2, tagged("vss.echo"), 5, rng), 1010u);
  // ...so stale vss.send traffic is now let through even on corrupted links.
  EXPECT_EQ(d.delay(1, 7, tagged("vss.send"), 6, rng), 10u);
  // Messages outside the phase ladder are never stalled.
  EXPECT_EQ(d.delay(1, 7, tagged("vss.rec-share"), 7, rng), 10u);
}

TEST(AdversarySpec, ChurnStormPlanIsDeterministicAndBudgeted) {
  ScenarioSpec spec = adv_spec(Variant::Dkg, AdversaryKind::ChurnStorm);
  sim::FaultPlan a = churn_storm_plan(spec);
  sim::FaultPlan b = churn_storm_plan(spec);
  ASSERT_EQ(a.windows().size(), b.windows().size());
  EXPECT_EQ(a.windows().size(), 2 * spec.f);  // default budget 2f, feasible here
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_EQ(a.windows()[i].node, b.windows()[i].node);
    EXPECT_EQ(a.windows()[i].crash_at, b.windows()[i].crash_at);
    EXPECT_EQ(a.windows()[i].recover_at, b.windows()[i].recover_at);
    EXPECT_NE(a.windows()[i].node, 1u);  // the dealer/leader is spared
  }
  // A different seed moves the storm: plans are a pure function of the spec.
  ScenarioSpec other = adv_spec(Variant::Dkg, AdversaryKind::ChurnStorm, /*seed=*/11002);
  sim::FaultPlan c = churn_storm_plan(other);
  bool identical = a.windows().size() == c.windows().size();
  for (std::size_t i = 0; identical && i < a.windows().size(); ++i) {
    identical = a.windows()[i].node == c.windows()[i].node &&
                a.windows()[i].crash_at == c.windows()[i].crash_at;
  }
  EXPECT_FALSE(identical);
}

TEST(AdversaryEngine, EveryKindYieldsSafetyAndLivenessVerdictsOnVssAndDkg) {
  // The tentpole's acceptance gate in miniature: each strategy runs on a
  // lone-sharing grid and on the full DKG, and every run must end with
  // safety_ok (agreement never broke) and liveness_ok (completion wherever
  // the hybrid model promises it) — i.e. res.ok.
  for (Variant v : {Variant::HybridVss, Variant::Dkg}) {
    for (AdversaryKind kind : all_adversary_kinds()) {
      ScenarioSpec spec = adv_spec(v, kind);
      ScenarioResult res = run_scenario(spec);
      EXPECT_TRUE(res.completed) << spec.label;
      EXPECT_TRUE(extra_bool(res, "safety_ok")) << spec.label;
      EXPECT_TRUE(extra_bool(res, "liveness_ok")) << spec.label;
      EXPECT_TRUE(res.ok) << spec.label;
      ASSERT_NE(res.extra("adversary"), nullptr) << spec.label;
      EXPECT_EQ(std::get<std::string>(*res.extra("adversary")), adversary_name(kind))
          << spec.label;
    }
  }
}

TEST(AdversaryEngine, AdversarialTranscriptsAreBitReproducible) {
  // Identical specs must replay identical transcripts — messages, bytes and
  // simulated completion time — for every strategy (the ISSUE's acceptance
  // bar: all adversarial runs are a pure function of derived_seed).
  for (AdversaryKind kind : all_adversary_kinds()) {
    ScenarioSpec spec = adv_spec(Variant::Dkg, kind);
    ScenarioResult a = run_scenario(spec);
    ScenarioResult b = run_scenario(spec);
    EXPECT_EQ(a.messages, b.messages) << spec.label;
    EXPECT_EQ(a.bytes, b.bytes) << spec.label;
    EXPECT_EQ(a.completion_time, b.completion_time) << spec.label;
    EXPECT_EQ(a.ok, b.ok) << spec.label;
  }
}

TEST(AdversaryEngine, LeaderFaultsForceALeaderChange) {
  // A mute or selectively-delivering view-1 leader must be voted out: the
  // run completes in a later view via the Fig 3 timeout + lead-ch path.
  for (AdversaryKind kind : {AdversaryKind::SilentLeader, AdversaryKind::SelectiveLeader}) {
    ScenarioSpec spec = adv_spec(Variant::Dkg, kind);
    ScenarioResult res = run_scenario(spec);
    EXPECT_TRUE(res.ok) << spec.label;
    EXPECT_GT(res.extra_u64("final_view"), 1u) << spec.label;
    EXPECT_GT(res.extra_u64("lead_changes"), 0u) << spec.label;
  }
}

TEST(AdversaryEngine, AdaptiveDelayDoesNotSlowTheHonestMesh) {
  // E10: the adversary stalls its own frontier links by `penalty` ticks
  // (default 100'000). If any honest-path message were stalled even once,
  // completion_time would exceed the penalty — the honest mesh must finish
  // far below it.
  ScenarioSpec spec = adv_spec(Variant::Dkg, AdversaryKind::AdaptiveDelay);
  ScenarioResult res = run_scenario(spec);
  EXPECT_TRUE(res.ok) << spec.label;
  EXPECT_TRUE(extra_bool(res, "liveness_ok"));
  EXPECT_LT(res.completion_time, spec.adversary.penalty);
}

TEST(AdversaryEngine, SweepOverAllKindsMatchesSequentialRun) {
  // The full adversary grid through the SweepDriver: runner singletons are
  // shared across worker threads, so adversarial state (corrupted sets,
  // storm victims, coalitions) must live per-run, never on the runner. A
  // --jobs 4 sweep must reproduce the --jobs 1 metrics bit-for-bit — and
  // the tsan CI leg replays this test to prove it data-race-free.
  SweepDriver driver;
  for (Variant v : {Variant::HybridVss, Variant::Dkg}) {
    for (AdversaryKind kind : all_adversary_kinds()) driver.add(adv_spec(v, kind));
  }
  std::vector<ScenarioResult> seq = driver.run(1);
  std::vector<ScenarioResult> par = driver.run(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::string& label = driver.specs()[i].label;
    EXPECT_TRUE(par[i].ok) << label;
    EXPECT_EQ(seq[i].messages, par[i].messages) << label;
    EXPECT_EQ(seq[i].bytes, par[i].bytes) << label;
    EXPECT_EQ(seq[i].completion_time, par[i].completion_time) << label;
    EXPECT_EQ(seq[i].ok, par[i].ok) << label;
  }
}

TEST(AdversaryEngine, InactiveSpecLeavesLegacyScenariosUntouched) {
  // kind == None must be byte-for-byte the pre-adversary engine: same
  // derived seed, same transcript, no verdict columns.
  ScenarioSpec plain;
  plain.variant = Variant::Dkg;
  plain.label = "legacy";
  plain.n = 7;
  plain.t = 1;
  plain.f = 1;
  plain.seed = 4242;
  ScenarioSpec with_inactive = plain;
  with_inactive.adversary.penalty = 77;  // knobs are inert while kind == None
  EXPECT_EQ(plain.derived_seed(), with_inactive.derived_seed());
  ScenarioResult a = run_scenario(plain);
  ScenarioResult b = run_scenario(with_inactive);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.extra("safety_ok"), nullptr);
  EXPECT_EQ(b.extra("safety_ok"), nullptr);
}

}  // namespace
}  // namespace dkg::engine
