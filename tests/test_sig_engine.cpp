// Signature-verification engine tests (ctest label `sig`):
//  * VerifiedSigCache key/insert/eviction semantics and the no-negatives
//    rule (a forged signature is re-verified on every sight — the cache
//    cannot be poisoned into accepting or denying);
//  * comb-table and batch-path parity with plain schnorr_verify, including
//    Byzantine attribution: one forged signature inside an otherwise-valid
//    DealerProof / ProposalProof names exactly the forging signer;
//  * the set_sig_cache / set_sig_batch A/B knobs: a full DKG run produces
//    bit-identical Metrics and outputs in every on/off combination;
//  * engine stats: a DKG run's cache hit rate reflects the n^3 -> n^2
//    dedup (each distinct ready-sig verifies once per process);
//  * concurrent first touch of the per-ring cache and comb tables (the
//    TSan leg).
#include <gtest/gtest.h>

#include <thread>

#include "crypto/keyring.hpp"
#include "crypto/sigverify.hpp"
#include "dkg/proofs.hpp"
#include "dkg/runner.hpp"
#include "vss/vss_messages.hpp"

namespace dkg {
namespace {

using crypto::Drbg;
using crypto::FixedBaseTable;
using crypto::Group;
using crypto::KeyPair;
using crypto::Keyring;
using crypto::schnorr_keygen;
using crypto::schnorr_sign;
using crypto::schnorr_verify;
using crypto::schnorr_verify_batch;
using crypto::SigCheck;
using crypto::Signature;
using crypto::SignerTables;
using crypto::VerifiedSigCache;

const Group& grp() { return Group::tiny256(); }

/// Restores the engine knobs and resets stats around each test that
/// touches process-global state.
struct EngineGuard {
  bool cache = crypto::sig_cache_enabled();
  bool batch = crypto::sig_batch_enabled();
  bool memo = crypto::point_memo_enabled();
  EngineGuard() { crypto::sig_verify_reset_stats(); }
  ~EngineGuard() {
    crypto::set_sig_cache(cache);
    crypto::set_sig_batch(batch);
    crypto::set_point_memo(memo);
  }
};

// --- VerifiedSigCache -------------------------------------------------------

TEST(SigEngine, CacheKeyIsDistinctPerComponent) {
  Drbg rng(1);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Bytes msg_a = bytes_of("payload a");
  Bytes msg_b = bytes_of("payload b");
  Signature sig_a = schnorr_sign(kp, msg_a);
  Signature sig_b = schnorr_sign(kp, msg_b);

  Bytes base = VerifiedSigCache::key(grp(), 1, msg_a, sig_a);
  EXPECT_EQ(base, VerifiedSigCache::key(grp(), 1, msg_a, sig_a));  // deterministic
  EXPECT_NE(base, VerifiedSigCache::key(grp(), 2, msg_a, sig_a));  // signer
  EXPECT_NE(base, VerifiedSigCache::key(grp(), 1, msg_b, sig_a));  // payload
  EXPECT_NE(base, VerifiedSigCache::key(grp(), 1, msg_a, sig_b));  // signature
  // Backend/group tag: an identical (signer, payload, sig) tuple under a
  // different parameter set must land on a different key.
  EXPECT_NE(base, VerifiedSigCache::key(Group::ec256(), 1, msg_a, sig_a));
  // SEC02: keys are fixed-width digests, never the payload itself.
  EXPECT_EQ(base.size(), 32u);
}

TEST(SigEngine, CacheFifoEviction) {
  VerifiedSigCache cache(2);
  Drbg rng(2);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Bytes k1 = VerifiedSigCache::key(grp(), 1, bytes_of("m1"), schnorr_sign(kp, bytes_of("m1")));
  Bytes k2 = VerifiedSigCache::key(grp(), 2, bytes_of("m2"), schnorr_sign(kp, bytes_of("m2")));
  Bytes k3 = VerifiedSigCache::key(grp(), 3, bytes_of("m3"), schnorr_sign(kp, bytes_of("m3")));
  cache.insert(k1);
  cache.insert(k1);  // duplicate insert is a no-op, not a second FIFO slot
  cache.insert(k2);
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(k3);  // bound is 2: the oldest (k1) falls out
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains(k1));
  EXPECT_TRUE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
}

TEST(SigEngine, NegativeVerifyIsNeverCached) {
  EngineGuard guard;
  auto ring = Keyring::generate(grp(), 4, 7);
  Bytes msg = bytes_of("the payload");
  Signature good = ring->sign_as(1, msg);
  Signature forged = ring->sign_as(1, bytes_of("something else"));

  // The forged signature fails every time — including after a success for
  // the same (signer, payload) landed in the cache — and a failure never
  // blocks the genuine signature.
  EXPECT_FALSE(ring->verify_from(1, msg, forged));
  EXPECT_TRUE(ring->verify_from(1, msg, good));
  EXPECT_FALSE(ring->verify_from(1, msg, forged));
  EXPECT_TRUE(ring->verify_from(1, msg, good));  // served from cache
  crypto::SigVerifyStats stats = crypto::sig_verify_stats();
  EXPECT_EQ(stats.cache_inserts, 1u);  // only the positive went in
  EXPECT_GE(stats.cache_hits, 1u);
}

// --- comb tables and the batch path ----------------------------------------

TEST(SigEngine, CombTableVerifyMatchesPlain) {
  Drbg rng(3);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Bytes msg = bytes_of("comb parity");
  Signature sig = schnorr_sign(kp, msg);
  Signature bad = schnorr_sign(kp, bytes_of("other"));
  auto table = FixedBaseTable::build(grp(), kp.pk.value());

  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig));
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig, table.get()));
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig, nullptr));  // falls through
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, bad));
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, bad, table.get()));
}

TEST(SigEngine, SignerTablesBuildAfterThreshold) {
  EngineGuard guard;
  Drbg rng(4);
  KeyPair kp = schnorr_keygen(grp(), rng);
  SignerTables tables(1);
  for (std::uint32_t i = 0; i + 1 < SignerTables::kBuildThreshold; ++i) {
    EXPECT_EQ(tables.for_slot(0, grp(), kp.pk), nullptr);
  }
  const FixedBaseTable* t = tables.for_slot(0, grp(), kp.pk);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(tables.for_slot(0, grp(), kp.pk), t);  // stable afterwards
  EXPECT_EQ(crypto::sig_verify_stats().comb_builds, 1u);
}

TEST(SigEngine, BatchAllValid) {
  EngineGuard guard;
  Drbg rng(5);
  Bytes msg = bytes_of("shared proof payload");
  std::vector<KeyPair> kps;
  std::vector<Signature> sigs;
  for (int i = 0; i < 5; ++i) {
    kps.push_back(schnorr_keygen(grp(), rng));
    sigs.push_back(schnorr_sign(kps.back(), msg));
  }
  std::vector<SigCheck> checks;
  for (int i = 0; i < 5; ++i) checks.push_back(SigCheck{&kps[i].pk, &msg, &sigs[i], nullptr});

  std::vector<std::size_t> bad;
  EXPECT_TRUE(schnorr_verify_batch(grp(), checks, &bad));
  EXPECT_TRUE(bad.empty());
  EXPECT_EQ(crypto::sig_verify_stats().batch_fallbacks, 0u);
  EXPECT_TRUE(schnorr_verify_batch(grp(), {}));  // empty batch is vacuous
}

TEST(SigEngine, BatchAttributesForgedItems) {
  EngineGuard guard;
  Drbg rng(6);
  Bytes msg = bytes_of("shared proof payload");
  std::vector<KeyPair> kps;
  std::vector<Signature> sigs;
  for (int i = 0; i < 5; ++i) {
    kps.push_back(schnorr_keygen(grp(), rng));
    sigs.push_back(schnorr_sign(kps.back(), msg));
  }
  sigs[2] = schnorr_sign(kps[2], bytes_of("forged"));  // wrong payload
  sigs[4].s = sigs[4].c;                               // mangled response
  std::vector<SigCheck> checks;
  for (int i = 0; i < 5; ++i) checks.push_back(SigCheck{&kps[i].pk, &msg, &sigs[i], nullptr});

  std::vector<std::size_t> bad;
  EXPECT_FALSE(schnorr_verify_batch(grp(), checks, &bad));
  EXPECT_EQ(bad, (std::vector<std::size_t>{2, 4}));
  // Each failing item was re-confirmed through the per-item path.
  EXPECT_EQ(crypto::sig_verify_stats().batch_fallbacks, 2u);
}

TEST(SigEngine, VerifyManyMatchesPerItemInEveryMode) {
  for (bool cache_on : {true, false}) {
    for (bool batch_on : {true, false}) {
      EngineGuard guard;
      crypto::set_sig_cache(cache_on);
      crypto::set_sig_batch(batch_on);
      auto ring = Keyring::generate(grp(), 6, 11);
      Bytes msg = bytes_of("verify_many payload");
      std::vector<Signature> sigs;
      for (std::uint32_t i = 1; i <= 6; ++i) sigs.push_back(ring->sign_as(i, msg));
      sigs[3] = ring->sign_as(4, bytes_of("forged"));

      std::vector<Keyring::SignerRef> refs;
      for (std::uint32_t i = 1; i <= 6; ++i) refs.push_back({i, &sigs[i - 1]});
      refs.push_back({99, &sigs[0]});  // out-of-range signer

      std::vector<std::uint32_t> bad;
      EXPECT_FALSE(ring->verify_many(refs, msg, &bad))
          << "cache=" << cache_on << " batch=" << batch_on;
      ASSERT_EQ(bad.size(), 2u);
      EXPECT_EQ(bad[0], 99u);  // structural rejects are reported first
      EXPECT_EQ(bad[1], 4u);

      // The valid five still verify — individually and as a set.
      refs.resize(6);
      refs.erase(refs.begin() + 3);
      EXPECT_TRUE(ring->verify_many(refs, msg));
      for (std::uint32_t i = 1; i <= 6; ++i) {
        EXPECT_EQ(ring->verify_from(i, msg, sigs[i - 1]), i != 4);
      }
    }
  }
}

// --- Byzantine attribution through the proof layer --------------------------

TEST(SigEngine, ForgedSigInDealerProofIsAttributedAndCacheStaysClean) {
  EngineGuard guard;
  const std::uint32_t tau = 1;
  auto ring = Keyring::generate(grp(), 7, 21);
  core::DealerProof proof;
  proof.dealer = 3;
  proof.commit_digest = bytes_of("0123456789abcdef0123456789abcdef");
  Bytes payload = vss::ready_sig_payload(vss::SessionId{proof.dealer, tau}, proof.commit_digest);
  for (std::uint32_t s = 1; s <= 5; ++s) {
    proof.sigs.push_back(vss::ReadySig{s, ring->sign_as(s, payload)});
  }
  Signature genuine = proof.sigs[3].sig;
  proof.sigs[3].sig = ring->sign_as(4, bytes_of("forged ready"));

  std::vector<sim::NodeId> bad;
  EXPECT_FALSE(core::verify_dealer_proof(*ring, tau, proof, 5, &bad));
  EXPECT_EQ(bad, (std::vector<sim::NodeId>{4}));

  // No poisoning in either direction: the failed proof did not cache the
  // forgery as valid, and did not block signer 4's genuine signature.
  EXPECT_FALSE(ring->verify_from(4, payload, proof.sigs[3].sig));
  proof.sigs[3].sig = genuine;
  EXPECT_TRUE(core::verify_dealer_proof(*ring, tau, proof, 5));
  // The honest signers' sigs were cached by the failed attempt (positives
  // only), so the retry re-verified at most signer 4.
  EXPECT_GE(crypto::sig_verify_stats().cache_hits, 4u);
}

TEST(SigEngine, ForgedSigInProposalProofIsAttributed) {
  EngineGuard guard;
  const std::uint32_t tau = 2;
  auto ring = Keyring::generate(grp(), 7, 22);
  core::NodeSet q{1, 2, 3};
  core::ProposalProof proof;
  proof.kind = core::ProposalProof::Kind::Echo;
  proof.view = 1;
  proof.q = q;
  Bytes payload = core::dkg_echo_payload(tau, proof.view, q);
  for (std::uint32_t s = 1; s <= 5; ++s) {
    proof.sigs.push_back(core::SignerSig{s, ring->sign_as(s, payload)});
  }
  proof.sigs[1].sig = ring->sign_as(2, core::dkg_ready_payload(tau, proof.view, q));

  std::vector<sim::NodeId> bad;
  EXPECT_FALSE(core::verify_proposal_proof(*ring, tau, proof, q, 5, 2, &bad));
  EXPECT_EQ(bad, (std::vector<sim::NodeId>{2}));

  std::vector<core::SignerSig> lead_sigs;
  Bytes lead_payload = core::lead_ch_payload(tau, 3);
  for (std::uint32_t s = 1; s <= 5; ++s) {
    lead_sigs.push_back(core::SignerSig{s, ring->sign_as(s, lead_payload)});
  }
  lead_sigs[4].sig = lead_sigs[0].sig;  // signer 5 replaying signer 1's sig
  bad.clear();
  EXPECT_FALSE(core::verify_lead_ch_proof(*ring, tau, 3, lead_sigs, 5, &bad));
  EXPECT_EQ(bad, (std::vector<sim::NodeId>{5}));
}

// --- A/B knobs: engine on/off is invisible in results -----------------------

void expect_metrics_equal(const sim::Metrics& a, const sim::Metrics& b) {
  ASSERT_EQ(a.by_type().size(), b.by_type().size());
  for (const auto& [type, stats] : a.by_type()) {
    auto it = b.by_type().find(type);
    ASSERT_NE(it, b.by_type().end()) << type;
    EXPECT_EQ(stats.count, it->second.count) << type;
    EXPECT_EQ(stats.bytes, it->second.bytes) << type;
  }
  EXPECT_EQ(a.dropped_messages(), b.dropped_messages());
  EXPECT_EQ(a.invalid_messages(), b.invalid_messages());
}

TEST(SigEngine, DkgRunIdenticalWithEngineOff) {
  EngineGuard guard;
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 424242;

  core::DkgRunner engine_on(cfg);
  engine_on.start_all();
  ASSERT_TRUE(engine_on.run_to_completion());

  crypto::set_sig_cache(false);
  crypto::set_sig_batch(false);
  crypto::set_point_memo(false);
  core::DkgRunner engine_off(cfg);
  engine_off.start_all();
  ASSERT_TRUE(engine_off.run_to_completion());

  // The engine only removes redundant verification work: counts, byte
  // totals, the simulated clock and every protocol output must match.
  expect_metrics_equal(engine_on.simulator().metrics(), engine_off.simulator().metrics());
  EXPECT_EQ(engine_on.simulator().now(), engine_off.simulator().now());
  ASSERT_EQ(engine_on.completed_nodes().size(), cfg.n);
  ASSERT_EQ(engine_off.completed_nodes().size(), cfg.n);
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    const core::DkgOutput& on = engine_on.dkg_node(i).output();
    const core::DkgOutput& off = engine_off.dkg_node(i).output();
    EXPECT_TRUE(on.q == off.q);
    EXPECT_EQ(on.public_key, off.public_key);
    EXPECT_TRUE(on.share.ct_eq(off.share));
  }
}

TEST(SigEngine, DkgRunPointMemoHitsReflectEchoReadyOverlap) {
  // Each sender's ready point repeats its echo point f(m, i), so with the
  // memo on roughly half the accept-point verifies are served from the
  // positive memo; off, every point pays a full verify-share.
  EngineGuard guard;
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 90210;
  core::DkgRunner memo_on(cfg);
  memo_on.start_all();
  ASSERT_TRUE(memo_on.run_to_completion());
  crypto::SigVerifyStats stats = crypto::sig_verify_stats();
  EXPECT_GT(stats.point_memo_hits, 0u);
  EXPECT_GT(stats.point_memo_misses, 0u);
  EXPECT_GE(2 * stats.point_memo_hits, stats.point_memo_misses);

  crypto::sig_verify_reset_stats();
  crypto::set_point_memo(false);
  core::DkgRunner memo_off(cfg);
  memo_off.start_all();
  ASSERT_TRUE(memo_off.run_to_completion());
  crypto::SigVerifyStats off = crypto::sig_verify_stats();
  EXPECT_EQ(off.point_memo_hits, 0u);
  EXPECT_GT(off.point_memo_misses, stats.point_memo_misses);
  expect_metrics_equal(memo_on.simulator().metrics(), memo_off.simulator().metrics());
}

// --- stats over a full DKG run ----------------------------------------------

TEST(SigEngine, DkgRunCacheHitRateReflectsSharedVerifies) {
  EngineGuard guard;
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 31337;
  core::DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());

  crypto::SigVerifyStats stats = crypto::sig_verify_stats();
  // Every distinct (signer, payload, sig) verifies once (a miss) and is
  // then served from the ring's cache for the other ~n receivers and every
  // proof-set re-check: the hit rate is the n^3 -> n^2 collapse. With the
  // cache on, the batch path stays idle — proof signatures are all
  // cache-resident by the time certificates are checked.
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GE(stats.cache_hits, 2 * stats.cache_misses);
  EXPECT_EQ(stats.cache_inserts, stats.cache_misses);  // all verifies succeeded
  EXPECT_EQ(stats.batch_fallbacks, 0u);

  // Cache off: certificate verification must route the proof sets through
  // the batch path instead (and still never fall back on honest sigs).
  crypto::sig_verify_reset_stats();
  crypto::set_sig_cache(false);
  core::DkgRunner uncached(cfg);
  uncached.start_all();
  ASSERT_TRUE(uncached.run_to_completion());
  stats = crypto::sig_verify_stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_GT(stats.batch_calls, 0u);
  EXPECT_GT(stats.batch_items, stats.batch_calls);  // proof sets, not singles
  EXPECT_EQ(stats.batch_fallbacks, 0u);
}

// --- concurrent first touch (the TSan leg) ----------------------------------

TEST(SigEngine, ConcurrentFirstTouchOfCacheAndCombTables) {
  constexpr int kThreads = 8;
  EngineGuard guard;
  auto ring = Keyring::generate(grp(), 4, 77);
  Bytes msg = bytes_of("raced payload");
  Signature sig = ring->sign_as(2, msg);
  Signature bad = ring->sign_as(2, bytes_of("not the payload"));

  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  threads.reserve(kThreads);
  for (int k = 0; k < kThreads; ++k) {
    threads.emplace_back([&, k] {
      bool good = true;
      // Enough iterations that every thread crosses the comb-table build
      // threshold: first touch of the cache entry AND the table race here.
      for (std::uint32_t i = 0; i < SignerTables::kBuildThreshold + 4; ++i) {
        good = good && ring->verify_from(2, msg, sig);
        good = good && !ring->verify_from(2, msg, bad);
      }
      ok[k] = good ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int k = 0; k < kThreads; ++k) EXPECT_EQ(ok[k], 1) << "thread " << k;
  EXPECT_EQ(crypto::sig_verify_stats().cache_inserts, 1u);
  EXPECT_EQ(crypto::sig_verify_stats().comb_builds, 1u);
}

}  // namespace
}  // namespace dkg
