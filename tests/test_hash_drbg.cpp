// Unit tests: SHA-256 against FIPS 180-4 vectors, ChaCha20 against the
// RFC 8439 test vector, and DRBG determinism properties.
#include <gtest/gtest.h>

#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::uint8_t b : msg) h.update(&b, 1);
  EXPECT_EQ(h.finish(), sha256(msg));
}

TEST(Sha256, FramedIsInjective) {
  // ("ab", "c") and ("a", "bc") must hash differently.
  Bytes ab = bytes_of("ab"), c = bytes_of("c"), a = bytes_of("a"), bc = bytes_of("bc");
  EXPECT_NE(sha256_framed({&ab, &c}), sha256_framed({&a, &bc}));
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2.
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce{0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                     0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = chacha20_block(key, nonce, 1);
  Bytes out(block.begin(), block.end());
  EXPECT_EQ(to_hex(out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Drbg, DeterministicGivenSeed) {
  Drbg a(123), b(123);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(123), b(124);
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, ForkIsIndependentOfParentConsumption) {
  Drbg a(5);
  Drbg fork1 = a.fork("x");
  a.bytes(100);  // consuming the parent must not change the fork stream
  Drbg b(5);
  Drbg fork2 = b.fork("x");
  EXPECT_EQ(fork1.bytes(32), fork2.bytes(32));
}

TEST(Drbg, ForkLabelsSeparateStreams) {
  Drbg a(5);
  EXPECT_NE(a.fork("x").bytes(32), a.fork("y").bytes(32));
}

TEST(Drbg, UniformRespectsBound) {
  Drbg a(99);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(a.uniform(17), 17u);
}

TEST(Drbg, UniformCoversRange) {
  Drbg a(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(a.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Drbg, UniformRealInUnitInterval) {
  Drbg a(3);
  for (int i = 0; i < 1000; ++i) {
    double v = a.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace dkg::crypto
