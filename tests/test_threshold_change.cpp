// Protocol tests: security-threshold and crash-limit modification at the
// phase change (paper §6.4) — realized by "correctly changing the degrees
// of the resharing polynomials" during share renewal.
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "proactive/runner.hpp"

namespace dkg::proactive {
namespace {

using crypto::Element;
using crypto::Scalar;

core::RunnerConfig config(std::size_t n, std::size_t t, std::size_t f, std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.f = f;
  cfg.seed = seed;
  return cfg;
}

TEST(ThresholdChange, IncreaseThresholdPreservesSecret) {
  // n=10 supports t=1..3 (with f small): renew from t=1 to t=2.
  ProactiveRunner runner(config(10, 1, 1, 401));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  Element pk = runner.public_key();
  ASSERT_TRUE(runner.set_thresholds(2, 1));
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.t(), 2u);
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_TRUE(runner.shares_consistent());
  EXPECT_EQ(runner.reconstruct(), secret);  // now needs t+1 = 3 shares
}

TEST(ThresholdChange, IncreasedThresholdActuallyBinds) {
  // After raising t to 2, two shares must no longer determine the secret.
  ProactiveRunner runner(config(10, 1, 1, 402));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  ASSERT_TRUE(runner.set_thresholds(2, 1));
  ASSERT_TRUE(runner.run_renewal());
  std::vector<std::pair<std::uint64_t, Scalar>> two{{1, runner.states()[1].share.reveal()},
                                                    {2, runner.states()[2].share.reveal()}};
  EXPECT_NE(crypto::interpolate_at(*config(10, 1, 1, 0).grp, two, 0), secret);
}

TEST(ThresholdChange, DecreaseThresholdPreservesSecret) {
  // Renew from t=2 down to t=1: the agreed set must still contain
  // t_old + 1 = 3 dealers so the old degree-2 polynomial interpolates.
  ProactiveRunner runner(config(10, 2, 1, 403));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  Element pk = runner.public_key();
  ASSERT_TRUE(runner.set_thresholds(1, 1));
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.t(), 1u);
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_TRUE(runner.shares_consistent());
  EXPECT_EQ(runner.reconstruct(), secret);  // now only 2 shares needed
}

TEST(ThresholdChange, CrashLimitChangeOnly) {
  // f 1 -> 2 (n=10, t=1: 10 >= 3+4+1): quorums shift from 8 to 7.
  ProactiveRunner runner(config(10, 1, 1, 404));
  ASSERT_TRUE(runner.run_dkg());
  Element pk = runner.public_key();
  ASSERT_TRUE(runner.set_thresholds(1, 2));
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.f(), 2u);
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_TRUE(runner.shares_consistent());
}

TEST(ThresholdChange, RejectsResilienceViolation) {
  ProactiveRunner runner(config(10, 1, 1, 405));
  ASSERT_TRUE(runner.run_dkg());
  EXPECT_FALSE(runner.set_thresholds(3, 1));  // 10 < 9 + 2 + 1
  EXPECT_FALSE(runner.set_thresholds(2, 2));  // 10 < 6 + 4 + 1
  EXPECT_EQ(runner.t(), 1u);
  EXPECT_EQ(runner.f(), 1u);
  // And the unchanged configuration still renews fine.
  EXPECT_TRUE(runner.run_renewal());
}

TEST(ThresholdChange, SequenceOfChangesStaysConsistent) {
  ProactiveRunner runner(config(13, 1, 1, 406));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  Element pk = runner.public_key();
  // t: 1 -> 2 -> 3 -> 2.
  for (std::size_t t_next : {2u, 3u, 2u}) {
    ASSERT_TRUE(runner.set_thresholds(t_next, 1));
    ASSERT_TRUE(runner.run_renewal()) << "to t=" << t_next;
    EXPECT_EQ(runner.public_key(), pk);
    EXPECT_TRUE(runner.shares_consistent());
    EXPECT_EQ(runner.reconstruct(), secret);
  }
}

}  // namespace
}  // namespace dkg::proactive
