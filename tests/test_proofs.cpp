// Unit tests: the DKG's signed proof sets (paper §4) — dealer proofs R_d,
// proposal proofs M, and lead-ch legitimacy proofs, including the forgery
// and replay cases a Byzantine leader would attempt.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "dkg/proofs.hpp"

namespace dkg::core {
namespace {

using crypto::Group;
using crypto::Keyring;

struct ProofFixture : ::testing::Test {
  void SetUp() override {
    ring = Keyring::generate(Group::tiny256(), 10, 7);
    digest = crypto::sha256(bytes_of("commitment"));
  }

  DealerProof make_dealer_proof(sim::NodeId dealer, std::uint32_t tau, std::size_t signers) {
    DealerProof p;
    p.dealer = dealer;
    p.commit_digest = digest;
    Bytes payload = vss::ready_sig_payload(vss::SessionId{dealer, tau}, digest);
    for (sim::NodeId s = 1; s <= signers; ++s) {
      p.sigs.push_back(vss::ReadySig{s, ring->sign_as(s, payload)});
    }
    return p;
  }

  std::shared_ptr<const Keyring> ring;
  Bytes digest;
};

TEST_F(ProofFixture, DealerProofAcceptsQuorum) {
  DealerProof p = make_dealer_proof(3, 1, 7);
  EXPECT_TRUE(verify_dealer_proof(*ring, 1, p, 7));
}

TEST_F(ProofFixture, DealerProofRejectsBelowQuorum) {
  DealerProof p = make_dealer_proof(3, 1, 6);
  EXPECT_FALSE(verify_dealer_proof(*ring, 1, p, 7));
}

TEST_F(ProofFixture, DealerProofDuplicateSignersDontCount) {
  DealerProof p = make_dealer_proof(3, 1, 6);
  p.sigs.push_back(p.sigs.front());  // same signer twice
  EXPECT_FALSE(verify_dealer_proof(*ring, 1, p, 7));
}

TEST_F(ProofFixture, DealerProofBoundToSession) {
  DealerProof p = make_dealer_proof(3, 1, 7);
  EXPECT_FALSE(verify_dealer_proof(*ring, 2, p, 7));  // wrong tau
  p.dealer = 4;                                       // wrong dealer
  EXPECT_FALSE(verify_dealer_proof(*ring, 1, p, 7));
}

TEST_F(ProofFixture, DealerProofBoundToCommitment) {
  DealerProof p = make_dealer_proof(3, 1, 7);
  p.commit_digest = crypto::sha256(bytes_of("other"));
  EXPECT_FALSE(verify_dealer_proof(*ring, 1, p, 7));
}

TEST_F(ProofFixture, ProposalProofEchoAndReadyQuorums) {
  NodeSet q{1, 2, 3};
  auto make = [&](ProposalProof::Kind kind, std::size_t signers) {
    ProposalProof p;
    p.kind = kind;
    p.view = 1;
    p.q = q;
    Bytes payload = kind == ProposalProof::Kind::Echo ? dkg_echo_payload(1, 1, q)
                                                      : dkg_ready_payload(1, 1, q);
    for (sim::NodeId s = 1; s <= signers; ++s) {
      p.sigs.push_back(SignerSig{s, ring->sign_as(s, payload)});
    }
    return p;
  };
  // n=10, t=2: echo quorum ceil((10+2+1)/2) = 7, ready quorum t+1 = 3.
  EXPECT_TRUE(verify_proposal_proof(*ring, 1, make(ProposalProof::Kind::Echo, 7), q, 7, 3));
  EXPECT_FALSE(verify_proposal_proof(*ring, 1, make(ProposalProof::Kind::Echo, 6), q, 7, 3));
  EXPECT_TRUE(verify_proposal_proof(*ring, 1, make(ProposalProof::Kind::Ready, 3), q, 7, 3));
  EXPECT_FALSE(verify_proposal_proof(*ring, 1, make(ProposalProof::Kind::Ready, 2), q, 7, 3));
  // Proof bound to the exact set Q.
  NodeSet other{1, 2, 4};
  EXPECT_FALSE(verify_proposal_proof(*ring, 1, make(ProposalProof::Kind::Echo, 7), other, 7, 3));
  // Empty proof never verifies.
  EXPECT_FALSE(verify_proposal_proof(*ring, 1, ProposalProof{}, q, 7, 3));
}

TEST_F(ProofFixture, ProposalProofBoundToView) {
  NodeSet q{1, 2, 3};
  ProposalProof p;
  p.kind = ProposalProof::Kind::Ready;
  p.view = 2;
  p.q = q;
  Bytes wrong_view_payload = dkg_ready_payload(1, 1, q);  // signed for view 1
  for (sim::NodeId s = 1; s <= 3; ++s) {
    p.sigs.push_back(SignerSig{s, ring->sign_as(s, wrong_view_payload)});
  }
  EXPECT_FALSE(verify_proposal_proof(*ring, 1, p, q, 7, 3));
}

TEST_F(ProofFixture, LeadChProofQuorumAndBinding) {
  auto make = [&](std::uint64_t view, std::size_t signers) {
    std::vector<SignerSig> sigs;
    Bytes payload = lead_ch_payload(1, view);
    for (sim::NodeId s = 1; s <= signers; ++s) {
      sigs.push_back(SignerSig{s, ring->sign_as(s, payload)});
    }
    return sigs;
  };
  EXPECT_TRUE(verify_lead_ch_proof(*ring, 1, 2, make(2, 7), 7));
  EXPECT_FALSE(verify_lead_ch_proof(*ring, 1, 2, make(2, 6), 7));
  EXPECT_FALSE(verify_lead_ch_proof(*ring, 1, 3, make(2, 7), 7));  // wrong target view
  EXPECT_FALSE(verify_lead_ch_proof(*ring, 2, 2, make(2, 7), 7));  // wrong tau
}

TEST(NodeSet, NormalizeSortsAndDedups) {
  NodeSet q{5, 1, 3, 1, 5};
  normalize(q);
  EXPECT_EQ(q, (NodeSet{1, 3, 5}));
  EXPECT_EQ(node_set_bytes(q), node_set_bytes(NodeSet{1, 3, 5}));
  EXPECT_NE(node_set_bytes(q), node_set_bytes(NodeSet{1, 3}));
}

TEST(LeaderOfView, CyclesThroughNodes) {
  EXPECT_EQ(leader_of_view(1, 4), 1u);
  EXPECT_EQ(leader_of_view(4, 4), 4u);
  EXPECT_EQ(leader_of_view(5, 4), 1u);
  EXPECT_EQ(leader_of_view(103, 4), 3u);
}

}  // namespace
}  // namespace dkg::core
