// Protocol tests: the DKG optimistic phase (paper §4, Fig 2) — liveness,
// agreement on Q, consistency of shares and public key, swept over (n,t,f).
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "dkg/runner.hpp"

namespace dkg::core {
namespace {

using crypto::Element;
using crypto::Group;
using crypto::Scalar;

struct DkgConfig {
  std::size_t n, t, f;
  vss::CommitmentMode mode = vss::CommitmentMode::Full;
  std::uint64_t seed = 17;

  friend std::ostream& operator<<(std::ostream& os, const DkgConfig& c) {
    return os << "n" << c.n << "t" << c.t << "f" << c.f
              << (c.mode == vss::CommitmentMode::Hashed ? "hashed" : "full");
  }
};

RunnerConfig to_runner(const DkgConfig& c) {
  RunnerConfig cfg;
  cfg.n = c.n;
  cfg.t = c.t;
  cfg.f = c.f;
  cfg.mode = c.mode;
  cfg.seed = c.seed;
  return cfg;
}

class DkgSweep : public ::testing::TestWithParam<DkgConfig> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, DkgSweep,
    ::testing::Values(DkgConfig{4, 1, 0}, DkgConfig{6, 1, 1}, DkgConfig{7, 2, 0},
                      DkgConfig{10, 2, 1}, DkgConfig{13, 3, 1},
                      DkgConfig{7, 1, 1, vss::CommitmentMode::Hashed},
                      DkgConfig{10, 2, 1, vss::CommitmentMode::Hashed}),
    [](const auto& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

TEST_P(DkgSweep, AllNodesCompleteConsistently) {
  DkgRunner runner(to_runner(GetParam()));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  EXPECT_EQ(runner.completed_nodes().size(), GetParam().n);
  EXPECT_TRUE(runner.outputs_consistent());
}

TEST_P(DkgSweep, PublicKeyMatchesReconstructedSecret) {
  DkgRunner runner(to_runner(GetParam()));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  Scalar secret = runner.reconstruct_secret();
  EXPECT_EQ(Element::exp_g(secret), runner.dkg_node(1).output().public_key);
}

TEST_P(DkgSweep, AgreedSetHasExactlyTPlusOneDealers) {
  DkgRunner runner(to_runner(GetParam()));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  const DkgOutput& out = runner.dkg_node(1).output();
  EXPECT_EQ(out.q.size(), GetParam().t + 1);
  // Commitment aggregates exactly Q's dealings: every node agrees on Q.
  for (sim::NodeId i = 2; i <= GetParam().n; ++i) {
    EXPECT_TRUE(runner.dkg_node(i).output().q == out.q);
  }
}

TEST_P(DkgSweep, CompletesWithoutLeaderChangeWhenLeaderHonest) {
  DkgRunner runner(to_runner(GetParam()));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  for (sim::NodeId i = 1; i <= GetParam().n; ++i) {
    EXPECT_EQ(runner.dkg_node(i).output().view, 1u) << "node " << i;
  }
  EXPECT_EQ(runner.simulator().metrics().by_prefix("dkg.lead-ch").count, 0u);
}

TEST(Dkg, NoRejectionsOnHonestPath) {
  RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  for (sim::NodeId i = 1; i <= cfg.n; ++i) EXPECT_EQ(runner.dkg_node(i).rejected(), 0u);
}

TEST(Dkg, SharesVerifyAgainstAggregatedCommitment) {
  RunnerConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  const DkgOutput& out0 = runner.dkg_node(1).output();
  ASSERT_TRUE(out0.share_vec.has_value());
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    const DkgOutput& out = runner.dkg_node(i).output();
    EXPECT_TRUE(out0.share_vec->verify_share(i, out.share.reveal())) << "node " << i;
    // The matrix-based check agrees with the vector-based one.
    EXPECT_TRUE(out.commitment->verify_point(0, i, out.share.reveal()));
  }
}

TEST(Dkg, SecretIsSumOfQContributionsOnly) {
  // Seed every node's contribution deterministically and check that the
  // group secret equals the sum over the agreed Q (not over all dealers).
  RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  cfg.f = 0;
  DkgRunner runner(cfg);
  const crypto::Group& grp = *cfg.grp;
  std::map<sim::NodeId, Scalar> contributions;
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    Scalar s = Scalar::from_u64(grp, 1000 + i);
    contributions.emplace(i, s);
    runner.simulator().post_operator(i, std::make_shared<DkgStartOp>(cfg.tau, s), 0);
  }
  ASSERT_TRUE(runner.run_to_completion());
  Scalar secret = runner.reconstruct_secret();
  Scalar expected = Scalar::zero(grp);
  for (sim::NodeId d : runner.dkg_node(1).output().q) expected += contributions.at(d);
  EXPECT_EQ(secret, expected);
}

TEST(Dkg, ToleratesStaggeredStarts) {
  RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  DkgRunner runner(cfg);
  // Nodes start over a long window — slower than any single VSS round.
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    runner.simulator().post_operator(i, std::make_shared<DkgStartOp>(cfg.tau, std::nullopt),
                                     static_cast<sim::Time>(i) * 500);
  }
  ASSERT_TRUE(runner.run_to_completion());
  EXPECT_TRUE(runner.outputs_consistent());
}

TEST(Dkg, AdversarialDelaysOnByzantineLinksDontStallCompletion) {
  // The paper's §2.1 argument: slowing the adversary's own links does not
  // slow the honest mesh. Completion time should stay flat.
  auto completion_time = [](sim::Time penalty) {
    RunnerConfig cfg;
    cfg.n = 7;
    cfg.t = 1;
    cfg.f = 1;
    cfg.seed = 5;
    cfg.slow_nodes = {7};  // one "adversarial" node's links are slowed
    cfg.slow_penalty = penalty;
    DkgRunner runner(cfg);
    runner.start_all();
    // Completion of the 6 prompt nodes (node 7's links are the slow ones).
    EXPECT_TRUE(runner.run_to_completion(6));
    return runner.simulator().now();
  };
  sim::Time fast = completion_time(0);
  sim::Time slowed = completion_time(5'000);
  // The slowed node cannot stall the other nodes' completion beyond a
  // constant factor (they never need its messages once quorums are met).
  EXPECT_LT(slowed, fast * 3 + 10'000);
}

TEST(Dkg, FCrashedNodesDontBlockOthers) {
  RunnerConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = 23;
  DkgRunner runner(cfg);
  runner.simulator().schedule_crash(10, 0);  // down before start, forever
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(9));
  EXPECT_GE(runner.completed_nodes().size(), 9u);
  EXPECT_TRUE(runner.outputs_consistent());
}

TEST(Dkg, CrashedNodeRecoversAndCompletes) {
  RunnerConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = 29;
  DkgRunner runner(cfg);
  runner.simulator().schedule_crash(10, 50);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(9));
  sim::Time now = runner.simulator().now();
  runner.simulator().schedule_recover(10, now + 10);
  runner.simulator().post_operator(10, std::make_shared<DkgRecoverOp>(cfg.tau), now + 20);
  ASSERT_TRUE(runner.run_to_completion(10));
  EXPECT_EQ(runner.completed_nodes().size(), 10u);
  EXPECT_TRUE(runner.outputs_consistent());
}

}  // namespace
}  // namespace dkg::core
