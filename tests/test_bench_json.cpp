// Round-trip tests for the bench JSON emitter (bench/bench_util.hpp): the
// `--json <path>` flag must yield a parseable document whose rows carry the
// metrics keys with finite numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace dkg::bench {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Pulls the raw rendered value of `key` out of a flat JSON fragment.
std::string value_of(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  std::size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  std::size_t end = json.find_first_of(",}\n", start);
  return json.substr(start, end - start);
}

TEST(MetricRowTest, RendersOrderedKeyValues) {
  MetricRow row("n=7");
  row.set("n", std::size_t{7}).set("messages", std::uint64_t{123}).set("ok", true);
  EXPECT_EQ(row.render(), "{\"name\": \"n=7\", \"n\": 7, \"messages\": 123, \"ok\": true}");
}

TEST(MetricRowTest, RendersDoublesFinite) {
  MetricRow row("r");
  row.set("ratio", 2.5);
  std::string v = value_of(row.render(), "ratio");
  EXPECT_TRUE(std::isfinite(std::stod(v))) << v;
  EXPECT_DOUBLE_EQ(std::stod(v), 2.5);
}

TEST(MetricRowTest, NonFiniteDoublesBecomeNull) {
  MetricRow row("r");
  row.set("inf", std::numeric_limits<double>::infinity())
      .set("nan", std::nan(""))
      .set("fine", 1.0);
  std::string json = row.render();
  EXPECT_EQ(value_of(json, "inf"), "null");
  EXPECT_EQ(value_of(json, "nan"), "null");
  EXPECT_EQ(value_of(json, "fine"), "1");
}

TEST(MetricRowTest, EscapesStrings) {
  MetricRow row("quote\"back\\slash");
  EXPECT_EQ(row.render(), "{\"name\": \"quote\\\"back\\\\slash\"}");
}

TEST(EmitJsonTest, DocumentHasBenchNameSchemaAndRows) {
  std::vector<MetricRow> rows;
  rows.push_back(MetricRow("a"));
  rows.push_back(MetricRow("b"));
  std::string doc = emit_json("bench_fake", rows);
  EXPECT_NE(doc.find("\"bench\": \"bench_fake\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"rows\": ["), std::string::npos);
  EXPECT_NE(doc.find("{\"name\": \"a\"},"), std::string::npos);
  EXPECT_NE(doc.find("{\"name\": \"b\"}"), std::string::npos);
  // Structurally balanced: as many closing as opening braces/brackets.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'), std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['), std::count(doc.begin(), doc.end(), ']'));
}

TEST(JsonEmitterTest, DisabledWithoutFlag) {
  const char* argv[] = {"bench_fake"};
  JsonEmitter emitter("bench_fake", 1, const_cast<char**>(argv));
  EXPECT_FALSE(emitter.enabled());
  EXPECT_TRUE(emitter.flush());
}

TEST(JsonEmitterTest, TrailingFlagWithoutPathFailsFlush) {
  const char* argv[] = {"bench_fake", "--json"};
  JsonEmitter emitter("bench_fake", 2, const_cast<char**>(argv));
  EXPECT_FALSE(emitter.enabled());
  EXPECT_FALSE(emitter.args_ok());
  EXPECT_FALSE(emitter.flush());
}

TEST(JsonEmitterTest, AcceptsEqualsForm) {
  const char* argv[] = {"bench_fake", "--json=/tmp/eq.json"};
  JsonEmitter emitter("bench_fake", 2, const_cast<char**>(argv));
  EXPECT_TRUE(emitter.args_ok());
  EXPECT_TRUE(emitter.enabled());
  EXPECT_EQ(emitter.path(), "/tmp/eq.json");
}

TEST(JsonEmitterTest, RejectsUnrecognizedArguments) {
  const char* argv[] = {"bench_fake", "--jsonn", "out.json"};
  JsonEmitter emitter("bench_fake", 3, const_cast<char**>(argv));
  EXPECT_FALSE(emitter.args_ok());
  EXPECT_FALSE(emitter.flush());
}

TEST(JsonEmitterTest, WritesRoundTrippableFile) {
  std::string path = testing::TempDir() + "BENCH_test_emitter.json";
  std::remove(path.c_str());
  {
    const char* argv[] = {"bench_fake", "--json", path.c_str()};
    JsonEmitter emitter("bench_fake", 3, const_cast<char**>(argv));
    ASSERT_TRUE(emitter.enabled());
    EXPECT_EQ(emitter.path(), path);
    MetricRow row("n=10");
    row.set("n", std::size_t{10})
        .set("messages", std::uint64_t{4321})
        .set("bytes", std::uint64_t{987654})
        .set("messages_per_n3", 4.321)
        .set("completion_time", std::uint64_t{777})
        .set("ok", true);
    emitter.add(std::move(row));
    ASSERT_TRUE(emitter.flush());
  }
  std::string doc = read_file(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"bench\": \"bench_fake\""), std::string::npos);
  for (const char* key : {"name", "n", "messages", "bytes", "messages_per_n3",
                          "completion_time", "ok"}) {
    EXPECT_NE(doc.find("\"" + std::string(key) + "\": "), std::string::npos) << key;
  }
  for (const char* key : {"n", "messages", "bytes", "messages_per_n3", "completion_time"}) {
    std::string v = value_of(doc, key);
    ASSERT_FALSE(v.empty()) << key;
    EXPECT_TRUE(std::isfinite(std::stod(v))) << key << " = " << v;
  }
  EXPECT_DOUBLE_EQ(std::stod(value_of(doc, "messages_per_n3")), 4.321);
  EXPECT_EQ(value_of(doc, "messages"), "4321");
  std::remove(path.c_str());
}

TEST(JsonEmitterTest, DestructorFlushes) {
  std::string path = testing::TempDir() + "BENCH_test_dtor.json";
  std::remove(path.c_str());
  {
    const char* argv[] = {"bench_fake", "--json", path.c_str()};
    JsonEmitter emitter("bench_fake", 3, const_cast<char**>(argv));
    emitter.add(MetricRow("only-row"));
  }
  std::string doc = read_file(path);
  EXPECT_NE(doc.find("\"name\": \"only-row\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkg::bench
