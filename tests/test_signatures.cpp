// Unit tests: Schnorr signatures, the keyring PKI, and DLEQ proofs.
#include <gtest/gtest.h>

#include "crypto/dleq.hpp"
#include "crypto/keyring.hpp"
#include "crypto/schnorr.hpp"

namespace dkg::crypto {
namespace {

const Group& grp() { return Group::tiny256(); }

TEST(Schnorr, SignVerifyRoundTrip) {
  Drbg rng(1);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Bytes msg = bytes_of("attack at dawn");
  Signature sig = schnorr_sign(kp, msg);
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  Drbg rng(2);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Signature sig = schnorr_sign(kp, bytes_of("m1"));
  EXPECT_FALSE(schnorr_verify(kp.pk, bytes_of("m2"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  Drbg rng(3);
  KeyPair kp1 = schnorr_keygen(grp(), rng);
  KeyPair kp2 = schnorr_keygen(grp(), rng);
  Signature sig = schnorr_sign(kp1, bytes_of("m"));
  EXPECT_FALSE(schnorr_verify(kp2.pk, bytes_of("m"), sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  Drbg rng(4);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Signature sig = schnorr_sign(kp, bytes_of("m"));
  Signature bad = sig;
  bad.s = bad.s + Scalar::one(grp());
  EXPECT_FALSE(schnorr_verify(kp.pk, bytes_of("m"), bad));
  bad = sig;
  bad.c = bad.c + Scalar::one(grp());
  EXPECT_FALSE(schnorr_verify(kp.pk, bytes_of("m"), bad));
}

TEST(Schnorr, DeterministicNonce) {
  Drbg rng(5);
  KeyPair kp = schnorr_keygen(grp(), rng);
  EXPECT_TRUE(schnorr_sign(kp, bytes_of("m")) == schnorr_sign(kp, bytes_of("m")));
}

TEST(Schnorr, SerializationRoundTrip) {
  Drbg rng(6);
  KeyPair kp = schnorr_keygen(grp(), rng);
  Signature sig = schnorr_sign(kp, bytes_of("m"));
  auto back = Signature::from_bytes(grp(), sig.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == sig);
  EXPECT_EQ(sig.to_bytes().size(), signature_bytes(grp()));
  EXPECT_FALSE(Signature::from_bytes(grp(), Bytes(3, 0)).has_value());
}

TEST(Keyring, SignAsAndVerifyFrom) {
  auto ring = Keyring::generate(grp(), 5, 42);
  Bytes msg = bytes_of("payload");
  for (std::uint32_t i = 1; i <= 5; ++i) {
    Signature sig = ring->sign_as(i, msg);
    EXPECT_TRUE(ring->verify_from(i, msg, sig));
    EXPECT_FALSE(ring->verify_from(i % 5 + 1, msg, sig));  // wrong signer
  }
  EXPECT_FALSE(ring->verify_from(0, msg, ring->sign_as(1, msg)));   // bad index
  EXPECT_FALSE(ring->verify_from(99, msg, ring->sign_as(1, msg)));  // out of range
}

TEST(Keyring, DeterministicGeneration) {
  auto r1 = Keyring::generate(grp(), 3, 7);
  auto r2 = Keyring::generate(grp(), 3, 7);
  for (std::uint32_t i = 1; i <= 3; ++i) EXPECT_EQ(r1->public_key(i), r2->public_key(i));
}

TEST(Keyring, WithAddedNodeKeepsExistingKeys) {
  auto r1 = Keyring::generate(grp(), 3, 7);
  auto r2 = r1->with_added_node(99);
  EXPECT_EQ(r2->size(), 4u);
  for (std::uint32_t i = 1; i <= 3; ++i) EXPECT_EQ(r1->public_key(i), r2->public_key(i));
  Bytes msg = bytes_of("m");
  EXPECT_TRUE(r2->verify_from(4, msg, r2->sign_as(4, msg)));
}

TEST(Dleq, ProveVerifyRoundTrip) {
  Drbg rng(8);
  Scalar x = Scalar::random(grp(), rng);
  Element g1 = Element::generator(grp());
  Element g2 = Element::exp_h(Scalar::from_u64(grp(), 1));
  DleqProof proof = dleq_prove(g1, g1.pow(x), g2, g2.pow(x), x);
  EXPECT_TRUE(dleq_verify(g1, g1.pow(x), g2, g2.pow(x), proof));
}

TEST(Dleq, RejectsUnequalLogs) {
  Drbg rng(9);
  Scalar x = Scalar::random(grp(), rng);
  Scalar y = x + Scalar::one(grp());
  Element g1 = Element::generator(grp());
  Element g2 = Element::exp_h(Scalar::from_u64(grp(), 1));
  DleqProof proof = dleq_prove(g1, g1.pow(x), g2, g2.pow(x), x);
  EXPECT_FALSE(dleq_verify(g1, g1.pow(x), g2, g2.pow(y), proof));
  EXPECT_FALSE(dleq_verify(g1, g1.pow(y), g2, g2.pow(x), proof));
}

TEST(Dleq, RejectsTamperedProof) {
  Drbg rng(10);
  Scalar x = Scalar::random(grp(), rng);
  Element g1 = Element::generator(grp());
  Element g2 = Element::exp_h(Scalar::from_u64(grp(), 1));
  DleqProof proof = dleq_prove(g1, g1.pow(x), g2, g2.pow(x), x);
  proof.r = proof.r + Scalar::one(grp());
  EXPECT_FALSE(dleq_verify(g1, g1.pow(x), g2, g2.pow(x), proof));
}

TEST(HashToGroup, LandsInSubgroupAndIsDomainSeparated) {
  Element a = hash_to_group(grp(), bytes_of("round-1"));
  Element b = hash_to_group(grp(), bytes_of("round-1"));
  Element c = hash_to_group(grp(), bytes_of("round-2"));
  EXPECT_TRUE(a.in_subgroup());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dkg::crypto
