// Cross-backend cache-poisoning suite: every value/digest-keyed cache in
// the crypto layer is fed identical byte strings (or identical-looking
// keys) through both the mod-p and ec256 backends and must keep the two
// worlds fully isolated. The dangerous coincidences are real: big2048 and
// ec256 share q_bytes = 32, so serialized scalars and signatures are
// interchangeable byte strings, and every Element value() is "just" an mpz.
// Audited caches:
//  * FixedBaseTable global cache + for_g/for_h thread-local memos —
//    value-keyed through Group::operator== (which compares backend_ and h_;
//    see group.hpp);
//  * MontgomeryCtx::for_group — modulus-keyed, backend-gated to ModP;
//  * FeldmanMatrix::from_bytes_interned — digest-keyed, revalidated by
//    group identity;
//  * VerifiedSigCache — digest key now tags (backend, group name).
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/bipolynomial.hpp"
#include "crypto/ec256.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keyring.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sigverify.hpp"
#include "property_test.hpp"

namespace dkg::crypto {
namespace {

TEST(BackendCrosstalk, GroupEqualityDiscriminatesBackends) {
  // No mod-p group may ever compare equal to the curve group, and a value
  // copy of the curve group (what FixedBaseTable entries hold) must.
  const Group& ec = Group::ec256();
  for (const Group* g :
       {&Group::tiny256(), &Group::small512(), &Group::mod1024(), &Group::big2048()}) {
    EXPECT_FALSE(*g == ec);
    EXPECT_FALSE(ec == *g);
  }
  Group copy = ec;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy == ec);
}

TEST(BackendCrosstalk, FixedBaseMemoSwitchesCleanlyBetweenBackends) {
  // Interleave exp_g across backends on ONE thread: the thread-local comb
  // memo is revalidated by value (group incl. backend), so each call must
  // land on its own backend's table and produce that backend's result.
  const Group& ec = Group::ec256();
  const Group& mp = Group::mod1024();
  Drbg rng(testprop::property_seed() ^ 0xc0551a1);
  for (int i = 0; i < 4; ++i) {
    Scalar a = Scalar::random(ec, rng);
    Scalar b = Scalar::random(mp, rng);
    Element ea = Element::exp_g(a);
    Element eb = Element::exp_g(b);
    EXPECT_EQ(ea, Element::generator(ec).pow(a));
    EXPECT_EQ(eb, Element::generator(mp).pow(b));
    EXPECT_EQ(ea.to_bytes().size(), ec.element_bytes());
    EXPECT_EQ(eb.to_bytes().size(), mp.element_bytes());
  }
}

TEST(BackendCrosstalk, MixedBackendElementArithmeticThrows) {
  Drbg rng(testprop::property_seed() ^ 0xc0551a2);
  Element a = Element::exp_g(Scalar::random(Group::ec256(), rng));
  Element b = Element::exp_g(Scalar::random(Group::big2048(), rng));
  EXPECT_THROW(a * b, std::logic_error);
  EXPECT_THROW(b * a, std::logic_error);
}

TEST(BackendCrosstalk, SameScalarBytesStayInTheirGroups) {
  // big2048 and ec256 share q_bytes = 32: one 32-byte string decodes under
  // both. The two scalars must be independent, group-tagged values.
  Bytes sb(32, 0);
  sb[31] = 7;
  Scalar s_ec = Scalar::from_bytes(Group::ec256(), sb);
  Scalar s_mp = Scalar::from_bytes(Group::big2048(), sb);
  ASSERT_FALSE(s_ec.empty());
  ASSERT_FALSE(s_mp.empty());
  EXPECT_EQ(s_ec.value(), s_mp.value());
  EXPECT_THROW(s_ec + s_mp, std::logic_error);
  // And the commitments they drive live on different cached tables.
  EXPECT_NE(Element::exp_g(s_ec).to_bytes(), Element::exp_g(s_mp).to_bytes());
}

TEST(BackendCrosstalk, SigCacheKeysNeverCollideAcrossBackends) {
  // The poisoning scenario the key's backend tag exists for: the SAME wire
  // bytes deserialize into valid Signature objects under big2048 and ec256
  // (equal scalar widths), with the same signer and payload. A shared
  // digest key would let a verification recorded under one backend satisfy
  // the other; the keys must differ.
  Drbg rng(testprop::property_seed() ^ 0xc0551a3);
  KeyPair kp = schnorr_keygen(Group::big2048(), rng);
  Bytes payload = bytes_of("crosstalk payload");
  Signature sig = schnorr_sign(kp, payload);
  Bytes wire = sig.to_bytes();
  std::optional<Signature> sig_ec = Signature::from_bytes(Group::ec256(), wire);
  ASSERT_TRUE(sig_ec.has_value());
  EXPECT_EQ(sig_ec->to_bytes(), wire);  // byte-identical on both sides
  Bytes k_mp = VerifiedSigCache::key(Group::big2048(), 1, payload, sig);
  Bytes k_ec = VerifiedSigCache::key(Group::ec256(), 1, payload, *sig_ec);
  EXPECT_NE(k_mp, k_ec);
  // Isolation end-to-end: inserting under one backend's key must not make
  // the other's lookup hit.
  VerifiedSigCache cache;
  cache.insert(k_mp);
  EXPECT_TRUE(cache.contains(k_mp));
  EXPECT_FALSE(cache.contains(k_ec));
}

TEST(BackendCrosstalk, InternedDecodeIsNotServedAcrossBackends) {
  Drbg rng(testprop::property_seed() ^ 0xc0551a4);
  const Group& ec = Group::ec256();
  std::size_t t = 2;
  BiPolynomial f = BiPolynomial::random(Scalar::random(ec, rng), t, rng);
  FeldmanMatrix mat = FeldmanMatrix::commit(f);
  Bytes frame = mat.to_bytes();
  std::shared_ptr<const FeldmanMatrix> first = FeldmanMatrix::from_bytes_interned(ec, frame, t);
  ASSERT_NE(first, nullptr);
  // The same byte string under every mod-p group: the digest collides with
  // the cached entry by construction, so this exercises the revalidation
  // path. 33-byte elements never frame correctly as p_bytes residues, so
  // the decode must fail — and must NOT be served the ec256 object.
  for (const Group* g :
       {&Group::tiny256(), &Group::small512(), &Group::mod1024(), &Group::big2048()}) {
    EXPECT_EQ(FeldmanMatrix::from_bytes_interned(*g, frame, t), nullptr) << g->name();
  }
  // The cache entry survives the cross-backend probes intact.
  std::shared_ptr<const FeldmanMatrix> again = FeldmanMatrix::from_bytes_interned(ec, frame, t);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(*again, *first);
  EXPECT_TRUE(again->entry(0, 0) == mat.entry(0, 0));
}

TEST(BackendCrosstalk, MontgomeryContextIsModPOnly) {
  EXPECT_EQ(Group::ec256().montgomery(), nullptr);
  EXPECT_NE(Group::mod1024().montgomery(), nullptr);
}

TEST(BackendCrosstalk, IdentityEncodingsDoNotCross) {
  // ec256's identity is 33 zero bytes; under a mod-p group a zero residue
  // is junk. Neither backend may accept the other's identity framing.
  Bytes zid(Group::ec256().element_bytes(), 0);
  EXPECT_FALSE(Element::from_bytes(Group::ec256(), zid).empty());
  EXPECT_TRUE(Element::from_bytes(Group::tiny256(), Bytes(32, 0)).empty());
  // The mod-p identity residue (1) is a 32-byte big-endian 1 under
  // tiny256; the same bytes under ec256 are a wrong-length frame.
  Bytes one(32, 0);
  one[31] = 1;
  EXPECT_FALSE(Element::from_bytes(Group::tiny256(), one).empty());
  EXPECT_TRUE(Element::from_bytes(Group::ec256(), one).empty());
}

}  // namespace
}  // namespace dkg::crypto
