// Baseline tests: AVSS (the scheme HybridVSS modifies), Joint-Feldman and
// Gennaro et al. synchronous DKGs.
#include <gtest/gtest.h>

#include "baseline/gennaro_dkg.hpp"
#include "baseline/joint_feldman.hpp"
#include "crypto/lagrange.hpp"
#include "sim/simulator.hpp"
#include "vss/avss.hpp"
#include "vss/hybridvss.hpp"

namespace dkg {
namespace {

using crypto::Element;
using crypto::Group;
using crypto::Scalar;

TEST(Avss, AllNodesCompleteAndAgree) {
  const Group& grp = Group::tiny256();
  vss::AvssParams params{&grp, 7, 2};
  sim::Simulator sim(7, std::make_unique<sim::UniformDelay>(5, 40), 51);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    sim.set_node(i, std::make_unique<vss::AvssNode>(params, i));
  }
  vss::SessionId sid{1, 1};
  Scalar secret = Scalar::from_u64(grp, 8888);
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, secret), 0);
  ASSERT_TRUE(sim.run());
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= 7; ++i) {
    auto& node = dynamic_cast<vss::AvssNode&>(sim.node(i));
    ASSERT_TRUE(node.instance(sid).has_shared()) << "node " << i;
    if (pts.size() < 3) pts.emplace_back(i, node.instance(sid).share().reveal());
  }
  EXPECT_EQ(crypto::interpolate_at(grp, pts, 0), secret);
}

TEST(Avss, DealerCrashAfterSendStillCompletes) {
  const Group& grp = Group::tiny256();
  vss::AvssParams params{&grp, 7, 2};
  sim::Simulator sim(7, std::make_unique<sim::UniformDelay>(5, 40), 52);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    sim.set_node(i, std::make_unique<vss::AvssNode>(params, i));
  }
  vss::SessionId sid{1, 1};
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, Scalar::from_u64(grp, 3)), 0);
  sim.schedule_crash(1, 1);
  ASSERT_TRUE(sim.run());
  for (sim::NodeId i = 2; i <= 7; ++i) {
    EXPECT_TRUE(dynamic_cast<vss::AvssNode&>(sim.node(i)).instance(sid).has_shared());
  }
}

TEST(Avss, HybridVssUsesFewerBytesThanAvss) {
  // The paper's §3 claim: symmetric bivariate dealings give a constant-
  // factor reduction over AVSS. Compare total bytes at equal (n, t), f = 0.
  const Group& grp = Group::tiny256();
  std::size_t n = 10, t = 3;
  vss::SessionId sid{1, 1};
  Scalar secret = Scalar::from_u64(grp, 5);

  sim::Simulator avss_sim(n, std::make_unique<sim::UniformDelay>(5, 40), 53);
  vss::AvssParams ap{&grp, n, t};
  for (sim::NodeId i = 1; i <= n; ++i) {
    avss_sim.set_node(i, std::make_unique<vss::AvssNode>(ap, i));
  }
  avss_sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, secret), 0);
  ASSERT_TRUE(avss_sim.run());

  sim::Simulator hv_sim(n, std::make_unique<sim::UniformDelay>(5, 40), 53);
  vss::VssParams hp;
  hp.grp = &grp;
  hp.n = n;
  hp.t = t;
  hp.f = 0;
  for (sim::NodeId i = 1; i <= n; ++i) {
    hv_sim.set_node(i, std::make_unique<vss::VssNode>(hp, i));
  }
  hv_sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, secret), 0);
  ASSERT_TRUE(hv_sim.run());

  EXPECT_LT(hv_sim.metrics().total_bytes(), avss_sim.metrics().total_bytes());
}

baseline::SyncNetwork make_jf_network(const baseline::JfParams& p, std::uint64_t seed) {
  baseline::SyncNetwork net(p.n, seed);
  for (sim::NodeId i = 1; i <= p.n; ++i) {
    net.set_node(i, std::make_unique<baseline::JointFeldmanNode>(p, i, net.rng().fork(
                        "jf/" + std::to_string(i))));
  }
  return net;
}

TEST(JointFeldman, HonestRunProducesConsistentKey) {
  const Group& grp = Group::tiny256();
  baseline::JfParams p{&grp, 7, 2};
  baseline::SyncNetwork net = make_jf_network(p, 61);
  auto outs = run_joint_feldman(net, p);
  ASSERT_TRUE(outs[1].has_value());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    ASSERT_TRUE(outs[i].has_value());
    EXPECT_EQ(outs[i]->public_key, outs[1]->public_key);
    EXPECT_EQ(outs[i]->qual.size(), 7u);
  }
  // Shares interpolate to the discrete log of the public key.
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= 3; ++i) pts.emplace_back(i, outs[i]->share.reveal());
  EXPECT_EQ(Element::exp_g(crypto::interpolate_at(grp, pts, 0)), outs[1]->public_key);
}

TEST(JointFeldman, BadSharesResolvedByReveal) {
  const Group& grp = Group::tiny256();
  baseline::JfParams p{&grp, 7, 2};
  baseline::SyncNetwork net = make_jf_network(p, 62);
  dynamic_cast<baseline::JointFeldmanNode&>(net.node(3)).corrupt_shares_to({5, 6});
  auto outs = run_joint_feldman(net, p);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    ASSERT_TRUE(outs[i].has_value());
    // Dealer 3 revealed correct shares, so it stays qualified everywhere.
    EXPECT_EQ(outs[i]->qual.count(3), 1u) << "node " << i;
    EXPECT_EQ(outs[i]->public_key, outs[1]->public_key);
  }
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 4; i <= 6; ++i) pts.emplace_back(i, outs[i]->share.reveal());
  EXPECT_EQ(Element::exp_g(crypto::interpolate_at(grp, pts, 0)), outs[1]->public_key);
}

TEST(JointFeldman, RefusingRevealDisqualifies) {
  const Group& grp = Group::tiny256();
  baseline::JfParams p{&grp, 7, 2};
  baseline::SyncNetwork net = make_jf_network(p, 63);
  auto& cheat = dynamic_cast<baseline::JointFeldmanNode&>(net.node(3));
  cheat.corrupt_shares_to({5});
  cheat.refuse_reveal();
  auto outs = run_joint_feldman(net, p);
  for (sim::NodeId i = 1; i <= 7; ++i) {
    ASSERT_TRUE(outs[i].has_value());
    EXPECT_EQ(outs[i]->qual.count(3), 0u) << "node " << i;
    EXPECT_EQ(outs[i]->public_key, outs[1]->public_key);
  }
}

baseline::SyncNetwork make_gjkr_network(const baseline::GennaroParams& p, std::uint64_t seed) {
  baseline::SyncNetwork net(p.n, seed);
  for (sim::NodeId i = 1; i <= p.n; ++i) {
    net.set_node(i, std::make_unique<baseline::GennaroNode>(p, i, net.rng().fork(
                        "gjkr/" + std::to_string(i))));
  }
  return net;
}

TEST(Gennaro, HonestRunProducesConsistentKey) {
  const Group& grp = Group::tiny256();
  baseline::GennaroParams p{&grp, 7, 2};
  baseline::SyncNetwork net = make_gjkr_network(p, 71);
  net.run();
  std::vector<baseline::GennaroOutput> outs;
  for (sim::NodeId i = 1; i <= 7; ++i) {
    auto& node = dynamic_cast<baseline::GennaroNode&>(net.node(i));
    ASSERT_TRUE(node.done()) << "node " << i;
    outs.push_back(node.output());
  }
  for (const auto& o : outs) {
    EXPECT_EQ(o.public_key, outs[0].public_key);
    EXPECT_EQ(o.qual.size(), 7u);
  }
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= 3; ++i) pts.emplace_back(i, outs[i - 1].share.reveal());
  EXPECT_EQ(Element::exp_g(crypto::interpolate_at(grp, pts, 0)), outs[0].public_key);
}

TEST(Gennaro, ExtractionCheaterIsExposedAndKeyStaysCorrect) {
  const Group& grp = Group::tiny256();
  baseline::GennaroParams p{&grp, 7, 2};
  baseline::SyncNetwork net = make_gjkr_network(p, 72);
  dynamic_cast<baseline::GennaroNode&>(net.node(4)).cheat_in_extraction();
  net.run();
  std::vector<baseline::GennaroOutput> outs;
  for (sim::NodeId i = 1; i <= 7; ++i) {
    auto& node = dynamic_cast<baseline::GennaroNode&>(net.node(i));
    ASSERT_TRUE(node.done()) << "node " << i;
    outs.push_back(node.output());
  }
  // The cheater stays in QUAL (its Pedersen phase was honest) but its
  // Feldman lie is caught; the public key still matches the shared secret.
  for (const auto& o : outs) EXPECT_EQ(o.public_key, outs[0].public_key);
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= 3; ++i) pts.emplace_back(i, outs[i - 1].share.reveal());
  EXPECT_EQ(Element::exp_g(crypto::interpolate_at(grp, pts, 0)), outs[0].public_key);
}

}  // namespace
}  // namespace dkg
