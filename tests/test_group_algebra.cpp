// Unit tests: group parameter validity, Z_q field laws, subgroup element
// algebra, canonical encodings — parameterized over all five parameter sets
// (four mod-p groups plus the ec256 curve backend).
#include <gtest/gtest.h>

#include "crypto/element.hpp"
#include "crypto/group.hpp"
#include "crypto/scalar.hpp"

namespace dkg::crypto {
namespace {

class GroupSuite : public ::testing::TestWithParam<const Group*> {};

INSTANTIATE_TEST_SUITE_P(AllGroups, GroupSuite,
                         ::testing::Values(&Group::tiny256(), &Group::small512(),
                                           &Group::mod1024(), &Group::big2048(),
                                           &Group::ec256()),
                         [](const auto& info) { return info.param->name(); });

TEST_P(GroupSuite, ParametersAreValid) {
  const Group& grp = *GetParam();
  EXPECT_TRUE(grp.valid());
  EXPECT_EQ(grp.kappa(), mpz_sizeinbase(grp.q().get_mpz_t(), 2));
}

TEST_P(GroupSuite, GeneratorHasOrderQ) {
  const Group& grp = *GetParam();
  EXPECT_TRUE(grp.in_subgroup(grp.g()));
  EXPECT_TRUE(grp.in_subgroup(grp.h()));
  EXPECT_NE(grp.g(), grp.h());
}

TEST_P(GroupSuite, ScalarFieldLaws) {
  const Group& grp = *GetParam();
  Drbg rng(11);
  Scalar a = Scalar::random(grp, rng);
  Scalar b = Scalar::random(grp, rng);
  Scalar c = Scalar::random(grp, rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a + a.negate(), Scalar::zero(grp));
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inverse(), Scalar::one(grp));
  }
  EXPECT_EQ(a - b, a + b.negate());
}

TEST_P(GroupSuite, ScalarEncodingRoundTrip) {
  const Group& grp = *GetParam();
  Drbg rng(12);
  for (int i = 0; i < 8; ++i) {
    Scalar a = Scalar::random(grp, rng);
    EXPECT_EQ(Scalar::from_bytes(grp, a.to_bytes()), a);
    EXPECT_EQ(a.to_bytes().size(), grp.q_bytes());
  }
}

TEST_P(GroupSuite, ExponentHomomorphism) {
  const Group& grp = *GetParam();
  Drbg rng(13);
  Scalar a = Scalar::random(grp, rng);
  Scalar b = Scalar::random(grp, rng);
  EXPECT_EQ(Element::exp_g(a) * Element::exp_g(b), Element::exp_g(a + b));
  EXPECT_EQ(Element::exp_g(a).pow(b), Element::exp_g(a * b));
  EXPECT_EQ(Element::exp_g(a) * Element::exp_g(a).inverse(), Element::identity(grp));
}

TEST_P(GroupSuite, ElementsLieInSubgroup) {
  const Group& grp = *GetParam();
  Drbg rng(14);
  Scalar a = Scalar::random(grp, rng);
  EXPECT_TRUE(Element::exp_g(a).in_subgroup());
  EXPECT_TRUE(Element::exp_h(a).in_subgroup());
}

TEST_P(GroupSuite, ElementEncodingRoundTrip) {
  const Group& grp = *GetParam();
  Drbg rng(15);
  Element e = Element::exp_g(Scalar::random(grp, rng));
  Element back = Element::from_bytes(grp, e.to_bytes());
  EXPECT_EQ(back, e);
  EXPECT_EQ(e.to_bytes().size(), grp.element_bytes());
}

TEST_P(GroupSuite, FromBytesRejectsOutOfRange) {
  const Group& grp = *GetParam();
  Bytes zero(grp.element_bytes(), 0);
  if (grp.backend() == GroupBackend::Ec256) {
    // All-zero is the canonical identity encoding on the curve, not junk.
    Element id = Element::from_bytes(grp, zero);
    ASSERT_FALSE(id.empty());
    EXPECT_TRUE(id.is_identity());
  } else {
    EXPECT_TRUE(Element::from_bytes(grp, zero).empty());  // zero residue
  }
  // Too wide: >= p for mod-p, wrong frame length for the curve.
  EXPECT_TRUE(Element::from_bytes(grp, Bytes(grp.element_bytes() + 8, 0xff)).empty());
}

TEST_P(GroupSuite, PowU64MatchesScalarPow) {
  const Group& grp = *GetParam();
  Drbg rng(16);
  Element e = Element::exp_g(Scalar::random(grp, rng));
  EXPECT_EQ(e.pow_u64(5), e.pow(Scalar::from_u64(grp, 5)));
  EXPECT_EQ(e.pow_u64(0), Element::identity(grp));
}

TEST(Scalar, MixedGroupArithmeticThrows) {
  Scalar a = Scalar::one(Group::tiny256());
  Scalar b = Scalar::one(Group::small512());
  EXPECT_THROW(a + b, std::logic_error);
  EXPECT_THROW(a * b, std::logic_error);
}

TEST(Scalar, EmptyScalarThrows) {
  Scalar a;
  EXPECT_TRUE(a.empty());
  EXPECT_THROW(a.to_bytes(), std::logic_error);
  EXPECT_THROW(a.inverse(), std::logic_error);
}

TEST(Scalar, InverseOfZeroThrows) {
  EXPECT_THROW(Scalar::zero(Group::tiny256()).inverse(), std::domain_error);
}

TEST(Scalar, FromU64Reduces) {
  const Group& grp = Group::tiny256();
  // q is 64-bit here, so large u64 values exercise reduction.
  Scalar a = Scalar::from_u64(grp, ~std::uint64_t{0});
  EXPECT_LT(a.value(), grp.q());
}

TEST(Scalar, HashToScalarIsDeterministicAndSpread) {
  const Group& grp = Group::small512();
  Scalar a = Scalar::hash_to_scalar(grp, bytes_of("x"));
  Scalar b = Scalar::hash_to_scalar(grp, bytes_of("x"));
  Scalar c = Scalar::hash_to_scalar(grp, bytes_of("y"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dkg::crypto
