// Protocol tests: HybridVSS (paper §3, Fig 1) — liveness, agreement,
// consistency, privacy and recovery, swept over (n, t, f) configurations
// and both commitment modes.
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "sim/simulator.hpp"
#include "vss/hybridvss.hpp"

namespace dkg::vss {
namespace {

using crypto::Element;
using crypto::Group;
using crypto::Scalar;

struct VssConfig {
  std::size_t n, t, f;
  CommitmentMode mode = CommitmentMode::Full;
  std::uint64_t seed = 1;

  friend std::ostream& operator<<(std::ostream& os, const VssConfig& c) {
    return os << "n" << c.n << "t" << c.t << "f" << c.f
              << (c.mode == CommitmentMode::Hashed ? "hashed" : "full");
  }
};

VssParams make_params(const VssConfig& c) {
  VssParams p;
  p.grp = &Group::tiny256();
  p.n = c.n;
  p.t = c.t;
  p.f = c.f;
  p.mode = c.mode;
  return p;
}

struct VssHarness {
  VssConfig cfg;
  VssParams params;
  sim::Simulator sim;
  SessionId sid;

  explicit VssHarness(const VssConfig& c, sim::NodeId dealer = 1)
      : cfg(c),
        params(make_params(c)),
        sim(c.n, std::make_unique<sim::UniformDelay>(5, 40), c.seed),
        sid{dealer, 1} {
    for (sim::NodeId i = 1; i <= c.n; ++i) {
      sim.set_node(i, std::make_unique<VssNode>(params, i));
    }
  }

  VssNode& node(sim::NodeId i) { return dynamic_cast<VssNode&>(sim.node(i)); }

  void deal(const Scalar& secret, sim::Time at = 0) {
    sim.post_operator(sid.dealer, std::make_shared<ShareOp>(sid, secret), at);
  }

  std::size_t shared_count() {
    std::size_t k = 0;
    for (sim::NodeId i = 1; i <= cfg.n; ++i) {
      if (node(i).has_instance(sid) && node(i).instance(sid).has_shared()) ++k;
    }
    return k;
  }
};

class VssSweep : public ::testing::TestWithParam<VssConfig> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, VssSweep,
    ::testing::Values(VssConfig{4, 1, 0}, VssConfig{6, 1, 1}, VssConfig{7, 2, 0},
                      VssConfig{10, 2, 1}, VssConfig{13, 3, 1}, VssConfig{16, 3, 2},
                      VssConfig{4, 1, 0, CommitmentMode::Hashed},
                      VssConfig{10, 2, 1, CommitmentMode::Hashed},
                      VssConfig{13, 3, 1, CommitmentMode::Hashed}),
    [](const auto& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

TEST_P(VssSweep, LivenessAllHonestNodesComplete) {
  VssHarness h(GetParam());
  h.deal(Scalar::from_u64(Group::tiny256(), 31337));
  EXPECT_TRUE(h.sim.run());
  EXPECT_EQ(h.shared_count(), GetParam().n);
}

TEST_P(VssSweep, ConsistencySharesInterpolateToSecret) {
  const Group& grp = Group::tiny256();
  VssHarness h(GetParam());
  Scalar secret = Scalar::from_u64(grp, 424242);
  h.deal(secret);
  ASSERT_TRUE(h.sim.run());
  // All nodes output the same commitment; shares lie on one polynomial.
  Bytes digest0 = h.node(1).instance(h.sid).shared().commitment->digest();
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= GetParam().n; ++i) {
    const SharedOutput& out = h.node(i).instance(h.sid).shared();
    EXPECT_EQ(out.commitment->digest(), digest0);
    EXPECT_TRUE(out.commitment->verify_point(0, i, out.share.reveal())) << "share of node " << i;
    if (pts.size() <= GetParam().t) pts.emplace_back(i, out.share.reveal());
  }
  EXPECT_EQ(crypto::interpolate_at(grp, pts, 0), secret);
}

TEST_P(VssSweep, ReconstructionYieldsSecret) {
  const Group& grp = Group::tiny256();
  VssHarness h(GetParam());
  Scalar secret = Scalar::from_u64(grp, 99991);
  h.deal(secret);
  ASSERT_TRUE(h.sim.run());
  for (sim::NodeId i = 1; i <= GetParam().n; ++i) {
    h.sim.post_operator(i, std::make_shared<ReconstructOp>(h.sid));
  }
  ASSERT_TRUE(h.sim.run());
  for (sim::NodeId i = 1; i <= GetParam().n; ++i) {
    ASSERT_TRUE(h.node(i).instance(h.sid).has_reconstructed()) << "node " << i;
    EXPECT_EQ(h.node(i).instance(h.sid).reconstructed(), secret);
  }
}

TEST_P(VssSweep, NoRejectionsOnHonestPath) {
  VssHarness h(GetParam());
  h.deal(Scalar::from_u64(Group::tiny256(), 5));
  ASSERT_TRUE(h.sim.run());
  for (sim::NodeId i = 1; i <= GetParam().n; ++i) {
    EXPECT_EQ(h.node(i).instance(h.sid).rejected(), 0u) << "node " << i;
  }
}

TEST(HybridVss, RejectsInsufficientResilience) {
  VssParams p = make_params(VssConfig{6, 1, 1});
  p.n = 5;  // 5 < 3*1 + 2*1 + 1
  EXPECT_THROW(VssInstance(p, SessionId{1, 1}, 1), std::invalid_argument);
}

TEST(HybridVss, CompletesDespiteFCrashedReceivers) {
  // f receivers are down for the whole protocol; liveness for the rest.
  VssConfig cfg{10, 2, 1};
  VssHarness h(cfg);
  h.sim.schedule_crash(10, 0);
  h.deal(Scalar::from_u64(Group::tiny256(), 7));
  ASSERT_TRUE(h.sim.run());
  EXPECT_EQ(h.shared_count(), cfg.n - 1);
}

TEST(HybridVss, CrashedNodeCatchesUpViaRecovery) {
  VssConfig cfg{10, 2, 1};
  VssHarness h(cfg);
  // Node 10 misses the entire sharing, then recovers and asks for help.
  h.sim.schedule_crash(10, 0);
  h.deal(Scalar::from_u64(Group::tiny256(), 7));
  ASSERT_TRUE(h.sim.run());
  ASSERT_EQ(h.shared_count(), cfg.n - 1);
  h.sim.schedule_recover(10, h.sim.now() + 1);
  h.sim.post_operator(10, std::make_shared<RecoverOp>(h.sid), h.sim.now() + 2);
  ASSERT_TRUE(h.sim.run());
  EXPECT_EQ(h.shared_count(), cfg.n);
  // The recovered share is consistent with everyone else's commitment.
  const SharedOutput& out = h.node(10).instance(h.sid).shared();
  EXPECT_EQ(out.commitment->digest(), h.node(1).instance(h.sid).shared().commitment->digest());
}

TEST(HybridVss, DealerCrashMidSendStillAgrees) {
  // The dealer crashes after its sends are in flight; echo/ready amplification
  // must finish the sharing for everyone (agreement property).
  VssConfig cfg{7, 1, 1};
  VssHarness h(cfg);
  h.deal(Scalar::from_u64(Group::tiny256(), 11));
  h.sim.schedule_crash(1, 1);  // sends left the dealer at time 0
  ASSERT_TRUE(h.sim.run());
  EXPECT_EQ(h.shared_count(), cfg.n - 1);
}

TEST(HybridVss, PrivacyTSharesAreUnderdetermined) {
  const Group& grp = Group::tiny256();
  VssConfig cfg{7, 2, 0};
  VssHarness h(cfg);
  Scalar secret = Scalar::from_u64(grp, 314159);
  h.deal(secret);
  ASSERT_TRUE(h.sim.run());
  // Adversary view: t shares. Any candidate secret is consistent with them.
  std::vector<std::pair<std::uint64_t, Scalar>> view;
  for (sim::NodeId i = 1; i <= cfg.t; ++i) {
    view.emplace_back(i, h.node(i).instance(h.sid).shared().share.reveal());
  }
  for (std::uint64_t guess : {1ull, 99ull, 12345ull}) {
    auto pts = view;
    pts.emplace_back(0, Scalar::from_u64(grp, guess));
    crypto::Polynomial q = crypto::interpolate(grp, pts);  // always succeeds
    EXPECT_EQ(q.eval_at(0).reveal(), Scalar::from_u64(grp, guess));
    for (const auto& [x, y] : view) EXPECT_EQ(q.eval_at(x).reveal(), y);
  }
  // And t+1 shares pin it down exactly.
  auto pts = view;
  pts.emplace_back(cfg.t + 1, h.node(cfg.t + 1).instance(h.sid).shared().share.reveal());
  EXPECT_EQ(crypto::interpolate_at(grp, pts, 0), secret);
}

TEST(HybridVss, HelpBudgetIsEnforced) {
  // A node spamming help must stop receiving replays after d(kappa) replies.
  VssConfig cfg{7, 1, 1};
  VssHarness h(cfg);
  h.params.d_kappa = 2;
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    h.sim.set_node(i, std::make_unique<VssNode>(h.params, i));
  }
  h.deal(Scalar::from_u64(Group::tiny256(), 3));
  ASSERT_TRUE(h.sim.run());
  std::uint64_t baseline = h.sim.metrics().total_messages();
  // Many help requests from node 2 toward node 1's instance.
  for (int k = 0; k < 10; ++k) {
    h.sim.post_operator(2, std::make_shared<RecoverOp>(h.sid), h.sim.now() + 1 + k);
  }
  ASSERT_TRUE(h.sim.run());
  std::uint64_t after = h.sim.metrics().total_messages();
  // 10 recover rounds, but each helper honours c_l <= d_kappa = 2 (plus one
  // final over-budget check), so replay traffic is bounded well below the
  // unthrottled level (10 replays of the full buffer per helper).
  std::uint64_t replay_traffic = after - baseline;
  // Unthrottled would be ~10 * n * (buffer per node ~ 2n + 1) messages from
  // helpers alone; the budget caps replays per helper at 3.
  EXPECT_LT(replay_traffic, 10u * cfg.n * (2 * cfg.n + 1) / 2);
}

TEST(HybridVss, HashedModeUsesLessBandwidth) {
  VssConfig full{10, 2, 1, CommitmentMode::Full, 3};
  VssConfig hashed{10, 2, 1, CommitmentMode::Hashed, 3};
  VssHarness hf(full), hh(hashed);
  hf.deal(Scalar::from_u64(Group::tiny256(), 8));
  hh.deal(Scalar::from_u64(Group::tiny256(), 8));
  ASSERT_TRUE(hf.sim.run());
  ASSERT_TRUE(hh.sim.run());
  EXPECT_EQ(hf.shared_count(), full.n);
  EXPECT_EQ(hh.shared_count(), hashed.n);
  EXPECT_LT(hh.sim.metrics().total_bytes(), hf.sim.metrics().total_bytes() / 2);
}

TEST(HybridVss, QuadraticMessageComplexityOnHonestPath) {
  // O(n^2) messages without crashes (paper §3 efficiency discussion).
  auto count = [](std::size_t n, std::size_t t) {
    VssConfig cfg{n, t, 0};
    VssHarness h(cfg);
    h.deal(Scalar::from_u64(Group::tiny256(), 2));
    EXPECT_TRUE(h.sim.run());
    EXPECT_EQ(h.shared_count(), n);
    return h.sim.metrics().total_messages();
  };
  std::uint64_t m10 = count(10, 3);
  std::uint64_t m20 = count(20, 6);
  // Doubling n should roughly quadruple messages; allow generous slack.
  EXPECT_GT(m20, 3 * m10);
  EXPECT_LT(m20, 6 * m10);
}

TEST(HybridVss, DuplicateEchoesIgnored) {
  // First-time semantics: replayed echoes must not double-count.
  VssConfig cfg{7, 2, 0};
  VssHarness h(cfg);
  h.deal(Scalar::from_u64(Group::tiny256(), 6));
  ASSERT_TRUE(h.sim.run());
  // Trigger wholesale replays (recover floods duplicates of every message).
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    h.sim.post_operator(i, std::make_shared<RecoverOp>(h.sid), h.sim.now() + 1);
  }
  ASSERT_TRUE(h.sim.run());
  // Still exactly one consistent output per node.
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    EXPECT_TRUE(h.node(i).instance(h.sid).has_shared());
  }
}

TEST(HybridVss, TwoConcurrentSessionsStayIsolated) {
  const Group& grp = Group::tiny256();
  VssConfig cfg{7, 1, 1};
  VssHarness h(cfg);
  SessionId sid2{2, 1};
  Scalar s1 = Scalar::from_u64(grp, 111), s2 = Scalar::from_u64(grp, 222);
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, s1), 0);
  h.sim.post_operator(2, std::make_shared<ShareOp>(sid2, s2), 0);
  ASSERT_TRUE(h.sim.run());
  std::vector<std::pair<std::uint64_t, Scalar>> p1, p2;
  for (sim::NodeId i = 1; i <= cfg.t + 1; ++i) {
    p1.emplace_back(i, h.node(i).instance(h.sid).shared().share.reveal());
    p2.emplace_back(i, h.node(i).instance(sid2).shared().share.reveal());
  }
  EXPECT_EQ(crypto::interpolate_at(grp, p1, 0), s1);
  EXPECT_EQ(crypto::interpolate_at(grp, p2, 0), s2);
}

}  // namespace
}  // namespace dkg::vss
