// Wire-layer interning tests (ctest label `wire`):
//  * canonical_bytes()/digest() memo coherence on the three commitment
//    shapes — the memoized encoding must equal a from-scratch encoding and
//    the digest must be sha256 of exactly those bytes, across copies (which
//    reset the memo) and repeated calls (which must not re-encode);
//  * the digest-keyed decode cache (FeldmanMatrix::from_bytes_interned):
//    one shared decode per byte string, parameter revalidation, rejection
//    parity with from_bytes_checked;
//  * broadcast-vs-unicast equality: a full DKG run over the shared-payload
//    fan-out must produce bit-identical Metrics (per-type counts and byte
//    totals) and protocol results to the per-recipient unicast path;
//  * concurrent first touch of every new memo/cache (the TSan leg).
#include <gtest/gtest.h>

#include <thread>

#include "crypto/pedersen.hpp"
#include "crypto/sha256.hpp"
#include "dkg/runner.hpp"
#include "vss/vss_messages.hpp"

namespace dkg {
namespace {

using crypto::BiPolynomial;
using crypto::Drbg;
using crypto::FeldmanMatrix;
using crypto::FeldmanVector;
using crypto::Group;
using crypto::PedersenDealing;
using crypto::PedersenMatrix;
using crypto::Polynomial;
using crypto::Scalar;
using crypto::sha256;

const Group& grp() { return Group::tiny256(); }

FeldmanMatrix make_matrix(std::uint64_t seed, std::size_t t = 3) {
  Drbg rng(seed);
  return FeldmanMatrix::commit(BiPolynomial::random(Scalar::random(grp(), rng), t, rng));
}

TEST(WireInterning, FeldmanMatrixMemoCoherence) {
  FeldmanMatrix c = make_matrix(1);
  // A copy starts with a fresh memo; both must produce the same encoding.
  FeldmanMatrix copy = c;
  EXPECT_EQ(c.canonical_bytes(), copy.canonical_bytes());
  EXPECT_NE(&c.canonical_bytes(), &copy.canonical_bytes());
  // digest is sha256 of exactly the canonical bytes, and to_bytes is a copy.
  EXPECT_EQ(c.digest(), sha256(c.canonical_bytes()));
  EXPECT_EQ(c.to_bytes(), c.canonical_bytes());
  // Repeated calls hand back the same interned buffer, not a re-encoding.
  EXPECT_EQ(&c.canonical_bytes(), &c.canonical_bytes());
  EXPECT_EQ(&c.digest(), &c.digest());
  // Round-trip through the wire encoding reproduces the matrix.
  auto back = FeldmanMatrix::from_bytes(grp(), c.canonical_bytes(), 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == c);
}

TEST(WireInterning, FeldmanVectorAndPedersenMemoCoherence) {
  Drbg rng(2);
  FeldmanVector v = FeldmanVector::commit(Polynomial::random(grp(), 3, rng));
  EXPECT_EQ(v.digest(), sha256(v.canonical_bytes()));
  EXPECT_EQ(v.to_bytes(), v.canonical_bytes());
  EXPECT_EQ(&v.canonical_bytes(), &v.canonical_bytes());

  PedersenDealing d{BiPolynomial::random(Scalar::random(grp(), rng), 3, rng),
                    BiPolynomial::random(Scalar::random(grp(), rng), 3, rng)};
  PedersenMatrix p = PedersenMatrix::commit(d);
  EXPECT_EQ(p.digest(), sha256(p.canonical_bytes()));
  EXPECT_EQ(p.to_bytes(), p.canonical_bytes());
  EXPECT_EQ(&p.digest(), &p.digest());
}

TEST(WireInterning, AssignmentResetsMemo) {
  FeldmanMatrix a = make_matrix(3);
  FeldmanMatrix b = make_matrix(4);
  const Bytes before = a.canonical_bytes();
  ASSERT_NE(before, b.canonical_bytes());
  a = b;  // entries changed: the memo must not survive
  EXPECT_EQ(a.canonical_bytes(), b.canonical_bytes());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.canonical_bytes(), before);
}

TEST(WireInterning, MessageWireSizeMatchesBytes) {
  auto c = std::make_shared<const FeldmanMatrix>(make_matrix(5));
  vss::EchoMsg echo(vss::SessionId{1, 1}, c, c->digest(), Scalar::from_u64(grp(), 7));
  EXPECT_EQ(echo.wire_size(), echo.wire_bytes().size());
  EXPECT_EQ(echo.wire_size(), echo.wire_size());
  // Two messages sharing the commitment serialize the same interned bytes.
  vss::ReadyMsg ready(vss::SessionId{1, 1}, c, c->digest(), Scalar::from_u64(grp(), 9),
                      std::nullopt);
  EXPECT_EQ(ready.wire_size(), ready.wire_bytes().size());
}

TEST(WireInterning, DecodeCacheSharesOneMatrix) {
  FeldmanMatrix c = make_matrix(6);
  const Bytes& wire = c.canonical_bytes();
  auto first = FeldmanMatrix::from_bytes_interned(grp(), wire, 3);
  auto second = FeldmanMatrix::from_bytes_interned(grp(), wire, 3);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // ONE decode shared by reference
  EXPECT_TRUE(*first == c);
  // Rejection parity with from_bytes_checked: wrong degree and garbage.
  EXPECT_EQ(FeldmanMatrix::from_bytes_interned(grp(), wire, 4), nullptr);
  Bytes garbage = wire;
  garbage.resize(garbage.size() / 2);
  EXPECT_EQ(FeldmanMatrix::from_bytes_interned(grp(), garbage, 3), nullptr);
}

TEST(WireInterning, DecodeCacheRevalidatesGroupIdentity) {
  FeldmanMatrix c = make_matrix(10);
  const Bytes& wire = c.canonical_bytes();
  auto cached = FeldmanMatrix::from_bytes_interned(grp(), wire, 3);
  ASSERT_NE(cached, nullptr);
  // An ad-hoc group with the SAME parameter values is a different instance:
  // the cached matrix's entries reference the singleton's lifetime, so the
  // hit must not be served across — a fresh, uncached decode comes back.
  Group clone("tiny256-clone", grp().p().get_str(16), grp().q().get_str(16),
              grp().g().get_str(16));
  auto fresh = FeldmanMatrix::from_bytes_interned(clone, wire, 3);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh.get(), cached.get());
  EXPECT_TRUE(*fresh == c);
  EXPECT_EQ(&fresh->group(), &clone);
  // The singleton's entry is still served to singleton callers.
  EXPECT_EQ(FeldmanMatrix::from_bytes_interned(grp(), wire, 3).get(), cached.get());
}

TEST(WireInterning, MessageAssignmentDropsSizeMemo) {
  core::DkgSendMsg small(1, 1, core::NodeSet{1});
  core::DkgSendMsg big(1, 1, core::NodeSet{1, 2, 3, 4, 5});
  ASSERT_LT(small.wire_size(), big.wire_size());  // primes both memos
  small = big;
  EXPECT_EQ(small.wire_size(), big.wire_size());
}

// --- broadcast-vs-unicast equality on a full DKG run -----------------------

void expect_metrics_equal(const sim::Metrics& a, const sim::Metrics& b) {
  ASSERT_EQ(a.by_type().size(), b.by_type().size());
  for (const auto& [type, stats] : a.by_type()) {
    auto it = b.by_type().find(type);
    ASSERT_NE(it, b.by_type().end()) << type;
    EXPECT_EQ(stats.count, it->second.count) << type;
    EXPECT_EQ(stats.bytes, it->second.bytes) << type;
  }
  EXPECT_EQ(a.dropped_messages(), b.dropped_messages());
  EXPECT_EQ(a.invalid_messages(), b.invalid_messages());
}

void run_fanout_vs_unicast(vss::CommitmentMode mode) {
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 99;
  cfg.mode = mode;

  core::DkgRunner fanout(cfg);
  fanout.start_all();
  ASSERT_TRUE(fanout.run_to_completion());

  core::DkgRunner unicast(cfg);
  unicast.simulator().set_shared_fanout(false);
  unicast.start_all();
  ASSERT_TRUE(unicast.run_to_completion());

  // The fan-out only removes redundant serialization: counts, byte totals,
  // the simulated clock and every protocol output must be bit-identical.
  expect_metrics_equal(fanout.simulator().metrics(), unicast.simulator().metrics());
  EXPECT_EQ(fanout.simulator().now(), unicast.simulator().now());
  ASSERT_EQ(fanout.completed_nodes().size(), cfg.n);
  ASSERT_EQ(unicast.completed_nodes().size(), cfg.n);
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    const core::DkgOutput& fo = fanout.dkg_node(i).output();
    const core::DkgOutput& uo = unicast.dkg_node(i).output();
    EXPECT_TRUE(fo.q == uo.q);
    EXPECT_EQ(fo.public_key, uo.public_key);
    EXPECT_TRUE(fo.share.ct_eq(uo.share));
    ASSERT_NE(fo.commitment, nullptr);
    ASSERT_NE(uo.commitment, nullptr);
    EXPECT_EQ(fo.commitment->digest(), uo.commitment->digest());
  }
}

TEST(WireInterning, BroadcastMatchesUnicastFullDkg) {
  run_fanout_vs_unicast(vss::CommitmentMode::Full);
}

TEST(WireInterning, BroadcastMatchesUnicastHashedDkg) {
  run_fanout_vs_unicast(vss::CommitmentMode::Hashed);
}

// --- concurrent first touch (the TSan leg) ---------------------------------

TEST(WireInterning, ConcurrentFirstTouchOfMemosAndDecodeCache) {
  constexpr int kThreads = 8;
  FeldmanMatrix c = make_matrix(7);
  // Pre-build the wire bytes OUTSIDE the raced object so each thread's
  // first canonical_bytes()/digest() call below can hit a cold memo.
  const Bytes wire = FeldmanMatrix(c).to_bytes();
  auto shared_msg = std::make_shared<const vss::EchoMsg>(
      vss::SessionId{1, 1}, std::make_shared<const FeldmanMatrix>(make_matrix(8)),
      Bytes{}, Scalar::from_u64(grp(), 3));

  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  threads.reserve(kThreads);
  for (int k = 0; k < kThreads; ++k) {
    threads.emplace_back([&, k] {
      bool good = c.canonical_bytes() == wire;
      good = good && c.digest() == sha256(wire);
      auto dec = FeldmanMatrix::from_bytes_interned(grp(), wire, 3);
      good = good && dec != nullptr && *dec == c;
      good = good && shared_msg->wire_size() == shared_msg->wire_bytes().size();
      ok[k] = good ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int k = 0; k < kThreads; ++k) EXPECT_EQ(ok[k], 1) << "thread " << k;
}

}  // namespace
}  // namespace dkg
