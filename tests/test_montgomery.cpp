// Differential property harness for the Montgomery (REDC) engine
// (crypto/montgomery + its threading under crypto/multiexp). REDC changes
// the number representation on the hottest correctness-critical path, so
// every path through it is pinned against GMP's reference arithmetic:
// randomized (base, exponent, width) cases per parameter set cross-check
// MontgomeryCtx::mul/sqr and the full multiexp / comb paths against
// mpz_powm, plus the edge cases (0, 1, p-1, exponent 0, single-limb and
// limb-boundary moduli) and the even-modulus fallback.
//
// Seeded via DKG_PROPERTY_SEED, scaled via DKG_PROPERTY_REPEAT — see
// tests/property_test.hpp. Run by CI under the `property` ctest label with
// the fixed default seed, and under TSan for the concurrent-first-touch
// cases.
#include <gtest/gtest.h>

#include <thread>

#include "crypto/feldman.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/multiexp.hpp"
#include "property_test.hpp"

namespace dkg::crypto {
namespace {

const Group& group_for(int idx) {
  switch (idx) {
    case 0: return Group::tiny256();
    case 1: return Group::small512();
    case 2: return Group::mod1024();
    default: return Group::big2048();
  }
}

/// Uniform residue in [0, m) of a RANDOM byte width in [1, byte_width(m)] —
/// the "width" axis of the differential cases: limb-boundary operand sizes
/// are exactly where padded-limb bookkeeping goes wrong.
mpz_class random_width_residue(const mpz_class& m, Drbg& rng) {
  std::size_t max_w = byte_width(m);
  std::size_t w = 1 + rng.uniform(max_w);
  return mod(mpz_from_bytes(rng.bytes(w)), m);
}

/// Restores the engine toggle on scope exit (several tests flip it).
struct ToggleGuard {
  bool saved = multiexp_montgomery_enabled();
  ~ToggleGuard() { multiexp_set_montgomery(saved); }
};

TEST(Montgomery, CtxPrecomputationAndAccessors) {
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    const MontgomeryCtx* ctx = grp.montgomery();
    ASSERT_NE(ctx, nullptr) << grp.name();
    EXPECT_EQ(ctx->modulus(), grp.p());
    EXPECT_EQ(ctx->limbs(), mpz_size(grp.p().get_mpz_t()));
    // The same modulus value always yields the same cached context.
    EXPECT_EQ(ctx, MontgomeryCtx::for_group(grp));
    // one() is to_mont(1) and round-trips back to 1.
    EXPECT_EQ(ctx->to_mont(1), ctx->one());
    EXPECT_EQ(ctx->from_mont(ctx->one()), 1);
  }
}

TEST(Montgomery, CtxRejectsEvenOrTrivialModulus) {
  EXPECT_THROW(MontgomeryCtx(mpz_class{0}), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(mpz_class{1}), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(mpz_class{2}), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Group::tiny256().p() + 1), std::invalid_argument);  // even
  EXPECT_NO_THROW(MontgomeryCtx(mpz_class{3}));
}

TEST(Montgomery, RoundTripAndEdgeValuesAllGroups) {
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    const MontgomeryCtx& ctx = *grp.montgomery();
    Drbg rng(testprop::property_seed() + static_cast<std::uint64_t>(gi));
    std::vector<mpz_class> edges{0, 1, 2, grp.p() - 1, grp.p() - 2, grp.g(), grp.h()};
    for (int r = 0; r < 8; ++r) edges.push_back(random_width_residue(grp.p(), rng));
    for (const mpz_class& x : edges) {
      EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x) << grp.name();
    }
    // to_mont reduces arbitrary non-negative input first.
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(grp.p())), 0) << grp.name();
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(grp.p() * 3 + 5)), 5) << grp.name();
  }
}

TEST(MontgomeryProperty, MulSqrDifferentialAllGroups) {
  // The core differential: >= 10k random multiply/square cases per group,
  // REDC against GMP's plain (a*b) mod p, through both the mpz interface
  // and the raw-limb accumulator chain the hot loops actually use.
  const std::size_t kCases = testprop::property_cases(10000);
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    const MontgomeryCtx& ctx = *grp.montgomery();
    MontgomeryCtx::Mul mm(ctx);
    Drbg rng(testprop::property_seed() ^ (0xa0 + static_cast<std::uint64_t>(gi)));
    for (std::size_t c = 0; c < kCases; ++c) {
      mpz_class a = random_width_residue(grp.p(), rng);
      mpz_class b = random_width_residue(grp.p(), rng);
      // mpz interface: mul and sqr in the Montgomery domain.
      mpz_class am = ctx.to_mont(a), bm = ctx.to_mont(b);
      mpz_class prod = am;
      mm.mul(prod, bm);
      ASSERT_EQ(ctx.from_mont(prod), mod(a * b, grp.p()))
          << grp.name() << " mul case " << c;
      mpz_class sq = am;
      mm.sqr(sq);
      ASSERT_EQ(ctx.from_mont(sq), mod(a * a, grp.p())) << grp.name() << " sqr case " << c;
      // Accumulator chain: the same two ops via the raw-limb engine.
      mm.acc_enter(a);
      mm.acc_mul(bm);
      mm.acc_redc();
      mpz_class chain;
      mm.acc_get(chain);
      ASSERT_EQ(chain, mod(a * b, grp.p())) << grp.name() << " acc chain case " << c;
    }
  }
}

TEST(MontgomeryProperty, AccumulatorOpChainMatchesMpzModel) {
  // Random walks over the full accumulator op set (sqr / mul / fused-enter
  // mul / save / mul_saved) against a plain mpz model — this pins exactly
  // the op sequences the Straus, Horner and comb loops compose.
  const std::size_t kWalks = testprop::property_cases(200);
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    const mpz_class& p = grp.p();
    const MontgomeryCtx& ctx = *grp.montgomery();
    MontgomeryCtx::Mul mm(ctx);
    Drbg rng(testprop::property_seed() ^ (0xb0 + static_cast<std::uint64_t>(gi)));
    for (std::size_t wk = 0; wk < kWalks; ++wk) {
      mpz_class model = random_width_residue(p, rng);
      mpz_class saved = model;
      mm.acc_enter(model);
      mm.acc_save();
      for (int op = 0; op < 24; ++op) {
        switch (rng.uniform(5)) {
          case 0:
            mm.acc_sqr();
            model = mod(model * model, p);
            break;
          case 1: {
            mpz_class v = random_width_residue(p, rng);
            mm.acc_mul(ctx.to_mont(v));
            model = mod(model * v, p);
            break;
          }
          case 2: {
            mpz_class v = random_width_residue(p, rng);
            mm.acc_mul_entered(v);
            model = mod(model * v, p);
            break;
          }
          case 3:
            mm.acc_save();
            saved = model;
            break;
          default:
            mm.acc_mul_saved();
            model = mod(model * saved, p);
            break;
        }
      }
      mm.acc_redc();
      mpz_class got;
      mm.acc_get(got);
      ASSERT_EQ(got, model) << grp.name() << " walk " << wk;
    }
  }
}

TEST(MontgomeryProperty, PowChainMatchesMpzPowmAllGroups) {
  // (base, exponent, width) cases: a REDC square-and-multiply ladder against
  // mpz_powm, with base and exponent drawn at random widths up to the
  // group's sizes, plus the degenerate exponents 0 and 1 and base p-1.
  const std::size_t kCases = testprop::property_cases(150);
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    const MontgomeryCtx& ctx = *grp.montgomery();
    MontgomeryCtx::Mul mm(ctx);
    Drbg rng(testprop::property_seed() ^ (0xc0 + static_cast<std::uint64_t>(gi)));
    for (std::size_t c = 0; c < kCases; ++c) {
      mpz_class base = c == 0 ? mpz_class(grp.p() - 1) : random_width_residue(grp.p(), rng);
      mpz_class e = c < 3 ? mpz_class(c) : random_width_residue(grp.q(), rng);
      mpz_class bm = ctx.to_mont(base);
      mm.acc_set_one();
      for (std::size_t b = mpz_sizeinbase(e.get_mpz_t(), 2); b-- > 0;) {
        if (e != 0) {  // sizeinbase(0) reports 1 bit; skip the ladder for e=0
          mm.acc_sqr();
          if (mpz_tstbit(e.get_mpz_t(), b) != 0) mm.acc_mul(bm);
        }
      }
      mm.acc_redc();
      mpz_class got;
      mm.acc_get(got);
      ASSERT_EQ(got, powm(base, e, grp.p())) << grp.name() << " case " << c;
    }
  }
}

TEST(MontgomeryProperty, SingleLimbAndLimbBoundaryModuli) {
  // Odd moduli straddling the limb boundaries: one limb, exactly at the
  // 64/128-bit edges, and just above them. Differential mul/sqr/pow against
  // plain mpz for each.
  std::vector<mpz_class> moduli{
      mpz_class{3},
      mpz_class{0x7fffffff},                       // single limb, half width
      mpz_class("1fffffffffffffff", 16),           // 2^61 - 1 (Mersenne prime)
      mpz_class("ffffffffffffffff", 16),           // all-ones single limb
      mpz_class("10000000000000001", 16),          // 2^64 + 1: two limbs, top limb 1
      mpz_class("1000000000000000000000000000000f", 16),  // just past 2^124
      mpz_class("ffffffffffffffffffffffffffffffff", 16),  // all-ones double limb
      mpz_class("100000000000000000000000000000001", 16),  // 2^128 + 1
  };
  const std::size_t kCases = testprop::property_cases(500);
  Drbg rng(testprop::property_seed() ^ 0xd0);
  for (const mpz_class& n : moduli) {
    MontgomeryCtx ctx(n);
    MontgomeryCtx::Mul mm(ctx);
    EXPECT_EQ(ctx.limbs(), mpz_size(n.get_mpz_t()));
    for (std::size_t c = 0; c < kCases; ++c) {
      mpz_class a = c == 0 ? mpz_class(n - 1) : random_width_residue(n, rng);
      mpz_class b = random_width_residue(n, rng);
      mpz_class prod = ctx.to_mont(a);
      mm.mul(prod, ctx.to_mont(b));
      ASSERT_EQ(ctx.from_mont(prod), mod(a * b, n)) << "n=" << n << " case " << c;
      mpz_class sq = ctx.to_mont(a);
      mm.sqr(sq);
      ASSERT_EQ(ctx.from_mont(sq), mod(a * a, n)) << "n=" << n << " case " << c;
    }
  }
}

TEST(MontgomeryProperty, MultiexpPathsMatchPowmReference) {
  // The full engine-threaded paths against independent mpz_powm products:
  // Straus multiexp, the Horner index products (both the small-i and
  // large-i regimes), the comb tables behind exp_g/exp_h, and the on/off
  // toggle differential — REDC on must be bit-identical to REDC off.
  ToggleGuard guard;
  const std::size_t kRounds = testprop::property_cases(25);
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    Drbg rng(testprop::property_seed() ^ (0xe0 + static_cast<std::uint64_t>(gi)));
    for (std::size_t round = 0; round < kRounds; ++round) {
      std::size_t k = 1 + rng.uniform(8);
      std::vector<Element> bases;
      std::vector<Scalar> exps;
      for (std::size_t j = 0; j < k; ++j) {
        bases.push_back(Element::exp_g(Scalar::random(grp, rng)));
        // Random widths, plus forced 0 / 1 exponents in every round.
        if (j == 0 && round % 3 == 0) {
          exps.push_back(Scalar::zero(grp));
        } else if (j == 1 && k > 1 && round % 3 == 1) {
          exps.push_back(Scalar::one(grp));
        } else {
          exps.push_back(Scalar::from_mpz(grp, random_width_residue(grp.q(), rng)));
        }
      }
      Element expect = Element::identity(grp);
      for (std::size_t j = 0; j < k; ++j) expect *= bases[j].pow(exps[j]);  // plain GMP powm
      multiexp_set_montgomery(true);
      Element on = multiexp(grp, bases, exps);
      multiexp_set_montgomery(false);
      Element off = multiexp(grp, bases, exps);
      multiexp_set_montgomery(true);
      ASSERT_EQ(on, expect) << grp.name() << " round " << round;
      ASSERT_EQ(off, expect) << grp.name() << " round " << round;

      std::uint64_t i = round % 4 == 0 ? rng.next_u64() : rng.uniform(64);
      Element idx_expect = Element::identity(grp);
      Scalar x = Scalar::from_u64(grp, i);
      Scalar ipow = Scalar::one(grp);
      for (const Element& b : bases) {
        idx_expect *= b.pow(ipow);
        ipow = ipow * x;
      }
      Element idx_on = multiexp_index(grp, bases, i);
      multiexp_set_montgomery(false);
      Element idx_off = multiexp_index(grp, bases, i);
      multiexp_set_montgomery(true);
      ASSERT_EQ(idx_on, idx_expect) << grp.name() << " i=" << i;
      ASSERT_EQ(idx_off, idx_expect) << grp.name() << " i=" << i;

      Scalar e = Scalar::from_mpz(grp, random_width_residue(grp.q(), rng));
      ASSERT_EQ(Element::exp_g(e).value(), powm(grp.g(), e.value(), grp.p())) << grp.name();
      ASSERT_EQ(Element::exp_h(e).value(), powm(grp.h(), e.value(), grp.p())) << grp.name();
    }
  }
}

TEST(MontgomeryProperty, CommitmentPathsMatchAcrossToggle) {
  // verify_poly / projections / eval_commit through FeldmanMatrix pick the
  // engine up via multiexp and the per-commitment MontDomainBases cache;
  // all of it must be bit-identical with the engine off (fresh matrices per
  // mode so the cache itself is exercised both ways).
  ToggleGuard guard;
  const std::size_t kRounds = testprop::property_cases(6);
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    Drbg rng(testprop::property_seed() ^ (0xf0 + static_cast<std::uint64_t>(gi)));
    for (std::size_t round = 0; round < kRounds; ++round) {
      std::size_t t = 1 + rng.uniform(5);
      BiPolynomial f = BiPolynomial::random(Scalar::random(grp, rng), t, rng);
      FeldmanMatrix c = FeldmanMatrix::commit(f);
      std::uint64_t i = 1 + rng.uniform(50);
      Polynomial row = f.row(i);
      multiexp_set_montgomery(true);
      FeldmanMatrix c_on = c;  // fresh cache per mode
      EXPECT_TRUE(c_on.verify_poly(i, row)) << grp.name();
      FeldmanVector rc_on = c_on.row_commitment(i);
      Element ec_on = c_on.eval_commit(i, i + 1);
      multiexp_set_montgomery(false);
      FeldmanMatrix c_off = c;
      EXPECT_TRUE(c_off.verify_poly(i, row)) << grp.name();
      FeldmanVector rc_off = c_off.row_commitment(i);
      Element ec_off = c_off.eval_commit(i, i + 1);
      multiexp_set_montgomery(true);
      EXPECT_TRUE(rc_on == rc_off) << grp.name() << " round " << round;
      EXPECT_EQ(ec_on, ec_off) << grp.name() << " round " << round;
      // Corrupted row still rejected in both modes.
      Polynomial bad = row;
      bad.coeff(0) += Scalar::one(grp);
      EXPECT_FALSE(c_on.verify_poly(i, bad)) << grp.name();
      multiexp_set_montgomery(false);
      EXPECT_FALSE(c_off.verify_poly(i, bad)) << grp.name();
      multiexp_set_montgomery(true);
    }
  }
}

TEST(Montgomery, EvenModulusFallsBackToPlainPath) {
  // The transparent-fallback guard: a group whose modulus is even has no
  // Montgomery form — for_group must say so, and every engine entry point
  // must produce the plain-path result anyway.
  const Group& base = Group::tiny256();
  mpz_class even_p = base.p() + 1;
  ASSERT_EQ(mpz_odd_p(even_p.get_mpz_t()), 0);
  Group grp("tiny256-even", even_p.get_str(16), base.q().get_str(16), base.g().get_str(16));
  EXPECT_EQ(grp.montgomery(), nullptr);
  EXPECT_EQ(MontgomeryCtx::for_group(grp), nullptr);

  Drbg rng(testprop::property_seed() ^ 0x55);
  std::vector<Element> bases;
  std::vector<Scalar> exps;
  for (int j = 0; j < 4; ++j) {
    bases.push_back(Element::generator(grp).pow_u64(2 + static_cast<std::uint64_t>(j)));
    exps.push_back(Scalar::random(grp, rng));
  }
  Element expect = Element::identity(grp);
  for (std::size_t j = 0; j < bases.size(); ++j) expect *= bases[j].pow(exps[j]);
  EXPECT_EQ(multiexp(grp, bases, exps), expect);
  Element idx_expect = Element::identity(grp);
  Scalar x = Scalar::from_u64(grp, 3);
  Scalar ipow = Scalar::one(grp);
  for (const Element& b : bases) {
    idx_expect *= b.pow(ipow);
    ipow = ipow * x;
  }
  EXPECT_EQ(multiexp_index(grp, bases, 3), idx_expect);
  // The comb table builds (and answers) in the plain domain.
  Scalar e = Scalar::random(grp, rng);
  EXPECT_EQ(Element::exp_g(e).value(), powm(grp.g(), e.value(), even_p));
}

TEST(Montgomery, CtxCacheConcurrentFirstTouch) {
  // Concurrent first use of a fresh modulus races the MontgomeryCtx cache
  // build against lookups (the FixedBaseTable analogue; CI runs this file
  // under the tsan preset). A distinct odd p guarantees the ctx does not
  // exist yet.
  const Group& base = Group::tiny256();
  mpz_class fresh_p = base.p() + 4;  // odd: p is odd
  ASSERT_NE(mpz_odd_p(fresh_p.get_mpz_t()), 0);
  Group grp("tiny256-mont-race", fresh_p.get_str(16), base.q().get_str(16),
            base.g().get_str(16));
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> ok(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Drbg rng(testprop::property_seed() + 900 + static_cast<std::uint64_t>(w));
      bool all = true;
      for (int rep = 0; rep < 8; ++rep) {
        const MontgomeryCtx* ctx = MontgomeryCtx::for_group(grp);
        if (ctx == nullptr) {
          all = false;
          break;
        }
        mpz_class a = random_width_residue(fresh_p, rng);
        mpz_class b = random_width_residue(fresh_p, rng);
        MontgomeryCtx::Mul mm(*ctx);
        mpz_class prod = ctx->to_mont(a);
        mm.mul(prod, ctx->to_mont(b));
        all = all && ctx->from_mont(prod) == mod(a * b, fresh_p);
      }
      ok[w] = all;
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_TRUE(ok[w]) << w;
}

TEST(Montgomery, MontDomainBasesConcurrentFirstTouch) {
  // Concurrent first verify_poly on one shared commitment races the
  // per-commitment Montgomery image build (mirrors the SweepDriver shape:
  // one SendMsg matrix, many receivers).
  const Group& grp = Group::small512();
  Drbg rng(testprop::property_seed() + 1000);
  std::size_t t = 3;
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp, rng), t, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> ok(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      bool all = true;
      for (int rep = 0; rep < 4; ++rep) {
        std::uint64_t i = 1 + static_cast<std::uint64_t>(w);
        all = all && c.verify_poly(i, f.row(i));
      }
      ok[w] = all;
    });
  }
  for (auto& t_ : workers) t_.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_TRUE(ok[w]) << w;
}

}  // namespace
}  // namespace dkg::crypto
