// Unit tests: byte utilities and canonical serialization.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/serialize.hpp"

namespace dkg {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Bytes, Equality) {
  EXPECT_TRUE(ct_equal(bytes_of("abc"), bytes_of("abc")));
  EXPECT_FALSE(ct_equal(bytes_of("abc"), bytes_of("abd")));
  EXPECT_FALSE(ct_equal(bytes_of("abc"), bytes_of("abcd")));
}

TEST(Serialize, IntegerRoundTrip) {
  Writer w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Serialize, BlobAndString) {
  Writer w;
  w.blob(Bytes{1, 2, 3});
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Serialize, TruncatedBlobThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.data());
  EXPECT_THROW(r.blob(), std::out_of_range);
}

TEST(Serialize, RawHasNoFraming) {
  Writer w;
  w.raw(Bytes{9, 9});
  EXPECT_EQ(w.size(), 2u);
}

}  // namespace
}  // namespace dkg
