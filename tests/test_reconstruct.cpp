// Unit tests: the verified reconstruction utility shared by Rec and the
// application layer.
#include <gtest/gtest.h>

#include "vss/reconstruct.hpp"

namespace dkg::vss {
namespace {

using crypto::Drbg;
using crypto::FeldmanVector;
using crypto::Group;
using crypto::Polynomial;
using crypto::Scalar;

struct ReconstructFixture : ::testing::Test {
  void SetUp() override {
    Drbg rng(9);
    poly.emplace(Polynomial::random(Group::tiny256(), 2, rng));
    vec.emplace(FeldmanVector::commit(*poly));
  }
  std::optional<Polynomial> poly;
  std::optional<FeldmanVector> vec;
};

TEST_F(ReconstructFixture, RecoverFromExactThreshold) {
  SecretReconstructor rec(*vec, 2);
  for (std::uint64_t i = 1; i <= 3; ++i) EXPECT_TRUE(rec.add_share(i, poly->eval_at(i).reveal()));
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(*rec.secret(), poly->eval_at(0).reveal());
}

TEST_F(ReconstructFixture, PublicKeyFromAnyQuorumInTheExponent) {
  // g^{f(0)} from any t+1 member keys V(i) — no scalar shares involved.
  EXPECT_EQ(reconstruct_public_key(*vec, {1, 2, 3}), vec->c0());
  EXPECT_EQ(reconstruct_public_key(*vec, {2, 5, 9}), vec->c0());
  EXPECT_THROW(reconstruct_public_key(*vec, {1, 1, 2}), std::invalid_argument);
}

TEST_F(ReconstructFixture, IncompleteBelowThreshold) {
  SecretReconstructor rec(*vec, 2);
  rec.add_share(1, poly->eval_at(1).reveal());
  rec.add_share(2, poly->eval_at(2).reveal());
  EXPECT_FALSE(rec.complete());
  EXPECT_FALSE(rec.secret().has_value());
}

TEST_F(ReconstructFixture, RejectsInvalidShares) {
  SecretReconstructor rec(*vec, 2);
  EXPECT_FALSE(rec.add_share(1, poly->eval_at(2).reveal()));  // wrong index
  EXPECT_FALSE(rec.add_share(1, poly->eval_at(1).reveal() + Scalar::one(Group::tiny256())));
  EXPECT_EQ(rec.rejected_count(), 2u);
  EXPECT_EQ(rec.valid_count(), 0u);
}

TEST_F(ReconstructFixture, IgnoresDuplicateIndices) {
  SecretReconstructor rec(*vec, 2);
  EXPECT_TRUE(rec.add_share(1, poly->eval_at(1).reveal()));
  EXPECT_FALSE(rec.add_share(1, poly->eval_at(1).reveal()));  // duplicate
  EXPECT_EQ(rec.valid_count(), 1u);
}

TEST_F(ReconstructFixture, ExtraSharesDontChangeResult) {
  SecretReconstructor rec(*vec, 2);
  for (std::uint64_t i = 1; i <= 7; ++i) rec.add_share(i, poly->eval_at(i).reveal());
  EXPECT_EQ(*rec.secret(), poly->eval_at(0).reveal());
}

TEST_F(ReconstructFixture, MixedValidAndInvalid) {
  SecretReconstructor rec(*vec, 2);
  Scalar bad = poly->eval_at(1).reveal() + Scalar::one(Group::tiny256());
  rec.add_share(1, bad);
  for (std::uint64_t i = 2; i <= 4; ++i) rec.add_share(i, poly->eval_at(i).reveal());
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(*rec.secret(), poly->eval_at(0).reveal());
  EXPECT_EQ(rec.rejected_count(), 1u);
}

}  // namespace
}  // namespace dkg::vss
