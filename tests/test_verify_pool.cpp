// Verify-pool determinism suite (the intra-scenario parallel verification
// engine, engine/verify_pool.hpp): with the pool on, every simulated
// observable — transcripts (message counts/bytes), completion times, harness
// extras, protocol verdicts, bad-signer attribution, point-memo statistics —
// must be bit-identical to the sequential run; only wall-clock may move.
// The `pool` ctest label routes this binary through the TSan CI leg, where
// the concurrency hammer drives every process-wide crypto cache from many
// worker threads at once.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/task_guard.hpp"
#include "crypto/bipolynomial.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keyring.hpp"
#include "crypto/sigverify.hpp"
#include "engine/parallel_verify.hpp"
#include "engine/runner.hpp"
#include "engine/sweep.hpp"
#include "engine/verify_pool.hpp"
#include "sim/simulator.hpp"

namespace dkg {
namespace {

class VerifyPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::set_verify_pool(true);
    engine::VerifyPool::instance().configure(4);
    crypto::sig_verify_reset_stats();
  }
  void TearDown() override {
    engine::set_verify_pool(true);
    engine::VerifyPool::instance().configure(1);
  }
};

engine::ScenarioSpec base_spec(engine::Variant v, std::size_t n, std::size_t t,
                               vss::CommitmentMode mode, std::uint64_t seed) {
  engine::ScenarioSpec spec;
  spec.label = std::string(engine::variant_name(v)) + " n=" + std::to_string(n);
  spec.variant = v;
  spec.n = n;
  spec.t = t;
  spec.f = 0;
  spec.mode = mode;
  spec.seed = seed;
  return spec;
}

/// The grid the A/B tests sweep: every pool-adopting harness, both
/// commitment modes where they differ.
std::vector<engine::ScenarioSpec> ab_grid() {
  std::vector<engine::ScenarioSpec> specs;
  specs.push_back(base_spec(engine::Variant::Dkg, 7, 2, vss::CommitmentMode::Full, 41));
  specs.push_back(base_spec(engine::Variant::Dkg, 7, 2, vss::CommitmentMode::Hashed, 42));
  specs.push_back(base_spec(engine::Variant::HybridVss, 7, 2, vss::CommitmentMode::Full, 43));
  specs.push_back(base_spec(engine::Variant::HybridVss, 7, 2, vss::CommitmentMode::Hashed, 44));
  specs.push_back(base_spec(engine::Variant::Avss, 7, 2, vss::CommitmentMode::Full, 45));
  specs.push_back(base_spec(engine::Variant::Proactive, 7, 2, vss::CommitmentMode::Hashed, 46));
  return specs;
}

/// Everything except the measured cpu_ms (the one nondeterministic field).
void expect_same_simulated_metrics(const engine::ScenarioResult& a,
                                   const engine::ScenarioResult& b, const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.bytes, b.bytes) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
  ASSERT_EQ(a.extras.size(), b.extras.size()) << label;
  for (std::size_t i = 0; i < a.extras.size(); ++i) {
    EXPECT_EQ(a.extras[i].first, b.extras[i].first) << label;
    EXPECT_EQ(a.extras[i].second, b.extras[i].second) << label << " / " << a.extras[i].first;
  }
}

TEST_F(VerifyPoolTest, AbBitIdenticalAcrossVariants) {
  for (const engine::ScenarioSpec& spec : ab_grid()) {
    engine::set_verify_pool(false);
    crypto::sig_verify_reset_stats();
    engine::ScenarioResult off = engine::run_scenario(spec);
    crypto::SigVerifyStats stats_off = crypto::sig_verify_stats();

    engine::set_verify_pool(true);
    crypto::sig_verify_reset_stats();
    engine::ScenarioResult on = engine::run_scenario(spec);
    crypto::SigVerifyStats stats_on = crypto::sig_verify_stats();

    expect_same_simulated_metrics(off, on, spec.label);
    // Point-memo traffic is counted at fold time in sequential arrival
    // order, so the totals must match exactly. (Sig-cache hit/miss tallies
    // are deliberately NOT asserted: concurrent workers may race a cache
    // insert and re-verify — the verdicts and transcripts stay identical.)
    EXPECT_EQ(stats_off.point_memo_hits, stats_on.point_memo_hits) << spec.label;
    EXPECT_EQ(stats_off.point_memo_misses, stats_on.point_memo_misses) << spec.label;
  }
}

TEST_F(VerifyPoolTest, Ec256AbBitIdenticalAcrossVariants) {
  // The ec256 backend verifies through a per-commitment share grid that is
  // SHARED across every receiving node (the interned decode cache hands all
  // n receivers one FeldmanMatrix), so pool workers contend on the grid
  // mutex while it grows — this A/B sweep is the TSan hammer for that path,
  // and the determinism contract is the same as the mod-p one: only
  // wall-clock may move.
  for (engine::ScenarioSpec spec : ab_grid()) {
    spec.grp = &crypto::Group::ec256();
    spec.label += " ec256";
    engine::set_verify_pool(false);
    crypto::sig_verify_reset_stats();
    engine::ScenarioResult off = engine::run_scenario(spec);
    crypto::SigVerifyStats stats_off = crypto::sig_verify_stats();

    engine::set_verify_pool(true);
    crypto::sig_verify_reset_stats();
    engine::ScenarioResult on = engine::run_scenario(spec);
    crypto::SigVerifyStats stats_on = crypto::sig_verify_stats();

    expect_same_simulated_metrics(off, on, spec.label);
    EXPECT_EQ(stats_off.point_memo_hits, stats_on.point_memo_hits) << spec.label;
    EXPECT_EQ(stats_off.point_memo_misses, stats_on.point_memo_misses) << spec.label;
  }
}

TEST_F(VerifyPoolTest, VerifyJobsOneMatchesPoolOff) {
  engine::ScenarioSpec spec = base_spec(engine::Variant::Dkg, 7, 2, vss::CommitmentMode::Full, 7);
  engine::set_verify_pool(false);
  engine::ScenarioResult off = engine::run_scenario(spec);
  engine::set_verify_pool(true);
  spec.verify_jobs = 1;  // per-scenario sequential pin, pool stays configured
  engine::ScenarioResult one = engine::run_scenario(spec);
  expect_same_simulated_metrics(off, one, spec.label);
}

TEST_F(VerifyPoolTest, EventBudgetAccountingIdentical) {
  engine::ScenarioSpec spec =
      base_spec(engine::Variant::Dkg, 7, 2, vss::CommitmentMode::Hashed, 11);
  spec.max_events = 400;  // tight enough to exhaust mid-protocol
  engine::set_verify_pool(false);
  engine::ScenarioResult off = engine::run_scenario(spec);
  engine::set_verify_pool(true);
  engine::ScenarioResult on = engine::run_scenario(spec);
  EXPECT_FALSE(off.completed);
  expect_same_simulated_metrics(off, on, "budget-exhausted dkg");
}

TEST_F(VerifyPoolTest, BadSignersOrderingMatchesSequential) {
  const crypto::Group& grp = crypto::Group::tiny256();
  auto ring = crypto::Keyring::generate(grp, 12, 99);
  Bytes payload = bytes_of("verify-pool bad-signer ordering");
  Bytes wrong = bytes_of("a different payload entirely");

  std::vector<crypto::Signature> sigs;
  sigs.reserve(12);
  for (std::uint32_t i = 1; i <= 12; ++i) sigs.push_back(ring->sign_as(i, payload));
  crypto::Signature forged3 = ring->sign_as(3, wrong);
  crypto::Signature forged9 = ring->sign_as(9, wrong);

  // Mixed batch: in-range valid, in-range invalid, out-of-range ids, a null
  // sig, and duplicates — enough refs to take the chunked path.
  std::vector<crypto::Keyring::SignerRef> refs;
  refs.push_back({1, &sigs[0]});
  refs.push_back({0, &sigs[0]});       // out of range (id 0)
  refs.push_back({3, &forged3});       // invalid
  refs.push_back({4, &sigs[3]});
  refs.push_back({99, &sigs[0]});      // out of range (id 99)
  refs.push_back({5, &sigs[4]});
  refs.push_back({6, nullptr});        // null sig counts as out of range
  refs.push_back({9, &forged9});       // invalid
  refs.push_back({9, &forged9});       // duplicate invalid
  refs.push_back({10, &sigs[9]});
  refs.push_back({11, &sigs[10]});
  refs.push_back({12, &sigs[11]});

  std::vector<std::uint32_t> bad_seq;
  bool ok_seq = ring->verify_many(refs, payload, &bad_seq);

  engine::ScopedVerifyJobs jobs(4);
  ASSERT_TRUE(engine::verify_parallel_active());
  std::vector<std::uint32_t> bad_par;
  bool ok_par = engine::parallel_verify_many(*ring, refs, payload, &bad_par);

  EXPECT_EQ(ok_seq, ok_par);
  EXPECT_FALSE(ok_par);
  EXPECT_EQ(bad_seq, bad_par);  // same ids in the same emission order
}

TEST_F(VerifyPoolTest, SweepJobsTimesVerifyJobsOversubscribed) {
  // SweepDriver worker threads and verify-pool workers share the machine;
  // on a small host this oversubscribes the cores — metrics must not care.
  auto grid = [] {
    engine::SweepDriver driver;
    driver.add(base_spec(engine::Variant::Dkg, 7, 2, vss::CommitmentMode::Hashed, 21));
    driver.add(base_spec(engine::Variant::Dkg, 4, 1, vss::CommitmentMode::Full, 22));
    driver.add(base_spec(engine::Variant::HybridVss, 7, 2, vss::CommitmentMode::Hashed, 23));
    driver.add(base_spec(engine::Variant::Avss, 7, 2, vss::CommitmentMode::Full, 24));
    return driver;
  };

  engine::set_verify_pool(false);
  engine::SweepDriver seq = grid();
  std::vector<engine::ScenarioResult> base = seq.run(1);

  engine::set_verify_pool(true);
  engine::SweepDriver par = grid();
  std::vector<engine::ScenarioResult> results = par.run(2);

  ASSERT_EQ(base.size(), results.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    expect_same_simulated_metrics(base[i], results[i], seq.specs()[i].label);
  }
}

TEST_F(VerifyPoolTest, ConcurrentKeyringAndProjectionHammer) {
  // TSan target: many worker threads hit one keyring's verified-sig cache,
  // signer comb tables and stats counters, plus one FeldmanVector's
  // Montgomery-domain caches, all at once. Correctness assert is just "every
  // verdict right"; the value of the test is the data-race-free execution.
  engine::VerifyPool::instance().configure(8);
  engine::ScopedVerifyJobs jobs(8);
  ASSERT_TRUE(engine::verify_parallel_active());

  const crypto::Group& grp = crypto::Group::tiny256();
  auto ring = crypto::Keyring::generate(grp, 8, 7);
  Bytes payload = bytes_of("hammer payload");
  std::vector<crypto::Signature> sigs;
  for (std::uint32_t i = 1; i <= 8; ++i) sigs.push_back(ring->sign_as(i, payload));

  crypto::Drbg rng(17);
  crypto::BiPolynomial f =
      crypto::BiPolynomial::random(crypto::Scalar::random(grp, rng), 3, rng);
  crypto::FeldmanMatrix c = crypto::FeldmanMatrix::commit(f);
  crypto::FeldmanVector proj = c.row_commitment(2);
  crypto::Polynomial row = f.row(2);
  std::vector<crypto::Scalar> points;
  for (std::uint64_t j = 1; j <= 8; ++j) points.push_back(row.eval_at(j).reveal());

  std::atomic<int> failures{0};
  for (int scope_round = 0; scope_round < 8; ++scope_round) {
    engine::VerifyScope scope;
    ASSERT_TRUE(scope.parallel());
    for (int k = 0; k < 32; ++k) {
      std::uint32_t id = static_cast<std::uint32_t>(k % 8) + 1;
      const crypto::Signature* sig = &sigs[id - 1];
      const crypto::Keyring* r = ring.get();
      scope.push([r, id, &payload, sig, &failures] {
        if (!r->verify_from(id, payload, *sig)) failures.fetch_add(1);
      });
      const crypto::FeldmanVector* p = &proj;
      const crypto::Scalar* pt = &points[id - 1];
      scope.push([p, id, pt, &failures] {
        if (!p->verify_share(id, *pt)) failures.fetch_add(1);
      });
    }
    scope.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// --- worker-task purity guard ----------------------------------------------

struct PokeMsg : sim::Message {
  std::string_view type() const override { return "test.poke"; }
  void serialize(Writer&) const override {}
};

/// A buggy "protocol" that tries to send from inside a verify-pool task.
struct RogueNode : sim::Node {
  void on_message(sim::Context& ctx, sim::NodeId, const sim::MessagePtr&) override {
    engine::VerifyScope scope;
    scope.push([&ctx] { ctx.send(1, std::make_shared<PokeMsg>()); });
    scope.join();  // rethrows the simulator's purity rejection
  }
};

TEST_F(VerifyPoolTest, SendFromWorkerTaskThrows) {
  ASSERT_TRUE(engine::verify_parallel_active());
  sim::Simulator sim(2, std::make_unique<sim::FixedDelay>(5), 1);
  sim.set_node(1, std::make_unique<RogueNode>());
  sim.set_node(2, std::make_unique<RogueNode>());
  sim.post_operator(1, std::make_shared<PokeMsg>(), 0);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(VerifyPoolTest, WorkerTaskFlagTracksExecution) {
  EXPECT_FALSE(common::in_worker_task());
  std::atomic<bool> saw_flag{false};
  engine::VerifyScope scope;
  scope.push([&saw_flag] { saw_flag.store(common::in_worker_task()); });
  scope.join();
  EXPECT_TRUE(saw_flag.load());
  EXPECT_FALSE(common::in_worker_task());
}

}  // namespace
}  // namespace dkg
