// Unit tests: the multi-exponentiation engine (crypto/multiexp) — Straus
// simultaneous exponentiation, the fixed-base comb tables behind
// Element::exp_g/exp_h, and the batched verification predicates built on
// them. The randomized cross-checks pin every fast path bit-identical to the
// naive powm product in all four parameter sets (the acceptance condition
// for replacing the naive path underneath the protocol layers).
#include <gtest/gtest.h>

#include <thread>

#include "crypto/feldman.hpp"
#include "crypto/multiexp.hpp"

namespace dkg::crypto {
namespace {

const Group& group_for(int idx) {
  switch (idx) {
    case 0: return Group::tiny256();
    case 1: return Group::small512();
    case 2: return Group::mod1024();
    default: return Group::big2048();
  }
}

std::vector<Element> random_bases(const Group& grp, std::size_t k, Drbg& rng) {
  std::vector<Element> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(Element::exp_g(Scalar::random(grp, rng)));
  return out;
}

// The reference implementation multiexp must match bit-for-bit:
// independent powm per term (Element::pow goes straight to GMP).
Element naive_product(const Group& grp, const std::vector<Element>& bases,
                      const std::vector<Scalar>& exps) {
  Element acc = Element::identity(grp);
  for (std::size_t i = 0; i < bases.size(); ++i) acc *= bases[i].pow(exps[i]);
  return acc;
}

TEST(Multiexp, EmptyInputIsIdentity) {
  const Group& grp = Group::tiny256();
  EXPECT_EQ(multiexp(grp, std::vector<Element>{}, {}), Element::identity(grp));
}

TEST(Multiexp, SingleTermMatchesPow) {
  Drbg rng(1);
  const Group& grp = Group::small512();
  Element b = Element::exp_g(Scalar::random(grp, rng));
  Scalar e = Scalar::random(grp, rng);
  EXPECT_EQ(multiexp(grp, {b}, {e}), b.pow(e));
}

TEST(Multiexp, ZeroAndOneExponentDegenerateCases) {
  Drbg rng(2);
  const Group& grp = Group::small512();
  std::vector<Element> bases = random_bases(grp, 3, rng);
  std::vector<Scalar> zeros(3, Scalar::zero(grp));
  EXPECT_EQ(multiexp(grp, bases, zeros), Element::identity(grp));
  // Mixed zero / one exponents hit the skipped-digit path.
  std::vector<Scalar> mixed{Scalar::zero(grp), Scalar::one(grp), Scalar::random(grp, rng)};
  EXPECT_EQ(multiexp(grp, bases, mixed), naive_product(grp, bases, mixed));
}

TEST(Multiexp, SizeMismatchThrows) {
  Drbg rng(3);
  const Group& grp = Group::tiny256();
  std::vector<Element> bases = random_bases(grp, 2, rng);
  std::vector<Scalar> exps{Scalar::one(grp)};
  EXPECT_THROW(multiexp(grp, bases, exps), std::invalid_argument);
}

TEST(Multiexp, MixedGroupsThrow) {
  Drbg rng(4);
  std::vector<Element> bases{Element::generator(Group::tiny256())};
  std::vector<Scalar> exps{Scalar::random(Group::small512(), rng)};
  EXPECT_THROW(multiexp(Group::tiny256(), bases, exps), std::logic_error);
  EXPECT_THROW(multiexp(Group::small512(), bases,
                        std::vector<Scalar>{Scalar::one(Group::small512())}),
               std::logic_error);
}

TEST(Multiexp, CrossCheckAgainstNaiveInAllGroups) {
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    Drbg rng(100 + static_cast<std::uint64_t>(gi));
    for (std::size_t k : {1u, 2u, 3u, 7u}) {
      std::vector<Element> bases = random_bases(grp, k, rng);
      std::vector<Scalar> exps;
      for (std::size_t i = 0; i < k; ++i) exps.push_back(Scalar::random(grp, rng));
      EXPECT_EQ(multiexp(grp, bases, exps), naive_product(grp, bases, exps))
          << grp.name() << " k=" << k;
    }
  }
}

TEST(Multiexp, FixedBaseTablesMatchPowmInAllGroups) {
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    Drbg rng(200 + static_cast<std::uint64_t>(gi));
    // Boundary exponents plus random ones.
    std::vector<Scalar> xs{Scalar::zero(grp), Scalar::one(grp),
                           Scalar::from_mpz(grp, grp.q() - 1)};
    for (int r = 0; r < 4; ++r) xs.push_back(Scalar::random(grp, rng));
    for (const Scalar& x : xs) {
      EXPECT_EQ(Element::exp_g(x).value(), powm(grp.g(), x.value(), grp.p())) << grp.name();
      EXPECT_EQ(Element::exp_h(x).value(), powm(grp.h(), x.value(), grp.p())) << grp.name();
    }
    const FixedBaseTable* t = FixedBaseTable::for_g(grp);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->memory_bytes(), 0u);
  }
}

TEST(Multiexp, IndexPowerProductMatchesNaiveInAllGroups) {
  // multiexp_index covers both regimes: Horner in the exponent (small i)
  // and the Straus fallback (large i where i^t would wrap past q, which
  // tiny256's 64-bit q hits first).
  for (int gi = 0; gi < 4; ++gi) {
    const Group& grp = group_for(gi);
    Drbg rng(150 + static_cast<std::uint64_t>(gi));
    for (std::uint64_t i : {0ull, 1ull, 3ull, 50ull, 1'000'000'007ull}) {
      std::vector<Element> bases = random_bases(grp, 6, rng);
      Element expect = Element::identity(grp);
      Scalar x = Scalar::from_u64(grp, i);
      Scalar ipow = Scalar::one(grp);
      for (const Element& b : bases) {
        expect *= b.pow(ipow);
        ipow = ipow * x;
      }
      EXPECT_EQ(multiexp_index(grp, bases, i), expect) << grp.name() << " i=" << i;
    }
  }
}

TEST(Multiexp, WindowPolicyMatchesCostModel) {
  // w minimizes (2^w - 2) + ceil(bits/w); spot-check the regimes the four
  // parameter sets actually hit (kappa = 64, 160, 256).
  EXPECT_EQ(multiexp_window(1), 1u);
  EXPECT_EQ(multiexp_window(64), 3u);
  EXPECT_EQ(multiexp_window(160), 4u);
  EXPECT_EQ(multiexp_window(256), 4u);
  for (std::size_t b : {1u, 8u, 64u, 160u, 256u, 2048u}) {
    EXPECT_GE(multiexp_window(b), 1u);
    EXPECT_LE(multiexp_window(b), 8u);
  }
}

TEST(Multiexp, VerifyPolyBatchAcceptsHonestDealings) {
  const Group& grp = Group::small512();
  Drbg rng(300);
  std::size_t t = 3, k = 4;
  std::vector<BiPolynomial> polys;
  std::vector<FeldmanMatrix> mats;
  std::vector<Polynomial> rows;
  for (std::size_t d = 0; d < k; ++d) {
    polys.push_back(BiPolynomial::random(Scalar::random(grp, rng), t, rng));
    mats.push_back(FeldmanMatrix::commit(polys.back()));
    rows.push_back(polys.back().row(d + 1));
  }
  std::vector<RowCheck> checks;
  for (std::size_t d = 0; d < k; ++d) checks.push_back(RowCheck{&mats[d], d + 1, &rows[d]});
  Drbg batch_rng(301);
  EXPECT_TRUE(verify_poly_batch(checks, batch_rng));
  EXPECT_TRUE(verify_poly_batch({}, batch_rng));  // vacuous
}

TEST(Multiexp, VerifyPolyBatchRejectsOneBadDealingAndFallbackFindsIt) {
  const Group& grp = Group::small512();
  Drbg rng(310);
  std::size_t t = 3, k = 5, bad = 2;
  std::vector<BiPolynomial> polys;
  std::vector<FeldmanMatrix> mats;
  std::vector<Polynomial> rows;
  for (std::size_t d = 0; d < k; ++d) {
    polys.push_back(BiPolynomial::random(Scalar::random(grp, rng), t, rng));
    mats.push_back(FeldmanMatrix::commit(polys.back()));
    rows.push_back(polys.back().row(d + 1));
  }
  rows[bad].coeff(1) += Scalar::one(grp);  // one corrupted row polynomial
  std::vector<RowCheck> checks;
  for (std::size_t d = 0; d < k; ++d) checks.push_back(RowCheck{&mats[d], d + 1, &rows[d]});
  Drbg batch_rng(311);
  EXPECT_FALSE(verify_poly_batch(checks, batch_rng));
  // The fallback the callers use: per-dealing verify_poly pinpoints the bad
  // one — and only it.
  for (std::size_t d = 0; d < k; ++d) {
    EXPECT_EQ(mats[d].verify_poly(d + 1, rows[d]), d != bad) << d;
  }
}

TEST(Multiexp, VerifyPolyBatchRejectsDegreeMismatchDeterministically) {
  const Group& grp = Group::tiny256();
  Drbg rng(320);
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp, rng), 2, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  Polynomial wrong = Polynomial::random(grp, 3, rng);
  std::vector<RowCheck> checks{RowCheck{&c, 1, &wrong}};
  Drbg batch_rng(321);
  EXPECT_FALSE(verify_poly_batch(checks, batch_rng));
  // Null commitment/row in any slot — including the first — is a plain
  // reject, not a crash.
  Polynomial good = f.row(1);
  EXPECT_FALSE(verify_poly_batch({RowCheck{nullptr, 1, &good}}, batch_rng));
  EXPECT_FALSE(verify_poly_batch({RowCheck{&c, 1, nullptr}}, batch_rng));
}

TEST(Multiexp, VerifyShareBatch) {
  const Group& grp = Group::small512();
  Drbg rng(330);
  Polynomial a = Polynomial::random(grp, 3, rng);
  FeldmanVector vec = FeldmanVector::commit(a);
  std::vector<std::pair<std::uint64_t, Scalar>> shares;
  for (std::uint64_t i = 1; i <= 6; ++i) shares.emplace_back(i, a.eval_at(i).reveal());
  Drbg batch_rng(331);
  EXPECT_TRUE(vec.verify_share_batch(shares, batch_rng));
  EXPECT_TRUE(vec.verify_share_batch({}, batch_rng));
  shares[3].second += Scalar::one(grp);
  EXPECT_FALSE(vec.verify_share_batch(shares, batch_rng));
  for (std::size_t k = 0; k < shares.size(); ++k) {
    EXPECT_EQ(vec.verify_share(shares[k].first, shares[k].second), k != 3) << k;
  }
}

TEST(Multiexp, OrderQHornerMatchesReducedFallback) {
  // tiny256's q is 64-bit, so t=20 bases at i=100 (7 index bits) blow the
  // integer-Horner budget: t * ibits = 140 > 63 and plain multiexp_index
  // must take the reduced-power fallback. order_q_bases=true widens the
  // gate — legal exactly because these bases are order-q (exp_g outputs),
  // where B^e depends only on e mod q. Both paths, and the per-term
  // reduced-power reference, must agree bit-for-bit.
  Drbg rng(77);
  const Group& grp = Group::tiny256();
  constexpr std::size_t kTerms = 21;
  std::vector<Element> bases = random_bases(grp, kTerms, rng);
  MontDomainBases mont;
  for (std::uint64_t i : {2ull, 63ull, 100ull, 4096ull}) {
    Element expect = Element::identity(grp);
    Scalar ipow = Scalar::one(grp);
    Scalar is = Scalar::from_u64(grp, i);
    for (std::size_t k = 0; k < kTerms; ++k) {
      expect *= bases[k].pow(ipow);
      ipow = ipow * is;
    }
    EXPECT_EQ(multiexp_index(grp, bases, i), expect) << i;
    EXPECT_EQ(multiexp_index(grp, bases, i, /*order_q_bases=*/true), expect) << i;
    // Same contract through IndexBases, with and without a Montgomery image.
    const MontDomainBases::Image* imgs[] = {mont.get(grp, bases), nullptr};
    for (const MontDomainBases::Image* img : imgs) {
      IndexBases ib(grp, kTerms, img, /*order_q_bases=*/true);
      for (std::size_t k = 0; k < kTerms; ++k) ib.assign(k, bases[k], k);
      EXPECT_EQ(ib.product(i), expect) << i << (img != nullptr ? " mont" : " plain");
    }
  }
}

TEST(Multiexp, FixedBaseTableIsThreadSafe) {
  // A fresh (group, base) cache entry built under concurrent first use: a
  // distinct Group value (tiny256's subgroup generated by h instead of g)
  // guarantees the table does not exist yet, so the build itself races with
  // lookups. Run under the tsan preset by CI (ctest -R Multiexp).
  const Group& base_grp = Group::tiny256();
  Group grp("tiny256-h", base_grp.p().get_str(16), base_grp.q().get_str(16),
            base_grp.h().get_str(16));
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> ok(kThreads, 0);  // not vector<bool>: distinct ints, no packed-bit races
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Drbg rng(400 + static_cast<std::uint64_t>(w));
      bool all = true;
      for (int rep = 0; rep < 8; ++rep) {
        Scalar x = Scalar::random(grp, rng);
        all = all && Element::exp_g(x).value() == powm(grp.g(), x.value(), grp.p());
      }
      ok[w] = all;
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_TRUE(ok[w]) << w;
}

}  // namespace
}  // namespace dkg::crypto
