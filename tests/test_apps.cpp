// Application tests: threshold ElGamal, threshold Schnorr and the random
// beacon running on genuine DKG outputs (paper §1's motivating uses).
#include <gtest/gtest.h>

#include "app/beacon.hpp"
#include "app/threshold_elgamal.hpp"
#include "app/threshold_schnorr.hpp"
#include "dkg/runner.hpp"

namespace dkg::app {
namespace {

using crypto::Element;
using crypto::Group;
using crypto::Scalar;

struct DkgFixture : ::testing::Test {
  static constexpr std::size_t kN = 7, kT = 2, kF = 0;

  void SetUp() override {
    core::RunnerConfig cfg;
    cfg.n = kN;
    cfg.t = kT;
    cfg.f = kF;
    cfg.seed = 301;
    runner_ = std::make_unique<core::DkgRunner>(cfg);
    runner_->start_all();
    ASSERT_TRUE(runner_->run_to_completion());
    ASSERT_TRUE(runner_->outputs_consistent());
    vec_.emplace(*runner_->dkg_node(1).output().share_vec);
    for (sim::NodeId i = 1; i <= kN; ++i) {
      shares_.push_back(runner_->dkg_node(i).output().share);
    }
  }

  const crypto::SecretScalar& share(std::size_t i) const { return shares_.at(i - 1); }

  std::unique_ptr<core::DkgRunner> runner_;
  std::optional<crypto::FeldmanVector> vec_;
  std::vector<crypto::SecretScalar> shares_;
};

using ThresholdElGamal = DkgFixture;

TEST_F(ThresholdElGamal, EncryptDecryptRoundTrip) {
  const Group& grp = Group::tiny256();
  crypto::Drbg rng(1);
  Element m = Element::exp_g(Scalar::from_u64(grp, 123456789));
  ElGamalCiphertext ct = elgamal_encrypt(vec_->c0(), m, rng);
  std::vector<PartialDecryption> partials;
  for (std::uint64_t i = 1; i <= kT + 1; ++i) {
    partials.push_back(partial_decrypt(ct, i, share(i)));
  }
  auto out = combine_decryption(ct, *vec_, kT, partials);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(ThresholdElGamal, AnySubsetOfTPlusOneWorks) {
  const Group& grp = Group::tiny256();
  crypto::Drbg rng(2);
  Element m = Element::exp_g(Scalar::from_u64(grp, 42));
  ElGamalCiphertext ct = elgamal_encrypt(vec_->c0(), m, rng);
  std::vector<PartialDecryption> partials;
  for (std::uint64_t i : {2ull, 5ull, 7ull}) partials.push_back(partial_decrypt(ct, i, share(i)));
  auto out = combine_decryption(ct, *vec_, kT, partials);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(ThresholdElGamal, BogusPartialIsRejected) {
  const Group& grp = Group::tiny256();
  crypto::Drbg rng(3);
  Element m = Element::exp_g(Scalar::from_u64(grp, 7));
  ElGamalCiphertext ct = elgamal_encrypt(vec_->c0(), m, rng);
  // A partial computed with the WRONG share but a self-consistent proof.
  PartialDecryption bad = partial_decrypt(ct, 1, share(2));
  EXPECT_FALSE(verify_partial(ct, *vec_, bad));
  // With only t valid partials + the bad one, combination fails.
  std::vector<PartialDecryption> partials{bad, partial_decrypt(ct, 2, share(2)),
                                          partial_decrypt(ct, 3, share(3))};
  EXPECT_FALSE(combine_decryption(ct, *vec_, kT, partials).has_value());
  // Adding one more honest partial succeeds despite the bad one.
  partials.push_back(partial_decrypt(ct, 4, share(4)));
  auto out = combine_decryption(ct, *vec_, kT, partials);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(ThresholdElGamal, TooFewPartialsFail) {
  const Group& grp = Group::tiny256();
  crypto::Drbg rng(4);
  ElGamalCiphertext ct =
      elgamal_encrypt(vec_->c0(), Element::exp_g(Scalar::from_u64(grp, 1)), rng);
  std::vector<PartialDecryption> partials;
  for (std::uint64_t i = 1; i <= kT; ++i) partials.push_back(partial_decrypt(ct, i, share(i)));
  EXPECT_FALSE(combine_decryption(ct, *vec_, kT, partials).has_value());
}

struct ThresholdSchnorrFixture : DkgFixture {
  void SetUp() override {
    DkgFixture::SetUp();
    // Nonce DKG: a second, independent run.
    core::RunnerConfig cfg;
    cfg.n = kN;
    cfg.t = kT;
    cfg.f = kF;
    cfg.seed = 302;
    cfg.tau = 2;
    nonce_runner_ = std::make_unique<core::DkgRunner>(cfg);
    nonce_runner_->start_all();
    ASSERT_TRUE(nonce_runner_->run_to_completion());
    nonce_vec_.emplace(*nonce_runner_->dkg_node(1).output().share_vec);
    for (sim::NodeId i = 1; i <= kN; ++i) {
      nonce_shares_.push_back(nonce_runner_->dkg_node(i).output().share);
    }
  }

  SigningSession session(const Bytes& msg) const {
    return SigningSession{nonce_vec_->c0(), *nonce_vec_, *vec_, msg};
  }

  std::unique_ptr<core::DkgRunner> nonce_runner_;
  std::optional<crypto::FeldmanVector> nonce_vec_;
  std::vector<crypto::SecretScalar> nonce_shares_;
};

using ThresholdSchnorr = ThresholdSchnorrFixture;

TEST_F(ThresholdSchnorr, CombinedSignatureVerifiesUnderPlainSchnorr) {
  Bytes msg = bytes_of("threshold-signed message");
  SigningSession s = session(msg);
  std::vector<PartialSignature> partials;
  for (std::uint64_t i = 1; i <= kT + 1; ++i) {
    partials.push_back(partial_sign(s, i, share(i), nonce_shares_[i - 1]));
    EXPECT_TRUE(verify_partial(s, partials.back()));
  }
  auto sig = combine_signature(s, kT, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(crypto::schnorr_verify(vec_->c0(), msg, *sig));
}

TEST_F(ThresholdSchnorr, DifferentSubsetsProduceSameSignature) {
  Bytes msg = bytes_of("m");
  SigningSession s = session(msg);
  std::vector<PartialSignature> sub1, sub2;
  for (std::uint64_t i : {1ull, 2ull, 3ull}) {
    sub1.push_back(partial_sign(s, i, share(i), nonce_shares_[i - 1]));
  }
  for (std::uint64_t i : {4ull, 6ull, 7ull}) {
    sub2.push_back(partial_sign(s, i, share(i), nonce_shares_[i - 1]));
  }
  auto s1 = combine_signature(s, kT, sub1);
  auto s2 = combine_signature(s, kT, sub2);
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_TRUE(*s1 == *s2);  // interpolation of the same polynomial
}

TEST_F(ThresholdSchnorr, WrongSharePartialIsRejected) {
  Bytes msg = bytes_of("m2");
  SigningSession s = session(msg);
  PartialSignature bad = partial_sign(s, 1, share(2), nonce_shares_[0]);
  EXPECT_FALSE(verify_partial(s, bad));
  std::vector<PartialSignature> partials{bad};
  for (std::uint64_t i = 2; i <= kT + 1; ++i) {
    partials.push_back(partial_sign(s, i, share(i), nonce_shares_[i - 1]));
  }
  EXPECT_FALSE(combine_signature(s, kT, partials).has_value());
}

using Beacon = DkgFixture;

TEST_F(Beacon, CombinesToUniqueValuePerRound) {
  const Group& grp = Group::tiny256();
  for (std::uint64_t round = 1; round <= 3; ++round) {
    std::vector<BeaconShare> shares1, shares2;
    for (std::uint64_t i : {1ull, 2ull, 3ull}) {
      shares1.push_back(beacon_evaluate(grp, round, i, share(i)));
    }
    for (std::uint64_t i : {5ull, 6ull, 7ull}) {
      shares2.push_back(beacon_evaluate(grp, round, i, share(i)));
    }
    auto out1 = beacon_combine(*vec_, kT, round, shares1);
    auto out2 = beacon_combine(*vec_, kT, round, shares2);
    ASSERT_TRUE(out1.has_value() && out2.has_value());
    EXPECT_EQ(*out1, *out2);  // uniqueness: subset-independent output
  }
}

TEST_F(Beacon, DifferentRoundsDiffer) {
  const Group& grp = Group::tiny256();
  std::vector<BeaconShare> r1, r2;
  for (std::uint64_t i = 1; i <= kT + 1; ++i) {
    r1.push_back(beacon_evaluate(grp, 1, i, share(i)));
    r2.push_back(beacon_evaluate(grp, 2, i, share(i)));
  }
  auto o1 = beacon_combine(*vec_, kT, 1, r1);
  auto o2 = beacon_combine(*vec_, kT, 2, r2);
  ASSERT_TRUE(o1.has_value() && o2.has_value());
  EXPECT_NE(*o1, *o2);
}

TEST_F(Beacon, ForgedShareIsRejected) {
  const Group& grp = Group::tiny256();
  BeaconShare forged = beacon_evaluate(grp, 1, 1, share(2));  // wrong share
  EXPECT_FALSE(beacon_verify_share(*vec_, forged));
  std::vector<BeaconShare> shares{forged};
  for (std::uint64_t i = 2; i <= kT + 1; ++i) {
    shares.push_back(beacon_evaluate(grp, 1, i, share(i)));
  }
  EXPECT_FALSE(beacon_combine(*vec_, kT, 1, shares).has_value());
  shares.push_back(beacon_evaluate(grp, 1, kT + 2, share(kT + 2)));
  EXPECT_TRUE(beacon_combine(*vec_, kT, 1, shares).has_value());
}

TEST_F(Beacon, WrongRoundSharesIgnored) {
  const Group& grp = Group::tiny256();
  std::vector<BeaconShare> shares;
  for (std::uint64_t i = 1; i <= kT + 1; ++i) {
    shares.push_back(beacon_evaluate(grp, 9, i, share(i)));
  }
  EXPECT_FALSE(beacon_combine(*vec_, kT, 1, shares).has_value());
}

}  // namespace
}  // namespace dkg::app
