// Shared knobs for the randomized property suites (ctest label `property`):
// every case count and Drbg seed in those suites flows through here, so one
// environment variable reproduces a failure and another turns a CI-speed
// run into a local soak run.
//
//   DKG_PROPERTY_SEED    Drbg seed for the randomized cases. Defaults to
//                        20090612 (the repo's parameter-generation seed);
//                        CI exports the same value explicitly so the suite
//                        is bit-reproducible there and here.
//   DKG_PROPERTY_REPEAT  Multiplier on the per-test case counts (default 1).
//                        e.g. DKG_PROPERTY_REPEAT=50 ctest -L property
//                        for an overnight soak.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace dkg::testprop {

inline std::uint64_t property_seed() {
  if (const char* s = std::getenv("DKG_PROPERTY_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 20090612;
}

inline std::size_t property_repeat() {
  if (const char* s = std::getenv("DKG_PROPERTY_REPEAT")) {
    std::size_t r = std::strtoull(s, nullptr, 10);
    if (r > 0) return r;
  }
  return 1;
}

/// `base` cases scaled by the soak multiplier.
inline std::size_t property_cases(std::size_t base) { return base * property_repeat(); }

}  // namespace dkg::testprop
