// Unit tests: Feldman and Pedersen commitments — the verify-poly /
// verify-point predicates of Fig 1 and their failure modes.
#include <gtest/gtest.h>

#include "crypto/feldman.hpp"
#include "crypto/pedersen.hpp"

namespace dkg::crypto {
namespace {

const Group& grp() { return Group::tiny256(); }

class FeldmanDegrees : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Degrees, FeldmanDegrees, ::testing::Values(1, 2, 3, 5));

TEST_P(FeldmanDegrees, VerifyPolyAcceptsHonestRows) {
  std::size_t t = GetParam();
  Drbg rng(t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 77), t, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  for (std::uint64_t i = 1; i <= t + 2; ++i) EXPECT_TRUE(c.verify_poly(i, f.row(i)));
}

TEST_P(FeldmanDegrees, VerifyPolyRejectsWrongRows) {
  std::size_t t = GetParam();
  Drbg rng(10 + t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 77), t, rng);
  BiPolynomial g = BiPolynomial::random(Scalar::from_u64(grp(), 78), t, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  EXPECT_FALSE(c.verify_poly(1, g.row(1)));
  EXPECT_FALSE(c.verify_poly(2, f.row(1)));  // right poly, wrong index
}

TEST_P(FeldmanDegrees, VerifyPointMatchesEvaluations) {
  std::size_t t = GetParam();
  Drbg rng(20 + t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 3), t, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  for (std::uint64_t i = 1; i <= t + 1; ++i) {
    for (std::uint64_t m = 0; m <= t + 1; ++m) {
      EXPECT_TRUE(c.verify_point(i, m, f.eval_at(m, i).reveal()));
      EXPECT_FALSE(c.verify_point(i, m, f.eval_at(m, i).reveal() + Scalar::one(grp())));
    }
  }
}

TEST_P(FeldmanDegrees, SerializationRoundTrip) {
  std::size_t t = GetParam();
  Drbg rng(30 + t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 4), t, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  auto back = FeldmanMatrix::from_bytes(grp(), c.to_bytes(), t, /*check_subgroup=*/true);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == c);
  EXPECT_EQ(back->digest(), c.digest());
}

TEST(Feldman, FromBytesRejectsMalformedInput) {
  Drbg rng(1);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 4), 2, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  Bytes ok = c.to_bytes();
  EXPECT_FALSE(FeldmanMatrix::from_bytes(grp(), ok, 3).has_value());  // wrong degree
  Bytes truncated(ok.begin(), ok.end() - 1);
  EXPECT_FALSE(FeldmanMatrix::from_bytes(grp(), truncated, 2).has_value());
  Bytes extended = ok;
  extended.push_back(0);
  EXPECT_FALSE(FeldmanMatrix::from_bytes(grp(), extended, 2).has_value());
  Bytes zeroed = ok;
  std::fill(zeroed.begin() + 4, zeroed.begin() + 4 + grp().p_bytes(), 0);  // entry = 0
  EXPECT_FALSE(FeldmanMatrix::from_bytes(grp(), zeroed, 2).has_value());
}

TEST(Feldman, ProductCommitsToSum) {
  Drbg rng(2);
  BiPolynomial f1 = BiPolynomial::random(Scalar::from_u64(grp(), 10), 2, rng);
  BiPolynomial f2 = BiPolynomial::random(Scalar::from_u64(grp(), 20), 2, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f1) * FeldmanMatrix::commit(f2);
  // The product verifies the summed rows (used in DKG share aggregation).
  Polynomial sum_row = f1.row(3) + f2.row(3);
  EXPECT_TRUE(c.verify_poly(3, sum_row));
  EXPECT_EQ(c.c00(), Element::exp_g(Scalar::from_u64(grp(), 30)));
}

TEST(Feldman, ShareVectorVerifiesShares) {
  Drbg rng(3);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 55), 3, rng);
  FeldmanVector v = FeldmanMatrix::commit(f).share_vector();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(v.verify_share(i, f.eval_at(i, 0).reveal()));
    EXPECT_FALSE(v.verify_share(i, f.eval_at(i, 1).reveal()));
  }
  EXPECT_EQ(v.c0(), Element::exp_g(Scalar::from_u64(grp(), 55)));
}

TEST(Feldman, VectorCommitAndEval) {
  Drbg rng(4);
  Polynomial p = Polynomial::random(grp(), 3, rng);
  FeldmanVector v = FeldmanVector::commit(p);
  for (std::uint64_t i = 0; i <= 6; ++i) {
    EXPECT_EQ(v.eval_commit(i), Element::exp_g(p.eval_at(i).reveal()));
  }
  auto back = FeldmanVector::from_bytes(grp(), v.to_bytes(), 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == v);
}

TEST(Feldman, ColumnVerificationForNonSymmetricMatrices) {
  // Build a non-symmetric matrix by hand (the AVSS case).
  Drbg rng(5);
  std::size_t t = 2;
  std::vector<Scalar> coeffs;
  for (std::size_t k = 0; k < (t + 1) * (t + 1); ++k) coeffs.push_back(Scalar::random(grp(), rng));
  std::vector<Element> entries;
  for (const Scalar& s : coeffs) entries.push_back(Element::exp_g(s));
  FeldmanMatrix c = FeldmanMatrix::from_entries(t, entries);
  // Column polynomial b_i(x) = f(x, i): coefficient j is sum_l c_{jl} i^l.
  std::uint64_t i = 4;
  Scalar x = Scalar::from_u64(grp(), i);
  std::vector<Scalar> col;
  for (std::size_t j = 0; j <= t; ++j) {
    Scalar acc = coeffs[j * (t + 1) + t];
    for (std::size_t l = t; l-- > 0;) acc = acc * x + coeffs[j * (t + 1) + l];
    col.push_back(acc);
  }
  EXPECT_TRUE(c.verify_poly_col(i, Polynomial(col)));
  EXPECT_FALSE(c.verify_poly_col(i + 1, Polynomial(col)));
}

TEST(Pedersen, VerifyPolyAndPoint) {
  Drbg rng(6);
  std::size_t t = 2;
  PedersenDealing d{BiPolynomial::random(Scalar::from_u64(grp(), 9), t, rng),
                    BiPolynomial::random(Scalar::from_u64(grp(), 11), t, rng)};
  PedersenMatrix c = PedersenMatrix::commit(d);
  for (std::uint64_t i = 1; i <= t + 1; ++i) {
    EXPECT_TRUE(c.verify_poly(i, d.f.row(i), d.f_prime.row(i)));
    EXPECT_FALSE(c.verify_poly(i, d.f_prime.row(i), d.f.row(i)));
    for (std::uint64_t m = 1; m <= t + 1; ++m) {
      EXPECT_TRUE(c.verify_point(i, m, d.f.eval_at(m, i).reveal(), d.f_prime.eval_at(m, i).reveal()));
      EXPECT_FALSE(c.verify_point(i, m, d.f.eval_at(m, i).reveal() + Scalar::one(grp()),
                                  d.f_prime.eval_at(m, i).reveal()));
    }
  }
}

TEST(Pedersen, IsPerfectlyHidingAcrossSecrets) {
  // Same commitment can open to different secrets with suitable companions:
  // structurally, commitments to different (f, f') pairs with matching
  // g^f h^f' coincide. Here we check the weaker observable: commitments to
  // different secrets are indistinguishable in distribution — at minimum,
  // they are valid commitments of the same shape.
  Drbg rng(7);
  PedersenDealing d1{BiPolynomial::random(Scalar::from_u64(grp(), 1), 2, rng),
                     BiPolynomial::random(Scalar::from_u64(grp(), 2), 2, rng)};
  PedersenDealing d2{BiPolynomial::random(Scalar::from_u64(grp(), 3), 2, rng),
                     BiPolynomial::random(Scalar::from_u64(grp(), 4), 2, rng)};
  PedersenMatrix c1 = PedersenMatrix::commit(d1);
  PedersenMatrix c2 = PedersenMatrix::commit(d2);
  EXPECT_EQ(c1.to_bytes().size(), c2.to_bytes().size());
  auto rt = PedersenMatrix::from_bytes(grp(), c1.to_bytes(), 2);
  ASSERT_TRUE(rt.has_value());
  EXPECT_TRUE(*rt == c1);
}

}  // namespace
}  // namespace dkg::crypto
