// Secret-hygiene suite for the taint types (crypto/secret.hpp):
//   * the scraping-allocator test proves every secret buffer is freed
//     through the wiping allocator and that the wipe really happens;
//   * the differential half pins SecretScalar to Scalar bit-for-bit —
//     sampling, arithmetic, derivation, and commitments must agree, or the
//     taint migration would silently change protocol transcripts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/serialize.hpp"
#include "crypto/element.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secret.hpp"

namespace dkg::crypto {
namespace {

// --- scraping allocator ------------------------------------------------------

// The hook fires on every secret_free BEFORE the wipe, i.e. it sees exactly
// what a wipe-free deallocation would have leaked to the heap. Tests plant a
// recognizable pattern inside a secret container, destroy it, and assert the
// pattern passed through here — proving the container's storage is routed
// through the wiping allocator (and not, say, a plain std::vector free).
std::vector<Bytes>* g_scraped = nullptr;

void scrape_to_vector(const void* data, std::size_t len) {
  const auto* b = static_cast<const std::uint8_t*>(data);
  g_scraped->emplace_back(b, b + len);
}

struct ScrapeGuard {
  explicit ScrapeGuard(std::vector<Bytes>& sink) {
    g_scraped = &sink;
    set_secret_scrape_hook(&scrape_to_vector);
  }
  ~ScrapeGuard() {
    set_secret_scrape_hook(nullptr);
    g_scraped = nullptr;
  }
};

bool scraped_contains(const std::vector<Bytes>& scraped, const Bytes& needle) {
  for (const Bytes& buf : scraped) {
    if (buf.size() < needle.size()) continue;
    if (std::search(buf.begin(), buf.end(), needle.begin(), needle.end()) != buf.end())
      return true;
  }
  return false;
}

TEST(SecretHygiene, SecretBytesFreeRoutesThroughWipingAllocator) {
  const Bytes pattern{0xde, 0xad, 0xfa, 0xce, 0x13, 0x37, 0x42, 0x99};
  std::vector<Bytes> scraped;
  {
    ScrapeGuard guard(scraped);
    {
      SecretBytes sb(pattern);
      ASSERT_EQ(sb.size(), pattern.size());
    }  // freed here, while the hook is installed
    EXPECT_TRUE(scraped_contains(scraped, pattern));
  }
}

TEST(SecretHygiene, SecretScalarFreeRoutesThroughWipingAllocator) {
  const Group& grp = Group::tiny256();
  // A value whose little-endian limb encoding is a recognizable byte string.
  Scalar s = Scalar::from_u64(grp, 0x1122334455667788ull);
  const Bytes le_limb{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  std::vector<Bytes> scraped;
  {
    ScrapeGuard guard(scraped);
    { SecretScalar x = SecretScalar::from_scalar(s); }  // freed here
    EXPECT_TRUE(scraped_contains(scraped, le_limb));
  }
}

TEST(SecretHygiene, DrbgSeedMaterialIsInWipedStorage) {
  // Drbg keeps its seed material in SecretBytes; destroying the generator
  // must route the seed bytes through the wiping allocator.
  std::vector<Bytes> scraped;
  {
    ScrapeGuard guard(scraped);
    { Drbg rng(123456789); }
    bool any_nonempty = false;
    for (const Bytes& b : scraped) any_nonempty |= !b.empty();
    EXPECT_TRUE(any_nonempty);
  }
}

TEST(SecretHygiene, SecureWipeZeroizes) {
  std::uint8_t buf[64];
  std::memset(buf, 0xab, sizeof(buf));
  secure_wipe(buf, sizeof(buf));
  for (std::uint8_t b : buf) EXPECT_EQ(b, 0);
}

// --- SecretScalar vs Scalar differential -------------------------------------

TEST(SecretHygiene, RandomMatchesScalarRandomStream) {
  const Group& grp = Group::tiny256();
  Drbg pub_rng(20090612), sec_rng(20090612);
  // Values agree AND byte consumption agrees: after interleaved draws the
  // two streams must still be in lockstep.
  for (int i = 0; i < 8; ++i) {
    Scalar a = Scalar::random(grp, pub_rng);
    SecretScalar b = SecretScalar::random(grp, sec_rng);
    EXPECT_EQ(a, b.reveal()) << "draw " << i;
  }
}

TEST(SecretHygiene, FromBytesMatchesScalarFromBytes) {
  const Group& grp = Group::tiny256();
  Drbg rng(7);
  for (std::size_t len : {0ul, 1ul, 31ul, 32ul, 33ul, 40ul, 64ul}) {
    Bytes b(len);
    rng.fill(b.data(), b.size());
    EXPECT_EQ(SecretScalar::from_bytes(grp, b).reveal(), Scalar::from_bytes(grp, b))
        << "len " << len;
  }
}

TEST(SecretHygiene, FromScalarRevealRoundTrip) {
  const Group& grp = Group::small512();
  Drbg rng(11);
  for (int i = 0; i < 4; ++i) {
    Scalar s = Scalar::random(grp, rng);
    SecretScalar x = SecretScalar::from_scalar(s);
    EXPECT_EQ(x.reveal(), s);
    EXPECT_EQ(Scalar::from_bytes(grp, x.reveal_bytes()), s);
    EXPECT_EQ(x.reveal_bytes().size(), grp.q_bytes());
  }
}

TEST(SecretHygiene, ArithmeticMatchesScalarArithmetic) {
  for (const Group* grp : {&Group::tiny256(), &Group::small512()}) {
    Drbg rng(42);
    for (int i = 0; i < 6; ++i) {
      Scalar a = Scalar::random(*grp, rng), b = Scalar::random(*grp, rng);
      SecretScalar sa = SecretScalar::from_scalar(a), sb = SecretScalar::from_scalar(b);
      EXPECT_EQ((sa + sb).reveal(), a + b);
      EXPECT_EQ((sa - sb).reveal(), a - b);
      EXPECT_EQ((sb - sa).reveal(), b - a);
      EXPECT_EQ((sa * sb).reveal(), a * b);
      // Mixed secret (x) public operands.
      EXPECT_EQ((sa + b).reveal(), a + b);
      EXPECT_EQ((sa - b).reveal(), a - b);
      EXPECT_EQ((sa * b).reveal(), a * b);
      SecretScalar acc = sa;
      acc += sb;
      acc *= b;
      EXPECT_EQ(acc.reveal(), (a + b) * b);
    }
  }
}

TEST(SecretHygiene, ArithmeticEdgeCases) {
  const Group& grp = Group::tiny256();
  Scalar qm1 = Scalar::zero(grp) - Scalar::one(grp);  // q - 1
  SecretScalar s_qm1 = SecretScalar::from_scalar(qm1);
  // Wraparound: (q-1) + (q-1) and (q-1)^2 exercise the conditional
  // subtraction / full reduction paths.
  EXPECT_EQ((s_qm1 + s_qm1).reveal(), qm1 + qm1);
  EXPECT_EQ((s_qm1 * s_qm1).reveal(), qm1 * qm1);
  // 0 - x wraps through the conditional add.
  SecretScalar zero = SecretScalar::zero(grp);
  EXPECT_EQ((zero - s_qm1).reveal(), Scalar::zero(grp) - qm1);
  EXPECT_EQ(zero.reveal(), Scalar::zero(grp));
}

TEST(SecretHygiene, DeriveMatchesHashToScalar) {
  const Group& grp = Group::tiny256();
  Drbg rng(5);
  SecretScalar sk = SecretScalar::random(grp, rng);
  Bytes pub1{1, 2, 3}, pub2;
  // Public-domain reference: the exact Writer framing derive() documents.
  Writer w;
  w.str("unit/derive");
  w.blob(sk.reveal_bytes());
  w.blob(pub1);
  w.blob(pub2);
  Scalar expected = Scalar::hash_to_scalar(grp, w.data());
  SecretScalar got = SecretScalar::derive(grp, "unit/derive", sk, {&pub1, &pub2});
  EXPECT_EQ(got.reveal(), expected);
}

TEST(SecretHygiene, CommitMatchesPublicExponentiation) {
  for (const Group* grp : {&Group::tiny256(), &Group::small512()}) {
    Drbg rng(9);
    SecretScalar x = SecretScalar::random(*grp, rng);
    EXPECT_EQ(x.commit_to(), Element::exp_g(x.reveal()));
    Element base = Element::exp_g(Scalar::random(*grp, rng));
    EXPECT_EQ(x.commit_to(base), base.pow(x.reveal()));
    // Degenerate exponents still agree (fixed-width scan covers them).
    EXPECT_EQ(SecretScalar::zero(*grp).commit_to(), Element::exp_g(Scalar::zero(*grp)));
    SecretScalar one = SecretScalar::from_scalar(Scalar::one(*grp));
    EXPECT_EQ(one.commit_to(base), base);
  }
}

TEST(SecretHygiene, OneIfZeroOnlyRewritesZero) {
  const Group& grp = Group::tiny256();
  SecretScalar z = SecretScalar::zero(grp);
  z.one_if_zero();
  EXPECT_EQ(z.reveal(), Scalar::one(grp));
  Drbg rng(3);
  Scalar v = Scalar::random(grp, rng);
  SecretScalar x = SecretScalar::from_scalar(v);
  x.one_if_zero();
  EXPECT_EQ(x.reveal(), v);
}

TEST(SecretHygiene, CtEqAgreesWithReveal) {
  const Group& grp = Group::tiny256();
  Drbg rng(8);
  SecretScalar a = SecretScalar::random(grp, rng);
  SecretScalar b = SecretScalar::random(grp, rng);
  EXPECT_TRUE(a.ct_eq(a));
  EXPECT_TRUE(SecretScalar::from_scalar(a.reveal()).ct_eq(a));
  EXPECT_EQ(a.ct_eq(b), a.reveal() == b.reveal());
}

TEST(SecretHygiene, EmptyAndMixedGroupsThrow) {
  const Group& g1 = Group::tiny256();
  const Group& g2 = Group::small512();
  SecretScalar empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.group(), std::logic_error);
  EXPECT_THROW(empty + SecretScalar::zero(g1), std::logic_error);
  EXPECT_THROW(SecretScalar::zero(g1) + SecretScalar::zero(g2), std::logic_error);
  EXPECT_THROW(SecretScalar::zero(g1).ct_eq(SecretScalar::zero(g2)), std::logic_error);
}

// --- end-to-end: signing stays correct in the secret domain ------------------

TEST(SecretHygiene, SchnorrSignsDeterministicallyFromSecretDomain) {
  const Group& grp = Group::tiny256();
  Drbg rng(101);
  KeyPair kp = schnorr_keygen(grp, rng);
  Bytes msg{'h', 'y', 'g', 'i', 'e', 'n', 'e'};
  Signature s1 = schnorr_sign(kp, msg);
  Signature s2 = schnorr_sign(kp, msg);
  EXPECT_EQ(s1, s2);  // derived nonce: no per-call randomness to leak
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, s1));
  msg.push_back('!');
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, s1));
}

// --- constant-time byte compare ----------------------------------------------

TEST(SecretHygiene, CtEqualMatchesNaiveEquality) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2}));     // length mismatch
  EXPECT_FALSE(ct_equal(Bytes{0, 0, 0}, Bytes{0, 0, 1}));  // differs in last byte only
}

}  // namespace
}  // namespace dkg::crypto
