// Negative/robustness property suite: randomized byte-stream mutation of
// the adversarial-input decoding boundaries — FeldmanMatrix / FeldmanVector
// / PedersenMatrix::from_bytes_checked and the wire decoders
// vss::decode_send / vss::decode_ccreply. Every mutant must be handled
// cleanly: either rejected (nullopt) or decoded into a value that satisfies
// the boundary's invariants (right degree, all entries inside the order-q
// subgroup). No crash, no UB — CI runs this under the ASan+UBSan preset,
// where out-of-bounds reads in the Reader/limb paths would trip.
//
// Seeded via DKG_PROPERTY_SEED, scaled via DKG_PROPERTY_REPEAT (ctest
// label `property`; see tests/property_test.hpp).
#include <gtest/gtest.h>

#include "common/serialize.hpp"
#include "crypto/feldman.hpp"
#include "crypto/pedersen.hpp"
#include "property_test.hpp"
#include "vss/vss_messages.hpp"

namespace dkg {
namespace {

using crypto::BiPolynomial;
using crypto::Drbg;
using crypto::FeldmanMatrix;
using crypto::FeldmanVector;
using crypto::Group;
using crypto::PedersenMatrix;
using crypto::Polynomial;
using crypto::Scalar;

/// One random structural mutation of a valid frame: byte flips, bit flips,
/// truncation, extension, splices and length-prefix tampering — the cheap
/// end of a fuzzer, deterministic under the property seed.
Bytes mutate(const Bytes& frame, Drbg& rng) {
  Bytes b = frame;
  switch (rng.uniform(6)) {
    case 0:  // flip one whole byte
      if (!b.empty()) b[rng.uniform(b.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
      break;
    case 1:  // flip one bit
      if (!b.empty()) b[rng.uniform(b.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      break;
    case 2:  // truncate at a random point
      b.resize(rng.uniform(b.size() + 1));
      break;
    case 3:  // append random garbage
      for (std::size_t n = 1 + rng.uniform(8); n-- > 0;) {
        b.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      break;
    case 4: {  // overwrite a random span with random bytes
      if (!b.empty()) {
        std::size_t at = rng.uniform(b.size());
        std::size_t len = 1 + rng.uniform(std::min<std::size_t>(16, b.size() - at));
        for (std::size_t k = 0; k < len; ++k) {
          b[at + k] = static_cast<std::uint8_t>(rng.uniform(256));
        }
      }
      break;
    }
    default: {  // delete a random span (shifts every following field)
      if (!b.empty()) {
        std::size_t at = rng.uniform(b.size());
        std::size_t len = 1 + rng.uniform(std::min<std::size_t>(8, b.size() - at));
        b.erase(b.begin() + static_cast<std::ptrdiff_t>(at),
                b.begin() + static_cast<std::ptrdiff_t>(at + len));
      }
      break;
    }
  }
  return b;
}

Bytes random_bytes(Drbg& rng, std::size_t max_len) {
  return rng.bytes(rng.uniform(max_len + 1));
}

bool entries_in_subgroup(const FeldmanMatrix& m) {
  std::size_t t = m.degree();
  for (std::size_t j = 0; j <= t; ++j) {
    for (std::size_t l = 0; l <= t; ++l) {
      if (!m.entry(j, l).in_subgroup()) return false;
    }
  }
  return true;
}

TEST(RobustnessProperty, FeldmanMatrixCheckedDecodeSurvivesMutation) {
  const Group& grp = Group::tiny256();
  Drbg rng(testprop::property_seed() ^ 0x1001);
  const std::size_t t = 2;
  FeldmanMatrix m = FeldmanMatrix::commit(
      BiPolynomial::random(Scalar::random(grp, rng), t, rng));
  Bytes frame = m.to_bytes();
  const std::size_t kCases = testprop::property_cases(2500);
  std::size_t accepted = 0;
  for (std::size_t c = 0; c < kCases; ++c) {
    Bytes evil = mutate(frame, rng);
    auto got = FeldmanMatrix::from_bytes_checked(grp, evil, t);
    if (got.has_value()) {
      ++accepted;
      EXPECT_EQ(got->degree(), t);
      EXPECT_TRUE(entries_in_subgroup(*got)) << "case " << c;
    }
  }
  // Sanity: the harness isn't vacuous — the unmutated frame decodes, and
  // mutants that decode are rare (subgroup membership is a strong filter).
  EXPECT_TRUE(FeldmanMatrix::from_bytes_checked(grp, frame, t).has_value());
  EXPECT_LT(accepted, kCases / 10);
}

TEST(RobustnessProperty, FeldmanVectorCheckedDecodeSurvivesMutation) {
  const Group& grp = Group::tiny256();
  Drbg rng(testprop::property_seed() ^ 0x1002);
  const std::size_t t = 3;
  FeldmanVector v = FeldmanVector::commit(Polynomial::random(grp, t, rng));
  Bytes frame = v.to_bytes();
  const std::size_t kCases = testprop::property_cases(2500);
  for (std::size_t c = 0; c < kCases; ++c) {
    Bytes evil = mutate(frame, rng);
    auto got = FeldmanVector::from_bytes_checked(grp, evil, t);
    if (got.has_value()) {
      EXPECT_EQ(got->degree(), t);
      for (std::size_t l = 0; l <= t; ++l) {
        EXPECT_TRUE(got->entry(l).in_subgroup()) << "case " << c;
      }
    }
  }
  EXPECT_TRUE(FeldmanVector::from_bytes_checked(grp, frame, t).has_value());
}

TEST(RobustnessProperty, PedersenMatrixCheckedDecodeSurvivesMutation) {
  const Group& grp = Group::tiny256();
  Drbg rng(testprop::property_seed() ^ 0x1003);
  const std::size_t t = 2;
  crypto::PedersenDealing d{BiPolynomial::random(Scalar::random(grp, rng), t, rng),
                            BiPolynomial::random(Scalar::random(grp, rng), t, rng)};
  PedersenMatrix m = PedersenMatrix::commit(d);
  Bytes frame = m.to_bytes();
  const std::size_t kCases = testprop::property_cases(2000);
  for (std::size_t c = 0; c < kCases; ++c) {
    Bytes evil = mutate(frame, rng);
    auto got = PedersenMatrix::from_bytes_checked(grp, evil, t);
    if (got.has_value()) {
      EXPECT_EQ(got->degree(), t);
      for (std::size_t j = 0; j <= t; ++j) {
        for (std::size_t l = 0; l <= t; ++l) {
          EXPECT_TRUE(got->entry(j, l).in_subgroup()) << "case " << c;
        }
      }
    }
  }
  EXPECT_TRUE(PedersenMatrix::from_bytes_checked(grp, frame, t).has_value());
}

TEST(RobustnessProperty, DecodeSendSurvivesMutation) {
  const Group& grp = Group::tiny256();
  Drbg rng(testprop::property_seed() ^ 0x1004);
  const std::size_t t = 2;
  auto c = std::make_shared<const FeldmanMatrix>(
      FeldmanMatrix::commit(BiPolynomial::random(Scalar::random(grp, rng), t, rng)));
  Polynomial row = Polynomial::random(grp, t, rng);
  vss::SendMsg msg(vss::SessionId{3, 7}, c, row);
  Writer w;
  msg.serialize(w);
  const Bytes frame = w.take();
  ASSERT_TRUE(vss::decode_send(grp, t, frame).has_value());
  const std::size_t kCases = testprop::property_cases(2500);
  for (std::size_t cse = 0; cse < kCases; ++cse) {
    Bytes evil = mutate(frame, rng);
    auto got = vss::decode_send(grp, t, evil);  // must not crash / UB
    if (got.has_value()) {
      ASSERT_NE(got->commitment, nullptr);
      EXPECT_EQ(got->commitment->degree(), t);
      EXPECT_TRUE(entries_in_subgroup(*got->commitment)) << "case " << cse;
      if (got->row.has_value()) {
        EXPECT_EQ(got->row->degree(), t);
      }
    }
  }
  // Pure garbage streams, including empty ones.
  for (std::size_t cse = 0; cse < testprop::property_cases(500); ++cse) {
    Bytes junk = random_bytes(rng, frame.size() * 2);
    auto got = vss::decode_send(grp, t, junk);
    if (got.has_value()) {
      EXPECT_TRUE(entries_in_subgroup(*got->commitment));
    }
  }
}

TEST(RobustnessProperty, DecodeCcreplySurvivesMutation) {
  const Group& grp = Group::tiny256();
  Drbg rng(testprop::property_seed() ^ 0x1005);
  const std::size_t t = 2;
  auto c = std::make_shared<const FeldmanMatrix>(
      FeldmanMatrix::commit(BiPolynomial::random(Scalar::random(grp, rng), t, rng)));
  vss::CommitmentReply msg(vss::SessionId{1, 9}, c);
  Writer w;
  msg.serialize(w);
  const Bytes frame = w.take();
  ASSERT_TRUE(vss::decode_ccreply(grp, t, frame).has_value());
  const std::size_t kCases = testprop::property_cases(2500);
  for (std::size_t cse = 0; cse < kCases; ++cse) {
    Bytes evil = mutate(frame, rng);
    auto got = vss::decode_ccreply(grp, t, evil);
    if (got.has_value()) {
      ASSERT_NE(got->commitment, nullptr);
      EXPECT_EQ(got->commitment->degree(), t);
      EXPECT_TRUE(entries_in_subgroup(*got->commitment)) << "case " << cse;
    }
  }
  for (std::size_t cse = 0; cse < testprop::property_cases(500); ++cse) {
    auto got = vss::decode_ccreply(grp, t, random_bytes(rng, frame.size() * 2));
    if (got.has_value()) {
      EXPECT_TRUE(entries_in_subgroup(*got->commitment));
    }
  }
}

}  // namespace
}  // namespace dkg
