// Protocol tests: the DKG pessimistic phase (paper §4, Fig 3) — crashed,
// mute, equivocating and proof-forging leaders must trigger leader changes
// without ever compromising safety.
#include <gtest/gtest.h>

#include "dkg/byzantine_leader.hpp"
#include "dkg/runner.hpp"

namespace dkg::core {
namespace {

using crypto::Element;

RunnerConfig base_config(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = seed;
  // Tight timeouts so pessimistic-phase tests stay fast.
  cfg.timeout_base = 3'000;
  return cfg;
}

TEST(LeaderChange, CrashedLeaderIsReplaced) {
  RunnerConfig cfg = base_config(101);
  DkgRunner runner(cfg);
  runner.simulator().schedule_crash(1, 0);  // leader of view 1 never speaks
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(6));
  EXPECT_TRUE(runner.outputs_consistent());
  for (sim::NodeId i : runner.completed_nodes()) {
    EXPECT_GT(runner.dkg_node(i).output().view, 1u) << "node " << i;
  }
  EXPECT_GT(runner.simulator().metrics().by_prefix("dkg.lead-ch").count, 0u);
}

TEST(LeaderChange, MuteByzantineLeaderIsReplaced) {
  // Worse than a crash: the leader participates in VSS (so everyone's
  // Q-hat fills up) but never proposes.
  RunnerConfig cfg = base_config(102);
  DkgRunner runner(cfg);
  runner.replace_node(1, std::make_unique<ByzantineLeaderNode>(runner.params(), 1,
                                                               LeaderFault::Mute));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(6));
  EXPECT_TRUE(runner.outputs_consistent());
  for (sim::NodeId i : runner.completed_nodes()) {
    EXPECT_GT(runner.dkg_node(i).output().view, 1u);
  }
}

TEST(LeaderChange, BogusProofProposalIsRejectedAndLeaderReplaced) {
  RunnerConfig cfg = base_config(103);
  DkgRunner runner(cfg);
  runner.replace_node(1, std::make_unique<ByzantineLeaderNode>(runner.params(), 1,
                                                               LeaderFault::BogusProof));
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(6));
  EXPECT_TRUE(runner.outputs_consistent());
  // At least one node must have rejected the invalid proposal outright.
  std::uint64_t rejects = 0;
  for (sim::NodeId i : runner.completed_nodes()) rejects += runner.dkg_node(i).rejected();
  EXPECT_GT(rejects, 0u);
}

TEST(LeaderChange, EquivocatingLeaderCannotSplitAgreement) {
  for (std::uint64_t seed : {104ull, 105ull, 106ull}) {
    RunnerConfig cfg = base_config(seed);
    DkgRunner runner(cfg);
    runner.replace_node(1, std::make_unique<ByzantineLeaderNode>(runner.params(), 1,
                                                                 LeaderFault::Equivocate));
    runner.start_all();
    ASSERT_TRUE(runner.run_to_completion(6)) << "seed " << seed;
    // All completing honest nodes agree on one Q / one key.
    EXPECT_TRUE(runner.outputs_consistent()) << "seed " << seed;
  }
}

TEST(LeaderChange, TwoConsecutiveFaultyLeadersEscalate) {
  RunnerConfig cfg = base_config(107);
  DkgRunner runner(cfg);
  runner.simulator().schedule_crash(1, 0);  // view-1 leader down
  runner.simulator().schedule_crash(2, 0);  // view-2 leader down too
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(5));
  EXPECT_TRUE(runner.outputs_consistent());
  for (sim::NodeId i : runner.completed_nodes()) {
    EXPECT_GE(runner.dkg_node(i).output().view, 3u) << "node " << i;
  }
}

TEST(LeaderChange, LateLeaderProposalAfterViewChangeIsHarmless) {
  // Leader 1 is merely *slow* (its links are adversarially delayed), so its
  // proposal arrives after the group moved to view 2. Safety must hold; at
  // most one agreement outcome exists.
  RunnerConfig cfg = base_config(108);
  cfg.slow_nodes = {1};
  cfg.slow_penalty = 40'000;  // far beyond the timeout
  DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(6));
  EXPECT_TRUE(runner.outputs_consistent());
}

TEST(LeaderChange, CompletionStillMatchesPublicKey) {
  RunnerConfig cfg = base_config(109);
  DkgRunner runner(cfg);
  runner.simulator().schedule_crash(1, 0);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion(6));
  crypto::Scalar secret = runner.reconstruct_secret();
  sim::NodeId some = runner.completed_nodes().front();
  EXPECT_EQ(Element::exp_g(secret), runner.dkg_node(some).output().public_key);
}

TEST(LeaderChange, ViewChangeCostIsBounded) {
  // A leader change should add lead-ch traffic (absent in the optimistic
  // run) but keep the total within a small factor. Note the crashed leader
  // also stops *sending*, so the total can even shrink; the meaningful
  // bounds are "lead-ch appears" and "no blow-up".
  auto run_with_crashes = [](std::size_t crashes) {
    RunnerConfig cfg = base_config(110);
    DkgRunner runner(cfg);
    for (std::size_t k = 0; k < crashes; ++k) {
      runner.simulator().schedule_crash(static_cast<sim::NodeId>(k + 1), 0);
    }
    runner.start_all();
    EXPECT_TRUE(runner.run_to_completion(cfg.n - std::max(cfg.f, crashes)));
    return std::make_pair(runner.simulator().metrics().total_messages(),
                          runner.simulator().metrics().by_prefix("dkg.lead-ch").count);
  };
  auto [m0, lc0] = run_with_crashes(0);
  auto [m1, lc1] = run_with_crashes(1);
  EXPECT_EQ(lc0, 0u);
  EXPECT_GT(lc1, 0u);      // pessimistic phase engaged
  EXPECT_LT(m1, m0 * 3);   // ...without a message explosion
}

}  // namespace
}  // namespace dkg::core
