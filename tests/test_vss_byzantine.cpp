// Adversarial VSS tests: Byzantine dealers and participants (paper §2.2's
// t-limited adversary). Safety (consistency) must hold unconditionally;
// liveness is only promised for honest dealers.
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "crypto/sigverify.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"
#include "vss/byzantine_dealer.hpp"
#include "vss/vss_messages.hpp"

namespace dkg::vss {
namespace {

using crypto::Group;
using crypto::Scalar;

VssParams make_params(std::size_t n, std::size_t t, std::size_t f) {
  VssParams p;
  p.grp = &Group::tiny256();
  p.n = n;
  p.t = t;
  p.f = f;
  return p;
}

struct Harness {
  VssParams params;
  sim::Simulator sim;
  SessionId sid{1, 1};

  Harness(std::size_t n, std::size_t t, std::size_t f, std::uint64_t seed = 1)
      : params(make_params(n, t, f)),
        sim(n, std::make_unique<sim::UniformDelay>(5, 40), seed) {
    for (sim::NodeId i = 1; i <= n; ++i) sim.set_node(i, std::make_unique<VssNode>(params, i));
  }

  VssNode& node(sim::NodeId i) { return dynamic_cast<VssNode&>(sim.node(i)); }

  std::vector<sim::NodeId> completed(std::size_t n, sim::NodeId skip = 0) {
    std::vector<sim::NodeId> out;
    for (sim::NodeId i = 1; i <= n; ++i) {
      if (i == skip) continue;
      if (node(i).has_instance(sid) && node(i).instance(sid).has_shared()) out.push_back(i);
    }
    return out;
  }
};

TEST(ByzantineDealer, SilentDealerProducesNothingButHarmless) {
  Harness h(7, 1, 1);
  h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, DealerFault::Silent));
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 1)));
  ASSERT_TRUE(h.sim.run());
  EXPECT_TRUE(h.completed(7, 1).empty());
}

TEST(ByzantineDealer, InconsistentRowsNeverYieldInconsistentShares) {
  // Half the nodes get rows from the wrong polynomial; they reject at
  // verify-poly. If completion happens at all, shares are consistent.
  Harness h(7, 1, 1);
  h.sim.set_node(1,
                 std::make_unique<ByzantineDealerNode>(h.params, 1, DealerFault::InconsistentRows));
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 5)));
  ASSERT_TRUE(h.sim.run());
  auto done = h.completed(7, 1);
  if (!done.empty()) {
    Bytes digest = h.node(done[0]).instance(h.sid).shared().commitment->digest();
    for (sim::NodeId i : done) {
      const SharedOutput& out = h.node(i).instance(h.sid).shared();
      EXPECT_EQ(out.commitment->digest(), digest);
      EXPECT_TRUE(out.commitment->verify_point(0, i, out.share.reveal()));
    }
  }
  // Nodes with bad rows must have registered rejections.
  std::uint64_t total_rejects = 0;
  for (sim::NodeId i = 2; i <= 7; ++i) total_rejects += h.node(i).instance(h.sid).rejected();
  EXPECT_GT(total_rejects, 0u);
}

TEST(ByzantineDealer, EquivocationCannotCompleteTwoCommitments) {
  // Dealer sends C1 to odd nodes and C2 to even nodes. The echo quorum
  // ceil((n+t+1)/2) makes completing *both* impossible; whatever completes
  // is unique.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Harness h(7, 1, 1, seed);
    h.sim.set_node(1,
                   std::make_unique<ByzantineDealerNode>(h.params, 1, DealerFault::Equivocate));
    h.sim.post_operator(1,
                        std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 9)));
    ASSERT_TRUE(h.sim.run());
    std::set<Bytes> digests;
    for (sim::NodeId i : h.completed(7, 1)) {
      digests.insert(h.node(i).instance(h.sid).shared().commitment->digest());
    }
    EXPECT_LE(digests.size(), 1u) << "seed " << seed;
  }
}

TEST(ByzantineDealer, PartialSendCannotReachEchoQuorumAlone) {
  // Dealer sends valid rows to only t+1 nodes: the echo quorum
  // ceil((n+t+1)/2) > t+1 cannot be met, so no honest node completes —
  // but nothing bad happens either.
  Harness h(7, 1, 1);
  h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, DealerFault::PartialSend));
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 2)));
  ASSERT_TRUE(h.sim.run());
  EXPECT_TRUE(h.completed(7, 1).empty());
}

TEST(DealerStrategy, ThreeWayEquivocationCannotCompleteAnyClass) {
  // classes=3 splits the 6 non-dealer nodes into commitment classes of two:
  // no class can reach the echo quorum ceil((n+t+1)/2) = 5, so nothing
  // completes — and trivially no two digests coexist. Safety AND liveness
  // verdicts: safety holds (<= 1 digest), liveness is not promised for a
  // Byzantine dealer.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Harness h(7, 1, 1, seed);
    DealerStrategy strat;
    strat.kind = DealerStrategy::Kind::Equivocate;
    strat.classes = 3;
    h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, strat));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 9)));
    ASSERT_TRUE(h.sim.run());
    std::set<Bytes> digests;
    for (sim::NodeId i : h.completed(7, 1)) {
      digests.insert(h.node(i).instance(h.sid).shared().commitment->digest());
    }
    EXPECT_LE(digests.size(), 1u) << "seed " << seed;
    EXPECT_TRUE(h.completed(7, 1).empty()) << "seed " << seed;
  }
}

TEST(DealerStrategy, SelectiveSendCompletesExactlyAtEchoQuorum) {
  // recipients=6 reaches 5 honest recipients (the dealer ignores its own
  // send) — exactly the echo quorum — so ALL honest nodes complete, even
  // node 7 which never saw a send (it interpolates its row from echo
  // points). recipients=5 leaves 4 honest recipients and nothing completes.
  {
    Harness h(7, 1, 1);
    DealerStrategy strat;
    strat.kind = DealerStrategy::Kind::SelectiveSend;
    strat.recipients = 6;
    h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, strat));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 2)));
    ASSERT_TRUE(h.sim.run());
    auto done = h.completed(7, 1);
    EXPECT_EQ(done.size(), 6u);  // liveness: the whole honest mesh
    Bytes digest = h.node(done[0]).instance(h.sid).shared().commitment->digest();
    for (sim::NodeId i : done) {
      const SharedOutput& out = h.node(i).instance(h.sid).shared();
      EXPECT_EQ(out.commitment->digest(), digest);  // safety: one commitment
      EXPECT_TRUE(out.commitment->verify_point(0, i, out.share.reveal()));
    }
  }
  {
    Harness h(7, 1, 1);
    DealerStrategy strat;
    strat.kind = DealerStrategy::Kind::SelectiveSend;
    strat.recipients = 5;  // 4 honest recipients < echo quorum 5
    h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, strat));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 2)));
    ASSERT_TRUE(h.sim.run());
    EXPECT_TRUE(h.completed(7, 1).empty());
  }
}

TEST(DealerStrategy, InconsistentVictimCountGatesCompletion) {
  // victims=1 poisons only node 7's row: the other five honest nodes carry
  // the echo quorum and node 7 recovers its TRUE row from echo points —
  // everyone completes with consistent shares. victims=2 drops the valid
  // recipients below the quorum and nothing completes.
  Scalar secret = Scalar::from_u64(Group::tiny256(), 5);
  {
    Harness h(7, 1, 1);
    DealerStrategy strat;
    strat.kind = DealerStrategy::Kind::InconsistentRows;
    strat.victims = 1;
    h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, strat));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, secret));
    ASSERT_TRUE(h.sim.run());
    auto done = h.completed(7, 1);
    EXPECT_EQ(done.size(), 6u);
    EXPECT_GT(h.node(7).instance(h.sid).rejected(), 0u);  // its own row was bad
    std::vector<std::pair<std::uint64_t, Scalar>> pts;
    for (sim::NodeId i : done) {
      const SharedOutput& out = h.node(i).instance(h.sid).shared();
      EXPECT_TRUE(out.commitment->verify_point(0, i, out.share.reveal()));
      if (pts.size() < 2) pts.emplace_back(i, out.share.reveal());
    }
    EXPECT_EQ(crypto::interpolate_at(Group::tiny256(), pts, 0), secret);
  }
  {
    Harness h(7, 1, 1);
    DealerStrategy strat;
    strat.kind = DealerStrategy::Kind::InconsistentRows;
    strat.victims = 2;  // only 4 honest nodes hold valid rows
    h.sim.set_node(1, std::make_unique<ByzantineDealerNode>(h.params, 1, strat));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, secret));
    ASSERT_TRUE(h.sim.run());
    EXPECT_TRUE(h.completed(7, 1).empty());
  }
}

TEST(Coalition, PooledViewOfTNodesCannotDetermineTheSecret) {
  // Honest dealer, one colluding node (t=1) recording every message it
  // receives. Liveness: the honest mesh completes around it. Secrecy: the
  // pooled view spans at most t distinct members — strictly fewer than the
  // t+1 rows interpolation needs (§2.2's union-of-views argument).
  Harness h(7, 1, 1);
  auto coalition = std::make_shared<sim::Coalition>(std::set<sim::NodeId>{7});
  h.sim.set_node(7, std::make_unique<sim::CollusionNode>(coalition, 7));
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 13)));
  ASSERT_TRUE(h.sim.run());
  EXPECT_EQ(h.completed(7, 7).size(), 6u);  // liveness around the colluder
  ASSERT_FALSE(coalition->observations().empty());
  std::set<sim::NodeId> members_seen;
  for (const sim::Coalition::Observation& obs : coalition->observations()) {
    EXPECT_TRUE(coalition->members().count(obs.member));
    members_seen.insert(obs.member);
  }
  // The union of views covers at most t rows of f(x, y): below the t+1
  // interpolation threshold, so the pool leaks nothing about f(0, 0).
  EXPECT_LE(members_seen.size(), h.params.t);
}

TEST(ByzantinePeer, GarbagePointsAreRejectedAndSharingSucceeds) {
  // One participant sprays invalid echo/ready points; verify-point drops
  // them and the honest sharing completes regardless.
  Harness h(7, 1, 1);
  h.sim.set_node(4, std::make_unique<GarbagePointNode>(h.params, 4));
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 21)));
  ASSERT_TRUE(h.sim.run());
  auto done = h.completed(7, 4);
  EXPECT_EQ(done.size(), 6u);
  std::uint64_t rejects = 0;
  for (sim::NodeId i : done) rejects += h.node(i).instance(h.sid).rejected();
  EXPECT_GT(rejects, 0u);
  // Consistency unaffected.
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i : done) {
    if (pts.size() < 2) pts.emplace_back(i, h.node(i).instance(h.sid).shared().share.reveal());
  }
  EXPECT_EQ(crypto::interpolate_at(Group::tiny256(), pts, 0),
            Scalar::from_u64(Group::tiny256(), 21));
}

TEST(ByzantinePeer, EquivocatingPointCannotPoisonVerifiedPointMemo) {
  // Node 4 echoes its TRUE points (priming every receiver's verified-point
  // memo under sender 4) and then sends garbage ready points. The memo is
  // keyed on (sender, value): the differing ready value must miss it, pay
  // the full verify-point, and be rejected — with identical accept/reject
  // behaviour when the memo is disabled.
  auto run = [](bool memo_on) {
    crypto::set_point_memo(memo_on);
    Harness h(7, 1, 1, /*seed=*/9);
    h.sim.set_node(4, std::make_unique<EquivocatingPointNode>(h.params, 4));
    h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 33)));
    EXPECT_TRUE(h.sim.run());
    std::uint64_t rejects = 0;
    for (sim::NodeId i = 1; i <= 7; ++i) {
      if (i == 4) continue;
      rejects += h.node(i).instance(h.sid).rejected();
    }
    return std::pair<std::size_t, std::uint64_t>(h.completed(7, 4).size(), rejects);
  };
  bool memo_was_on = crypto::point_memo_enabled();
  crypto::sig_verify_reset_stats();
  auto with_memo = run(true);
  EXPECT_GT(crypto::sig_verify_stats().point_memo_hits, 0u);  // echoes primed it
  auto without_memo = run(false);
  crypto::set_point_memo(memo_was_on);
  EXPECT_EQ(with_memo, without_memo);
  EXPECT_EQ(with_memo.first, 6u);  // honest sharing completes
  EXPECT_GT(with_memo.second, 0u);  // forged ready points were caught
}

TEST(ByzantinePeer, SilentParticipantsWithinBoundDontBlock) {
  // t Byzantine-silent + f crashed receivers: still n - t - f honest
  // finally-up nodes, which is exactly the completion quorum.
  Harness h(10, 2, 1);
  h.sim.set_node(9, std::make_unique<SilentNode>());
  h.sim.set_node(10, std::make_unique<SilentNode>());
  h.sim.schedule_crash(8, 0);
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, Scalar::from_u64(Group::tiny256(), 4)));
  ASSERT_TRUE(h.sim.run());
  EXPECT_GE(h.completed(7).size(), 7u);
}

TEST(ByzantinePeer, ReconstructionToleratesBadShares) {
  // During Rec, a Byzantine node submits a wrong share; verification drops
  // it and reconstruction still yields the secret.
  Harness h(7, 2, 0);
  Scalar secret = Scalar::from_u64(Group::tiny256(), 777);
  h.sim.post_operator(1, std::make_shared<ShareOp>(h.sid, secret));
  ASSERT_TRUE(h.sim.run());
  // Node 3 "goes Byzantine" for reconstruction: replace with a node that
  // broadcasts a corrupted share.
  struct BadRecNode : sim::Node {
    SessionId sid;
    SharedOutput out;
    std::size_t n;
    BadRecNode(SessionId s, SharedOutput o, std::size_t nn) : sid(s), out(std::move(o)), n(nn) {}
    void on_start(sim::Context& ctx) override {
      Bytes digest = out.commitment->digest();
      crypto::Scalar bad = out.share.reveal() + crypto::Scalar::one(out.share.group());
      for (sim::NodeId j = 1; j <= n; ++j) {
        ctx.send(j, std::make_shared<RecShareMsg>(sid, digest, bad));
      }
    }
    void on_message(sim::Context&, sim::NodeId, const sim::MessagePtr&) override {}
  };
  SharedOutput out3 = h.node(3).instance(h.sid).shared();
  h.sim.set_node(3, std::make_unique<BadRecNode>(h.sid, out3, 7));
  for (sim::NodeId i = 1; i <= 7; ++i) {
    if (i == 3) continue;
    h.sim.post_operator(i, std::make_shared<ReconstructOp>(h.sid), h.sim.now() + 5);
  }
  ASSERT_TRUE(h.sim.run());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(h.node(i).instance(h.sid).has_reconstructed());
    EXPECT_EQ(h.node(i).instance(h.sid).reconstructed(), secret);
    EXPECT_GT(h.node(i).instance(h.sid).rejected(), 0u);
  }
}

}  // namespace
}  // namespace dkg::vss
