// Protocol tests: node removal (paper §6.3) — a removed node is simply not
// included in the next share renewal; afterwards its share is stale and the
// remaining members carry the secret alone.
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "proactive/runner.hpp"

namespace dkg::proactive {
namespace {

using crypto::Element;
using crypto::Scalar;

core::RunnerConfig config(std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.n = 8;  // 8 >= 3*1 + 2*1 + 1 with slack for one removal
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = seed;
  return cfg;
}

TEST(NodeRemoval, RemovedNodeLosesAccessAfterRenewal) {
  ProactiveRunner runner(config(501));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  Element pk = runner.public_key();
  ShareState removed_state = runner.states()[8];

  ASSERT_TRUE(runner.remove_node(8));
  ASSERT_TRUE(runner.run_renewal());

  // The group continues unharmed.
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_TRUE(runner.shares_consistent());
  EXPECT_EQ(runner.reconstruct(), secret);

  // The removed node's share no longer verifies against the new commitment.
  EXPECT_FALSE(runner.states()[1].commitment.verify_share(8, removed_state.share.reveal()));
  // Nor can it be combined with a fresh share to reconstruct: old and new
  // shares lie on unrelated polynomials.
  std::vector<std::pair<std::uint64_t, Scalar>> mixed{{8, removed_state.share.reveal()},
                                                      {1, runner.states()[1].share.reveal()}};
  EXPECT_NE(crypto::interpolate_at(*config(0).grp, mixed, 0), secret);
}

TEST(NodeRemoval, MidPhaseRemovalIsImpossibleByConstruction) {
  // §6.3: "it is not possible to remove a node in the middle of a phase" —
  // before renewal runs, the removed node's share remains valid (removal
  // only takes effect at the phase change).
  ProactiveRunner runner(config(502));
  ASSERT_TRUE(runner.run_dkg());
  ASSERT_TRUE(runner.remove_node(8));
  EXPECT_TRUE(runner.states()[8].commitment.verify_share(8, runner.states()[8].share.reveal()));
}

TEST(NodeRemoval, RefusesRemovalBreakingQuorum) {
  // n=8, t=1, f=1: quorum 6, so at most 2 removals are tolerable.
  ProactiveRunner runner(config(503));
  ASSERT_TRUE(runner.run_dkg());
  EXPECT_TRUE(runner.remove_node(8));
  EXPECT_TRUE(runner.remove_node(7));
  EXPECT_FALSE(runner.remove_node(6));  // would leave 5 < 6 active
  EXPECT_FALSE(runner.remove_node(8));  // duplicate
  EXPECT_FALSE(runner.remove_node(0));  // bogus ids
  EXPECT_FALSE(runner.remove_node(99));
}

TEST(NodeRemoval, TwoRemovalsAndContinuedOperation) {
  ProactiveRunner runner(config(504));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  Element pk = runner.public_key();
  ASSERT_TRUE(runner.remove_node(7));
  ASSERT_TRUE(runner.remove_node(8));
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_EQ(runner.reconstruct(), secret);
  // A further ordinary renewal still works with 6 active members.
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.public_key(), pk);
  EXPECT_EQ(runner.reconstruct(), secret);
}

}  // namespace
}  // namespace dkg::proactive
