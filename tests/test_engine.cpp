// Experiment-engine tests: seed derivation is a stable pure function of the
// spec, the SweepDriver's multi-job execution produces simulated metrics
// identical to a sequential run (the determinism the parallel benches rely
// on), and event-budget exhaustion is propagated as completed = false
// instead of silently emitting metrics for half-finished runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/sweep.hpp"

namespace dkg::engine {
namespace {

ScenarioSpec dkg_spec(std::size_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.label = "dkg n=" + std::to_string(n);
  spec.variant = Variant::Dkg;
  spec.n = n;
  spec.t = (n - 1) / 3;
  spec.f = 0;
  spec.seed = seed;
  return spec;
}

ScenarioSpec vss_spec(std::size_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.label = "vss n=" + std::to_string(n);
  spec.variant = Variant::HybridVss;
  spec.n = n;
  spec.t = (n - 1) / 3;
  spec.f = 0;
  spec.seed = seed;
  spec.delay_lo = 5;
  spec.delay_hi = 40;
  return spec;
}

/// A grid mixing every protocol variant, small enough to run in seconds.
SweepDriver mixed_grid() {
  SweepDriver driver;
  driver.add(dkg_spec(4, 42));
  driver.add(vss_spec(7, 7));
  ScenarioSpec avss = vss_spec(4, 4);
  avss.label = "avss n=4";
  avss.variant = Variant::Avss;
  driver.add(avss);
  ScenarioSpec jf = dkg_spec(4, 7004);
  jf.label = "jf n=4";
  jf.variant = Variant::JointFeldman;
  driver.add(jf);
  ScenarioSpec gj = dkg_spec(4, 7104);
  gj.label = "gjkr n=4";
  gj.variant = Variant::Gennaro;
  driver.add(gj);
  ScenarioSpec pro = dkg_spec(4, 4004);
  pro.label = "proactive n=4";
  pro.variant = Variant::Proactive;
  driver.add(pro);
  ScenarioSpec add = dkg_spec(4, 5004);
  add.label = "node-add n=4";
  add.variant = Variant::NodeAdd;
  driver.add(add);
  return driver;
}

/// Everything except the measured cpu_ms (the one nondeterministic field).
void expect_same_simulated_metrics(const ScenarioResult& a, const ScenarioResult& b,
                                   const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.bytes, b.bytes) << label;
  EXPECT_EQ(a.completion_time, b.completion_time) << label;
  ASSERT_EQ(a.extras.size(), b.extras.size()) << label;
  for (std::size_t i = 0; i < a.extras.size(); ++i) {
    EXPECT_EQ(a.extras[i].first, b.extras[i].first) << label;
    EXPECT_EQ(a.extras[i].second, b.extras[i].second) << label << " / " << a.extras[i].first;
  }
}

TEST(EngineSeedDerivation, PureFunctionOfTheSpec) {
  ScenarioSpec spec = dkg_spec(7, 99);
  ScenarioSpec same = dkg_spec(7, 99);
  EXPECT_EQ(spec.derived_seed(), spec.derived_seed());
  EXPECT_EQ(spec.derived_seed(), same.derived_seed());
  EXPECT_EQ(spec.derived_seed("renewal"), same.derived_seed("renewal"));
}

TEST(EngineSeedDerivation, SensitiveToEveryGridCoordinate) {
  ScenarioSpec base = dkg_spec(7, 99);
  std::uint64_t h = base.derived_seed();

  ScenarioSpec other = base;
  other.seed = 100;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.n = 10;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.t = 1;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.f = 1;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.variant = Variant::HybridVss;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.mode = vss::CommitmentMode::Hashed;
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.label = "renamed";
  EXPECT_NE(h, other.derived_seed());
  other = base;
  other.grp = &crypto::Group::small512();
  EXPECT_NE(h, other.derived_seed());
  EXPECT_NE(h, base.derived_seed("domain"));
}

TEST(EngineSeedDerivation, GoldenValueIsStableAcrossBuilds) {
  // Pins the FNV-1a construction: a change to the hash or the mixed-in
  // field set silently reshuffles every derived-seed grid, so it must be a
  // deliberate, visible break.
  ScenarioSpec spec;
  spec.label = "golden";
  spec.variant = Variant::Dkg;
  spec.n = 7;
  spec.t = 2;
  spec.f = 1;
  spec.seed = 1;
  EXPECT_EQ(spec.derived_seed(), UINT64_C(4246664332465237492));
}

TEST(EngineSweep, MultiJobRunMatchesSequentialRun) {
  SweepDriver driver = mixed_grid();
  std::vector<ScenarioResult> seq = driver.run(1);
  std::vector<ScenarioResult> par = driver.run(4);
  ASSERT_EQ(seq.size(), driver.size());
  ASSERT_EQ(par.size(), driver.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq[i].completed) << driver.specs()[i].label;
    expect_same_simulated_metrics(seq[i], par[i], driver.specs()[i].label);
    EXPECT_GE(seq[i].cpu_ms, 0.0);
    EXPECT_GE(par[i].cpu_ms, 0.0);
  }
}

TEST(EngineSweep, EventBudgetExhaustionMarksIncomplete) {
  ScenarioSpec starved = dkg_spec(4, 42);
  starved.max_events = 50;
  ScenarioSpec vss_starved = vss_spec(7, 7);
  vss_starved.max_events = 10;
  ScenarioSpec pro_starved = dkg_spec(4, 4004);
  pro_starved.variant = Variant::Proactive;
  pro_starved.max_events = 50;
  SweepDriver driver;
  driver.add(starved);
  driver.add(vss_starved);
  driver.add(pro_starved);
  driver.add(dkg_spec(4, 42));  // control: same scenario, full budget
  std::vector<ScenarioResult> results = driver.run(2);
  EXPECT_FALSE(results[0].completed);
  EXPECT_FALSE(results[0].ok);
  EXPECT_FALSE(results[1].completed);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[2].completed);
  EXPECT_FALSE(results[2].ok);
  EXPECT_TRUE(results[3].completed);
  EXPECT_TRUE(results[3].ok);
}

TEST(EngineSweep, AddAxisExpandsInOrder) {
  SweepDriver driver;
  driver.add_axis(std::vector<std::size_t>{4, 7, 10},
                  [](std::size_t n) { return dkg_spec(n, n); });
  ASSERT_EQ(driver.size(), 3u);
  EXPECT_EQ(driver.specs()[0].n, 4u);
  EXPECT_EQ(driver.specs()[1].n, 7u);
  EXPECT_EQ(driver.specs()[2].n, 10u);
}

TEST(EngineRunner, DkgScenarioCarriesLayerSplitExtras) {
  ScenarioResult r = run_scenario(dkg_spec(4, 42));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.bytes, 0u);
  for (const char* key :
       {"vss_messages", "vss_bytes", "agreement_messages", "agreement_bytes", "lead_changes",
        "final_view"}) {
    EXPECT_NE(r.extra(key), nullptr) << key;
  }
  // The layer split accounts for traffic the totals must contain.
  EXPECT_LE(r.extra_u64("vss_messages") + r.extra_u64("agreement_messages"), r.messages);
  EXPECT_GE(r.extra_u64("final_view"), 1u);
}

}  // namespace
}  // namespace dkg::engine
