// Unit tests: univariate/bivariate polynomials and Lagrange interpolation —
// the share arithmetic every protocol relies on.
#include <gtest/gtest.h>

#include "crypto/bipolynomial.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/polynomial.hpp"

namespace dkg::crypto {
namespace {

const Group& grp() { return Group::tiny256(); }

class PolyDegrees : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Degrees, PolyDegrees, ::testing::Values(0, 1, 2, 3, 5, 8, 13));

TEST_P(PolyDegrees, EvalMatchesDirectExpansion) {
  std::size_t t = GetParam();
  Drbg rng(t + 1);
  Polynomial p = Polynomial::random(grp(), t, rng);
  Scalar x = Scalar::from_u64(grp(), 7);
  Scalar expected = Scalar::zero(grp());
  Scalar xpow = Scalar::one(grp());
  for (std::size_t j = 0; j <= t; ++j) {
    expected += p.coeff(j).reveal() * xpow;
    xpow = xpow * x;
  }
  EXPECT_EQ(p.eval(x).reveal(), expected);
}

TEST_P(PolyDegrees, InterpolationRecoversPolynomial) {
  std::size_t t = GetParam();
  Drbg rng(100 + t);
  Polynomial p = Polynomial::random(grp(), t, rng);
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (std::uint64_t i = 1; i <= t + 1; ++i) pts.emplace_back(i, p.eval_at(i).reveal());
  Polynomial q = interpolate(grp(), pts);
  EXPECT_EQ(q, p);
  EXPECT_EQ(interpolate_at(grp(), pts, 0), p.coeff(0).reveal());
  EXPECT_EQ(interpolate_at(grp(), pts, 42), p.eval_at(42).reveal());
}

TEST_P(PolyDegrees, TPointsDoNotDetermineSecret) {
  // The privacy core: t points on a degree-t polynomial are consistent with
  // every possible secret (one consistent polynomial per candidate).
  std::size_t t = GetParam();
  if (t == 0) GTEST_SKIP() << "degree 0 has no slack";
  Drbg rng(200 + t);
  Polynomial p = Polynomial::random(grp(), t, rng);
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (std::uint64_t i = 1; i <= t; ++i) pts.emplace_back(i, p.eval_at(i).reveal());
  // For an arbitrary candidate secret z, the t points plus (0, z) always
  // interpolate to a valid degree-t polynomial through the adversary's view.
  for (std::uint64_t z = 1; z <= 3; ++z) {
    auto with_guess = pts;
    with_guess.emplace_back(0, Scalar::from_u64(grp(), z * 31337));
    Polynomial q = interpolate(grp(), with_guess);
    for (const auto& [x, y] : pts) EXPECT_EQ(q.eval_at(x).reveal(), y);
  }
}

TEST(Polynomial, RandomWithConstantPinsSecret) {
  Drbg rng(5);
  Scalar s = Scalar::from_u64(grp(), 777);
  Polynomial p = Polynomial::random_with_constant(s, 4, rng);
  EXPECT_EQ(p.eval_at(0).reveal(), s);
  EXPECT_EQ(p.degree(), 4u);
}

TEST(Polynomial, AdditionIsPointwise) {
  Drbg rng(6);
  Polynomial p = Polynomial::random(grp(), 3, rng);
  Polynomial q = Polynomial::random(grp(), 3, rng);
  Polynomial r = p + q;
  EXPECT_EQ(r.eval_at(9).reveal(), p.eval_at(9).reveal() + q.eval_at(9).reveal());
}

TEST(Polynomial, SerializationRoundTrip) {
  Drbg rng(7);
  Polynomial p = Polynomial::random(grp(), 3, rng);
  Polynomial q = Polynomial::from_bytes(grp(), p.to_bytes(), 3);
  EXPECT_EQ(q, p);
  EXPECT_THROW(Polynomial::from_bytes(grp(), p.to_bytes(), 4), std::out_of_range);
}

TEST(Lagrange, DuplicateAbscissaThrows) {
  std::vector<std::pair<std::uint64_t, Scalar>> pts{{1, Scalar::one(grp())},
                                                    {1, Scalar::zero(grp())}};
  EXPECT_THROW(interpolate_at(grp(), pts, 0), std::invalid_argument);
  EXPECT_THROW(interpolate(grp(), pts), std::invalid_argument);
}

TEST(Lagrange, CoefficientsSumToOneAtZero) {
  // sum_k lambda_k(0) = 1 for interpolation of the constant polynomial 1.
  std::vector<std::uint64_t> xs{2, 5, 9, 11};
  Scalar sum = Scalar::zero(grp());
  for (std::size_t k = 0; k < xs.size(); ++k) sum += lagrange_coeff(grp(), xs, k, 0);
  EXPECT_EQ(sum, Scalar::one(grp()));
}

class BiPolyDegrees : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Degrees, BiPolyDegrees, ::testing::Values(1, 2, 3, 5));

TEST_P(BiPolyDegrees, IsSymmetric) {
  std::size_t t = GetParam();
  Drbg rng(300 + t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 99), t, rng);
  for (std::uint64_t x = 0; x <= t + 2; ++x) {
    for (std::uint64_t y = 0; y <= t + 2; ++y) {
      EXPECT_EQ(f.eval_at(x, y).reveal(), f.eval_at(y, x).reveal());
    }
  }
}

TEST_P(BiPolyDegrees, RowMatchesEvaluation) {
  std::size_t t = GetParam();
  Drbg rng(400 + t);
  BiPolynomial f = BiPolynomial::random(Scalar::from_u64(grp(), 5), t, rng);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Polynomial a = f.row(i);
    EXPECT_EQ(a.degree(), t);
    for (std::uint64_t y = 0; y <= t + 1; ++y) EXPECT_EQ(a.eval_at(y).reveal(), f.eval_at(i, y).reveal());
  }
}

TEST_P(BiPolyDegrees, SecretIsConstantTerm) {
  std::size_t t = GetParam();
  Drbg rng(500 + t);
  Scalar s = Scalar::from_u64(grp(), 123456);
  BiPolynomial f = BiPolynomial::random(s, t, rng);
  EXPECT_EQ(f.secret().reveal(), s);
  EXPECT_EQ(f.eval_at(0, 0).reveal(), s);
  // Shares s_i = f(i, 0) interpolate back to s.
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (std::uint64_t i = 1; i <= t + 1; ++i) pts.emplace_back(i, f.eval_at(i, 0).reveal());
  EXPECT_EQ(interpolate_at(grp(), pts, 0), s);
}

}  // namespace
}  // namespace dkg::crypto
