// Unit tests: the discrete-event network simulator — ordering, delays,
// timers, crash semantics and metrics accounting.
#include <gtest/gtest.h>

#include "property_test.hpp"
#include "sim/faultplan.hpp"
#include "sim/simulator.hpp"

namespace dkg::sim {
namespace {

struct PingMsg : Message {
  std::uint32_t value;
  explicit PingMsg(std::uint32_t v) : value(v) {}
  std::string_view type() const override { return "test.ping"; }
  void serialize(Writer& w) const override { w.u32(value); }
};

/// Records everything it sees; optionally echoes to a peer.
struct RecorderNode : Node {
  std::vector<std::pair<NodeId, std::uint32_t>> received;
  std::vector<Time> receive_times;
  std::vector<TimerId> timers;
  int crashes = 0;
  int recoveries = 0;
  NodeId echo_to = 0;

  std::vector<NodeId> multicast_to;  // fan the first ping out to these ids

  void on_message(Context& ctx, NodeId from, const MessagePtr& msg) override {
    const auto* p = dynamic_cast<const PingMsg*>(msg.get());
    if (p == nullptr) return;
    received.emplace_back(from, p->value);
    receive_times.push_back(ctx.now());
    if (echo_to != 0) ctx.send(echo_to, std::make_shared<PingMsg>(p->value + 1));
    if (!multicast_to.empty() && from == kOperator) {
      ctx.multicast(multicast_to, std::make_shared<PingMsg>(p->value + 1));
    }
  }
  void on_timer(Context&, TimerId id) override { timers.push_back(id); }
  void on_crash(Context&) override { ++crashes; }
  void on_recover(Context&) override { ++recoveries; }
};

struct TimerStarterNode : RecorderNode {
  std::vector<std::pair<TimerId, Time>> to_start;
  std::vector<TimerId> to_stop_immediately;
  void on_start(Context& ctx) override {
    for (auto [id, after] : to_start) ctx.start_timer(id, after);
    for (TimerId id : to_stop_immediately) ctx.stop_timer(id);
  }
};

Simulator make_sim(std::size_t n, Time delay = 5) {
  return Simulator(n, std::make_unique<FixedDelay>(delay), 42);
}

TEST(Simulator, DeliversOperatorMessage) {
  Simulator sim = make_sim(2);
  auto node = std::make_unique<RecorderNode>();
  RecorderNode* ptr = node.get();
  sim.set_node(1, std::move(node));
  sim.set_node(2, std::make_unique<RecorderNode>());
  sim.post_operator(1, std::make_shared<PingMsg>(7), 3);
  EXPECT_TRUE(sim.run());
  ASSERT_EQ(ptr->received.size(), 1u);
  EXPECT_EQ(ptr->received[0], std::make_pair(kOperator, 7u));
  EXPECT_EQ(ptr->receive_times[0], 3u);
}

TEST(Simulator, FixedDelayDelivery) {
  Simulator sim = make_sim(2, 10);
  auto a = std::make_unique<RecorderNode>();
  a->echo_to = 2;
  auto b = std::make_unique<RecorderNode>();
  RecorderNode* bp = b.get();
  sim.set_node(1, std::move(a));
  sim.set_node(2, std::move(b));
  sim.post_operator(1, std::make_shared<PingMsg>(1), 0);
  EXPECT_TRUE(sim.run());
  ASSERT_EQ(bp->received.size(), 1u);
  EXPECT_EQ(bp->received[0].second, 2u);
  EXPECT_EQ(bp->receive_times[0], 10u);  // operator at 0 + link delay 10
}

TEST(Simulator, SameTimeEventsKeepFifoOrder) {
  Simulator sim = make_sim(1, 5);
  auto node = std::make_unique<RecorderNode>();
  RecorderNode* ptr = node.get();
  sim.set_node(1, std::move(node));
  for (std::uint32_t v = 0; v < 10; ++v) sim.post_operator(1, std::make_shared<PingMsg>(v), 7);
  EXPECT_TRUE(sim.run());
  ASSERT_EQ(ptr->received.size(), 10u);
  for (std::uint32_t v = 0; v < 10; ++v) EXPECT_EQ(ptr->received[v].second, v);
}

TEST(Simulator, TimerFiresOnceAndStopCancels) {
  Simulator sim = make_sim(1);
  auto node = std::make_unique<TimerStarterNode>();
  node->to_start = {{1, 10}, {2, 20}};
  node->to_stop_immediately = {2};
  TimerStarterNode* ptr = node.get();
  sim.set_node(1, std::move(node));
  EXPECT_TRUE(sim.run());
  ASSERT_EQ(ptr->timers.size(), 1u);
  EXPECT_EQ(ptr->timers[0], 1u);
}

TEST(Simulator, RestartedTimerSupersedesOldOne) {
  struct RestartNode : RecorderNode {
    void on_start(Context& ctx) override {
      ctx.start_timer(1, 10);
      ctx.start_timer(1, 30);  // re-arm: only the second should fire
    }
  };
  Simulator sim = make_sim(1);
  auto node = std::make_unique<RestartNode>();
  RestartNode* ptr = node.get();
  sim.set_node(1, std::move(node));
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(ptr->timers.size(), 1u);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, CrashedNodeLosesMessagesAndTimers) {
  Simulator sim = make_sim(2, 10);
  auto a = std::make_unique<RecorderNode>();
  RecorderNode* ap = a.get();
  sim.set_node(1, std::move(a));
  sim.set_node(2, std::make_unique<RecorderNode>());
  sim.schedule_crash(1, 5);
  sim.post_operator(2, std::make_shared<PingMsg>(1), 0);  // irrelevant traffic
  sim.post_operator(1, std::make_shared<PingMsg>(9), 20);  // lost: node crashed
  EXPECT_TRUE(sim.run());
  EXPECT_TRUE(ap->received.empty());
  EXPECT_EQ(ap->crashes, 1);
  EXPECT_EQ(sim.metrics().dropped_messages(), 1u);
}

TEST(Simulator, RecoveryInvokesHookAndResumesDelivery) {
  Simulator sim = make_sim(1, 10);
  auto a = std::make_unique<RecorderNode>();
  RecorderNode* ap = a.get();
  sim.set_node(1, std::move(a));
  sim.schedule_crash(1, 5);
  sim.schedule_recover(1, 50);
  sim.post_operator(1, std::make_shared<PingMsg>(1), 20);   // lost
  sim.post_operator(1, std::make_shared<PingMsg>(2), 60);   // delivered
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(ap->crashes, 1);
  EXPECT_EQ(ap->recoveries, 1);
  ASSERT_EQ(ap->received.size(), 1u);
  EXPECT_EQ(ap->received[0].second, 2u);
}

TEST(Simulator, MetricsCountSendsAndBytes) {
  Simulator sim = make_sim(2, 1);
  auto a = std::make_unique<RecorderNode>();
  a->echo_to = 2;
  sim.set_node(1, std::move(a));
  sim.set_node(2, std::make_unique<RecorderNode>());
  sim.post_operator(1, std::make_shared<PingMsg>(1), 0);
  EXPECT_TRUE(sim.run());
  // Operator messages are not metered; the one echo send is.
  TypeStats s = sim.metrics().by_prefix("test.");
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.bytes, 4u);  // one u32
}

TEST(Simulator, MulticastChargesPerRecipientAndSharesPayload) {
  Simulator sim = make_sim(3, 1);
  auto a = std::make_unique<RecorderNode>();
  a->multicast_to = {1, 2, 3, 9};  // 9: stale membership view, silently skipped
  sim.set_node(1, std::move(a));
  auto b = std::make_unique<RecorderNode>();
  RecorderNode* bp = b.get();
  sim.set_node(2, std::move(b));
  auto c = std::make_unique<RecorderNode>();
  RecorderNode* cp = c.get();
  sim.set_node(3, std::move(c));
  sim.schedule_crash(3, 0);  // crashed at delivery: message dropped, still charged
  sim.post_operator(1, std::make_shared<PingMsg>(1), 0);
  EXPECT_TRUE(sim.run());
  // Charged per valid recipient (self included), exactly like a unicast loop.
  TypeStats s = sim.metrics().by_prefix("test.");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.bytes, 12u);  // 3 x one u32
  EXPECT_EQ(sim.metrics().dropped_messages(), 1u);
  ASSERT_EQ(bp->received.size(), 1u);
  EXPECT_EQ(bp->received[0], (std::pair<NodeId, std::uint32_t>{1, 2u}));
  EXPECT_TRUE(cp->received.empty());
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim = make_sim(1, 1);
  auto node = std::make_unique<RecorderNode>();
  RecorderNode* ptr = node.get();
  sim.set_node(1, std::move(node));
  for (std::uint32_t v = 0; v < 100; ++v) sim.post_operator(1, std::make_shared<PingMsg>(v), v);
  EXPECT_TRUE(sim.run_until([&] { return ptr->received.size() >= 3; }));
  EXPECT_EQ(ptr->received.size(), 3u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim(3, std::make_unique<UniformDelay>(1, 50), 77);
    std::vector<Time> times;
    for (NodeId i = 1; i <= 3; ++i) {
      auto node = std::make_unique<RecorderNode>();
      node->echo_to = i % 3 + 1;
      sim.set_node(i, std::move(node));
    }
    sim.post_operator(1, std::make_shared<PingMsg>(0), 0);
    sim.run(2000);
    return sim.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AdversarialDelay, PenalizesOnlySlowLinks) {
  crypto::Drbg rng(1);
  AdversarialDelay d(std::make_unique<FixedDelay>(10), {2}, 1000);
  auto msg = std::make_shared<PingMsg>(0);
  EXPECT_EQ(d.delay(1, 3, msg, 0, rng), 10u);
  EXPECT_EQ(d.delay(1, 2, msg, 0, rng), 1010u);
  EXPECT_EQ(d.delay(2, 3, msg, 0, rng), 1010u);
}

TEST(FaultPlan, RespectsConcurrencyBound) {
  crypto::Drbg rng(9);
  std::vector<NodeId> nodes{1, 2, 3, 4, 5, 6};
  FaultPlan plan = FaultPlan::random(nodes, /*f=*/2, /*total=*/10, /*horizon=*/1000,
                                     /*min_outage=*/50, /*max_outage=*/200, rng);
  EXPECT_GT(plan.crash_count(), 0u);
  // The bound is instant-wise: at every window start (the only points where
  // concurrency can increase), no more than f nodes may be down at once.
  // The old pairwise-overlap count understated this — three windows can
  // overlap pairwise-disjointly in time yet still share one instant.
  for (const CrashWindow& w : plan.windows()) {
    std::size_t down = 0;
    for (const CrashWindow& o : plan.windows()) {
      bool covers = o.crash_at <= w.crash_at && (o.recover_at == 0 || w.crash_at < o.recover_at);
      if (covers) {
        if (&w != &o) {
          EXPECT_NE(w.node, o.node);  // no double-crash of one node
        }
        ++down;
      }
    }
    EXPECT_LE(down, 2u);
  }
}

// Instant-wise maximum concurrency of a window set (recover_at == 0 covers
// forever); it only steps up at crash instants, so sampling those suffices.
std::size_t max_concurrency(const std::vector<CrashWindow>& windows) {
  std::size_t peak = 0;
  for (const CrashWindow& w : windows) {
    std::size_t down = 0;
    for (const CrashWindow& o : windows) {
      if (o.crash_at <= w.crash_at && (o.recover_at == 0 || w.crash_at < o.recover_at)) ++down;
    }
    peak = std::max(peak, down);
  }
  return peak;
}

TEST(FaultPlanProperty, InstantWiseBoundUnderOverlapPressure) {
  // Long outages over a short horizon force heavy window stacking — the
  // regime where pairwise-overlap counting used to admit f+1 nodes down at
  // one instant (three mutually staggered windows all covering a fourth's
  // start). The instant-wise bound must hold for every draw.
  crypto::Drbg rng(dkg::testprop::property_seed());
  std::vector<NodeId> nodes{1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t rep = 0; rep < dkg::testprop::property_cases(50); ++rep) {
    std::size_t f = 1 + rng.uniform(3);
    FaultPlan plan = FaultPlan::random(nodes, f, /*total=*/12, /*horizon=*/120,
                                       /*min_outage=*/60, /*max_outage=*/200, rng);
    EXPECT_LE(max_concurrency(plan.windows()), f) << "rep " << rep << " f=" << f;
    EXPECT_EQ(plan.requested(), 12u);
    EXPECT_EQ(plan.shortfall(), plan.requested() - plan.crash_count());
  }
}

TEST(FaultPlanProperty, ExactFillWhenFeasible) {
  // A wide horizon with short outages leaves the concurrency bound slack:
  // the greedy fill must place every requested window and report no
  // shortfall.
  crypto::Drbg rng(dkg::testprop::property_seed());
  std::vector<NodeId> nodes{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (std::size_t rep = 0; rep < dkg::testprop::property_cases(20); ++rep) {
    FaultPlan plan = FaultPlan::random(nodes, /*f=*/3, /*total=*/6, /*horizon=*/100'000,
                                       /*min_outage=*/5, /*max_outage=*/20, rng);
    EXPECT_EQ(plan.crash_count(), 6u) << "rep " << rep;
    EXPECT_EQ(plan.shortfall(), 0u) << "rep " << rep;
  }
}

TEST(FaultPlan, ZeroHorizonPinsStartsAndSurfacesShortfall) {
  // horizon == 0 means "everything starts at once" (and used to divide by
  // zero): every window starts at 0, so the f bound caps the fill at f and
  // the under-fill is visible through shortfall() instead of silent.
  crypto::Drbg rng(3);
  std::vector<NodeId> nodes{1, 2, 3, 4, 5};
  FaultPlan plan = FaultPlan::random(nodes, /*f=*/2, /*total=*/5, /*horizon=*/0,
                                     /*min_outage=*/10, /*max_outage=*/10, rng);
  EXPECT_EQ(plan.crash_count(), 2u);
  EXPECT_EQ(plan.requested(), 5u);
  EXPECT_EQ(plan.shortfall(), 3u);
  for (const CrashWindow& w : plan.windows()) EXPECT_EQ(w.crash_at, 0u);
}

TEST(FaultPlan, ZeroOutageDrawIsClampedToOneTick) {
  // min_outage == max_outage == 0 must not emit recover_at == crash_at,
  // which the CrashWindow contract would read as "down forever".
  crypto::Drbg rng(5);
  std::vector<NodeId> nodes{1, 2, 3};
  FaultPlan plan = FaultPlan::random(nodes, /*f=*/1, /*total=*/2, /*horizon=*/100,
                                     /*min_outage=*/0, /*max_outage=*/0, rng);
  ASSERT_GT(plan.crash_count(), 0u);
  for (const CrashWindow& w : plan.windows()) EXPECT_EQ(w.recover_at, w.crash_at + 1);
}

TEST(FaultPlan, StaysDownWindowNeverSchedulesRecovery) {
  // recover_at == 0 is the "stays down" contract: apply() must not schedule
  // a recovery at time 0 (which, being <= crash_at, would resurrect the
  // node out of order or crash-recover it before the crash).
  Simulator sim(3, std::make_unique<FixedDelay>(5), 1);
  for (NodeId i = 1; i <= 3; ++i) sim.set_node(i, std::make_unique<RecorderNode>());
  FaultPlan plan(std::vector<CrashWindow>{{2, 10, 0}});
  EXPECT_EQ(plan.requested(), 1u);
  EXPECT_EQ(plan.shortfall(), 0u);
  plan.apply(sim);
  sim.post_operator(1, std::make_shared<PingMsg>(0), 50);
  ASSERT_TRUE(sim.run());
  EXPECT_TRUE(sim.is_crashed(2));
  EXPECT_FALSE(sim.is_crashed(1));
}

}  // namespace
}  // namespace dkg::sim
