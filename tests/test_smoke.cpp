// End-to-end smoke tests: the full DKG on a small honest network. Detailed
// per-module tests live in the other test files.
#include <gtest/gtest.h>

#include "dkg/runner.hpp"

namespace dkg {
namespace {

TEST(Smoke, DkgCompletesOnHonestNetwork) {
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 42;
  core::DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  EXPECT_EQ(runner.completed_nodes().size(), 7u);
  EXPECT_TRUE(runner.outputs_consistent());
}

TEST(Smoke, SecretMatchesPublicKey) {
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 2;
  cfg.f = 0;
  cfg.seed = 7;
  core::DkgRunner runner(cfg);
  runner.start_all();
  ASSERT_TRUE(runner.run_to_completion());
  ASSERT_TRUE(runner.outputs_consistent());
  crypto::Scalar secret = runner.reconstruct_secret();
  const core::DkgOutput& out = runner.dkg_node(1).output();
  EXPECT_EQ(crypto::Element::exp_g(secret), out.public_key);
}

}  // namespace
}  // namespace dkg
