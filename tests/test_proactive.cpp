// Protocol tests: proactive share renewal and recovery (paper §5).
#include <gtest/gtest.h>

#include "crypto/lagrange.hpp"
#include "proactive/runner.hpp"

namespace dkg::proactive {
namespace {

using crypto::Element;
using crypto::Scalar;

core::RunnerConfig small_config(std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = seed;
  return cfg;
}

TEST(Renewal, PreservesSecretAndPublicKey) {
  ProactiveRunner runner(small_config(201));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret_before = runner.reconstruct();
  Element pk_before = runner.public_key();
  ASSERT_TRUE(runner.run_renewal());
  EXPECT_EQ(runner.reconstruct(), secret_before);
  EXPECT_EQ(runner.public_key(), pk_before);
  EXPECT_TRUE(runner.shares_consistent());
}

TEST(Renewal, ChangesEveryShare) {
  ProactiveRunner runner(small_config(202));
  ASSERT_TRUE(runner.run_dkg());
  std::vector<ShareState> before = runner.states();
  ASSERT_TRUE(runner.run_renewal());
  for (sim::NodeId i = 1; i <= 7; ++i) {
    EXPECT_NE(runner.states()[i].share.reveal(), before[i].share.reveal()) << "node " << i;
  }
}

TEST(Renewal, OldSharesAreUselessAgainstNewCommitment) {
  // The mobile adversary's pre-renewal shares must not verify against the
  // post-renewal commitment vector (they belong to a different polynomial).
  ProactiveRunner runner(small_config(203));
  ASSERT_TRUE(runner.run_dkg());
  std::vector<ShareState> before = runner.states();
  ASSERT_TRUE(runner.run_renewal());
  std::size_t still_valid = 0;
  for (sim::NodeId i = 1; i <= 7; ++i) {
    if (runner.states()[i].commitment.verify_share(i, before[i].share.reveal())) ++still_valid;
  }
  EXPECT_EQ(still_valid, 0u);
}

TEST(Renewal, MixedPhaseSharesDoNotReconstructSecret) {
  // t shares from phase 1 plus t shares from phase 2 (different nodes) give
  // the adversary 2t > t shares total — proactive security's whole point is
  // that this mixture reveals nothing. With t=2: nodes {1,2} old, {3,4} new.
  core::RunnerConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = 204;
  ProactiveRunner runner(cfg);
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  std::vector<ShareState> old_states = runner.states();
  ASSERT_TRUE(runner.run_renewal());
  // Mixture interpolation does NOT produce the secret.
  std::vector<std::pair<std::uint64_t, Scalar>> mixed{
      {1, old_states[1].share.reveal()},
      {2, old_states[2].share.reveal()},
      {3, runner.states()[3].share.reveal()}};
  EXPECT_NE(crypto::interpolate_at(*cfg.grp, mixed, 0), secret);
}

TEST(Renewal, MultiplePhasesStayConsistent) {
  ProactiveRunner runner(small_config(205));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  for (int phase = 0; phase < 3; ++phase) {
    ASSERT_TRUE(runner.run_renewal()) << "phase " << phase;
    EXPECT_EQ(runner.reconstruct(), secret);
    EXPECT_TRUE(runner.shares_consistent());
  }
  EXPECT_EQ(runner.phase(), 4u);
}

TEST(Renewal, SurvivesCrashRecoveryDuringPhase) {
  // §5.3 share recovery: a node crashes during renewal, recovers, and must
  // end the phase holding a valid new share.
  ProactiveRunner runner(small_config(206));
  ASSERT_TRUE(runner.run_dkg());
  Scalar secret = runner.reconstruct();
  ASSERT_TRUE(runner.run_renewal({7}));
  EXPECT_EQ(runner.reconstruct(), secret);
  EXPECT_TRUE(runner.shares_consistent());
  EXPECT_TRUE(runner.states()[7].commitment.verify_share(7, runner.states()[7].share.reveal()));
}

TEST(Renewal, ResharingWrongValueIsRejected) {
  // A dealer resharing something other than its certified old share must be
  // rejected by the expected-C00 check. We verify the hook directly.
  const crypto::Group& grp = crypto::Group::tiny256();
  crypto::Drbg rng(1);
  vss::VssParams params;
  params.grp = &grp;
  params.n = 7;
  params.t = 1;
  params.f = 1;
  vss::VssInstance inst(params, vss::SessionId{2, 5}, /*self=*/1);
  inst.set_expected_c00(Element::exp_g(Scalar::from_u64(grp, 1000)));

  // Handler requires a Context; drive it through a simulator shell.
  struct Shell : sim::Node {
    vss::VssInstance* inst;
    explicit Shell(vss::VssInstance* i) : inst(i) {}
    void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override {
      inst->handle(ctx, from, *msg);
    }
  };
  sim::Simulator sim(2, std::make_unique<sim::FixedDelay>(1), 1);
  sim.set_node(1, std::make_unique<Shell>(&inst));
  sim.set_node(2, std::make_unique<vss::VssNode>(params, 2));

  crypto::BiPolynomial wrong =
      crypto::BiPolynomial::random(Scalar::from_u64(grp, 2000), params.t, rng);
  auto commitment =
      std::make_shared<const crypto::FeldmanMatrix>(crypto::FeldmanMatrix::commit(wrong));
  // Emulate dealer 2 sending its dealing to node 1.
  struct Injector : sim::Node {
    std::shared_ptr<const crypto::FeldmanMatrix> c;
    crypto::Polynomial row;
    Injector(std::shared_ptr<const crypto::FeldmanMatrix> cc, crypto::Polynomial r)
        : c(std::move(cc)), row(std::move(r)) {}
    void on_start(sim::Context& ctx) override {
      ctx.send(1, std::make_shared<vss::SendMsg>(vss::SessionId{2, 5}, c, row));
    }
    void on_message(sim::Context&, sim::NodeId, const sim::MessagePtr&) override {}
  };
  sim.set_node(2, std::make_unique<Injector>(commitment, wrong.row(1)));
  ASSERT_TRUE(sim.run());
  EXPECT_GT(inst.rejected(), 0u);
  EXPECT_FALSE(inst.has_shared());
}

TEST(PhaseClock, SchedulesTicksWithBoundedSkew) {
  sim::Simulator sim(3, std::make_unique<sim::FixedDelay>(1), 1);
  struct TickRecorder : sim::Node {
    std::vector<sim::Time> ticks;
    void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override {
      if (from == sim::kOperator && dynamic_cast<const PhaseTickOp*>(msg.get())) {
        ticks.push_back(ctx.now());
      }
    }
  };
  std::vector<TickRecorder*> recs;
  for (sim::NodeId i = 1; i <= 3; ++i) {
    auto r = std::make_unique<TickRecorder>();
    recs.push_back(r.get());
    sim.set_node(i, std::move(r));
  }
  PhaseClock clock(10'000, 500);
  clock.schedule_phase(sim, 2, 3, 1'000);
  ASSERT_TRUE(sim.run());
  for (TickRecorder* r : recs) {
    ASSERT_EQ(r->ticks.size(), 1u);
    EXPECT_GE(r->ticks[0], 1'000u);
    EXPECT_LE(r->ticks[0], 1'500u);
  }
}

}  // namespace
}  // namespace dkg::proactive
