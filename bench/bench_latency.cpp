// E10 — Asynchrony does not cost wall-clock time on the honest mesh
// (paper §2.1): "even if the adversary delays its messages, an asynchronous
// protocol completes without any delay with honest nodes communicating
// promptly. Thus, the asynchrony assumption may increase message complexity
// ... but in practice does not increase the actual execution time."
// We delay every link touching the adversary's nodes by a growing penalty
// and record when the honest nodes complete: the curve should stay flat.
// Contrast: delaying a quorum-critical fraction of HONEST links does hurt.
#include "bench_util.hpp"

namespace {

dkg::engine::ScenarioSpec make_spec(std::set<dkg::sim::NodeId> slow, dkg::sim::Time penalty,
                                    const char* tag) {
  using namespace dkg;
  engine::ScenarioSpec spec;
  spec.label = std::string(tag) + " penalty=" + std::to_string(penalty);
  spec.variant = engine::Variant::Dkg;
  spec.n = 10;
  spec.t = 2;
  spec.f = 1;
  spec.seed = 6001;
  spec.slow_nodes = std::move(slow);
  spec.slow_penalty = penalty;
  spec.timeout_base = 1'000'000;  // isolate delay effects from timeouts
  spec.min_outputs = spec.n - spec.slow_nodes.size();
  return spec;
}

dkg::sim::Time completion_of(const dkg::engine::ScenarioResult& r) {
  return r.completed ? r.completion_time : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_latency", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E10  Completion latency under adversarial link delays",
                      "adversarial delays on corrupted links do not slow the honest "
                      "path  [Sec 2.1]");
  std::printf("n=10 t=2 f=1; adversary nodes {9,10}; honest-node completion time\n\n");
  // Pairs per penalty: the adversary's links slowed, then — for contrast —
  // the SAME delay applied to two honest nodes' links, where quorums must
  // wait for different (prompt) nodes or, if too many are slowed, for the
  // slow ones.
  engine::SweepDriver driver;
  for (sim::Time penalty : {0ull, 1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    driver.add(make_spec({9, 10}, penalty, "adv"));
    driver.add(make_spec({1, 2}, penalty, "honest"));
  }
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%12s %22s %26s\n", "penalty", "adv-links-slowed", "2-honest-links-slowed");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    sim::Time penalty = driver.specs()[i].slow_penalty;
    sim::Time adv = completion_of(results[i]);
    sim::Time hon = completion_of(results[i + 1]);
    bench::MetricRow row("penalty=" + std::to_string(penalty));
    row.set("penalty", penalty)
        .set("adversarial_links_completion_time", adv)
        .set("honest_links_completion_time", hon)
        .set("ok", adv != 0 && hon != 0);
    json.add(std::move(bench::add_engine_fields(row, {&results[i], &results[i + 1]})));
    std::printf("%12llu %22llu %26llu\n", static_cast<unsigned long long>(penalty),
                static_cast<unsigned long long>(adv), static_cast<unsigned long long>(hon));
  }
  std::printf("\nshape check: the adversarial-links column stays flat (the paper's\n"
              "core systems argument for choosing the asynchronous model); slowing\n"
              "honest links can shift completion since quorums re-route around them\n"
              "only when enough prompt nodes remain.\n");
  return bench::finish(json, results);
}
