// E10 — Asynchrony does not cost wall-clock time on the honest mesh
// (paper §2.1): "even if the adversary delays its messages, an asynchronous
// protocol completes without any delay with honest nodes communicating
// promptly. Thus, the asynchrony assumption may increase message complexity
// ... but in practice does not increase the actual execution time."
// We delay every link touching the adversary's nodes by a growing penalty
// and record when the honest nodes complete: the curve should stay flat.
// Contrast: delaying a quorum-critical fraction of HONEST links does hurt.
#include "bench_util.hpp"

using namespace dkg;

namespace {

sim::Time honest_completion(std::set<sim::NodeId> slow, sim::Time penalty, std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::tiny256();
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.slow_nodes = std::move(slow);
  cfg.slow_penalty = penalty;
  cfg.timeout_base = 1'000'000;  // isolate delay effects from timeouts
  core::DkgRunner runner(cfg);
  runner.start_all();
  std::size_t prompt = cfg.n - cfg.slow_nodes.size();
  if (!runner.run_to_completion(prompt)) return 0;
  return runner.simulator().now();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_latency", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E10  Completion latency under adversarial link delays",
                      "adversarial delays on corrupted links do not slow the honest "
                      "path  [Sec 2.1]");
  std::printf("n=10 t=2 f=1; adversary nodes {9,10}; honest-node completion time\n\n");
  std::printf("%12s %22s %26s\n", "penalty", "adv-links-slowed", "2-honest-links-slowed");
  for (sim::Time penalty : {0ull, 1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    sim::Time adv = honest_completion({9, 10}, penalty, 6001);
    // Contrast case: the SAME delay applied to two honest nodes' links —
    // now quorums must wait for different (prompt) nodes, or if too many
    // are slowed, for the slow ones.
    sim::Time hon = honest_completion({1, 2}, penalty, 6001);
    json.add(bench::MetricRow("penalty=" + std::to_string(penalty))
                 .set("penalty", penalty)
                 .set("adversarial_links_completion_time", adv)
                 .set("honest_links_completion_time", hon)
                 .set("ok", adv != 0 && hon != 0));
    std::printf("%12llu %22llu %26llu\n", static_cast<unsigned long long>(penalty),
                static_cast<unsigned long long>(adv), static_cast<unsigned long long>(hon));
  }
  std::printf("\nshape check: the adversarial-links column stays flat (the paper's\n"
              "core systems argument for choosing the asynchronous model); slowing\n"
              "honest links can shift completion since quorums re-route around them\n"
              "only when enough prompt nodes remain.\n");
  return json.flush() ? 0 : 1;
}
