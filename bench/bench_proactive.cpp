// E7 — Proactive layer costs (paper §5, §6.2):
//   share renewal is "a share renewal protocol by making three modifications
//   to our DKG" — same asymptotics as the DKG; node addition runs one
//   resharing round plus t+1 subshare deliveries.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_proactive", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  engine::SweepDriver driver;
  driver.add_axis(std::vector<std::size_t>{4, 7, 10, 13, 16}, [](std::size_t n) {
    std::size_t t = (n - 1) / 3;
    engine::ScenarioSpec spec;
    spec.label = "renewal n=" + std::to_string(n);
    spec.variant = engine::Variant::Proactive;
    spec.n = n;
    spec.t = t;
    spec.f = (n - 1 - 3 * t) / 2;
    spec.seed = 4000 + n;
    return spec;
  });
  std::size_t add_offset = driver.size();
  driver.add_axis(std::vector<std::size_t>{4, 7, 10, 13}, [](std::size_t n) {
    std::size_t t = (n - 1) / 3;
    engine::ScenarioSpec spec;
    spec.label = "node-add n=" + std::to_string(n);
    spec.variant = engine::Variant::NodeAdd;
    spec.n = n;
    spec.t = t;
    spec.f = (n - 1 - 3 * t) / 2;
    spec.seed = 5000 + n;
    // E7b's published numbers use the U[5,40] regime; the spec applies it
    // to both the bootstrap DKG and the resharing network (the pre-engine
    // bench ran the bootstrap at U[10,100]).
    spec.delay_lo = 5;
    spec.delay_hi = 40;
    return spec;
  });
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());

  bench::print_header("E7a  Share renewal traffic vs n",
                      "renewal ~ DKG complexity (three modifications of DKG)  [Sec 5.2]");
  std::printf("%4s %4s %12s %14s %12s %14s\n", "n", "t", "dkg-msgs", "dkg-bytes",
              "renew-msgs", "renew-bytes");
  for (std::size_t i = 0; i < add_offset; ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& r = results[i];
    bench::MetricRow row(spec.label);
    row.str("table", "share_renewal").set("n", spec.n).set("t", spec.t);
    if (r.extra("dkg_messages") != nullptr) {
      row.set("dkg_messages", r.extra_u64("dkg_messages"))
          .set("dkg_bytes", r.extra_u64("dkg_bytes"));
    }
    if (r.extra("renewal_messages") != nullptr) {
      row.set("renewal_messages", r.extra_u64("renewal_messages"))
          .set("renewal_bytes", r.extra_u64("renewal_bytes"));
    }
    row.set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    if (!r.ok) {
      std::printf("%4zu  %s\n", spec.n,
                  r.extra("dkg_messages") == nullptr ? "DKG FAILED" : "RENEWAL FAILED");
      continue;
    }
    std::printf("%4zu %4zu %12llu %14llu %12llu %14llu\n", spec.n, spec.t,
                static_cast<unsigned long long>(r.extra_u64("dkg_messages")),
                static_cast<unsigned long long>(r.extra_u64("dkg_bytes")),
                static_cast<unsigned long long>(r.extra_u64("renewal_messages")),
                static_cast<unsigned long long>(r.extra_u64("renewal_bytes")));
  }
  std::printf("\nshape check: renewal traffic tracks DKG traffic within a small factor\n"
              "(clock ticks add O(n^2); stripped send replays subtract row payloads).\n");

  bench::print_header("E7b  Node addition cost vs n",
                      "one resharing round + t+1 verified subshares  [Sec 6.2]");
  std::printf("%4s %4s %12s %14s %12s\n", "n", "t", "msgs", "bytes", "subshares");
  for (std::size_t i = add_offset; i < results.size(); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& r = results[i];
    bench::MetricRow row(spec.label);
    row.str("table", "node_addition")
        .set("n", spec.n)
        .set("t", spec.t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("subshares", r.extra_u64("subshares"))
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%4zu %4zu %12llu %14llu %12llu%s\n", spec.n, spec.t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.extra_u64("subshares")),
                r.ok ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: node addition costs one DKG-shaped resharing plus n\n"
              "subshare messages.\n");
  return bench::finish(json, results);
}
