// E7 — Proactive layer costs (paper §5, §6.2):
//   share renewal is "a share renewal protocol by making three modifications
//   to our DKG" — same asymptotics as the DKG; node addition runs one
//   resharing round plus t+1 subshare deliveries.
#include "bench_util.hpp"

#include "groupmod/node_add.hpp"
#include "proactive/runner.hpp"

using namespace dkg;

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_proactive", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E7a  Share renewal traffic vs n",
                      "renewal ~ DKG complexity (three modifications of DKG)  [Sec 5.2]");
  std::printf("%4s %4s %12s %14s %12s %14s\n", "n", "t", "dkg-msgs", "dkg-bytes",
              "renew-msgs", "renew-bytes");
  for (std::size_t n : {4, 7, 10, 13, 16}) {
    std::size_t t = (n - 1) / 3;
    std::size_t f = (n - 1 - 3 * t) / 2;
    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = f;
    cfg.seed = 4000 + n;
    proactive::ProactiveRunner runner(cfg);
    if (!runner.run_dkg()) {
      std::printf("%4zu  DKG FAILED\n", n);
      json.add(bench::MetricRow("renewal n=" + std::to_string(n))
                   .str("table", "share_renewal")
                   .set("n", n)
                   .set("t", t)
                   .set("ok", false));
      continue;
    }
    std::uint64_t dkg_msgs = runner.last_metrics().total_messages();
    std::uint64_t dkg_bytes = runner.last_metrics().total_bytes();
    if (!runner.run_renewal()) {
      std::printf("%4zu  RENEWAL FAILED\n", n);
      json.add(bench::MetricRow("renewal n=" + std::to_string(n))
                   .str("table", "share_renewal")
                   .set("n", n)
                   .set("t", t)
                   .set("dkg_messages", dkg_msgs)
                   .set("dkg_bytes", dkg_bytes)
                   .set("ok", false));
      continue;
    }
    json.add(bench::MetricRow("renewal n=" + std::to_string(n))
                 .str("table", "share_renewal")
                 .set("n", n)
                 .set("t", t)
                 .set("dkg_messages", dkg_msgs)
                 .set("dkg_bytes", dkg_bytes)
                 .set("renewal_messages", runner.last_metrics().total_messages())
                 .set("renewal_bytes", runner.last_metrics().total_bytes())
                 .set("ok", true));
    std::printf("%4zu %4zu %12llu %14llu %12llu %14llu\n", n, t,
                static_cast<unsigned long long>(dkg_msgs),
                static_cast<unsigned long long>(dkg_bytes),
                static_cast<unsigned long long>(runner.last_metrics().total_messages()),
                static_cast<unsigned long long>(runner.last_metrics().total_bytes()));
  }
  std::printf("\nshape check: renewal traffic tracks DKG traffic within a small factor\n"
              "(clock ticks add O(n^2); stripped send replays subtract row payloads).\n");

  bench::print_header("E7b  Node addition cost vs n",
                      "one resharing round + t+1 verified subshares  [Sec 6.2]");
  std::printf("%4s %4s %12s %14s %12s\n", "n", "t", "msgs", "bytes", "subshares");
  for (std::size_t n : {4, 7, 10, 13}) {
    std::size_t t = (n - 1) / 3;
    std::size_t f = (n - 1 - 3 * t) / 2;
    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = f;
    cfg.seed = 5000 + n;
    proactive::ProactiveRunner boot(cfg);
    if (!boot.run_dkg()) {
      json.add(bench::MetricRow("node-add n=" + std::to_string(n))
                   .str("table", "node_addition")
                   .set("n", n)
                   .set("t", t)
                   .set("ok", false));
      continue;
    }

    auto keyring = crypto::Keyring::generate(*cfg.grp, n, cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    core::DkgParams params;
    params.vss.grp = cfg.grp;
    params.vss.n = n;
    params.vss.t = t;
    params.vss.f = f;
    params.vss.keyring = keyring;
    params.tau = 2;
    params.timeout_base = 20'000;
    sim::Simulator sim(n, std::make_unique<sim::UniformDelay>(5, 40), cfg.seed);
    sim::NodeId new_id = sim.add_node_slot();
    for (sim::NodeId i = 1; i <= n; ++i) {
      sim.set_node(i,
                   std::make_unique<groupmod::NodeAddNode>(params, i, boot.states()[i], new_id));
    }
    auto joining = std::make_unique<groupmod::JoiningNode>(*cfg.grp, t, new_id, params.tau);
    groupmod::JoiningNode* j = joining.get();
    sim.set_node(new_id, std::move(joining));
    for (sim::NodeId i = 1; i <= n; ++i) {
      sim.post_operator(i, std::make_shared<core::DkgStartOp>(params.tau, std::nullopt), 0);
    }
    sim.run_until([&] { return j->has_share(); });
    json.add(bench::MetricRow("node-add n=" + std::to_string(n))
                 .str("table", "node_addition")
                 .set("n", n)
                 .set("t", t)
                 .set("messages", sim.metrics().total_messages())
                 .set("bytes", sim.metrics().total_bytes())
                 .set("subshares", sim.metrics().by_prefix("gm.subshare").count)
                 .set("completion_time", sim.now())
                 .set("ok", j->has_share()));
    std::printf("%4zu %4zu %12llu %14llu %12llu%s\n", n, t,
                static_cast<unsigned long long>(sim.metrics().total_messages()),
                static_cast<unsigned long long>(sim.metrics().total_bytes()),
                static_cast<unsigned long long>(sim.metrics().by_prefix("gm.subshare").count),
                j->has_share() ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: node addition costs one DKG-shaped resharing plus n\n"
              "subshare messages.\n");
  return json.flush() ? 0 : 1;
}
