// E9 — Crypto substrate microbenchmarks across group sizes: the constants
// behind every protocol cost (exponentiation dominates verify-poly /
// verify-point; the paper's kappa = 160 regime is mod1024).
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"
#include "crypto/bipolynomial.hpp"
#include "crypto/element.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keyring.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sigverify.hpp"
#include "engine/parallel_verify.hpp"
#include "engine/verify_pool.hpp"

using namespace dkg::crypto;

namespace {

// Indices 0-3 are the statically registered mod-p axis; 4 is the ec256
// backend, registered at runtime only under `--backend ec256` so a flagless
// run's benchmark name set (the committed baseline) is unchanged.
const Group& group_for(int idx) {
  switch (idx) {
    case 0: return Group::tiny256();
    case 1: return Group::small512();
    case 2: return Group::mod1024();
    case 4: return Group::ec256();
    default: return Group::big2048();
  }
}

void BM_ExpG(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(1);
  Scalar x = Scalar::random(grp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Element::exp_g(x));
  }
  state.SetLabel(grp.name());
}

void BM_ElementPow(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(2);
  Element e = Element::exp_g(Scalar::random(grp, rng));
  Scalar x = Scalar::random(grp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.pow(x));
  }
  state.SetLabel(grp.name());
}

void BM_ScalarMul(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(3);
  Scalar a = Scalar::random(grp, rng);
  Scalar b = Scalar::random(grp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetLabel(grp.name());
}

void BM_SchnorrSign(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(4);
  KeyPair kp = schnorr_keygen(grp, rng);
  dkg::Bytes msg = dkg::bytes_of("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_sign(kp, msg));
  }
  state.SetLabel(grp.name());
}

void BM_SchnorrVerify(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(5);
  KeyPair kp = schnorr_keygen(grp, rng);
  dkg::Bytes msg = dkg::bytes_of("benchmark message");
  Signature sig = schnorr_sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify(kp.pk, msg, sig));
  }
  state.SetLabel(grp.name());
}

// The proof-set batch path (crypto/sigverify.hpp): k signatures of one
// shared payload, per-signer comb tables prebuilt, one shared inversion.
// Compare per-item cost against BM_SchnorrVerify.
void BM_SchnorrVerifyBatch(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  Drbg rng(7);
  dkg::Bytes msg = dkg::bytes_of("benchmark batch payload");
  std::vector<KeyPair> kps;
  std::vector<Signature> sigs;
  std::vector<std::unique_ptr<const FixedBaseTable>> tables;
  for (std::size_t i = 0; i < k; ++i) {
    kps.push_back(schnorr_keygen(grp, rng));
    sigs.push_back(schnorr_sign(kps.back(), msg));
    tables.push_back(FixedBaseTable::build(grp, kps.back().pk.value()));
  }
  std::vector<SigCheck> checks;
  for (std::size_t i = 0; i < k; ++i) {
    checks.push_back(SigCheck{&kps[i].pk, &msg, &sigs[i], tables[i].get()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify_batch(grp, checks));
  }
  state.SetLabel(grp.name() + " k=" + std::to_string(k));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * k));
}

// Keyring verify with the engine warm: after the first verify the
// signature is in the ring's VerifiedSigCache, so the steady state is one
// key hash + one set lookup — the per-receiver cost of a ready sig already
// seen by another receiver of the same process.
void BM_SchnorrVerifyCached(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  auto ring = Keyring::generate(grp, 4, 42);
  dkg::Bytes msg = dkg::bytes_of("benchmark cached payload");
  Signature sig = ring->sign_as(1, msg);
  ring->verify_from(1, msg, sig);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring->verify_from(1, msg, sig));
  }
  state.SetLabel(grp.name());
}

// Keyring verify with the cache disabled but the signer's comb table built:
// isolates the pk^c comb win inside schnorr_verify.
void BM_SchnorrVerifyComb(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  auto ring = Keyring::generate(grp, 4, 43);
  dkg::Bytes msg = dkg::bytes_of("benchmark comb payload");
  Signature sig = ring->sign_as(1, msg);
  for (std::uint32_t i = 0; i < SignerTables::kBuildThreshold + 1; ++i) {
    ring->verify_from(1, msg, sig);  // cross the table-build threshold
  }
  bool was_cache = sig_cache_enabled();
  set_sig_cache(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring->verify_from(1, msg, sig));
  }
  set_sig_cache(was_cache);
  state.SetLabel(grp.name());
}

void BM_Interpolate(benchmark::State& state) {
  const Group& grp = Group::small512();
  Drbg rng(6);
  std::size_t t = static_cast<std::size_t>(state.range(0));
  Polynomial p = Polynomial::random(grp, t, rng);
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (std::uint64_t i = 1; i <= t + 1; ++i) pts.emplace_back(i, p.eval_at(i).reveal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(interpolate_at(grp, pts, 0));
  }
  state.SetLabel("small512 t=" + std::to_string(t));
}

// The verify-pool lever under the E4 hot path: one verify_poly on a
// t = 21 commitment matrix (n = 64 regime), column range split over
// 1/2/4/8 verify threads. Arg 1 is the sequential code path (VerifyScope
// inert), so the series is its own baseline; on a machine with fewer cores
// than Arg the scaling flattens — the verdict stays identical regardless.
void BM_VerifyPolyParallel(benchmark::State& state) {
  const Group& grp = Group::tiny256();
  Drbg rng(7);
  constexpr std::size_t kT = 21;
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp, rng), kT, rng);
  FeldmanMatrix c = FeldmanMatrix::commit(f);
  Polynomial row = f.row(3);
  unsigned jobs = static_cast<unsigned>(state.range(0));
  unsigned prev_jobs = dkg::engine::VerifyPool::instance().configured_jobs();
  dkg::engine::VerifyPool::instance().configure(jobs);
  {
    dkg::engine::ScopedVerifyJobs scoped(jobs);
    for (auto _ : state) {
      benchmark::DoNotOptimize(dkg::engine::parallel_verify_poly(c, 3, row));
    }
  }
  dkg::engine::VerifyPool::instance().configure(prev_jobs);
  state.SetLabel("tiny256 t=" + std::to_string(kT) + " jobs=" + std::to_string(jobs));
}

}  // namespace

BENCHMARK(BM_ExpG)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ElementPow)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScalarMul)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_SchnorrSign)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchnorrVerify)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchnorrVerifyBatch)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 11, 21}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchnorrVerifyCached)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchnorrVerifyComb)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Interpolate)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyPolyParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  if (dkg::bench::consume_backend_flag(argc, argv) == "ec256") {
    using benchmark::RegisterBenchmark;
    RegisterBenchmark("BM_ExpG", BM_ExpG)->Arg(4)->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_ElementPow", BM_ElementPow)->Arg(4)->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_ScalarMul", BM_ScalarMul)->Arg(4)->Unit(benchmark::kNanosecond);
    RegisterBenchmark("BM_SchnorrSign", BM_SchnorrSign)->Arg(4)->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_SchnorrVerify", BM_SchnorrVerify)->Arg(4)->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_SchnorrVerifyBatch", BM_SchnorrVerifyBatch)
        ->ArgsProduct({{4}, {5, 11, 21}})
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_SchnorrVerifyCached", BM_SchnorrVerifyCached)
        ->Arg(4)
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_SchnorrVerifyComb", BM_SchnorrVerifyComb)
        ->Arg(4)
        ->Unit(benchmark::kMicrosecond);
  }
  return dkg::bench::run_gbench_main(argc, argv);
}
