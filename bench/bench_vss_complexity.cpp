// E1 — HybridVSS crash-free complexity (paper §3, Efficiency Discussion):
//   "A protocol execution without any crashes has O(n^2) message complexity
//    and O(kappa n^4) communication complexity."
// The table sweeps n with t = floor((n-1)/3), f = 0, full commitments, and
// prints normalized columns msgs/n^2 and bytes/n^4 — both should flatten to
// a constant as n grows. Two series: the tiny256 n-sweep (now reaching
// n = 64 — affordable since the multiexp engine, see bench_multiexp), and a
// big-group series at the paper's kappa = 160 regime (mod1024) plus a
// modern-parameter point (big2048) showing the counts are group-independent.
#include "bench_util.hpp"

namespace {

dkg::engine::ScenarioSpec make_spec(const dkg::crypto::Group& grp, std::size_t n) {
  using namespace dkg;
  engine::ScenarioSpec spec;
  spec.label = grp.name() + " n=" + std::to_string(n);
  spec.variant = engine::Variant::HybridVss;
  spec.grp = &grp;
  spec.n = n;
  spec.t = (n - 1) / 3;
  spec.f = 0;
  spec.mode = vss::CommitmentMode::Full;
  spec.seed = n;
  spec.delay_lo = 5;
  spec.delay_hi = 40;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_vss_complexity", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E1  HybridVSS message/communication complexity (no crashes)",
                      "O(n^2) messages, O(kappa n^4) bits  [Sec 3]");
  engine::SweepDriver driver;
  driver.add_axis(std::vector<std::size_t>{4, 7, 10, 13, 16, 19, 25, 31, 40, 50, 64},
                  [](std::size_t n) { return make_spec(crypto::Group::tiny256(), n); });
  driver.add_axis(std::vector<std::size_t>{10, 19},
                  [](std::size_t n) { return make_spec(crypto::Group::mod1024(), n); });
  driver.add_axis(std::vector<std::size_t>{7},
                  [](std::size_t n) { return make_spec(crypto::Group::big2048(), n); });
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%-16s %4s %4s %10s %14s %12s %14s %10s\n", "group", "n", "t", "messages", "bytes",
              "msgs/n^2", "bytes/n^4", "sim-time");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& r = results[i];
    double n2 = static_cast<double>(spec.n) * spec.n;
    double n4 = n2 * n2;
    bench::MetricRow row(spec.label);
    row.str("group", spec.grp->name())
        .set("n", spec.n)
        .set("t", spec.t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("messages_per_n2", r.messages / n2)
        .set("bytes_per_n4", r.bytes / n4)
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%-16s %4zu %4zu %10llu %14llu %12.2f %14.4f %10llu%s\n",
                spec.grp->name().c_str(), spec.n, spec.t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes), r.messages / n2, r.bytes / n4,
                static_cast<unsigned long long>(r.completion_time),
                r.ok ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: both normalized columns approach a constant within each\n"
              "group series; per-message bytes scale with kappa (the p_bytes of the\n"
              "group), so the mod1024/big2048 rows shift bytes/n^4 up, not msgs/n^2.\n");
  return bench::finish(json, results);
}
