#!/usr/bin/env python3
"""Diff freshly emitted BENCH_*.json files against bench/baselines/.

Timing is the only nondeterministic part of a bench document, so the
comparison strips it and fails on ANY other drift:

* engine documents ({"bench": ..., "rows": [...]}): every row is compared
  field-by-field with `cpu_ms` dropped. Simulated metrics (messages, bytes,
  completion_time, ok, completed, ...) are deterministic functions of the
  scenario spec and must match exactly.
* google-benchmark documents ({"context": ..., "benchmarks": [...]}): the
  context block and all timing fields are machine-dependent, so only the
  benchmark NAME SET is compared — a renamed, added or removed series fails,
  a faster or slower run does not.

Usage:
  bench/compare_baselines.py --fresh DIR [--baselines DIR] [NAME ...]

With no NAME arguments every BENCH_*.json present in --fresh is compared
(and a fresh file without a committed baseline, or vice versa when NAMEs
are given, is an error). Exit status: 0 clean, 1 any difference.
"""

import argparse
import json
import os
import sys

IGNORED_ROW_FIELDS = {"cpu_ms"}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench-delta: cannot load {path}: {e}")
        return None


def normalize(doc):
    """Timing-free canonical form of a bench JSON document."""
    if "rows" in doc:  # engine document (bench_util.hpp JsonEmitter)
        rows = [
            {k: v for k, v in row.items() if k not in IGNORED_ROW_FIELDS}
            for row in doc["rows"]
        ]
        return {"bench": doc.get("bench"), "schema": doc.get("schema"), "rows": rows}
    if "benchmarks" in doc:  # google-benchmark --benchmark_out document
        names = sorted(
            b["name"] for b in doc["benchmarks"] if b.get("run_type") != "aggregate"
        )
        return {"gbench_names": names}
    return doc


def describe_diff(name, base, fresh):
    """Prints a human-oriented summary of what moved; returns True if differs."""
    if base == fresh:
        return False
    print(f"bench-delta: {name}: MISMATCH")
    if "gbench_names" in base and "gbench_names" in fresh:
        missing = sorted(set(base["gbench_names"]) - set(fresh["gbench_names"]))
        added = sorted(set(fresh["gbench_names"]) - set(base["gbench_names"]))
        for n in missing:
            print(f"  - series disappeared: {n}")
        for n in added:
            print(f"  + new series (baseline not committed): {n}")
        return True
    base_rows = {r.get("name"): r for r in base.get("rows", [])}
    fresh_rows = {r.get("name"): r for r in fresh.get("rows", [])}
    for rname in sorted(set(base_rows) | set(fresh_rows)):
        b, f = base_rows.get(rname), fresh_rows.get(rname)
        if b == f:
            continue
        if b is None:
            print(f"  + new row (baseline not committed): {rname}")
        elif f is None:
            print(f"  - row disappeared: {rname}")
        else:
            for k in sorted(set(b) | set(f)):
                if b.get(k) != f.get(k):
                    print(f"  ~ {rname}: {k}: {b.get(k)!r} -> {f.get(k)!r}")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default=os.path.join(os.path.dirname(__file__), "baselines"))
    ap.add_argument("--fresh", required=True, help="directory holding freshly emitted BENCH_*.json")
    ap.add_argument("names", nargs="*", help="specific BENCH_*.json file names to compare")
    args = ap.parse_args()

    names = args.names or sorted(
        n for n in os.listdir(args.fresh) if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        print(f"bench-delta: no BENCH_*.json files found in {args.fresh}")
        return 1

    failures = 0
    for name in names:
        fresh_path = os.path.join(args.fresh, name)
        base_path = os.path.join(args.baselines, name)
        if not os.path.exists(fresh_path):
            print(f"bench-delta: {name}: missing fresh file {fresh_path}")
            failures += 1
            continue
        if not os.path.exists(base_path):
            print(f"bench-delta: {name}: no committed baseline {base_path}")
            failures += 1
            continue
        fresh_doc, base_doc = load(fresh_path), load(base_path)
        if fresh_doc is None or base_doc is None:
            failures += 1
            continue
        if describe_diff(name, normalize(base_doc), normalize(fresh_doc)):
            failures += 1
        else:
            print(f"bench-delta: {name}: OK")

    if failures:
        print(f"bench-delta: {failures} file(s) differ from committed baselines")
        return 1
    print(f"bench-delta: all {len(names)} file(s) match (timing fields ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
