// Shared main() body for the google-benchmark binaries (E8/E9): translates
// the repo-wide `--json <path>` flag into benchmark's JSON file reporter so
// every bench binary shares one metrics-emission interface.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dkg::bench {

/// Consumes a `--backend NAME` / `--backend=NAME` flag from the command
/// line (the same backend axis the sweep benches accept) before benchmark::
/// Initialize sees — and rejects — it. Returns the backend name, or "" when
/// the flag is absent. The gbench mains use it to register extra backend
/// series at runtime, so a flagless run's benchmark name set (what the
/// bench-delta comparison pins) is untouched.
inline std::string consume_backend_flag(int& argc, char** argv) {
  std::string backend;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      backend = argv[++i];
      continue;
    }
    if (arg.rfind("--backend=", 0) == 0 && arg.size() > 10) {
      backend = arg.substr(10);
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  return backend;
}

inline int run_gbench_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--json=", 0) == 0 && args[i].size() > 7) {
      args.insert(args.begin() + i + 1, "--benchmark_out=" + args[i].substr(7));
      args[i] = "--benchmark_out_format=json";
      ++i;
      continue;
    }
    if (args[i] != "--json") continue;
    if (i + 1 >= args.size()) {
      std::fprintf(stderr, "bench: --json requires a path argument\n");
      return 1;
    }
    args[i] = "--benchmark_out_format=json";
    args[i + 1] = "--benchmark_out=" + args[i + 1];
    ++i;
  }
  std::vector<char*> argp;
  for (std::string& a : args) argp.push_back(a.data());
  int argn = static_cast<int>(argp.size());
  benchmark::Initialize(&argn, argp.data());
  if (benchmark::ReportUnrecognizedArguments(argn, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dkg::bench
