// Shared main() body for the google-benchmark binaries (E8/E9): translates
// the repo-wide `--json <path>` flag into benchmark's JSON file reporter so
// every bench binary shares one metrics-emission interface.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dkg::bench {

inline int run_gbench_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--json=", 0) == 0 && args[i].size() > 7) {
      args.insert(args.begin() + i + 1, "--benchmark_out=" + args[i].substr(7));
      args[i] = "--benchmark_out_format=json";
      ++i;
      continue;
    }
    if (args[i] != "--json") continue;
    if (i + 1 >= args.size()) {
      std::fprintf(stderr, "bench: --json requires a path argument\n");
      return 1;
    }
    args[i] = "--benchmark_out_format=json";
    args[i + 1] = "--benchmark_out=" + args[i + 1];
    ++i;
  }
  std::vector<char*> argp;
  for (std::string& a : args) argp.push_back(a.data());
  int argn = static_cast<int>(argp.size());
  benchmark::Initialize(&argn, argp.data());
  if (benchmark::ReportUnrecognizedArguments(argn, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dkg::bench
