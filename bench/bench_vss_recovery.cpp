// E3 — HybridVSS with crashes and recoveries (paper §3):
//   "the recovery mechanism requires O(n^2) messages from the recovering
//    node and O(n) messages from each helper node. With ... the number of
//    recoveries bounded by (t+1) d(kappa), the total message and
//    communication complexity ... are O(t d n^2) and O(kappa t d n^3)."
// We sweep the number of crash/recover cycles d at fixed (n, t, f) and show
// traffic growing ~linearly in d on top of the crash-free baseline.
#include "bench_util.hpp"

#include "crypto/lagrange.hpp"

using namespace dkg;

namespace {

bench::VssRunResult run_with_recoveries(std::size_t n, std::size_t t, std::size_t f,
                                        std::size_t d, std::uint64_t seed) {
  const crypto::Group& grp = crypto::Group::tiny256();
  vss::VssParams params;
  params.grp = &grp;
  params.n = n;
  params.t = t;
  params.f = f;
  params.d_kappa = d + 1;
  sim::Simulator sim(n, std::make_unique<sim::UniformDelay>(5, 40), seed);
  for (sim::NodeId i = 1; i <= n; ++i) sim.set_node(i, std::make_unique<vss::VssNode>(params, i));
  vss::SessionId sid{1, 1};
  crypto::Drbg rng(seed);
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(grp, rng)), 0);
  // d crash/recover cycles spread over distinct non-dealer nodes, at most f
  // concurrent (here: strictly sequential windows).
  sim::Time at = 10;
  for (std::size_t k = 0; k < d; ++k) {
    sim::NodeId victim = static_cast<sim::NodeId>(2 + (k % (n - 1)));
    sim.schedule_crash(victim, at);
    sim.schedule_recover(victim, at + 300);
    sim.post_operator(victim, std::make_shared<vss::RecoverOp>(sid), at + 310);
    at += 400;
  }
  bench::VssRunResult res;
  res.all_shared = sim.run();
  for (sim::NodeId i = 1; i <= n; ++i) {
    auto& node = dynamic_cast<vss::VssNode&>(sim.node(i));
    res.all_shared = res.all_shared && node.has_instance(sid) && node.instance(sid).has_shared();
  }
  res.messages = sim.metrics().total_messages();
  res.bytes = sim.metrics().total_bytes();
  res.completion_time = sim.now();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_vss_recovery", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E3  HybridVSS under crash/recovery cycles",
                      "O(t d n^2) messages, O(kappa t d n^3) bits  [Sec 3]");
  const std::size_t n = 13, t = 3, f = 1;  // 13 >= 3*3 + 2*1 + 1
  std::printf("n=%zu t=%zu f=%zu; one sharing, d sequential crash+recover cycles\n\n", n, t, f);
  std::printf("%4s %10s %14s %12s %14s %10s\n", "d", "messages", "bytes", "extra-msgs",
              "extra-bytes", "complete");
  std::uint64_t base_msgs = 0, base_bytes = 0;
  for (std::size_t d : {0, 1, 2, 4, 6, 8}) {
    bench::VssRunResult r = run_with_recoveries(n, t, f, d, 99 + d);
    if (d == 0) {
      base_msgs = r.messages;
      base_bytes = r.bytes;
    }
    json.add(bench::MetricRow("d=" + std::to_string(d))
                 .set("d", d)
                 .set("n", n)
                 .set("t", t)
                 .set("messages", r.messages)
                 .set("bytes", r.bytes)
                 .set("extra_messages", static_cast<std::int64_t>(r.messages - base_msgs))
                 .set("extra_bytes", static_cast<std::int64_t>(r.bytes - base_bytes))
                 .set("completion_time", r.completion_time)
                 .set("ok", r.all_shared));
    std::printf("%4zu %10llu %14llu %12lld %14lld %10s\n", d,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<long long>(r.messages - base_msgs),
                static_cast<long long>(r.bytes - base_bytes), r.all_shared ? "yes" : "NO");
  }
  std::printf("\nshape check: extra traffic grows ~linearly in d (each recovery costs\n"
              "O(n) help requests plus bounded B-set replays from n helpers).\n");
  return json.flush() ? 0 : 1;
}
