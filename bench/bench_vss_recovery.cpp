// E3 — HybridVSS with crashes and recoveries (paper §3):
//   "the recovery mechanism requires O(n^2) messages from the recovering
//    node and O(n) messages from each helper node. With ... the number of
//    recoveries bounded by (t+1) d(kappa), the total message and
//    communication complexity ... are O(t d n^2) and O(kappa t d n^3)."
// We sweep the number of crash/recover cycles d at fixed (n, t, f) and show
// traffic growing ~linearly in d on top of the crash-free baseline.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_vss_recovery", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E3  HybridVSS under crash/recovery cycles",
                      "O(t d n^2) messages, O(kappa t d n^3) bits  [Sec 3]");
  const std::size_t n = 13, t = 3, f = 1;  // 13 >= 3*3 + 2*1 + 1
  std::printf("n=%zu t=%zu f=%zu; one sharing, d sequential crash+recover cycles\n\n", n, t, f);
  engine::SweepDriver driver;
  driver.add_axis(std::vector<std::size_t>{0, 1, 2, 4, 6, 8}, [&](std::size_t d) {
    engine::ScenarioSpec spec;
    spec.label = "d=" + std::to_string(d);
    spec.variant = engine::Variant::HybridVss;
    spec.n = n;
    spec.t = t;
    spec.f = f;
    spec.d_kappa = d + 1;
    spec.seed = 99 + d;
    spec.delay_lo = 5;
    spec.delay_hi = 40;
    // d crash/recover cycles spread over distinct non-dealer nodes, at most
    // f concurrent (here: strictly sequential windows); each recovery is
    // followed by a RecoverOp so the node replays the help flow.
    spec.post_recover_op = true;
    sim::Time at = 10;
    for (std::size_t k = 0; k < d; ++k) {
      sim::NodeId victim = static_cast<sim::NodeId>(2 + (k % (n - 1)));
      spec.crashes.push_back({victim, at, at + 300});
      at += 400;
    }
    return spec;
  });
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%4s %10s %14s %12s %14s %10s\n", "d", "messages", "bytes", "extra-msgs",
              "extra-bytes", "complete");
  const std::uint64_t base_msgs = results[0].messages;
  const std::uint64_t base_bytes = results[0].bytes;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& r = results[i];
    std::size_t d = spec.d_kappa - 1;
    bench::MetricRow row(spec.label);
    row.set("d", d)
        .set("n", spec.n)
        .set("t", spec.t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("extra_messages", static_cast<std::int64_t>(r.messages - base_msgs))
        .set("extra_bytes", static_cast<std::int64_t>(r.bytes - base_bytes))
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%4zu %10llu %14llu %12lld %14lld %10s\n", d,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<long long>(r.messages - base_msgs),
                static_cast<long long>(r.bytes - base_bytes), r.ok ? "yes" : "NO");
  }
  std::printf("\nshape check: extra traffic grows ~linearly in d (each recovery costs\n"
              "O(n) help requests plus bounded B-set replays from n helpers).\n");
  return bench::finish(json, results);
}
