// Shared helpers for the experiment benches: table formatting and compact
// protocol-run drivers. Each bench binary regenerates one "table" from the
// paper's efficiency analysis (see DESIGN.md §3 and EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dkg/runner.hpp"
#include "vss/hybridvss.hpp"

namespace dkg::bench {

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

struct VssRunResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  sim::Time completion_time = 0;
  bool all_shared = false;
};

/// Runs one HybridVSS sharing among n nodes and returns traffic totals.
inline VssRunResult run_vss_once(const crypto::Group& grp, std::size_t n, std::size_t t,
                                 std::size_t f, vss::CommitmentMode mode, std::uint64_t seed) {
  vss::VssParams params;
  params.grp = &grp;
  params.n = n;
  params.t = t;
  params.f = f;
  params.mode = mode;
  sim::Simulator sim(n, std::make_unique<sim::UniformDelay>(5, 40), seed);
  for (sim::NodeId i = 1; i <= n; ++i) sim.set_node(i, std::make_unique<vss::VssNode>(params, i));
  vss::SessionId sid{1, 1};
  crypto::Drbg rng(seed);
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(grp, rng)), 0);
  VssRunResult res;
  res.all_shared = sim.run();
  for (sim::NodeId i = 1; i <= n; ++i) {
    auto& node = dynamic_cast<vss::VssNode&>(sim.node(i));
    res.all_shared = res.all_shared && node.has_instance(sid) && node.instance(sid).has_shared();
  }
  res.messages = sim.metrics().total_messages();
  res.bytes = sim.metrics().total_bytes();
  res.completion_time = sim.now();
  return res;
}

struct DkgRunResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t vss_messages = 0;
  std::uint64_t vss_bytes = 0;
  std::uint64_t agreement_messages = 0;
  std::uint64_t agreement_bytes = 0;
  std::uint64_t lead_ch = 0;
  std::uint64_t final_view = 1;
  sim::Time completion_time = 0;
  bool ok = false;
};

inline DkgRunResult summarize(core::DkgRunner& runner) {
  DkgRunResult res;
  const sim::Metrics& m = runner.simulator().metrics();
  res.messages = m.total_messages();
  res.bytes = m.total_bytes();
  sim::TypeStats vs = m.by_prefix("vss.");
  res.vss_messages = vs.count;
  res.vss_bytes = vs.bytes;
  sim::TypeStats ds = m.by_prefix("dkg.");
  res.agreement_messages = ds.count;
  res.agreement_bytes = ds.bytes;
  res.lead_ch = m.by_prefix("dkg.lead-ch").count;
  res.completion_time = runner.simulator().now();
  for (sim::NodeId id : runner.completed_nodes()) {
    res.final_view = std::max(res.final_view, runner.dkg_node(id).output().view);
  }
  return res;
}

}  // namespace dkg::bench
