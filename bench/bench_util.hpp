// Shared helpers for the experiment benches: table formatting, the bridge
// from engine::ScenarioResult to metric rows, and the machine-readable JSON
// emitter behind the `--json <path>` / `--jobs <N>` flags every bench
// binary accepts. Each bench binary regenerates one experiment from the
// paper's efficiency analysis as a declarative ScenarioSpec grid executed
// by engine::SweepDriver; the bench -> paper-claim map lives in
// EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "crypto/group.hpp"
#include "engine/sweep.hpp"
#include "engine/verify_pool.hpp"

namespace dkg::bench {

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

// --- JSON metrics emission -------------------------------------------------
//
// Every bench binary accepts `--json <path>`; when given, it writes one JSON
// object holding the bench name and the same rows the human table prints
// (messages / bytes / completion-time per configuration). The driver scripts
// collect these as BENCH_<name>.json trajectory points.

/// Escapes a string for embedding in a JSON document (adds the quotes).
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

/// One row of a bench table, rendered as a flat JSON object.
class MetricRow {
 public:
  explicit MetricRow(std::string name) { str("name", std::move(name)); }

  MetricRow& set(const std::string& key, double v) {
    if (!std::isfinite(v)) return raw(key, "null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(key, buf);
  }
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  MetricRow& set(const std::string& key, T v) {
    return raw(key, std::to_string(v));
  }
  MetricRow& set(const std::string& key, bool v) { return raw(key, v ? "true" : "false"); }
  // String values go through str(); without this a literal would silently
  // bind to the bool overload and emit `true`.
  MetricRow& set(const std::string& key, const char* v) = delete;
  MetricRow& str(const std::string& key, const std::string& v) {
    return raw(key, json_quote(v));
  }

  std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(entries_[i].first) + ": " + entries_[i].second;
    }
    return out + "}";
  }

 private:
  MetricRow& raw(const std::string& key, std::string rendered) {
    entries_.emplace_back(key, std::move(rendered));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Renders the full metrics document for one bench run.
inline std::string emit_json(const std::string& name, const std::vector<MetricRow>& rows) {
  std::string out = "{\n  \"bench\": " + json_quote(name) + ",\n  \"schema\": 1,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "    " + rows[i].render();
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  return out + "  ]\n}\n";
}

/// Collects rows during a bench run and writes them to the `--json <path>`
/// destination (if any) when flushed or destroyed. Also owns the sweep
/// command line: `--jobs <N>` picks the SweepDriver thread count (default
/// 0 = hardware_concurrency; simulated metrics are identical either way).
class JsonEmitter {
 public:
  JsonEmitter(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        if (i + 1 < argc) {
          path_ = argv[++i];
        } else {
          std::fprintf(stderr, "bench: --json requires a path argument\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--json=", 0) == 0 && arg.size() > 7) {
        path_ = arg.substr(7);
      } else if (arg == "--jobs") {
        if (i + 1 < argc) {
          parse_jobs(argv[++i]);
        } else {
          std::fprintf(stderr, "bench: --jobs requires a count argument\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--jobs=", 0) == 0 && arg.size() > 7) {
        parse_jobs(arg.substr(7));
      } else if (arg == "--verify-jobs") {
        if (i + 1 < argc) {
          parse_verify_jobs(argv[++i]);
        } else {
          std::fprintf(stderr, "bench: --verify-jobs requires a count argument\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--verify-jobs=", 0) == 0 && arg.size() > 14) {
        parse_verify_jobs(arg.substr(14));
      } else if (arg == "--adversary") {
        if (i + 1 < argc) {
          parse_adversary(argv[++i]);
        } else {
          std::fprintf(stderr, "bench: --adversary requires a strategy name\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--adversary=", 0) == 0 && arg.size() > 12) {
        parse_adversary(arg.substr(12));
      } else if (arg == "--backend") {
        if (i + 1 < argc) {
          parse_backend(argv[++i]);
        } else {
          std::fprintf(stderr, "bench: --backend requires a backend name\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--backend=", 0) == 0 && arg.size() > 10) {
        parse_backend(arg.substr(10));
      } else {
        std::fprintf(stderr, "bench: unrecognized argument: %s\n", arg.c_str());
        arg_error_ = true;
      }
    }
  }
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;
  ~JsonEmitter() {
    if (needs_flush_) flush();
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  /// SweepDriver thread count from `--jobs N` (0 = hardware_concurrency).
  unsigned jobs() const { return jobs_; }
  /// Verify-pool thread cap from `--verify-jobs N` (0 = cooperative auto:
  /// hardware threads left over after the SweepDriver claims `jobs()`).
  unsigned verify_jobs() const { return verify_jobs_; }
  /// Sizes the process-wide VerifyPool for this bench run: an explicit
  /// `--verify-jobs N` wins; otherwise the pool takes the cores the sweep
  /// leaves idle (1 on saturated sweeps — intra-scenario parallelism only
  /// pays when cores outnumber concurrent scenarios). Simulated metrics are
  /// bit-identical for every value; only cpu_ms moves.
  void configure_verify_pool() const {
    unsigned jobs = verify_jobs_ != 0 ? verify_jobs_
                                      : engine::VerifyPool::cooperative_jobs(jobs_);
    engine::VerifyPool::instance().configure(jobs);
  }
  /// The `--adversary NAME` axis: stamps the named strategy onto every
  /// expanded spec of the sweep, so any bench grid reruns under any
  /// adversary (labels gain " adv=NAME" so rows never collide with the
  /// honest baseline's). No flag / "none" leaves the sweep untouched —
  /// including derived_seed, so recorded baselines stay bit-identical.
  void apply_adversary(engine::SweepDriver& driver) const {
    if (!adversary_ || *adversary_ == engine::AdversaryKind::None) return;
    const std::string tag = engine::adversary_name(*adversary_);
    for (engine::ScenarioSpec& spec : driver.mutable_specs()) {
      spec.adversary.kind = *adversary_;
      spec.label += " adv=" + tag;
    }
  }

  /// The target group of `--backend NAME`, or nullptr when the flag is
  /// absent (grids run on their native groups).
  const crypto::Group* backend() const { return backend_; }
  /// The `--backend ec256` axis: re-runs any bench grid on another crypto
  /// backend by remapping every expanded spec's group in place. The remap
  /// is count- and order-preserving — the bench tables index results
  /// positionally (pairs, triples, section offsets) — so a spec that lands
  /// on an already-present grid point (e.g. E4's mod1024 rows collapsing
  /// onto the tiny256 rows' (mode, n) coordinates) is kept and marked with
  /// its origin group rather than dropped. Labels swap the native group
  /// name for the backend's (or append it), so the remapped rows never
  /// collide with the native series' recorded baselines. No flag leaves the
  /// sweep untouched — labels, groups and derived seeds included, so the
  /// committed mod-p baselines stay bit-identical.
  void apply_backend(engine::SweepDriver& driver) const {
    if (backend_ == nullptr) return;
    std::set<std::string> seen;
    for (engine::ScenarioSpec& spec : driver.mutable_specs()) {
      const std::string old_name = spec.grp->name();
      std::string label = spec.label;
      std::size_t at = label.find(old_name);
      if (at != std::string::npos) {
        label.replace(at, old_name.size(), backend_->name());
      } else {
        label += " " + backend_->name();
      }
      if (!seen.insert(label).second) label += " [was " + old_name + "]";
      spec.grp = backend_;
      spec.label = std::move(label);
    }
  }

  /// False after a malformed command line; mains should bail out before
  /// running the workload: `if (!json.args_ok()) return 1;`.
  bool args_ok() const { return !arg_error_; }
  void add(MetricRow row) {
    rows_.push_back(std::move(row));
    needs_flush_ = true;
  }

  /// Writes the document; safe to call repeatedly (later rows rewrite it).
  /// Returns false on a malformed --json flag or a failed write, so bench
  /// mains can end with `return json.flush() ? 0 : 1;`.
  bool flush() {
    needs_flush_ = false;
    if (arg_error_) return false;
    if (!enabled()) return true;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n", path_.c_str());
      return false;
    }
    out << emit_json(bench_name_, rows_);
    return static_cast<bool>(out);
  }

 private:
  void parse_jobs(const std::string& v) {
    char* end = nullptr;
    // strtoul silently wraps a leading '-', so reject it explicitly.
    unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
      std::fprintf(stderr, "bench: --jobs wants a non-negative integer, got: %s\n", v.c_str());
      arg_error_ = true;
      return;
    }
    // 0 is the documented "use hardware_concurrency" default.
    jobs_ = static_cast<unsigned>(parsed);
  }

  void parse_verify_jobs(const std::string& v) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0') {
      std::fprintf(stderr, "bench: --verify-jobs wants a non-negative integer, got: %s\n",
                   v.c_str());
      arg_error_ = true;
      return;
    }
    // 0 is the documented "cooperative auto" default.
    verify_jobs_ = static_cast<unsigned>(parsed);
  }

  void parse_adversary(const std::string& v) {
    std::optional<engine::AdversaryKind> kind = engine::adversary_from_name(v);
    if (!kind) {
      std::string names = "none";
      for (engine::AdversaryKind k : engine::all_adversary_kinds()) {
        names += std::string(", ") + engine::adversary_name(k);
      }
      std::fprintf(stderr, "bench: unknown --adversary %s (one of: %s)\n", v.c_str(),
                   names.c_str());
      arg_error_ = true;
      return;
    }
    adversary_ = *kind;
  }

  void parse_backend(const std::string& v) {
    if (v == "ec256") {
      backend_ = &crypto::Group::ec256();
    } else if (v == "modp" || v == "none") {
      backend_ = nullptr;  // explicit default: grids keep their native groups
    } else {
      std::fprintf(stderr, "bench: unknown --backend %s (one of: ec256, modp)\n", v.c_str());
      arg_error_ = true;
    }
  }

  std::string bench_name_;
  std::string path_;
  const crypto::Group* backend_ = nullptr;
  std::optional<engine::AdversaryKind> adversary_;
  unsigned jobs_ = 0;
  unsigned verify_jobs_ = 0;
  bool arg_error_ = false;
  bool needs_flush_ = false;
  std::vector<MetricRow> rows_;
};

// --- engine bridge ---------------------------------------------------------

/// Appends the engine-level fields every bench record must carry: the
/// measured per-scenario CPU wall-clock and the completion flag (the
/// event-budget bugfix — incomplete runs are marked, and finish() turns
/// them into a non-zero exit).
inline MetricRow& add_engine_fields(MetricRow& row, const engine::ScenarioResult& r) {
  return row.set("cpu_ms", r.cpu_ms).set("completed", r.completed);
}

/// Same, for rows that combine several scenarios (paired/contrast tables):
/// cpu_ms is the sum, completed the conjunction.
inline MetricRow& add_engine_fields(MetricRow& row,
                                    std::initializer_list<const engine::ScenarioResult*> rs) {
  double cpu_ms = 0;
  bool completed = true;
  for (const engine::ScenarioResult* r : rs) {
    cpu_ms += r->cpu_ms;
    completed = completed && r->completed;
  }
  return row.set("cpu_ms", cpu_ms).set("completed", completed);
}

/// Common bench epilogue: flushes the JSON document and exits non-zero if
/// any scenario blew its event budget (the metrics are still emitted, with
/// `completed: false` on the affected rows).
inline int finish(JsonEmitter& json, const std::vector<engine::ScenarioResult>& results) {
  std::size_t incomplete = 0;
  for (const engine::ScenarioResult& r : results) {
    if (!r.completed) ++incomplete;
  }
  if (incomplete != 0) {
    std::fprintf(stderr, "bench: %zu scenario(s) did not complete within their event budget\n",
                 incomplete);
  }
  bool flushed = json.flush();
  return (flushed && incomplete == 0) ? 0 : 1;
}

}  // namespace dkg::bench
