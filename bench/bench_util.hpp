// Shared helpers for the experiment benches: table formatting, compact
// protocol-run drivers, and the machine-readable JSON emitter behind the
// `--json <path>` flag every bench binary accepts. Each bench binary
// regenerates one experiment from the paper's efficiency analysis; the
// bench -> paper-claim map lives in EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dkg/runner.hpp"
#include "vss/hybridvss.hpp"

namespace dkg::bench {

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

struct VssRunResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  sim::Time completion_time = 0;
  bool all_shared = false;
};

/// Runs one HybridVSS sharing among n nodes and returns traffic totals.
inline VssRunResult run_vss_once(const crypto::Group& grp, std::size_t n, std::size_t t,
                                 std::size_t f, vss::CommitmentMode mode, std::uint64_t seed) {
  vss::VssParams params;
  params.grp = &grp;
  params.n = n;
  params.t = t;
  params.f = f;
  params.mode = mode;
  sim::Simulator sim(n, std::make_unique<sim::UniformDelay>(5, 40), seed);
  for (sim::NodeId i = 1; i <= n; ++i) sim.set_node(i, std::make_unique<vss::VssNode>(params, i));
  vss::SessionId sid{1, 1};
  crypto::Drbg rng(seed);
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(grp, rng)), 0);
  VssRunResult res;
  res.all_shared = sim.run();
  for (sim::NodeId i = 1; i <= n; ++i) {
    auto& node = dynamic_cast<vss::VssNode&>(sim.node(i));
    res.all_shared = res.all_shared && node.has_instance(sid) && node.instance(sid).has_shared();
  }
  res.messages = sim.metrics().total_messages();
  res.bytes = sim.metrics().total_bytes();
  res.completion_time = sim.now();
  return res;
}

struct DkgRunResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t vss_messages = 0;
  std::uint64_t vss_bytes = 0;
  std::uint64_t agreement_messages = 0;
  std::uint64_t agreement_bytes = 0;
  std::uint64_t lead_ch = 0;
  std::uint64_t final_view = 1;
  sim::Time completion_time = 0;
  bool ok = false;
};

inline DkgRunResult summarize(core::DkgRunner& runner) {
  DkgRunResult res;
  const sim::Metrics& m = runner.simulator().metrics();
  res.messages = m.total_messages();
  res.bytes = m.total_bytes();
  sim::TypeStats vs = m.by_prefix("vss.");
  res.vss_messages = vs.count;
  res.vss_bytes = vs.bytes;
  sim::TypeStats ds = m.by_prefix("dkg.");
  res.agreement_messages = ds.count;
  res.agreement_bytes = ds.bytes;
  res.lead_ch = m.by_prefix("dkg.lead-ch").count;
  res.completion_time = runner.simulator().now();
  for (sim::NodeId id : runner.completed_nodes()) {
    res.final_view = std::max(res.final_view, runner.dkg_node(id).output().view);
  }
  return res;
}

// --- JSON metrics emission -------------------------------------------------
//
// Every bench binary accepts `--json <path>`; when given, it writes one JSON
// object holding the bench name and the same rows the human table prints
// (messages / bytes / completion-time per configuration). The driver scripts
// collect these as BENCH_<name>.json trajectory points.

/// Escapes a string for embedding in a JSON document (adds the quotes).
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

/// One row of a bench table, rendered as a flat JSON object.
class MetricRow {
 public:
  explicit MetricRow(std::string name) { str("name", std::move(name)); }

  MetricRow& set(const std::string& key, double v) {
    if (!std::isfinite(v)) return raw(key, "null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(key, buf);
  }
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  MetricRow& set(const std::string& key, T v) {
    return raw(key, std::to_string(v));
  }
  MetricRow& set(const std::string& key, bool v) { return raw(key, v ? "true" : "false"); }
  // String values go through str(); without this a literal would silently
  // bind to the bool overload and emit `true`.
  MetricRow& set(const std::string& key, const char* v) = delete;
  MetricRow& str(const std::string& key, const std::string& v) {
    return raw(key, json_quote(v));
  }

  std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(entries_[i].first) + ": " + entries_[i].second;
    }
    return out + "}";
  }

 private:
  MetricRow& raw(const std::string& key, std::string rendered) {
    entries_.emplace_back(key, std::move(rendered));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Renders the full metrics document for one bench run.
inline std::string emit_json(const std::string& name, const std::vector<MetricRow>& rows) {
  std::string out = "{\n  \"bench\": " + json_quote(name) + ",\n  \"schema\": 1,\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "    " + rows[i].render();
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  return out + "  ]\n}\n";
}

/// Collects rows during a bench run and writes them to the `--json <path>`
/// destination (if any) when flushed or destroyed.
class JsonEmitter {
 public:
  JsonEmitter(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        if (i + 1 < argc) {
          path_ = argv[++i];
        } else {
          std::fprintf(stderr, "bench: --json requires a path argument\n");
          arg_error_ = true;
        }
      } else if (arg.rfind("--json=", 0) == 0 && arg.size() > 7) {
        path_ = arg.substr(7);
      } else {
        std::fprintf(stderr, "bench: unrecognized argument: %s\n", arg.c_str());
        arg_error_ = true;
      }
    }
  }
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;
  ~JsonEmitter() {
    if (needs_flush_) flush();
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  /// False after a malformed command line; mains should bail out before
  /// running the workload: `if (!json.args_ok()) return 1;`.
  bool args_ok() const { return !arg_error_; }
  void add(MetricRow row) {
    rows_.push_back(std::move(row));
    needs_flush_ = true;
  }

  /// Writes the document; safe to call repeatedly (later rows rewrite it).
  /// Returns false on a malformed --json flag or a failed write, so bench
  /// mains can end with `return json.flush() ? 0 : 1;`.
  bool flush() {
    needs_flush_ = false;
    if (arg_error_) return false;
    if (!enabled()) return true;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n", path_.c_str());
      return false;
    }
    out << emit_json(bench_name_, rows_);
    return static_cast<bool>(out);
  }

 private:
  std::string bench_name_;
  std::string path_;
  bool arg_error_ = false;
  bool needs_flush_ = false;
  std::vector<MetricRow> rows_;
};

}  // namespace dkg::bench
