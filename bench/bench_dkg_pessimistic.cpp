// E5 — DKG pessimistic phase (paper §4, Efficiency):
//   "the total number of leader changes is bounded by O(d). Each leader
//    change involves O(t d n^2) messages ... in the worst case
//    O(t d n^2 (n + d)) messages."
// We crash the first k leaders-in-order before they can propose and measure
// the added traffic, lead-ch volume, final view and completion time — each
// extra faulty leader should add roughly one more O(n^2) leader change plus
// a timeout.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_dkg_pessimistic", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E5  DKG pessimistic phase: consecutive faulty leaders",
                      "O(d) leader changes, O(n^2) messages each; worst case "
                      "O(t d n^2 (n+d)) msgs  [Sec 4]");
  const std::size_t n = 10, t = 2, f = 1;
  std::printf("n=%zu t=%zu f=%zu; first k leaders crash before proposing\n\n", n, t, f);
  // k is capped at n - (n-t-f) = t + f: beyond that fewer than the n-t-f
  // completion quorum remain alive and no protocol can finish.
  engine::SweepDriver driver;
  driver.add_axis(std::vector<std::size_t>{0, 1, 2, 3}, [&](std::size_t k) {
    engine::ScenarioSpec spec;
    spec.label = "k=" + std::to_string(k);
    spec.variant = engine::Variant::Dkg;
    spec.n = n;
    spec.t = t;
    spec.f = f;
    spec.seed = 2000 + k;
    spec.timeout_base = 4'000;
    for (std::size_t j = 0; j < k; ++j) {
      spec.crashes.push_back({static_cast<sim::NodeId>(j + 1), 0, 0});
    }
    spec.min_outputs = n - std::max(f, k);
    return spec;
  });
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%10s %10s %14s %10s %10s %12s\n", "k-faulty", "msgs", "bytes", "lead-ch",
              "final-view", "sim-time");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::ScenarioResult& r = results[i];
    std::size_t k = driver.specs()[i].crashes.size();
    bench::MetricRow row(driver.specs()[i].label);
    row.set("k_faulty", k)
        .set("n", n)
        .set("t", t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("lead_changes", r.extra_u64("lead_changes"))
        .set("final_view", r.extra_u64("final_view", 1))
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%10zu %10llu %14llu %10llu %10llu %12llu%s\n", k,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.extra_u64("lead_changes")),
                static_cast<unsigned long long>(r.extra_u64("final_view", 1)),
                static_cast<unsigned long long>(r.completion_time),
                r.completed ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: final view grows with k (one change per faulty leader);\n"
              "lead-ch traffic grows ~linearly in k; completion time grows with the\n"
              "timeout escalation but the protocol always completes.\n");
  return bench::finish(json, results);
}
