// E5 — DKG pessimistic phase (paper §4, Efficiency):
//   "the total number of leader changes is bounded by O(d). Each leader
//    change involves O(t d n^2) messages ... in the worst case
//    O(t d n^2 (n + d)) messages."
// We crash the first k leaders-in-order before they can propose and measure
// the added traffic, lead-ch volume, final view and completion time — each
// extra faulty leader should add roughly one more O(n^2) leader change plus
// a timeout.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_dkg_pessimistic", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E5  DKG pessimistic phase: consecutive faulty leaders",
                      "O(d) leader changes, O(n^2) messages each; worst case "
                      "O(t d n^2 (n+d)) msgs  [Sec 4]");
  const std::size_t n = 10, t = 2, f = 1;
  std::printf("n=%zu t=%zu f=%zu; first k leaders crash before proposing\n\n", n, t, f);
  std::printf("%10s %10s %14s %10s %10s %12s\n", "k-faulty", "msgs", "bytes", "lead-ch",
              "final-view", "sim-time");
  // k is capped at n - (n-t-f) = t + f: beyond that fewer than the n-t-f
  // completion quorum remain alive and no protocol can finish.
  for (std::size_t k : {0, 1, 2, 3}) {
    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = f;
    cfg.seed = 2000 + k;
    cfg.timeout_base = 4'000;
    core::DkgRunner runner(cfg);
    for (std::size_t j = 0; j < k; ++j) {
      runner.simulator().schedule_crash(static_cast<sim::NodeId>(j + 1), 0);
    }
    runner.start_all();
    bool ok = runner.run_to_completion(n - std::max(f, k));
    bench::DkgRunResult r = bench::summarize(runner);
    json.add(bench::MetricRow("k=" + std::to_string(k))
                 .set("k_faulty", k)
                 .set("n", n)
                 .set("t", t)
                 .set("messages", r.messages)
                 .set("bytes", r.bytes)
                 .set("lead_changes", r.lead_ch)
                 .set("final_view", r.final_view)
                 .set("completion_time", r.completion_time)
                 .set("ok", ok));
    std::printf("%10zu %10llu %14llu %10llu %10llu %12llu%s\n", k,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.lead_ch),
                static_cast<unsigned long long>(r.final_view),
                static_cast<unsigned long long>(r.completion_time),
                ok ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: final view grows with k (one change per faulty leader);\n"
              "lead-ch traffic grows ~linearly in k; completion time grows with the\n"
              "timeout escalation but the protocol always completes.\n");
  return json.flush() ? 0 : 1;
}
