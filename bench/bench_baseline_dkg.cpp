// E6c (supplement) — Asynchronous DKG vs synchronous baselines:
// Joint-Feldman [1] and Gennaro et al. [9] run in O(n^2) messages on a
// synchronous broadcast network; the paper's protocol pays O(n^3) to
// survive asynchrony, Byzantine leaders and crashes. This table quantifies
// that price (the paper's §1/§2 motivation made concrete).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_baseline_dkg", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E6c  Asynchronous DKG vs synchronous baselines",
                      "what the asynchronous/hybrid model costs over synchronous "
                      "broadcast-channel DKGs  [Sec 1, Sec 2]");
  // Triples per n: Joint-Feldman, Gennaro et al., then HybridDKG.
  engine::SweepDriver driver;
  for (std::size_t n : {4, 7, 10, 13, 16}) {
    engine::ScenarioSpec spec;
    spec.n = n;
    spec.t = (n - 1) / 3;
    spec.f = 0;
    spec.label = "jf n=" + std::to_string(n);
    spec.variant = engine::Variant::JointFeldman;
    spec.seed = 7000 + n;
    driver.add(spec);
    spec.label = "gjkr n=" + std::to_string(n);
    spec.variant = engine::Variant::Gennaro;
    spec.seed = 7100 + n;
    driver.add(spec);
    spec.label = "hdkg n=" + std::to_string(n);
    spec.variant = engine::Variant::Dkg;
    spec.seed = 7200 + n;
    driver.add(spec);
  }
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%4s %4s | %10s %12s | %10s %12s | %10s %12s\n", "n", "t", "jf-msgs", "jf-bytes",
              "gjkr-msgs", "gjkr-bytes", "hdkg-msgs", "hdkg-bytes");
  for (std::size_t i = 0; i + 2 < results.size(); i += 3) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& jf = results[i];
    const engine::ScenarioResult& gj = results[i + 1];
    const engine::ScenarioResult& hd = results[i + 2];
    bench::MetricRow row("n=" + std::to_string(spec.n));
    row.set("n", spec.n)
        .set("t", spec.t)
        .set("jf_messages", jf.messages)
        .set("jf_bytes", jf.bytes)
        .set("gjkr_messages", gj.messages)
        .set("gjkr_bytes", gj.bytes)
        .set("hdkg_messages", hd.messages)
        .set("hdkg_bytes", hd.bytes)
        .set("hdkg_completion_time", hd.completion_time)
        .set("ok", jf.ok && gj.ok && hd.ok);
    json.add(std::move(bench::add_engine_fields(row, {&jf, &gj, &hd})));
    std::printf("%4zu %4zu | %10llu %12llu | %10llu %12llu | %10llu %12llu\n", spec.n, spec.t,
                static_cast<unsigned long long>(jf.messages),
                static_cast<unsigned long long>(jf.bytes),
                static_cast<unsigned long long>(gj.messages),
                static_cast<unsigned long long>(gj.bytes),
                static_cast<unsigned long long>(hd.messages),
                static_cast<unsigned long long>(hd.bytes));
  }
  std::printf("\nshape check: baselines grow ~n^2 (broadcast counted as n unicasts);\n"
              "HybridDKG grows ~n^3 — the price of no synchrony, no broadcast channel,\n"
              "and tolerance to crashed leaders.\n");
  return bench::finish(json, results);
}
