// E6c (supplement) — Asynchronous DKG vs synchronous baselines:
// Joint-Feldman [1] and Gennaro et al. [9] run in O(n^2) messages on a
// synchronous broadcast network; the paper's protocol pays O(n^3) to
// survive asynchrony, Byzantine leaders and crashes. This table quantifies
// that price (the paper's §1/§2 motivation made concrete).
#include "bench_util.hpp"

#include "baseline/gennaro_dkg.hpp"
#include "baseline/joint_feldman.hpp"

using namespace dkg;

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_baseline_dkg", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E6c  Asynchronous DKG vs synchronous baselines",
                      "what the asynchronous/hybrid model costs over synchronous "
                      "broadcast-channel DKGs  [Sec 1, Sec 2]");
  std::printf("%4s %4s | %10s %12s | %10s %12s | %10s %12s\n", "n", "t", "jf-msgs", "jf-bytes",
              "gjkr-msgs", "gjkr-bytes", "hdkg-msgs", "hdkg-bytes");
  for (std::size_t n : {4, 7, 10, 13, 16}) {
    std::size_t t = (n - 1) / 3;

    baseline::JfParams jfp{&crypto::Group::tiny256(), n, t};
    baseline::SyncNetwork jf_net(n, 7000 + n);
    for (sim::NodeId i = 1; i <= n; ++i) {
      jf_net.set_node(i, std::make_unique<baseline::JointFeldmanNode>(
                             jfp, i, jf_net.rng().fork("jf/" + std::to_string(i))));
    }
    jf_net.run();

    baseline::GennaroParams gp{&crypto::Group::tiny256(), n, t};
    baseline::SyncNetwork gj_net(n, 7100 + n);
    for (sim::NodeId i = 1; i <= n; ++i) {
      gj_net.set_node(i, std::make_unique<baseline::GennaroNode>(
                             gp, i, gj_net.rng().fork("gjkr/" + std::to_string(i))));
    }
    gj_net.run();

    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = 0;
    cfg.seed = 7200 + n;
    core::DkgRunner runner(cfg);
    runner.start_all();
    bool ok = runner.run_to_completion();
    bench::DkgRunResult hd = bench::summarize(runner);

    json.add(bench::MetricRow("n=" + std::to_string(n))
                 .set("n", n)
                 .set("t", t)
                 .set("jf_messages", jf_net.metrics().total_messages())
                 .set("jf_bytes", jf_net.metrics().total_bytes())
                 .set("gjkr_messages", gj_net.metrics().total_messages())
                 .set("gjkr_bytes", gj_net.metrics().total_bytes())
                 .set("hdkg_messages", hd.messages)
                 .set("hdkg_bytes", hd.bytes)
                 .set("hdkg_completion_time", hd.completion_time)
                 .set("ok", ok));

    std::printf("%4zu %4zu | %10llu %12llu | %10llu %12llu | %10llu %12llu\n", n, t,
                static_cast<unsigned long long>(jf_net.metrics().total_messages()),
                static_cast<unsigned long long>(jf_net.metrics().total_bytes()),
                static_cast<unsigned long long>(gj_net.metrics().total_messages()),
                static_cast<unsigned long long>(gj_net.metrics().total_bytes()),
                static_cast<unsigned long long>(hd.messages),
                static_cast<unsigned long long>(hd.bytes));
  }
  std::printf("\nshape check: baselines grow ~n^2 (broadcast counted as n unicasts);\n"
              "HybridDKG grows ~n^3 — the price of no synchrony, no broadcast channel,\n"
              "and tolerance to crashed leaders.\n");
  return json.flush() ? 0 : 1;
}
