// E12 — Multi-exponentiation engine microbenches: naive powm-product vs
// Straus multiexp vs fixed-base comb tables, across all four parameter sets
// and thresholds t in {5, 10, 20}. These are the constants behind every
// verify-poly / verify-point in the paper's cost model (§3, §7): one
// verify-poly is (t+1) products of (t+1) exponentiations, so the per-series
// ratios here compound quadratically in the protocol layers above.
//
// The *VerifyPoly* pair measures the acceptance criterion for the engine:
// FeldmanMatrix::verify_poly at mod1024 / t = 10 against the naive
// independent-powm loop it replaced (>= 3x required).
//
// The *NoMont series are the Montgomery on/off axis: the same paths with
// the REDC working domain toggled off (multiexp_set_montgomery), so the
// ratio against their untagged twins isolates what REDC buys on top of the
// algorithmic wins. BM_MulMod{Plain,Mont} are the kernel-level pair — one
// modular multiplication, plain mpz_mul+mpz_mod vs one REDC pass. (The
// NoMont verify-poly still drives exp_g through whatever domain its cached
// comb table was built in; tables keep their build-time domain by design.)
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"
#include "crypto/feldman.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/multiexp.hpp"

using namespace dkg::crypto;

namespace {

// Indices 0-3 are the statically registered mod-p axis; 4 is the ec256
// backend, registered at runtime only under `--backend ec256` so a flagless
// run's benchmark name set (the committed baseline) is unchanged.
const Group& group_for(int idx) {
  switch (idx) {
    case 0: return Group::tiny256();
    case 1: return Group::small512();
    case 2: return Group::mod1024();
    case 4: return Group::ec256();
    default: return Group::big2048();
  }
}

std::string label_for(const Group& grp, std::size_t t) {
  return grp.name() + " t=" + std::to_string(t);
}

struct MultiexpFixture {
  std::vector<Element> bases;
  std::vector<Scalar> exps;

  MultiexpFixture(const Group& grp, std::size_t t, Drbg& rng) {
    for (std::size_t k = 0; k <= t; ++k) {
      bases.push_back(Element::exp_g(Scalar::random(grp, rng)));
      exps.push_back(Scalar::random(grp, rng));
    }
  }
};

// prod_k bases[k]^exps[k] as t+1 independent powms — the pre-engine shape.
Element naive_product(const Group& grp, const std::vector<Element>& bases,
                      const std::vector<Scalar>& exps) {
  Element acc = Element::identity(grp);
  for (std::size_t k = 0; k < bases.size(); ++k) acc *= bases[k].pow(exps[k]);
  return acc;
}

void BM_NaiveExpProduct(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(1);
  MultiexpFixture fx(grp, t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_product(grp, fx.bases, fx.exps));
  }
  state.SetLabel(label_for(grp, t));
}

void BM_Multiexp(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(1);
  MultiexpFixture fx(grp, t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiexp(grp, fx.bases, fx.exps));
  }
  state.SetLabel(label_for(grp, t));
}

void BM_MultiexpNoMont(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(1);
  MultiexpFixture fx(grp, t, rng);
  multiexp_set_montgomery(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiexp(grp, fx.bases, fx.exps));
  }
  multiexp_set_montgomery(true);
  state.SetLabel(label_for(grp, t));
}

void BM_MultiexpIndex(benchmark::State& state) {
  // The verify-poly shape: exponents are powers of a small node index, so
  // the Horner-in-the-exponent path applies.
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(1);
  MultiexpFixture fx(grp, t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiexp_index(grp, fx.bases, 3));
  }
  state.SetLabel(label_for(grp, t));
}

void BM_MultiexpIndexNoMont(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(1);
  MultiexpFixture fx(grp, t, rng);
  multiexp_set_montgomery(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiexp_index(grp, fx.bases, 3));
  }
  multiexp_set_montgomery(true);
  state.SetLabel(label_for(grp, t));
}

void BM_MulModPlain(benchmark::State& state) {
  // One modular multiplication the way the pre-REDC hot loops did it: a
  // full double-width product then a division-based mpz_mod.
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(5);
  mpz_class acc = powm(grp.g(), Scalar::random(grp, rng).value(), grp.p());
  mpz_class m = powm(grp.h(), Scalar::random(grp, rng).value(), grp.p());
  mpz_class tmp;
  for (auto _ : state) {
    mpz_mul(tmp.get_mpz_t(), acc.get_mpz_t(), m.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp.get_mpz_t(), grp.p().get_mpz_t());
    benchmark::DoNotOptimize(acc.get_mpz_t());
  }
  state.SetLabel(grp.name());
}

void BM_MulModMont(benchmark::State& state) {
  // The same multiplication as one REDC pass in the Montgomery domain (the
  // step every engine chain is made of).
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  const MontgomeryCtx& ctx = *grp.montgomery();
  Drbg rng(5);
  MontgomeryCtx::Mul mm(ctx);
  mm.acc_enter(powm(grp.g(), Scalar::random(grp, rng).value(), grp.p()));
  mpz_class m = ctx.to_mont(powm(grp.h(), Scalar::random(grp, rng).value(), grp.p()));
  for (auto _ : state) {
    mm.acc_mul(m);
  }
  mpz_class out;
  mm.acc_get(out);
  benchmark::DoNotOptimize(out.get_mpz_t());
  state.SetLabel(grp.name());
}

void BM_PowmG(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(2);
  Scalar x = Scalar::random(grp, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(powm(grp.g(), x.value(), grp.p()));
  }
  state.SetLabel(grp.name());
}

void BM_FixedBaseExpG(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  Drbg rng(2);
  Scalar x = Scalar::random(grp, rng);
  Element::exp_g(x);  // warm the table outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(Element::exp_g(x));
  }
  state.SetLabel(grp.name());
}

struct VerifyPolyFixture {
  BiPolynomial f;
  FeldmanMatrix c;
  Polynomial row;

  VerifyPolyFixture(const Group& grp, std::size_t t, Drbg& rng)
      : f(BiPolynomial::random(Scalar::random(grp, rng), t, rng)),
        c(FeldmanMatrix::commit(f)),
        row(f.row(3)) {}
};

// The seed implementation of verify_poly: independent powm per entry.
bool naive_verify_poly(const FeldmanMatrix& c, std::uint64_t i, const Polynomial& a) {
  const Group& grp = c.group();
  std::size_t t = c.degree();
  Scalar x = Scalar::from_u64(grp, i);
  std::vector<Scalar> ipow{Scalar::one(grp)};
  for (std::size_t j = 1; j <= t; ++j) ipow.push_back(ipow.back() * x);
  for (std::size_t l = 0; l <= t; ++l) {
    Element rhs = Element::identity(grp);
    for (std::size_t j = 0; j <= t; ++j) rhs *= c.entry(j, l).pow(ipow[j]);
    if (Element::generator(grp).pow(a.coeff(l).reveal()) != rhs) return false;
  }
  return true;
}

void BM_VerifyPolyNaive(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(3);
  VerifyPolyFixture fx(grp, t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_verify_poly(fx.c, 3, fx.row));
  }
  state.SetLabel(label_for(grp, t));
}

void BM_VerifyPolyMultiexp(benchmark::State& state) {
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(3);
  VerifyPolyFixture fx(grp, t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.c.verify_poly(3, fx.row));
  }
  state.SetLabel(label_for(grp, t));
}

void BM_VerifyPolyMultiexpNoMont(benchmark::State& state) {
  // verify_poly with the REDC engine toggled off — the PR 3 multiexp shape.
  const Group& grp = group_for(static_cast<int>(state.range(0)));
  std::size_t t = static_cast<std::size_t>(state.range(1));
  Drbg rng(3);
  VerifyPolyFixture fx(grp, t, rng);
  multiexp_set_montgomery(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.c.verify_poly(3, fx.row));
  }
  multiexp_set_montgomery(true);
  state.SetLabel(label_for(grp, t));
}

void BM_VerifyPolyBatch(benchmark::State& state) {
  // k dealings folded into one multi-exp vs k sequential verify_polys; the
  // per-dealing cost drops because all k(t+1)^2 terms share one squaring
  // chain. mod1024, t = 5 (the paper's kappa = 160 regime).
  const Group& grp = Group::mod1024();
  std::size_t k = static_cast<std::size_t>(state.range(0));
  std::size_t t = 5;
  Drbg rng(4);
  std::vector<VerifyPolyFixture> fx;
  for (std::size_t d = 0; d < k; ++d) fx.emplace_back(grp, t, rng);
  std::vector<RowCheck> checks;
  for (std::size_t d = 0; d < k; ++d) checks.push_back(RowCheck{&fx[d].c, 3, &fx[d].row});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Drbg batch_rng(seed++);
    benchmark::DoNotOptimize(verify_poly_batch(checks, batch_rng));
  }
  state.SetLabel("mod1024 t=5 k=" + std::to_string(k));
}

}  // namespace

// Group axis: 0=tiny256, 1=small512, 2=mod1024, 3=big2048.
BENCHMARK(BM_PowmG)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FixedBaseExpG)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MulModPlain)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MulModMont)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NaiveExpProduct)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Multiexp)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultiexpNoMont)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultiexpIndex)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MultiexpIndexNoMont)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyPolyNaive)
    ->ArgsProduct({{0, 1, 2, 3}, {10}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyPolyMultiexp)
    ->ArgsProduct({{0, 1, 2, 3}, {10}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyPolyMultiexpNoMont)
    ->ArgsProduct({{0, 1, 2, 3}, {10}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VerifyPolyBatch)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  if (dkg::bench::consume_backend_flag(argc, argv) == "ec256") {
    // Element-level series only: the REDC/powm kernel pairs (BM_MulMod*,
    // BM_PowmG) and the *NoMont toggles measure the Montgomery machinery,
    // which the curve backend does not use.
    using benchmark::RegisterBenchmark;
    RegisterBenchmark("BM_FixedBaseExpG", BM_FixedBaseExpG)->Arg(4)->Unit(
        benchmark::kMicrosecond);
    RegisterBenchmark("BM_NaiveExpProduct", BM_NaiveExpProduct)
        ->ArgsProduct({{4}, {5, 10, 20}})
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_Multiexp", BM_Multiexp)
        ->ArgsProduct({{4}, {5, 10, 20}})
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_MultiexpIndex", BM_MultiexpIndex)
        ->ArgsProduct({{4}, {5, 10, 20}})
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_VerifyPolyNaive", BM_VerifyPolyNaive)
        ->ArgsProduct({{4}, {10}})
        ->Unit(benchmark::kMicrosecond);
    RegisterBenchmark("BM_VerifyPolyMultiexp", BM_VerifyPolyMultiexp)
        ->ArgsProduct({{4}, {10}})
        ->Unit(benchmark::kMicrosecond);
  }
  return dkg::bench::run_gbench_main(argc, argv);
}
