// E8 — Feldman vs Pedersen commitments (paper §1/§3 design choice):
//   "with simplicity and efficiency, Feldman's commitments form the basis
//    for many VSSs, including ours."
// google-benchmark microbenches of commit / verify-poly / verify-point for
// both schemes across thresholds t: Pedersen costs ~2x (second generator).
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"
#include "crypto/feldman.hpp"
#include "crypto/pedersen.hpp"

using namespace dkg::crypto;

namespace {

// small512 by default; `--backend ec256` reruns the whole suite on the
// curve backend (same benchmark names — the document lands in its own
// BENCH_commitments_ec256.json baseline).
const Group*& bench_group() {
  static const Group* g = &Group::small512();
  return g;
}
const Group& grp() { return *bench_group(); }

struct FeldmanFixtureData {
  BiPolynomial f;
  FeldmanMatrix c;
  Polynomial row;
  Scalar point;

  explicit FeldmanFixtureData(std::size_t t, Drbg& rng)
      : f(BiPolynomial::random(Scalar::random(grp(), rng), t, rng)),
        c(FeldmanMatrix::commit(f)),
        row(f.row(3)),
        point(f.eval_at(5, 3).reveal()) {}
};

void BM_FeldmanCommit(benchmark::State& state) {
  Drbg rng(1);
  std::size_t t = static_cast<std::size_t>(state.range(0));
  BiPolynomial f = BiPolynomial::random(Scalar::random(grp(), rng), t, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FeldmanMatrix::commit(f));
  }
}

void BM_FeldmanVerifyPoly(benchmark::State& state) {
  Drbg rng(2);
  FeldmanFixtureData d(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.c.verify_poly(3, d.row));
  }
}

void BM_FeldmanVerifyPoint(benchmark::State& state) {
  Drbg rng(3);
  FeldmanFixtureData d(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.c.verify_point(3, 5, d.point));
  }
}

struct PedersenFixtureData {
  PedersenDealing d;
  PedersenMatrix c;
  Polynomial row, row_p;
  Scalar point, point_p;

  explicit PedersenFixtureData(std::size_t t, Drbg& rng)
      : d{BiPolynomial::random(Scalar::random(grp(), rng), t, rng),
          BiPolynomial::random(Scalar::random(grp(), rng), t, rng)},
        c(PedersenMatrix::commit(d)),
        row(d.f.row(3)),
        row_p(d.f_prime.row(3)),
        point(d.f.eval_at(5, 3).reveal()),
        point_p(d.f_prime.eval_at(5, 3).reveal()) {}
};

void BM_PedersenCommit(benchmark::State& state) {
  Drbg rng(4);
  std::size_t t = static_cast<std::size_t>(state.range(0));
  PedersenDealing d{BiPolynomial::random(Scalar::random(grp(), rng), t, rng),
                    BiPolynomial::random(Scalar::random(grp(), rng), t, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PedersenMatrix::commit(d));
  }
}

void BM_PedersenVerifyPoly(benchmark::State& state) {
  Drbg rng(5);
  PedersenFixtureData d(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.c.verify_poly(3, d.row, d.row_p));
  }
}

void BM_PedersenVerifyPoint(benchmark::State& state) {
  Drbg rng(6);
  PedersenFixtureData d(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.c.verify_point(3, 5, d.point, d.point_p));
  }
}

}  // namespace

BENCHMARK(BM_FeldmanCommit)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PedersenCommit)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FeldmanVerifyPoly)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PedersenVerifyPoly)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FeldmanVerifyPoint)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PedersenVerifyPoint)->Arg(1)->Arg(3)->Arg(5)->Arg(10)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  if (dkg::bench::consume_backend_flag(argc, argv) == "ec256") {
    bench_group() = &Group::ec256();
  }
  return dkg::bench::run_gbench_main(argc, argv);
}
