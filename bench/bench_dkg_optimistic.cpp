// E4 — DKG optimistic-phase complexity (paper §4, Efficiency):
//   "message and communication complexities of the n HybridVSS Sh protocols
//    in DKG are O(t d n^3) and O(kappa t d n^4) ... the [leader] broadcast
//    adds message complexity O(t d n^2) and communication O(kappa t d n^3).
//    As a result the optimal ... complexities for the DKG protocol are
//    O(t d n^3) and O(kappa t d n^4)."
// Honest-leader sweep over n; the table splits VSS-layer vs agreement-layer
// traffic, normalizing to n^3 / n^4 (VSS dominates, agreement is one order
// lower — exactly the paper's accounting). The n-sweep now reaches n = 50
// and a big-group series runs the paper's kappa = 160 regime (mod1024) and
// a modern-parameter point (big2048) — both affordable since the multiexp
// engine replaced naive powm chains under every verify (bench_multiexp).
#include "bench_util.hpp"

namespace {

// Hashed mode (the paper's regime) reaches n = 50. The full-matrix contrast
// series ships a (t+1)^2 matrix in every echo/ready (bytes ~ n^5); it used
// to stop at 31 because every message RE-SERIALIZED that matrix per
// recipient, but the interned wire layer (FeldmanMatrix::canonical_bytes +
// shared-payload fan-out) serializes each commitment once, and the
// signature-verification engine (crypto/sigverify.hpp: per-process verified
// cache + batch proof verification) cuts the remaining ~n^3 Schnorr
// verifies to ~n^2, so the series now reaches n = 128 — byte totals at the
// old grid points are unchanged.
constexpr std::size_t kNs[] = {4, 7, 10, 13, 16, 19, 25, 31, 50};
constexpr std::size_t kFullNs[] = {4, 7, 10, 13, 16, 19, 25, 31, 50, 64, 96, 128};
constexpr std::size_t kModNs[] = {10, 16};
constexpr std::size_t kBigNs[] = {7};
// Under --backend ec256 the full-matrix series stops at 64: a curve scalar
// multiplication costs ~20x a toy tiny256 powm, so the 96/128 points are
// tiny256-only extrapolation territory. 64 is where the docs' headline
// mod1024-vs-ec256 comparison lives, so the contrast axis below reruns the
// full-matrix grid on mod1024 at the shared points — the paper's kappa=160
// regime measured head-to-head against the curve backend at equal (n, t).
constexpr std::size_t kFullNsEc[] = {4, 7, 10, 13, 16, 19, 25, 31, 50, 64};
constexpr std::size_t kContrastNs[] = {10, 16, 31, 64};

dkg::engine::ScenarioSpec make_spec(const dkg::crypto::Group& grp, std::size_t n,
                                    dkg::vss::CommitmentMode mode, const char* mode_key) {
  using namespace dkg;
  std::size_t t = (n - 1) / 3;
  engine::ScenarioSpec spec;
  spec.label = std::string(mode_key) + " " + grp.name() + " n=" + std::to_string(n);
  spec.variant = engine::Variant::Dkg;
  spec.grp = &grp;
  spec.n = n;
  spec.t = t;
  spec.f = (n - 1 - 3 * t) / 2;
  spec.mode = mode;
  spec.seed = 1000 + n;
  return spec;
}

void emit_table(const std::vector<dkg::engine::ScenarioSpec>& specs,
                const std::vector<dkg::engine::ScenarioResult>& results, const char* label,
                const char* mode_key, std::size_t offset, std::size_t count,
                dkg::bench::JsonEmitter& json) {
  using namespace dkg;
  std::printf("\n--- %s ---\n", label);
  std::printf("%-10s %4s %4s %10s %14s %10s %12s %10s %12s %10s\n", "group", "n", "t", "msgs",
              "bytes", "vss-msgs", "agr-msgs", "msgs/n^3", "bytes/n^4", "sim-time");
  for (std::size_t i = 0; i < count; ++i) {
    const engine::ScenarioSpec& spec = specs[offset + i];
    const engine::ScenarioResult& r = results[offset + i];
    double n3 = static_cast<double>(spec.n) * spec.n * spec.n;
    double n4 = n3 * spec.n;
    bench::MetricRow row(spec.label);
    row.str("mode", mode_key)
        .str("group", spec.grp->name())
        .set("n", spec.n)
        .set("t", spec.t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("vss_messages", r.extra_u64("vss_messages"))
        .set("agreement_messages", r.extra_u64("agreement_messages"))
        .set("messages_per_n3", r.messages / n3)
        .set("bytes_per_n4", r.bytes / n4)
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%-10s %4zu %4zu %10llu %14llu %10llu %12llu %10.3f %12.4f %10llu%s\n",
                spec.grp->name().c_str(), spec.n, spec.t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.extra_u64("vss_messages")),
                static_cast<unsigned long long>(r.extra_u64("agreement_messages")),
                r.messages / n3, r.bytes / n4,
                static_cast<unsigned long long>(r.completion_time),
                r.completed ? "" : "  [INCOMPLETE]");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_dkg_optimistic", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E4  DKG optimistic phase complexity (honest leader)",
                      "O(t d n^3) messages / O(kappa t d n^4) bits; leader broadcast "
                      "adds only O(n^2)/O(kappa n^3)  [Sec 4]");
  const bool ec = json.backend() != nullptr;
  engine::SweepDriver driver;
  driver.add_axis(kNs, [](std::size_t n) {
    return make_spec(crypto::Group::tiny256(), n, vss::CommitmentMode::Hashed, "hashed");
  });
  const std::size_t full_count = ec ? std::size(kFullNsEc) : std::size(kFullNs);
  auto make_full = [](std::size_t n) {
    return make_spec(crypto::Group::tiny256(), n, vss::CommitmentMode::Full, "full");
  };
  if (ec) {
    driver.add_axis(kFullNsEc, make_full);
  } else {
    driver.add_axis(kFullNs, make_full);
  }
  driver.add_axis(kModNs, [](std::size_t n) {
    return make_spec(crypto::Group::mod1024(), n, vss::CommitmentMode::Hashed, "hashed");
  });
  driver.add_axis(kBigNs, [](std::size_t n) {
    return make_spec(crypto::Group::big2048(), n, vss::CommitmentMode::Hashed, "hashed");
  });
  // The backend remap rewrites everything above; the mod1024 contrast axis
  // is added AFTER it so those rows keep the paper's kappa = 160 group and
  // land in the same document as the ec256 full-matrix rows they pair with.
  json.apply_backend(driver);
  if (ec) {
    driver.add_axis(kContrastNs, [](std::size_t n) {
      return make_spec(crypto::Group::mod1024(), n, vss::CommitmentMode::Full, "full");
    });
  }
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  emit_table(driver.specs(), results,
             "hash-compressed commitments (the paper's accounting regime)", "hashed", 0,
             std::size(kNs), json);
  emit_table(driver.specs(), results, "full matrix commitments (for contrast: bytes ~ n^5)",
             "full", std::size(kNs), full_count, json);
  emit_table(driver.specs(), results,
             "big groups, hashed commitments (kappa = 160 regime and modern parameters)",
             "hashed", std::size(kNs) + full_count, std::size(kModNs) + std::size(kBigNs),
             json);
  if (ec) {
    emit_table(driver.specs(), results,
               "full matrix commitments on mod1024 (head-to-head contrast for the "
               "curve backend at matching n, t)",
               "full", std::size(kNs) + full_count + std::size(kModNs) + std::size(kBigNs),
               std::size(kContrastNs), json);
  }
  std::printf("\nshape check: msgs/n^3 flattens in both modes; bytes/n^4 flattens in\n"
              "hashed mode (the O(kappa n^3)-per-VSS regime the paper's O(kappa t d n^4)\n"
              "DKG bound builds on) and grows ~n in full mode. Agreement traffic stays\n"
              "an order of magnitude below the VSS layer. The big-group series moves\n"
              "bytes (kappa) but not message counts.\n");
  return bench::finish(json, results);
}
