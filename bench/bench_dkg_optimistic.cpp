// E4 — DKG optimistic-phase complexity (paper §4, Efficiency):
//   "message and communication complexities of the n HybridVSS Sh protocols
//    in DKG are O(t d n^3) and O(kappa t d n^4) ... the [leader] broadcast
//    adds message complexity O(t d n^2) and communication O(kappa t d n^3).
//    As a result the optimal ... complexities for the DKG protocol are
//    O(t d n^3) and O(kappa t d n^4)."
// Honest-leader sweep over n; the table splits VSS-layer vs agreement-layer
// traffic, normalizing to n^3 / n^4 (VSS dominates, agreement is one order
// lower — exactly the paper's accounting).
#include "bench_util.hpp"

namespace {

void run_table(dkg::vss::CommitmentMode mode, const char* label, const char* mode_key,
               dkg::bench::JsonEmitter& json) {
  using namespace dkg;
  std::printf("\n--- %s ---\n", label);
  std::printf("%4s %4s %10s %14s %10s %12s %10s %12s %10s\n", "n", "t", "msgs", "bytes",
              "vss-msgs", "agr-msgs", "msgs/n^3", "bytes/n^4", "sim-time");
  for (std::size_t n : {4, 7, 10, 13, 16, 19, 25}) {
    std::size_t t = (n - 1) / 3;
    std::size_t f = (n - 1 - 3 * t) / 2;
    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = f;
    cfg.mode = mode;
    cfg.seed = 1000 + n;
    core::DkgRunner runner(cfg);
    runner.start_all();
    bool ok = runner.run_to_completion();
    bench::DkgRunResult r = bench::summarize(runner);
    double n3 = static_cast<double>(n) * n * n;
    double n4 = n3 * n;
    json.add(bench::MetricRow(std::string(mode_key) + " n=" + std::to_string(n))
                 .str("mode", mode_key)
                 .set("n", n)
                 .set("t", t)
                 .set("messages", r.messages)
                 .set("bytes", r.bytes)
                 .set("vss_messages", r.vss_messages)
                 .set("agreement_messages", r.agreement_messages)
                 .set("messages_per_n3", r.messages / n3)
                 .set("bytes_per_n4", r.bytes / n4)
                 .set("completion_time", r.completion_time)
                 .set("ok", ok));
    std::printf("%4zu %4zu %10llu %14llu %10llu %12llu %10.3f %12.4f %10llu%s\n", n, t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.vss_messages),
                static_cast<unsigned long long>(r.agreement_messages), r.messages / n3,
                r.bytes / n4, static_cast<unsigned long long>(r.completion_time),
                ok ? "" : "  [INCOMPLETE]");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_dkg_optimistic", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E4  DKG optimistic phase complexity (honest leader)",
                      "O(t d n^3) messages / O(kappa t d n^4) bits; leader broadcast "
                      "adds only O(n^2)/O(kappa n^3)  [Sec 4]");
  run_table(vss::CommitmentMode::Hashed,
            "hash-compressed commitments (the paper's accounting regime)", "hashed", json);
  run_table(vss::CommitmentMode::Full, "full matrix commitments (for contrast: bytes ~ n^5)",
            "full", json);
  std::printf("\nshape check: msgs/n^3 flattens in both modes; bytes/n^4 flattens in\n"
              "hashed mode (the O(kappa n^3)-per-VSS regime the paper's O(kappa t d n^4)\n"
              "DKG bound builds on) and grows ~n in full mode. Agreement traffic stays\n"
              "an order of magnitude below the VSS layer.\n");
  return json.flush() ? 0 : 1;
}
