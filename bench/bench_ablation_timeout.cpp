// E11 (ablation) — timeout sensitivity of the optimistic/pessimistic split.
// The paper's design bets that "the probability that the current leader is
// not behaving correctly is small", so it starts optimistically and uses
// timeouts only as a liveness backstop (§2.1's delay(t), §4). This ablation
// shows what the timeout choice costs:
//   * too small  -> spurious leader changes on an HONEST leader (wasted
//     traffic, but never a safety violation);
//   * large      -> zero waste when honest, slower recovery when faulty.
#include "bench_util.hpp"

using namespace dkg;

namespace {

struct Row {
  bool ok;
  bench::DkgRunResult r;
};

Row run(sim::Time timeout_base, bool crash_leader, std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::tiny256();
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.timeout_base = timeout_base;
  core::DkgRunner runner(cfg);
  if (crash_leader) runner.simulator().schedule_crash(1, 0);
  runner.start_all();
  Row row;
  row.ok = runner.run_to_completion(cfg.n - 1);
  row.r = bench::summarize(runner);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_ablation_timeout", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E11  Ablation: timeout choice vs leader-change waste",
                      "optimistic-first design: timeouts are a liveness backstop, "
                      "never a safety input  [Sec 2.1, Sec 4]");
  std::printf("n=10 t=2 f=1; link delays U[5,40]\n\n");
  std::printf("%14s | %28s | %28s\n", "", "honest leader", "crashed leader");
  std::printf("%14s | %10s %8s %8s | %10s %8s %8s\n", "timeout_base", "msgs", "lead-ch",
              "time", "msgs", "lead-ch", "time");
  for (sim::Time timeout : {60ull, 150ull, 400ull, 1'500ull, 6'000ull, 24'000ull}) {
    Row honest = run(timeout, false, 8800);
    Row faulty = run(timeout, true, 8800);
    json.add(bench::MetricRow("timeout=" + std::to_string(timeout))
                 .set("timeout_base", timeout)
                 .set("honest_messages", honest.r.messages)
                 .set("honest_bytes", honest.r.bytes)
                 .set("honest_lead_changes", honest.r.lead_ch)
                 .set("honest_completion_time", honest.r.completion_time)
                 .set("crashed_messages", faulty.r.messages)
                 .set("crashed_bytes", faulty.r.bytes)
                 .set("crashed_lead_changes", faulty.r.lead_ch)
                 .set("crashed_completion_time", faulty.r.completion_time)
                 .set("ok", honest.ok && faulty.ok));
    std::printf("%14llu | %10llu %8llu %8llu | %10llu %8llu %8llu%s\n",
                static_cast<unsigned long long>(timeout),
                static_cast<unsigned long long>(honest.r.messages),
                static_cast<unsigned long long>(honest.r.lead_ch),
                static_cast<unsigned long long>(honest.r.completion_time),
                static_cast<unsigned long long>(faulty.r.messages),
                static_cast<unsigned long long>(faulty.r.lead_ch),
                static_cast<unsigned long long>(faulty.r.completion_time),
                (honest.ok && faulty.ok) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: small timeouts fire spurious lead-ch even with an honest\n"
              "leader (wasted O(n^2) traffic, completion still correct — safety never\n"
              "depends on timing); large timeouts cost nothing when honest and delay\n"
              "recovery roughly linearly when the leader is faulty.\n");
  return json.flush() ? 0 : 1;
}
