// E11 (ablation) — timeout sensitivity of the optimistic/pessimistic split.
// The paper's design bets that "the probability that the current leader is
// not behaving correctly is small", so it starts optimistically and uses
// timeouts only as a liveness backstop (§2.1's delay(t), §4). This ablation
// shows what the timeout choice costs:
//   * too small  -> spurious leader changes on an HONEST leader (wasted
//     traffic, but never a safety violation);
//   * large      -> zero waste when honest, slower recovery when faulty.
#include "bench_util.hpp"

namespace {

dkg::engine::ScenarioSpec make_spec(dkg::sim::Time timeout_base, bool crash_leader) {
  using namespace dkg;
  engine::ScenarioSpec spec;
  spec.label = std::string(crash_leader ? "crashed" : "honest") +
               " timeout=" + std::to_string(timeout_base);
  spec.variant = engine::Variant::Dkg;
  spec.n = 10;
  spec.t = 2;
  spec.f = 1;
  spec.seed = 8800;
  spec.timeout_base = timeout_base;
  if (crash_leader) spec.crashes.push_back({1, 0, 0});
  spec.min_outputs = spec.n - 1;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_ablation_timeout", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E11  Ablation: timeout choice vs leader-change waste",
                      "optimistic-first design: timeouts are a liveness backstop, "
                      "never a safety input  [Sec 2.1, Sec 4]");
  std::printf("n=10 t=2 f=1; link delays U[10,100]\n\n");
  // Pairs per timeout: honest leader, then the same run with the leader
  // crashed at t=0.
  engine::SweepDriver driver;
  for (sim::Time timeout : {60ull, 150ull, 400ull, 1'500ull, 6'000ull, 24'000ull}) {
    driver.add(make_spec(timeout, false));
    driver.add(make_spec(timeout, true));
  }
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%14s | %28s | %28s\n", "", "honest leader", "crashed leader");
  std::printf("%14s | %10s %8s %8s | %10s %8s %8s\n", "timeout_base", "msgs", "lead-ch",
              "time", "msgs", "lead-ch", "time");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    sim::Time timeout = driver.specs()[i].timeout_base;
    const engine::ScenarioResult& honest = results[i];
    const engine::ScenarioResult& faulty = results[i + 1];
    bench::MetricRow row("timeout=" + std::to_string(timeout));
    row.set("timeout_base", timeout)
        .set("honest_messages", honest.messages)
        .set("honest_bytes", honest.bytes)
        .set("honest_lead_changes", honest.extra_u64("lead_changes"))
        .set("honest_completion_time", honest.completion_time)
        .set("crashed_messages", faulty.messages)
        .set("crashed_bytes", faulty.bytes)
        .set("crashed_lead_changes", faulty.extra_u64("lead_changes"))
        .set("crashed_completion_time", faulty.completion_time)
        .set("ok", honest.ok && faulty.ok);
    json.add(std::move(bench::add_engine_fields(row, {&honest, &faulty})));
    std::printf("%14llu | %10llu %8llu %8llu | %10llu %8llu %8llu%s\n",
                static_cast<unsigned long long>(timeout),
                static_cast<unsigned long long>(honest.messages),
                static_cast<unsigned long long>(honest.extra_u64("lead_changes")),
                static_cast<unsigned long long>(honest.completion_time),
                static_cast<unsigned long long>(faulty.messages),
                static_cast<unsigned long long>(faulty.extra_u64("lead_changes")),
                static_cast<unsigned long long>(faulty.completion_time),
                (honest.ok && faulty.ok) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: small timeouts fire spurious lead-ch even with an honest\n"
              "leader (wasted O(n^2) traffic, completion still correct — safety never\n"
              "depends on timing); large timeouts cost nothing when honest and delay\n"
              "recovery roughly linearly when the leader is faulty.\n");
  return bench::finish(json, results);
}
