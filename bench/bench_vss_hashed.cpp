// E2 — Hash-compressed commitments (paper §3, citing [17 Sec 3.4]):
//   "Using a collision-resistant hash function ... reduce the communication
//    complexity to O(kappa n^3), which remains applicable in HybridVSS."
// Full mode carries the (t+1)^2 matrix in every echo/ready; hashed mode
// carries a 32-byte digest. bytes/n^4 flattens for full, bytes/n^3 for
// hashed, and the ratio grows ~linearly in n.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_vss_hashed", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E2  Full vs hash-compressed commitments",
                      "O(kappa n^4) -> O(kappa n^3) bits  [Sec 3 / AVSS Sec 3.4]");
  const crypto::Group& grp = crypto::Group::tiny256();
  std::printf("%4s %4s %14s %14s %8s %14s %14s\n", "n", "t", "full-bytes", "hash-bytes",
              "ratio", "full/n^4", "hash/n^3");
  for (std::size_t n : {4, 7, 10, 13, 16, 19, 25, 31, 40}) {
    std::size_t t = (n - 1) / 3;
    bench::VssRunResult full = bench::run_vss_once(grp, n, t, 0, vss::CommitmentMode::Full, n);
    bench::VssRunResult hashed =
        bench::run_vss_once(grp, n, t, 0, vss::CommitmentMode::Hashed, n);
    double n3 = static_cast<double>(n) * n * n;
    double n4 = n3 * n;
    json.add(bench::MetricRow("n=" + std::to_string(n))
                 .set("n", n)
                 .set("t", t)
                 .set("full_messages", full.messages)
                 .set("full_bytes", full.bytes)
                 .set("hashed_messages", hashed.messages)
                 .set("hashed_bytes", hashed.bytes)
                 .set("bytes_ratio", static_cast<double>(full.bytes) / hashed.bytes)
                 .set("full_bytes_per_n4", full.bytes / n4)
                 .set("hashed_bytes_per_n3", hashed.bytes / n3)
                 .set("completion_time", hashed.completion_time)
                 .set("ok", full.all_shared && hashed.all_shared));
    std::printf("%4zu %4zu %14llu %14llu %8.2f %14.4f %14.4f%s\n", n, t,
                static_cast<unsigned long long>(full.bytes),
                static_cast<unsigned long long>(hashed.bytes),
                static_cast<double>(full.bytes) / hashed.bytes, full.bytes / n4,
                hashed.bytes / n3,
                (full.all_shared && hashed.all_shared) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: ratio grows ~linearly with n; hash/n^3 flattens.\n");
  return json.flush() ? 0 : 1;
}
