// E2 — Hash-compressed commitments (paper §3, citing [17 Sec 3.4]):
//   "Using a collision-resistant hash function ... reduce the communication
//    complexity to O(kappa n^3), which remains applicable in HybridVSS."
// Full mode carries the (t+1)^2 matrix in every echo/ready; hashed mode
// carries a 32-byte digest. bytes/n^4 flattens for full, bytes/n^3 for
// hashed, and the ratio grows ~linearly in n.
#include "bench_util.hpp"

namespace {

dkg::engine::ScenarioSpec make_spec(std::size_t n, dkg::vss::CommitmentMode mode) {
  using namespace dkg;
  engine::ScenarioSpec spec;
  spec.label = std::string(mode == vss::CommitmentMode::Full ? "full" : "hashed") +
               " n=" + std::to_string(n);
  spec.variant = engine::Variant::HybridVss;
  spec.n = n;
  spec.t = (n - 1) / 3;
  spec.f = 0;
  spec.mode = mode;
  spec.seed = n;
  spec.delay_lo = 5;
  spec.delay_hi = 40;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_vss_hashed", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("E2  Full vs hash-compressed commitments",
                      "O(kappa n^4) -> O(kappa n^3) bits  [Sec 3 / AVSS Sec 3.4]");
  // Paired grid: spec 2i runs full mode, spec 2i+1 the hashed contrast.
  engine::SweepDriver driver;
  for (std::size_t n : {4, 7, 10, 13, 16, 19, 25, 31, 40}) {
    driver.add(make_spec(n, vss::CommitmentMode::Full));
    driver.add(make_spec(n, vss::CommitmentMode::Hashed));
  }
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());
  std::printf("%4s %4s %14s %14s %8s %14s %14s\n", "n", "t", "full-bytes", "hash-bytes",
              "ratio", "full/n^4", "hash/n^3");
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& full = results[i];
    const engine::ScenarioResult& hashed = results[i + 1];
    double n3 = static_cast<double>(spec.n) * spec.n * spec.n;
    double n4 = n3 * spec.n;
    bench::MetricRow row("n=" + std::to_string(spec.n));
    row.set("n", spec.n)
        .set("t", spec.t)
        .set("full_messages", full.messages)
        .set("full_bytes", full.bytes)
        .set("hashed_messages", hashed.messages)
        .set("hashed_bytes", hashed.bytes)
        .set("bytes_ratio", static_cast<double>(full.bytes) / hashed.bytes)
        .set("full_bytes_per_n4", full.bytes / n4)
        .set("hashed_bytes_per_n3", hashed.bytes / n3)
        .set("completion_time", hashed.completion_time)
        .set("ok", full.ok && hashed.ok);
    json.add(std::move(bench::add_engine_fields(row, {&full, &hashed})));
    std::printf("%4zu %4zu %14llu %14llu %8.2f %14.4f %14.4f%s\n", spec.n, spec.t,
                static_cast<unsigned long long>(full.bytes),
                static_cast<unsigned long long>(hashed.bytes),
                static_cast<double>(full.bytes) / hashed.bytes, full.bytes / n4,
                hashed.bytes / n3, (full.ok && hashed.ok) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: ratio grows ~linearly with n; hash/n^3 flattens.\n");
  return bench::finish(json, results);
}
