// Adversary strategy sweep: every strategy in the composable library
// (engine/adversary_spec.hpp) against every asynchronous protocol variant,
// with the safety/liveness verdict columns the engine computes per run:
//   * safety_ok    — honest-output agreement (no two completed honest nodes
//                    disagree on commitment/Q/key; shares verify);
//   * liveness_ok  — the honest mesh completed inside the event budget,
//                    wherever the hybrid model still promises liveness
//                    (adversary_expects_liveness documents the exceptions);
//   * disqualified — bad dealers kept out (no completion under a Byzantine
//                    VSS dealer; Q excludes corrupted dealers in the DKG).
// Every run is bit-reproducible from ScenarioSpec::derived_seed, so this
// JSON doubles as a transcript pin for the whole adversary library.
#include "bench_util.hpp"

namespace {

dkg::engine::ScenarioSpec make_spec(dkg::engine::Variant v, dkg::engine::AdversaryKind kind) {
  using namespace dkg;
  engine::ScenarioSpec spec;
  spec.variant = v;
  spec.label = std::string(engine::variant_name(v)) + " adv=" + engine::adversary_name(kind);
  spec.n = 7;
  spec.t = 1;
  spec.f = 1;
  spec.seed = 11001;
  spec.adversary.kind = kind;
  return spec;
}

bool extra_bool(const dkg::engine::ScenarioResult& r, std::string_view key, bool fallback) {
  const dkg::engine::MetricValue* v = r.extra(key);
  if (const bool* b = v ? std::get_if<bool>(v) : nullptr) return *b;
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_adversary", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  bench::print_header("Adversary library  safety/liveness verdict grid",
                      "t Byzantine nodes + adversarial links never break agreement; "
                      "liveness holds wherever promised  [Sec 2.1-2.2, Sec 3-6]");
  std::printf("n=7 t=1 f=1; every strategy x every asynchronous variant\n\n");

  const std::vector<engine::Variant> variants = {
      engine::Variant::HybridVss, engine::Variant::Avss, engine::Variant::Dkg,
      engine::Variant::Proactive, engine::Variant::NodeAdd,
  };
  engine::SweepDriver driver;
  for (engine::Variant v : variants) {
    for (engine::AdversaryKind kind : engine::all_adversary_kinds()) {
      driver.add(make_spec(v, kind));
    }
  }
  json.apply_backend(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());

  std::printf("%-40s %8s %9s %6s %10s %10s\n", "scenario", "safety", "liveness", "honest",
              "messages", "time");
  bool all_ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[i];
    const engine::ScenarioResult& r = results[i];
    bool safety = extra_bool(r, "safety_ok", r.ok);
    bool liveness = extra_bool(r, "liveness_ok", r.completed);
    std::uint64_t honest_done = r.extra_u64("honest_completed");
    std::uint64_t honest_total = r.extra_u64("honest_total");
    bench::MetricRow row(spec.label);
    row.str("variant", engine::variant_name(spec.variant))
        .str("adversary", engine::adversary_name(spec.adversary.kind))
        .set("safety_ok", safety)
        .set("liveness_ok", liveness)
        .set("honest_completed", honest_done)
        .set("honest_total", honest_total)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    // Disqualification verdicts where the runner computes them (Byzantine
    // dealers on the VSS grids; corrupted dealer sets in the DKG's Q).
    if (const engine::MetricValue* v = r.extra("dealer_disqualified")) {
      row.set("dealer_disqualified", *std::get_if<bool>(v));
    }
    if (const engine::MetricValue* v = r.extra("bad_dealers_disqualified")) {
      row.set("bad_dealers_disqualified", *std::get_if<bool>(v));
    }
    json.add(std::move(bench::add_engine_fields(row, r)));
    all_ok = all_ok && r.ok;
    char honest[32];
    std::snprintf(honest, sizeof(honest), "%llu/%llu",
                  static_cast<unsigned long long>(honest_done),
                  static_cast<unsigned long long>(honest_total));
    std::printf("%-40s %8s %9s %6s %10llu %10llu\n", spec.label.c_str(),
                safety ? "ok" : "FAIL", liveness ? "ok" : "FAIL", honest,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.completion_time));
  }
  std::printf("\nverdicts: %s — agreement held on every row; liveness held wherever\n"
              "the hybrid model promises it (Byzantine VSS dealers and AVSS churn\n"
              "void the promise by design — those rows count as ok with the\n"
              "expectation flipped).\n",
              all_ok ? "all ok" : "FAILURES above");
  if (!all_ok) {
    (void)json.flush();
    return 1;
  }
  return bench::finish(json, results);
}
