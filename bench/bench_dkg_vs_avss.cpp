// E6 — HybridVSS vs AVSS and the t-Byzantine-only DKG (paper §3 and §4):
//   §3: "We achieve a constant-factor reduction in the protocol complexities
//        using symmetric bivariate polynomials" (vs AVSS [17]).
//   §4: "considering just a t-limited Byzantine adversary ... the above
//        complexities become O(n^3) and O(kappa n^4) ... same as the
//        complexities of the proactive refresh protocol for AVSS [17]."
#include "bench_util.hpp"

namespace {

constexpr std::size_t kVssNs[] = {4, 7, 10, 13, 16, 19, 25};
constexpr std::size_t kDkgNs[] = {4, 7, 10, 13, 16, 19};

}  // namespace

int main(int argc, char** argv) {
  using namespace dkg;
  bench::JsonEmitter json("bench_dkg_vs_avss", argc, argv);
  if (!json.args_ok()) return 1;
  json.configure_verify_pool();
  // One sweep covers all three tables: paired hvss/avss specs per n, then
  // the Byzantine-only DKG axis.
  engine::SweepDriver driver;
  for (std::size_t n : kVssNs) {
    engine::ScenarioSpec spec;
    spec.label = "hvss n=" + std::to_string(n);
    spec.variant = engine::Variant::HybridVss;
    spec.n = n;
    spec.t = (n - 1) / 3;
    spec.f = 0;
    spec.mode = vss::CommitmentMode::Full;
    spec.seed = n;
    spec.delay_lo = 5;
    spec.delay_hi = 40;
    driver.add(spec);
    spec.label = "avss n=" + std::to_string(n);
    spec.variant = engine::Variant::Avss;
    driver.add(spec);
  }
  driver.add_axis(kDkgNs, [](std::size_t n) {
    engine::ScenarioSpec spec;
    spec.label = "byzantine-only n=" + std::to_string(n);
    spec.variant = engine::Variant::Dkg;
    spec.n = n;
    spec.t = (n - 1) / 3;
    spec.f = 0;
    spec.seed = 3000 + n;
    return spec;
  });
  json.apply_backend(driver);
  json.apply_adversary(driver);
  std::vector<engine::ScenarioResult> results = driver.run(json.jobs());

  bench::print_header("E6a  HybridVSS (symmetric dealing) vs AVSS (full bivariate)",
                      "constant-factor reduction from symmetric polynomials  [Sec 3]");
  std::printf("%4s %4s %12s %12s %14s %14s | %12s %12s %8s\n", "n", "t", "hvss-msgs",
              "avss-msgs", "hvss-bytes", "avss-bytes", "hvss-payl", "avss-payl", "ratio");
  for (std::size_t i = 0; i < std::size(kVssNs); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[2 * i];
    const engine::ScenarioResult& hv = results[2 * i];
    const engine::ScenarioResult& av = results[2 * i + 1];
    // Every protocol message of both schemes ships the same (t+1)^2 matrix;
    // the symmetric-dealing saving lives in the remaining payload (one
    // point/polynomial instead of two). Subtract the common matrix bytes.
    std::uint64_t matrix = 4 + (spec.t + 1) * (spec.t + 1) * spec.grp->element_bytes();
    std::uint64_t hv_payload = hv.bytes - hv.messages * matrix;
    std::uint64_t av_payload = av.bytes - av.messages * matrix;
    bench::MetricRow row("vss-vs-avss n=" + std::to_string(spec.n));
    row.str("table", "hybridvss_vs_avss")
        .set("n", spec.n)
        .set("t", spec.t)
        .set("hvss_messages", hv.messages)
        .set("avss_messages", av.messages)
        .set("hvss_bytes", hv.bytes)
        .set("avss_bytes", av.bytes)
        .set("hvss_payload_bytes", hv_payload)
        .set("avss_payload_bytes", av_payload)
        .set("payload_ratio", static_cast<double>(av_payload) / hv_payload)
        .set("completion_time", hv.completion_time)
        .set("ok", hv.ok && av.ok);
    json.add(std::move(bench::add_engine_fields(row, {&hv, &av})));
    std::printf("%4zu %4zu %12llu %12llu %14llu %14llu | %12llu %12llu %8.2f%s\n", spec.n,
                spec.t, static_cast<unsigned long long>(hv.messages),
                static_cast<unsigned long long>(av.messages),
                static_cast<unsigned long long>(hv.bytes),
                static_cast<unsigned long long>(av.bytes),
                static_cast<unsigned long long>(hv_payload),
                static_cast<unsigned long long>(av_payload),
                static_cast<double>(av_payload) / hv_payload,
                (hv.ok && av.ok) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: total bytes are dominated by the identical commitment\n"
              "matrices; the payload ratio is a constant > 1 (AVSS ships two\n"
              "points/polynomials per message where HybridVSS ships one). The dealer\n"
              "also computes half the commitment exponentiations (see E8/E9).\n");

  bench::print_header("E6b  DKG with t-Byzantine-only failures (f = 0, d = 0)",
                      "O(n^3) messages / O(kappa n^4) bits — matching AVSS proactive "
                      "refresh  [Sec 4]");
  std::printf("%4s %4s %10s %14s %10s %12s\n", "n", "t", "msgs", "bytes", "msgs/n^3",
              "bytes/n^4");
  std::size_t dkg_offset = 2 * std::size(kVssNs);
  for (std::size_t i = 0; i < std::size(kDkgNs); ++i) {
    const engine::ScenarioSpec& spec = driver.specs()[dkg_offset + i];
    const engine::ScenarioResult& r = results[dkg_offset + i];
    double n3 = static_cast<double>(spec.n) * spec.n * spec.n;
    bench::MetricRow row(spec.label);
    row.str("table", "dkg_byzantine_only")
        .set("n", spec.n)
        .set("t", spec.t)
        .set("messages", r.messages)
        .set("bytes", r.bytes)
        .set("messages_per_n3", r.messages / n3)
        .set("bytes_per_n4", r.bytes / (n3 * spec.n))
        .set("completion_time", r.completion_time)
        .set("ok", r.ok);
    json.add(std::move(bench::add_engine_fields(row, r)));
    std::printf("%4zu %4zu %10llu %14llu %10.3f %12.4f%s\n", spec.n, spec.t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes), r.messages / n3,
                r.bytes / (n3 * spec.n), r.ok ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: normalized columns flatten (pure-Byzantine DKG is\n"
              "O(n^3)/O(kappa n^4), the AVSS-refresh regime).\n");
  return bench::finish(json, results);
}
