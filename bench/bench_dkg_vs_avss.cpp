// E6 — HybridVSS vs AVSS and the t-Byzantine-only DKG (paper §3 and §4):
//   §3: "We achieve a constant-factor reduction in the protocol complexities
//        using symmetric bivariate polynomials" (vs AVSS [17]).
//   §4: "considering just a t-limited Byzantine adversary ... the above
//        complexities become O(n^3) and O(kappa n^4) ... same as the
//        complexities of the proactive refresh protocol for AVSS [17]."
#include "bench_util.hpp"

#include "vss/avss.hpp"

using namespace dkg;

namespace {

bench::VssRunResult run_avss_once(std::size_t n, std::size_t t, std::uint64_t seed) {
  const crypto::Group& grp = crypto::Group::tiny256();
  vss::AvssParams params{&grp, n, t};
  sim::Simulator sim(n, std::make_unique<sim::UniformDelay>(5, 40), seed);
  for (sim::NodeId i = 1; i <= n; ++i) sim.set_node(i, std::make_unique<vss::AvssNode>(params, i));
  vss::SessionId sid{1, 1};
  crypto::Drbg rng(seed);
  sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(grp, rng)), 0);
  bench::VssRunResult res;
  res.all_shared = sim.run();
  for (sim::NodeId i = 1; i <= n; ++i) {
    auto& node = dynamic_cast<vss::AvssNode&>(sim.node(i));
    res.all_shared = res.all_shared && node.instance(sid).has_shared();
  }
  res.messages = sim.metrics().total_messages();
  res.bytes = sim.metrics().total_bytes();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("bench_dkg_vs_avss", argc, argv);
  if (!json.args_ok()) return 1;
  bench::print_header("E6a  HybridVSS (symmetric dealing) vs AVSS (full bivariate)",
                      "constant-factor reduction from symmetric polynomials  [Sec 3]");
  std::printf("%4s %4s %12s %12s %14s %14s | %12s %12s %8s\n", "n", "t", "hvss-msgs",
              "avss-msgs", "hvss-bytes", "avss-bytes", "hvss-payl", "avss-payl", "ratio");
  const crypto::Group& grp = crypto::Group::tiny256();
  for (std::size_t n : {4, 7, 10, 13, 16, 19, 25}) {
    std::size_t t = (n - 1) / 3;
    bench::VssRunResult hv = bench::run_vss_once(grp, n, t, 0, vss::CommitmentMode::Full, n);
    bench::VssRunResult av = run_avss_once(n, t, n);
    // Every protocol message of both schemes ships the same (t+1)^2 matrix;
    // the symmetric-dealing saving lives in the remaining payload (one
    // point/polynomial instead of two). Subtract the common matrix bytes.
    std::uint64_t matrix = 4 + (t + 1) * (t + 1) * grp.p_bytes();
    std::uint64_t hv_payload = hv.bytes - hv.messages * matrix;
    std::uint64_t av_payload = av.bytes - av.messages * matrix;
    json.add(bench::MetricRow("vss-vs-avss n=" + std::to_string(n))
                 .str("table", "hybridvss_vs_avss")
                 .set("n", n)
                 .set("t", t)
                 .set("hvss_messages", hv.messages)
                 .set("avss_messages", av.messages)
                 .set("hvss_bytes", hv.bytes)
                 .set("avss_bytes", av.bytes)
                 .set("hvss_payload_bytes", hv_payload)
                 .set("avss_payload_bytes", av_payload)
                 .set("payload_ratio", static_cast<double>(av_payload) / hv_payload)
                 .set("completion_time", hv.completion_time)
                 .set("ok", hv.all_shared && av.all_shared));
    std::printf("%4zu %4zu %12llu %12llu %14llu %14llu | %12llu %12llu %8.2f%s\n", n, t,
                static_cast<unsigned long long>(hv.messages),
                static_cast<unsigned long long>(av.messages),
                static_cast<unsigned long long>(hv.bytes),
                static_cast<unsigned long long>(av.bytes),
                static_cast<unsigned long long>(hv_payload),
                static_cast<unsigned long long>(av_payload),
                static_cast<double>(av_payload) / hv_payload,
                (hv.all_shared && av.all_shared) ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: total bytes are dominated by the identical commitment\n"
              "matrices; the payload ratio is a constant > 1 (AVSS ships two\n"
              "points/polynomials per message where HybridVSS ships one). The dealer\n"
              "also computes half the commitment exponentiations (see E8/E9).\n");

  bench::print_header("E6b  DKG with t-Byzantine-only failures (f = 0, d = 0)",
                      "O(n^3) messages / O(kappa n^4) bits — matching AVSS proactive "
                      "refresh  [Sec 4]");
  std::printf("%4s %4s %10s %14s %10s %12s\n", "n", "t", "msgs", "bytes", "msgs/n^3",
              "bytes/n^4");
  for (std::size_t n : {4, 7, 10, 13, 16, 19}) {
    std::size_t t = (n - 1) / 3;
    core::RunnerConfig cfg;
    cfg.grp = &crypto::Group::tiny256();
    cfg.n = n;
    cfg.t = t;
    cfg.f = 0;
    cfg.seed = 3000 + n;
    core::DkgRunner runner(cfg);
    runner.start_all();
    bool ok = runner.run_to_completion();
    bench::DkgRunResult r = bench::summarize(runner);
    double n3 = static_cast<double>(n) * n * n;
    json.add(bench::MetricRow("byzantine-only n=" + std::to_string(n))
                 .str("table", "dkg_byzantine_only")
                 .set("n", n)
                 .set("t", t)
                 .set("messages", r.messages)
                 .set("bytes", r.bytes)
                 .set("messages_per_n3", r.messages / n3)
                 .set("bytes_per_n4", r.bytes / (n3 * n))
                 .set("completion_time", r.completion_time)
                 .set("ok", ok));
    std::printf("%4zu %4zu %10llu %14llu %10.3f %12.4f%s\n", n, t,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes), r.messages / n3,
                r.bytes / (n3 * n), ok ? "" : "  [INCOMPLETE]");
  }
  std::printf("\nshape check: normalized columns flatten (pure-Byzantine DKG is\n"
              "O(n^3)/O(kappa n^4), the AVSS-refresh regime).\n");
  return json.flush() ? 0 : 1;
}
