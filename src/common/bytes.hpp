// Byte-string utilities shared by every module.
//
// `Bytes` is the library-wide octet-string type: wire messages, hashes,
// serialized commitments and signatures all travel as `Bytes`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dkg {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of `data`.
std::string to_hex(const Bytes& data);

/// Parses lowercase/uppercase hex. Throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Copies a C++ string's bytes verbatim.
Bytes bytes_of(std::string_view s);

/// Constant-time-ish equality (length leak only); for test/sim use.
bool bytes_equal(const Bytes& a, const Bytes& b);

}  // namespace dkg
