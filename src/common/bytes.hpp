// Byte-string utilities shared by every module.
//
// `Bytes` is the library-wide octet-string type: wire messages, hashes,
// serialized commitments and signatures all travel as `Bytes`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dkg {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of `data`.
std::string to_hex(const Bytes& data);

/// Parses lowercase/uppercase hex. Throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Copies a C++ string's bytes verbatim.
Bytes bytes_of(std::string_view s);

/// Overwrites `len` bytes at `p` with zeros through a volatile pointer so the
/// store cannot be elided by dead-store optimization. Used to scrub secret
/// material (keys, shares, nonces) before memory is released.
void secure_wipe(void* p, std::size_t len) noexcept;

/// Constant-time equality of two equal-length byte ranges: the running time
/// depends only on `len`, never on the contents or the position of the first
/// mismatch. Adversary-timed comparisons (wire digests, signature payloads)
/// must go through this, not memcmp/operator==.
bool ct_equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t len);

/// Constant-time equality of two byte strings. Lengths are public (framing is
/// length-prefixed on the wire), so a length mismatch returns false early.
bool ct_equal(const Bytes& a, const Bytes& b);

}  // namespace dkg
