#include "common/serialize.hpp"

#include <stdexcept>

namespace dkg {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) buf_.push_back(static_cast<std::uint8_t>(v >> s));
}

void Writer::u64(std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) buf_.push_back(static_cast<std::uint8_t>(v >> s));
}

void Writer::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) throw std::out_of_range("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>((buf_[pos_] << 8) | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes Reader::blob() {
  std::uint32_t n = u32();
  need(n);
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::str() {
  Bytes b = blob();
  return std::string(b.begin(), b.end());
}

}  // namespace dkg
