#include "common/bytes.hpp"

#include <stdexcept>

namespace dkg {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("from_hex: bad digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

void secure_wipe(void* p, std::size_t len) noexcept {
  volatile std::uint8_t* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < len; ++i) vp[i] = 0;
}

bool ct_equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t len) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < len; ++i) diff |= a[i] ^ b[i];
  // Collapse to 0/1 without a data-dependent branch.
  return ((diff | (0u - diff)) >> 31) == 0;
}

bool ct_equal(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  return ct_equal(a.data(), b.data(), a.size());
}

}  // namespace dkg
