#include "common/task_guard.hpp"

namespace dkg::common {

namespace {
thread_local bool t_in_worker_task = false;
}  // namespace

bool in_worker_task() noexcept { return t_in_worker_task; }

WorkerTaskGuard::WorkerTaskGuard() noexcept : prev_(t_in_worker_task) { t_in_worker_task = true; }

WorkerTaskGuard::~WorkerTaskGuard() { t_in_worker_task = prev_; }

}  // namespace dkg::common
