// Thread-local "inside a verify-pool task" marker, kept in src/common so the
// simulator can assert on it without depending on the engine layer. The
// verify pool (engine/verify_pool.hpp) sets the flag around every task it
// runs; the simulator's send/timer entry points throw when called under it —
// verification work dispatched to the pool must be PURE (no transcript
// effects), otherwise message order would depend on worker scheduling and
// the bit-identical A/B guarantee would silently break.
#pragma once

namespace dkg::common {

/// True while the calling thread is executing a verify-pool task (including
/// tasks a scope owner runs inline during join, and tasks run eagerly in
/// inline mode — the purity contract is the same either way).
bool in_worker_task() noexcept;

/// RAII setter. Nesting is allowed (inline sub-scopes run their tasks
/// immediately on the already-marked thread); the flag clears when the
/// outermost guard unwinds.
class WorkerTaskGuard {
 public:
  WorkerTaskGuard() noexcept;
  ~WorkerTaskGuard();
  WorkerTaskGuard(const WorkerTaskGuard&) = delete;
  WorkerTaskGuard& operator=(const WorkerTaskGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace dkg::common
