// Minimal deterministic binary serialization.
//
// The simulator charges communication complexity by serialized size, and
// signatures are computed over serialized payloads, so encodings must be
// canonical: fixed-width big-endian integers and length-prefixed strings.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/bytes.hpp"

namespace dkg {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void blob(const Bytes& b);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (caller knows the framing).
  void raw(const Bytes& b);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Length-prefixed blob of an optional interned payload: the object's
/// memoized canonical_bytes() when `p` is non-null, an empty blob otherwise.
/// The one encoding every message serializer carrying an optional
/// commitment handle (VSS/AVSS/groupmod) shares.
template <class T>
void blob_shared(Writer& w, const std::shared_ptr<const T>& p) {
  static const Bytes kEmpty;
  w.blob(p ? p->canonical_bytes() : kEmpty);
}

/// Reader throws std::out_of_range on truncated input; protocol code treats
/// that as a malformed message from a Byzantine peer and drops it.
class Reader {
 public:
  explicit Reader(const Bytes& b) : buf_(b) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes blob();
  std::string str();

  bool done() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace dkg
