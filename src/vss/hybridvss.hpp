// HybridVSS (paper §3, Fig 1): asynchronous verifiable secret sharing in the
// hybrid model (t Byzantine + f crash/link failures, n >= 3t + 2f + 1).
//
// The protocol object is deliberately *not* a sim::Node: the DKG runs n
// instances inside one node, so VssInstance is a plain state machine driven
// through handler methods; `VssNode` (below) wraps instances for standalone
// use. All sending goes through sim::Context.
//
// Thresholds (Fig 1):
//   echo quorum   ceil((n+t+1)/2)   -> interpolate row, send ready
//   ready trigger t+1               -> amplify ready (if echo quorum missed)
//   completion    n-t-f readys      -> s_i = a_i(0), output shared
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/bipolynomial.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keyring.hpp"
#include "sim/node.hpp"
#include "vss/vss_messages.hpp"

namespace dkg::engine {
class VerifyScope;  // engine/verify_pool.hpp — held by pointer, cpp-only dep
}  // namespace dkg::engine

namespace dkg::vss {

enum class CommitmentMode {
  Full,    // echo/ready carry the full matrix C: O(kappa n^4) bits (E1)
  Hashed,  // echo/ready carry H(C): O(kappa n^3) bits, [17 §3.4] (E2)
};

struct VssParams {
  const crypto::Group* grp = nullptr;
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t f = 0;
  /// d(kappa): the adversary's lifetime crash budget; bounds help replies.
  std::uint64_t d_kappa = 8;
  CommitmentMode mode = CommitmentMode::Full;
  /// Extended-HybridVSS (§4): sign ready messages and collect proof sets.
  bool sign_ready = false;
  /// Share renewal (§5.2): do not retain row polynomials in the
  /// retransmission buffer B (erasure of old-phase material).
  bool erase_row_on_store = false;
  std::shared_ptr<const crypto::Keyring> keyring;  // required if sign_ready

  std::size_t echo_quorum() const { return (n + t + 2) / 2; }  // ceil((n+t+1)/2)
  std::size_t ready_quorum() const { return n - t - f; }
  bool resilient() const { return n >= 3 * t + 2 * f + 1; }
};

/// Output of protocol Sh: (P_d, tau, out, shared, C, s_i [, R_d]).
struct SharedOutput {
  SessionId sid;
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  crypto::SecretScalar share;
  std::vector<ReadySig> ready_proof;  // n-t-f signed readys when sign_ready
};

class VssInstance {
 public:
  using SharedHandler = std::function<void(sim::Context&, const SharedOutput&)>;
  using ReconstructedHandler = std::function<void(sim::Context&, const crypto::Scalar&)>;

  VssInstance(VssParams params, SessionId sid, sim::NodeId self);

  const SessionId& sid() const { return sid_; }

  void set_on_shared(SharedHandler h) { on_shared_ = std::move(h); }
  void set_on_reconstructed(ReconstructedHandler h) { on_reconstructed_ = std::move(h); }

  /// Dealer entry point: (P_d, tau, in, share, s).
  void deal(sim::Context& ctx, const crypto::Scalar& secret);
  /// Dealer entry point with an explicit dealing polynomial (share renewal
  /// and node addition reshare an existing value: f(0,0) = old share).
  void deal_polynomial(sim::Context& ctx, const crypto::BiPolynomial& f);

  /// Network message dispatch; returns false if the message type is not a
  /// VSS message for this session.
  bool handle(sim::Context& ctx, sim::NodeId from, const sim::Message& msg);

  /// (P_d, tau, in, reconstruct): start protocol Rec (requires shared).
  void start_reconstruct(sim::Context& ctx);

  /// (P_d, tau, in, recover): ask all peers for replay and replay own B.
  void recover(sim::Context& ctx);

  /// Proactive resharing check (§5.2/§6.2): only accept commitments whose
  /// C_00 equals `e` — i.e., dealings of the dealer's previous-phase share,
  /// whose public value g^{s_d} is known from the old commitment vector.
  void set_expected_c00(crypto::Element e) { expected_c00_ = std::move(e); }

  bool has_shared() const { return shared_.has_value(); }
  const SharedOutput& shared() const { return *shared_; }
  bool has_reconstructed() const { return reconstructed_.has_value(); }
  const crypto::Scalar& reconstructed() const { return *reconstructed_; }

  /// Number of invalid/ignored adversarial inputs seen (for tests). Folds
  /// any verification still deferred to the pool first, so the count equals
  /// the sequential run's at any observation point (non-const for exactly
  /// that reason).
  std::uint64_t rejected();

  ~VssInstance();
  VssInstance(VssInstance&&) = default;

 private:
  // Per-commitment bookkeeping (the paper's A_C, e_C, r_C keyed by C).
  struct PerCommit {
    std::shared_ptr<const crypto::FeldmanMatrix> commitment;  // null until known
    /// Cached C projected onto this node's row (row_commitment(self)): every
    /// echo/ready point verifies against the same (C, i), so verify-point
    /// drops from (t+1)^2 to (t+1) exponentiations after the first.
    std::optional<crypto::FeldmanVector> row_proj;
    std::vector<std::pair<std::uint64_t, crypto::Scalar>> points;  // verified A_C
    std::set<sim::NodeId> point_senders;  // a sender's echo+ready share one abscissa
    struct Pending {
      sim::NodeId from;
      crypto::Scalar point;
      bool is_ready;
      std::optional<crypto::Signature> sig;
    };
    std::vector<Pending> pending;  // hashed mode: points awaiting C
    std::size_t echoes = 0;
    std::size_t readys = 0;
    std::vector<ReadySig> ready_sigs;
    std::optional<crypto::Polynomial> row;  // interpolated a_i
    /// Memoized ready_sig_payload(sid, digest): every signed ready this
    /// commitment sees signs/verifies the same payload bytes, and the
    /// engine's sig-cache keys hash them once per message otherwise.
    Bytes ready_payload;
    bool sent_ready = false;
    bool requested_commitment = false;

    /// Deferred-verification backlog (pool mode only — empty otherwise).
    /// Echo/ready point (and ready-signature) checks run on pool workers
    /// across events; entries fold back in arrival order the moment their
    /// OPTIMISTIC tallies (verified + in-flight) cross a Fig-1 threshold.
    /// Optimistic counts dominate true counts pointwise, so any event where
    /// the sequential run crosses a threshold folds here too — and a fold
    /// replays exact sequential accept_point semantics in arrival order, so
    /// every transition, send and rejection lands on the same event with
    /// the same content as the sequential run (tests/test_verify_pool.cpp).
    struct Deferred {
      sim::NodeId from = 0;
      crypto::Scalar point;
      bool is_ready = false;
      std::optional<crypto::Signature> sig;
      bool sig_deferred = false;  // signature verdict comes from a task
      // Task outputs: each written by exactly one pool task before the
      // fold's join, read only after it.
      bool sig_ok = false;
      bool point_ok = false;
      bool has_point_task = false;
      /// Earlier backlog entry with the same (from, value): its task's
      /// verdict doubles as ours (same projection, same inputs), mirroring
      /// the point memo's echo/ready dedup without a second verify task.
      const Deferred* link = nullptr;
    };
    std::deque<Deferred> deferred;  // deque: stable addresses for link/tasks
    std::size_t pend_echoes = 0;
    std::size_t pend_readys = 0;
    /// Fork-join scope owning this backlog's tasks. Declared LAST so its
    /// destructor joins in-flight tasks before any field they touch dies.
    std::unique_ptr<engine::VerifyScope> scope;

    PerCommit();
    ~PerCommit();
    PerCommit(PerCommit&&) = default;
  };

  void on_send(sim::Context& ctx, sim::NodeId from, const SendMsg& m);
  void on_echo(sim::Context& ctx, sim::NodeId from, const EchoMsg& m);
  void on_ready(sim::Context& ctx, sim::NodeId from, const ReadyMsg& m);
  void on_help(sim::Context& ctx, sim::NodeId from);
  void on_ccreq(sim::Context& ctx, sim::NodeId from, const CommitmentReq& m);
  void on_ccreply(sim::Context& ctx, sim::NodeId from, const CommitmentReply& m);
  void on_rec_share(sim::Context& ctx, sim::NodeId from, const RecShareMsg& m);

  PerCommit& per_commit(const Bytes& digest);
  /// The memoized signed-ready payload for (sid_, digest).
  const Bytes& ready_payload(const Bytes& digest, PerCommit& pc) const;
  void learn_commitment(sim::Context& ctx, const Bytes& digest,
                        std::shared_ptr<const crypto::FeldmanMatrix> c);
  /// Verifies and accounts one point; fires transitions. When `verdict` is
  /// non-null it carries a pool task's precomputed verify_share result and
  /// replaces the inline check (memo lookups still run first, so point-memo
  /// stats are counted in the same order as the sequential run).
  void accept_point(sim::Context& ctx, const Bytes& digest, PerCommit& pc, sim::NodeId from,
                    const crypto::Scalar& alpha, bool is_ready,
                    const std::optional<crypto::Signature>& sig,
                    const bool* verdict = nullptr);
  /// Pool mode: queue one echo/ready point for cross-event verification and
  /// poke the fold trigger. `sig_checked` marks a signature already verified
  /// inline (commitment-request flush path).
  void deferred_accept(sim::Context& ctx, const Bytes& digest, PerCommit& pc, sim::NodeId from,
                       const crypto::Scalar& alpha, bool is_ready,
                       const std::optional<crypto::Signature>& sig, bool sig_checked);
  /// Folds the backlog iff optimistic (verified + in-flight) tallies cross a
  /// Fig-1 threshold; superset of the sequential trigger events.
  void poke_deferred(sim::Context& ctx, const Bytes& digest, PerCommit& pc);
  /// Joins the scope and replays the backlog through accept_point in arrival
  /// order (exact sequential semantics, task verdicts injected).
  void fold_deferred(sim::Context& ctx, const Bytes& digest, PerCommit& pc);
  /// Folds every commitment's backlog with a context that forbids sends
  /// (a drain can never fire a transition — see the .cpp proof); called from
  /// rejected() and the destructor so pool-mode counters match sequential.
  void drain_deferred();
  void check_transitions(sim::Context& ctx, const Bytes& digest, PerCommit& pc);
  void send_ready_round(sim::Context& ctx, const Bytes& digest, PerCommit& pc);
  void complete(sim::Context& ctx, const Bytes& digest, PerCommit& pc);

  /// Sends and records into the retransmission buffer B.
  void send_buffered(sim::Context& ctx, sim::NodeId to, sim::MessagePtr msg);
  /// Shared-payload fan-out of one identical message to all of 1..n,
  /// recorded into every retransmission buffer.
  void multicast_buffered(sim::Context& ctx, const sim::MessagePtr& msg);

  VssParams params_;
  SessionId sid_;
  sim::NodeId self_;
  std::vector<sim::NodeId> peers_;  // 1..n — the protocol's recipient set

  std::map<Bytes, PerCommit> commits_;
  std::optional<crypto::Element> expected_c00_;
  bool got_send_ = false;
  std::set<sim::NodeId> seen_echo_;
  std::set<sim::NodeId> seen_ready_;
  std::optional<SharedOutput> shared_;

  // Retransmission buffers (paper's B, B_l) and help budget counters c, c_l.
  std::vector<std::vector<sim::MessagePtr>> buffer_;  // index 1..n
  std::uint64_t help_total_ = 0;
  std::map<sim::NodeId, std::uint64_t> help_per_node_;

  // Rec protocol state.
  bool reconstructing_ = false;
  std::set<sim::NodeId> seen_rec_;
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> rec_points_;
  std::optional<crypto::FeldmanVector> rec_vec_;  // cached share_vector() of C
  std::optional<crypto::Scalar> reconstructed_;

  std::uint64_t rejected_ = 0;

  SharedHandler on_shared_;
  ReconstructedHandler on_reconstructed_;
};

/// Standalone node wrapper: one VSS participant that can take part in any
/// number of sessions (lazily created on first message). Operator messages:
/// ShareOp (dealer), ReconstructOp, RecoverOp.
class VssNode : public sim::Node {
 public:
  VssNode(VssParams params, sim::NodeId self);

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;
  void on_recover(sim::Context& ctx) override;

  VssInstance& instance(const SessionId& sid);
  bool has_instance(const SessionId& sid) const { return instances_.count(sid) != 0; }

 private:
  VssParams params_;
  sim::NodeId self_;
  std::map<SessionId, VssInstance> instances_;
};

}  // namespace dkg::vss
