// Byzantine behaviours for VSS testing and benchmarking (paper §2.2's
// t-limited Byzantine adversary). Each node here replaces an honest
// participant and misbehaves in a specific, reproducible way.
#pragma once

#include "vss/hybridvss.hpp"

namespace dkg::vss {

enum class DealerFault {
  /// Sends rows from a *different* random polynomial to half the nodes —
  /// verify-poly fails there; sharing must still not produce inconsistency.
  InconsistentRows,
  /// Sends commitment C1 to odd nodes and C2 to even nodes (equivocation).
  /// Agreement on a single C must prevent completion with mixed quorums.
  Equivocate,
  /// Sends only to t+1 chosen nodes and stays silent to the rest.
  PartialSend,
  /// Never sends anything.
  Silent,
};

/// Parameterized Byzantine dealing strategy — the generalization of the
/// four hardcoded DealerFault modes. Defaults reproduce the legacy
/// behaviours exactly; the knobs open the strategy space (k-way
/// equivocation, chosen victim counts, chosen delivery sets) for the
/// adversary library.
struct DealerStrategy {
  enum class Kind { Silent, InconsistentRows, Equivocate, SelectiveSend };
  Kind kind = Kind::Silent;
  /// Equivocate: number of distinct commitments dealt round-robin — node j
  /// receives class (j - 1) % classes. 2 reproduces the legacy odd/even
  /// split (class 0 = odd ids).
  std::size_t classes = 2;
  /// InconsistentRows: the `victims` highest node ids receive rows from a
  /// wrong polynomial. 0 = legacy even-id victim set.
  std::size_t victims = 0;
  /// SelectiveSend: the `recipients` lowest node ids receive the valid
  /// send; everyone else gets silence. 0 = legacy t+1 (strictly below the
  /// echo quorum, so no honest node may complete).
  std::size_t recipients = 0;

  static DealerStrategy from_fault(DealerFault f);
};

/// A dealer that misbehaves per its strategy when given ShareOp, and
/// otherwise stays mute (it does not participate honestly in echo/ready
/// either).
class ByzantineDealerNode : public sim::Node {
 public:
  ByzantineDealerNode(VssParams params, sim::NodeId self, DealerStrategy strategy)
      : params_(params), self_(self), strategy_(strategy) {}
  ByzantineDealerNode(VssParams params, sim::NodeId self, DealerFault fault)
      : ByzantineDealerNode(params, self, DealerStrategy::from_fault(fault)) {}

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  void deal_faulty(sim::Context& ctx, const SessionId& sid, const crypto::Scalar& secret);

  VssParams params_;
  sim::NodeId self_;
  DealerStrategy strategy_;
};

/// An honest-looking participant that injects garbage echo/ready points for
/// the commitment it received — receivers must reject them via verify-point.
class GarbagePointNode : public sim::Node {
 public:
  GarbagePointNode(VssParams params, sim::NodeId self) : params_(params), self_(self) {}

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  VssParams params_;
  sim::NodeId self_;
};

/// A participant that echoes its TRUE points (they verify and prime the
/// receivers' verified-point memo) but sends a *different*, garbage point in
/// its ready round. The pair targets the memo head-on: the ready value
/// differs from the memoized echo value, so it must take the full
/// verify-point path and be rejected — a memo that keyed on sender alone
/// would wave it through.
class EquivocatingPointNode : public sim::Node {
 public:
  EquivocatingPointNode(VssParams params, sim::NodeId self) : params_(params), self_(self) {}

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

 private:
  VssParams params_;
  sim::NodeId self_;
  bool sent_ready_ = false;
};

/// A node that simply never sends anything (fail-silent Byzantine).
class SilentNode : public sim::Node {
 public:
  void on_message(sim::Context&, sim::NodeId, const sim::MessagePtr&) override {}
};

}  // namespace dkg::vss
