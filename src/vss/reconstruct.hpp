// Verified reconstruction utilities — the share-combination arithmetic of
// protocol Rec (paper §3) factored out for reuse by the application layer
// (threshold decryption/signing use the same verify-then-interpolate step).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "crypto/feldman.hpp"
#include "crypto/lagrange.hpp"

namespace dkg::vss {

/// Lagrange-in-the-exponent public-key reconstruction: recovers the group
/// public key g^{f(0)} from the per-node public keys g^{s_i} = V(i) of any
/// quorum of t+1 distinct indices — one multi-exponentiation, no scalar
/// shares involved. Equals commitment.c0() for a consistent vector; a
/// service that only learns a quorum's published member keys uses this to
/// rebuild (and cross-check) the group key. Throws std::invalid_argument on
/// duplicate indices.
crypto::Element reconstruct_public_key(const crypto::FeldmanVector& commitment,
                                       const std::vector<std::uint64_t>& quorum);

/// Accumulates claimed shares (i, s_i), verifying each against a commitment,
/// and interpolates the secret once t+1 valid shares are present.
class SecretReconstructor {
 public:
  SecretReconstructor(const crypto::FeldmanVector& commitment, std::size_t t)
      : commitment_(commitment), t_(t) {}

  /// Returns true if the share verified and was added (duplicates ignored).
  bool add_share(std::uint64_t index, const crypto::Scalar& share);

  bool complete() const { return points_.size() >= t_ + 1; }
  /// The reconstructed secret; empty until t+1 valid shares were added.
  std::optional<crypto::Scalar> secret() const;

  std::size_t valid_count() const { return points_.size(); }
  std::size_t rejected_count() const { return rejected_; }

 private:
  crypto::FeldmanVector commitment_;
  std::size_t t_;
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> points_;
  std::size_t rejected_ = 0;
};

}  // namespace dkg::vss
