// Message vocabulary of HybridVSS (paper §3, Fig 1) plus the Rec protocol
// and the crash-recovery flow. Messages are passed in-process as typed
// objects; `serialize` defines the canonical wire encoding used for byte
// accounting and signatures.
#pragma once

#include <memory>
#include <optional>

#include "crypto/feldman.hpp"
#include "crypto/polynomial.hpp"
#include "crypto/schnorr.hpp"
#include "sim/message.hpp"

namespace dkg::vss {

/// Session identifier (P_d, tau): dealer identity plus a counter.
struct SessionId {
  sim::NodeId dealer = 0;
  std::uint32_t tau = 0;

  bool operator==(const SessionId& o) const { return dealer == o.dealer && tau == o.tau; }
  bool operator<(const SessionId& o) const {
    return dealer != o.dealer ? dealer < o.dealer : tau < o.tau;
  }
};

/// A third-party-verifiable signed `ready` witness: node `signer` signed the
/// canonical ready payload for (sid, commitment digest). The DKG leader
/// forwards n-t-f of these per finished VSS as its proposal proof (R_d).
struct ReadySig {
  sim::NodeId signer = 0;
  crypto::Signature sig;
};

/// Canonical bytes a ready signature commits to.
Bytes ready_sig_payload(const SessionId& sid, const Bytes& commit_digest);

struct VssMessage : sim::Message {
  SessionId sid;
  explicit VssMessage(SessionId s) : sid(s) {}
};

/// Operator message (P_d, tau, in, share, s): instructs the dealer to share.
struct ShareOp : VssMessage {
  crypto::Scalar secret;
  ShareOp(SessionId s, crypto::Scalar sec) : VssMessage(s), secret(std::move(sec)) {}
  std::string_view type() const override { return "vss.in.share"; }
  void serialize(Writer& w) const override;
};

/// Operator message (P_d, tau, in, recover).
struct RecoverOp : VssMessage {
  using VssMessage::VssMessage;
  std::string_view type() const override { return "vss.in.recover"; }
  void serialize(Writer& w) const override;
};

/// Operator message (P_d, tau, in, reconstruct).
struct ReconstructOp : VssMessage {
  using VssMessage::VssMessage;
  std::string_view type() const override { return "vss.in.reconstruct"; }
  void serialize(Writer& w) const override;
};

/// (P_d, tau, send, C, a): dealer -> P_i with the full commitment matrix and
/// P_i's row polynomial a_i(y) = f(i, y). In share-renewal retransmissions
/// the polynomial is absent (erasure rule, §5.2).
struct SendMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  std::optional<crypto::Polynomial> row;
  SendMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c,
          std::optional<crypto::Polynomial> a)
      : VssMessage(s), commitment(std::move(c)), row(std::move(a)) {}
  std::string_view type() const override { return "vss.send"; }
  void serialize(Writer& w) const override;
};

/// (P_d, tau, echo, C, alpha): P_m -> P_i carrying alpha = f(m, i).
/// In Full commitment mode the matrix rides along; in Hashed mode only its
/// digest does (the O(kappa n^3) optimization of [17 §3.4], bench E2).
struct EchoMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;  // null in hashed mode
  Bytes digest;
  crypto::Scalar point;
  EchoMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c, Bytes dig,
          crypto::Scalar alpha)
      : VssMessage(s), commitment(std::move(c)), digest(std::move(dig)), point(std::move(alpha)) {}
  std::string_view type() const override { return "vss.echo"; }
  void serialize(Writer& w) const override;
};

/// (P_d, tau, ready, C, alpha), optionally signed (extended-HybridVSS for
/// the DKG, §4: shared outputs carry proof sets R_d of signed readys).
struct ReadyMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;  // null in hashed mode
  Bytes digest;
  crypto::Scalar point;
  std::optional<crypto::Signature> sig;
  ReadyMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c, Bytes dig,
           crypto::Scalar alpha, std::optional<crypto::Signature> sg)
      : VssMessage(s),
        commitment(std::move(c)),
        digest(std::move(dig)),
        point(std::move(alpha)),
        sig(std::move(sg)) {}
  std::string_view type() const override { return "vss.ready"; }
  void serialize(Writer& w) const override;
};

/// (P_d, tau, help): a recovering node asks peers to replay B_l.
struct HelpMsg : VssMessage {
  using VssMessage::VssMessage;
  std::string_view type() const override { return "vss.help"; }
  void serialize(Writer& w) const override;
};

/// Hashed-mode fallback: ask a peer for the full matrix behind a digest.
struct CommitmentReq : VssMessage {
  Bytes digest;
  CommitmentReq(SessionId s, Bytes dig) : VssMessage(s), digest(std::move(dig)) {}
  std::string_view type() const override { return "vss.ccreq"; }
  void serialize(Writer& w) const override;
};

struct CommitmentReply : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  CommitmentReply(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c)
      : VssMessage(s), commitment(std::move(c)) {}
  std::string_view type() const override { return "vss.ccreply"; }
  void serialize(Writer& w) const override;
};

/// Rec protocol: P_i broadcasts its share s_i = f(i, 0) with the digest of
/// the commitment it completed Sh with.
struct RecShareMsg : VssMessage {
  Bytes digest;
  crypto::Scalar share;
  RecShareMsg(SessionId s, Bytes dig, crypto::Scalar sh)
      : VssMessage(s), digest(std::move(dig)), share(std::move(sh)) {}
  std::string_view type() const override { return "vss.rec-share"; }
  void serialize(Writer& w) const override;
};

// --- checked wire decoding -------------------------------------------------
//
// The simulator passes messages as typed in-process objects, so the
// `serialize` encodings above are normally only byte-accounting. Any real
// transport, however, must reverse them from untrusted bytes — and the two
// messages that carry a full commitment matrix (send, cc-reply) are exactly
// where an adversarial dealer can smuggle entries outside the order-q
// subgroup, which `Element::from_bytes` deliberately does not check. These
// decoders are that boundary: they reject malformed framing, wrong-degree
// matrices and rows, and any commitment entry failing subgroup membership
// (FeldmanMatrix::from_bytes_checked). Covered by tests/test_wire_format.cpp.

/// Decodes SendMsg::serialize output. `t` is the session's threshold (the
/// receiver knows it; a matrix of any other degree is rejected).
std::optional<SendMsg> decode_send(const crypto::Group& grp, std::size_t t, const Bytes& wire);

/// Decodes CommitmentReply::serialize output.
std::optional<CommitmentReply> decode_ccreply(const crypto::Group& grp, std::size_t t,
                                              const Bytes& wire);

}  // namespace dkg::vss
