#include "vss/avss.hpp"

#include <stdexcept>

#include "crypto/lagrange.hpp"
#include "engine/parallel_verify.hpp"
#include "engine/verify_pool.hpp"

namespace dkg::vss {

using crypto::Element;
using crypto::FeldmanMatrix;
using crypto::Polynomial;
using crypto::Scalar;

namespace {
void put_sid(Writer& w, const SessionId& sid) {
  w.u32(sid.dealer);
  w.u32(sid.tau);
}

/// Non-symmetric bivariate dealing used by AVSS: full (t+1)^2 coefficients,
/// held in the secret domain like BiPolynomial's triangle.
struct FullBiPoly {
  std::size_t t;
  std::vector<crypto::SecretScalar> c;  // row-major, c[j*(t+1)+l] multiplies x^j y^l

  static FullBiPoly random(const Scalar& secret, std::size_t t, crypto::Drbg& rng) {
    const crypto::Group& grp = secret.group();
    FullBiPoly f{t, {}};
    f.c.reserve((t + 1) * (t + 1));
    for (std::size_t k = 0; k < (t + 1) * (t + 1); ++k) {
      f.c.push_back(crypto::SecretScalar::random(grp, rng));
    }
    f.c[0] = crypto::SecretScalar::from_scalar(secret);
    return f;
  }

  Polynomial row(std::uint64_t i) const {  // a_i(y) = f(i, y)
    const crypto::Group& grp = c.front().group();
    Scalar x = Scalar::from_u64(grp, i);
    std::vector<crypto::SecretScalar> out;
    out.reserve(t + 1);
    for (std::size_t l = 0; l <= t; ++l) {
      crypto::SecretScalar acc = c[t * (t + 1) + l];
      for (std::size_t j = t; j-- > 0;) acc = acc * x + c[j * (t + 1) + l];
      out.push_back(std::move(acc));
    }
    return Polynomial(std::move(out));
  }

  Polynomial col(std::uint64_t i) const {  // b_i(x) = f(x, i)
    const crypto::Group& grp = c.front().group();
    Scalar y = Scalar::from_u64(grp, i);
    std::vector<crypto::SecretScalar> out;
    out.reserve(t + 1);
    for (std::size_t j = 0; j <= t; ++j) {
      crypto::SecretScalar acc = c[j * (t + 1) + t];
      for (std::size_t l = t; l-- > 0;) acc = acc * y + c[j * (t + 1) + l];
      out.push_back(std::move(acc));
    }
    return Polynomial(std::move(out));
  }
};
}  // namespace

void AvssSendMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  blob_shared(w, commitment);
  w.blob(row.to_bytes());
  w.blob(col.to_bytes());
}

void AvssEchoMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  blob_shared(w, commitment);
  w.raw(alpha.to_bytes());
  w.raw(beta.to_bytes());
}

void AvssReadyMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  blob_shared(w, commitment);
  w.raw(alpha.to_bytes());
  w.raw(beta.to_bytes());
}

AvssInstance::AvssInstance(AvssParams params, SessionId sid, sim::NodeId self)
    : params_(params), sid_(sid), self_(self) {
  if (!params_.resilient()) throw std::invalid_argument("AVSS: n < 3t + 1");
}

void AvssInstance::deal(sim::Context& ctx, const Scalar& secret) {
  if (self_ != sid_.dealer) throw std::logic_error("AVSS: deal on non-dealer");
  FullBiPoly f = FullBiPoly::random(secret, params_.t, ctx.rng());
  std::vector<Element> entries;
  entries.reserve(f.c.size());
  // Dealer-side: secret coefficients commit through constant-time commit_to.
  for (const crypto::SecretScalar& s : f.c) entries.push_back(s.commit_to());
  auto commitment =
      std::make_shared<const FeldmanMatrix>(FeldmanMatrix::from_entries(params_.t, std::move(entries)));
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    ctx.send(j, std::make_shared<AvssSendMsg>(sid_, commitment, f.row(j), f.col(j)));
  }
}

bool AvssInstance::handle(sim::Context& ctx, sim::NodeId from, const sim::Message& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(&msg);
  if (vm == nullptr || !(vm->sid == sid_)) return false;
  if (const auto* m = dynamic_cast<const AvssSendMsg*>(vm)) {
    on_send(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const AvssEchoMsg*>(vm)) {
    if (seen_echo_.insert(from).second) {
      on_point(ctx, from, m->commitment, m->alpha, m->beta, /*is_ready=*/false);
    }
  } else if (const auto* m = dynamic_cast<const AvssReadyMsg*>(vm)) {
    if (seen_ready_.insert(from).second) {
      on_point(ctx, from, m->commitment, m->alpha, m->beta, /*is_ready=*/true);
    }
  } else {
    return false;
  }
  return true;
}

void AvssInstance::on_send(sim::Context& ctx, sim::NodeId from, const AvssSendMsg& m) {
  if (from != sid_.dealer || got_send_) return;
  if (!m.commitment || m.commitment->degree() != params_.t) return;
  got_send_ = true;
  // verify row against columns of C and column against rows (column splits
  // across the verify pool; sequential short-circuit order preserved).
  if (!engine::parallel_verify_poly(*m.commitment, self_, m.row) ||
      !engine::parallel_verify_poly_col(*m.commitment, self_, m.col)) {
    return;
  }
  Bytes digest = m.commitment->digest();
  PerCommit& pc = commits_[digest];
  pc.commitment = m.commitment;
  pc.row = m.row;
  pc.col = m.col;
  // To P_j: alpha' = a_i(j) = f(i, j) (P_j checks against its column) and
  // beta' = b_i(j) = f(j, i) (P_j checks against its row). Evaluations split
  // across the pool; sends stay on the event thread in recipient order.
  std::vector<Scalar> alphas = engine::parallel_eval_row(m.row, params_.n);
  std::vector<Scalar> betas = engine::parallel_eval_row(m.col, params_.n);
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    ctx.send(j, std::make_shared<AvssEchoMsg>(sid_, m.commitment, std::move(alphas[j - 1]),
                                              std::move(betas[j - 1])));
  }
}

void AvssInstance::on_point(sim::Context& ctx, sim::NodeId from,
                            const std::shared_ptr<const FeldmanMatrix>& c, const Scalar& alpha,
                            const Scalar& beta, bool is_ready) {
  if (share_ || !c || c->degree() != params_.t) return;
  Bytes digest = c->digest();
  PerCommit& pc = commits_[digest];
  if (!pc.commitment) pc.commitment = c;
  // alpha claims f(m, i); beta claims f(i, m). Both verify against cached
  // fixed-i projections of C (bit-identical to verify_point, (t+1) exps).
  // The two independent checks run as one fork-join scope (intra-event
  // parallelism only: AVSS keeps no cross-event backlog because each check
  // is a fixed pair — there is no per-event flood to amortize, and the
  // rejection path must stay silent in the same event either way).
  const bool ec = pc.commitment->group().backend() == crypto::GroupBackend::Ec256;
  if (!ec) {
    if (!pc.row_proj) pc.row_proj = engine::parallel_row_commitment(*pc.commitment, self_);
    if (!pc.col_proj) pc.col_proj = engine::parallel_col_commitment(*pc.commitment, self_);
  }
  {
    engine::VerifyScope scope;
    if (ec) {
      // ec256: both checks read the matrix's shared share grid directly —
      // alpha against f(from, self), beta against f(self, from) — the same
      // predicates the cached projections encode (crypto/feldman.cpp).
      const crypto::FeldmanMatrix* c = pc.commitment.get();
      const sim::NodeId self = self_;
      if (scope.parallel()) {
        char a_ok = 0, b_ok = 0;
        scope.push([c, self, from, &alpha, &a_ok] {
          a_ok = c->verify_point(self, from, alpha) ? 1 : 0;
        });
        scope.push([c, self, from, &beta, &b_ok] {
          b_ok = c->verify_point(from, self, beta) ? 1 : 0;
        });
        scope.join();
        if (a_ok == 0 || b_ok == 0) return;
      } else {
        if (!c->verify_point(self, from, alpha)) return;
        if (!c->verify_point(from, self, beta)) return;
      }
    } else if (scope.parallel()) {
      char a_ok = 0, b_ok = 0;
      const crypto::FeldmanVector* rp = &*pc.row_proj;
      const crypto::FeldmanVector* cp = &*pc.col_proj;
      scope.push([rp, from, &alpha, &a_ok] { a_ok = rp->verify_share(from, alpha) ? 1 : 0; });
      scope.push([cp, from, &beta, &b_ok] { b_ok = cp->verify_share(from, beta) ? 1 : 0; });
      scope.join();
      if (a_ok == 0 || b_ok == 0) return;
    } else {
      if (!pc.row_proj->verify_share(from, alpha)) return;
      if (!pc.col_proj->verify_share(from, beta)) return;
    }
  }
  if (pc.point_senders.insert(from).second) pc.points.emplace_back(from, alpha, beta);
  if (is_ready) {
    pc.readys += 1;
  } else {
    pc.echoes += 1;
  }
  check_transitions(ctx, pc);
}

void AvssInstance::check_transitions(sim::Context& ctx, PerCommit& pc) {
  if (!pc.sent_ready &&
      (pc.echoes >= params_.echo_quorum() || pc.readys >= params_.t + 1) &&
      pc.points.size() >= params_.t + 1) {
    send_ready_round(ctx, pc);
  }
  if (!share_ && pc.readys >= params_.ready_quorum() && pc.row) {
    share_ = pc.row->eval_at(0);
    if (on_shared_) on_shared_(ctx, *share_, pc.commitment);
  }
}

void AvssInstance::send_ready_round(sim::Context& ctx, PerCommit& pc) {
  pc.sent_ready = true;
  if (!pc.row || !pc.col) {
    // alpha points (m, f(m, i)) interpolate b_i; beta points (m, f(i, m))
    // interpolate a_i.
    std::vector<std::pair<std::uint64_t, Scalar>> alphas, betas;
    for (std::size_t k = 0; k < params_.t + 1; ++k) {
      const auto& [m, a, b] = pc.points[k];
      alphas.emplace_back(m, a);
      betas.emplace_back(m, b);
    }
    pc.col = crypto::interpolate(*params_.grp, alphas);
    pc.row = crypto::interpolate(*params_.grp, betas);
  }
  // Ready points a_i(j), b_i(j) evaluated across the pool; sends stay on
  // the event thread in recipient order.
  std::vector<Scalar> alphas = engine::parallel_eval_row(*pc.row, params_.n);
  std::vector<Scalar> betas = engine::parallel_eval_row(*pc.col, params_.n);
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    ctx.send(j, std::make_shared<AvssReadyMsg>(sid_, pc.commitment, std::move(alphas[j - 1]),
                                               std::move(betas[j - 1])));
  }
}

AvssNode::AvssNode(AvssParams params, sim::NodeId self) : params_(params), self_(self) {}

AvssInstance& AvssNode::instance(const SessionId& sid) {
  auto it = instances_.find(sid);
  if (it == instances_.end()) it = instances_.emplace(sid, AvssInstance(params_, sid, self_)).first;
  return it->second;
}

void AvssNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(msg.get());
  if (vm == nullptr) return;
  AvssInstance& inst = instance(vm->sid);
  if (from == sim::kOperator) {
    if (const auto* share = dynamic_cast<const ShareOp*>(vm)) inst.deal(ctx, share->secret);
    return;
  }
  inst.handle(ctx, from, *msg);
}

}  // namespace dkg::vss
