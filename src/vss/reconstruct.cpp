#include "vss/reconstruct.hpp"

namespace dkg::vss {

crypto::Element reconstruct_public_key(const crypto::FeldmanVector& commitment,
                                       const std::vector<std::uint64_t>& quorum) {
  std::vector<std::pair<std::uint64_t, crypto::Element>> pts;
  pts.reserve(quorum.size());
  for (std::uint64_t i : quorum) pts.emplace_back(i, commitment.eval_commit(i));
  return crypto::exp_interpolate_at(commitment.group(), pts, 0);
}

bool SecretReconstructor::add_share(std::uint64_t index, const crypto::Scalar& share) {
  for (const auto& [i, s] : points_) {
    if (i == index) return false;
  }
  if (!commitment_.verify_share(index, share)) {
    ++rejected_;
    return false;
  }
  points_.emplace_back(index, share);
  return true;
}

std::optional<crypto::Scalar> SecretReconstructor::secret() const {
  if (!complete()) return std::nullopt;
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> pts(
      points_.begin(), points_.begin() + static_cast<std::ptrdiff_t>(t_ + 1));
  return crypto::interpolate_at(commitment_.group(), pts, 0);
}

}  // namespace dkg::vss
