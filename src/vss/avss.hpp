// AVSS baseline [Cachin, Kursawe, Lysyanskaya, Strobl — CCS'02], the scheme
// HybridVSS modifies (paper §3). Differences from HybridVSS, implemented
// faithfully so bench E6 can measure them:
//   * Byzantine-only model: n >= 3t + 1, f = 0, no recovery/help flow.
//   * The dealing polynomial f(x, y) is NOT symmetric, so the dealer sends
//     each node both its row a_i(y) = f(i, y) and column b_i(x) = f(x, i),
//     and echo/ready carry two evaluation points instead of one — the
//     constant-factor overhead the paper removes with symmetric dealings.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "crypto/feldman.hpp"
#include "crypto/polynomial.hpp"
#include "sim/node.hpp"
#include "vss/vss_messages.hpp"

namespace dkg::vss {

struct AvssParams {
  const crypto::Group* grp = nullptr;
  std::size_t n = 0;
  std::size_t t = 0;

  std::size_t echo_quorum() const { return (n + t + 2) / 2; }
  std::size_t ready_quorum() const { return n - t; }
  bool resilient() const { return n >= 3 * t + 1; }
};

struct AvssSendMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  crypto::Polynomial row;  // a_i(y) = f(i, y)
  crypto::Polynomial col;  // b_i(x) = f(x, i)
  AvssSendMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c, crypto::Polynomial a,
              crypto::Polynomial b)
      : VssMessage(s), commitment(std::move(c)), row(std::move(a)), col(std::move(b)) {}
  std::string_view type() const override { return "avss.send"; }
  void serialize(Writer& w) const override;
};

struct AvssEchoMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  crypto::Scalar alpha;  // f(m, i): sender m's row evaluated at receiver i
  crypto::Scalar beta;   // f(i, m): sender m's column evaluated at receiver i
  AvssEchoMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c, crypto::Scalar a,
              crypto::Scalar b)
      : VssMessage(s), commitment(std::move(c)), alpha(std::move(a)), beta(std::move(b)) {}
  std::string_view type() const override { return "avss.echo"; }
  void serialize(Writer& w) const override;
};

struct AvssReadyMsg : VssMessage {
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;
  crypto::Scalar alpha;
  crypto::Scalar beta;
  AvssReadyMsg(SessionId s, std::shared_ptr<const crypto::FeldmanMatrix> c, crypto::Scalar a,
               crypto::Scalar b)
      : VssMessage(s), commitment(std::move(c)), alpha(std::move(a)), beta(std::move(b)) {}
  std::string_view type() const override { return "avss.ready"; }
  void serialize(Writer& w) const override;
};

/// One AVSS participant for one session; wrap in AvssNode for simulation.
class AvssInstance {
 public:
  using SharedHandler =
      std::function<void(sim::Context&, const crypto::SecretScalar& share,
                         const std::shared_ptr<const crypto::FeldmanMatrix>&)>;

  AvssInstance(AvssParams params, SessionId sid, sim::NodeId self);

  void set_on_shared(SharedHandler h) { on_shared_ = std::move(h); }

  void deal(sim::Context& ctx, const crypto::Scalar& secret);
  bool handle(sim::Context& ctx, sim::NodeId from, const sim::Message& msg);

  bool has_shared() const { return share_.has_value(); }
  const crypto::SecretScalar& share() const { return *share_; }

 private:
  struct PerCommit {
    std::shared_ptr<const crypto::FeldmanMatrix> commitment;
    /// Cached projections of the (non-symmetric) C onto this node's row
    /// a_i(x) = f(x, i) and column b_i(y) = f(i, y): every incoming point
    /// pair verifies against the same fixed i, so both checks drop from
    /// (t+1)^2 to (t+1) exponentiations after the first point.
    std::optional<crypto::FeldmanVector> row_proj, col_proj;
    // Verified (m, alpha=f(m,i), beta=f(i,m)) triples.
    std::vector<std::tuple<std::uint64_t, crypto::Scalar, crypto::Scalar>> points;
    std::set<sim::NodeId> point_senders;  // echo+ready of one sender coincide
    std::size_t echoes = 0;
    std::size_t readys = 0;
    std::optional<crypto::Polynomial> row;  // a_i
    std::optional<crypto::Polynomial> col;  // b_i
    bool sent_ready = false;
  };

  void on_send(sim::Context& ctx, sim::NodeId from, const AvssSendMsg& m);
  void on_point(sim::Context& ctx, sim::NodeId from,
                const std::shared_ptr<const crypto::FeldmanMatrix>& c, const crypto::Scalar& alpha,
                const crypto::Scalar& beta, bool is_ready);
  void check_transitions(sim::Context& ctx, PerCommit& pc);
  void send_ready_round(sim::Context& ctx, PerCommit& pc);

  AvssParams params_;
  SessionId sid_;
  sim::NodeId self_;

  std::map<Bytes, PerCommit> commits_;
  bool got_send_ = false;
  std::set<sim::NodeId> seen_echo_;
  std::set<sim::NodeId> seen_ready_;
  std::optional<crypto::SecretScalar> share_;
  SharedHandler on_shared_;
};

class AvssNode : public sim::Node {
 public:
  AvssNode(AvssParams params, sim::NodeId self);

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;
  AvssInstance& instance(const SessionId& sid);

 private:
  AvssParams params_;
  sim::NodeId self_;
  std::map<SessionId, AvssInstance> instances_;
};

}  // namespace dkg::vss
