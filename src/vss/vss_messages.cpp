#include "vss/vss_messages.hpp"

#include <stdexcept>

namespace dkg::vss {

namespace {
void put_sid(Writer& w, const SessionId& sid) {
  w.u32(sid.dealer);
  w.u32(sid.tau);
}
}  // namespace

Bytes ready_sig_payload(const SessionId& sid, const Bytes& commit_digest) {
  Writer w;
  w.str("hybriddkg/vss/ready");
  put_sid(w, sid);
  w.blob(commit_digest);
  return w.take();
}

void ShareOp::serialize(Writer& w) const {
  put_sid(w, sid);
  w.raw(secret.to_bytes());
}

void RecoverOp::serialize(Writer& w) const { put_sid(w, sid); }

void ReconstructOp::serialize(Writer& w) const { put_sid(w, sid); }

void SendMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  // blob_shared: the commitment handle — every message sharing this matrix
  // serializes the SAME interned buffer, none re-encodes entries.
  blob_shared(w, commitment);
  w.blob(row ? row->to_bytes() : Bytes{});
}

void EchoMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  if (commitment) {
    w.u8(1);
    w.blob(commitment->canonical_bytes());
  } else {
    w.u8(0);
    w.blob(digest);
  }
  w.raw(point.to_bytes());
}

void ReadyMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  if (commitment) {
    w.u8(1);
    w.blob(commitment->canonical_bytes());
  } else {
    w.u8(0);
    w.blob(digest);
  }
  w.raw(point.to_bytes());
  if (sig) {
    w.u8(1);
    w.raw(sig->to_bytes());
  } else {
    w.u8(0);
  }
}

void HelpMsg::serialize(Writer& w) const { put_sid(w, sid); }

void CommitmentReq::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(digest);
}

void CommitmentReply::serialize(Writer& w) const {
  put_sid(w, sid);
  blob_shared(w, commitment);
}

void RecShareMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(digest);
  w.raw(share.to_bytes());
}

namespace {
SessionId read_sid(Reader& r) {
  SessionId sid;
  sid.dealer = r.u32();
  sid.tau = r.u32();
  return sid;
}
}  // namespace

std::optional<SendMsg> decode_send(const crypto::Group& grp, std::size_t t, const Bytes& wire) {
  try {
    Reader r(wire);
    SessionId sid = read_sid(r);
    Bytes cb = r.blob();
    Bytes rb = r.blob();
    if (!r.done()) return std::nullopt;
    if (cb.empty()) return std::nullopt;  // a send always carries the matrix
    // Interned decode: the n receivers of one broadcast matrix share a
    // single checked decode (and its Montgomery/wire memos).
    auto c = crypto::FeldmanMatrix::from_bytes_interned(grp, cb, t);
    if (!c) return std::nullopt;
    std::optional<crypto::Polynomial> row;
    if (!rb.empty()) {
      // Exact-size check: Polynomial::from_bytes does not reject trailing
      // bytes inside the blob, and a canonical row is degree prefix plus
      // exactly t+1 fixed-width coefficients.
      if (rb.size() != 4 + (t + 1) * grp.q_bytes()) return std::nullopt;
      row = crypto::Polynomial::from_bytes(grp, rb, t);
    }
    return SendMsg(sid, std::move(c), std::move(row));
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<CommitmentReply> decode_ccreply(const crypto::Group& grp, std::size_t t,
                                              const Bytes& wire) {
  try {
    Reader r(wire);
    SessionId sid = read_sid(r);
    Bytes cb = r.blob();
    if (!r.done() || cb.empty()) return std::nullopt;
    auto c = crypto::FeldmanMatrix::from_bytes_interned(grp, cb, t);
    if (!c) return std::nullopt;
    return CommitmentReply(sid, std::move(c));
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace dkg::vss
