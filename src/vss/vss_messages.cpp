#include "vss/vss_messages.hpp"

namespace dkg::vss {

namespace {
void put_sid(Writer& w, const SessionId& sid) {
  w.u32(sid.dealer);
  w.u32(sid.tau);
}
}  // namespace

Bytes ready_sig_payload(const SessionId& sid, const Bytes& commit_digest) {
  Writer w;
  w.str("hybriddkg/vss/ready");
  put_sid(w, sid);
  w.blob(commit_digest);
  return w.take();
}

void ShareOp::serialize(Writer& w) const {
  put_sid(w, sid);
  w.raw(secret.to_bytes());
}

void RecoverOp::serialize(Writer& w) const { put_sid(w, sid); }

void ReconstructOp::serialize(Writer& w) const { put_sid(w, sid); }

void SendMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(commitment ? commitment->to_bytes() : Bytes{});
  w.blob(row ? row->to_bytes() : Bytes{});
}

void EchoMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  if (commitment) {
    w.u8(1);
    w.blob(commitment->to_bytes());
  } else {
    w.u8(0);
    w.blob(digest);
  }
  w.raw(point.to_bytes());
}

void ReadyMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  if (commitment) {
    w.u8(1);
    w.blob(commitment->to_bytes());
  } else {
    w.u8(0);
    w.blob(digest);
  }
  w.raw(point.to_bytes());
  if (sig) {
    w.u8(1);
    w.raw(sig->to_bytes());
  } else {
    w.u8(0);
  }
}

void HelpMsg::serialize(Writer& w) const { put_sid(w, sid); }

void CommitmentReq::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(digest);
}

void CommitmentReply::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(commitment ? commitment->to_bytes() : Bytes{});
}

void RecShareMsg::serialize(Writer& w) const {
  put_sid(w, sid);
  w.blob(digest);
  w.raw(share.to_bytes());
}

}  // namespace dkg::vss
