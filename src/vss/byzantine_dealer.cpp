#include "vss/byzantine_dealer.hpp"

namespace dkg::vss {

using crypto::BiPolynomial;
using crypto::FeldmanMatrix;
using crypto::Scalar;

void ByzantineDealerNode::on_message(sim::Context& ctx, sim::NodeId from,
                                     const sim::MessagePtr& msg) {
  if (from != sim::kOperator) return;  // ignores the protocol entirely
  const auto* share = dynamic_cast<const ShareOp*>(msg.get());
  if (share == nullptr) return;
  deal_faulty(ctx, share->sid, share->secret);
}

DealerStrategy DealerStrategy::from_fault(DealerFault f) {
  DealerStrategy s;
  switch (f) {
    case DealerFault::Silent: s.kind = Kind::Silent; break;
    case DealerFault::InconsistentRows: s.kind = Kind::InconsistentRows; break;
    case DealerFault::Equivocate: s.kind = Kind::Equivocate; break;
    case DealerFault::PartialSend: s.kind = Kind::SelectiveSend; break;
  }
  return s;
}

void ByzantineDealerNode::deal_faulty(sim::Context& ctx, const SessionId& sid,
                                      const Scalar& secret) {
  const crypto::Group& grp = *params_.grp;
  switch (strategy_.kind) {
    case DealerStrategy::Kind::Silent:
      return;
    case DealerStrategy::Kind::InconsistentRows: {
      BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
      Scalar wrong_secret = Scalar::random(grp, ctx.rng());
      BiPolynomial wrong = BiPolynomial::random(wrong_secret, params_.t, ctx.rng());
      auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
      for (sim::NodeId j = 1; j <= params_.n; ++j) {
        bool victim = strategy_.victims == 0 ? (j % 2 == 0)
                                             : (j + strategy_.victims > params_.n);
        const BiPolynomial& src = victim ? wrong : f;
        ctx.send(j, std::make_shared<SendMsg>(sid, commitment, src.row(j)));
      }
      return;
    }
    case DealerStrategy::Kind::Equivocate: {
      // `classes` distinct bivariate polynomials, each with its own
      // commitment, dealt round-robin: node j sees only class (j-1) %
      // classes. Quorum intersection must keep at most one class
      // completable no matter how many classes the dealer runs.
      std::size_t classes = std::max<std::size_t>(2, strategy_.classes);
      std::vector<BiPolynomial> polys;
      std::vector<std::shared_ptr<const FeldmanMatrix>> commits;
      polys.reserve(classes);
      commits.reserve(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        Scalar s = c == 0 ? secret : Scalar::random(grp, ctx.rng());
        polys.push_back(BiPolynomial::random(s, params_.t, ctx.rng()));
        commits.push_back(
            std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(polys.back())));
      }
      for (sim::NodeId j = 1; j <= params_.n; ++j) {
        std::size_t c = (j - 1) % classes;
        ctx.send(j, std::make_shared<SendMsg>(sid, commits[c], polys[c].row(j)));
      }
      return;
    }
    case DealerStrategy::Kind::SelectiveSend: {
      BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
      auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
      std::size_t recipients = strategy_.recipients != 0 ? strategy_.recipients : params_.t + 1;
      for (sim::NodeId j = 1; j <= params_.n && j <= recipients; ++j) {
        ctx.send(j, std::make_shared<SendMsg>(sid, commitment, f.row(j)));
      }
      return;
    }
  }
}

void GarbagePointNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  // On the dealer's send, spray garbage echo points; on any echo, spray
  // garbage ready points. Uses the real commitment so messages pass every
  // check except verify-point.
  const crypto::Group& grp = *params_.grp;
  if (const auto* m = dynamic_cast<const SendMsg*>(msg.get()); m && from == m->sid.dealer) {
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<EchoMsg>(m->sid, m->commitment,
                                            m->commitment ? m->commitment->digest() : Bytes{},
                                            crypto::Scalar::random(grp, ctx.rng())));
    }
    return;
  }
  if (const auto* m = dynamic_cast<const EchoMsg*>(msg.get())) {
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<ReadyMsg>(m->sid, m->commitment, m->digest,
                                             crypto::Scalar::random(grp, ctx.rng()), std::nullopt));
    }
  }
}

void EquivocatingPointNode::on_message(sim::Context& ctx, sim::NodeId from,
                                       const sim::MessagePtr& msg) {
  const crypto::Group& grp = *params_.grp;
  if (const auto* m = dynamic_cast<const SendMsg*>(msg.get());
      m && from == m->sid.dealer && m->row) {
    // Honest echo round: the true points f(self, j) verify at every
    // receiver and land in its verified-point memo under this sender.
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<EchoMsg>(m->sid, m->commitment,
                                            m->commitment ? m->commitment->digest() : Bytes{},
                                            // reveal-ok: Byzantine test node leaking its own
                                            // received row point on the wire, as the protocol does
                                            m->row->eval_at(j).reveal()));
    }
    return;
  }
  if (const auto* m = dynamic_cast<const EchoMsg*>(msg.get()); m && !sent_ready_) {
    // Equivocate in the ready round: same sender, different value.
    sent_ready_ = true;
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<ReadyMsg>(m->sid, m->commitment, m->digest,
                                             crypto::Scalar::random(grp, ctx.rng()), std::nullopt));
    }
  }
}

}  // namespace dkg::vss
