#include "vss/byzantine_dealer.hpp"

namespace dkg::vss {

using crypto::BiPolynomial;
using crypto::FeldmanMatrix;
using crypto::Scalar;

void ByzantineDealerNode::on_message(sim::Context& ctx, sim::NodeId from,
                                     const sim::MessagePtr& msg) {
  if (from != sim::kOperator) return;  // ignores the protocol entirely
  const auto* share = dynamic_cast<const ShareOp*>(msg.get());
  if (share == nullptr) return;
  deal_faulty(ctx, share->sid, share->secret);
}

void ByzantineDealerNode::deal_faulty(sim::Context& ctx, const SessionId& sid,
                                      const Scalar& secret) {
  const crypto::Group& grp = *params_.grp;
  switch (fault_) {
    case DealerFault::Silent:
      return;
    case DealerFault::InconsistentRows: {
      BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
      BiPolynomial wrong = BiPolynomial::random(Scalar::random(grp, ctx.rng()), params_.t, ctx.rng());
      auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
      for (sim::NodeId j = 1; j <= params_.n; ++j) {
        const BiPolynomial& src = (j % 2 == 0) ? wrong : f;
        ctx.send(j, std::make_shared<SendMsg>(sid, commitment, src.row(j)));
      }
      return;
    }
    case DealerFault::Equivocate: {
      BiPolynomial f1 = BiPolynomial::random(secret, params_.t, ctx.rng());
      BiPolynomial f2 = BiPolynomial::random(Scalar::random(grp, ctx.rng()), params_.t, ctx.rng());
      auto c1 = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f1));
      auto c2 = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f2));
      for (sim::NodeId j = 1; j <= params_.n; ++j) {
        if (j % 2 == 1) {
          ctx.send(j, std::make_shared<SendMsg>(sid, c1, f1.row(j)));
        } else {
          ctx.send(j, std::make_shared<SendMsg>(sid, c2, f2.row(j)));
        }
      }
      return;
    }
    case DealerFault::PartialSend: {
      BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
      auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
      for (sim::NodeId j = 1; j <= params_.n && j <= params_.t + 1; ++j) {
        ctx.send(j, std::make_shared<SendMsg>(sid, commitment, f.row(j)));
      }
      return;
    }
  }
}

void GarbagePointNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  // On the dealer's send, spray garbage echo points; on any echo, spray
  // garbage ready points. Uses the real commitment so messages pass every
  // check except verify-point.
  const crypto::Group& grp = *params_.grp;
  if (const auto* m = dynamic_cast<const SendMsg*>(msg.get()); m && from == m->sid.dealer) {
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<EchoMsg>(m->sid, m->commitment,
                                            m->commitment ? m->commitment->digest() : Bytes{},
                                            crypto::Scalar::random(grp, ctx.rng())));
    }
    return;
  }
  if (const auto* m = dynamic_cast<const EchoMsg*>(msg.get())) {
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<ReadyMsg>(m->sid, m->commitment, m->digest,
                                             crypto::Scalar::random(grp, ctx.rng()), std::nullopt));
    }
  }
}

void EquivocatingPointNode::on_message(sim::Context& ctx, sim::NodeId from,
                                       const sim::MessagePtr& msg) {
  const crypto::Group& grp = *params_.grp;
  if (const auto* m = dynamic_cast<const SendMsg*>(msg.get());
      m && from == m->sid.dealer && m->row) {
    // Honest echo round: the true points f(self, j) verify at every
    // receiver and land in its verified-point memo under this sender.
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<EchoMsg>(m->sid, m->commitment,
                                            m->commitment ? m->commitment->digest() : Bytes{},
                                            // reveal-ok: Byzantine test node leaking its own
                                            // received row point on the wire, as the protocol does
                                            m->row->eval_at(j).reveal()));
    }
    return;
  }
  if (const auto* m = dynamic_cast<const EchoMsg*>(msg.get()); m && !sent_ready_) {
    // Equivocate in the ready round: same sender, different value.
    sent_ready_ = true;
    for (sim::NodeId j = 1; j <= params_.n; ++j) {
      ctx.send(j, std::make_shared<ReadyMsg>(m->sid, m->commitment, m->digest,
                                             crypto::Scalar::random(grp, ctx.rng()), std::nullopt));
    }
  }
}

}  // namespace dkg::vss
