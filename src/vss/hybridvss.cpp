#include "vss/hybridvss.hpp"

#include <stdexcept>

#include "crypto/lagrange.hpp"
#include "crypto/sigverify.hpp"

namespace dkg::vss {

using crypto::BiPolynomial;
using crypto::FeldmanMatrix;
using crypto::Polynomial;
using crypto::Scalar;

VssInstance::VssInstance(VssParams params, SessionId sid, sim::NodeId self)
    : params_(params), sid_(sid), self_(self), buffer_(params.n + 1) {
  if (!params_.resilient()) throw std::invalid_argument("HybridVSS: n < 3t + 2f + 1");
  if (params_.sign_ready && !params_.keyring) {
    throw std::invalid_argument("HybridVSS: sign_ready requires a keyring");
  }
  peers_ = sim::all_nodes(params_.n);
}

void VssInstance::send_buffered(sim::Context& ctx, sim::NodeId to, sim::MessagePtr msg) {
  buffer_.at(to).push_back(msg);
  ctx.send(to, std::move(msg));
}

void VssInstance::multicast_buffered(sim::Context& ctx, const sim::MessagePtr& msg) {
  for (sim::NodeId j : peers_) buffer_.at(j).push_back(msg);
  ctx.multicast(peers_, msg);
}

void VssInstance::deal(sim::Context& ctx, const Scalar& secret) {
  BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
  deal_polynomial(ctx, f);
}

void VssInstance::deal_polynomial(sim::Context& ctx, const BiPolynomial& f) {
  if (self_ != sid_.dealer) throw std::logic_error("HybridVSS: deal on non-dealer");
  auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    std::optional<Polynomial> row = f.row(j);
    auto msg = std::make_shared<SendMsg>(sid_, commitment, std::move(row));
    if (params_.erase_row_on_store) {
      // §5.2: retransmissions of send must not carry old-phase polynomials;
      // buffer a stripped copy.
      buffer_.at(j).push_back(std::make_shared<SendMsg>(sid_, commitment, std::nullopt));
      ctx.send(j, std::move(msg));
    } else {
      send_buffered(ctx, j, std::move(msg));
    }
  }
}

bool VssInstance::handle(sim::Context& ctx, sim::NodeId from, const sim::Message& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(&msg);
  if (vm == nullptr || !(vm->sid == sid_)) return false;
  if (const auto* m = dynamic_cast<const SendMsg*>(vm)) {
    on_send(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const EchoMsg*>(vm)) {
    on_echo(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const ReadyMsg*>(vm)) {
    on_ready(ctx, from, *m);
  } else if (dynamic_cast<const HelpMsg*>(vm) != nullptr) {
    on_help(ctx, from);
  } else if (const auto* m = dynamic_cast<const CommitmentReq*>(vm)) {
    on_ccreq(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const CommitmentReply*>(vm)) {
    on_ccreply(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const RecShareMsg*>(vm)) {
    on_rec_share(ctx, from, *m);
  } else {
    return false;
  }
  return true;
}

VssInstance::PerCommit& VssInstance::per_commit(const Bytes& digest) { return commits_[digest]; }

const Bytes& VssInstance::ready_payload(const Bytes& digest, PerCommit& pc) const {
  if (pc.ready_payload.empty()) pc.ready_payload = ready_sig_payload(sid_, digest);
  return pc.ready_payload;
}

void VssInstance::on_send(sim::Context& ctx, sim::NodeId from, const SendMsg& m) {
  // Only the dealer's first send counts (Fig 1 "from P_d (first time)").
  if (from != sid_.dealer || got_send_) return;
  if (!m.commitment || m.commitment->degree() != params_.t) {
    ++rejected_;
    return;
  }
  got_send_ = true;
  Bytes digest = m.commitment->digest();
  learn_commitment(ctx, digest, m.commitment);
  if (!m.row || !m.commitment->verify_poly(self_, *m.row)) {
    // Renewal retransmissions legitimately omit the row; a mismatching row
    // is a faulty dealer. Either way no echo round is triggered.
    if (m.row) ++rejected_;
    return;
  }
  // Echo a(j) = f(i, j) to every P_j.
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    // reveal-ok: the echo point f(i, j) is addressed to P_j, who is entitled
    // to it (Fig 1 echo round).
    Scalar alpha = m.row->eval_at(j).reveal();
    auto echo = std::make_shared<EchoMsg>(
        sid_, params_.mode == CommitmentMode::Full ? m.commitment : nullptr, digest,
        std::move(alpha));
    send_buffered(ctx, j, std::move(echo));
  }
}

void VssInstance::on_echo(sim::Context& ctx, sim::NodeId from, const EchoMsg& m) {
  if (!seen_echo_.insert(from).second) return;  // first time only
  Bytes digest = m.commitment ? m.commitment->digest() : m.digest;
  PerCommit& pc = per_commit(digest);
  if (m.commitment) learn_commitment(ctx, digest, m.commitment);
  if (!pc.commitment) {
    // Hashed mode and C unknown: buffer and ask the sender for the matrix.
    pc.pending.push_back(PerCommit::Pending{from, m.point, false, std::nullopt});
    if (!pc.requested_commitment) {
      pc.requested_commitment = true;
      ctx.send(from, std::make_shared<CommitmentReq>(sid_, digest));
    }
    return;
  }
  accept_point(ctx, digest, pc, from, m.point, /*is_ready=*/false, std::nullopt);
}

void VssInstance::on_ready(sim::Context& ctx, sim::NodeId from, const ReadyMsg& m) {
  if (!seen_ready_.insert(from).second) return;
  Bytes digest = m.commitment ? m.commitment->digest() : m.digest;
  PerCommit& pc = per_commit(digest);
  if (m.commitment) learn_commitment(ctx, digest, m.commitment);
  if (params_.sign_ready) {
    if (!m.sig ||
        !params_.keyring->verify_from(from, ready_payload(digest, pc), *m.sig)) {
      ++rejected_;
      return;
    }
  }
  if (!pc.commitment) {
    pc.pending.push_back(PerCommit::Pending{from, m.point, true, m.sig});
    if (!pc.requested_commitment) {
      pc.requested_commitment = true;
      ctx.send(from, std::make_shared<CommitmentReq>(sid_, digest));
    }
    return;
  }
  accept_point(ctx, digest, pc, from, m.point, /*is_ready=*/true, m.sig);
}

void VssInstance::learn_commitment(sim::Context& ctx, const Bytes& digest,
                                   std::shared_ptr<const crypto::FeldmanMatrix> c) {
  if (expected_c00_ && c->c00() != *expected_c00_) {
    // Resharing of something other than the dealer's old share (§5.2).
    ++rejected_;
    return;
  }
  PerCommit& pc = per_commit(digest);
  if (pc.commitment) return;
  pc.commitment = std::move(c);
  // Flush buffered hashed-mode points now that verification is possible.
  std::vector<PerCommit::Pending> pend = std::move(pc.pending);
  pc.pending.clear();
  for (const auto& p : pend) {
    accept_point(ctx, digest, pc, p.from, p.point, p.is_ready, p.sig);
    if (shared_) break;
  }
}

void VssInstance::accept_point(sim::Context& ctx, const Bytes& digest, PerCommit& pc,
                               sim::NodeId from, const Scalar& alpha, bool is_ready,
                               const std::optional<crypto::Signature>& sig) {
  if (shared_) return;
  // verify-point(C, i, m, alpha): alpha must equal f(m, i) — checked against
  // the cached row projection (bit-identical to verify_point, (t+1) exps).
  // A sender's echo and ready carry the SAME evaluation, so when `from`
  // already delivered a positively verified point with the same value the
  // recheck is a byte-identical recomputation and the engine's point memo
  // skips it. A differing value (an equivocating sender) misses the memo
  // and runs — and fails — the full verify, so the memo admits nothing a
  // fresh verify would not.
  bool memoized = false;
  if (crypto::point_memo_enabled() && pc.point_senders.count(from) != 0) {
    for (const auto& [sender, value] : pc.points) {
      if (sender == from) {
        memoized = value == alpha;
        break;
      }
    }
  }
  if (memoized) {
    crypto::sig_stats_count_point_hit();
  } else {
    crypto::sig_stats_count_point_miss();
    if (!pc.row_proj) pc.row_proj = pc.commitment->row_commitment(self_);
    if (!pc.row_proj->verify_share(from, alpha)) {
      ++rejected_;
      return;
    }
  }
  // The echo and ready points of one sender are the same evaluation f(m, i);
  // keep one copy so interpolation abscissas stay distinct.
  if (pc.point_senders.insert(from).second) pc.points.emplace_back(from, alpha);
  if (is_ready) {
    pc.readys += 1;
    if (params_.sign_ready && sig) pc.ready_sigs.push_back(ReadySig{from, *sig});
  } else {
    pc.echoes += 1;
  }
  check_transitions(ctx, digest, pc);
}

void VssInstance::check_transitions(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  // Echo path: e_C hits ceil((n+t+1)/2) with r_C < t+1 — or ready path:
  // r_C hits t+1 with e_C below quorum. Both interpolate the row and send
  // ready; `sent_ready` makes the two firing rules mutually exclusive.
  if (!pc.sent_ready &&
      (pc.echoes >= params_.echo_quorum() || pc.readys >= params_.t + 1) &&
      pc.points.size() >= params_.t + 1) {
    send_ready_round(ctx, digest, pc);
  }
  if (!shared_ && pc.readys >= params_.ready_quorum() && pc.row) {
    complete(ctx, digest, pc);
  }
}

void VssInstance::send_ready_round(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  pc.sent_ready = true;
  if (!pc.row) {
    // Lagrange-interpolate a_i from t+1 verified points of A_C.
    std::vector<std::pair<std::uint64_t, Scalar>> pts(
        pc.points.begin(), pc.points.begin() + static_cast<std::ptrdiff_t>(params_.t + 1));
    pc.row = crypto::interpolate(*params_.grp, pts);
  }
  std::optional<crypto::Signature> sig;
  if (params_.sign_ready) {
    sig = params_.keyring->sign_as(self_, ready_payload(digest, pc));
  }
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    // reveal-ok: the ready point a_i(j) is addressed to P_j, who is entitled
    // to it (Fig 1 ready round).
    Scalar alpha = pc.row->eval_at(j).reveal();
    auto ready = std::make_shared<ReadyMsg>(
        sid_, params_.mode == CommitmentMode::Full ? pc.commitment : nullptr, digest,
        std::move(alpha), sig);
    send_buffered(ctx, j, std::move(ready));
  }
}

void VssInstance::complete(sim::Context& ctx, const Bytes&, PerCommit& pc) {
  SharedOutput out;
  out.sid = sid_;
  out.commitment = pc.commitment;
  out.share = pc.row->eval_at(0);  // s_i = a_i(0)
  if (params_.sign_ready) {
    out.ready_proof.assign(
        pc.ready_sigs.begin(),
        pc.ready_sigs.begin() +
            static_cast<std::ptrdiff_t>(std::min(pc.ready_sigs.size(), params_.ready_quorum())));
  }
  shared_ = out;
  if (on_shared_) on_shared_(ctx, *shared_);
}

void VssInstance::on_help(sim::Context& ctx, sim::NodeId from) {
  // Help budget (Fig 1): c_l <= d(kappa), c <= (t+1) d(kappa).
  std::uint64_t& cl = help_per_node_[from];
  if (cl > params_.d_kappa || help_total_ > (params_.t + 1) * params_.d_kappa) return;
  cl += 1;
  help_total_ += 1;
  for (const sim::MessagePtr& m : buffer_.at(from)) ctx.send(from, m);
}

void VssInstance::on_ccreq(sim::Context& ctx, sim::NodeId from, const CommitmentReq& m) {
  auto it = commits_.find(m.digest);
  if (it == commits_.end() || !it->second.commitment) return;
  ctx.send(from, std::make_shared<CommitmentReply>(sid_, it->second.commitment));
}

void VssInstance::on_ccreply(sim::Context& ctx, sim::NodeId, const CommitmentReply& m) {
  if (!m.commitment || m.commitment->degree() != params_.t) {
    ++rejected_;
    return;
  }
  Bytes digest = m.commitment->digest();
  if (commits_.count(digest) == 0) return;  // unsolicited
  learn_commitment(ctx, digest, m.commitment);
}

void VssInstance::recover(sim::Context& ctx) {
  ctx.multicast(peers_, std::make_shared<HelpMsg>(sid_));
  // Replay own outgoing buffer (Fig 1: "send all messages in B").
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    for (const sim::MessagePtr& m : buffer_.at(j)) ctx.send(j, m);
  }
}

void VssInstance::start_reconstruct(sim::Context& ctx) {
  if (!shared_ || reconstructing_) return;
  reconstructing_ = true;
  // reveal-ok: protocol Rec publishes s_i to all peers by design.
  ctx.multicast(peers_, std::make_shared<RecShareMsg>(sid_, shared_->commitment->digest(),
                                                      shared_->share.reveal()));
}

void VssInstance::on_rec_share(sim::Context& ctx, sim::NodeId from, const RecShareMsg& m) {
  if (!shared_ || reconstructed_) return;
  if (!seen_rec_.insert(from).second) return;
  if (!ct_equal(m.digest, shared_->commitment->digest())) {
    ++rejected_;
    return;
  }
  // Share s_m = f(m, 0); verify-point with i = 0, i.e. against the cached
  // share vector (row 0 of C — no exponentiations to project).
  if (!rec_vec_) rec_vec_ = shared_->commitment->share_vector();
  if (!rec_vec_->verify_share(from, m.share)) {
    ++rejected_;
    return;
  }
  rec_points_.emplace_back(from, m.share);
  if (rec_points_.size() >= params_.t + 1) {
    reconstructed_ = crypto::interpolate_at(*params_.grp, rec_points_, 0);
    if (on_reconstructed_) on_reconstructed_(ctx, *reconstructed_);
  }
}

VssNode::VssNode(VssParams params, sim::NodeId self) : params_(params), self_(self) {}

VssInstance& VssNode::instance(const SessionId& sid) {
  auto it = instances_.find(sid);
  if (it == instances_.end()) {
    it = instances_.emplace(sid, VssInstance(params_, sid, self_)).first;
  }
  return it->second;
}

void VssNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(msg.get());
  if (vm == nullptr) return;
  VssInstance& inst = instance(vm->sid);
  if (from == sim::kOperator) {
    if (const auto* share = dynamic_cast<const ShareOp*>(vm)) {
      inst.deal(ctx, share->secret);
    } else if (dynamic_cast<const ReconstructOp*>(vm) != nullptr) {
      inst.start_reconstruct(ctx);
    } else if (dynamic_cast<const RecoverOp*>(vm) != nullptr) {
      inst.recover(ctx);
    }
    return;
  }
  inst.handle(ctx, from, *msg);
}

void VssNode::on_recover(sim::Context& ctx) {
  for (auto& [sid, inst] : instances_) inst.recover(ctx);
}

}  // namespace dkg::vss
