#include "vss/hybridvss.hpp"

#include <stdexcept>

#include "crypto/drbg.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/sigverify.hpp"
#include "engine/parallel_verify.hpp"
#include "engine/verify_pool.hpp"

namespace dkg::vss {

using crypto::BiPolynomial;
using crypto::FeldmanMatrix;
using crypto::Polynomial;
using crypto::Scalar;

namespace {

// Context stub for post-run backlog drains (rejected() / ~VssInstance).
// A drain can never fire a transition: poke_deferred folds the moment the
// OPTIMISTIC tallies (verified + in-flight) cross a Fig-1 threshold, and
// optimistic counts dominate true counts pointwise — so if the backlog still
// exists at drain time, its optimistic tallies are below every threshold,
// and the true tallies after folding are bounded by them. Sends or timers
// from a drain therefore indicate a logic bug; throw loudly rather than
// fabricate events outside the simulator's deterministic queue.
class DrainContext : public sim::Context {
 public:
  DrainContext(sim::NodeId self, std::size_t n) : self_(self), n_(n), rng_(0) {}

  sim::NodeId self() const override { return self_; }
  std::size_t node_count() const override { return n_; }
  sim::Time now() const override { return 0; }
  void send(sim::NodeId, sim::MessagePtr) override {
    throw std::logic_error("HybridVSS: send from deferred-verification drain");
  }
  void start_timer(sim::TimerId, sim::Time) override {
    throw std::logic_error("HybridVSS: timer from deferred-verification drain");
  }
  void stop_timer(sim::TimerId) override {}
  crypto::Drbg& rng() override { return rng_; }

 private:
  sim::NodeId self_;
  std::size_t n_;
  crypto::Drbg rng_;
};

}  // namespace

VssInstance::PerCommit::PerCommit() = default;
VssInstance::PerCommit::~PerCommit() = default;

VssInstance::~VssInstance() {
  // Fold any still-deferred checks so observable counters (rejected_, the
  // engine's point-memo stats) match the sequential run even for instances
  // that never complete — a DKG run tears its nodes down with backlogs in
  // flight, and run_scenario snapshots stats after teardown.
  try {
    drain_deferred();
  } catch (...) {
    // Never throw out of a destructor; the DrainContext throw path means a
    // logic bug that dedicated tests catch via rejected().
  }
}

std::uint64_t VssInstance::rejected() {
  drain_deferred();
  return rejected_;
}

void VssInstance::drain_deferred() {
  for (auto& [digest, pc] : commits_) {
    if (pc.deferred.empty()) continue;
    DrainContext ctx(self_, params_.n);
    fold_deferred(ctx, digest, pc);
  }
}

VssInstance::VssInstance(VssParams params, SessionId sid, sim::NodeId self)
    : params_(params), sid_(sid), self_(self), buffer_(params.n + 1) {
  if (!params_.resilient()) throw std::invalid_argument("HybridVSS: n < 3t + 2f + 1");
  if (params_.sign_ready && !params_.keyring) {
    throw std::invalid_argument("HybridVSS: sign_ready requires a keyring");
  }
  peers_ = sim::all_nodes(params_.n);
}

void VssInstance::send_buffered(sim::Context& ctx, sim::NodeId to, sim::MessagePtr msg) {
  buffer_.at(to).push_back(msg);
  ctx.send(to, std::move(msg));
}

void VssInstance::multicast_buffered(sim::Context& ctx, const sim::MessagePtr& msg) {
  for (sim::NodeId j : peers_) buffer_.at(j).push_back(msg);
  ctx.multicast(peers_, msg);
}

void VssInstance::deal(sim::Context& ctx, const Scalar& secret) {
  BiPolynomial f = BiPolynomial::random(secret, params_.t, ctx.rng());
  deal_polynomial(ctx, f);
}

void VssInstance::deal_polynomial(sim::Context& ctx, const BiPolynomial& f) {
  if (self_ != sid_.dealer) throw std::logic_error("HybridVSS: deal on non-dealer");
  auto commitment = std::make_shared<const FeldmanMatrix>(FeldmanMatrix::commit(f));
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    std::optional<Polynomial> row = f.row(j);
    auto msg = std::make_shared<SendMsg>(sid_, commitment, std::move(row));
    if (params_.erase_row_on_store) {
      // §5.2: retransmissions of send must not carry old-phase polynomials;
      // buffer a stripped copy.
      buffer_.at(j).push_back(std::make_shared<SendMsg>(sid_, commitment, std::nullopt));
      ctx.send(j, std::move(msg));
    } else {
      send_buffered(ctx, j, std::move(msg));
    }
  }
}

bool VssInstance::handle(sim::Context& ctx, sim::NodeId from, const sim::Message& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(&msg);
  if (vm == nullptr || !(vm->sid == sid_)) return false;
  if (const auto* m = dynamic_cast<const SendMsg*>(vm)) {
    on_send(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const EchoMsg*>(vm)) {
    on_echo(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const ReadyMsg*>(vm)) {
    on_ready(ctx, from, *m);
  } else if (dynamic_cast<const HelpMsg*>(vm) != nullptr) {
    on_help(ctx, from);
  } else if (const auto* m = dynamic_cast<const CommitmentReq*>(vm)) {
    on_ccreq(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const CommitmentReply*>(vm)) {
    on_ccreply(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const RecShareMsg*>(vm)) {
    on_rec_share(ctx, from, *m);
  } else {
    return false;
  }
  return true;
}

VssInstance::PerCommit& VssInstance::per_commit(const Bytes& digest) { return commits_[digest]; }

const Bytes& VssInstance::ready_payload(const Bytes& digest, PerCommit& pc) const {
  if (pc.ready_payload.empty()) pc.ready_payload = ready_sig_payload(sid_, digest);
  return pc.ready_payload;
}

void VssInstance::on_send(sim::Context& ctx, sim::NodeId from, const SendMsg& m) {
  // Only the dealer's first send counts (Fig 1 "from P_d (first time)").
  if (from != sid_.dealer || got_send_) return;
  if (!m.commitment || m.commitment->degree() != params_.t) {
    ++rejected_;
    return;
  }
  got_send_ = true;
  Bytes digest = m.commitment->digest();
  learn_commitment(ctx, digest, m.commitment);
  if (!m.row || !engine::parallel_verify_poly(*m.commitment, self_, *m.row)) {
    // Renewal retransmissions legitimately omit the row; a mismatching row
    // is a faulty dealer. Either way no echo round is triggered.
    if (m.row) ++rejected_;
    return;
  }
  // Echo a(j) = f(i, j) to every P_j (evaluations split across the pool;
  // sends stay on the event thread in recipient order).
  std::vector<Scalar> alphas = engine::parallel_eval_row(*m.row, params_.n);
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    auto echo = std::make_shared<EchoMsg>(
        sid_, params_.mode == CommitmentMode::Full ? m.commitment : nullptr, digest,
        std::move(alphas[j - 1]));
    send_buffered(ctx, j, std::move(echo));
  }
}

void VssInstance::on_echo(sim::Context& ctx, sim::NodeId from, const EchoMsg& m) {
  if (!seen_echo_.insert(from).second) return;  // first time only
  Bytes digest = m.commitment ? m.commitment->digest() : m.digest;
  PerCommit& pc = per_commit(digest);
  if (m.commitment) learn_commitment(ctx, digest, m.commitment);
  if (!pc.commitment) {
    // Hashed mode and C unknown: buffer and ask the sender for the matrix.
    pc.pending.push_back(PerCommit::Pending{from, m.point, false, std::nullopt});
    if (!pc.requested_commitment) {
      pc.requested_commitment = true;
      ctx.send(from, std::make_shared<CommitmentReq>(sid_, digest));
    }
    return;
  }
  if (engine::verify_parallel_active() && !shared_) {
    deferred_accept(ctx, digest, pc, from, m.point, /*is_ready=*/false, std::nullopt,
                    /*sig_checked=*/true);
    return;
  }
  accept_point(ctx, digest, pc, from, m.point, /*is_ready=*/false, std::nullopt);
}

void VssInstance::on_ready(sim::Context& ctx, sim::NodeId from, const ReadyMsg& m) {
  if (!seen_ready_.insert(from).second) return;
  Bytes digest = m.commitment ? m.commitment->digest() : m.digest;
  PerCommit& pc = per_commit(digest);
  if (m.commitment) learn_commitment(ctx, digest, m.commitment);
  // Pool mode defers the signature check only when the commitment is known
  // and the instance is live: the commitment-unknown path must verify inline
  // so the CommitmentReq/buffer transcript stays byte-identical, and a
  // missing signature rejects inline in both modes (no verify runs at all).
  const bool pooled = engine::verify_parallel_active() && pc.commitment != nullptr && !shared_;
  if (params_.sign_ready) {
    if (!m.sig) {
      ++rejected_;
      return;
    }
    if (!pooled && !params_.keyring->verify_from(from, ready_payload(digest, pc), *m.sig)) {
      ++rejected_;
      return;
    }
  }
  if (!pc.commitment) {
    pc.pending.push_back(PerCommit::Pending{from, m.point, true, m.sig});
    if (!pc.requested_commitment) {
      pc.requested_commitment = true;
      ctx.send(from, std::make_shared<CommitmentReq>(sid_, digest));
    }
    return;
  }
  if (pooled) {
    deferred_accept(ctx, digest, pc, from, m.point, /*is_ready=*/true, m.sig,
                    /*sig_checked=*/false);
    return;
  }
  accept_point(ctx, digest, pc, from, m.point, /*is_ready=*/true, m.sig);
}

void VssInstance::learn_commitment(sim::Context& ctx, const Bytes& digest,
                                   std::shared_ptr<const crypto::FeldmanMatrix> c) {
  if (expected_c00_ && c->c00() != *expected_c00_) {
    // Resharing of something other than the dealer's old share (§5.2).
    ++rejected_;
    return;
  }
  PerCommit& pc = per_commit(digest);
  if (pc.commitment) return;
  pc.commitment = std::move(c);
  // Flush buffered hashed-mode points now that verification is possible.
  // Buffered ready signatures were already verified inline on arrival, so
  // the pool path defers only the point checks (sig_checked).
  std::vector<PerCommit::Pending> pend = std::move(pc.pending);
  pc.pending.clear();
  for (const auto& p : pend) {
    if (engine::verify_parallel_active() && !shared_) {
      deferred_accept(ctx, digest, pc, p.from, p.point, p.is_ready, p.sig,
                      /*sig_checked=*/true);
    } else {
      accept_point(ctx, digest, pc, p.from, p.point, p.is_ready, p.sig);
    }
    if (shared_) break;
  }
}

void VssInstance::deferred_accept(sim::Context& ctx, const Bytes& digest, PerCommit& pc,
                                  sim::NodeId from, const Scalar& alpha, bool is_ready,
                                  const std::optional<crypto::Signature>& sig, bool sig_checked) {
  if (!pc.scope) pc.scope = std::make_unique<engine::VerifyScope>();
  const bool ec = pc.commitment->group().backend() == crypto::GroupBackend::Ec256;
  if (!ec && !pc.row_proj) {
    pc.row_proj = engine::parallel_row_commitment(*pc.commitment, self_);
  }
  pc.deferred.emplace_back();
  PerCommit::Deferred& e = pc.deferred.back();
  e.from = from;
  e.point = alpha;
  e.is_ready = is_ready;
  e.sig = sig;
  if (is_ready && params_.sign_ready && !sig_checked) {
    // Payload bytes are memoized on the event thread; the task only verifies.
    const Bytes* payload = &ready_payload(digest, pc);
    const crypto::Keyring* ring = params_.keyring.get();
    PerCommit::Deferred* ep = &e;
    e.sig_deferred = true;
    pc.scope->push(
        [ring, ep, payload] { ep->sig_ok = ring->verify_from(ep->from, *payload, *ep->sig); });
  }
  // Skip the point task when the verdict is already determined:
  //  * folded memo hit — a positively verified point from `from` with this
  //    exact value sits in pc.points, so accept_point's memo branch resolves
  //    the entry at fold time (entries only ever accumulate, so a hit now is
  //    still a hit then);
  //  * backlog link — an earlier deferred entry with the same (from, value)
  //    owns a task whose verdict doubles as ours (same projection, same
  //    inputs ⇒ same deterministic result).
  bool folded_equal = false;
  if (crypto::point_memo_enabled() && pc.point_senders.count(from) != 0) {
    for (const auto& [sender, value] : pc.points) {
      if (sender == from) {
        folded_equal = value == alpha;
        break;
      }
    }
  }
  if (!folded_equal) {
    const PerCommit::Deferred* root = nullptr;
    for (const PerCommit::Deferred& prev : pc.deferred) {
      if (&prev == &e) break;
      if (prev.from == from && prev.point == alpha) {
        // The first matching entry either owns a task or links to the entry
        // that does (a task-less, link-less match would have been a folded
        // memo hit, in which case so are we — handled above).
        root = prev.link != nullptr ? prev.link : &prev;
        break;
      }
    }
    if (root != nullptr) {
      e.link = root;
    } else {
      e.has_point_task = true;
      PerCommit::Deferred* ep = &e;
      if (ec) {
        // ec256 tasks check against the matrix's shared share grid (its
        // internal lock serializes concurrent growth; verdicts identical).
        const crypto::FeldmanMatrix* c = pc.commitment.get();
        const sim::NodeId self = self_;
        pc.scope->push([c, self, ep] { ep->point_ok = c->verify_point(self, ep->from, ep->point); });
      } else {
        const crypto::FeldmanVector* proj = &*pc.row_proj;
        pc.scope->push([proj, ep] { ep->point_ok = proj->verify_share(ep->from, ep->point); });
      }
    }
  }
  if (is_ready) {
    pc.pend_readys += 1;
  } else {
    pc.pend_echoes += 1;
  }
  poke_deferred(ctx, digest, pc);
}

void VssInstance::poke_deferred(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  // Fold when the optimistic tallies cross any Fig-1 threshold. Optimistic
  // counts dominate true counts pointwise, so every event where the
  // sequential run crosses a threshold folds here too — and a fold replays
  // exact sequential semantics in arrival order, so the transition fires on
  // the same event with the same content. Extra folds (optimism deflated by
  // failing checks) merely shorten the backlog; they change nothing
  // observable. The points >= t+1 interpolation gate is deliberately
  // ignored: it only restricts firing, never triggers it.
  std::size_t opt_echoes = pc.echoes + pc.pend_echoes;
  std::size_t opt_readys = pc.readys + pc.pend_readys;
  bool trigger =
      !pc.sent_ready && (opt_echoes >= params_.echo_quorum() || opt_readys >= params_.t + 1);
  if (opt_readys >= params_.ready_quorum()) trigger = true;
  if (trigger) fold_deferred(ctx, digest, pc);
}

void VssInstance::fold_deferred(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  if (pc.deferred.empty()) return;
  pc.scope->join();
  for (const PerCommit::Deferred& e : pc.deferred) {
    // Mirrors the sequential learn_commitment flush: entries past a
    // completion are dropped without any accounting.
    if (shared_) break;
    if (e.sig_deferred && !e.sig_ok) {
      // Sequential on_ready rejects a bad signature before any point logic —
      // no memo stats, no point bookkeeping.
      ++rejected_;
      continue;
    }
    const bool* verdict = nullptr;
    if (e.has_point_task) {
      verdict = &e.point_ok;
    } else if (e.link != nullptr) {
      verdict = &e.link->point_ok;
    }
    accept_point(ctx, digest, pc, e.from, e.point, e.is_ready, e.sig, verdict);
  }
  pc.deferred.clear();
  pc.pend_echoes = 0;
  pc.pend_readys = 0;
}

void VssInstance::accept_point(sim::Context& ctx, const Bytes& digest, PerCommit& pc,
                               sim::NodeId from, const Scalar& alpha, bool is_ready,
                               const std::optional<crypto::Signature>& sig,
                               const bool* verdict) {
  if (shared_) return;
  // verify-point(C, i, m, alpha): alpha must equal f(m, i) — checked against
  // the cached row projection (bit-identical to verify_point, (t+1) exps).
  // A sender's echo and ready carry the SAME evaluation, so when `from`
  // already delivered a positively verified point with the same value the
  // recheck is a byte-identical recomputation and the engine's point memo
  // skips it. A differing value (an equivocating sender) misses the memo
  // and runs — and fails — the full verify, so the memo admits nothing a
  // fresh verify would not.
  bool memoized = false;
  if (crypto::point_memo_enabled() && pc.point_senders.count(from) != 0) {
    for (const auto& [sender, value] : pc.points) {
      if (sender == from) {
        memoized = value == alpha;
        break;
      }
    }
  }
  if (memoized) {
    crypto::sig_stats_count_point_hit();
  } else {
    crypto::sig_stats_count_point_miss();
    bool ok;
    if (verdict != nullptr) {
      // A non-null verdict carries this exact check's result, computed by a
      // pool task against the same cached state (fold path).
      ok = *verdict;
    } else if (pc.commitment->group().backend() == crypto::GroupBackend::Ec256) {
      // ec256: the matrix's share-value grid makes verify_point itself the
      // fast path (crypto/feldman.cpp) — no row projection is materialized.
      ok = pc.commitment->verify_point(self_, from, alpha);
    } else {
      if (!pc.row_proj) pc.row_proj = pc.commitment->row_commitment(self_);
      ok = pc.row_proj->verify_share(from, alpha);
    }
    if (!ok) {
      ++rejected_;
      return;
    }
  }
  // The echo and ready points of one sender are the same evaluation f(m, i);
  // keep one copy so interpolation abscissas stay distinct.
  if (pc.point_senders.insert(from).second) pc.points.emplace_back(from, alpha);
  if (is_ready) {
    pc.readys += 1;
    if (params_.sign_ready && sig) pc.ready_sigs.push_back(ReadySig{from, *sig});
  } else {
    pc.echoes += 1;
  }
  check_transitions(ctx, digest, pc);
}

void VssInstance::check_transitions(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  // Echo path: e_C hits ceil((n+t+1)/2) with r_C < t+1 — or ready path:
  // r_C hits t+1 with e_C below quorum. Both interpolate the row and send
  // ready; `sent_ready` makes the two firing rules mutually exclusive.
  if (!pc.sent_ready &&
      (pc.echoes >= params_.echo_quorum() || pc.readys >= params_.t + 1) &&
      pc.points.size() >= params_.t + 1) {
    send_ready_round(ctx, digest, pc);
  }
  if (!shared_ && pc.readys >= params_.ready_quorum() && pc.row) {
    complete(ctx, digest, pc);
  }
}

void VssInstance::send_ready_round(sim::Context& ctx, const Bytes& digest, PerCommit& pc) {
  pc.sent_ready = true;
  if (!pc.row) {
    // Lagrange-interpolate a_i from t+1 verified points of A_C.
    std::vector<std::pair<std::uint64_t, Scalar>> pts(
        pc.points.begin(), pc.points.begin() + static_cast<std::ptrdiff_t>(params_.t + 1));
    pc.row = crypto::interpolate(*params_.grp, pts);
  }
  std::optional<crypto::Signature> sig;
  if (params_.sign_ready) {
    sig = params_.keyring->sign_as(self_, ready_payload(digest, pc));
  }
  // Ready points a_i(j) evaluated across the pool; sends stay on the event
  // thread in recipient order.
  std::vector<Scalar> alphas = engine::parallel_eval_row(*pc.row, params_.n);
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    auto ready = std::make_shared<ReadyMsg>(
        sid_, params_.mode == CommitmentMode::Full ? pc.commitment : nullptr, digest,
        std::move(alphas[j - 1]), sig);
    send_buffered(ctx, j, std::move(ready));
  }
}

void VssInstance::complete(sim::Context& ctx, const Bytes&, PerCommit& pc) {
  SharedOutput out;
  out.sid = sid_;
  out.commitment = pc.commitment;
  out.share = pc.row->eval_at(0);  // s_i = a_i(0)
  if (params_.sign_ready) {
    out.ready_proof.assign(
        pc.ready_sigs.begin(),
        pc.ready_sigs.begin() +
            static_cast<std::ptrdiff_t>(std::min(pc.ready_sigs.size(), params_.ready_quorum())));
  }
  shared_ = out;
  if (on_shared_) on_shared_(ctx, *shared_);
}

void VssInstance::on_help(sim::Context& ctx, sim::NodeId from) {
  // Help budget (Fig 1): c_l <= d(kappa), c <= (t+1) d(kappa).
  std::uint64_t& cl = help_per_node_[from];
  if (cl > params_.d_kappa || help_total_ > (params_.t + 1) * params_.d_kappa) return;
  cl += 1;
  help_total_ += 1;
  for (const sim::MessagePtr& m : buffer_.at(from)) ctx.send(from, m);
}

void VssInstance::on_ccreq(sim::Context& ctx, sim::NodeId from, const CommitmentReq& m) {
  auto it = commits_.find(m.digest);
  if (it == commits_.end() || !it->second.commitment) return;
  ctx.send(from, std::make_shared<CommitmentReply>(sid_, it->second.commitment));
}

void VssInstance::on_ccreply(sim::Context& ctx, sim::NodeId, const CommitmentReply& m) {
  if (!m.commitment || m.commitment->degree() != params_.t) {
    ++rejected_;
    return;
  }
  Bytes digest = m.commitment->digest();
  if (commits_.count(digest) == 0) return;  // unsolicited
  learn_commitment(ctx, digest, m.commitment);
}

void VssInstance::recover(sim::Context& ctx) {
  ctx.multicast(peers_, std::make_shared<HelpMsg>(sid_));
  // Replay own outgoing buffer (Fig 1: "send all messages in B").
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    for (const sim::MessagePtr& m : buffer_.at(j)) ctx.send(j, m);
  }
}

void VssInstance::start_reconstruct(sim::Context& ctx) {
  if (!shared_ || reconstructing_) return;
  reconstructing_ = true;
  // reveal-ok: protocol Rec publishes s_i to all peers by design.
  ctx.multicast(peers_, std::make_shared<RecShareMsg>(sid_, shared_->commitment->digest(),
                                                      shared_->share.reveal()));
}

void VssInstance::on_rec_share(sim::Context& ctx, sim::NodeId from, const RecShareMsg& m) {
  if (!shared_ || reconstructed_) return;
  if (!seen_rec_.insert(from).second) return;
  if (!ct_equal(m.digest, shared_->commitment->digest())) {
    ++rejected_;
    return;
  }
  // Share s_m = f(m, 0); verify-point with i = 0, i.e. against the cached
  // share vector (row 0 of C — no exponentiations to project).
  if (!rec_vec_) rec_vec_ = shared_->commitment->share_vector();
  if (!rec_vec_->verify_share(from, m.share)) {
    ++rejected_;
    return;
  }
  rec_points_.emplace_back(from, m.share);
  if (rec_points_.size() >= params_.t + 1) {
    reconstructed_ = crypto::interpolate_at(*params_.grp, rec_points_, 0);
    if (on_reconstructed_) on_reconstructed_(ctx, *reconstructed_);
  }
}

VssNode::VssNode(VssParams params, sim::NodeId self) : params_(params), self_(self) {}

VssInstance& VssNode::instance(const SessionId& sid) {
  auto it = instances_.find(sid);
  if (it == instances_.end()) {
    it = instances_.emplace(sid, VssInstance(params_, sid, self_)).first;
  }
  return it->second;
}

void VssNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  const auto* vm = dynamic_cast<const VssMessage*>(msg.get());
  if (vm == nullptr) return;
  VssInstance& inst = instance(vm->sid);
  if (from == sim::kOperator) {
    if (const auto* share = dynamic_cast<const ShareOp*>(vm)) {
      inst.deal(ctx, share->secret);
    } else if (dynamic_cast<const ReconstructOp*>(vm) != nullptr) {
      inst.start_reconstruct(ctx);
    } else if (dynamic_cast<const RecoverOp*>(vm) != nullptr) {
      inst.recover(ctx);
    }
    return;
  }
  inst.handle(ctx, from, *msg);
}

void VssNode::on_recover(sim::Context& ctx) {
  for (auto& [sid, inst] : instances_) inst.recover(ctx);
}

}  // namespace dkg::vss
