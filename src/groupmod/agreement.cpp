#include "groupmod/agreement.hpp"

namespace dkg::groupmod {

void GroupModNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  if (from == sim::kOperator) {
    if (const auto* op = dynamic_cast<const ProposeOp*>(msg.get())) {
      ctx.multicast(peers(), std::make_shared<GmProposeMsg>(op->proposal));
    }
    return;
  }
  const Proposal* p = nullptr;
  enum { kPropose, kEcho, kReady } kind;
  if (const auto* m = dynamic_cast<const GmProposeMsg*>(msg.get())) {
    p = &m->proposal;
    kind = kPropose;
  } else if (const auto* m = dynamic_cast<const GmEchoMsg*>(msg.get())) {
    p = &m->proposal;
    kind = kEcho;
  } else if (const auto* m = dynamic_cast<const GmReadyMsg*>(msg.get())) {
    p = &m->proposal;
    kind = kReady;
  } else {
    return;
  }
  Bytes key = p->encode();
  Tally& tally = tallies_[key];
  proposals_.emplace(key, *p);
  switch (kind) {
    case kPropose:
      if (!tally.sent_echo && (!policy_ || policy_(*p))) {
        tally.sent_echo = true;
        ctx.multicast(peers(), std::make_shared<GmEchoMsg>(*p));
      }
      break;
    case kEcho:
      tally.echoes.insert(from);
      break;
    case kReady:
      tally.readys.insert(from);
      break;
  }
  maybe_progress(ctx, *p, tally);
}

void GroupModNode::maybe_progress(sim::Context& ctx, const Proposal& p, Tally& tally) {
  if (!tally.sent_ready &&
      (tally.echoes.size() >= params_.echo_quorum() || tally.readys.size() >= params_.t + 1)) {
    tally.sent_ready = true;
    ctx.multicast(peers(), std::make_shared<GmReadyMsg>(p));
  }
  if (!tally.accepted && tally.readys.size() >= params_.ready_quorum()) {
    tally.accepted = true;
    queue_.push_back(p);
  }
}

}  // namespace dkg::groupmod
