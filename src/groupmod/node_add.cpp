#include "groupmod/node_add.hpp"

#include "crypto/lagrange.hpp"
#include "crypto/multiexp.hpp"

namespace dkg::groupmod {

using crypto::Element;
using crypto::FeldmanVector;
using crypto::Scalar;

void SubshareMsg::serialize(Writer& w) const {
  w.u32(tau);
  blob_shared(w, h_commitment);
  blob_shared(w, group_vec);
  w.raw(subshare.to_bytes());
}

NodeAddNode::NodeAddNode(core::DkgParams params, sim::NodeId self, proactive::ShareState state,
                         sim::NodeId new_node)
    : core::DkgNode(params, self), state_(std::move(state)), new_node_(new_node) {}

void NodeAddNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  if (from == sim::kOperator) {
    // The Node-Add request: reshare the current share (§6.2). The paper's
    // "wait for t other identical Node-Add requests" is realized by the
    // harness delivering the request to every member.
    if (const auto* m = dynamic_cast<const core::DkgStartOp*>(msg.get());
        m && m->tau == params_.tau && !is_started()) {
      init_vss(ctx);
      for (sim::NodeId d = 1; d <= params_.n(); ++d) {
        vss_instance(d).set_expected_c00(state_.commitment.eval_commit(d));
      }
      crypto::BiPolynomial f =
          crypto::BiPolynomial::random(state_.share, params_.t(), ctx.rng());
      start_with_polynomial(ctx, f);
      return;
    }
  }
  DkgNode::on_message(ctx, from, msg);
}

core::DkgOutput NodeAddNode::combine(sim::Context& ctx, const core::NodeSet& q) {
  const crypto::Group& grp = *params_.vss.grp;
  std::vector<std::uint64_t> xs(q.begin(), q.end());
  crypto::SecretScalar subshare = crypto::SecretScalar::zero(grp);
  std::vector<Scalar> lambdas;
  lambdas.reserve(q.size());
  for (std::size_t k = 0; k < q.size(); ++k) {
    lambdas.push_back(crypto::lagrange_coeff(grp, xs, k, new_node_));
    subshare += vss_output(q[k]).share * lambdas.back();
  }
  // h-commitment coefficients: one multi-exp per l (see renewal.cpp).
  std::vector<Element> vec;
  vec.reserve(params_.t() + 1);
  std::vector<const Element*> bases(q.size());
  for (std::size_t l = 0; l <= params_.t(); ++l) {
    for (std::size_t k = 0; k < q.size(); ++k) {
      bases[k] = &vss_output(q[k]).commitment->entry(l, 0);
    }
    vec.push_back(crypto::multiexp(grp, bases, lambdas));
  }
  // Ship the subshare to the joining node. Existing members keep their old
  // share: node addition does not renew (§6.2).
  ctx.send(new_node_, std::make_shared<SubshareMsg>(
                          params_.tau, std::make_shared<const FeldmanVector>(FeldmanVector(vec)),
                          std::make_shared<const FeldmanVector>(state_.commitment),
                          // reveal-ok: s_{i,new} is the joining node's subshare, addressed to it.
                          subshare.reveal()));

  core::DkgOutput out;
  out.share = state_.share;  // unchanged
  out.share_vec = state_.commitment;
  out.public_key = state_.commitment.c0();
  return out;
}

void JoiningNode::on_message(sim::Context&, sim::NodeId from, const sim::MessagePtr& msg) {
  if (share_) return;
  const auto* m = dynamic_cast<const SubshareMsg*>(msg.get());
  if (m == nullptr || m->tau != tau_ || !m->h_commitment || !m->group_vec) return;
  if (m->h_commitment->degree() != t_ || m->group_vec->degree() != t_) {
    ++rejected_;
    return;
  }
  // Cross-check: h(0) must be the old sharing polynomial at our index,
  // g^{h(0)} = V_old(new); and the subshare must lie on h.
  if (!(m->h_commitment->c0() == m->group_vec->eval_commit(self_))) {
    ++rejected_;
    return;
  }
  if (!m->h_commitment->verify_share(from, m->subshare)) {
    ++rejected_;
    return;
  }
  Bytes key = m->h_commitment->digest();
  Bucket& b = buckets_[key];
  if (!b.senders.insert(from).second) return;
  b.h_commitment = m->h_commitment;
  b.group_vec = m->group_vec;
  b.points.emplace_back(from, m->subshare);
  if (b.points.size() >= t_ + 1) {
    // The interpolated value is this node's long-term key share: taint it.
    share_ = crypto::SecretScalar::from_scalar(crypto::interpolate_at(*grp_, b.points, 0));
    group_vec_ = b.group_vec;
  }
}

}  // namespace dkg::groupmod
