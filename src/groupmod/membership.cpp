#include "groupmod/membership.hpp"

namespace dkg::groupmod {

Bytes Proposal::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(node);
  w.u8(static_cast<std::uint8_t>(absorb));
  w.u32(proposer);
  return w.take();
}

std::optional<Membership> Membership::apply(const Proposal& p) const {
  Membership m = *this;
  if (p.kind == ModKind::AddNode) {
    m.n += 1;
    // Growing the group may raise a resilience parameter; raising is always
    // legal if the bound still holds.
    if (p.absorb == Absorb::Threshold) {
      if (m.n >= 3 * (m.t + 1) + 2 * m.f + 1) m.t += 1;
    } else {
      if (m.n >= 3 * m.t + 2 * (m.f + 1) + 1) m.f += 1;
    }
  } else {
    if (m.n == 0 || p.node == 0 || p.node > n) return std::nullopt;
    m.n -= 1;
    if (p.absorb == Absorb::Threshold) {
      if (m.t > 0) m.t -= 1;
    } else {
      if (m.f > 0) m.f -= 1;
    }
  }
  if (!m.resilient()) return std::nullopt;
  return m;
}

std::pair<Membership, std::vector<Proposal>> Membership::apply_queue(
    const std::vector<Proposal>& queue) const {
  Membership cur = *this;
  std::vector<Proposal> accepted;
  for (const Proposal& p : queue) {
    if (auto next = cur.apply(p)) {
      cur = *next;
      accepted.push_back(p);
    }
  }
  return {cur, accepted};
}

}  // namespace dkg::groupmod
