// Group-modification agreement (paper §6.1): proposals are disseminated by
// reliable broadcast (echo at ceil((n+t+1)/2), ready amplification at t+1,
// acceptance at n-t-f) and appended to each node's modification queue.
// Commutativity of add/remove proposals means queue *sets* — not orders —
// must agree across nodes by the phase change.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "groupmod/membership.hpp"
#include "sim/node.hpp"

namespace dkg::groupmod {

struct GmParams {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t f = 0;
  std::size_t echo_quorum() const { return (n + t + 2) / 2; }
  std::size_t ready_quorum() const { return n - t - f; }
};

/// Operator message: this node proposes a modification.
struct ProposeOp : sim::Message {
  Proposal proposal;
  explicit ProposeOp(Proposal p) : proposal(p) {}
  std::string_view type() const override { return "gm.in.propose"; }
  void serialize(Writer& w) const override { w.raw(proposal.encode()); }
};

struct GmProposeMsg : sim::Message {
  Proposal proposal;
  explicit GmProposeMsg(Proposal p) : proposal(p) {}
  std::string_view type() const override { return "gm.propose"; }
  void serialize(Writer& w) const override { w.raw(proposal.encode()); }
};

struct GmEchoMsg : sim::Message {
  Proposal proposal;
  explicit GmEchoMsg(Proposal p) : proposal(p) {}
  std::string_view type() const override { return "gm.echo"; }
  void serialize(Writer& w) const override { w.raw(proposal.encode()); }
};

struct GmReadyMsg : sim::Message {
  Proposal proposal;
  explicit GmReadyMsg(Proposal p) : proposal(p) {}
  std::string_view type() const override { return "gm.ready"; }
  void serialize(Writer& w) const override { w.raw(proposal.encode()); }
};

/// One participant in the agreement. An application-supplied policy decides
/// whether this node endorses a proposal (§6.1: "nodes who agree with the
/// proposal continue with echo messages").
class GroupModNode : public sim::Node {
 public:
  using Policy = std::function<bool(const Proposal&)>;

  GroupModNode(GmParams params, sim::NodeId self, Policy policy = {})
      : params_(params), self_(self), policy_(std::move(policy)),
        peers_(sim::all_nodes(params_.n)) {}

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Accepted proposals, in acceptance order.
  const std::vector<Proposal>& queue() const { return queue_; }
  /// Applies the queue at a phase change.
  std::pair<Membership, std::vector<Proposal>> apply_at_phase_change(
      const Membership& current) const {
    return current.apply_queue(queue_);
  }

 private:
  struct Tally {
    std::set<sim::NodeId> echoes;
    std::set<sim::NodeId> readys;
    bool sent_echo = false;
    bool sent_ready = false;
    bool accepted = false;
  };

  void maybe_progress(sim::Context& ctx, const Proposal& p, Tally& tally);
  const std::vector<sim::NodeId>& peers() const { return peers_; }

  GmParams params_;
  sim::NodeId self_;
  Policy policy_;
  std::vector<sim::NodeId> peers_;  // 1..n
  std::map<Bytes, Tally> tallies_;
  std::map<Bytes, Proposal> proposals_;
  std::vector<Proposal> queue_;
};

}  // namespace dkg::groupmod
