// Node addition without share renewal (paper §6.2): existing nodes reshare
// their current shares, agree (via the DKG machinery) on a set Q of t+1
// completed resharings, then each node P_i sends the new node a subshare
//     s_{i,new} = sum_{d in Q} lambda_d^{Q,new} s_{i,d}
// with commitment V_l = prod_{d in Q} ((C_d)_{l,0})^{lambda_d^{Q,new}}.
// The subshares lie on a degree-t polynomial h with h(0) = s_new = F(new),
// so t+1 of them let the new node interpolate its share — which is exactly
// the old sharing polynomial evaluated at its index (existing shares are
// untouched).
#pragma once

#include "dkg/dkg_node.hpp"
#include "proactive/renewal.hpp"

namespace dkg::groupmod {

/// Subshare delivery to the joining node.
struct SubshareMsg : core::DkgMessage {
  std::shared_ptr<const crypto::FeldmanVector> h_commitment;  // V (commits h)
  std::shared_ptr<const crypto::FeldmanVector> group_vec;     // V_old (commits F)
  crypto::Scalar subshare;                                    // h(i)
  SubshareMsg(std::uint32_t t, std::shared_ptr<const crypto::FeldmanVector> hc,
              std::shared_ptr<const crypto::FeldmanVector> gv, crypto::Scalar s)
      : DkgMessage(t), h_commitment(std::move(hc)), group_vec(std::move(gv)),
        subshare(std::move(s)) {}
  std::string_view type() const override { return "gm.subshare"; }
  void serialize(Writer& w) const override;
};

/// An existing member during node addition: reshares its current share and,
/// once Q is agreed and combined, issues the subshare to `new_node`.
class NodeAddNode : public core::DkgNode {
 public:
  NodeAddNode(core::DkgParams params, sim::NodeId self, proactive::ShareState state,
              sim::NodeId new_node);

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

 protected:
  core::DkgOutput combine(sim::Context& ctx, const core::NodeSet& q) override;

 private:
  proactive::ShareState state_;
  sim::NodeId new_node_;
};

/// The joining node: collects t+1 verified subshares for one consistent
/// commitment and interpolates its share at index 0.
class JoiningNode : public sim::Node {
 public:
  JoiningNode(const crypto::Group& grp, std::size_t t, sim::NodeId self, std::uint32_t tau)
      : grp_(&grp), t_(t), self_(self), tau_(tau) {}

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

  bool has_share() const { return share_.has_value(); }
  const crypto::SecretScalar& share() const { return *share_; }
  const crypto::FeldmanVector& group_vec() const { return *group_vec_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  const crypto::Group* grp_;
  std::size_t t_;
  sim::NodeId self_;
  std::uint32_t tau_;

  struct Bucket {
    std::shared_ptr<const crypto::FeldmanVector> h_commitment;
    std::shared_ptr<const crypto::FeldmanVector> group_vec;
    std::vector<std::pair<std::uint64_t, crypto::Scalar>> points;
    std::set<sim::NodeId> senders;
  };
  std::map<Bytes, Bucket> buckets_;
  std::optional<crypto::SecretScalar> share_;
  std::shared_ptr<const crypto::FeldmanVector> group_vec_;
  std::uint64_t rejected_ = 0;
};

}  // namespace dkg::groupmod
