// Membership bookkeeping for group modification (paper §6): node additions/
// removals queued during a phase are applied at the phase change, adjusting
// the security threshold t or the crash limit f as each proposal directs
// (§6.4: t and f are never modified directly — only via add/remove flags).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/message.hpp"

namespace dkg::groupmod {

enum class ModKind : std::uint8_t { AddNode, RemoveNode };
/// Which resilience parameter absorbs the size change (§6.1).
enum class Absorb : std::uint8_t { Threshold, CrashLimit };

struct Proposal {
  ModKind kind = ModKind::AddNode;
  sim::NodeId node = 0;
  Absorb absorb = Absorb::Threshold;
  sim::NodeId proposer = 0;

  Bytes encode() const;
  bool operator==(const Proposal& o) const {
    return kind == o.kind && node == o.node && absorb == o.absorb && proposer == o.proposer;
  }
  bool operator<(const Proposal& o) const { return encode() < o.encode(); }
};

struct Membership {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t f = 0;

  bool resilient() const { return n >= 3 * t + 2 * f + 1; }

  /// Applies one proposal; returns nullopt if it would break the resilience
  /// bound n >= 3t + 2f + 1 (an honest node must refuse it, §6.3).
  std::optional<Membership> apply(const Proposal& p) const;

  /// Applies a whole phase's queue in order, skipping invalid proposals.
  /// Returns the resulting membership and the accepted subset.
  std::pair<Membership, std::vector<Proposal>> apply_queue(
      const std::vector<Proposal>& queue) const;
};

}  // namespace dkg::groupmod
