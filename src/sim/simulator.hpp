// Discrete-event simulator of an asynchronous point-to-point network with
// crash/recovery faults (paper §2). Fully deterministic given a seed.
//
// Semantics:
//  * Every send is charged to Metrics at send time and delivered after a
//    DelayModel-chosen delay, unless the receiver is crashed at delivery
//    time (the message is then lost — recovery uses the protocols' own
//    help/B-set retransmission, §3).
//  * Crashed nodes receive no messages and no timer callbacks; their state
//    object persists (stable storage) and on_recover is invoked on repair.
//  * Timers are one-shot and cancellable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "crypto/drbg.hpp"
#include "sim/delay.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"

namespace dkg::sim {

class Simulator {
 public:
  Simulator(std::size_t n, std::unique_ptr<DelayModel> delay, std::uint64_t seed);

  /// Installs the state machine for node `id` (1-based).
  void set_node(NodeId id, std::unique_ptr<Node> node);
  Node& node(NodeId id);
  std::size_t node_count() const { return nodes_.size(); }

  /// Grows the network by one node slot (group modification support).
  NodeId add_node_slot();

  /// Delivers an operator message ("in" messages, §7) at time `at`.
  void post_operator(NodeId to, MessagePtr msg, Time at = 0);

  /// Test/bench knob: when false, Context::multicast degrades to the
  /// per-recipient unicast loop (the pre-interning wire path). Metrics and
  /// transcripts are bit-identical either way — pinned by
  /// tests/test_wire_interning.cpp; the fan-out only removes redundant
  /// serialization work.
  void set_shared_fanout(bool on) { shared_fanout_ = on; }

  /// Fault injection.
  void schedule_crash(NodeId id, Time at);
  void schedule_recover(NodeId id, Time at);
  bool is_crashed(NodeId id) const { return crashed_.count(id) != 0; }

  /// Runs on_start for all nodes then processes events until the queue is
  /// empty or `max_events` is hit. Returns true if the queue drained.
  bool run(std::uint64_t max_events = 50'000'000);

  /// Processes events until `pred()` is true (checked after each event).
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_events = 50'000'000);

  Time now() const { return now_; }
  Metrics& metrics() { return metrics_; }
  crypto::Drbg& rng() { return rng_; }
  DelayModel& delay_model() { return *delay_; }

 private:
  enum class EventKind { Deliver, Timer, Crash, Recover, Operator };
  struct Event {
    Time at;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventKind kind;
    NodeId target;
    NodeId from = 0;
    MessagePtr msg;
    TimerId timer = 0;
    std::uint64_t timer_gen = 0;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  class NodeContext;

  void ensure_started();
  void dispatch(const Event& ev);
  void internal_send(NodeId from, NodeId to, MessagePtr msg);
  void internal_multicast(NodeId from, const std::vector<NodeId>& to, const MessagePtr& msg);
  void internal_start_timer(NodeId who, TimerId id, Time after);
  void internal_stop_timer(NodeId who, TimerId id);

  std::vector<std::unique_ptr<Node>> nodes_;  // index 0 unused
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::set<NodeId> crashed_;
  // (node, timer id) -> generation; a timer event fires only if its
  // generation is still current (stop_timer and re-arming bump it).
  std::map<std::pair<NodeId, TimerId>, std::uint64_t> timer_gen_;

  std::unique_ptr<DelayModel> delay_;
  crypto::Drbg rng_;
  std::vector<std::unique_ptr<crypto::Drbg>> node_rngs_;  // index 0 unused
  Metrics metrics_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  bool started_ = false;
  bool shared_fanout_ = true;
};

}  // namespace dkg::sim
