#include "sim/delay.hpp"

namespace dkg::sim {

Time UniformDelay::delay(NodeId, NodeId, const MessagePtr&, Time, crypto::Drbg& rng) {
  if (hi_ <= lo_) return lo_;
  return lo_ + rng.uniform(hi_ - lo_ + 1);
}

Time AdversarialDelay::delay(NodeId from, NodeId to, const MessagePtr& msg, Time now,
                             crypto::Drbg& rng) {
  Time base = base_->delay(from, to, msg, now, rng);
  if (slow_.count(from) != 0 || slow_.count(to) != 0) return base + penalty_;
  return base;
}

}  // namespace dkg::sim
