// Message/communication accounting — the measurement instrument behind every
// experiment in EXPERIMENTS.md. Counts and byte totals are recorded at send
// time (the paper's complexity counts messages transferred), with separate
// counters for messages dropped at delivery (crashed receiver).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dkg::sim {

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class Metrics {
 public:
  /// Keyed by message type; std::less<> enables allocation-free
  /// string_view lookup on the send hot path (a std::string key is built
  /// only on a type's first appearance).
  using TypeMap = std::map<std::string, TypeStats, std::less<>>;

  void record_send(std::string_view type, std::size_t bytes);
  void record_drop(std::string_view type);
  void record_invalid(std::string_view type);

  /// The mutable accounting slot for `type` — lets a broadcast fan-out
  /// charge all n recipients through one map lookup.
  TypeStats& slot(std::string_view type);

  /// Totals over all message types.
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t invalid_messages() const { return invalid_; }

  /// Totals restricted to types starting with `prefix` (e.g. "vss.").
  TypeStats by_prefix(std::string_view prefix) const;
  const TypeMap& by_type() const { return by_type_; }

  void reset();

 private:
  TypeMap by_type_;
  std::uint64_t dropped_ = 0;
  std::uint64_t invalid_ = 0;
};

}  // namespace dkg::sim
