// Message/communication accounting — the measurement instrument behind every
// experiment in EXPERIMENTS.md. Counts and byte totals are recorded at send
// time (the paper's complexity counts messages transferred), with separate
// counters for messages dropped at delivery (crashed receiver).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dkg::sim {

struct TypeStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

class Metrics {
 public:
  void record_send(const std::string& type, std::size_t bytes);
  void record_drop(const std::string& type);
  void record_invalid(const std::string& type);

  /// Totals over all message types.
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t invalid_messages() const { return invalid_; }

  /// Totals restricted to types starting with `prefix` (e.g. "vss.").
  TypeStats by_prefix(std::string_view prefix) const;
  const std::map<std::string, TypeStats>& by_type() const { return by_type_; }

  void reset();

 private:
  std::map<std::string, TypeStats> by_type_;
  std::uint64_t dropped_ = 0;
  std::uint64_t invalid_ = 0;
};

}  // namespace dkg::sim
