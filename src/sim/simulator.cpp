#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>

#include "common/task_guard.hpp"

namespace dkg::sim {

namespace {
// Verify-pool tasks must be pure: a send or timer scheduled from a worker
// would be ordered by OS scheduling, not by the deterministic event queue,
// and would race the queue itself. Throwing here turns such a bug into a
// loud failure instead of a silently nondeterministic transcript.
void reject_worker_task(const char* what) {
  if (common::in_worker_task()) {
    throw std::logic_error(std::string("Simulator: ") + what +
                           " called from inside a verify-pool task");
  }
}
}  // namespace

class Simulator::NodeContext : public Context {
 public:
  NodeContext(Simulator& sim, NodeId self) : sim_(sim), self_(self) {}

  NodeId self() const override { return self_; }
  std::size_t node_count() const override { return sim_.node_count(); }
  Time now() const override { return sim_.now_; }

  void send(NodeId to, MessagePtr msg) override { sim_.internal_send(self_, to, std::move(msg)); }

  void multicast(const std::vector<NodeId>& to, MessagePtr msg) override {
    sim_.internal_multicast(self_, to, msg);
  }

  void start_timer(TimerId id, Time after) override { sim_.internal_start_timer(self_, id, after); }
  void stop_timer(TimerId id) override { sim_.internal_stop_timer(self_, id); }

  crypto::Drbg& rng() override { return *sim_.node_rngs_.at(self_); }

 private:
  Simulator& sim_;
  NodeId self_;
};

Simulator::Simulator(std::size_t n, std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : delay_(std::move(delay)), rng_(seed) {
  nodes_.resize(n + 1);  // 1-based
  node_rngs_.resize(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    node_rngs_[i] = std::make_unique<crypto::Drbg>(
        rng_.fork("node/" + std::to_string(i)));
  }
}

void Simulator::set_node(NodeId id, std::unique_ptr<Node> node) {
  if (id == 0 || id >= nodes_.size()) throw std::out_of_range("Simulator: bad node id");
  nodes_[id] = std::move(node);
  if (started_ && nodes_[id]) {
    NodeContext ctx(*this, id);
    nodes_[id]->on_start(ctx);
  }
}

Node& Simulator::node(NodeId id) {
  if (id == 0 || id >= nodes_.size() || !nodes_[id]) throw std::out_of_range("Simulator: no node");
  return *nodes_[id];
}

NodeId Simulator::add_node_slot() {
  nodes_.emplace_back();
  NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  node_rngs_.push_back(std::make_unique<crypto::Drbg>(
      rng_.fork("node/" + std::to_string(id))));
  return id;
}

void Simulator::post_operator(NodeId to, MessagePtr msg, Time at) {
  queue_.push(Event{std::max(at, now_), seq_++, EventKind::Operator, to, kOperator,
                    std::move(msg), 0, 0});
}

void Simulator::schedule_crash(NodeId id, Time at) {
  queue_.push(Event{std::max(at, now_), seq_++, EventKind::Crash, id, 0, nullptr, 0, 0});
}

void Simulator::schedule_recover(NodeId id, Time at) {
  queue_.push(Event{std::max(at, now_), seq_++, EventKind::Recover, id, 0, nullptr, 0, 0});
}

void Simulator::internal_send(NodeId from, NodeId to, MessagePtr msg) {
  reject_worker_task("send");
  if (to == 0 || to >= nodes_.size()) return;  // tolerate stale membership views
  metrics_.record_send(msg->type(), msg->wire_size());
  Time d = delay_->delay(from, to, msg, now_, rng_);
  if (d == 0) d = 1;  // strictly-later delivery keeps the event order causal
  queue_.push(Event{now_ + d, seq_++, EventKind::Deliver, to, from, std::move(msg), 0, 0});
}

void Simulator::internal_multicast(NodeId from, const std::vector<NodeId>& to,
                                   const MessagePtr& msg) {
  reject_worker_task("multicast");
  if (!shared_fanout_) {
    for (NodeId j : to) internal_send(from, j, msg);
    return;
  }
  // One shared immutable payload: the wire size is computed once (and any
  // commitment bytes inside it are interned on the shared object), while
  // Metrics and the delay model run per recipient in the same order as the
  // unicast loop — the paper charges by messages transferred, so counts,
  // byte totals and the event transcript are bit-identical.
  const std::size_t size = msg->wire_size();
  TypeStats* slot = nullptr;
  for (NodeId j : to) {
    if (j == 0 || j >= nodes_.size()) continue;  // tolerate stale membership views
    if (slot == nullptr) slot = &metrics_.slot(msg->type());
    slot->count += 1;
    slot->bytes += size;
    Time d = delay_->delay(from, j, msg, now_, rng_);
    if (d == 0) d = 1;
    queue_.push(Event{now_ + d, seq_++, EventKind::Deliver, j, from, msg, 0, 0});
  }
}

void Simulator::internal_start_timer(NodeId who, TimerId id, Time after) {
  reject_worker_task("start_timer");
  std::uint64_t gen = ++timer_gen_[{who, id}];
  if (after == 0) after = 1;
  queue_.push(Event{now_ + after, seq_++, EventKind::Timer, who, 0, nullptr, id, gen});
}

void Simulator::internal_stop_timer(NodeId who, TimerId id) { ++timer_gen_[{who, id}]; }

void Simulator::ensure_started() {
  if (started_) return;
  started_ = true;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id]) continue;
    NodeContext ctx(*this, id);
    nodes_[id]->on_start(ctx);
  }
}

void Simulator::dispatch(const Event& ev) {
  now_ = ev.at;
  NodeId id = ev.target;
  if (id == 0 || id >= nodes_.size() || !nodes_[id]) return;
  NodeContext ctx(*this, id);
  switch (ev.kind) {
    case EventKind::Deliver:
    case EventKind::Operator:
      if (crashed_.count(id) != 0) {
        metrics_.record_drop(ev.msg ? ev.msg->type() : "unknown");
        return;
      }
      nodes_[id]->on_message(ctx, ev.from, ev.msg);
      return;
    case EventKind::Timer: {
      auto it = timer_gen_.find({id, ev.timer});
      if (it == timer_gen_.end() || it->second != ev.timer_gen) return;  // cancelled or re-armed
      if (crashed_.count(id) != 0) return;  // timer lost during crash
      nodes_[id]->on_timer(ctx, ev.timer);
      return;
    }
    case EventKind::Crash:
      if (crashed_.insert(id).second) nodes_[id]->on_crash(ctx);
      return;
    case EventKind::Recover:
      if (crashed_.erase(id) != 0) nodes_[id]->on_recover(ctx);
      return;
  }
}

bool Simulator::run(std::uint64_t max_events) {
  ensure_started();
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    if (processed++ >= max_events) return false;
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  return true;
}

bool Simulator::run_until(const std::function<bool()>& pred, std::uint64_t max_events) {
  ensure_started();
  if (pred()) return true;
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    if (processed++ >= max_events) return false;
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    if (pred()) return true;
  }
  return pred();
}

}  // namespace dkg::sim
