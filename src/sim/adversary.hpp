// Composable network/node adversaries for the hybrid model (paper §2.1–2.2).
//
// The paper's adversary owns up to t Byzantine nodes AND the communication
// channels: it may delay any message touching its nodes arbitrarily, split
// the network and heal it later, and crash-recover f nodes at a time. The
// strategies here are the sim-layer plug-ins for that power — DelayModel
// wrappers (PartitionDelay, AdaptiveDelay) and node replacements
// (CollusionNode over a shared Coalition). The engine layer
// (engine/adversary_spec.hpp) composes them per ScenarioSpec; everything is
// deterministic given the simulator seed, so adversarial transcripts are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sim/delay.hpp"
#include "sim/node.hpp"

namespace dkg::sim {

/// A network partition with a scheduled heal (targets the weak-liveness
/// claims: an asynchronous protocol stalls while split and completes after
/// the heal; safety must hold throughout). Nodes in `side` form one
/// component, everyone else the other; messages crossing the cut during
/// [split_at, heal_at) are held until just after the heal (base delay on
/// top), all other traffic sees only the base model.
class PartitionDelay : public DelayModel {
 public:
  PartitionDelay(std::unique_ptr<DelayModel> base, std::set<NodeId> side, Time split_at,
                 Time heal_at)
      : base_(std::move(base)), side_(std::move(side)), split_at_(split_at), heal_at_(heal_at) {}

  Time delay(NodeId from, NodeId to, const MessagePtr& msg, Time now, crypto::Drbg& rng) override;

 private:
  std::unique_ptr<DelayModel> base_;
  std::set<NodeId> side_;
  Time split_at_;
  Time heal_at_;
};

/// An adaptive delay adversary (§2.1's strongest network power): it watches
/// the protocol phase of every message it routes and stalls exactly the
/// links carrying the *frontier* — the most advanced phase seen so far — but
/// only where a corrupted node is an endpoint. Honest-to-honest links are
/// never touched, which is precisely the paper's E10 setting: the adversary
/// delays its own messages as hard as it can, and the honest mesh must
/// complete without slowdown.
class AdaptiveDelay : public DelayModel {
 public:
  AdaptiveDelay(std::unique_ptr<DelayModel> base, std::set<NodeId> corrupted, Time penalty)
      : base_(std::move(base)), corrupted_(std::move(corrupted)), penalty_(penalty) {}

  Time delay(NodeId from, NodeId to, const MessagePtr& msg, Time now, crypto::Drbg& rng) override;

  /// Protocol-phase rank of a message type ("vss.send" < "vss.echo" < ... <
  /// "dkg.lead-ch"); 0 for types outside the phase ladder. Exposed for
  /// tests.
  static int phase_rank(std::string_view type);

 private:
  std::unique_ptr<DelayModel> base_;
  std::set<NodeId> corrupted_;
  Time penalty_;
  int frontier_ = 0;
};

/// Shared state pool of a colluding t-subset: every member deposits each
/// message it receives, modelling the §2.2 adversary that sees the union of
/// its nodes' views. Tests interrogate the pool to prove the union still
/// leaks nothing (t rows cannot reconstruct the secret).
class Coalition {
 public:
  struct Observation {
    NodeId member;  // which colluder received it
    NodeId from;
    Time at;
    MessagePtr msg;
  };

  explicit Coalition(std::set<NodeId> members) : members_(std::move(members)) {}

  const std::set<NodeId>& members() const { return members_; }
  void record(NodeId member, NodeId from, Time at, MessagePtr msg) {
    observations_.push_back(Observation{member, from, at, std::move(msg)});
  }
  const std::vector<Observation>& observations() const { return observations_; }

 private:
  std::set<NodeId> members_;
  std::vector<Observation> observations_;
};

/// A colluding node: withholds all participation (fail-silent toward the
/// protocol) while feeding everything it receives into the coalition pool.
class CollusionNode : public Node {
 public:
  CollusionNode(std::shared_ptr<Coalition> coalition, NodeId self)
      : coalition_(std::move(coalition)), self_(self) {}

  void on_message(sim::Context& ctx, NodeId from, const MessagePtr& msg) override;

 private:
  std::shared_ptr<Coalition> coalition_;
  NodeId self_;
};

}  // namespace dkg::sim
