#include "sim/message.hpp"

namespace dkg::sim {

std::size_t Message::wire_size() const {
  if (cached_size_ == SIZE_MAX) {
    Writer w;
    serialize(w);
    cached_size_ = w.size();
  }
  return cached_size_;
}

Bytes Message::wire_bytes() const {
  Writer w;
  serialize(w);
  return w.take();
}

}  // namespace dkg::sim
