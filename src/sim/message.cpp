#include "sim/message.hpp"

namespace dkg::sim {

std::size_t Message::wire_size() const {
  std::size_t size = cached_size_.load(std::memory_order_acquire);
  if (size == SIZE_MAX) {
    Writer w;
    serialize(w);
    size = w.size();
    cached_size_.store(size, std::memory_order_release);
  }
  return size;
}

Bytes Message::wire_bytes() const {
  Writer w;
  serialize(w);
  return w.take();
}

}  // namespace dkg::sim
