// The node-side view of the simulation: a deterministic state machine driven
// by operator, network and timer messages (paper §7's three message types).
#pragma once

#include <vector>

#include "crypto/drbg.hpp"
#include "sim/message.hpp"

namespace dkg::sim {

/// The full recipient set {1..n} — the peer list protocols keep for
/// Context::multicast fan-outs.
inline std::vector<NodeId> all_nodes(std::size_t n) {
  std::vector<NodeId> out;
  out.reserve(n);
  for (NodeId j = 1; j <= n; ++j) out.push_back(j);
  return out;
}

/// Handle through which a node acts on the world. Only valid during a
/// callback; nodes must not store it.
class Context {
 public:
  virtual ~Context() = default;

  virtual NodeId self() const = 0;
  virtual std::size_t node_count() const = 0;
  virtual Time now() const = 0;

  /// Sends a point-to-point message (metrics are charged here).
  virtual void send(NodeId to, MessagePtr msg) = 0;
  /// Delivers the SAME immutable message object to every id in `to` — the
  /// shared-payload fan-out: the payload is serialized once (its wire size
  /// and any interned commitment bytes are memoized on the shared object),
  /// while Metrics and the delay model are still consulted per recipient,
  /// so byte totals and transcripts match `to.size()` unicasts bit for bit.
  /// The default implementation IS that unicast loop; the simulator
  /// overrides it with a single-charge fan-out.
  virtual void multicast(const std::vector<NodeId>& to, MessagePtr msg) {
    for (NodeId j : to) send(j, msg);
  }
  /// Sends to every node 1..n, including self ("send to each P_j").
  void broadcast(MessagePtr msg) { multicast(all_nodes(node_count()), std::move(msg)); }

  /// One-shot timer; fires on_timer(id) after `after` ticks unless stopped.
  virtual void start_timer(TimerId id, Time after) = 0;
  virtual void stop_timer(TimerId id) = 0;

  /// Per-node deterministic randomness.
  virtual crypto::Drbg& rng() = 0;
};

class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the simulation starts (or when the node is installed).
  virtual void on_start(Context&) {}
  /// Network or operator message. `from` = kOperator for operator messages.
  virtual void on_message(Context& ctx, NodeId from, const MessagePtr& msg) = 0;
  virtual void on_timer(Context&, TimerId) {}
  /// Crash notification — bookkeeping only; a crashed node receives nothing.
  virtual void on_crash(Context&) {}
  /// Recovery from a well-defined state (paper §2.2): the protocol layer
  /// reacts by emitting its recover/help flow.
  virtual void on_recover(Context&) {}
};

}  // namespace dkg::sim
