// The node-side view of the simulation: a deterministic state machine driven
// by operator, network and timer messages (paper §7's three message types).
#pragma once

#include "crypto/drbg.hpp"
#include "sim/message.hpp"

namespace dkg::sim {

/// Handle through which a node acts on the world. Only valid during a
/// callback; nodes must not store it.
class Context {
 public:
  virtual ~Context() = default;

  virtual NodeId self() const = 0;
  virtual std::size_t node_count() const = 0;
  virtual Time now() const = 0;

  /// Sends a point-to-point message (metrics are charged here).
  virtual void send(NodeId to, MessagePtr msg) = 0;
  /// Sends to every node 1..n, including self ("send to each P_j").
  void broadcast(const MessagePtr& msg) {
    for (NodeId j = 1; j <= node_count(); ++j) send(j, msg);
  }

  /// One-shot timer; fires on_timer(id) after `after` ticks unless stopped.
  virtual void start_timer(TimerId id, Time after) = 0;
  virtual void stop_timer(TimerId id) = 0;

  /// Per-node deterministic randomness.
  virtual crypto::Drbg& rng() = 0;
};

class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the simulation starts (or when the node is installed).
  virtual void on_start(Context&) {}
  /// Network or operator message. `from` = kOperator for operator messages.
  virtual void on_message(Context& ctx, NodeId from, const MessagePtr& msg) = 0;
  virtual void on_timer(Context&, TimerId) {}
  /// Crash notification — bookkeeping only; a crashed node receives nothing.
  virtual void on_crash(Context&) {}
  /// Recovery from a well-defined state (paper §2.2): the protocol layer
  /// reacts by emitting its recover/help flow.
  virtual void on_recover(Context&) {}
};

}  // namespace dkg::sim
