#include "sim/metrics.hpp"

namespace dkg::sim {

TypeStats& Metrics::slot(std::string_view type) {
  auto it = by_type_.find(type);
  if (it == by_type_.end()) {
    it = by_type_.emplace(std::string(type), TypeStats{}).first;
  }
  return it->second;
}

void Metrics::record_send(std::string_view type, std::size_t bytes) {
  TypeStats& s = slot(type);
  s.count += 1;
  s.bytes += bytes;
}

void Metrics::record_drop(std::string_view) { dropped_ += 1; }

void Metrics::record_invalid(std::string_view) { invalid_ += 1; }

std::uint64_t Metrics::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& [_, s] : by_type_) n += s.count;
  return n;
}

std::uint64_t Metrics::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [_, s] : by_type_) n += s.bytes;
  return n;
}

TypeStats Metrics::by_prefix(std::string_view prefix) const {
  TypeStats out;
  for (const auto& [type, s] : by_type_) {
    if (type.size() >= prefix.size() && std::string_view(type).substr(0, prefix.size()) == prefix) {
      out.count += s.count;
      out.bytes += s.bytes;
    }
  }
  return out;
}

void Metrics::reset() {
  by_type_.clear();
  dropped_ = 0;
  invalid_ = 0;
}

}  // namespace dkg::sim
