#include "sim/metrics.hpp"

namespace dkg::sim {

void Metrics::record_send(const std::string& type, std::size_t bytes) {
  TypeStats& s = by_type_[type];
  s.count += 1;
  s.bytes += bytes;
}

void Metrics::record_drop(const std::string&) { dropped_ += 1; }

void Metrics::record_invalid(const std::string&) { invalid_ += 1; }

std::uint64_t Metrics::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& [_, s] : by_type_) n += s.count;
  return n;
}

std::uint64_t Metrics::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [_, s] : by_type_) n += s.bytes;
  return n;
}

TypeStats Metrics::by_prefix(std::string_view prefix) const {
  TypeStats out;
  for (const auto& [type, s] : by_type_) {
    if (type.size() >= prefix.size() && std::string_view(type).substr(0, prefix.size()) == prefix) {
      out.count += s.count;
      out.bytes += s.bytes;
    }
  }
  return out;
}

void Metrics::reset() {
  by_type_.clear();
  dropped_ = 0;
  invalid_ = 0;
}

}  // namespace dkg::sim
