// Fault schedules for the hybrid model (paper §2.2): up to f nodes crashed
// at any instant, at most d(kappa) crashes over the adversary's lifetime,
// honest recovery after a bounded outage.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/drbg.hpp"
#include "sim/simulator.hpp"

namespace dkg::sim {

/// One crash/recover window. recover_at == 0 means the node stays down for
/// the rest of the run (the same contract as engine::CrashSpec).
struct CrashWindow {
  NodeId node;
  Time crash_at;
  Time recover_at;
};

class FaultPlan {
 public:
  /// Randomly picks `total_crashes` crash/recover windows among nodes in
  /// `candidates`, never exceeding `f` *instant-wise* concurrent crashes
  /// (sweep-line check, not pairwise overlap counting). Windows start in
  /// [0, horizon) and last [min_outage, max_outage] ticks (clamped to >= 1
  /// so a random window never degenerates into a stays-down-forever one).
  /// The placement is greedy, so infeasible requests fill partially:
  /// shortfall() reports how many requested windows could not be placed.
  static FaultPlan random(const std::vector<NodeId>& candidates, std::size_t f,
                          std::size_t total_crashes, Time horizon, Time min_outage,
                          Time max_outage, crypto::Drbg& rng);

  /// Explicit plan.
  explicit FaultPlan(std::vector<CrashWindow> windows)
      : windows_(std::move(windows)), requested_(windows_.size()) {}
  FaultPlan() = default;

  const std::vector<CrashWindow>& windows() const { return windows_; }
  std::size_t crash_count() const { return windows_.size(); }
  /// How many windows random() was asked for (== crash_count() for
  /// explicit plans).
  std::size_t requested() const { return requested_; }
  /// Requested-but-unplaced window count: non-zero surfaces an under-filled
  /// plan instead of silently dropping crashes.
  std::size_t shortfall() const { return requested_ - windows_.size(); }

  /// Registers all crash/recover events with the simulator. Windows with
  /// recover_at == 0 schedule no recovery: the node stays down.
  void apply(Simulator& sim) const;

 private:
  std::vector<CrashWindow> windows_;
  std::size_t requested_ = 0;
};

}  // namespace dkg::sim
