// Fault schedules for the hybrid model (paper §2.2): up to f nodes crashed
// at any instant, at most d(kappa) crashes over the adversary's lifetime,
// honest recovery after a bounded outage.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/drbg.hpp"
#include "sim/simulator.hpp"

namespace dkg::sim {

struct CrashWindow {
  NodeId node;
  Time crash_at;
  Time recover_at;
};

class FaultPlan {
 public:
  /// Randomly picks `total_crashes` crash/recover windows among nodes in
  /// `candidates`, never exceeding `f` concurrent crashes. Windows start in
  /// [0, horizon) and last [min_outage, max_outage] ticks.
  static FaultPlan random(const std::vector<NodeId>& candidates, std::size_t f,
                          std::size_t total_crashes, Time horizon, Time min_outage,
                          Time max_outage, crypto::Drbg& rng);

  /// Explicit plan.
  explicit FaultPlan(std::vector<CrashWindow> windows) : windows_(std::move(windows)) {}
  FaultPlan() = default;

  const std::vector<CrashWindow>& windows() const { return windows_; }
  std::size_t crash_count() const { return windows_.size(); }

  /// Registers all crash/recover events with the simulator.
  void apply(Simulator& sim) const;

 private:
  std::vector<CrashWindow> windows_;
};

}  // namespace dkg::sim
