#include "sim/faultplan.hpp"

#include <algorithm>

namespace dkg::sim {

FaultPlan FaultPlan::random(const std::vector<NodeId>& candidates, std::size_t f,
                            std::size_t total_crashes, Time horizon, Time min_outage,
                            Time max_outage, crypto::Drbg& rng) {
  std::vector<CrashWindow> windows;
  if (candidates.empty() || f == 0 || total_crashes == 0) return FaultPlan(std::move(windows));
  // Greedy placement: sample start times, keep a window only if adding it
  // leaves at most f nodes concurrently crashed and the node is not already
  // down during the window.
  std::size_t attempts = 0;
  while (windows.size() < total_crashes && attempts < total_crashes * 50) {
    ++attempts;
    NodeId node = candidates[rng.uniform(candidates.size())];
    Time start = rng.uniform(horizon);
    Time outage = min_outage + (max_outage > min_outage ? rng.uniform(max_outage - min_outage + 1) : 0);
    CrashWindow w{node, start, start + outage};
    bool ok = true;
    std::size_t concurrent = 0;
    for (const CrashWindow& o : windows) {
      bool overlap = !(w.recover_at <= o.crash_at || o.recover_at <= w.crash_at);
      if (overlap) {
        if (o.node == w.node) { ok = false; break; }
        if (++concurrent >= f) { ok = false; break; }
      }
    }
    if (ok) windows.push_back(w);
  }
  std::sort(windows.begin(), windows.end(),
            [](const CrashWindow& a, const CrashWindow& b) { return a.crash_at < b.crash_at; });
  return FaultPlan(std::move(windows));
}

void FaultPlan::apply(Simulator& sim) const {
  for (const CrashWindow& w : windows_) {
    sim.schedule_crash(w.node, w.crash_at);
    sim.schedule_recover(w.node, w.recover_at);
  }
}

}  // namespace dkg::sim
