#include "sim/faultplan.hpp"

#include <algorithm>

namespace dkg::sim {

namespace {

/// Instant-wise concurrency at time `at` if one more window covering `at`
/// joined `windows` (a window covers [crash_at, recover_at), with
/// recover_at == 0 meaning "forever").
std::size_t concurrency_at(const std::vector<CrashWindow>& windows, Time at) {
  std::size_t conc = 1;  // the candidate itself covers `at` whenever we ask
  for (const CrashWindow& o : windows) {
    bool covers = o.crash_at <= at && (o.recover_at == 0 || at < o.recover_at);
    if (covers) ++conc;
  }
  return conc;
}

}  // namespace

FaultPlan FaultPlan::random(const std::vector<NodeId>& candidates, std::size_t f,
                            std::size_t total_crashes, Time horizon, Time min_outage,
                            Time max_outage, crypto::Drbg& rng) {
  FaultPlan plan;
  plan.requested_ = total_crashes;
  if (candidates.empty() || f == 0 || total_crashes == 0) return plan;
  std::vector<CrashWindow>& windows = plan.windows_;
  // Greedy placement: sample start times, keep a window only if the node is
  // not already down during it and the *instant-wise* maximum concurrency
  // stays <= f. Within the candidate's span the concurrency only steps up at
  // crash instants, so evaluating it at the candidate's own start and at
  // every overlapping window's start is a complete sweep-line maximum —
  // pairwise-overlap counting would over-reject (three mutually staggered
  // windows can pairwise-overlap a fourth without ever being concurrent).
  std::size_t attempts = 0;
  while (windows.size() < total_crashes && attempts < total_crashes * 50) {
    ++attempts;
    NodeId node = candidates[rng.uniform(candidates.size())];
    Time start = horizon > 0 ? rng.uniform(horizon) : 0;
    Time outage = min_outage + (max_outage > min_outage ? rng.uniform(max_outage - min_outage + 1) : 0);
    if (outage == 0) outage = 1;  // recover_at == crash_at would mean "down forever"
    CrashWindow w{node, start, start + outage};
    bool ok = true;
    std::size_t peak = concurrency_at(windows, w.crash_at);
    for (const CrashWindow& o : windows) {
      bool overlap = !(w.recover_at <= o.crash_at || o.recover_at <= w.crash_at);
      if (!overlap) continue;
      if (o.node == w.node) { ok = false; break; }
      if (o.crash_at > w.crash_at) peak = std::max(peak, concurrency_at(windows, o.crash_at));
    }
    if (ok && peak <= f) windows.push_back(w);
  }
  std::sort(windows.begin(), windows.end(),
            [](const CrashWindow& a, const CrashWindow& b) { return a.crash_at < b.crash_at; });
  return plan;
}

void FaultPlan::apply(Simulator& sim) const {
  for (const CrashWindow& w : windows_) {
    sim.schedule_crash(w.node, w.crash_at);
    if (w.recover_at != 0) sim.schedule_recover(w.node, w.recover_at);
  }
}

}  // namespace dkg::sim
