// Message delay models for the asynchronous network (paper §2.1).
//
// The adversary "manages the communication channels and can delay messages
// as it wishes" — but links between honest nodes are assumed prompt. The
// AdversarialDelay model captures exactly the paper's argument: messages
// touching adversary-influenced nodes are delayed arbitrarily while the
// honest mesh stays fast, so an asynchronous protocol's *wall-clock* latency
// should not degrade (bench E10).
#pragma once

#include <memory>
#include <set>

#include "crypto/drbg.hpp"
#include "sim/message.hpp"

namespace dkg::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual Time delay(NodeId from, NodeId to, const MessagePtr& msg, Time now,
                     crypto::Drbg& rng) = 0;
};

/// Constant delay for every link (self-delivery still costs one tick so
/// event ordering stays strict).
class FixedDelay : public DelayModel {
 public:
  explicit FixedDelay(Time d) : d_(d) {}
  Time delay(NodeId, NodeId, const MessagePtr&, Time, crypto::Drbg&) override { return d_; }

 private:
  Time d_;
};

/// Uniform random delay in [lo, hi] — the default "Internet-like" model.
class UniformDelay : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time delay(NodeId, NodeId, const MessagePtr&, Time, crypto::Drbg& rng) override;

 private:
  Time lo_, hi_;
};

/// Wraps a base model; any message to or from a node in `slow` is delayed by
/// an additional `penalty` ticks (a rushing adversary stalling its own links
/// to the verge of timeouts, §2.1).
class AdversarialDelay : public DelayModel {
 public:
  AdversarialDelay(std::unique_ptr<DelayModel> base, std::set<NodeId> slow, Time penalty)
      : base_(std::move(base)), slow_(std::move(slow)), penalty_(penalty) {}
  Time delay(NodeId from, NodeId to, const MessagePtr& msg, Time now, crypto::Drbg& rng) override;

  void set_slow(std::set<NodeId> slow) { slow_ = std::move(slow); }

 private:
  std::unique_ptr<DelayModel> base_;
  std::set<NodeId> slow_;
  Time penalty_;
};

}  // namespace dkg::sim
