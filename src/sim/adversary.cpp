#include "sim/adversary.hpp"

#include <algorithm>

namespace dkg::sim {

Time PartitionDelay::delay(NodeId from, NodeId to, const MessagePtr& msg, Time now,
                           crypto::Drbg& rng) {
  // Always draw the base delay so the DRBG stream advances identically for
  // every routed message — partition or not, the transcript stays a pure
  // function of the seed.
  Time base = base_->delay(from, to, msg, now, rng);
  bool split = now >= split_at_ && now < heal_at_;
  bool crosses = (side_.count(from) != 0) != (side_.count(to) != 0);
  if (split && crosses) return (heal_at_ - now) + base;
  return base;
}

int AdaptiveDelay::phase_rank(std::string_view type) {
  if (type == "vss.send") return 1;
  if (type == "vss.echo") return 2;
  if (type == "vss.ready") return 3;
  if (type == "dkg.send") return 4;
  if (type == "dkg.echo") return 5;
  if (type == "dkg.ready") return 6;
  if (type == "dkg.lead-ch") return 7;
  return 0;
}

Time AdaptiveDelay::delay(NodeId from, NodeId to, const MessagePtr& msg, Time now,
                          crypto::Drbg& rng) {
  Time base = base_->delay(from, to, msg, now, rng);
  int rank = msg ? phase_rank(msg->type()) : 0;
  frontier_ = std::max(frontier_, rank);
  // Stall only frontier-phase traffic touching a corrupted endpoint:
  // messages from already-passed phases are let through (delaying them
  // gains the adversary nothing), and the honest mesh is never slowed.
  bool corrupted_link = corrupted_.count(from) != 0 || corrupted_.count(to) != 0;
  if (corrupted_link && rank != 0 && rank >= frontier_) return base + penalty_;
  return base;
}

void CollusionNode::on_message(sim::Context& ctx, NodeId from, const MessagePtr& msg) {
  coalition_->record(self_, from, ctx.now(), msg);
}

}  // namespace dkg::sim
