// Wire message abstraction for the simulated asynchronous network.
//
// Every protocol message implements `serialize`; the simulator charges
// communication complexity (paper's "bit length of messages transferred")
// by the exact serialized size, and signatures are computed over the same
// canonical bytes. Message objects are immutable once sent and may be
// shared across deliveries (broadcast fan-out) and across SweepDriver
// threads, so the lazy wire-size memo below is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "common/serialize.hpp"

namespace dkg::sim {

using NodeId = std::uint32_t;           // 1-based, matching the paper's P_1..P_n
constexpr NodeId kOperator = 0;         // sender id for operator ("in") messages
using Time = std::uint64_t;             // abstract ticks
using TimerId = std::uint64_t;

class Message {
 public:
  Message() = default;
  // The atomic memo is not copyable; copies start unsized, and assignment
  // drops the target's memo (the payload fields just changed).
  Message(const Message&) noexcept {}
  Message& operator=(const Message&) noexcept {
    cached_size_.store(SIZE_MAX, std::memory_order_release);
    return *this;
  }
  virtual ~Message() = default;

  /// Dotted type tag, e.g. "vss.echo" — the metrics key. Implementations
  /// return string literals (static storage), so the view never dangles.
  virtual std::string_view type() const = 0;
  virtual void serialize(Writer& w) const = 0;

  /// Serialized size in bytes (computed once, cached). Safe on payloads
  /// shared across threads: a concurrent first touch may serialize twice,
  /// but both writers store the same value through the atomic.
  std::size_t wire_size() const;
  /// Canonical bytes (for signing / hashing).
  Bytes wire_bytes() const;

 private:
  mutable std::atomic<std::size_t> cached_size_{SIZE_MAX};
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace dkg::sim
