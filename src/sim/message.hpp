// Wire message abstraction for the simulated asynchronous network.
//
// Every protocol message implements `serialize`; the simulator charges
// communication complexity (paper's "bit length of messages transferred")
// by the exact serialized size, and signatures are computed over the same
// canonical bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/serialize.hpp"

namespace dkg::sim {

using NodeId = std::uint32_t;           // 1-based, matching the paper's P_1..P_n
constexpr NodeId kOperator = 0;         // sender id for operator ("in") messages
using Time = std::uint64_t;             // abstract ticks
using TimerId = std::uint64_t;

class Message {
 public:
  virtual ~Message() = default;

  /// Dotted type tag, e.g. "vss.echo" — the metrics key.
  virtual std::string type() const = 0;
  virtual void serialize(Writer& w) const = 0;

  /// Serialized size in bytes (computed once, cached).
  std::size_t wire_size() const;
  /// Canonical bytes (for signing / hashing).
  Bytes wire_bytes() const;

 private:
  mutable std::size_t cached_size_ = SIZE_MAX;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace dkg::sim
