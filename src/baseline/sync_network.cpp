#include "baseline/sync_network.hpp"

#include <stdexcept>

namespace dkg::baseline {

SyncNetwork::SyncNetwork(std::size_t n, std::uint64_t seed) : nodes_(n + 1), rng_(seed) {}

void SyncNetwork::set_node(sim::NodeId id, std::unique_ptr<SyncProtocol> node) {
  if (id == 0 || id >= nodes_.size()) throw std::out_of_range("SyncNetwork: bad node id");
  nodes_[id] = std::move(node);
}

std::size_t SyncNetwork::run(std::size_t max_rounds) {
  std::size_t n = node_count();
  std::vector<std::vector<Envelope>> inboxes(n + 1);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool all_done = true;
    for (sim::NodeId id = 1; id <= n; ++id) {
      if (nodes_[id] && !nodes_[id]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return round;

    std::vector<std::vector<Envelope>> next(n + 1);
    for (sim::NodeId id = 1; id <= n; ++id) {
      if (!nodes_[id]) continue;
      std::vector<Envelope> outbox;
      nodes_[id]->on_round(round, inboxes[id], outbox);
      for (Envelope& e : outbox) {
        e.from = id;
        if (e.to == 0) {
          // Broadcast: n point-to-point copies of ONE shared payload —
          // serialized and looked up once, still metered per recipient.
          const std::size_t size = e.msg->wire_size();
          sim::TypeStats& slot = metrics_.slot(e.msg->type());
          for (sim::NodeId j = 1; j <= n; ++j) {
            slot.count += 1;
            slot.bytes += size;
            next[j].push_back(Envelope{id, j, e.msg});
          }
        } else if (e.to <= n) {
          metrics_.record_send(e.msg->type(), e.msg->wire_size());
          next[e.to].push_back(e);
        }
      }
    }
    inboxes = std::move(next);
  }
  return max_rounds;
}

}  // namespace dkg::baseline
