#include "baseline/gennaro_dkg.hpp"

#include <stdexcept>

#include "crypto/feldman.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/multiexp.hpp"

namespace dkg::baseline {

using crypto::Element;
using crypto::FeldmanVector;
using crypto::Polynomial;
using crypto::Scalar;

PedersenVector PedersenVector::commit(const Polynomial& a, const Polynomial& b) {
  std::vector<Element> entries;
  entries.reserve(a.degree() + 1);
  // Dealer-side: both secret exponents run through constant-time commit_to.
  const Element h = Element::pedersen_h(a.group());
  for (std::size_t l = 0; l <= a.degree(); ++l) {
    entries.push_back(a.coeff(l).commit_to() * b.coeff(l).commit_to(h));
  }
  return PedersenVector(std::move(entries));
}

bool PedersenVector::verify_pair(std::uint64_t i, const Scalar& s, const Scalar& s_prime) const {
  const crypto::Group& grp = entries_.front().group();
  return Element::exp_g(s) * Element::exp_h(s_prime) ==
         crypto::multiexp_index(grp, entries_, i);
}

const Bytes& PedersenVector::canonical_bytes() const {
  return wire_.bytes([this] {
    Writer w;
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Element& e : entries_) w.raw(e.to_bytes());
    return w.take();
  });
}

namespace {
struct GjkrCommitMsg : sim::Message {
  std::shared_ptr<const PedersenVector> commitment;
  explicit GjkrCommitMsg(std::shared_ptr<const PedersenVector> c) : commitment(std::move(c)) {}
  std::string_view type() const override { return "gjkr.commit"; }
  void serialize(Writer& w) const override { w.blob(commitment->canonical_bytes()); }
};

struct GjkrPairMsg : sim::Message {
  Scalar s, s_prime;
  GjkrPairMsg(Scalar a, Scalar b) : s(std::move(a)), s_prime(std::move(b)) {}
  std::string_view type() const override { return "gjkr.pair"; }
  void serialize(Writer& w) const override {
    w.raw(s.to_bytes());
    w.raw(s_prime.to_bytes());
  }
};

struct GjkrComplaintMsg : sim::Message {
  std::vector<sim::NodeId> accused;
  explicit GjkrComplaintMsg(std::vector<sim::NodeId> a) : accused(std::move(a)) {}
  std::string_view type() const override { return "gjkr.complaint"; }
  void serialize(Writer& w) const override {
    w.u32(static_cast<std::uint32_t>(accused.size()));
    for (sim::NodeId id : accused) w.u32(id);
  }
};

struct GjkrRevealMsg : sim::Message {
  std::vector<std::tuple<sim::NodeId, Scalar, Scalar>> reveals;
  std::string_view type() const override { return "gjkr.reveal"; }
  void serialize(Writer& w) const override {
    w.u32(static_cast<std::uint32_t>(reveals.size()));
    for (const auto& [victim, s, sp] : reveals) {
      w.u32(victim);
      w.raw(s.to_bytes());
      w.raw(sp.to_bytes());
    }
  }
};

struct GjkrFeldmanMsg : sim::Message {
  std::shared_ptr<const FeldmanVector> commitment;
  explicit GjkrFeldmanMsg(std::shared_ptr<const FeldmanVector> c) : commitment(std::move(c)) {}
  std::string_view type() const override { return "gjkr.feldman"; }
  void serialize(Writer& w) const override { w.blob(commitment->canonical_bytes()); }
};

/// Extraction complaint: the (s, s') pair proves the dealer's A_i is wrong.
struct GjkrXComplaintMsg : sim::Message {
  sim::NodeId dealer;
  Scalar s, s_prime;
  GjkrXComplaintMsg(sim::NodeId d, Scalar a, Scalar b)
      : dealer(d), s(std::move(a)), s_prime(std::move(b)) {}
  std::string_view type() const override { return "gjkr.xcomplaint"; }
  void serialize(Writer& w) const override {
    w.u32(dealer);
    w.raw(s.to_bytes());
    w.raw(s_prime.to_bytes());
  }
};

/// Pooled share pair for reconstructing an exposed dealer's polynomial.
struct GjkrPoolMsg : sim::Message {
  sim::NodeId dealer;
  Scalar s, s_prime;
  GjkrPoolMsg(sim::NodeId d, Scalar a, Scalar b)
      : dealer(d), s(std::move(a)), s_prime(std::move(b)) {}
  std::string_view type() const override { return "gjkr.pool"; }
  void serialize(Writer& w) const override {
    w.u32(dealer);
    w.raw(s.to_bytes());
    w.raw(s_prime.to_bytes());
  }
};
}  // namespace

GennaroNode::GennaroNode(GennaroParams params, sim::NodeId self, crypto::Drbg rng)
    : params_(params), self_(self), rng_(std::move(rng)) {
  if (params_.n < 2 * params_.t + 1) throw std::invalid_argument("Gennaro: n < 2t + 1");
}

void GennaroNode::on_round(std::size_t round, const std::vector<Envelope>& inbox,
                           std::vector<Envelope>& outbox) {
  switch (round) {
    case 0: round_deal(outbox); return;
    case 1: round_complain(inbox, outbox); return;
    case 2: round_reveal(inbox, outbox); return;
    case 3: round_extract(inbox, outbox); return;
    case 4: round_xcomplain(inbox, outbox); return;
    case 5: round_pool(inbox, outbox); return;
    case 6: round_finish(inbox); return;
    default: return;
  }
}

void GennaroNode::round_deal(std::vector<Envelope>& outbox) {
  a_ = Polynomial::random(*params_.grp, params_.t, rng_);
  b_ = Polynomial::random(*params_.grp, params_.t, rng_);
  auto commitment = std::make_shared<const PedersenVector>(PedersenVector::commit(*a_, *b_));
  outbox.push_back(Envelope{self_, 0, std::make_shared<GjkrCommitMsg>(commitment)});
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    // reveal-ok: (s_j, s'_j) is node j's dealt share pair, addressed to j.
    outbox.push_back(Envelope{
        self_, j,
        std::make_shared<GjkrPairMsg>(a_->eval_at(j).reveal(), b_->eval_at(j).reveal())});
  }
}

void GennaroNode::round_complain(const std::vector<Envelope>& inbox,
                                 std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* c = dynamic_cast<const GjkrCommitMsg*>(e.msg.get())) {
      if (c->commitment->degree() == params_.t) pedersen_.emplace(e.from, *c->commitment);
    } else if (const auto* p = dynamic_cast<const GjkrPairMsg*>(e.msg.get())) {
      pairs_.emplace(e.from, std::make_pair(p->s, p->s_prime));
    }
  }
  std::vector<sim::NodeId> accused;
  for (const auto& [dealer, commitment] : pedersen_) {
    auto it = pairs_.find(dealer);
    if (it == pairs_.end() ||
        !commitment.verify_pair(self_, it->second.first, it->second.second)) {
      accused.push_back(dealer);
    }
  }
  if (!accused.empty()) {
    outbox.push_back(Envelope{self_, 0, std::make_shared<GjkrComplaintMsg>(std::move(accused))});
  }
}

void GennaroNode::round_reveal(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* c = dynamic_cast<const GjkrComplaintMsg*>(e.msg.get())) {
      for (sim::NodeId dealer : c->accused) complaints_[dealer].insert(e.from);
    }
  }
  auto mine = complaints_.find(self_);
  if (mine != complaints_.end()) {
    auto reveal = std::make_shared<GjkrRevealMsg>();
    for (sim::NodeId victim : mine->second) {
      // reveal-ok: protocol-mandated public reveal of an accused share pair.
      reveal->reveals.emplace_back(victim, a_->eval_at(victim).reveal(),
                                   b_->eval_at(victim).reveal());
    }
    outbox.push_back(Envelope{self_, 0, std::move(reveal)});
  }
}

void GennaroNode::round_extract(const std::vector<Envelope>& inbox,
                                std::vector<Envelope>& outbox) {
  std::map<sim::NodeId, const GjkrRevealMsg*> reveals;
  for (const Envelope& e : inbox) {
    if (const auto* r = dynamic_cast<const GjkrRevealMsg*>(e.msg.get())) reveals[e.from] = r;
  }
  for (const auto& [dealer, commitment] : pedersen_) {
    bool qualified = true;
    auto comp = complaints_.find(dealer);
    if (comp != complaints_.end()) {
      if (comp->second.size() > params_.t) qualified = false;
      auto rev = reveals.find(dealer);
      if (qualified && rev == reveals.end()) qualified = false;
      if (qualified) {
        for (sim::NodeId victim : comp->second) {
          bool fixed = false;
          for (const auto& [v, s, sp] : rev->second->reveals) {
            if (v == victim && commitment.verify_pair(v, s, sp)) {
              fixed = true;
              if (v == self_) pairs_[dealer] = {s, sp};
              break;
            }
          }
          if (!fixed) {
            qualified = false;
            break;
          }
        }
      }
    }
    if (qualified) qual_.insert(dealer);
  }
  // Extraction: publish A_i = g^{a_i} coefficients.
  if (qual_.count(self_) != 0) {
    Polynomial a = *a_;
    if (cheat_extraction_) {
      // Commit to a different polynomial — honest nodes must catch this.
      a = Polynomial::random(*params_.grp, params_.t, rng_);
      a.coeff(0) = a_->coeff(0);
    }
    auto commitment = std::make_shared<const FeldmanVector>(FeldmanVector::commit(a));
    outbox.push_back(Envelope{self_, 0, std::make_shared<GjkrFeldmanMsg>(commitment)});
  }
}

void GennaroNode::round_xcomplain(const std::vector<Envelope>& inbox,
                                  std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* fmsg = dynamic_cast<const GjkrFeldmanMsg*>(e.msg.get())) {
      if (qual_.count(e.from) != 0 && fmsg->commitment->degree() == params_.t) {
        feldman_.emplace(e.from, *fmsg->commitment);
      }
    }
  }
  for (sim::NodeId dealer : qual_) {
    auto fit = feldman_.find(dealer);
    auto pit = pairs_.find(dealer);
    if (pit == pairs_.end()) continue;
    bool ok = fit != feldman_.end() && fit->second.verify_share(self_, pit->second.first);
    if (!ok) {
      // Publish the Pedersen-valid pair: proof the dealer misbehaved in
      // extraction. Everyone will pool shares to reconstruct a_dealer.
      outbox.push_back(Envelope{
          self_, 0,
          std::make_shared<GjkrXComplaintMsg>(dealer, pit->second.first, pit->second.second)});
    }
  }
}

void GennaroNode::round_pool(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* x = dynamic_cast<const GjkrXComplaintMsg*>(e.msg.get())) {
      auto ped = pedersen_.find(x->dealer);
      if (ped == pedersen_.end() || qual_.count(x->dealer) == 0) continue;
      if (!ped->second.verify_pair(e.from, x->s, x->s_prime)) continue;  // bogus accusation
      auto fit = feldman_.find(x->dealer);
      if (fit != feldman_.end() && fit->second.verify_share(e.from, x->s)) continue;  // consistent
      exposed_.insert(x->dealer);
    }
  }
  for (sim::NodeId dealer : exposed_) {
    auto pit = pairs_.find(dealer);
    if (pit == pairs_.end()) continue;
    outbox.push_back(Envelope{
        self_, 0,
        std::make_shared<GjkrPoolMsg>(dealer, pit->second.first, pit->second.second)});
  }
}

void GennaroNode::round_finish(const std::vector<Envelope>& inbox) {
  for (const Envelope& e : inbox) {
    if (const auto* p = dynamic_cast<const GjkrPoolMsg*>(e.msg.get())) {
      if (exposed_.count(p->dealer) == 0) continue;
      auto ped = pedersen_.find(p->dealer);
      if (ped == pedersen_.end() || !ped->second.verify_pair(e.from, p->s, p->s_prime)) continue;
      auto& pts = pooled_[p->dealer];
      bool dup = false;
      for (const auto& [i, s] : pts) dup |= (i == e.from);
      if (!dup) pts.emplace_back(e.from, p->s);
    }
  }
  GennaroOutput out{crypto::SecretScalar::zero(*params_.grp), Element::identity(*params_.grp),
                    qual_};
  for (sim::NodeId dealer : qual_) {
    auto pit = pairs_.find(dealer);
    if (pit == pairs_.end()) continue;
    out.share += pit->second.first;
    if (exposed_.count(dealer) != 0) {
      // The cheater forfeited secrecy: reconstruct a(0) in the clear.
      auto& pts = pooled_[dealer];
      if (pts.size() >= params_.t + 1) {
        std::vector<std::pair<std::uint64_t, Scalar>> head(
            pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(params_.t + 1));
        Scalar a0 = crypto::interpolate_at(*params_.grp, head, 0);
        out.public_key *= Element::exp_g(a0);
      }
      continue;
    }
    auto fit = feldman_.find(dealer);
    if (fit != feldman_.end()) out.public_key *= fit->second.c0();
  }
  output_ = std::move(out);
}

}  // namespace dkg::baseline
