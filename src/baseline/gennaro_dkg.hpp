// The "New-DKG" of Gennaro, Jarecki, Krawczyk & Rabin [9] (paper ref [9])
// over the synchronous network: Pedersen-committed sharing first (so the
// adversary cannot bias the key), Feldman extraction second (to publish
// y = g^x). Implemented as the strongest synchronous baseline.
//
// Rounds:
//  0 deal      broadcast Pedersen vector E_i, private share pairs (s, s').
//  1 complain  broadcast complaints against bad share pairs.
//  2 reveal    accused dealers reveal; QUAL fixed.
//  3 extract   QUAL dealers broadcast Feldman vectors A_i.
//  4 xcomplain nodes whose share fails against A_i publish the (s, s') pair
//              (valid against E_i, proving the dealer cheated).
//  5 pool      every node broadcasts its pair for each exposed dealer.
//  6 finish    reconstruct exposed dealers' a_i(0) in the clear (they lost
//              secrecy by cheating); output share & pk.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "baseline/sync_network.hpp"
#include "crypto/element.hpp"
#include "crypto/feldman.hpp"
#include "crypto/polynomial.hpp"
#include "crypto/wire_memo.hpp"

namespace dkg::baseline {

struct GennaroParams {
  const crypto::Group* grp = nullptr;
  std::size_t n = 0;
  std::size_t t = 0;
};

struct GennaroOutput {
  crypto::SecretScalar share;
  crypto::Element public_key;
  std::set<sim::NodeId> qual;
};

/// Univariate Pedersen commitment vector: E_l = g^{a_l} h^{b_l}.
class PedersenVector {
 public:
  static PedersenVector commit(const crypto::Polynomial& a, const crypto::Polynomial& b);
  explicit PedersenVector(std::vector<crypto::Element> entries) : entries_(std::move(entries)) {}

  std::size_t degree() const { return entries_.size() - 1; }
  bool verify_pair(std::uint64_t i, const crypto::Scalar& s, const crypto::Scalar& s_prime) const;
  /// See FeldmanMatrix::canonical_bytes.
  const Bytes& canonical_bytes() const;
  Bytes to_bytes() const { return canonical_bytes(); }

 private:
  std::vector<crypto::Element> entries_;
  crypto::WireMemo wire_;  // see FeldmanMatrix::wire_
};

class GennaroNode : public SyncProtocol {
 public:
  GennaroNode(GennaroParams params, sim::NodeId self, crypto::Drbg rng);

  void on_round(std::size_t round, const std::vector<Envelope>& inbox,
                std::vector<Envelope>& outbox) override;
  bool done() const override { return output_.has_value(); }
  const GennaroOutput& output() const { return *output_; }

  /// Test hook: publish a Feldman vector for a *different* polynomial in the
  /// extraction round (the attack the x-complaint flow exists for).
  void cheat_in_extraction() { cheat_extraction_ = true; }

 private:
  void round_deal(std::vector<Envelope>& outbox);
  void round_complain(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_reveal(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_extract(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_xcomplain(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_pool(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_finish(const std::vector<Envelope>& inbox);

  GennaroParams params_;
  sim::NodeId self_;
  crypto::Drbg rng_;
  bool cheat_extraction_ = false;

  std::optional<crypto::Polynomial> a_, b_;
  std::map<sim::NodeId, PedersenVector> pedersen_;
  std::map<sim::NodeId, crypto::FeldmanVector> feldman_;
  std::map<sim::NodeId, std::pair<crypto::Scalar, crypto::Scalar>> pairs_;
  std::map<sim::NodeId, std::set<sim::NodeId>> complaints_;
  std::set<sim::NodeId> qual_;
  std::set<sim::NodeId> exposed_;  // dealers whose polynomial gets pooled
  std::map<sim::NodeId, std::vector<std::pair<std::uint64_t, crypto::Scalar>>> pooled_;
  std::optional<GennaroOutput> output_;
};

}  // namespace dkg::baseline
