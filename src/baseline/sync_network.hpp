// Synchronous round-based network — the substrate the classical DKG
// literature assumes (paper §1: "most of them assume a synchronous
// communication model or a broadcast channel"). Provided so the baselines
// (Joint-Feldman [1], Gennaro et al. [9]) run in their native model and the
// benches can contrast them with the asynchronous protocol.
//
// A broadcast channel is modelled honestly as n point-to-point messages for
// metering purposes (the paper's complexity accounting does the same).
#pragma once

#include <memory>
#include <vector>

#include "crypto/drbg.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"

namespace dkg::baseline {

struct Envelope {
  sim::NodeId from = 0;
  sim::NodeId to = 0;  // 0 = broadcast
  sim::MessagePtr msg;
};

class SyncProtocol {
 public:
  virtual ~SyncProtocol() = default;
  /// One synchronous round: `inbox` holds everything delivered this round;
  /// messages appended to `outbox` are delivered next round.
  virtual void on_round(std::size_t round, const std::vector<Envelope>& inbox,
                        std::vector<Envelope>& outbox) = 0;
  virtual bool done() const = 0;
};

class SyncNetwork {
 public:
  SyncNetwork(std::size_t n, std::uint64_t seed);

  void set_node(sim::NodeId id, std::unique_ptr<SyncProtocol> node);
  SyncProtocol& node(sim::NodeId id) { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size() - 1; }

  /// Runs rounds until every node reports done() or `max_rounds` elapse.
  /// Returns the number of rounds executed.
  std::size_t run(std::size_t max_rounds = 64);

  sim::Metrics& metrics() { return metrics_; }
  crypto::Drbg& rng() { return rng_; }

 private:
  std::vector<std::unique_ptr<SyncProtocol>> nodes_;  // 1-based
  sim::Metrics metrics_;
  crypto::Drbg rng_;
};

}  // namespace dkg::baseline
