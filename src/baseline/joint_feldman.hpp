// Joint-Feldman DKG (Pedersen '91 [1]) over the synchronous network — the
// classical baseline the paper's protocol replaces for asynchronous settings.
//
// Round 0: every dealer i broadcasts a Feldman commitment V_i to a random
//          degree-t polynomial a_i and privately sends s_ij = a_i(j).
// Round 1: nodes broadcast complaints against dealers whose share failed
//          verification.
// Round 2: accused dealers broadcast the disputed shares (reveal).
// Round 3: QUAL = dealers with no unresolved complaint; share = sum of
//          QUAL shares; pk = prod_{i in QUAL} V_i(0).
//
// (Gennaro et al. [9] showed the adversary can bias the key distribution
// here — one reason their protocol exists; see gennaro_dkg.*.)
#pragma once

#include <map>
#include <optional>
#include <set>

#include "baseline/sync_network.hpp"
#include "crypto/feldman.hpp"

namespace dkg::baseline {

struct JfParams {
  const crypto::Group* grp = nullptr;
  std::size_t n = 0;
  std::size_t t = 0;
};

struct JfOutput {
  crypto::SecretScalar share;
  crypto::Element public_key;
  std::set<sim::NodeId> qual;
};

class JointFeldmanNode : public SyncProtocol {
 public:
  JointFeldmanNode(JfParams params, sim::NodeId self, crypto::Drbg rng);

  void on_round(std::size_t round, const std::vector<Envelope>& inbox,
                std::vector<Envelope>& outbox) override;
  bool done() const override { return output_.has_value(); }

  const JfOutput& output() const { return *output_; }

  /// Test hook: deal corrupt shares to the given victims (they complain).
  void corrupt_shares_to(std::set<sim::NodeId> victims) { victims_ = std::move(victims); }
  /// Test hook: ignore complaints (leads to disqualification).
  void refuse_reveal() { refuse_reveal_ = true; }

 private:
  void round_deal(std::vector<Envelope>& outbox);
  void round_complain(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_reveal(const std::vector<Envelope>& inbox, std::vector<Envelope>& outbox);
  void round_finish(const std::vector<Envelope>& inbox);

  JfParams params_;
  sim::NodeId self_;
  crypto::Drbg rng_;

  std::optional<crypto::Polynomial> my_poly_;
  std::map<sim::NodeId, crypto::FeldmanVector> commitments_;
  std::map<sim::NodeId, crypto::Scalar> shares_;           // dealer -> my share
  std::map<sim::NodeId, std::set<sim::NodeId>> complaints_;  // dealer -> accusers
  std::set<sim::NodeId> victims_;
  bool refuse_reveal_ = false;
  std::optional<JfOutput> output_;
};

/// Convenience harness: run a full Joint-Feldman DKG; returns per-node
/// outputs (index 0 unused) or nullopt nodes on failure.
std::vector<std::optional<JfOutput>> run_joint_feldman(SyncNetwork& net, const JfParams& params);

}  // namespace dkg::baseline
