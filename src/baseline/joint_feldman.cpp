#include "baseline/joint_feldman.hpp"

#include <stdexcept>

namespace dkg::baseline {

using crypto::Element;
using crypto::FeldmanVector;
using crypto::Polynomial;
using crypto::Scalar;

namespace {
struct JfCommitMsg : sim::Message {
  std::shared_ptr<const FeldmanVector> commitment;
  explicit JfCommitMsg(std::shared_ptr<const FeldmanVector> c) : commitment(std::move(c)) {}
  std::string_view type() const override { return "jf.commit"; }
  void serialize(Writer& w) const override { w.blob(commitment->canonical_bytes()); }
};

struct JfShareMsg : sim::Message {
  Scalar share;
  explicit JfShareMsg(Scalar s) : share(std::move(s)) {}
  std::string_view type() const override { return "jf.share"; }
  void serialize(Writer& w) const override { w.raw(share.to_bytes()); }
};

struct JfComplaintMsg : sim::Message {
  std::vector<sim::NodeId> accused;
  explicit JfComplaintMsg(std::vector<sim::NodeId> a) : accused(std::move(a)) {}
  std::string_view type() const override { return "jf.complaint"; }
  void serialize(Writer& w) const override {
    w.u32(static_cast<std::uint32_t>(accused.size()));
    for (sim::NodeId id : accused) w.u32(id);
  }
};

struct JfRevealMsg : sim::Message {
  std::vector<std::pair<sim::NodeId, Scalar>> reveals;  // (victim, share)
  std::string_view type() const override { return "jf.reveal"; }
  void serialize(Writer& w) const override {
    w.u32(static_cast<std::uint32_t>(reveals.size()));
    for (const auto& [victim, share] : reveals) {
      w.u32(victim);
      w.raw(share.to_bytes());
    }
  }
};
}  // namespace

JointFeldmanNode::JointFeldmanNode(JfParams params, sim::NodeId self, crypto::Drbg rng)
    : params_(params), self_(self), rng_(std::move(rng)) {
  if (params_.n < 2 * params_.t + 1) throw std::invalid_argument("JointFeldman: n < 2t + 1");
}

void JointFeldmanNode::on_round(std::size_t round, const std::vector<Envelope>& inbox,
                                std::vector<Envelope>& outbox) {
  switch (round) {
    case 0: round_deal(outbox); return;
    case 1: round_complain(inbox, outbox); return;
    case 2: round_reveal(inbox, outbox); return;
    case 3: round_finish(inbox); return;
    default: return;
  }
}

void JointFeldmanNode::round_deal(std::vector<Envelope>& outbox) {
  my_poly_ = Polynomial::random(*params_.grp, params_.t, rng_);
  auto commitment = std::make_shared<const FeldmanVector>(FeldmanVector::commit(*my_poly_));
  outbox.push_back(Envelope{self_, 0, std::make_shared<JfCommitMsg>(commitment)});
  for (sim::NodeId j = 1; j <= params_.n; ++j) {
    // reveal-ok: s_ij = a_i(j) is node j's dealt share, addressed to j.
    Scalar s = my_poly_->eval_at(j).reveal();
    if (victims_.count(j) != 0) s = s + Scalar::one(*params_.grp);  // corrupt
    outbox.push_back(Envelope{self_, j, std::make_shared<JfShareMsg>(std::move(s))});
  }
}

void JointFeldmanNode::round_complain(const std::vector<Envelope>& inbox,
                                      std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* c = dynamic_cast<const JfCommitMsg*>(e.msg.get())) {
      if (c->commitment->degree() == params_.t) commitments_.emplace(e.from, *c->commitment);
    } else if (const auto* s = dynamic_cast<const JfShareMsg*>(e.msg.get())) {
      shares_.emplace(e.from, s->share);
    }
  }
  std::vector<sim::NodeId> accused;
  for (const auto& [dealer, commitment] : commitments_) {
    auto it = shares_.find(dealer);
    if (it == shares_.end() || !commitment.verify_share(self_, it->second)) {
      accused.push_back(dealer);
    }
  }
  if (!accused.empty()) {
    outbox.push_back(Envelope{self_, 0, std::make_shared<JfComplaintMsg>(std::move(accused))});
  }
}

void JointFeldmanNode::round_reveal(const std::vector<Envelope>& inbox,
                                    std::vector<Envelope>& outbox) {
  for (const Envelope& e : inbox) {
    if (const auto* c = dynamic_cast<const JfComplaintMsg*>(e.msg.get())) {
      for (sim::NodeId dealer : c->accused) complaints_[dealer].insert(e.from);
    }
  }
  auto mine = complaints_.find(self_);
  if (mine != complaints_.end() && !refuse_reveal_) {
    auto reveal = std::make_shared<JfRevealMsg>();
    for (sim::NodeId victim : mine->second) {
      // reveal-ok: protocol-mandated public reveal of an accused share.
      reveal->reveals.emplace_back(victim, my_poly_->eval_at(victim).reveal());
    }
    outbox.push_back(Envelope{self_, 0, std::move(reveal)});
  }
}

void JointFeldmanNode::round_finish(const std::vector<Envelope>& inbox) {
  std::map<sim::NodeId, const JfRevealMsg*> reveals;
  for (const Envelope& e : inbox) {
    if (const auto* r = dynamic_cast<const JfRevealMsg*>(e.msg.get())) reveals[e.from] = r;
  }
  JfOutput out{crypto::SecretScalar::zero(*params_.grp), Element::identity(*params_.grp), {}};
  for (const auto& [dealer, commitment] : commitments_) {
    bool qualified = true;
    auto comp = complaints_.find(dealer);
    if (comp != complaints_.end()) {
      // More than t accusers, or any unresolved/invalid reveal: disqualify.
      if (comp->second.size() > params_.t) qualified = false;
      auto rev = reveals.find(dealer);
      if (qualified && rev == reveals.end()) qualified = false;
      if (qualified) {
        for (sim::NodeId victim : comp->second) {
          bool fixed = false;
          for (const auto& [v, share] : rev->second->reveals) {
            if (v == victim && commitment.verify_share(v, share)) {
              fixed = true;
              if (v == self_) shares_[dealer] = share;  // adopt corrected share
              break;
            }
          }
          if (!fixed) {
            qualified = false;
            break;
          }
        }
      }
    }
    if (!qualified) continue;
    auto sh = shares_.find(dealer);
    if (sh == shares_.end() || !commitment.verify_share(self_, sh->second)) continue;
    out.qual.insert(dealer);
    out.share += sh->second;
    out.public_key *= commitment.c0();
  }
  output_ = std::move(out);
}

std::vector<std::optional<JfOutput>> run_joint_feldman(SyncNetwork& net, const JfParams& params) {
  net.run();
  std::vector<std::optional<JfOutput>> outs(params.n + 1);
  for (sim::NodeId i = 1; i <= params.n; ++i) {
    auto& node = dynamic_cast<JointFeldmanNode&>(net.node(i));
    if (node.done()) outs[i] = node.output();
  }
  return outs;
}

}  // namespace dkg::baseline
