#include "dkg/runner.hpp"

#include <stdexcept>

#include "crypto/lagrange.hpp"
#include "engine/parallel_verify.hpp"

namespace dkg::core {

DkgRunner::DkgRunner(RunnerConfig cfg) : cfg_(cfg) {
  keyring_ = crypto::Keyring::generate(*cfg_.grp, cfg_.n, cfg_.seed ^ 0x9e3779b97f4a7c15ULL);

  params_.vss.grp = cfg_.grp;
  params_.vss.n = cfg_.n;
  params_.vss.t = cfg_.t;
  params_.vss.f = cfg_.f;
  params_.vss.d_kappa = cfg_.d_kappa;
  params_.vss.mode = cfg_.mode;
  params_.vss.sign_ready = true;
  params_.vss.keyring = keyring_;
  params_.tau = cfg_.tau;
  params_.timeout_base =
      cfg_.timeout_base != 0 ? cfg_.timeout_base : (cfg_.delay_hi + 1) * 60;

  std::unique_ptr<sim::DelayModel> delay;
  if (cfg_.delay_factory) {
    delay = cfg_.delay_factory();
  } else {
    delay = std::make_unique<sim::UniformDelay>(cfg_.delay_lo, cfg_.delay_hi);
    if (!cfg_.slow_nodes.empty() && cfg_.slow_penalty > 0) {
      delay = std::make_unique<sim::AdversarialDelay>(std::move(delay), cfg_.slow_nodes,
                                                      cfg_.slow_penalty);
    }
  }
  sim_ = std::make_unique<sim::Simulator>(cfg_.n, std::move(delay), cfg_.seed);
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    sim_->set_node(i, std::make_unique<DkgNode>(params_, i));
  }
}

void DkgRunner::replace_node(sim::NodeId id, std::unique_ptr<sim::Node> node) {
  sim_->set_node(id, std::move(node));
  byzantine_.insert(id);
}

void DkgRunner::start_all() {
  crypto::Drbg stagger = sim_->rng().fork("start-stagger");
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    if (byzantine_.count(i) != 0) {
      // Byzantine nodes get the operator message too; what they do with it
      // is their business.
      sim_->post_operator(i, std::make_shared<DkgStartOp>(cfg_.tau, std::nullopt),
                          stagger.uniform(cfg_.delay_hi + 1));
      continue;
    }
    sim_->post_operator(i, std::make_shared<DkgStartOp>(cfg_.tau, std::nullopt),
                        stagger.uniform(cfg_.delay_hi + 1));
  }
}

std::vector<sim::NodeId> DkgRunner::honest_nodes() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    if (byzantine_.count(i) == 0) out.push_back(i);
  }
  return out;
}

DkgNode& DkgRunner::dkg_node(sim::NodeId id) {
  if (byzantine_.count(id) != 0) throw std::logic_error("DkgRunner: node is adversarial");
  return dynamic_cast<DkgNode&>(sim_->node(id));
}

bool DkgRunner::run_to_completion(std::size_t min_outputs, std::uint64_t max_events) {
  std::vector<sim::NodeId> honest = honest_nodes();
  if (min_outputs == 0) min_outputs = honest.size();
  auto done = [&] {
    std::size_t count = 0;
    for (sim::NodeId id : honest) {
      if (dynamic_cast<DkgNode&>(sim_->node(id)).has_output()) ++count;
    }
    return count >= min_outputs;
  };
  return sim_->run_until(done, max_events);
}

std::vector<sim::NodeId> DkgRunner::completed_nodes() const {
  std::vector<sim::NodeId> out;
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    if (byzantine_.count(i) != 0) continue;
    if (dynamic_cast<DkgNode&>(sim_->node(i)).has_output()) out.push_back(i);
  }
  return out;
}

bool DkgRunner::outputs_consistent() const {
  std::vector<sim::NodeId> done = completed_nodes();
  if (done.empty()) return false;
  const DkgOutput& first = dynamic_cast<DkgNode&>(sim_->node(done.front())).output();
  crypto::FeldmanVector vec = first.commitment->share_vector();
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> shares;
  shares.reserve(done.size());
  for (sim::NodeId id : done) {
    const DkgOutput& out = dynamic_cast<DkgNode&>(sim_->node(id)).output();
    if (!(out.q == first.q)) return false;
    if (out.public_key != first.public_key) return false;
    if (!(*out.commitment == *first.commitment)) return false;
    // reveal-ok: harness consistency audit (batch verification against V).
    shares.emplace_back(id, out.share.reveal());
  }
  // All shares in one randomized batch; per-share fallback only on reject
  // (which here means genuine inconsistency — the check still fails, but
  // via the path that pinpoints the offender deterministically).
  crypto::Drbg rng(cfg_.seed ^ 0x76657269667921ULL);  // "verify!"
  if (engine::parallel_verify_share_batch(vec, shares, rng)) return true;
  for (const auto& [id, share] : shares) {
    if (!vec.verify_share(id, share)) return false;
  }
  return false;  // batch rejected: never report success on a rejected batch
}

crypto::Scalar DkgRunner::reconstruct_secret() const {
  std::vector<sim::NodeId> done = completed_nodes();
  if (done.size() < cfg_.t + 1) throw std::logic_error("DkgRunner: not enough outputs");
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> pts;
  for (std::size_t k = 0; k <= cfg_.t; ++k) {
    const DkgOutput& out = dynamic_cast<DkgNode&>(sim_->node(done[k])).output();
    // reveal-ok: harness-level reconstruction of the master secret from t+1
    // shares; the secret goes public here by design.
    pts.emplace_back(done[k], out.share.reveal());
  }
  return crypto::interpolate_at(*cfg_.grp, pts, 0);
}

}  // namespace dkg::core
