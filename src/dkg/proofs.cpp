#include "dkg/proofs.hpp"

#include <algorithm>
#include <set>

#include "engine/parallel_verify.hpp"

namespace dkg::core {

Bytes node_set_bytes(const NodeSet& q) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(q.size()));
  for (sim::NodeId id : q) w.u32(id);
  return w.take();
}

void normalize(NodeSet& q) {
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
}

sim::NodeId leader_of_view(std::uint64_t view, std::size_t n) {
  return static_cast<sim::NodeId>((view - 1) % n + 1);
}

std::size_t DealerProof::wire_size(const crypto::Group& grp) const {
  return 4 + 4 + commit_digest.size() + sigs.size() * (4 + crypto::signature_bytes(grp));
}

void DealerProof::serialize(Writer& w) const {
  w.u32(dealer);
  w.blob(commit_digest);
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const vss::ReadySig& s : sigs) {
    w.u32(s.signer);
    w.raw(s.sig.to_bytes());
  }
}

bool verify_dealer_proof(const crypto::Keyring& ring, std::uint32_t tau, const DealerProof& proof,
                         std::size_t quorum, std::vector<sim::NodeId>* bad_signers) {
  Bytes payload =
      vss::ready_sig_payload(vss::SessionId{proof.dealer, tau}, proof.commit_digest);
  // First occurrence per signer counts, duplicates are skipped — same
  // dedup the per-item loop applied. The engine verifies the unique set in
  // one batch pass (shared inversion + comb tables + cache).
  std::set<sim::NodeId> signers;
  std::vector<crypto::Keyring::SignerRef> refs;
  for (const vss::ReadySig& s : proof.sigs) {
    if (!signers.insert(s.signer).second) continue;
    refs.push_back({s.signer, &s.sig});
  }
  // Chunked across the verify pool; bad_signers order and verdict are
  // identical to the sequential verify_many.
  return engine::parallel_verify_many(ring, refs, payload, bad_signers) &&
         signers.size() >= quorum;
}

void ProposalProof::serialize(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(view);
  w.raw(node_set_bytes(q));
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const SignerSig& s : sigs) {
    w.u32(s.signer);
    w.raw(s.sig.to_bytes());
  }
}

namespace {
Bytes tagged_payload(const char* tag, std::uint32_t tau, std::uint64_t view, const NodeSet& q) {
  Writer w;
  w.str(tag);
  w.u32(tau);
  w.u64(view);
  w.raw(node_set_bytes(q));
  return w.take();
}
}  // namespace

Bytes dkg_echo_payload(std::uint32_t tau, std::uint64_t view, const NodeSet& q) {
  return tagged_payload("hybriddkg/dkg/echo", tau, view, q);
}

Bytes dkg_ready_payload(std::uint32_t tau, std::uint64_t view, const NodeSet& q) {
  return tagged_payload("hybriddkg/dkg/ready", tau, view, q);
}

Bytes lead_ch_payload(std::uint32_t tau, std::uint64_t target_view) {
  Writer w;
  w.str("hybriddkg/dkg/lead-ch");
  w.u32(tau);
  w.u64(target_view);
  return w.take();
}

namespace {
/// Dedup + batch verify for the SignerSig-shaped proof sets.
bool verify_signer_sigs(const crypto::Keyring& ring, const std::vector<SignerSig>& sigs,
                        const Bytes& payload, std::size_t quorum,
                        std::vector<sim::NodeId>* bad_signers) {
  std::set<sim::NodeId> signers;
  std::vector<crypto::Keyring::SignerRef> refs;
  for (const SignerSig& s : sigs) {
    if (!signers.insert(s.signer).second) continue;
    refs.push_back({s.signer, &s.sig});
  }
  return engine::parallel_verify_many(ring, refs, payload, bad_signers) &&
         signers.size() >= quorum;
}
}  // namespace

bool verify_proposal_proof(const crypto::Keyring& ring, std::uint32_t tau,
                           const ProposalProof& proof, const NodeSet& q, std::size_t echo_quorum,
                           std::size_t t_plus_1, std::vector<sim::NodeId>* bad_signers) {
  if (proof.empty() || !(proof.q == q)) return false;
  Bytes payload = proof.kind == ProposalProof::Kind::Echo
                      ? dkg_echo_payload(tau, proof.view, q)
                      : dkg_ready_payload(tau, proof.view, q);
  std::size_t need = proof.kind == ProposalProof::Kind::Echo ? echo_quorum : t_plus_1;
  return verify_signer_sigs(ring, proof.sigs, payload, need, bad_signers);
}

bool verify_lead_ch_proof(const crypto::Keyring& ring, std::uint32_t tau,
                          std::uint64_t target_view, const std::vector<SignerSig>& sigs,
                          std::size_t quorum, std::vector<sim::NodeId>* bad_signers) {
  return verify_signer_sigs(ring, sigs, lead_ch_payload(tau, target_view), quorum, bad_signers);
}

}  // namespace dkg::core
