// The DKG protocol node (paper §4): n parallel extended-HybridVSS sharings
// plus a leader-based reliable broadcast that agrees on a set Q of t+1
// finished sharings, with a PBFT-style leader change for liveness.
//
// Optimistic phase (Fig 2):
//   * every node deals a random secret via extended HybridVSS (signed readys);
//   * once t+1 sharings complete locally (set Q-hat with proofs R-hat), the
//     leader broadcasts (send, Q-hat, R-hat); others start a timeout timer;
//   * the proposal is agreed via signed echo (quorum ceil((n+t+1)/2)) and
//     ready (t+1 amplification, completion at n-t-f);
//   * on completion each node waits for the sharings in Q and outputs
//     s_i = sum_{d in Q} s_{i,d} with C = prod C_d.
//
// Pessimistic phase (Fig 3):
//   * timeout or invalid leader message -> signed lead-ch for the next view;
//   * t+1 lead-ch for higher views -> join (for the smallest such view);
//   * n-t-f lead-ch for view v-bar -> v-bar's leader takes over, proving
//     legitimacy with the lead-ch signatures, and re-proposes the
//     highest-view certified Q it knows (or its Q-hat/R-hat).
#pragma once

#include <optional>

#include "dkg/dkg_messages.hpp"
#include "vss/hybridvss.hpp"

namespace dkg::core {

struct DkgParams {
  vss::VssParams vss;  // group, n, t, f, d_kappa, mode; sign_ready forced on
  /// Base timeout (the paper's delay(t)); doubles per view change, capped.
  sim::Time timeout_base = 5'000;
  std::uint32_t tau = 1;
  /// Size of the agreed dealer set Q. 0 = the default t+1. Share renewal
  /// with a *decreasing* threshold (§6.4) sets this to t_old + 1: the
  /// Lagrange combination at 0 must interpolate the old, higher-degree
  /// polynomial even though the resharings use the new degree.
  std::size_t q_size_override = 0;

  std::size_t n() const { return vss.n; }
  std::size_t t() const { return vss.t; }
  std::size_t f() const { return vss.f; }
  std::size_t q_size() const { return q_size_override != 0 ? q_size_override : vss.t + 1; }
  std::size_t echo_quorum() const { return vss.echo_quorum(); }
  std::size_t ready_quorum() const { return vss.ready_quorum(); }
};

/// (L-bar, tau, DKG-completed, C, s_i).
struct DkgOutput {
  std::uint32_t tau = 0;
  std::uint64_t view = 0;  // view under which agreement completed
  NodeSet q;               // agreed set of dealers
  std::shared_ptr<const crypto::FeldmanMatrix> commitment;  // prod_{d in Q} C_d (null post-renewal)
  /// Long-term verification vector V for the share set: g^{s_i} =
  /// prod_l V_l^{i^l}. Row 0 of the matrix after DKG; the Lagrange
  /// combination after share renewal (§5.2).
  std::optional<crypto::FeldmanVector> share_vec;
  crypto::SecretScalar share;  // sum (DKG) or Lagrange combination (renewal)
  crypto::Element public_key;  // V_0 = g^s
};

class DkgNode : public sim::Node {
 public:
  DkgNode(DkgParams params, sim::NodeId self);

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;
  void on_timer(sim::Context& ctx, sim::TimerId id) override;
  void on_recover(sim::Context& ctx) override;

  bool has_output() const { return output_.has_value(); }
  const DkgOutput& output() const { return *output_; }
  std::uint64_t view() const { return view_; }
  std::uint64_t rejected() const { return rejected_; }
  /// The VSS instance this node runs as dealer `d`'s receiver.
  vss::VssInstance& vss_instance(sim::NodeId dealer);

 protected:
  /// Issues this leader's (send, Q, R/M) — virtual so Byzantine leader
  /// variants can override it.
  virtual void send_proposal(sim::Context& ctx);

  /// Builds the honest proposal message (Q-bar/M when a certificate is
  /// adopted, else Q-hat/R-hat) without sending it — Byzantine leader
  /// variants use it to deliver a *genuine* proposal selectively.
  std::shared_ptr<DkgSendMsg> make_proposal();

  /// Combines the VSS outputs of the agreed set Q into this node's DKG
  /// output. Base: share summation and entrywise commitment product (Fig 2).
  /// The proactive layer overrides with Lagrange combination (§5.2); node
  /// addition additionally emits the subshare message (§6.2).
  virtual DkgOutput combine(sim::Context& ctx, const NodeSet& q);

  /// Starts participation: instantiate all VSS sessions and deal `secret`
  /// (random if absent). Protected so subclasses can gate it (§5.1 clock
  /// tick quorum) or deal an existing share instead.
  void start(sim::Context& ctx, const std::optional<crypto::Scalar>& secret);
  /// Starts participation dealing an explicit bivariate polynomial (share
  /// renewal / node addition reshare f with f(0,0) = old share).
  void start_with_polynomial(sim::Context& ctx, const crypto::BiPolynomial& f);
  /// Instantiates the n VSS sessions without dealing.
  void init_vss(sim::Context& ctx);
  const vss::SharedOutput& vss_output(sim::NodeId dealer) const { return vss_outputs_.at(dealer); }
  bool is_started() const { return started_; }
  /// The protocol's recipient set 1..n (for shared-payload multicasts).
  const std::vector<sim::NodeId>& peers() const { return peers_; }

  DkgParams params_;
  sim::NodeId self_;

 private:
  static constexpr sim::TimerId kProposalTimer = 1;
  void on_vss_shared(sim::Context& ctx, const vss::SharedOutput& out);
  void on_send(sim::Context& ctx, sim::NodeId from, const DkgSendMsg& m);
  void on_echo(sim::Context& ctx, sim::NodeId from, const DkgEchoMsg& m);
  void on_ready(sim::Context& ctx, sim::NodeId from, const DkgReadyMsg& m);
  void on_lead_ch(sim::Context& ctx, sim::NodeId from, const LeadChMsg& m);
  void on_help(sim::Context& ctx, sim::NodeId from);

  void maybe_act_on_quorum(sim::Context& ctx);  // |Q-hat| = t+1 reached
  void adopt_certificate(const NodeSet& q, const ProposalProof& proof);
  void send_lead_ch(sim::Context& ctx, std::uint64_t target_view);
  void enter_view(sim::Context& ctx, std::uint64_t new_view);
  void decide(sim::Context& ctx, const NodeSet& q);
  void try_finalize(sim::Context& ctx);
  sim::Time timeout_for_view(std::uint64_t view) const;
  void send_buffered(sim::Context& ctx, sim::NodeId to, sim::MessagePtr msg);
  /// Shared-payload fan-out of one identical message to all of 1..n,
  /// recorded into every retransmission buffer (B_{L,tau}).
  void multicast_buffered(sim::Context& ctx, const sim::MessagePtr& msg);
  bool leader_is_self() const { return leader_of_view(view_, params_.n()) == self_; }

  // Per-(view, Q) echo/ready bookkeeping.
  struct Tally {
    std::set<sim::NodeId> echo_signers;
    std::set<sim::NodeId> ready_signers;
    std::vector<SignerSig> echo_sigs;
    std::vector<SignerSig> ready_sigs;
    /// Memoized dkg_echo_payload / dkg_ready_payload for this (view, Q):
    /// every signer of the tally signs the same bytes, so encode once —
    /// the engine's sig-cache then hashes identical payloads per message.
    Bytes echo_payload;
    Bytes ready_payload;
  };
  std::map<std::pair<std::uint64_t, Bytes>, Tally> tallies_;
  std::map<std::pair<std::uint64_t, Bytes>, NodeSet> tally_sets_;

  // VSS layer.
  std::map<sim::NodeId, vss::VssInstance> vss_;
  std::map<sim::NodeId, vss::SharedOutput> vss_outputs_;

  // Optimistic-phase state.
  NodeSet q_hat_;                 // Q-hat: locally finished dealers
  DealerProofMap r_hat_;          // R-hat: their ready-signature proofs
  NodeSet q_bar_;                 // Q: adopted certified set (empty = none)
  ProposalProof m_bar_;           // M: its certificate
  bool acted_on_quorum_ = false;  // proposal sent / timer started once
  bool sent_ready_ = false;       // per current certificate adoption
  std::optional<NodeSet> decided_;
  std::uint64_t decided_view_ = 0;
  std::optional<DkgOutput> output_;

  // Pessimistic-phase state.
  std::uint64_t view_ = 1;
  bool lcflag_ = false;
  std::map<std::uint64_t, std::map<sim::NodeId, crypto::Signature>> lead_ch_;  // view -> signers
  std::set<std::uint64_t> seen_send_views_;
  std::map<std::uint64_t, std::set<sim::NodeId>> seen_echo_;   // view -> senders
  std::map<std::uint64_t, std::set<sim::NodeId>> seen_ready_;  // view -> senders
  std::vector<SignerSig> my_lead_ch_proof_;  // legitimacy proof if self became leader

  // Recovery (B_{L,tau} buffers and help budget).
  std::vector<sim::NodeId> peers_;  // 1..n
  std::vector<std::vector<sim::MessagePtr>> buffer_;
  std::uint64_t help_total_ = 0;
  std::map<sim::NodeId, std::uint64_t> help_per_node_;

  bool started_ = false;
  std::uint64_t rejected_ = 0;
};

}  // namespace dkg::core
