// Signed proof sets for the DKG's leader-based agreement (paper §4).
//
// Three kinds of third-party-verifiable evidence circulate:
//  * DealerProof (the paper's R_d / set R-hat): n-t-f signed HybridVSS
//    `ready` witnesses showing that VSS session (P_d, tau) finished.
//  * ProposalProof (the paper's set M): ceil((n+t+1)/2) signed DKG echo
//    messages or t+1 signed DKG ready messages for an agreed set Q,
//    collected under some view.
//  * LeadChProof: n-t-f signed lead-ch requests legitimizing a new leader.
//
// Leader order: the paper's cyclic permutation pi is realized as increasing
// view numbers v = 1, 2, ... with leader(v) = ((v-1) mod n) + 1; "leader
// L-bar > L" becomes "view v-bar > v".
#pragma once

#include <map>
#include <vector>

#include "crypto/keyring.hpp"
#include "vss/vss_messages.hpp"

namespace dkg::core {

using NodeSet = std::vector<sim::NodeId>;  // sorted, unique

/// Canonical encoding of a node set.
Bytes node_set_bytes(const NodeSet& q);
/// Sorts + dedups in place.
void normalize(NodeSet& q);

sim::NodeId leader_of_view(std::uint64_t view, std::size_t n);

/// Proof that VSS session (dealer, tau) completed with commitment digest
/// `commit_digest`: at least n-t-f distinct valid ready signatures.
struct DealerProof {
  sim::NodeId dealer = 0;
  Bytes commit_digest;
  std::vector<vss::ReadySig> sigs;

  std::size_t wire_size(const crypto::Group& grp) const;
  void serialize(Writer& w) const;
};

/// R-hat: per-dealer proofs.
using DealerProofMap = std::map<sim::NodeId, DealerProof>;

/// When `bad_signers` is non-null, the signers whose signatures failed
/// verification are appended (Byzantine attribution via the engine's
/// per-item fallback) — empty on a proof that merely misses quorum.
bool verify_dealer_proof(const crypto::Keyring& ring, std::uint32_t tau, const DealerProof& proof,
                         std::size_t quorum, std::vector<sim::NodeId>* bad_signers = nullptr);

/// One signer's signature over a DKG echo/ready/lead-ch payload.
struct SignerSig {
  sim::NodeId signer = 0;
  crypto::Signature sig;
};

/// The paper's set M.
struct ProposalProof {
  enum class Kind { None, Echo, Ready };
  Kind kind = Kind::None;
  std::uint64_t view = 0;  // view under which the signatures were collected
  NodeSet q;
  std::vector<SignerSig> sigs;

  bool empty() const { return kind == Kind::None; }
  void serialize(Writer& w) const;
};

/// Payloads signed by protocol participants.
Bytes dkg_echo_payload(std::uint32_t tau, std::uint64_t view, const NodeSet& q);
Bytes dkg_ready_payload(std::uint32_t tau, std::uint64_t view, const NodeSet& q);
Bytes lead_ch_payload(std::uint32_t tau, std::uint64_t target_view);

/// Verifies a ProposalProof for set q: enough distinct valid signatures of
/// the right payload. Echo proofs need `echo_quorum`, ready proofs t+1.
bool verify_proposal_proof(const crypto::Keyring& ring, std::uint32_t tau,
                           const ProposalProof& proof, const NodeSet& q, std::size_t echo_quorum,
                           std::size_t t_plus_1, std::vector<sim::NodeId>* bad_signers = nullptr);

/// Verifies n-t-f distinct lead-ch signatures for `target_view`.
bool verify_lead_ch_proof(const crypto::Keyring& ring, std::uint32_t tau,
                          std::uint64_t target_view, const std::vector<SignerSig>& sigs,
                          std::size_t quorum, std::vector<sim::NodeId>* bad_signers = nullptr);

}  // namespace dkg::core
