// Message vocabulary of the DKG protocol (paper §4, Fig 2 and Fig 3).
#pragma once

#include <optional>

#include "dkg/proofs.hpp"
#include "sim/message.hpp"

namespace dkg::core {

struct DkgMessage : sim::Message {
  std::uint32_t tau;
  explicit DkgMessage(std::uint32_t t) : tau(t) {}
};

/// Operator message: start the DKG — contribute a sharing of `secret`
/// (random if absent) and run the agreement.
struct DkgStartOp : DkgMessage {
  std::optional<crypto::Scalar> secret;
  DkgStartOp(std::uint32_t t, std::optional<crypto::Scalar> s)
      : DkgMessage(t), secret(std::move(s)) {}
  std::string_view type() const override { return "dkg.in.start"; }
  void serialize(Writer& w) const override;
};

/// Operator message: (L, tau, in, recover).
struct DkgRecoverOp : DkgMessage {
  using DkgMessage::DkgMessage;
  std::string_view type() const override { return "dkg.in.recover"; }
  void serialize(Writer& w) const override;
};

/// Leader proposal (L, tau, send, Q, R/M). Carries exactly one of:
///  * dealer_proofs (the paper's R-hat) for a fresh proposal Q-hat, or
///  * proposal_proof (the paper's M) when re-proposing an agreed Q.
/// After a leader change the new leader attaches lead_ch_proof — n-t-f
/// signed lead-ch requests proving its legitimacy.
struct DkgSendMsg : DkgMessage {
  std::uint64_t view;
  NodeSet q;
  DealerProofMap dealer_proofs;
  ProposalProof proposal_proof;
  std::vector<SignerSig> lead_ch_proof;

  DkgSendMsg(std::uint32_t t, std::uint64_t v, NodeSet qq)
      : DkgMessage(t), view(v), q(std::move(qq)) {}
  std::string_view type() const override { return "dkg.send"; }
  void serialize(Writer& w) const override;
};

/// (L, tau, echo, Q)_sign.
struct DkgEchoMsg : DkgMessage {
  std::uint64_t view;
  NodeSet q;
  crypto::Signature sig;
  DkgEchoMsg(std::uint32_t t, std::uint64_t v, NodeSet qq, crypto::Signature s)
      : DkgMessage(t), view(v), q(std::move(qq)), sig(std::move(s)) {}
  std::string_view type() const override { return "dkg.echo"; }
  void serialize(Writer& w) const override;
};

/// (L, tau, ready, Q)_sign.
struct DkgReadyMsg : DkgMessage {
  std::uint64_t view;
  NodeSet q;
  crypto::Signature sig;
  DkgReadyMsg(std::uint32_t t, std::uint64_t v, NodeSet qq, crypto::Signature s)
      : DkgMessage(t), view(v), q(std::move(qq)), sig(std::move(s)) {}
  std::string_view type() const override { return "dkg.ready"; }
  void serialize(Writer& w) const override;
};

/// (tau, lead-ch, L-bar, Q, R/M)_sign: request to move to `target_view`.
struct LeadChMsg : DkgMessage {
  std::uint64_t target_view;
  NodeSet q;
  DealerProofMap dealer_proofs;   // if the sender had no agreed Q (R-hat case)
  ProposalProof proposal_proof;   // if it had (M case)
  crypto::Signature sig;          // over lead_ch_payload(tau, target_view)

  LeadChMsg(std::uint32_t t, std::uint64_t v, crypto::Signature s)
      : DkgMessage(t), target_view(v), sig(std::move(s)) {}
  std::string_view type() const override { return "dkg.lead-ch"; }
  void serialize(Writer& w) const override;
};

/// DKG-layer help request (recovery replay of B_{L,tau}).
struct DkgHelpMsg : DkgMessage {
  using DkgMessage::DkgMessage;
  std::string_view type() const override { return "dkg.help"; }
  void serialize(Writer& w) const override;
};

}  // namespace dkg::core
