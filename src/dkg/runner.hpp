// Convenience harness: wires up a simulated network of DkgNodes, injects
// faults/adversaries, runs to completion and checks the paper's DKG
// correctness conditions (Definition 4.1). Used by tests, benchmarks and
// examples so each stays a few lines long.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "dkg/dkg_node.hpp"
#include "sim/faultplan.hpp"
#include "sim/simulator.hpp"

namespace dkg::core {

struct RunnerConfig {
  const crypto::Group* grp = &crypto::Group::tiny256();
  std::size_t n = 7;
  std::size_t t = 1;
  std::size_t f = 1;
  std::uint64_t seed = 1;
  std::uint32_t tau = 1;
  std::uint64_t d_kappa = 8;
  vss::CommitmentMode mode = vss::CommitmentMode::Full;

  /// Link delays: uniform in [delay_lo, delay_hi] ticks.
  sim::Time delay_lo = 10;
  sim::Time delay_hi = 100;
  /// Extra delay on links touching `slow_nodes` (adversarial links, §2.1).
  std::set<sim::NodeId> slow_nodes;
  sim::Time slow_penalty = 0;
  /// 0 = derive from delay_hi (comfortably above an honest VSS round trip).
  sim::Time timeout_base = 0;

  /// Optional delay-model factory. When set it overrides the fields above
  /// (the engine layer uses it to thread adversarial delay models —
  /// partitions, adaptive stalling — into every simulator this config
  /// spawns, including the proactive renewal's). Null keeps the built-in
  /// UniformDelay/AdversarialDelay construction.
  std::function<std::unique_ptr<sim::DelayModel>()> delay_factory;
};

class DkgRunner {
 public:
  explicit DkgRunner(RunnerConfig cfg);

  sim::Simulator& simulator() { return *sim_; }
  const DkgParams& params() const { return params_; }
  const std::shared_ptr<const crypto::Keyring>& keyring() const { return keyring_; }

  /// Replaces node `id` with an adversarial implementation (call pre-start).
  /// The node is excluded from completion checks.
  void replace_node(sim::NodeId id, std::unique_ptr<sim::Node> node);

  void apply_faults(const sim::FaultPlan& plan) { plan.apply(*sim_); }

  /// Posts DkgStartOp to every honest node (staggered over [0, delay_hi]).
  void start_all();

  /// Runs until at least `min_outputs` honest nodes produced DKG output
  /// (default: all honest nodes). Returns false on event-budget exhaustion.
  bool run_to_completion(std::size_t min_outputs = 0, std::uint64_t max_events = 50'000'000);

  std::vector<sim::NodeId> honest_nodes() const;
  std::vector<sim::NodeId> completed_nodes() const;
  DkgNode& dkg_node(sim::NodeId id);

  /// Definition 4.1 checks over completed nodes: identical Q, identical
  /// public key / commitment, every share valid against the commitment.
  bool outputs_consistent() const;

  /// Interpolates the group secret from t+1 completed shares (test-only
  /// operation; in deployment the secret never exists in one place).
  crypto::Scalar reconstruct_secret() const;

 private:
  RunnerConfig cfg_;
  DkgParams params_;
  std::shared_ptr<const crypto::Keyring> keyring_;
  std::unique_ptr<sim::Simulator> sim_;
  std::set<sim::NodeId> byzantine_;
};

}  // namespace dkg::core
