#include "dkg/dkg_node.hpp"

#include <algorithm>

#include "engine/verify_pool.hpp"

namespace dkg::core {

using crypto::FeldmanMatrix;
using crypto::Scalar;

DkgNode::DkgNode(DkgParams params, sim::NodeId self)
    : params_(params), self_(self), buffer_(params.n() + 1) {
  params_.vss.sign_ready = true;  // extended-HybridVSS is mandatory inside DKG
  if (!params_.vss.keyring) throw std::invalid_argument("DkgNode: keyring required");
  if (!params_.vss.resilient()) throw std::invalid_argument("DkgNode: n < 3t + 2f + 1");
  peers_ = sim::all_nodes(params_.n());
}

sim::Time DkgNode::timeout_for_view(std::uint64_t view) const {
  // delay(t) growing with t (§2.1): exponential per view, capped.
  std::uint64_t shift = std::min<std::uint64_t>(view - 1, 10);
  return params_.timeout_base << shift;
}

void DkgNode::send_buffered(sim::Context& ctx, sim::NodeId to, sim::MessagePtr msg) {
  buffer_.at(to).push_back(msg);
  ctx.send(to, std::move(msg));
}

void DkgNode::multicast_buffered(sim::Context& ctx, const sim::MessagePtr& msg) {
  for (sim::NodeId j : peers_) buffer_.at(j).push_back(msg);
  ctx.multicast(peers_, msg);
}

vss::VssInstance& DkgNode::vss_instance(sim::NodeId dealer) {
  auto it = vss_.find(dealer);
  if (it == vss_.end()) {
    vss::SessionId sid{dealer, params_.tau};
    it = vss_.emplace(dealer, vss::VssInstance(params_.vss, sid, self_)).first;
    it->second.set_on_shared(
        [this](sim::Context& cctx, const vss::SharedOutput& out) { on_vss_shared(cctx, out); });
  }
  return it->second;
}

void DkgNode::init_vss(sim::Context&) {
  for (sim::NodeId d = 1; d <= params_.n(); ++d) vss_instance(d);
}

void DkgNode::start(sim::Context& ctx, const std::optional<Scalar>& secret) {
  if (started_) return;
  started_ = true;
  init_vss(ctx);
  Scalar s = secret ? *secret : Scalar::random(*params_.vss.grp, ctx.rng());
  vss_instance(self_).deal(ctx, s);
}

void DkgNode::start_with_polynomial(sim::Context& ctx, const crypto::BiPolynomial& f) {
  if (started_) return;
  started_ = true;
  init_vss(ctx);
  vss_instance(self_).deal_polynomial(ctx, f);
}

void DkgNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  if (from == sim::kOperator) {
    if (const auto* m = dynamic_cast<const DkgStartOp*>(msg.get()); m && m->tau == params_.tau) {
      start(ctx, m->secret);
    } else if (const auto* r = dynamic_cast<const DkgRecoverOp*>(msg.get());
               r && r->tau == params_.tau) {
      on_recover(ctx);
    }
    return;
  }
  if (const auto* vm = dynamic_cast<const vss::VssMessage*>(msg.get())) {
    if (vm->sid.tau == params_.tau && vm->sid.dealer >= 1 && vm->sid.dealer <= params_.n()) {
      vss_instance(vm->sid.dealer).handle(ctx, from, *msg);
    }
    return;
  }
  const auto* dm = dynamic_cast<const DkgMessage*>(msg.get());
  if (dm == nullptr || dm->tau != params_.tau) return;
  if (const auto* m = dynamic_cast<const DkgSendMsg*>(dm)) {
    on_send(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const DkgEchoMsg*>(dm)) {
    on_echo(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const DkgReadyMsg*>(dm)) {
    on_ready(ctx, from, *m);
  } else if (const auto* m = dynamic_cast<const LeadChMsg*>(dm)) {
    on_lead_ch(ctx, from, *m);
  } else if (dynamic_cast<const DkgHelpMsg*>(dm) != nullptr) {
    on_help(ctx, from);
  }
}

void DkgNode::on_vss_shared(sim::Context& ctx, const vss::SharedOutput& out) {
  sim::NodeId dealer = out.sid.dealer;
  if (vss_outputs_.count(dealer) != 0) return;
  vss_outputs_.emplace(dealer, out);
  if (std::find(q_hat_.begin(), q_hat_.end(), dealer) == q_hat_.end()) {
    q_hat_.push_back(dealer);
    normalize(q_hat_);
    r_hat_[dealer] = DealerProof{dealer, out.commitment->digest(), out.ready_proof};
  }
  maybe_act_on_quorum(ctx);
  try_finalize(ctx);
}

void DkgNode::maybe_act_on_quorum(sim::Context& ctx) {
  // Fig 2: "if |Q-hat| = t+1 and Q = empty" (t+1 generalized to q_size).
  if (acted_on_quorum_ || q_hat_.size() < params_.q_size() || !q_bar_.empty()) return;
  acted_on_quorum_ = true;
  if (leader_is_self()) {
    send_proposal(ctx);
  } else {
    ctx.start_timer(kProposalTimer, timeout_for_view(view_));
  }
}

std::shared_ptr<DkgSendMsg> DkgNode::make_proposal() {
  auto msg = [&]() -> std::shared_ptr<DkgSendMsg> {
    if (!q_bar_.empty()) {
      auto m = std::make_shared<DkgSendMsg>(params_.tau, view_, q_bar_);
      m->proposal_proof = m_bar_;
      return m;
    }
    NodeSet q(q_hat_.begin(),
              q_hat_.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(q_hat_.size(), params_.q_size())));
    auto m = std::make_shared<DkgSendMsg>(params_.tau, view_, q);
    for (sim::NodeId d : m->q) m->dealer_proofs[d] = r_hat_.at(d);
    return m;
  }();
  msg->lead_ch_proof = my_lead_ch_proof_;
  return msg;
}

void DkgNode::send_proposal(sim::Context& ctx) {
  multicast_buffered(ctx, make_proposal());
}

void DkgNode::on_send(sim::Context& ctx, sim::NodeId from, const DkgSendMsg& m) {
  if (output_ || m.view < view_) return;
  if (from != leader_of_view(m.view, params_.n())) return;
  if (!seen_send_views_.insert(m.view).second) return;  // first time per view

  const crypto::Keyring& ring = *params_.vss.keyring;
  // A leader for a later view must prove its legitimacy with n-t-f signed
  // lead-ch requests (Fig 3).
  if (m.view > view_) {
    if (!verify_lead_ch_proof(ring, params_.tau, m.view, m.lead_ch_proof,
                              params_.ready_quorum())) {
      ++rejected_;
      return;
    }
    enter_view(ctx, m.view);
    ctx.start_timer(kProposalTimer, timeout_for_view(view_));
  }

  // verify-signature(Q, R/M).
  bool valid = m.q.size() == params_.q_size();
  if (valid) {
    if (!m.proposal_proof.empty()) {
      valid = verify_proposal_proof(ring, params_.tau, m.proposal_proof, m.q,
                                    params_.echo_quorum(), params_.t() + 1);
    } else {
      engine::VerifyScope scope;
      if (scope.parallel()) {
        // Independent per-dealer proof sets verify concurrently (each one
        // additionally chunks inside verify_dealer_proof; nested scopes run
        // inline on workers). The sequential first-failure break only saved
        // CPU — the `valid` verdict is the same AND either way.
        std::vector<char> oks;
        oks.reserve(m.q.size());
        std::vector<const DealerProof*> proofs;
        proofs.reserve(m.q.size());
        for (sim::NodeId d : m.q) {
          auto it = m.dealer_proofs.find(d);
          if (it == m.dealer_proofs.end()) {
            valid = false;
            break;
          }
          proofs.push_back(&it->second);
        }
        if (valid) {
          oks.assign(proofs.size(), 0);
          const crypto::Keyring* ringp = &ring;
          const std::uint32_t tau = params_.tau;
          const std::size_t quorum = params_.ready_quorum();
          for (std::size_t w = 0; w < proofs.size(); ++w) {
            const DealerProof* proof = proofs[w];
            char* ok = &oks[w];
            scope.push([ringp, tau, proof, quorum, ok] {
              *ok = verify_dealer_proof(*ringp, tau, *proof, quorum) ? 1 : 0;
            });
          }
          scope.join();
          for (char ok : oks) {
            if (ok == 0) valid = false;
          }
        }
      } else {
        for (sim::NodeId d : m.q) {
          auto it = m.dealer_proofs.find(d);
          if (it == m.dealer_proofs.end() ||
              !verify_dealer_proof(ring, params_.tau, it->second, params_.ready_quorum())) {
            valid = false;
            break;
          }
        }
      }
    }
  }
  if (!valid) {
    ++rejected_;
    // Faulty leader: ask for a change (Fig 2 "receives an invalid message").
    if (!lcflag_) send_lead_ch(ctx, view_ + 1);
    return;
  }
  // "if Q = empty or Q = Q": echo unless already bound to a different set.
  if (!q_bar_.empty() && !(q_bar_ == m.q)) return;
  crypto::Signature sig =
      ring.sign_as(self_, dkg_echo_payload(params_.tau, m.view, m.q));
  auto echo = std::make_shared<DkgEchoMsg>(params_.tau, m.view, m.q, std::move(sig));
  multicast_buffered(ctx, echo);
}

void DkgNode::adopt_certificate(const NodeSet& q, const ProposalProof& proof) {
  if (!m_bar_.empty() && m_bar_.view > proof.view) return;  // keep highest view
  q_bar_ = q;
  m_bar_ = proof;
}

void DkgNode::on_echo(sim::Context& ctx, sim::NodeId from, const DkgEchoMsg& m) {
  if (output_ || m.view < view_) return;
  if (!seen_echo_[m.view].insert(from).second) return;
  const crypto::Keyring& ring = *params_.vss.keyring;
  auto key = std::make_pair(m.view, node_set_bytes(m.q));
  Tally& tally = tallies_[key];
  if (tally.echo_payload.empty()) {
    tally.echo_payload = dkg_echo_payload(params_.tau, m.view, m.q);
  }
  if (!ring.verify_from(from, tally.echo_payload, m.sig)) {
    ++rejected_;
    return;
  }
  tally_sets_[key] = m.q;
  tally.echo_signers.insert(from);
  tally.echo_sigs.push_back(SignerSig{from, m.sig});
  if (tally.echo_signers.size() == params_.echo_quorum() &&
      tally.ready_signers.size() < params_.t() + 1 && !sent_ready_) {
    sent_ready_ = true;
    ProposalProof proof;
    proof.kind = ProposalProof::Kind::Echo;
    proof.view = m.view;
    proof.q = m.q;
    proof.sigs = tally.echo_sigs;
    adopt_certificate(m.q, proof);
    if (tally.ready_payload.empty()) {
      tally.ready_payload = dkg_ready_payload(params_.tau, m.view, m.q);
    }
    crypto::Signature sig = ring.sign_as(self_, tally.ready_payload);
    auto ready = std::make_shared<DkgReadyMsg>(params_.tau, m.view, m.q, std::move(sig));
    multicast_buffered(ctx, ready);
  }
}

void DkgNode::on_ready(sim::Context& ctx, sim::NodeId from, const DkgReadyMsg& m) {
  if (output_ || m.view < view_) return;
  if (!seen_ready_[m.view].insert(from).second) return;
  const crypto::Keyring& ring = *params_.vss.keyring;
  auto key = std::make_pair(m.view, node_set_bytes(m.q));
  Tally& tally = tallies_[key];
  if (tally.ready_payload.empty()) {
    tally.ready_payload = dkg_ready_payload(params_.tau, m.view, m.q);
  }
  if (!ring.verify_from(from, tally.ready_payload, m.sig)) {
    ++rejected_;
    return;
  }
  tally_sets_[key] = m.q;
  tally.ready_signers.insert(from);
  tally.ready_sigs.push_back(SignerSig{from, m.sig});
  if (tally.ready_signers.size() == params_.t() + 1 &&
      tally.echo_signers.size() < params_.echo_quorum() && !sent_ready_) {
    // Ready amplification (Fig 2).
    sent_ready_ = true;
    ProposalProof proof;
    proof.kind = ProposalProof::Kind::Ready;
    proof.view = m.view;
    proof.q = m.q;
    proof.sigs = tally.ready_sigs;
    adopt_certificate(m.q, proof);
    crypto::Signature sig = ring.sign_as(self_, tally.ready_payload);
    auto ready = std::make_shared<DkgReadyMsg>(params_.tau, m.view, m.q, std::move(sig));
    multicast_buffered(ctx, ready);
  } else if (tally.ready_signers.size() == params_.ready_quorum()) {
    ctx.stop_timer(kProposalTimer);
    decided_view_ = m.view;
    decide(ctx, m.q);
  }
}

void DkgNode::decide(sim::Context& ctx, const NodeSet& q) {
  if (decided_) return;
  decided_ = q;
  try_finalize(ctx);
}

void DkgNode::try_finalize(sim::Context& ctx) {
  if (!decided_ || output_) return;
  for (sim::NodeId d : *decided_) {
    if (vss_outputs_.count(d) == 0) return;  // wait for shared outputs (Fig 2)
  }
  DkgOutput out = combine(ctx, *decided_);
  out.tau = params_.tau;
  out.view = decided_view_ == 0 ? view_ : decided_view_;
  out.q = *decided_;
  output_ = std::move(out);
  ctx.stop_timer(kProposalTimer);
}

DkgOutput DkgNode::combine(sim::Context&, const NodeSet& q) {
  const crypto::Group& grp = *params_.vss.grp;
  crypto::SecretScalar share = crypto::SecretScalar::zero(grp);
  FeldmanMatrix commitment = FeldmanMatrix::identity(grp, params_.t());
  for (sim::NodeId d : q) {
    const vss::SharedOutput& out = vss_outputs_.at(d);
    share += out.share;
    commitment = commitment * (*out.commitment);
  }
  DkgOutput out;
  out.share = std::move(share);
  out.public_key = commitment.c00();
  out.share_vec = commitment.share_vector();
  out.commitment = std::make_shared<const FeldmanMatrix>(std::move(commitment));
  return out;
}

void DkgNode::on_timer(sim::Context& ctx, sim::TimerId id) {
  if (id != kProposalTimer || output_) return;
  // Timeout: request a leader change (Fig 2 "upon timeout"), escalating to
  // ever-higher views if changes themselves stall.
  std::uint64_t target = view_ + 1;
  while (lead_ch_.count(target) != 0 && lead_ch_.at(target).count(self_) != 0) ++target;
  send_lead_ch(ctx, target);
  ctx.start_timer(kProposalTimer, timeout_for_view(target));
}

void DkgNode::send_lead_ch(sim::Context& ctx, std::uint64_t target_view) {
  lcflag_ = true;
  const crypto::Keyring& ring = *params_.vss.keyring;
  crypto::Signature sig = ring.sign_as(self_, lead_ch_payload(params_.tau, target_view));
  auto msg = std::make_shared<LeadChMsg>(params_.tau, target_view, std::move(sig));
  if (!q_bar_.empty()) {
    msg->q = q_bar_;
    msg->proposal_proof = m_bar_;
  } else {
    msg->q = q_hat_;
    msg->dealer_proofs = r_hat_;
  }
  multicast_buffered(ctx, msg);
}

void DkgNode::on_lead_ch(sim::Context& ctx, sim::NodeId from, const LeadChMsg& m) {
  if (output_ || m.target_view <= view_) return;
  const crypto::Keyring& ring = *params_.vss.keyring;
  if (!ring.verify_from(from, lead_ch_payload(params_.tau, m.target_view), m.sig)) {
    ++rejected_;
    return;
  }
  auto& signers = lead_ch_[m.target_view];
  if (signers.count(from) != 0) return;  // first time per (view, sender)
  signers.emplace(from, m.sig);

  // Merge the sender's evidence (Fig 3: "if R/M = R then Q-hat <- Q ...").
  if (!m.proposal_proof.empty()) {
    if (verify_proposal_proof(ring, params_.tau, m.proposal_proof, m.q, params_.echo_quorum(),
                              params_.t() + 1)) {
      adopt_certificate(m.q, m.proposal_proof);
    } else {
      ++rejected_;
    }
  } else {
    for (const auto& [dealer, proof] : m.dealer_proofs) {
      if (r_hat_.count(dealer) != 0) continue;
      if (verify_dealer_proof(ring, params_.tau, proof, params_.ready_quorum())) {
        q_hat_.push_back(dealer);
        normalize(q_hat_);
        r_hat_[dealer] = proof;
      } else {
        ++rejected_;
      }
    }
  }

  // "if sum lc_L = t+1 and lcflag = false": join the change for the
  // smallest requested view.
  if (!lcflag_) {
    std::size_t total = 0;
    std::uint64_t smallest = 0;
    for (const auto& [view, sgs] : lead_ch_) {
      if (view <= view_) continue;
      total += sgs.size();
      if (smallest == 0) smallest = view;
    }
    if (total >= params_.t() + 1) send_lead_ch(ctx, smallest);
  }

  // "else if lc_L = n-t-f": install the new leader.
  auto it = lead_ch_.find(m.target_view);
  if (it != lead_ch_.end() && it->second.size() >= params_.ready_quorum()) {
    std::vector<SignerSig> proof;
    proof.reserve(it->second.size());
    for (const auto& [signer, sg] : it->second) proof.push_back(SignerSig{signer, sg});
    enter_view(ctx, m.target_view);
    my_lead_ch_proof_ = std::move(proof);
    if (leader_is_self()) {
      send_proposal(ctx);
    } else {
      ctx.start_timer(kProposalTimer, timeout_for_view(view_));
    }
  }
}

void DkgNode::enter_view(sim::Context& ctx, std::uint64_t new_view) {
  view_ = new_view;
  lcflag_ = false;
  sent_ready_ = false;
  ctx.stop_timer(kProposalTimer);
  for (auto it = lead_ch_.begin(); it != lead_ch_.end();) {
    it = it->first <= view_ ? lead_ch_.erase(it) : ++it;
  }
}

void DkgNode::on_help(sim::Context& ctx, sim::NodeId from) {
  std::uint64_t& cl = help_per_node_[from];
  if (cl > params_.vss.d_kappa ||
      help_total_ > (params_.t() + 1) * params_.vss.d_kappa) {
    return;
  }
  cl += 1;
  help_total_ += 1;
  for (const sim::MessagePtr& m : buffer_.at(from)) ctx.send(from, m);
}

void DkgNode::on_recover(sim::Context& ctx) {
  if (!started_) return;
  ctx.multicast(peers_, std::make_shared<DkgHelpMsg>(params_.tau));
  for (sim::NodeId j = 1; j <= params_.n(); ++j) {
    for (const sim::MessagePtr& m : buffer_.at(j)) ctx.send(j, m);
  }
  for (auto& [dealer, inst] : vss_) inst.recover(ctx);
  // Re-arm the liveness timer if agreement is still pending.
  if (acted_on_quorum_ && !output_ && !leader_is_self()) {
    ctx.start_timer(kProposalTimer, timeout_for_view(view_));
  }
}

}  // namespace dkg::core
