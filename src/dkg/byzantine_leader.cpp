#include "dkg/byzantine_leader.hpp"

namespace dkg::core {

void ByzantineLeaderNode::send_proposal(sim::Context& ctx) {
  switch (fault_) {
    case LeaderFault::Mute:
      return;
    case LeaderFault::BogusProof: {
      // A plausible Q with no/garbage proofs.
      NodeSet q;
      for (sim::NodeId d = 1; d <= params_.t() + 1; ++d) q.push_back(d);
      auto msg = std::make_shared<DkgSendMsg>(params_.tau, view(), q);
      for (sim::NodeId j = 1; j <= params_.n(); ++j) ctx.send(j, msg);
      return;
    }
    case LeaderFault::Equivocate: {
      // Two overlapping-but-different proposals, each with a forged empty
      // proof set; echo quorum intersection must prevent dual agreement.
      NodeSet q1, q2;
      for (sim::NodeId d = 1; d <= params_.t() + 1; ++d) q1.push_back(d);
      for (sim::NodeId d = 2; d <= params_.t() + 2; ++d) q2.push_back(d);
      auto m1 = std::make_shared<DkgSendMsg>(params_.tau, view(), q1);
      auto m2 = std::make_shared<DkgSendMsg>(params_.tau, view(), q2);
      for (sim::NodeId j = 1; j <= params_.n(); ++j) ctx.send(j, (j % 2 == 0) ? m1 : m2);
      return;
    }
  }
}

}  // namespace dkg::core
