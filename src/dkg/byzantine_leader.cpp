#include "dkg/byzantine_leader.hpp"

namespace dkg::core {

void ByzantineLeaderNode::send_proposal(sim::Context& ctx) {
  switch (fault_) {
    case LeaderFault::Mute:
      return;
    case LeaderFault::BogusProof: {
      // A plausible Q with no/garbage proofs.
      NodeSet q;
      for (sim::NodeId d = 1; d <= params_.t() + 1; ++d) q.push_back(d);
      auto msg = std::make_shared<DkgSendMsg>(params_.tau, view(), q);
      for (sim::NodeId j = 1; j <= params_.n(); ++j) ctx.send(j, msg);
      return;
    }
    case LeaderFault::SelectiveSend: {
      // The genuine, fully-proved proposal — delivered to too few nodes to
      // ever assemble an echo quorum.
      auto msg = make_proposal();
      std::size_t quorum = params_.echo_quorum();
      std::size_t recipients = quorum > 1 ? quorum - 1 : 0;
      for (sim::NodeId j = 1; j <= params_.n() && j <= recipients; ++j) ctx.send(j, msg);
      return;
    }
    case LeaderFault::Equivocate: {
      // Two overlapping-but-different proposals, each with a forged empty
      // proof set; echo quorum intersection must prevent dual agreement.
      NodeSet q1, q2;
      for (sim::NodeId d = 1; d <= params_.t() + 1; ++d) q1.push_back(d);
      for (sim::NodeId d = 2; d <= params_.t() + 2; ++d) q2.push_back(d);
      auto m1 = std::make_shared<DkgSendMsg>(params_.tau, view(), q1);
      auto m2 = std::make_shared<DkgSendMsg>(params_.tau, view(), q2);
      for (sim::NodeId j = 1; j <= params_.n(); ++j) ctx.send(j, (j % 2 == 0) ? m1 : m2);
      return;
    }
  }
}

}  // namespace dkg::core
