#include "dkg/dkg_messages.hpp"

namespace dkg::core {

namespace {
void put_dealer_proofs(Writer& w, const DealerProofMap& proofs) {
  w.u32(static_cast<std::uint32_t>(proofs.size()));
  for (const auto& [dealer, proof] : proofs) proof.serialize(w);
}

void put_signer_sigs(Writer& w, const std::vector<SignerSig>& sigs) {
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const SignerSig& s : sigs) {
    w.u32(s.signer);
    w.raw(s.sig.to_bytes());
  }
}
}  // namespace

void DkgStartOp::serialize(Writer& w) const {
  w.u32(tau);
  if (secret) w.raw(secret->to_bytes());
}

void DkgRecoverOp::serialize(Writer& w) const { w.u32(tau); }

void DkgSendMsg::serialize(Writer& w) const {
  w.u32(tau);
  w.u64(view);
  w.raw(node_set_bytes(q));
  put_dealer_proofs(w, dealer_proofs);
  proposal_proof.serialize(w);
  put_signer_sigs(w, lead_ch_proof);
}

void DkgEchoMsg::serialize(Writer& w) const {
  w.u32(tau);
  w.u64(view);
  w.raw(node_set_bytes(q));
  w.raw(sig.to_bytes());
}

void DkgReadyMsg::serialize(Writer& w) const {
  w.u32(tau);
  w.u64(view);
  w.raw(node_set_bytes(q));
  w.raw(sig.to_bytes());
}

void LeadChMsg::serialize(Writer& w) const {
  w.u32(tau);
  w.u64(target_view);
  w.raw(node_set_bytes(q));
  put_dealer_proofs(w, dealer_proofs);
  proposal_proof.serialize(w);
  w.raw(sig.to_bytes());
}

void DkgHelpMsg::serialize(Writer& w) const { w.u32(tau); }

}  // namespace dkg::core
