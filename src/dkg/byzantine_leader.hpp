// Faulty-leader behaviours for exercising the pessimistic phase (Fig 3).
// Each variant participates honestly in the VSS layer (the hardest case for
// detection) but corrupts exactly the leader duty.
#pragma once

#include "dkg/dkg_node.hpp"

namespace dkg::core {

enum class LeaderFault {
  /// Never sends a proposal: liveness must come from timeouts + lead-ch.
  Mute,
  /// Sends a proposal with garbage proofs: receivers must reject it and
  /// request a leader change immediately.
  BogusProof,
  /// Sends different (valid-looking) Q sets to different nodes; agreement
  /// must still converge on at most one Q.
  Equivocate,
  /// Selective delivery: sends its *genuine* proposal to one node short of
  /// the echo quorum and silence to the rest — no view-1 agreement is
  /// possible, so liveness must come from timeouts + lead-ch, and safety
  /// from the quorum intersection with the next view's proposal.
  SelectiveSend,
};

class ByzantineLeaderNode : public DkgNode {
 public:
  ByzantineLeaderNode(DkgParams params, sim::NodeId self, LeaderFault fault)
      : DkgNode(params, self), fault_(fault) {}

 protected:
  void send_proposal(sim::Context& ctx) override;

 private:
  LeaderFault fault_;
};

}  // namespace dkg::core
