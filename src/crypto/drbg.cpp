#include "crypto/drbg.hpp"

#include "common/serialize.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

Drbg::Drbg(const Bytes& seed) : Drbg(SecretBytes(seed)) {}

Drbg::Drbg(const SecretBytes& seed) : seed_material_(seed) {
  // Key directly from wiped storage: the ChaCha key never transits the heap.
  sha256_into(seed.data(), seed.size(), key_.data());
  // Nonce fixed to zero: each (seed) keys a distinct stream.
}

Drbg::Drbg(std::uint64_t seed) : Drbg([&] {
  Writer w;
  w.str("hybriddkg/drbg/u64");
  w.u64(seed);
  return w.take();
}()) {}

Drbg::~Drbg() {
  secure_wipe(key_.data(), key_.size());
  secure_wipe(block_.data(), block_.size());
}

Drbg Drbg::fork(std::string_view label) const {
  // Writer::{blob,str}-compatible framing, assembled in wiped storage so the
  // parent seed never lands in an unwiped heap buffer.
  SecretBytes w;
  w.append_u32(static_cast<std::uint32_t>(seed_material_.size()));
  w.append(seed_material_);
  w.append_str(label);
  return Drbg(w);
}

void Drbg::refill() {
  block_ = chacha20_block(key_, nonce_, counter_++);
  pos_ = 0;
}

void Drbg::fill(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (pos_ == 64) refill();
    std::size_t take = std::min(len, std::size_t{64} - pos_);
    std::copy(block_.begin() + static_cast<std::ptrdiff_t>(pos_),
              block_.begin() + static_cast<std::ptrdiff_t>(pos_ + take), out);
    pos_ += take;
    out += take;
    len -= take;
  }
}

Bytes Drbg::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t b[8];
  fill(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  for (;;) {
    std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

double Drbg::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace dkg::crypto
