// Montgomery (REDC) modular-multiplication engine. Every commitment hot
// path ends in long chains of mul-mod-p (the Straus accumulation loops,
// Horner index-power products and comb-table walks in crypto/multiexp), and
// a plain mpz_mul + mpz_mod pays a full division per step. REDC replaces the
// division with two half-products: values are carried as aR mod n (R = B^L
// for the modulus's limb count L), a product a'b' REDCs back to abR mod n in
// 2 L^2 limb multiplications and no division — GMP's own powm gets ~1.8x per
// multiply this way, and this header makes the same representation available
// to loops GMP cannot see inside.
//
// The representation changes but the results cannot: from_mont(REDC chain)
// is exactly the canonical residue the plain chain produces, so callers that
// convert only at entry/exit stay bit-identical (pinned by the differential
// harness in tests/test_montgomery.cpp against GMP across all four parameter
// sets). Only odd moduli have a Montgomery form; for_group() returns nullptr
// for an even p and callers keep the plain path.
#pragma once

#include <gmpxx.h>

#include <cstddef>
#include <vector>

namespace dkg::crypto {

class Group;

class MontgomeryCtx {
 public:
  /// Precomputes n' = -n^{-1} mod B, R mod n and R^2 mod n for an odd
  /// modulus n > 1. Throws std::invalid_argument otherwise.
  explicit MontgomeryCtx(const mpz_class& n);

  /// The cached context for a group's modulus p, built lazily once per
  /// distinct modulus VALUE (any two Group instances with equal p share
  /// one). Returns nullptr for even p — the transparent-fallback signal —
  /// or if the cache is full (kMaxCached distinct moduli, far above any
  /// real run). Thread-safe, including concurrent first touch.
  static const MontgomeryCtx* for_group(const Group& grp);

  const mpz_class& modulus() const { return n_; }
  /// Limb count L of the modulus; R = B^L for B = 2^GMP_NUMB_BITS.
  std::size_t limbs() const { return L_; }
  /// R mod n — the Montgomery representation of 1 (identity for mul()).
  const mpz_class& one() const { return one_; }

  /// a (any non-negative value; reduced mod n) -> aR mod n.
  mpz_class to_mont(const mpz_class& a) const;
  /// aR mod n -> a, canonical in [0, n).
  mpz_class from_mont(const mpz_class& a) const;

  /// Scratch-reusing multiplier for hot loops — the Montgomery analogue of
  /// the one-temporary mul-mod accumulators in crypto/multiexp. Operands
  /// and results are Montgomery-domain residues in [0, n). One Mul per call
  /// frame; not shareable across threads (the ctx itself is immutable and
  /// freely shared).
  ///
  /// Two interfaces share the scratch space:
  ///  * the mpz_class one (mul/sqr/redc/to_mont below) for one-off
  ///    conversions and the differential tests;
  ///  * the accumulator chain (acc_*): the working value lives INSIDE the
  ///    Mul as a fixed-width limb vector, so a squaring ladder touches no
  ///    mpz bookkeeping at all — set it, run the chain, take the result.
  class Mul {
   public:
    explicit Mul(const MontgomeryCtx& ctx);
    /// acc = REDC(acc * m): the Montgomery product, canonical in [0, n).
    void mul(mpz_class& acc, const mpz_class& m);
    /// acc = REDC(acc^2).
    void sqr(mpz_class& acc);
    /// acc = REDC(acc) — one division-free Montgomery reduction (this is
    /// from_mont when acc is a Montgomery-domain value).
    void redc(mpz_class& acc);
    /// acc -> acc R mod n: the entry conversion, one Montgomery mul by R^2.
    /// acc must already be canonical in [0, n) (use MontgomeryCtx::to_mont
    /// for arbitrary non-negative values).
    void to_mont(mpz_class& acc) { mul(acc, ctx_.r2_); }

    // --- accumulator chain -------------------------------------------------
    /// acc = R mod n (the domain image of 1).
    void acc_set_one();
    /// acc = v, a Montgomery-domain value in [0, n).
    void acc_set(const mpz_class& v);
    /// acc = to_mont(v) for canonical v in [0, n).
    void acc_enter(const mpz_class& v);
    /// acc = REDC(acc * m) for a domain value m in [0, n).
    void acc_mul(const mpz_class& m);
    /// acc = REDC(acc * to_mont(v)) for canonical v in [0, n) — folds one
    /// entry conversion into the chain without an mpz temporary.
    void acc_mul_entered(const mpz_class& v);
    /// acc = REDC(acc^2).
    void acc_sqr();
    /// Parks a copy of acc in the one-slot save register…
    void acc_save();
    /// …and acc = REDC(acc * saved) multiplies it back in (the Horner
    /// square-and-multiply shape).
    void acc_mul_saved();
    /// acc = REDC(acc) — the exit conversion for a domain-valued acc.
    void acc_redc();
    /// True iff acc == R mod n (the domain identity).
    bool acc_is_one() const;
    /// The current accumulator as an mpz (domain value, canonical size).
    void acc_get(mpz_class& out) const;

   private:
    void finish(mp_limb_t* out);          // REDC t_ into out (L limbs)
    void finish_mpz(mpz_class& acc);      // REDC t_ and store into acc
    void mul_into_t(const mp_limb_t* ap, std::size_t an, const mpz_class& m);

    const MontgomeryCtx& ctx_;
    std::vector<mp_limb_t> t_;    // 2L-limb product / reduction buffer
    std::vector<mp_limb_t> acc_;  // L-limb chain accumulator (zero-padded)
    std::vector<mp_limb_t> sv_;   // L-limb save register
    std::vector<mp_limb_t> ev_;   // L-limb entry-conversion scratch
  };

  static constexpr std::size_t kMaxCached = 64;

 private:
  mpz_class n_, r2_, one_;
  std::vector<mp_limb_t> nl_;    // the modulus as L little-endian limbs
  std::vector<mp_limb_t> onel_;  // R mod n, zero-padded to L limbs
  mp_limb_t ninv_ = 0;           // -n^{-1} mod B
  std::size_t L_ = 0;
};

}  // namespace dkg::crypto
