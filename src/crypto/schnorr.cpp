#include "crypto/schnorr.hpp"

#include "common/serialize.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

Scalar schnorr_challenge(const Element& r, const Element& pk, const Bytes& msg) {
  Writer w;
  w.str("hybriddkg/schnorr/v1");
  w.blob(r.to_bytes());
  w.blob(pk.to_bytes());
  w.blob(msg);
  return Scalar::hash_to_scalar(pk.group(), w.data());
}

Bytes Signature::to_bytes() const {
  Writer w;
  w.raw(c.to_bytes());
  w.raw(s.to_bytes());
  return w.take();
}

std::optional<Signature> Signature::from_bytes(const Group& grp, const Bytes& b) {
  if (b.size() != 2 * grp.q_bytes()) return std::nullopt;
  Bytes cb(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(grp.q_bytes()));
  Bytes sb(b.begin() + static_cast<std::ptrdiff_t>(grp.q_bytes()), b.end());
  return Signature{Scalar::from_bytes(grp, cb), Scalar::from_bytes(grp, sb)};
}

KeyPair schnorr_keygen(const Group& grp, Drbg& rng) {
  SecretScalar sk = SecretScalar::random(grp, rng);
  Element pk = sk.commit_to();
  return KeyPair{std::move(sk), std::move(pk)};
}

Signature schnorr_sign(const KeyPair& kp, const Bytes& msg) {
  const Group& grp = kp.sk.group();
  SecretScalar k = SecretScalar::derive(grp, "hybriddkg/schnorr/nonce", kp.sk, {&msg});
  k.one_if_zero();  // vanishing-nonce guard, branch-free
  Element r = k.commit_to();
  Scalar c = schnorr_challenge(r, kp.pk, msg);
  // reveal-ok: s = k + x*c is the published signature response.
  Scalar s = (k + kp.sk * c).reveal();
  return Signature{c, s};
}

bool schnorr_verify(const Element& pk, const Bytes& msg, const Signature& sig) {
  if (pk.empty() || sig.c.empty() || sig.s.empty()) return false;
  // exp_g rides the fixed-base comb table; pk^c stays a Montgomery powm
  // (a two-term Straus fold measured slower: plain mul+mod squarings lose
  // to GMP's REDC at full exponent width — see bench_multiexp).
  Element r = Element::exp_g(sig.s) * pk.pow(sig.c).inverse();
  return schnorr_challenge(r, pk, msg) == sig.c;
}

bool schnorr_verify(const Element& pk, const Bytes& msg, const Signature& sig,
                    const FixedBaseTable* pk_table) {
  if (pk_table == nullptr) return schnorr_verify(pk, msg, sig);
  if (pk.empty() || sig.c.empty() || sig.s.empty()) return false;
  Element r = Element::exp_g(sig.s) * pk_table->pow(sig.c).inverse();
  return schnorr_challenge(r, pk, msg) == sig.c;
}

std::size_t signature_bytes(const Group& grp) { return 2 * grp.q_bytes(); }

}  // namespace dkg::crypto
