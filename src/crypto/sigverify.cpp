#include "crypto/sigverify.hpp"

#include <stdexcept>

#include "common/serialize.hpp"
#include "crypto/mpz.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

namespace {

std::atomic<bool> g_cache_on{true};
std::atomic<bool> g_batch_on{true};
std::atomic<bool> g_point_memo_on{true};

struct AtomicStats {
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> cache_inserts{0};
  std::atomic<std::uint64_t> batch_calls{0};
  std::atomic<std::uint64_t> batch_items{0};
  std::atomic<std::uint64_t> batch_fallbacks{0};
  std::atomic<std::uint64_t> comb_pows{0};
  std::atomic<std::uint64_t> powm_pows{0};
  std::atomic<std::uint64_t> comb_builds{0};
  std::atomic<std::uint64_t> point_memo_hits{0};
  std::atomic<std::uint64_t> point_memo_misses{0};
};

AtomicStats& stats() {
  static AtomicStats s;
  return s;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

SigVerifyStats sig_verify_stats() {
  const AtomicStats& s = stats();
  SigVerifyStats out;
  out.cache_hits = s.cache_hits.load(kRelaxed);
  out.cache_misses = s.cache_misses.load(kRelaxed);
  out.cache_inserts = s.cache_inserts.load(kRelaxed);
  out.batch_calls = s.batch_calls.load(kRelaxed);
  out.batch_items = s.batch_items.load(kRelaxed);
  out.batch_fallbacks = s.batch_fallbacks.load(kRelaxed);
  out.comb_pows = s.comb_pows.load(kRelaxed);
  out.powm_pows = s.powm_pows.load(kRelaxed);
  out.comb_builds = s.comb_builds.load(kRelaxed);
  out.point_memo_hits = s.point_memo_hits.load(kRelaxed);
  out.point_memo_misses = s.point_memo_misses.load(kRelaxed);
  return out;
}

void sig_verify_reset_stats() {
  AtomicStats& s = stats();
  s.cache_hits.store(0, kRelaxed);
  s.cache_misses.store(0, kRelaxed);
  s.cache_inserts.store(0, kRelaxed);
  s.batch_calls.store(0, kRelaxed);
  s.batch_items.store(0, kRelaxed);
  s.batch_fallbacks.store(0, kRelaxed);
  s.comb_pows.store(0, kRelaxed);
  s.powm_pows.store(0, kRelaxed);
  s.comb_builds.store(0, kRelaxed);
  s.point_memo_hits.store(0, kRelaxed);
  s.point_memo_misses.store(0, kRelaxed);
}

bool sig_cache_enabled() { return g_cache_on.load(kRelaxed); }
void set_sig_cache(bool on) { g_cache_on.store(on, kRelaxed); }
bool sig_batch_enabled() { return g_batch_on.load(kRelaxed); }
void set_sig_batch(bool on) { g_batch_on.store(on, kRelaxed); }
bool point_memo_enabled() { return g_point_memo_on.load(kRelaxed); }
void set_point_memo(bool on) { g_point_memo_on.store(on, kRelaxed); }

void sig_stats_count_cache_hit() { stats().cache_hits.fetch_add(1, kRelaxed); }
void sig_stats_count_cache_miss() { stats().cache_misses.fetch_add(1, kRelaxed); }
void sig_stats_count_point_hit() { stats().point_memo_hits.fetch_add(1, kRelaxed); }
void sig_stats_count_point_miss() { stats().point_memo_misses.fetch_add(1, kRelaxed); }

// --- VerifiedSigCache -------------------------------------------------------

Bytes VerifiedSigCache::key(const Group& grp, std::uint32_t signer, const Bytes& payload,
                            const Signature& sig) {
  Writer w;
  w.str("hybriddkg/sigcache/v2");
  w.u8(static_cast<std::uint8_t>(grp.backend()));
  w.str(grp.name());
  w.u32(signer);
  w.blob(sha256(payload));
  w.raw(sig.to_bytes());
  return sha256(w.take());
}

bool VerifiedSigCache::contains(const Bytes& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.count(key) != 0;
}

void VerifiedSigCache::insert(const Bytes& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!keys_.insert(key).second) return;
  stats().cache_inserts.fetch_add(1, kRelaxed);
  order_.push_back(key);
  if (order_.size() > cap_) {
    keys_.erase(order_.front());
    order_.pop_front();
  }
}

std::size_t VerifiedSigCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

// --- SignerTables -----------------------------------------------------------

const FixedBaseTable* SignerTables::for_slot(std::size_t idx, const Group& grp,
                                             const Element& pk) const {
  Slot& slot = slots_.at(idx);
  const FixedBaseTable* t = slot.table.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  if (slot.uses.fetch_add(1, kRelaxed) + 1 < kBuildThreshold) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  t = slot.table.load(std::memory_order_acquire);
  if (t != nullptr) return t;  // a concurrent first touch built it
  owned_.push_back(FixedBaseTable::build(grp, pk.value()));
  t = owned_.back().get();
  stats().comb_builds.fetch_add(1, kRelaxed);
  slot.table.store(t, std::memory_order_release);
  return t;
}

// --- schnorr_verify_batch ---------------------------------------------------

namespace {

/// pk^c through the signer's comb table when available (counted per path).
Element pk_pow(const SigCheck& c) {
  if (c.pk_table != nullptr) {
    stats().comb_pows.fetch_add(1, kRelaxed);
    return c.pk_table->pow(c.sig->c);
  }
  stats().powm_pows.fetch_add(1, kRelaxed);
  return c.pk->pow(c.sig->c);
}

}  // namespace

bool schnorr_verify_batch(const Group& grp, const std::vector<SigCheck>& checks,
                          std::vector<std::size_t>* bad) {
  stats().batch_calls.fetch_add(1, kRelaxed);
  stats().batch_items.fetch_add(checks.size(), kRelaxed);
  for (const SigCheck& c : checks) {
    if (c.pk == nullptr || c.msg == nullptr || c.sig == nullptr || c.pk->empty()) {
      throw std::logic_error("schnorr_verify_batch: empty operand");
    }
    if (!(c.pk->group() == grp)) throw std::logic_error("schnorr_verify_batch: mixed groups");
  }
  const std::size_t k = checks.size();
  if (k == 0) return true;

  // Deterministic structural rejects mirror schnorr_verify exactly.
  std::vector<bool> ok(k, true);
  bool all = true;
  const bool ec = grp.backend() == GroupBackend::Ec256;
  std::vector<mpz_class> t_pow(ec ? 0 : k);  // ModP: pk_i^{c_i} residues
  std::vector<Element> t_el(ec ? k : 0);     // Ec256: pk_i^{c_i} points
  for (std::size_t i = 0; i < k; ++i) {
    const SigCheck& c = checks[i];
    if (c.sig->c.empty() || c.sig->s.empty()) {
      ok[i] = false;
      all = false;
      continue;
    }
    Element t = pk_pow(c);
    if (ec) {
      t_el[i] = std::move(t);
    } else {
      t_pow[i] = t.value();
    }
  }

  if (ec) {
    // On the curve an inverse is a sign flip on y — Montgomery's shared-
    // inversion amortization below has nothing to amortize, so each item
    // recomputes R_i = g^{s_i} - pk_i^{c_i} directly.
    for (std::size_t i = 0; i < k; ++i) {
      if (!ok[i]) continue;
      Element r_elem = Element::exp_g(checks[i].sig->s) * t_el[i].inverse();
      if (!(schnorr_challenge(r_elem, *checks[i].pk, *checks[i].msg) == checks[i].sig->c)) {
        ok[i] = false;
        all = false;
      }
    }
    if (all) return true;
    for (std::size_t i = 0; i < k; ++i) {
      if (ok[i]) continue;
      stats().batch_fallbacks.fetch_add(1, kRelaxed);
      if (schnorr_verify(*checks[i].pk, *checks[i].msg, *checks[i].sig)) {
        ok[i] = true;  // trust the per-item verdict (defensive; unreachable)
      } else if (bad != nullptr) {
        bad->push_back(i);
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (!ok[i]) return false;
    }
    return true;
  }

  // Montgomery's batch-inversion trick: ONE modular inverse for the whole
  // proof set. prefix[i] = T_0 * ... * T_i; walking the inverse of the full
  // product backwards peels off one T_i^{-1} per step. Group elements are
  // units mod p, so the product is invertible whenever every item is a
  // genuine residue (the structural rejects above excluded the rest).
  const mpz_class& p = grp.p();
  std::vector<mpz_class> prefix(k);
  mpz_class run(1), tmp;
  auto mulmod = [&](mpz_class& acc, const mpz_class& m) {
    mpz_mul(tmp.get_mpz_t(), acc.get_mpz_t(), m.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp.get_mpz_t(), p.get_mpz_t());
  };
  for (std::size_t i = 0; i < k; ++i) {
    if (ok[i]) mulmod(run, t_pow[i]);
    prefix[i] = run;
  }
  mpz_class inv = invmod(run, p);
  for (std::size_t i = k; i-- > 0;) {
    if (!ok[i]) continue;
    // T_i^{-1} = inv(prod_{j<=i, ok}) * prod_{j<i, ok}.
    mpz_class t_inv = inv;
    if (i > 0) mulmod(t_inv, prefix[i - 1]);
    mulmod(inv, t_pow[i]);  // strip T_i: inv now inverts the prefix below i
    // R_i = g^{s_i} * pk_i^{-c_i}; accept iff the challenge hash matches.
    mpz_class r = Element::exp_g(checks[i].sig->s).value();
    mulmod(r, t_inv);
    // Element has no raw-residue ctor for outsiders; the fixed-width encode
    // round-trip is noise next to the exponentiations above. r is a product
    // of units mod p, so it is in [1, p) and always decodes.
    Element r_elem = Element::from_bytes(grp, mpz_to_bytes(r, grp.p_bytes()));
    if (r_elem.empty() ||
        !(schnorr_challenge(r_elem, *checks[i].pk, *checks[i].msg) == checks[i].sig->c)) {
      ok[i] = false;
      all = false;
    }
  }

  if (all) return true;
  // Attribution fallback: re-confirm every failing item through the
  // independent per-item path before naming its signer, so a batch-layer
  // bug could only ever cost speed, never a wrong accusation.
  for (std::size_t i = 0; i < k; ++i) {
    if (ok[i]) continue;
    stats().batch_fallbacks.fetch_add(1, kRelaxed);
    if (schnorr_verify(*checks[i].pk, *checks[i].msg, *checks[i].sig)) {
      ok[i] = true;  // trust the per-item verdict (defensive; unreachable)
    } else if (bad != nullptr) {
      bad->push_back(i);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (!ok[i]) return false;
  }
  return true;
}

}  // namespace dkg::crypto
