// Simulated PKI (paper §2.3: "indices and public keys for all nodes are
// publicly available in the form of certificates"). A Keyring holds every
// node's verification key; each node additionally knows its own signing key.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sigverify.hpp"

namespace dkg::crypto {

class Keyring {
 public:
  /// Deterministically generates key pairs for nodes 1..n.
  static std::shared_ptr<const Keyring> generate(const Group& grp, std::size_t n,
                                                 std::uint64_t seed);

  const Group& group() const { return *grp_; }
  std::size_t size() const { return pairs_.size(); }

  /// 1-based node indices, matching the paper's P_1..P_n.
  const Element& public_key(std::uint32_t node) const;
  const KeyPair& key_pair(std::uint32_t node) const;

  Signature sign_as(std::uint32_t node, const Bytes& msg) const;

  /// Engine-backed verification (crypto/sigverify.hpp): consults the ring's
  /// verified-signature cache when enabled, runs the Schnorr check through
  /// the signer's comb table once built, and records positive results.
  /// Verdicts are bit-identical to plain schnorr_verify in every mode.
  bool verify_from(std::uint32_t node, const Bytes& msg, const Signature& sig) const;

  /// One signature of a shared payload, for verify_many.
  struct SignerRef {
    std::uint32_t signer = 0;
    const Signature* sig = nullptr;
  };

  /// Verifies a proof set's signatures over one shared payload: cache hits
  /// are skipped, the misses go through schnorr_verify_batch (one shared
  /// inversion), and positives are recorded. Returns true iff ALL entries
  /// are valid; invalid or out-of-range signers are appended to `bad` when
  /// non-null (per-item fallback attribution).
  bool verify_many(const std::vector<SignerRef>& sigs, const Bytes& payload,
                   std::vector<std::uint32_t>* bad = nullptr) const;

  /// Extends the ring with a key pair for one more node (group modification,
  /// §6.2 node addition). Returns the new ring; existing keys are shared.
  std::shared_ptr<const Keyring> with_added_node(std::uint64_t seed) const;

 private:
  Keyring(const Group& grp, std::vector<KeyPair> pairs)
      : grp_(&grp), pairs_(std::move(pairs)), tables_(pairs_.size()) {}

  const FixedBaseTable* table_for(std::uint32_t node) const;

  const Group* grp_;
  std::vector<KeyPair> pairs_;
  // Per-ring engine state (mutable: verification is logically const). One
  // Keyring is shared by every simulated receiver of a run, so the cache is
  // exactly the per-process dedup the n^3 -> n^2 win needs.
  mutable SignerTables tables_;
  mutable VerifiedSigCache cache_;
};

}  // namespace dkg::crypto
