// Simulated PKI (paper §2.3: "indices and public keys for all nodes are
// publicly available in the form of certificates"). A Keyring holds every
// node's verification key; each node additionally knows its own signing key.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/schnorr.hpp"

namespace dkg::crypto {

class Keyring {
 public:
  /// Deterministically generates key pairs for nodes 1..n.
  static std::shared_ptr<const Keyring> generate(const Group& grp, std::size_t n,
                                                 std::uint64_t seed);

  const Group& group() const { return *grp_; }
  std::size_t size() const { return pairs_.size(); }

  /// 1-based node indices, matching the paper's P_1..P_n.
  const Element& public_key(std::uint32_t node) const;
  const KeyPair& key_pair(std::uint32_t node) const;

  Signature sign_as(std::uint32_t node, const Bytes& msg) const;
  bool verify_from(std::uint32_t node, const Bytes& msg, const Signature& sig) const;

  /// Extends the ring with a key pair for one more node (group modification,
  /// §6.2 node addition). Returns the new ring; existing keys are shared.
  std::shared_ptr<const Keyring> with_added_node(std::uint64_t seed) const;

 private:
  Keyring(const Group& grp, std::vector<KeyPair> pairs)
      : grp_(&grp), pairs_(std::move(pairs)) {}

  const Group* grp_;
  std::vector<KeyPair> pairs_;
};

}  // namespace dkg::crypto
