// Pedersen commitments [Pedersen '91]: C_{jl} = g^{f_jl} h^{f'_jl} with a
// companion random polynomial f'. Unconditionally hiding / computationally
// binding — the converse trade-off to Feldman. The paper (§1, §3) picks
// Feldman for simplicity and efficiency; this module exists so the choice
// can be measured (bench E8) and so VSS can be instantiated either way.
#pragma once

#include <optional>

#include "crypto/bipolynomial.hpp"
#include "crypto/element.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/wire_memo.hpp"

namespace dkg::crypto {

/// A Pedersen dealing: the secret polynomial f and companion f'.
struct PedersenDealing {
  BiPolynomial f;
  BiPolynomial f_prime;
};

class PedersenMatrix {
 public:
  static PedersenMatrix commit(const PedersenDealing& d);

  std::size_t degree() const { return t_; }
  const Group& group() const { return entries_.front().group(); }
  const Element& entry(std::size_t j, std::size_t l) const;

  /// verify-poly for the pair (a, a') of row polynomials:
  /// g^{a_l} h^{a'_l} == prod_j C_{jl}^{i^j}.
  bool verify_poly(std::uint64_t i, const Polynomial& a, const Polynomial& a_prime) const;
  /// Column sub-range [l_lo, l_hi) of verify_poly — the verify pool's split
  /// entry point (see FeldmanMatrix::verify_poly_range).
  bool verify_poly_range(std::uint64_t i, const Polynomial& a, const Polynomial& a_prime,
                         std::size_t l_lo, std::size_t l_hi) const;
  /// verify-point for the pair (alpha, alpha').
  bool verify_point(std::uint64_t i, std::uint64_t m, const Scalar& alpha,
                    const Scalar& alpha_prime) const;

  /// See FeldmanMatrix::canonical_bytes / digest.
  const Bytes& canonical_bytes() const;
  Bytes to_bytes() const { return canonical_bytes(); }
  const Bytes& digest() const;
  static std::optional<PedersenMatrix> from_bytes(const Group& grp, const Bytes& b,
                                                  std::size_t expect_t,
                                                  bool check_subgroup = false);
  /// Deserialization path for adversarial input: additionally rejects
  /// entries outside the order-q subgroup (see FeldmanMatrix).
  static std::optional<PedersenMatrix> from_bytes_checked(const Group& grp, const Bytes& b,
                                                          std::size_t expect_t);

  bool operator==(const PedersenMatrix& o) const { return t_ == o.t_ && entries_ == o.entries_; }

 private:
  PedersenMatrix(std::size_t t, std::vector<Element> entries)
      : t_(t), entries_(std::move(entries)) {}

  Bytes encode() const;  // the canonical wire encoding (uncached)

  std::size_t t_;
  std::vector<Element> entries_;
  MontDomainBases mont_;  // see FeldmanMatrix::mont_
  WireMemo wire_;         // see FeldmanMatrix::wire_
};

}  // namespace dkg::crypto
