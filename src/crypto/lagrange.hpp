// Lagrange interpolation over Z_q. Used by Sh (interpolating a node's row
// polynomial from echo/ready points), Rec (recovering the secret), share
// renewal (combining subsharings at index 0) and node addition (index new).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "crypto/element.hpp"
#include "crypto/polynomial.hpp"

namespace dkg::crypto {

/// Lagrange coefficient lambda_k for evaluating at `at` the interpolating
/// polynomial through the distinct abscissas `xs`; `k` indexes into `xs`.
Scalar lagrange_coeff(const Group& grp, const std::vector<std::uint64_t>& xs, std::size_t k,
                      std::uint64_t at);

/// Evaluates the degree-(pts.size()-1) interpolating polynomial at `at`.
/// Abscissas must be distinct; throws std::invalid_argument otherwise.
Scalar interpolate_at(const Group& grp, const std::vector<std::pair<std::uint64_t, Scalar>>& pts,
                      std::uint64_t at);

/// Full interpolating polynomial (coefficient form) through `pts`.
Polynomial interpolate(const Group& grp, const std::vector<std::pair<std::uint64_t, Scalar>>& pts);

/// Lagrange interpolation in the exponent: given points (i, g^{f(i)}),
/// returns g^{f(at)} = prod_k y_k^{lambda_k}. One Straus multi-exp instead
/// of pts.size() independent exponentiations — the share-combination step of
/// threshold decryption/signing, the beacon, and share renewal/node addition.
Element exp_interpolate_at(const Group& grp,
                           const std::vector<std::pair<std::uint64_t, Element>>& pts,
                           std::uint64_t at);

}  // namespace dkg::crypto
