#include "crypto/feldman.hpp"

#include <deque>
#include <map>
#include <mutex>

#include "common/serialize.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

// --- EcShareGrid -----------------------------------------------------------
//
// The ec256 verify paths all reduce to comparing g^{claimed} against the
// grid value B(a, b) = g^{f(a, b)} = prod_{jl} C_{jl}^{a^j b^l}. A fresh
// index-power product per check costs ~t point operations per Horner STEP
// (t steps of double-and-add by the index); the grid instead grows the
// value table by finite differences: in the exponent every row/column of
// B is a degree-t polynomial over Z_q, and every curve point has order
// dividing q (cofactor 1), so the (t+1)-th forward difference of any grid
// line is the identity and each new value costs exactly t point additions.
//
// Build order: a (t+1)^2 seed block via Horner (coefficient vectors
// E_j(b) = prod_l C_{jl}^{b^l}, batch-normalized, then evaluated at
// a = 0..t), then per-line difference columns. Columns b <= t seed from
// the block; a column b > t seeds from the t+1 row tracks extended along
// b. Every value is the exact group element eval_commit(a, b) names —
// same verdicts, same encodings — reached by additions instead of
// exponentiations.
class EcShareGrid {
 public:
  EcShareGrid(std::size_t t, const std::vector<Element>& entries) : t_(t) {
    c_.reserve(entries.size());
    for (const Element& e : entries) c_.push_back(e.point());
  }

  /// g^{f(a, b)} as a Jacobian point (a copy: growth may reallocate).
  /// Thread-safe; any query order is served.
  ec256::Jac value(std::uint64_t a, std::uint64_t b) {
    std::lock_guard<std::mutex> lock(mu_);
    if (a > kMaxCached || b > kMaxCached) return direct(a, b);
    seed();
    Track& col = ensure_col(b);
    extend(col, a);
    return col.vals[static_cast<std::size_t>(a)];
  }

 private:
  /// Indices past this bound (possible only for adversarially large wire
  /// ids — simulations use node ids <= n) are answered by an uncached
  /// bivariate Horner so the grid's memory stays bounded by real use.
  static constexpr std::uint64_t kMaxCached = 2048;

  /// One FD-extended line of the grid: its values from index 0 up to the
  /// current frontier, plus the backward-aligned difference column
  /// fd[k] = Delta^k v(M - k) used to append the next value.
  struct Track {
    std::vector<ec256::Jac> vals;
    std::vector<ec256::Jac> fd;
  };

  /// E_j(b) = prod_l C_{jl}^{b^l} — coefficient j of the univariate column
  /// polynomial f(., b) — by Horner over the affine matrix entries.
  ec256::Jac coeff_at(std::size_t j, std::uint64_t b) const {
    const ec256::Point* row = &c_[j * (t_ + 1)];
    ec256::Jac acc = ec256::to_jac(row[t_]);
    for (std::size_t l = t_; l-- > 0;) {
      acc = ec256::jac_mul_u64(acc, b);
      acc = ec256::jac_add_mixed(acc, row[l]);
    }
    return acc;
  }

  /// Uncached bivariate Horner for out-of-bound indices.
  ec256::Jac direct(std::uint64_t a, std::uint64_t b) const {
    std::vector<ec256::Jac> e(t_ + 1);
    for (std::size_t j = 0; j <= t_; ++j) e[j] = coeff_at(j, b);
    ec256::Jac acc = e[t_];
    for (std::size_t j = t_; j-- > 0;) {
      acc = ec256::jac_mul_u64(acc, a);
      acc = ec256::jac_add(acc, e[j]);
    }
    return acc;
  }

  /// The (t+1)^2 seed block B(a, b) for a, b in [0, t], plus the row and
  /// column difference tracks over it. Built once, on the first cached
  /// query.
  void seed() {
    if (seeded_) return;
    seeded_ = true;
    const std::size_t d = t_ + 1;
    std::vector<ec256::Jac> ej(d * d);
    for (std::size_t b = 0; b < d; ++b) {
      for (std::size_t j = 0; j < d; ++j) ej[b * d + j] = coeff_at(j, b);
    }
    // One shared inversion turns the whole coefficient block affine, so the
    // d^2 seed evaluations below run on mixed adds.
    std::vector<ec256::Point> ea;
    ec256::batch_to_affine(ej, ea);
    cols_.resize(d);
    for (std::size_t b = 0; b < d; ++b) {
      Track& col = cols_[b];
      col.vals.resize(d);
      const ec256::Point* e = &ea[b * d];
      for (std::size_t a = 0; a < d; ++a) {
        ec256::Jac acc = ec256::to_jac(e[t_]);
        for (std::size_t j = t_; j-- > 0;) {
          acc = ec256::jac_mul_u64(acc, a);
          acc = ec256::jac_add_mixed(acc, e[j]);
        }
        col.vals[a] = acc;
      }
      init_fd(col);
    }
    rows_.resize(d);
    for (std::size_t a = 0; a < d; ++a) {
      Track& row = rows_[a];
      row.vals.resize(d);
      for (std::size_t b = 0; b < d; ++b) row.vals[b] = cols_[b].vals[a];
      init_fd(row);
    }
  }

  /// Difference column from the last entry of each level of the forward
  /// difference triangle over tr.vals (which holds exactly t+1 seeds here).
  void init_fd(Track& tr) {
    std::vector<ec256::Jac> level = tr.vals;
    tr.fd.assign(t_ + 1, ec256::Jac{});
    tr.fd[0] = level.back();
    for (std::size_t k = 1; k <= t_; ++k) {
      for (std::size_t i = 0; i + 1 < level.size(); ++i) {
        level[i] = ec256::jac_add(level[i + 1], ec256::jac_negate(level[i]));
      }
      level.pop_back();
      tr.fd[k] = level.back();
    }
  }

  /// Grow a line to cover index `to`: per new value, t additions update the
  /// difference column (fd[t] is constant for a degree-t exponent line) and
  /// fd[0] becomes the value.
  void extend(Track& tr, std::uint64_t to) {
    while (tr.vals.size() <= to) {
      for (std::size_t k = t_; k-- > 0;) tr.fd[k] = ec256::jac_add(tr.fd[k], tr.fd[k + 1]);
      tr.vals.push_back(tr.fd[0]);
    }
  }

  Track& ensure_col(std::uint64_t b) {
    std::size_t bi = static_cast<std::size_t>(b);
    if (bi < cols_.size() && !cols_[bi].vals.empty()) return cols_[bi];
    // b > t: seed the column from the row tracks extended along b.
    if (bi >= cols_.size()) cols_.resize(bi + 1);
    for (Track& row : rows_) extend(row, b);
    Track& col = cols_[bi];
    col.vals.resize(t_ + 1);
    for (std::size_t a = 0; a <= t_; ++a) col.vals[a] = rows_[a].vals[bi];
    init_fd(col);
    return col;
  }

  std::mutex mu_;
  std::size_t t_;
  std::vector<ec256::Point> c_;  // affine copies of the matrix entries
  bool seeded_ = false;
  std::vector<Track> cols_;  // cols_[b]: B(., b), indexed by a
  std::vector<Track> rows_;  // rows_[a]: B(a, .) for a <= t, indexed by b
};

EcGridSlot::EcGridSlot() = default;
EcGridSlot::EcGridSlot(const EcGridSlot&) noexcept : EcGridSlot() {}
EcGridSlot::EcGridSlot(EcGridSlot&&) noexcept : EcGridSlot() {}
EcGridSlot& EcGridSlot::operator=(const EcGridSlot&) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  grid_.reset();
  return *this;
}
EcGridSlot& EcGridSlot::operator=(EcGridSlot&&) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  grid_.reset();
  return *this;
}
EcGridSlot::~EcGridSlot() = default;

EcShareGrid& EcGridSlot::get(std::size_t t, const std::vector<Element>& entries) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (grid_ == nullptr) grid_ = std::make_unique<EcShareGrid>(t, entries);
  return *grid_;
}

namespace {
// Powers 1, i, i^2, ..., i^t of an index, as Scalars mod q.
std::vector<Scalar> index_powers(const Group& grp, std::uint64_t i, std::size_t t) {
  std::vector<Scalar> out;
  out.reserve(t + 1);
  Scalar x = Scalar::from_u64(grp, i);
  Scalar acc = Scalar::one(grp);
  for (std::size_t j = 0; j <= t; ++j) {
    out.push_back(acc);
    acc = acc * x;
  }
  return out;
}
}  // namespace

FeldmanMatrix FeldmanMatrix::commit(const BiPolynomial& f) {
  std::size_t t = f.degree();
  std::vector<Element> entries;
  entries.reserve((t + 1) * (t + 1));
  // Exploit symmetry: compute each g^{f_jl} once for j <= l. Dealer-side
  // exponentiations of secret coefficients run through the constant-time
  // commit_to() path (mpn_sec_powm), not the comb table.
  std::vector<Element> upper((t + 1) * (t + 2) / 2);
  std::size_t k = 0;
  for (std::size_t j = 0; j <= t; ++j) {
    for (std::size_t l = j; l <= t; ++l) upper[k++] = f.coeff(j, l).commit_to();
  }
  auto upper_at = [&](std::size_t j, std::size_t l) -> const Element& {
    if (j > l) std::swap(j, l);
    return upper[j * (t + 1) - j * (j - 1) / 2 + (l - j)];
  };
  for (std::size_t j = 0; j <= t; ++j) {
    for (std::size_t l = 0; l <= t; ++l) entries.push_back(upper_at(j, l));
  }
  // g^{f_jl} lies in <g>, which has order q.
  return FeldmanMatrix(t, std::move(entries), /*order_q=*/true);
}

FeldmanMatrix FeldmanMatrix::identity(const Group& grp, std::size_t t) {
  std::vector<Element> entries((t + 1) * (t + 1), Element::identity(grp));
  return FeldmanMatrix(t, std::move(entries), /*order_q=*/true);
}

FeldmanMatrix FeldmanMatrix::from_entries(std::size_t t, std::vector<Element> entries) {
  if (entries.size() != (t + 1) * (t + 1)) {
    throw std::invalid_argument("FeldmanMatrix: wrong entry count");
  }
  return FeldmanMatrix(t, std::move(entries));
}

const Element& FeldmanMatrix::entry(std::size_t j, std::size_t l) const {
  return entries_.at(j * (t_ + 1) + l);
}

bool FeldmanMatrix::verify_poly(std::uint64_t i, const Polynomial& a) const {
  if (a.degree() != t_) return false;
  const Group& grp = group();
  if (grp.backend() == GroupBackend::Ec256) {
    if (const FixedBaseTable* tab = FixedBaseTable::for_g(grp)) {
      // Value check instead of coefficient check: a and the committed row
      // f(i, .) are both degree-t polynomials over Z_q, so they are equal
      // iff they agree at the t+1 distinct points m = 1..t+1 — the same
      // verdict as the coefficient-wise product check for every input, at
      // t+1 grid reads + comb exps instead of (t+1)^2 exponentiations.
      EcShareGrid& grid = ec_grid_.get(t_, entries_);
      std::vector<Scalar> pub;
      pub.reserve(t_ + 1);
      // reveal-ok: the same per-coefficient declassification as the mod-p
      // branch below (g^{a_l} is public) — the t+1 evaluations then run in
      // the public domain instead of paying wiped secret-limb arithmetic.
      for (std::size_t l = 0; l <= t_; ++l) pub.push_back(a.coeff(l).reveal());
      for (std::uint64_t m = 1; m <= t_ + 1; ++m) {
        Scalar x = Scalar::from_u64(grp, m);
        Scalar am = pub[t_];
        for (std::size_t l = t_; l-- > 0;) am = am * x + pub[l];
        if (!ec256::jac_eq(tab->pow_jac(am), grid.value(i, m))) return false;
      }
      return true;
    }
  }
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t l = 0; l <= t_; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: verify-poly re-derives the public commitment g^{a_l} of a
    // row this node already holds; the fast comb/multiexp engine is kept on
    // this receiver-local verification hot path by design (EXPERIMENTS.md).
    if (Element::exp_g(a.coeff(l).reveal()) != col.product(i)) return false;
  }
  return true;
}

bool FeldmanMatrix::verify_poly_col(std::uint64_t i, const Polynomial& b) const {
  if (b.degree() != t_) return false;
  const Group& grp = group();
  if (grp.backend() == GroupBackend::Ec256) {
    if (const FixedBaseTable* tab = FixedBaseTable::for_g(grp)) {
      // Value check of b against f(., i) at m = 1..t+1 (see verify_poly).
      EcShareGrid& grid = ec_grid_.get(t_, entries_);
      std::vector<Scalar> pub;
      pub.reserve(t_ + 1);
      // reveal-ok: same per-coefficient declassification as verify_poly
      // (and the mod-p branch below).
      for (std::size_t j = 0; j <= t_; ++j) pub.push_back(b.coeff(j).reveal());
      for (std::uint64_t m = 1; m <= t_ + 1; ++m) {
        Scalar x = Scalar::from_u64(grp, m);
        Scalar bm = pub[t_];
        for (std::size_t j = t_; j-- > 0;) bm = bm * x + pub[j];
        if (!ec256::jac_eq(tab->pow_jac(bm), grid.value(m, i))) return false;
      }
      return true;
    }
  }
  IndexBases row(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t j = 0; j <= t_; ++j) {
    for (std::size_t l = 0; l <= t_; ++l) row.assign(l, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: verify-poly-col re-derives the public commitment of a
    // column this node already holds (see verify_poly above).
    if (Element::exp_g(b.coeff(j).reveal()) != row.product(i)) return false;
  }
  return true;
}

bool FeldmanMatrix::verify_poly_range(std::uint64_t i, const Polynomial& a, std::size_t l_lo,
                                      std::size_t l_hi) const {
  if (a.degree() != t_) return false;
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t l = l_lo; l < l_hi; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: range split of verify_poly — same public-commitment
    // re-derivation of a row this node already holds (see verify_poly).
    if (Element::exp_g(a.coeff(l).reveal()) != col.product(i)) return false;
  }
  return true;
}

bool FeldmanMatrix::verify_poly_col_range(std::uint64_t i, const Polynomial& b, std::size_t j_lo,
                                          std::size_t j_hi) const {
  if (b.degree() != t_) return false;
  const Group& grp = group();
  IndexBases row(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t j = j_lo; j < j_hi; ++j) {
    for (std::size_t l = 0; l <= t_; ++l) row.assign(l, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: range split of verify_poly_col (see verify_poly_col).
    if (Element::exp_g(b.coeff(j).reveal()) != row.product(i)) return false;
  }
  return true;
}

std::vector<Element> FeldmanMatrix::row_commitment_entries(std::uint64_t i, std::size_t j_lo,
                                                           std::size_t j_hi) const {
  const Group& grp = group();
  std::vector<Element> v;
  v.reserve(j_hi - j_lo);
  IndexBases row(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t j = j_lo; j < j_hi; ++j) {
    for (std::size_t l = 0; l <= t_; ++l) row.assign(l, entry(j, l), j * (t_ + 1) + l);
    v.push_back(row.product(i));
  }
  return v;
}

std::vector<Element> FeldmanMatrix::col_commitment_entries(std::uint64_t m, std::size_t l_lo,
                                                           std::size_t l_hi) const {
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  std::vector<Element> v;
  v.reserve(l_hi - l_lo);
  for (std::size_t l = l_lo; l < l_hi; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    v.push_back(col.product(m));
  }
  return v;
}

FeldmanVector FeldmanMatrix::row_commitment(std::uint64_t i) const {
  const Group& grp = group();
  std::vector<Element> v;
  v.reserve(t_ + 1);
  IndexBases row(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  for (std::size_t j = 0; j <= t_; ++j) {
    for (std::size_t l = 0; l <= t_; ++l) row.assign(l, entry(j, l), j * (t_ + 1) + l);
    v.push_back(row.product(i));
  }
  // Products of order-q entries stay order-q.
  return FeldmanVector(std::move(v), order_q_);
}

FeldmanVector FeldmanMatrix::col_commitment(std::uint64_t m) const {
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_), order_q_);
  std::vector<Element> v;
  v.reserve(t_ + 1);
  for (std::size_t l = 0; l <= t_; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    v.push_back(col.product(m));
  }
  return FeldmanVector(std::move(v), order_q_);
}

Element FeldmanMatrix::eval_commit(std::uint64_t m, std::uint64_t i) const {
  if (group().backend() == GroupBackend::Ec256) {
    // The grid names the exact element the product below would: one
    // normalization instead of two index-power multi-exponentiations.
    return Element::from_point(group(), ec256::to_affine(ec_grid_.get(t_, entries_).value(m, i)));
  }
  // prod_l (prod_j C_{jl}^{m^j})^{i^l} — the column projection evaluated at
  // i; both levels are index-power multi-exponentiations.
  return col_commitment(m).eval_commit(i);
}

bool FeldmanMatrix::verify_point(std::uint64_t i, std::uint64_t m, const Scalar& alpha) const {
  const Group& grp = group();
  if (grp.backend() == GroupBackend::Ec256) {
    if (const FixedBaseTable* tab = FixedBaseTable::for_g(grp)) {
      // Jacobian-domain compare: neither side pays an affine normalization.
      return ec256::jac_eq(tab->pow_jac(alpha), ec_grid_.get(t_, entries_).value(m, i));
    }
  }
  return Element::exp_g(alpha) == eval_commit(m, i);
}

FeldmanMatrix FeldmanMatrix::operator*(const FeldmanMatrix& o) const {
  if (t_ != o.t_) throw std::invalid_argument("FeldmanMatrix: degree mismatch");
  std::vector<Element> entries;
  entries.reserve(entries_.size());
  for (std::size_t k = 0; k < entries_.size(); ++k) entries.push_back(entries_[k] * o.entries_[k]);
  return FeldmanMatrix(t_, std::move(entries), order_q_ && o.order_q_);
}

FeldmanVector FeldmanMatrix::share_vector() const {
  std::vector<Element> v;
  v.reserve(t_ + 1);
  for (std::size_t j = 0; j <= t_; ++j) v.push_back(entry(j, 0));
  return FeldmanVector(std::move(v), order_q_);
}

Bytes FeldmanMatrix::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(t_));
  for (const Element& e : entries_) w.raw(e.to_bytes());
  return w.take();
}

const Bytes& FeldmanMatrix::canonical_bytes() const {
  return wire_.bytes([this] { return encode(); });
}

const Bytes& FeldmanMatrix::digest() const {
  return wire_.digest([this] { return encode(); });
}

std::optional<FeldmanMatrix> FeldmanMatrix::from_bytes(const Group& grp, const Bytes& b,
                                                       std::size_t expect_t,
                                                       bool check_subgroup) {
  try {
    Reader r(b);
    std::uint32_t t = r.u32();
    if (t != expect_t) return std::nullopt;
    std::vector<Element> entries;
    entries.reserve((t + 1) * (t + 1));
    for (std::size_t k = 0; k < std::size_t(t + 1) * (t + 1); ++k) {
      Bytes eb(grp.element_bytes());
      for (auto& byte : eb) byte = r.u8();
      Element e = Element::from_bytes(grp, eb);
      if (e.empty()) return std::nullopt;
      if (check_subgroup && !e.in_subgroup()) return std::nullopt;
      entries.push_back(std::move(e));
    }
    if (!r.done()) return std::nullopt;
    // A subgroup-checked decode certifies order q for every entry.
    return FeldmanMatrix(t, std::move(entries), /*order_q=*/check_subgroup);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<FeldmanMatrix> FeldmanMatrix::from_bytes_checked(const Group& grp, const Bytes& b,
                                                               std::size_t expect_t) {
  return from_bytes(grp, b, expect_t, /*check_subgroup=*/true);
}

namespace {
// Process-wide decode cache: sha256(wire bytes) -> decoded matrix. Bounded
// FIFO — kMaxInternedDecodes shared matrices (a broadcast round needs one
// per in-flight dealing) is far above any real run's working set.
//
// A cached matrix's Elements point at the Group passed to the decode that
// built it, and the cache outlives any one caller, so a hit is revalidated
// by group IDENTITY (the stored pointer must be the caller's group), never
// by value equality: the long-lived Group::tiny256()/mod1024()/... singletons
// every protocol uses hit the cache, while an ad-hoc equal-valued Group just
// decodes fresh instead of receiving references into another group's
// (possibly ended) lifetime.
struct DecodeCache {
  struct Entry {
    const Group* grp = nullptr;  // the group the decode ran under
    std::shared_ptr<const FeldmanMatrix> matrix;
  };
  std::mutex mu;
  std::map<Bytes, Entry> by_digest;
  std::deque<Bytes> order;
};
constexpr std::size_t kMaxInternedDecodes = 256;

DecodeCache& decode_cache() {
  static DecodeCache cache;
  return cache;
}

bool cache_hit_usable(const DecodeCache::Entry& hit, const Group& grp, std::size_t expect_t) {
  return hit.grp == &grp && hit.matrix->degree() == expect_t;
}
}  // namespace

std::shared_ptr<const FeldmanMatrix> FeldmanMatrix::from_bytes_interned(const Group& grp,
                                                                        const Bytes& b,
                                                                        std::size_t expect_t) {
  DecodeCache& cache = decode_cache();
  Bytes key = sha256(b);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.by_digest.find(key);
    // Revalidate: the same byte string decoded under another group instance
    // or another expected degree must not be served across; fall through to
    // a fresh uncached decode.
    if (it != cache.by_digest.end() && cache_hit_usable(it->second, grp, expect_t)) {
      return it->second.matrix;
    }
  }
  std::optional<FeldmanMatrix> decoded = from_bytes_checked(grp, b, expect_t);
  if (!decoded) return nullptr;
  auto shared = std::make_shared<const FeldmanMatrix>(std::move(*decoded));
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.by_digest.emplace(std::move(key), DecodeCache::Entry{&grp, shared});
  if (!inserted) {
    // A concurrent decode won the race; share its object when compatible.
    return cache_hit_usable(it->second, grp, expect_t) ? it->second.matrix : shared;
  }
  cache.order.push_back(it->first);
  if (cache.order.size() > kMaxInternedDecodes) {
    cache.by_digest.erase(cache.order.front());
    cache.order.pop_front();
  }
  return shared;
}

FeldmanVector::FeldmanVector(std::vector<Element> entries, bool order_q_entries)
    : entries_(std::move(entries)), order_q_(order_q_entries) {
  if (entries_.empty()) throw std::invalid_argument("FeldmanVector: empty");
}

FeldmanVector FeldmanVector::commit(const Polynomial& a) {
  std::vector<Element> v;
  v.reserve(a.degree() + 1);
  // Dealer-side: constant-time exponentiation of secret coefficients.
  for (std::size_t l = 0; l <= a.degree(); ++l) v.push_back(a.coeff(l).commit_to());
  return FeldmanVector(std::move(v), /*order_q_entries=*/true);
}

Element FeldmanVector::eval_commit(std::uint64_t i) const {
  const Group& grp = group();
  IndexBases bases(grp, entries_.size(), mont_.get(grp, entries_), order_q_);
  for (std::size_t l = 0; l < entries_.size(); ++l) bases.assign(l, entries_[l], l);
  return bases.product(i);
}

bool FeldmanVector::verify_share(std::uint64_t i, const Scalar& share) const {
  return Element::exp_g(share) == eval_commit(i);
}

bool FeldmanVector::verify_share_batch(
    const std::vector<std::pair<std::uint64_t, Scalar>>& shares, Drbg& rng) const {
  if (shares.empty()) return true;
  const Group& grp = group();
  // With random r_i:  g^{sum_i r_i s_i} == prod_l V_l^{sum_i r_i i^l}.
  std::vector<Scalar> exps(entries_.size(), Scalar::zero(grp));
  Scalar lhs = Scalar::zero(grp);
  for (const auto& [i, s] : shares) {
    Scalar r = Scalar::random(grp, rng);
    std::vector<Scalar> ipow = index_powers(grp, i, degree());
    for (std::size_t l = 0; l < entries_.size(); ++l) exps[l] += r * ipow[l];
    lhs += r * s;
  }
  return Element::exp_g(lhs) == multiexp(grp, entries_, exps);
}

bool FeldmanVector::verify_share_batch_range(
    const std::vector<std::pair<std::uint64_t, Scalar>>& shares, std::size_t lo, std::size_t hi,
    Drbg& rng) const {
  if (lo >= hi) return true;
  std::vector<std::pair<std::uint64_t, Scalar>> chunk(
      shares.begin() + static_cast<std::ptrdiff_t>(lo),
      shares.begin() + static_cast<std::ptrdiff_t>(hi));
  return verify_share_batch(chunk, rng);
}

Bytes FeldmanVector::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(degree()));
  for (const Element& e : entries_) w.raw(e.to_bytes());
  return w.take();
}

const Bytes& FeldmanVector::canonical_bytes() const {
  return wire_.bytes([this] { return encode(); });
}

const Bytes& FeldmanVector::digest() const {
  return wire_.digest([this] { return encode(); });
}

std::optional<FeldmanVector> FeldmanVector::from_bytes(const Group& grp, const Bytes& b,
                                                       std::size_t expect_t,
                                                       bool check_subgroup) {
  try {
    Reader r(b);
    std::uint32_t t = r.u32();
    if (t != expect_t) return std::nullopt;
    std::vector<Element> entries;
    entries.reserve(t + 1);
    for (std::size_t k = 0; k <= t; ++k) {
      Bytes eb(grp.element_bytes());
      for (auto& byte : eb) byte = r.u8();
      Element e = Element::from_bytes(grp, eb);
      if (e.empty()) return std::nullopt;
      if (check_subgroup && !e.in_subgroup()) return std::nullopt;
      entries.push_back(std::move(e));
    }
    if (!r.done()) return std::nullopt;
    return FeldmanVector(std::move(entries), /*order_q_entries=*/check_subgroup);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<FeldmanVector> FeldmanVector::from_bytes_checked(const Group& grp, const Bytes& b,
                                                               std::size_t expect_t) {
  return from_bytes(grp, b, expect_t, /*check_subgroup=*/true);
}

bool verify_poly_batch(const std::vector<RowCheck>& checks, Drbg& rng) {
  if (checks.empty()) return true;
  // Deterministic pre-checks mirror verify_poly exactly (and run before any
  // dereference — a null commitment in ANY slot, including the first, is a
  // plain reject).
  for (const RowCheck& c : checks) {
    if (c.commitment == nullptr || c.row == nullptr) return false;
    if (c.row->degree() != c.commitment->degree()) return false;
  }
  const Group& grp = checks.front().commitment->group();
  for (const RowCheck& c : checks) {
    if (!(c.commitment->group() == grp)) return false;
  }
  // One flattened multi-exp over every matrix entry: coefficient r_{d,l}
  // folds column l of dealing d, scaled by the index powers i_d^j.
  std::vector<const Element*> bases;
  std::vector<Scalar> exps;
  Scalar lhs = Scalar::zero(grp);
  for (const RowCheck& c : checks) {
    std::size_t t = c.commitment->degree();
    std::vector<Scalar> ipow = index_powers(grp, c.index, t);
    for (std::size_t l = 0; l <= t; ++l) {
      Scalar r = Scalar::random(grp, rng);
      // reveal-ok: batched verify-poly over rows this node already holds;
      // same receiver-local verification tradeoff as verify_poly.
      lhs += r * c.row->coeff(l).reveal();
      for (std::size_t j = 0; j <= t; ++j) {
        bases.push_back(&c.commitment->entry(j, l));
        exps.push_back(r * ipow[j]);
      }
    }
  }
  return Element::exp_g(lhs) == multiexp(grp, bases, exps);
}

}  // namespace dkg::crypto
