// Multi-exponentiation engine. Commitment verification (paper §3, §7) is a
// product of modular exponentiations — verify-poly alone is (t+1)^2 of them —
// and issuing each as an independent full-width powm wastes the squarings
// they could share. Two standard techniques fix that:
//
//  * multiexp(): simultaneous 2^w-ary (Straus/Shamir-trick) evaluation of
//    prod_k bases[k]^exps[k]. One shared squaring chain for all k terms; the
//    window w is chosen per call from the maximum exponent bit length.
//  * FixedBaseTable: a lazily built, per-(group, base) cached table of
//    base^(j * 2^(i*w)) so exponentiations of the fixed generators g and h
//    (Element::exp_g / exp_h — the single hottest operation in the repo)
//    need ~ceil(|q|/w) multiplications and no squarings at all.
//
// Both paths produce results bit-identical to the naive square-and-multiply
// powm chain: a group element is a canonical residue mod p, so any correct
// evaluation order yields the same value (pinned by tests/test_multiexp.cpp
// against the naive product in all four parameter sets).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/element.hpp"

namespace dkg::crypto {

/// prod_k bases[k]^exps[k] via Straus simultaneous exponentiation.
/// Empty input returns the identity; a lone term falls through to powm.
/// Throws std::invalid_argument on size mismatch and std::logic_error on
/// empty or group-mixed operands (same contract as Element arithmetic).
Element multiexp(const Group& grp, const std::vector<Element>& bases,
                 const std::vector<Scalar>& exps);

/// Pointer variant for callers whose bases live inside a larger structure
/// (commitment matrices): avoids copying (t+1) mpz values per column.
Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                 const std::vector<Scalar>& exps);

/// The Straus window size used for a maximum exponent bit length `bits` —
/// exposed for tests and for the bench that documents the policy.
unsigned multiexp_window(std::size_t bits);

/// prod_j bases[j]^(i^j) — the index-power product at the heart of every
/// verify-poly / verify-point / eval-commit (exponents are powers of a SMALL
/// node index, not uniform scalars). When i^t provably fits below q
/// (bitlen(i) * t < bitlen(q)), evaluates by Horner in the exponent:
///   (((B_t)^i B_{t-1})^i ... )^i B_0,
/// t exponentiations by the small i instead of t full-width powms — this is
/// where the 3-10x verify speedup comes from. Otherwise falls back to
/// Straus with reduced index powers. Bit-identical to the naive path in
/// both regimes (in the Horner regime the integer exponents i^j equal their
/// mod-q reductions, so equality holds for ALL inputs, subgroup or not).
Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       std::uint64_t i);
Element multiexp_index(const Group& grp, const std::vector<Element>& bases, std::uint64_t i);

/// Fixed-base comb table (BGMW windowing): for a base B it stores
/// table[i][j] = B^(j * 2^(i*w)) for i in [0, ceil(|q|/w)), j in [1, 2^w),
/// so B^e is a product of one table entry per w-bit digit of e — no
/// squarings. Tables are built lazily, once per (group, base), behind a
/// mutex, and are immutable afterwards; any thread may call pow()
/// concurrently (the SweepDriver's --jobs workers do).
class FixedBaseTable {
 public:
  /// The cached table for the group generator g (respectively the Pedersen
  /// second generator h). Returns nullptr when the cache is full — callers
  /// fall back to plain powm — which only happens if a run constructs more
  /// than kMaxCachedTables distinct (group, base) pairs.
  static const FixedBaseTable* for_g(const Group& grp);
  static const FixedBaseTable* for_h(const Group& grp);

  /// base^e — bit-identical to powm(base, e.value(), p).
  Element pow(const Scalar& e) const;

  unsigned window() const { return w_; }
  /// Table footprint (entry count x p_bytes), for the docs' memory table.
  std::size_t memory_bytes() const;

  /// Digit width of the comb: an exp costs ceil(|q|/w) multiplications and
  /// the table holds ceil(|q|/w) * (2^w - 1) residues. w = 7 puts the
  /// per-group cost/memory at 10 mults / 40 KB (tiny256, |q|=64),
  /// 23 mults / 374 KB (mod1024, |q|=160) and 37 mults / 1.2 MB (big2048,
  /// |q|=256) per cached base — the knee of the curve; w = 8 saves ~10%
  /// mults for 2x the memory.
  static constexpr unsigned kWindow = 7;
  static constexpr std::size_t kMaxCachedTables = 64;

 private:
  FixedBaseTable(const Group& grp, const mpz_class& base);
  static const FixedBaseTable* lookup(const Group& grp, const mpz_class& base);
  /// True if this table was built for exactly (grp, base) — a handful of
  /// mpz value compares, the cheap revalidation behind the thread-local
  /// memo that keeps the steady-state exp_g/exp_h path lock-free.
  bool matches(const Group& grp, const mpz_class& base) const {
    return grp_ == grp && base_ == base;
  }

  Group grp_;        // value copy: cache entries outlive any caller's Group
  mpz_class base_;
  unsigned w_ = kWindow;
  std::size_t rows_ = 0;
  std::vector<mpz_class> table_;  // row-major, (2^w - 1) entries per row
};

}  // namespace dkg::crypto
