// Multi-exponentiation engine. Commitment verification (paper §3, §7) is a
// product of modular exponentiations — verify-poly alone is (t+1)^2 of them —
// and issuing each as an independent full-width powm wastes the squarings
// they could share. Two standard techniques fix that:
//
//  * multiexp(): simultaneous 2^w-ary (Straus/Shamir-trick) evaluation of
//    prod_k bases[k]^exps[k]. One shared squaring chain for all k terms; the
//    window w is chosen per call from the maximum exponent bit length.
//  * FixedBaseTable: a lazily built, per-(group, base) cached table of
//    base^(j * 2^(i*w)) so exponentiations of the fixed generators g and h
//    (Element::exp_g / exp_h — the single hottest operation in the repo)
//    need ~ceil(|q|/w) multiplications and no squarings at all.
//
// Both paths produce results bit-identical to the naive square-and-multiply
// powm chain: a group element is a canonical residue mod p, so any correct
// evaluation order yields the same value (pinned by tests/test_multiexp.cpp
// against the naive product in all four parameter sets).
//
// Underneath both, the mul-mod chains themselves run in Montgomery (REDC)
// form for odd moduli (crypto/montgomery.hpp): operands enter the domain
// once, the whole squaring/digit walk is division-free, and the single exit
// conversion restores the canonical residue — so the representation change
// is invisible in results (pinned by tests/test_montgomery.cpp) and worth
// ~1.8x per multiply on top of the algorithmic wins above.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "crypto/element.hpp"

namespace dkg::crypto {

class MontgomeryCtx;

/// prod_k bases[k]^exps[k] via Straus simultaneous exponentiation.
/// Empty input returns the identity; a lone term falls through to powm.
/// Throws std::invalid_argument on size mismatch and std::logic_error on
/// empty or group-mixed operands (same contract as Element arithmetic).
Element multiexp(const Group& grp, const std::vector<Element>& bases,
                 const std::vector<Scalar>& exps);

/// Pointer variant for callers whose bases live inside a larger structure
/// (commitment matrices): avoids copying (t+1) mpz values per column.
Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                 const std::vector<Scalar>& exps);

/// The Straus window size used for a maximum exponent bit length `bits` —
/// exposed for tests and for the bench that documents the policy.
unsigned multiexp_window(std::size_t bits);

/// Process-wide switch for the Montgomery (REDC) working domain under the
/// hot loops in this header (crypto/montgomery.hpp; on by default, and a
/// no-op for even-modulus groups, which always take the plain mpz path).
/// Exists for bench_multiexp's on/off series and the differential property
/// harness in tests/test_montgomery.cpp — production code leaves it on.
/// Toggling affects subsequent multiexp/multiexp_index calls and newly
/// built FixedBaseTables; an existing table keeps the domain it was built
/// in, so results remain correct across a toggle in either direction.
bool multiexp_montgomery_enabled();
void multiexp_set_montgomery(bool on);

/// prod_j bases[j]^(i^j) — the index-power product at the heart of every
/// verify-poly / verify-point / eval-commit (exponents are powers of a SMALL
/// node index, not uniform scalars). When i^t provably fits below q
/// (bitlen(i) * t < bitlen(q)), evaluates by Horner in the exponent:
///   (((B_t)^i B_{t-1})^i ... )^i B_0,
/// t exponentiations by the small i instead of t full-width powms — this is
/// where the 3-10x verify speedup comes from. Otherwise falls back to
/// Straus with reduced index powers. Bit-identical to the naive path in
/// both regimes (in the Horner regime the integer exponents i^j equal their
/// mod-q reductions, so equality holds for ALL inputs, subgroup or not).
///
/// `order_q_bases = true` asserts every base lies in the order-q subgroup
/// (dealer-built commitments, or entries that passed in_subgroup at the
/// wire boundary — from_bytes_checked). For such bases B^(i^j) == B^(i^j
/// mod q) identically, so the Horner chain stays exact even when i^t wraps
/// past q and the Straus fallback is never needed. tiny256's 64-bit q makes
/// this the difference between O(t log i) and full-width Straus for every
/// verify-point from n ~ 50 up (t * bitlen(i) > 63). Passing true for a
/// base of unknown order is a correctness bug, not just a perf choice.
Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       std::uint64_t i, bool order_q_bases = false);
Element multiexp_index(const Group& grp, const std::vector<Element>& bases, std::uint64_t i,
                       bool order_q_bases = false);

/// Lazily built Montgomery images of a fixed base set — the "commitment
/// stays in Montgomery domain end-to-end" piece. A commitment matrix is one
/// shared object verified by every receiver, so its (t+1)^2 entries would
/// otherwise re-enter the REDC domain on every verify-poly / projection
/// call; this caches the entry conversions once per commitment (the
/// dominant REDC overhead once the chains themselves are division-free,
/// ~25% of verify-poly). Value-semantic holder for a value-semantic owner:
/// copies and assignments start empty (the owner's entries changed or were
/// duplicated), the image is built at most once behind a mutex and its
/// address stays stable for the owner's lifetime, and get() returns nullptr
/// whenever the engine is off for the group — callers then keep the plain
/// path, so results stay bit-identical in every mode.
class MontDomainBases {
 public:
  struct Image {
    const MontgomeryCtx* ctx = nullptr;  // the domain vals were entered into
    std::vector<mpz_class> vals;         // Montgomery images, entry order
  };

  MontDomainBases() = default;
  MontDomainBases(const MontDomainBases&) noexcept {}
  MontDomainBases(MontDomainBases&&) noexcept {}
  MontDomainBases& operator=(const MontDomainBases&) noexcept {
    reset();
    return *this;
  }
  MontDomainBases& operator=(MontDomainBases&&) noexcept {
    reset();
    return *this;
  }

  /// The Montgomery images of `entries` (built on first use), or nullptr
  /// when the group's modulus is even or the engine is toggled off.
  /// `entries` must be the same immutable vector on every call — the
  /// owning commitment's — and must outlive neither this object nor its
  /// uses. Thread-safe, including concurrent first touch.
  const Image* get(const Group& grp, const std::vector<Element>& entries) const;

 private:
  void reset();

  mutable std::mutex mu_;
  mutable std::unique_ptr<Image> img_;
};

/// multiexp_index with pre-entered bases: mont[k] must be the Montgomery
/// image of bases[k]->value() under `ctx` (both from MontDomainBases::get),
/// which skips every per-call entry conversion. Bit-identical to
/// multiexp_index(grp, bases, i).
Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       const std::vector<const mpz_class*>& mont, const MontgomeryCtx& ctx,
                       std::uint64_t i, bool order_q_bases = false);

/// Reusable operand row for repeated multiexp_index calls over the
/// rows/columns of a cached commitment: pairs each base Element with its
/// Montgomery image (when the owning commitment's MontDomainBases image is
/// built) and dispatches product() to the cached or plain overload. Binding
/// the image at construction keeps the element/image pairing impossible to
/// mismatch at the call sites (Feldman/Pedersen verify and projections).
class IndexBases {
 public:
  /// `order_q_bases` carries the owning commitment's subgroup provenance
  /// into every product() call (see multiexp_index above).
  IndexBases(const Group& grp, std::size_t terms, const MontDomainBases::Image* img,
             bool order_q_bases = false)
      : grp_(grp), img_(img), order_q_(order_q_bases), elems_(terms),
        mont_(img != nullptr ? terms : 0) {}

  /// Slot k <- base element; img_index is its position in the owning
  /// commitment's entry order (ignored when no image is built).
  void assign(std::size_t k, const Element& e, std::size_t img_index) {
    elems_[k] = &e;
    if (img_ != nullptr) mont_[k] = &img_->vals[img_index];
  }

  /// prod_k elems[k]^(i^k) through the matching multiexp_index overload.
  Element product(std::uint64_t i) const {
    return img_ != nullptr ? multiexp_index(grp_, elems_, mont_, *img_->ctx, i, order_q_)
                           : multiexp_index(grp_, elems_, i, order_q_);
  }

 private:
  const Group& grp_;
  const MontDomainBases::Image* img_;
  bool order_q_ = false;
  std::vector<const Element*> elems_;
  std::vector<const mpz_class*> mont_;
};

/// Fixed-base comb table (BGMW windowing): for a base B it stores
/// table[i][j] = B^(j * 2^(i*w)) for i in [0, ceil(|q|/w)), j in [1, 2^w),
/// so B^e is a product of one table entry per w-bit digit of e — no
/// squarings. Tables are built lazily, once per (group, base), behind a
/// mutex, and are immutable afterwards; any thread may call pow()
/// concurrently (the SweepDriver's --jobs workers do).
class FixedBaseTable {
 public:
  /// The cached table for the group generator g (respectively the Pedersen
  /// second generator h). Returns nullptr when the cache is full — callers
  /// fall back to plain powm — which only happens if a run constructs more
  /// than kMaxCachedTables distinct (group, base) pairs.
  static const FixedBaseTable* for_g(const Group& grp);
  static const FixedBaseTable* for_h(const Group& grp);

  /// A caller-owned table for an arbitrary fixed base (per-signer public
  /// keys in crypto/sigverify.hpp). Unlike for_g/for_h this never touches
  /// the bounded global cache — the caller scopes the table's lifetime.
  static std::unique_ptr<const FixedBaseTable> build(const Group& grp, const mpz_class& base);

  /// base^e — bit-identical to powm(base, e.value(), p).
  Element pow(const Scalar& e) const;
  /// base^e accumulated in Jacobian form WITHOUT the affine normalization —
  /// the EC verify hot path compares the result against another Jacobian
  /// point via ec256::jac_eq, so pow()'s exit inversion is pure waste there.
  /// Ec256 tables only (throws std::logic_error for mod-p groups).
  ec256::Jac pow_jac(const Scalar& e) const;

  unsigned window() const { return w_; }
  /// Table footprint (entry count x p_bytes), for the docs' memory table.
  std::size_t memory_bytes() const;

  /// Digit width of the comb: an exp costs ceil(|q|/w) multiplications and
  /// the table holds ceil(|q|/w) * (2^w - 1) residues. w = 7 puts the
  /// per-group cost/memory at 10 mults / 40 KB (tiny256, |q|=64),
  /// 23 mults / 374 KB (mod1024, |q|=160) and 37 mults / 1.2 MB (big2048,
  /// |q|=256) per cached base — the knee of the curve; w = 8 saves ~10%
  /// mults for 2x the memory.
  static constexpr unsigned kWindow = 7;
  /// The g/h comb width for the ec256 backend: a 72-byte affine point costs
  /// far less memory per entry than a 1024/2048-bit residue, so the curve
  /// tables afford w = 12 (22 mixed adds per exp over |q| = 256, 6.5 MB per
  /// cached base). Caller-owned tables (build(): per-signer keys, of which
  /// a keyring holds n) stay at kWindow.
  static constexpr unsigned kWindowEc = 12;
  static constexpr std::size_t kMaxCachedTables = 64;

 private:
  FixedBaseTable(const Group& grp, const mpz_class& base, unsigned w);
  static const FixedBaseTable* lookup(const Group& grp, const mpz_class& base, unsigned w);
  /// True if this table was built for exactly (grp, base) — a handful of
  /// mpz value compares, the cheap revalidation behind the thread-local
  /// memo that keeps the steady-state exp_g/exp_h path lock-free.
  bool matches(const Group& grp, const mpz_class& base) const {
    return grp_ == grp && base_ == base;
  }

  Group grp_;        // value copy: cache entries outlive any caller's Group
  mpz_class base_;
  /// The working domain the table was built in: entries are Montgomery
  /// residues when non-null (odd p, engine enabled at build), canonical
  /// residues otherwise. pow() always follows this, not the live toggle.
  const MontgomeryCtx* mont_ = nullptr;
  unsigned w_ = kWindow;
  std::size_t rows_ = 0;
  std::vector<mpz_class> table_;  // ModP: row-major, (2^w - 1) entries per row
  /// Ec256 comb storage: the same row-major layout as table_ but affine
  /// points (batch-normalized at build — two shared inversions total), so
  /// pow() is a chain of mixed adds with one final normalization.
  std::vector<ec256::Point> ec_rows_;
};

}  // namespace dkg::crypto
