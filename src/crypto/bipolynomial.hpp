// Symmetric bivariate polynomials f(x,y) = sum f_{jl} x^j y^l with
// f_{jl} = f_{lj}, the dealing object of HybridVSS (paper Fig 1). Symmetry is
// what lets echo/ready points be cross-verified between nodes and gives the
// constant-factor complexity reduction over AVSS the paper claims (§3).
// Coefficients are secret material (f(0,0) is the dealt secret, rows are
// node shares) and are held in SecretScalar storage.
#pragma once

#include "crypto/polynomial.hpp"

namespace dkg::crypto {

class BiPolynomial {
 public:
  /// Random symmetric degree-(t,t) polynomial with f(0,0) = secret.
  static BiPolynomial random(const Scalar& secret, std::size_t t, Drbg& rng);
  static BiPolynomial random(const SecretScalar& secret, std::size_t t, Drbg& rng);

  std::size_t degree() const { return t_; }
  const Group& group() const { return coeffs_.front().group(); }

  /// f_{jl}; symmetric access.
  const SecretScalar& coeff(std::size_t j, std::size_t l) const;

  /// The univariate slice a_i(y) = f(i, y) sent to node i in `send`.
  Polynomial row(std::uint64_t i) const;

  SecretScalar eval(const Scalar& x, const Scalar& y) const;
  SecretScalar eval_at(std::uint64_t x, std::uint64_t y) const;

  const SecretScalar& secret() const { return coeff(0, 0); }

 private:
  BiPolynomial(std::size_t t, std::vector<SecretScalar> upper);
  std::size_t index(std::size_t j, std::size_t l) const;

  std::size_t t_;
  // Upper-triangular storage (j <= l) of the symmetric coefficient matrix.
  std::vector<SecretScalar> coeffs_;
};

}  // namespace dkg::crypto
