// Schnorr signatures over the same discrete-log group the protocols use.
// The paper (§2.3) assumes "message authentication with any digital
// signature scheme secure against adaptive chosen-message attack"; nodes
// sign echo/ready/lead-ch payloads so proof sets (R_d, M) are verifiable by
// third parties. Nonces are derived deterministically from (sk, msg).
#pragma once

#include <optional>

#include "crypto/element.hpp"
#include "crypto/scalar.hpp"
#include "crypto/secret.hpp"

namespace dkg::crypto {

struct KeyPair {
  SecretScalar sk;  // x, uniform in Z_q; taint-typed, never leaves the node
  Element pk;       // y = g^x
};

struct Signature {
  Scalar c;  // challenge
  Scalar s;  // response

  Bytes to_bytes() const;
  static std::optional<Signature> from_bytes(const Group& grp, const Bytes& b);
  bool operator==(const Signature& o) const { return c == o.c && s == o.s; }
};

KeyPair schnorr_keygen(const Group& grp, Drbg& rng);

/// Signs `msg`: k = H(sk || msg), R = g^k, c = H(R || pk || msg),
/// s = k + sk * c. Output (c, s). The nonce is derived, guarded against
/// vanishing, and combined entirely in the constant-time secret domain.
Signature schnorr_sign(const KeyPair& kp, const Bytes& msg);

/// Verifies: R' = g^s * pk^{-c}; accept iff c == H(R' || pk || msg).
bool schnorr_verify(const Element& pk, const Bytes& msg, const Signature& sig);

class FixedBaseTable;

/// schnorr_verify with the pk^c powm served by a prebuilt per-signer comb
/// table (crypto/sigverify.hpp). `pk_table` must have been built for exactly
/// `pk`'s (group, value); nullptr falls through to the plain overload.
/// Bit-identical verdicts either way.
bool schnorr_verify(const Element& pk, const Bytes& msg, const Signature& sig,
                    const FixedBaseTable* pk_table);

/// The Fiat-Shamir challenge c = H(R || pk || msg) under the
/// "hybriddkg/schnorr/v1" tag — exposed for the batch verifier
/// (crypto/sigverify.hpp), which recomputes per-item commitments itself.
Scalar schnorr_challenge(const Element& r, const Element& pk, const Bytes& msg);

/// Serialized signature width for a group (2 scalars).
std::size_t signature_bytes(const Group& grp);

}  // namespace dkg::crypto
