// Batch + cached Schnorr-signature verification engine (the E4 lever).
//
// With the wire layer interned (PR 5), E4 full-commitment CPU is dominated
// by ~n^3 ready-signature verifies: every receiver independently re-verifies
// the same ~n^2 distinct (signer, payload) signatures carried in ready
// rounds and in DealerProof / ProposalProof / lead-ch certificates. Three
// pieces collapse that redundancy without touching a single wire byte:
//
//  * VerifiedSigCache — a bounded, thread-safe set of digests of
//    (signer, payload-digest, signature-bytes) tuples that verified TRUE.
//    One keyring is shared by every receiver of a run, so each distinct
//    ready-sig is verified once per process instead of once per receiver
//    (n^3 -> n^2). Negative results are never cached: a forged signature is
//    re-checked (and re-rejected) on every sight, so the cache cannot be
//    poisoned into accepting or into denying a valid signature.
//  * SignerTables — lazily built per-signer fixed-base comb tables
//    (FixedBaseTable::build) for keyring public keys, which are long-lived
//    and hit by every verify. They turn the pk^c Montgomery powm inside
//    schnorr_verify into a comb lookup (the same ~4-5x Element::exp_g
//    enjoys). Tables build after a small per-signer use threshold so
//    short-lived rings never pay the table construction.
//  * schnorr_verify_batch — the k signatures of one proof set verified in
//    one pass: per-signer comb lookups for every pk^c, and the k modular
//    inversions of the R-recovery collapsed to ONE via Montgomery's
//    batch-inversion trick. (c, s)-form Schnorr pins the challenge to the
//    *recomputed* commitment R_i = g^{s_i} pk_i^{-c_i}, so the random-
//    linear-combination screen that lets (R, s)-form batches share one
//    multi-exp (the verify_poly_batch pattern) cannot skip the per-item
//    recoveries — the batch win here is amortized inversion plus comb
//    lookups, and every item gets an individual verdict. On batch failure
//    each failing item is re-run through the independent per-item
//    schnorr_verify path, so a bad signature inside an otherwise-valid
//    batch is still attributed to its signer.
//
// Results are bit-identical to per-item schnorr_verify in every mode; the
// set_sig_cache / set_sig_batch knobs exist for the A/B equality tests and
// the bench on/off series (the multiexp_set_montgomery pattern).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "crypto/multiexp.hpp"
#include "crypto/schnorr.hpp"

namespace dkg::crypto {

/// Process-wide counters for the engine (reset + snapshot, the
/// multiexp_set_montgomery toggle pattern). SEC02: the stats surface carries
/// counts only — cache keys are digests and never leave the cache.
struct SigVerifyStats {
  std::uint64_t cache_hits = 0;       // verifies served from a VerifiedSigCache
  std::uint64_t cache_misses = 0;     // cache consulted, full verify performed
  std::uint64_t cache_inserts = 0;    // positive results recorded
  std::uint64_t batch_calls = 0;      // schnorr_verify_batch invocations
  std::uint64_t batch_items = 0;      // signatures routed through batches
  std::uint64_t batch_fallbacks = 0;  // items re-verified per-item after a failed batch
  std::uint64_t comb_pows = 0;        // pk^c served by a per-signer comb table
  std::uint64_t powm_pows = 0;        // pk^c by plain Montgomery powm
  std::uint64_t comb_builds = 0;      // per-signer tables constructed
  // The share-point side of the engine (vss::VssInstance::accept_point):
  // a sender's echo and ready rounds carry the SAME evaluation f(m, i), so
  // the second verify-point of an identical (sender, value) pair is served
  // from the per-commitment memo of positively verified points.
  std::uint64_t point_memo_hits = 0;    // verify-point skipped via the memo
  std::uint64_t point_memo_misses = 0;  // verify-point executed in full
};

SigVerifyStats sig_verify_stats();
void sig_verify_reset_stats();

/// A/B knobs: verification *results* are identical in all four on/off
/// combinations (pinned by tests/test_sig_engine.cpp); only CPU moves.
bool sig_cache_enabled();
void set_sig_cache(bool on);
bool sig_batch_enabled();
void set_sig_batch(bool on);
/// The verified-point memo (accept_point's echo/ready dedup); results are
/// identical either way — a differing or unverified point always re-runs
/// the full verify-point, so the memo cannot admit a forged point.
bool point_memo_enabled();
void set_point_memo(bool on);

/// Hit/miss tallies for the cache's *users* (the cache itself cannot tell a
/// probe that will be followed by a verify from one that will not) — called
/// by Keyring::verify_from / verify_many.
void sig_stats_count_cache_hit();
void sig_stats_count_cache_miss();
/// Ditto for the VSS layer's verified-point memo.
void sig_stats_count_point_hit();
void sig_stats_count_point_miss();

/// Bounded FIFO set of digests of positively-verified signatures.
/// Thread-safe (the TSan leg races first touch); value keys only — the
/// cache never stores payloads, public keys or signatures themselves.
class VerifiedSigCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit VerifiedSigCache(std::size_t capacity = kDefaultCapacity) : cap_(capacity) {}

  /// The cache key: sha256 over (backend, group name, signer, sha256(payload),
  /// signature bytes). Keying by payload *digest* reuses the PR 5 digest
  /// machinery — ready payloads already embed the interned commitment digest —
  /// and keeps keys fixed-width regardless of payload size. The backend/group
  /// tag keeps identical (signer, payload, sig-bytes) tuples from colliding
  /// across parameter sets — e.g. big2048 and ec256 share a 32-byte scalar
  /// width, so their serialized signatures are interchangeable byte strings.
  static Bytes key(const Group& grp, std::uint32_t signer, const Bytes& payload,
                   const Signature& sig);

  bool contains(const Bytes& key) const;
  /// Records a POSITIVE verification. Never call for a failed verify — the
  /// no-negatives rule is what makes the cache unpoisonable.
  void insert(const Bytes& key);
  std::size_t size() const;

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::set<Bytes> keys_;
  std::deque<Bytes> order_;  // FIFO eviction, decode-cache style
};

/// Lazily built per-signer comb tables for one keyring's public keys.
/// Slot i (0-based) builds its table on the use that crosses
/// kBuildThreshold, behind a mutex; lookups are a single acquire load, so
/// concurrent first touch is safe (raced by the TSan leg).
class SignerTables {
 public:
  explicit SignerTables(std::size_t n) : slots_(n) {}

  /// Build after this many engine verifies of one signer: a table costs
  /// ~rows x (2^w - 1) multiplications, worth it once a pk is verified
  /// repeatedly (every signer in a DKG run is) but not for one-shot rings.
  static constexpr std::uint32_t kBuildThreshold = 8;

  /// The comb table for slot `idx`, or nullptr while below the threshold.
  /// `pk` must be the same immutable element on every call (the keyring's).
  const FixedBaseTable* for_slot(std::size_t idx, const Group& grp, const Element& pk) const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> uses{0};
    std::atomic<const FixedBaseTable*> table{nullptr};
  };

  mutable std::mutex mu_;  // serializes builds; lookups are lock-free
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::unique_ptr<const FixedBaseTable>> owned_;
};

/// One signature check for schnorr_verify_batch. `pk_table` is the
/// signer's comb table or nullptr (plain powm fallback).
struct SigCheck {
  const Element* pk = nullptr;
  const Bytes* msg = nullptr;
  const Signature* sig = nullptr;
  const FixedBaseTable* pk_table = nullptr;
};

/// Verifies every check in one pass (shared batch inversion, per-signer
/// combs). Returns true iff ALL signatures are valid. When `bad` is
/// non-null the indices of invalid items are appended — each failing item
/// is re-confirmed through the independent per-item schnorr_verify path
/// before being attributed, so a batch containing one forged signature
/// still names exactly the forging signer. Bit-identical verdicts to
/// calling schnorr_verify per item. Throws std::logic_error on empty or
/// group-mixed operands (the multiexp contract).
bool schnorr_verify_batch(const Group& grp, const std::vector<SigCheck>& checks,
                          std::vector<std::size_t>* bad = nullptr);

}  // namespace dkg::crypto
