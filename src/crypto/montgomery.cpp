#include "crypto/montgomery.hpp"

#include <memory>
#include <mutex>
#include <stdexcept>

#include "crypto/group.hpp"

namespace dkg::crypto {

// The limb bookkeeping below assumes full limbs; nails builds of GMP are
// essentially extinct, but fail loudly rather than miscompute.
static_assert(GMP_NAIL_BITS == 0, "montgomery.cpp requires a nail-free GMP");

namespace {

/// Zero-padded L-limb image of v (which must be < B^L).
void load(std::vector<mp_limb_t>& dst, const mpz_class& v, std::size_t L) {
  std::size_t sz = mpz_size(v.get_mpz_t());
  const mp_limb_t* src = mpz_limbs_read(v.get_mpz_t());
  for (std::size_t i = 0; i < sz; ++i) dst[i] = src[i];
  for (std::size_t i = sz; i < L; ++i) dst[i] = 0;
}

void store(mpz_class& out, const mp_limb_t* src, std::size_t L) {
  mp_limb_t* w = mpz_limbs_write(out.get_mpz_t(), static_cast<mp_size_t>(L));
  for (std::size_t i = 0; i < L; ++i) w[i] = src[i];
  mpz_limbs_finish(out.get_mpz_t(), static_cast<mp_size_t>(L));
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const mpz_class& n) : n_(n) {
  if (n_ <= 1 || mpz_odd_p(n_.get_mpz_t()) == 0) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  }
  L_ = mpz_size(n_.get_mpz_t());
  nl_.resize(L_);
  load(nl_, n_, L_);
  // n0^{-1} mod B by Newton doubling: x = n0 is correct mod 8 (odd squares
  // are 1 mod 8), and each step doubles the number of correct low bits, so
  // five steps cover any limb width up to 96 bits.
  mp_limb_t n0 = nl_[0];
  mp_limb_t inv = n0;
  for (int it = 0; it < 5; ++it) inv *= 2 - n0 * inv;
  ninv_ = -inv;
  mpz_class R;
  mpz_setbit(R.get_mpz_t(), static_cast<mp_bitcnt_t>(L_) * GMP_NUMB_BITS);
  one_ = R % n_;
  r2_ = (one_ * one_) % n_;
  onel_.resize(L_);
  load(onel_, one_, L_);
}

MontgomeryCtx::Mul::Mul(const MontgomeryCtx& ctx)
    : ctx_(ctx), t_(2 * ctx.L_), acc_(ctx.L_), sv_(ctx.L_), ev_(ctx.L_) {}

void MontgomeryCtx::Mul::finish(mp_limb_t* out) {
  const std::size_t L = ctx_.L_;
  const mp_limb_t* n = ctx_.nl_.data();
  mp_limb_t* t = t_.data();
  // Carry-save word-by-word REDC (the mpn_redc_1 shape): row i adds
  // (t[i] * n') * n at position i, zeroing t[i]; instead of rippling the
  // row's carry-out through the high half — O(L^2) extra limb traffic —
  // park it in the just-freed t[i] and fold all L parked carries with ONE
  // mpn_add_n at the end.
  for (std::size_t i = 0; i < L; ++i) {
    mp_limb_t m = t[i] * ctx_.ninv_;
    t[i] = mpn_addmul_1(t + i, n, static_cast<mp_size_t>(L), m);
  }
  mp_limb_t cy = mpn_add_n(out, t + L, t, static_cast<mp_size_t>(L));
  // Quotient limbs shifted away: the result is out + cy B^L, in [0, 2n) —
  // at most one subtraction restores the canonical range (a cy of 1 means
  // the value passed B^L > n, and the borrow cancels it).
  if (cy != 0 || mpn_cmp(out, n, static_cast<mp_size_t>(L)) >= 0) {
    mpn_sub_n(out, out, n, static_cast<mp_size_t>(L));
  }
}

void MontgomeryCtx::Mul::finish_mpz(mpz_class& acc) {
  finish(t_.data() + ctx_.L_);
  store(acc, t_.data() + ctx_.L_, ctx_.L_);
}

/// t_ = {ap, an} * m, zero-padded to 2L limbs. an, |m| <= L.
void MontgomeryCtx::Mul::mul_into_t(const mp_limb_t* ap, std::size_t an, const mpz_class& m) {
  const std::size_t L = ctx_.L_;
  const std::size_t bn = mpz_size(m.get_mpz_t());
  if (an == 0 || bn == 0) {
    for (std::size_t i = 0; i < 2 * L; ++i) t_[i] = 0;
    return;
  }
  // Multiply at the operands' true sizes straight out of the limb arrays
  // (mpn_mul insists the larger operand comes first).
  const mp_limb_t* bp = mpz_limbs_read(m.get_mpz_t());
  if (an >= bn) {
    mpn_mul(t_.data(), ap, static_cast<mp_size_t>(an), bp, static_cast<mp_size_t>(bn));
  } else {
    mpn_mul(t_.data(), bp, static_cast<mp_size_t>(bn), ap, static_cast<mp_size_t>(an));
  }
  for (std::size_t i = an + bn; i < 2 * L; ++i) t_[i] = 0;
}

void MontgomeryCtx::Mul::mul(mpz_class& acc, const mpz_class& m) {
  const std::size_t an = mpz_size(acc.get_mpz_t());
  if (an == 0 || mpz_size(m.get_mpz_t()) == 0) {  // Montgomery zero is zero
    acc = 0;
    return;
  }
  mul_into_t(mpz_limbs_read(acc.get_mpz_t()), an, m);
  finish_mpz(acc);
}

void MontgomeryCtx::Mul::sqr(mpz_class& acc) {
  const std::size_t L = ctx_.L_;
  const std::size_t an = mpz_size(acc.get_mpz_t());
  if (an == 0) return;
  mpn_sqr(t_.data(), mpz_limbs_read(acc.get_mpz_t()), static_cast<mp_size_t>(an));
  for (std::size_t i = 2 * an; i < 2 * L; ++i) t_[i] = 0;
  finish_mpz(acc);
}

void MontgomeryCtx::Mul::redc(mpz_class& acc) {
  const std::size_t L = ctx_.L_;
  const std::size_t an = mpz_size(acc.get_mpz_t());
  const mp_limb_t* ap = mpz_limbs_read(acc.get_mpz_t());
  for (std::size_t i = 0; i < an; ++i) t_[i] = ap[i];
  for (std::size_t i = an; i < 2 * L; ++i) t_[i] = 0;
  finish_mpz(acc);
}

// --- accumulator chain -----------------------------------------------------
//
// acc_ / sv_ / ev_ hold zero-padded L-limb images, so the chain steps are
// pure mpn calls — no mpz size bookkeeping per operation. A padded zero-
// valued operand flows through REDC unharmed (every quotient digit is 0),
// so none of these need the explicit zero checks of the mpz interface.

void MontgomeryCtx::Mul::acc_set_one() {
  for (std::size_t i = 0; i < ctx_.L_; ++i) acc_[i] = ctx_.onel_[i];
}

void MontgomeryCtx::Mul::acc_set(const mpz_class& v) { load(acc_, v, ctx_.L_); }

void MontgomeryCtx::Mul::acc_enter(const mpz_class& v) {
  acc_set(v);
  acc_mul(ctx_.r2_);
}

void MontgomeryCtx::Mul::acc_mul(const mpz_class& m) {
  mul_into_t(acc_.data(), ctx_.L_, m);
  finish(acc_.data());
}

void MontgomeryCtx::Mul::acc_mul_entered(const mpz_class& v) {
  mul_into_t(mpz_limbs_read(v.get_mpz_t()), mpz_size(v.get_mpz_t()), ctx_.r2_);
  finish(ev_.data());
  mpn_mul_n(t_.data(), acc_.data(), ev_.data(), static_cast<mp_size_t>(ctx_.L_));
  finish(acc_.data());
}

void MontgomeryCtx::Mul::acc_sqr() {
  mpn_sqr(t_.data(), acc_.data(), static_cast<mp_size_t>(ctx_.L_));
  finish(acc_.data());
}

void MontgomeryCtx::Mul::acc_save() {
  for (std::size_t i = 0; i < ctx_.L_; ++i) sv_[i] = acc_[i];
}

void MontgomeryCtx::Mul::acc_mul_saved() {
  mpn_mul_n(t_.data(), acc_.data(), sv_.data(), static_cast<mp_size_t>(ctx_.L_));
  finish(acc_.data());
}

void MontgomeryCtx::Mul::acc_redc() {
  const std::size_t L = ctx_.L_;
  for (std::size_t i = 0; i < L; ++i) t_[i] = acc_[i];
  for (std::size_t i = L; i < 2 * L; ++i) t_[i] = 0;
  finish(acc_.data());
}

bool MontgomeryCtx::Mul::acc_is_one() const {
  return mpn_cmp(acc_.data(), ctx_.onel_.data(), static_cast<mp_size_t>(ctx_.L_)) == 0;
}

void MontgomeryCtx::Mul::acc_get(mpz_class& out) const {
  store(out, acc_.data(), ctx_.L_);
}

mpz_class MontgomeryCtx::to_mont(const mpz_class& a) const {
  // aR = REDC(a * R^2). Reduce first: REDC's bound argument needs both
  // factors < n, and entry points may hand us any non-negative value.
  mpz_class r = a >= n_ ? mpz_class(a % n_) : a;
  Mul s(*this);
  s.mul(r, r2_);
  return r;
}

mpz_class MontgomeryCtx::from_mont(const mpz_class& a) const {
  mpz_class r = a;
  Mul s(*this);
  s.redc(r);
  return r;
}

const MontgomeryCtx* MontgomeryCtx::for_group(const Group& grp) {
  // REDC residues are a mod-p representation; curve backends never enter
  // the domain (their p is odd, so the parity test alone would not gate).
  if (grp.backend() != GroupBackend::ModP) return nullptr;
  if (mpz_odd_p(grp.p().get_mpz_t()) == 0) return nullptr;
  // Same shape as FixedBaseTable::lookup: value-keyed (moduli, not Group
  // addresses), mutex-guarded growth, unique_ptr entries so returned
  // pointers stay stable, and a thread-local memo revalidated by VALUE so
  // the steady-state path is lock-free.
  thread_local const MontgomeryCtx* memo = nullptr;
  if (memo != nullptr && memo->n_ == grp.p()) return memo;
  static std::mutex mu;
  static std::vector<std::unique_ptr<MontgomeryCtx>> cache;
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& c : cache) {
    if (c->n_ == grp.p()) return memo = c.get();
  }
  if (cache.size() >= kMaxCached) return nullptr;
  cache.push_back(std::make_unique<MontgomeryCtx>(grp.p()));
  return memo = cache.back().get();
}

const MontgomeryCtx* Group::montgomery() const { return MontgomeryCtx::for_group(*this); }

}  // namespace dkg::crypto
