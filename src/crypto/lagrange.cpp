#include "crypto/lagrange.hpp"

#include <stdexcept>

#include "crypto/multiexp.hpp"

namespace dkg::crypto {

Scalar lagrange_coeff(const Group& grp, const std::vector<std::uint64_t>& xs, std::size_t k,
                      std::uint64_t at) {
  Scalar num = Scalar::one(grp);
  Scalar den = Scalar::one(grp);
  Scalar xk = Scalar::from_u64(grp, xs[k]);
  Scalar a = Scalar::from_u64(grp, at);
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (j == k) continue;
    Scalar xj = Scalar::from_u64(grp, xs[j]);
    num = num * (a - xj);
    den = den * (xk - xj);
  }
  return num * den.inverse();
}

Scalar interpolate_at(const Group& grp, const std::vector<std::pair<std::uint64_t, Scalar>>& pts,
                      std::uint64_t at) {
  std::vector<std::uint64_t> xs;
  xs.reserve(pts.size());
  for (const auto& [x, y] : pts) xs.push_back(x);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) throw std::invalid_argument("interpolate_at: duplicate abscissa");
    }
  }
  Scalar acc = Scalar::zero(grp);
  for (std::size_t k = 0; k < pts.size(); ++k) {
    acc += lagrange_coeff(grp, xs, k, at) * pts[k].second;
  }
  return acc;
}

Element exp_interpolate_at(const Group& grp,
                           const std::vector<std::pair<std::uint64_t, Element>>& pts,
                           std::uint64_t at) {
  std::vector<std::uint64_t> xs;
  xs.reserve(pts.size());
  for (const auto& [x, y] : pts) xs.push_back(x);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) throw std::invalid_argument("exp_interpolate_at: duplicate abscissa");
    }
  }
  std::vector<const Element*> bases;
  std::vector<Scalar> lambdas;
  bases.reserve(pts.size());
  lambdas.reserve(pts.size());
  for (std::size_t k = 0; k < pts.size(); ++k) {
    bases.push_back(&pts[k].second);
    lambdas.push_back(lagrange_coeff(grp, xs, k, at));
  }
  return multiexp(grp, bases, lambdas);
}

Polynomial interpolate(const Group& grp,
                       const std::vector<std::pair<std::uint64_t, Scalar>>& pts) {
  // Build sum_k y_k * prod_{j != k} (x - x_j)/(x_k - x_j) in coefficient form.
  std::size_t n = pts.size();
  if (n == 0) throw std::invalid_argument("interpolate: no points");
  std::vector<Scalar> acc(n, Scalar::zero(grp));
  for (std::size_t k = 0; k < n; ++k) {
    // numerator polynomial prod_{j != k} (x - x_j), built incrementally.
    std::vector<Scalar> numer{Scalar::one(grp)};
    Scalar denom = Scalar::one(grp);
    Scalar xk = Scalar::from_u64(grp, pts[k].first);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == k) continue;
      Scalar xj = Scalar::from_u64(grp, pts[j].first);
      if (xk == xj) throw std::invalid_argument("interpolate: duplicate abscissa");
      denom = denom * (xk - xj);
      // numer *= (x - xj)
      std::vector<Scalar> next(numer.size() + 1, Scalar::zero(grp));
      for (std::size_t d = 0; d < numer.size(); ++d) {
        next[d + 1] += numer[d];
        next[d] += numer[d] * xj.negate();
      }
      numer = std::move(next);
    }
    Scalar w = pts[k].second * denom.inverse();
    for (std::size_t d = 0; d < numer.size(); ++d) acc[d] += numer[d] * w;
  }
  return Polynomial(std::move(acc));
}

}  // namespace dkg::crypto
