#include "crypto/lagrange.hpp"

#include <stdexcept>

#include "crypto/multiexp.hpp"

namespace dkg::crypto {

Scalar lagrange_coeff(const Group& grp, const std::vector<std::uint64_t>& xs, std::size_t k,
                      std::uint64_t at) {
  Scalar num = Scalar::one(grp);
  Scalar den = Scalar::one(grp);
  Scalar xk = Scalar::from_u64(grp, xs[k]);
  Scalar a = Scalar::from_u64(grp, at);
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (j == k) continue;
    Scalar xj = Scalar::from_u64(grp, xs[j]);
    num = num * (a - xj);
    den = den * (xk - xj);
  }
  return num * den.inverse();
}

Scalar interpolate_at(const Group& grp, const std::vector<std::pair<std::uint64_t, Scalar>>& pts,
                      std::uint64_t at) {
  std::vector<std::uint64_t> xs;
  xs.reserve(pts.size());
  for (const auto& [x, y] : pts) xs.push_back(x);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) throw std::invalid_argument("interpolate_at: duplicate abscissa");
    }
  }
  Scalar acc = Scalar::zero(grp);
  for (std::size_t k = 0; k < pts.size(); ++k) {
    acc += lagrange_coeff(grp, xs, k, at) * pts[k].second;
  }
  return acc;
}

Element exp_interpolate_at(const Group& grp,
                           const std::vector<std::pair<std::uint64_t, Element>>& pts,
                           std::uint64_t at) {
  std::vector<std::uint64_t> xs;
  xs.reserve(pts.size());
  for (const auto& [x, y] : pts) xs.push_back(x);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) throw std::invalid_argument("exp_interpolate_at: duplicate abscissa");
    }
  }
  std::vector<const Element*> bases;
  std::vector<Scalar> lambdas;
  bases.reserve(pts.size());
  lambdas.reserve(pts.size());
  for (std::size_t k = 0; k < pts.size(); ++k) {
    bases.push_back(&pts[k].second);
    lambdas.push_back(lagrange_coeff(grp, xs, k, at));
  }
  return multiexp(grp, bases, lambdas);
}

Polynomial interpolate(const Group& grp,
                       const std::vector<std::pair<std::uint64_t, Scalar>>& pts) {
  // Build sum_k y_k * prod_{j != k} (x - x_j)/(x_k - x_j) in coefficient
  // form. The per-k numerators all divide the master product
  // N(x) = prod_j (x - x_j), so build N once and peel each numerator off by
  // synthetic division — O(n^2) where rebuilding every numerator from
  // scratch is O(n^3) (this runs once per (node, dealer) ready round, n^2
  // times per DKG, and was the next cpu_ms term after verify-point at
  // n >= 64). The interpolating polynomial is unique over Z_q, so the
  // coefficients are bit-identical to the naive expansion's.
  std::size_t n = pts.size();
  if (n == 0) throw std::invalid_argument("interpolate: no points");
  std::vector<Scalar> xs;
  xs.reserve(n);
  for (const auto& [x, y] : pts) xs.push_back(Scalar::from_u64(grp, x));
  // N(x) = prod_j (x - x_j), degree n, built low-to-high.
  std::vector<Scalar> master(n + 1, Scalar::zero(grp));
  master[0] = Scalar::one(grp);
  for (std::size_t j = 0; j < n; ++j) {
    Scalar neg_xj = xs[j].negate();
    for (std::size_t d = j + 1; d-- > 0;) {
      master[d + 1] += master[d];
      master[d] = master[d] * neg_xj;
    }
  }
  std::vector<Scalar> acc(n, Scalar::zero(grp));
  std::vector<Scalar> numer(n, Scalar::zero(grp));
  for (std::size_t k = 0; k < n; ++k) {
    // numer = N / (x - x_k) by synthetic division (exact: x_k is a root).
    numer[n - 1] = master[n];
    for (std::size_t d = n - 1; d-- > 0;) numer[d] = master[d + 1] + xs[k] * numer[d + 1];
    Scalar denom = Scalar::one(grp);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == k) continue;
      if (xs[k] == xs[j]) throw std::invalid_argument("interpolate: duplicate abscissa");
      denom = denom * (xs[k] - xs[j]);
    }
    Scalar w = pts[k].second * denom.inverse();
    for (std::size_t d = 0; d < n; ++d) acc[d] += numer[d] * w;
  }
  return Polynomial(std::move(acc));
}

}  // namespace dkg::crypto
