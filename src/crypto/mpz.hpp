// Thin helpers over GMP's mpz_class: canonical byte encodings and the
// modular operations the rest of src/crypto is built from.
#pragma once

#include <gmpxx.h>

#include <cstdint>

#include "common/bytes.hpp"

namespace dkg::crypto {

/// Big-endian, fixed-width encoding (zero padded). Throws std::length_error
/// if `v` does not fit in `width` bytes or is negative.
Bytes mpz_to_bytes(const mpz_class& v, std::size_t width);

/// Big-endian decoding; empty input decodes to 0.
mpz_class mpz_from_bytes(const Bytes& b);

/// (base ^ exp) mod m, exp >= 0.
mpz_class powm(const mpz_class& base, const mpz_class& exp, const mpz_class& m);

/// Multiplicative inverse mod m. Throws std::domain_error if not invertible.
mpz_class invmod(const mpz_class& v, const mpz_class& m);

/// Canonical representative in [0, m).
mpz_class mod(const mpz_class& v, const mpz_class& m);

/// Miller-Rabin with 40 rounds (GMP's reps parameter).
bool probably_prime(const mpz_class& v);

/// Number of bytes needed to store v (at least 1).
std::size_t byte_width(const mpz_class& v);

}  // namespace dkg::crypto
