#include "crypto/group.hpp"

#include "crypto/ec256.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

namespace {
// Deterministically generated Schnorr group parameters (seed 20090612; see
// DESIGN.md §5). Hex, no 0x prefix.
const char kTiny256P[] = "800000000000000000000000000000000000000000000042823f72995a7212cd";
const char kTiny256Q[] = "f55a6b5f385ab24d";
const char kTiny256G[] = "22ba78c31382e91d00a9020a736899e585ad76dda682abb91543bda58ce0160e";

const char kSmall512P[] =
    "8000000000000000000000000000000000000000000000000000000000000000000000000000000000000129e8"
    "13ce8bc094d685282e28f48e62a0c7c808ed0b";
const char kSmall512Q[] = "8480a13c6aa6ccdda3541f0c040cedd83bc0dafd";
const char kSmall512G[] =
    "83d87c857245e3fbe12bcb5f5a811d15c651911a08fe18e1013e7e8848dd21db0332b79fe0b9749a9259b3ae9e"
    "5daf4236e115d14588ab2dca297cc77faa5d";

const char kMod1024P[] =
    "8000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "00000000000000000000000000000001cdf9bca7085b671ba4f209b4feb939d426695188a9";

const char kMod1024Q[] = "aa4ba1cd7c2f4e7691a29ba205d68621bcb1c427";

const char kMod1024G[] =
    "5a042afe8225cdc8ef3d747c2d1eae3f523232ef42bd8c6d70ffc8d7bfc4ba308ae2174d538f4eb0c2270d31adb"
    "34ae9d935ed6058afd73ca0fc45819d1d60f1db065eb73382423435ef5dca02f2d15bd6bfaca757a96689ff2f64"
    "ff3f5aa3fabe3cb417348db14b1f73754a6d485bdb771e52c77a18ece51f90bd70ac076ad2";

const char kBig2048P[] =
    "8000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "0000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000"
    "00000000000000000000000000000000000000000000000000000000000000000000000000000000039c31ee77e"
    "9a46333e9d54a3a51c2347135a9b9cf53b7d090d9166e3f5f762c23cd";

const char kBig2048Q[] = "ef6d6a86c722d7c5f6e688b0799ac663a327ec144ec4798614eb8dbcd3e0f99b";

const char kBig2048G[] =
    "d17a5c08de7e7992b5af49c5387845bdc167051ad607fec1b66c07f5828fffb65e2a08434b0fff485508d4eae83"
    "fbfd10e6a205858fbaaffbf3b2dedd77f111425c6f295def873f29c8db493075e3d59ec62debe2c51a61767c4ef"
    "4864cea5c683235b4b46572251c3a4bd5e5f5be61d63f4e3dc783fcb159454262555b47bccb71ad38b37169e689"
    "30b4794ff25e3bfbd52a369b976982e51a6c37d7f693fd661accab2e3b54bbe73160ed611417af3ad221cbfcf6b"
    "e9e0fc885318dda31a95711b7441bcf3643299dbc803ed568a4c423eee22fdee3f7a956de1d2860eb6ca5e262c3"
    "33b20bbd41c67560bcc0260fadb87bb988d25803b2cc13d50e477185";

// Hash-to-subgroup: expand a domain tag to p_bytes pseudo-random bytes, then
// raise to (p-1)/q so the result lands in the order-q subgroup. The discrete
// log of the result with respect to g is unknown to everyone.
mpz_class derive_h(const mpz_class& p, const mpz_class& q) {
  mpz_class r = (p - 1) / q;
  std::size_t width = byte_width(p);
  for (std::uint32_t ctr = 0;; ++ctr) {
    Bytes seed = bytes_of("hybriddkg/pedersen-h/v1");
    seed.push_back(static_cast<std::uint8_t>(ctr));
    Bytes stream;
    Bytes block = seed;
    while (stream.size() < width) {
      block = sha256(block);
      stream.insert(stream.end(), block.begin(), block.end());
    }
    stream.resize(width);
    mpz_class u = mod(mpz_from_bytes(stream), p);
    if (u <= 1) continue;
    mpz_class h = powm(u, r, p);
    if (h != 1) return h;
  }
}
}  // namespace

Group::Group(std::string name, const std::string& p_hex, const std::string& q_hex,
             const std::string& g_hex)
    : name_(std::move(name)), p_(p_hex, 16), q_(q_hex, 16), g_(g_hex, 16) {
  h_ = derive_h(p_, q_);
  p_bytes_ = byte_width(p_);
  q_bytes_ = byte_width(q_);
  element_bytes_ = p_bytes_;
  kappa_ = mpz_sizeinbase(q_.get_mpz_t(), 2);
}

const Group& Group::tiny256() {
  static const Group grp("tiny256", kTiny256P, kTiny256Q, kTiny256G);
  return grp;
}

const Group& Group::small512() {
  static const Group grp("small512", kSmall512P, kSmall512Q, kSmall512G);
  return grp;
}

const Group& Group::mod1024() {
  static const Group grp("mod1024", kMod1024P, kMod1024Q, kMod1024G);
  return grp;
}

const Group& Group::big2048() {
  static const Group grp("big2048", kBig2048P, kBig2048Q, kBig2048G);
  return grp;
}

const Group& Group::ec256() {
  static const Group grp = [] {
    Group g;
    g.name_ = "ec256";
    g.backend_ = GroupBackend::Ec256;
    g.p_ = mpz_class(ec256::field_p_hex(), 16);
    g.q_ = mpz_class(ec256::order_n_hex(), 16);
    // mpz views of the compressed generator encodings: canonical value keys
    // for the backend-generic (group, base) caches, NOT residues.
    g.g_ = mpz_from_bytes(ec256::encode(ec256::generator()));
    g.h_ = mpz_from_bytes(ec256::encode(ec256::pedersen_h()));
    g.p_bytes_ = byte_width(g.p_);
    g.q_bytes_ = byte_width(g.q_);
    g.element_bytes_ = ec256::kEncodedBytes;
    g.kappa_ = mpz_sizeinbase(g.q_.get_mpz_t(), 2);
    return g;
  }();
  return grp;
}

bool Group::valid() const {
  if (!probably_prime(p_) || !probably_prime(q_)) return false;
  if (backend_ == GroupBackend::Ec256) {
    // Cofactor-1 curve: generators on the curve and killed by the order.
    const ec256::Point& gen = ec256::generator();
    const ec256::Point& ped = ec256::pedersen_h();
    if (!ec256::on_curve(gen) || gen.inf) return false;
    if (!ec256::on_curve(ped) || ped.inf) return false;
    if (!ec256::scalar_mul(gen, q_).inf) return false;
    if (!ec256::scalar_mul(ped, q_).inf) return false;
    return !ec256::eq(gen, ped);
  }
  if (mod(p_ - 1, q_) != 0) return false;
  if (g_ <= 1 || g_ >= p_) return false;
  if (powm(g_, q_, p_) != 1) return false;
  if (h_ <= 1 || h_ >= p_ || powm(h_, q_, p_) != 1) return false;
  return true;
}

bool Group::in_subgroup(const mpz_class& v) const {
  if (backend_ == GroupBackend::Ec256) {
    // v is the mpz view of a compressed encoding; a strict decode IS the
    // subgroup check on a cofactor-1 curve (the identity included).
    if (v < 0 || byte_width(v) > ec256::kEncodedBytes) return false;
    Bytes b = mpz_to_bytes(v, ec256::kEncodedBytes);
    ec256::Point pt;
    return ec256::decode(pt, b.data(), b.size());
  }
  if (v <= 0 || v >= p_) return false;
  return powm(v, q_, p_) == 1;
}

}  // namespace dkg::crypto
