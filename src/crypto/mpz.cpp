#include "crypto/mpz.hpp"

#include <stdexcept>
#include <vector>

namespace dkg::crypto {

Bytes mpz_to_bytes(const mpz_class& v, std::size_t width) {
  if (v < 0) throw std::length_error("mpz_to_bytes: negative value");
  std::size_t needed = byte_width(v);
  if (v == 0) needed = 0;
  if (needed > width) throw std::length_error("mpz_to_bytes: value too wide");
  Bytes out(width, 0);
  if (needed > 0) {
    std::size_t count = 0;
    // mpz_export writes most-significant-first with order=1, size=1.
    mpz_export(out.data() + (width - needed), &count, 1, 1, 1, 0, v.get_mpz_t());
  }
  return out;
}

mpz_class mpz_from_bytes(const Bytes& b) {
  mpz_class v;
  if (!b.empty()) mpz_import(v.get_mpz_t(), b.size(), 1, 1, 1, 0, b.data());
  return v;
}

mpz_class powm(const mpz_class& base, const mpz_class& exp, const mpz_class& m) {
  mpz_class r;
  mpz_powm(r.get_mpz_t(), base.get_mpz_t(), exp.get_mpz_t(), m.get_mpz_t());
  return r;
}

mpz_class invmod(const mpz_class& v, const mpz_class& m) {
  mpz_class r;
  if (mpz_invert(r.get_mpz_t(), v.get_mpz_t(), m.get_mpz_t()) == 0) {
    throw std::domain_error("invmod: value not invertible");
  }
  return r;
}

mpz_class mod(const mpz_class& v, const mpz_class& m) {
  mpz_class r;
  mpz_mod(r.get_mpz_t(), v.get_mpz_t(), m.get_mpz_t());
  return r;
}

bool probably_prime(const mpz_class& v) {
  return mpz_probab_prime_p(v.get_mpz_t(), 40) != 0;
}

std::size_t byte_width(const mpz_class& v) {
  if (v == 0) return 1;
  return (mpz_sizeinbase(v.get_mpz_t(), 2) + 7) / 8;
}

}  // namespace dkg::crypto
