#include "crypto/secret.hpp"

#include <new>
#include <stdexcept>

#include "crypto/element.hpp"
#include "crypto/mpz.hpp"
#include "crypto/sha256.hpp"

// ctcheck backend selection. Valgrind's client requests compile to a no-op
// rotation sequence when not running under valgrind, so a DKG_CTCHECK build
// is safe to execute anywhere; the poison only "arms" under the checker.
#if defined(DKG_CTCHECK)
#if __has_include(<valgrind/memcheck.h>)
#include <valgrind/memcheck.h>
#define DKG_CTCHECK_VALGRIND 1
#elif defined(__has_feature)
#if __has_feature(memory_sanitizer)
#include <sanitizer/msan_interface.h>
#define DKG_CTCHECK_MSAN 1
#endif
#endif
#endif

namespace dkg::crypto {

static_assert(GMP_NAIL_BITS == 0, "SecretScalar assumes a nail-free GMP build");

void ct_poison(void* p, std::size_t len) noexcept {
#if defined(DKG_CTCHECK_VALGRIND)
  VALGRIND_MAKE_MEM_UNDEFINED(p, len);
#elif defined(DKG_CTCHECK_MSAN)
  __msan_allocated_memory(p, len);
#else
  (void)p;
  (void)len;
#endif
}

void ct_unpoison(void* p, std::size_t len) noexcept {
#if defined(DKG_CTCHECK_VALGRIND)
  VALGRIND_MAKE_MEM_DEFINED(p, len);
#elif defined(DKG_CTCHECK_MSAN)
  __msan_unpoison(p, len);
#else
  (void)p;
  (void)len;
#endif
}

namespace {
SecretScrapeHook g_scrape_hook = nullptr;
}  // namespace

void set_secret_scrape_hook(SecretScrapeHook hook) noexcept { g_scrape_hook = hook; }

void* secret_alloc(std::size_t len) { return ::operator new(len); }

void secret_free(void* p, std::size_t len) noexcept {
  if (p == nullptr) return;
  if (g_scrape_hook != nullptr) {
    // The hook inspects what a buggy (wipe-free) free would have leaked.
    ct_unpoison(p, len);
    g_scrape_hook(p, len);
  }
  secure_wipe(p, len);
  ::operator delete(p);
}

// --- SecretBytes ------------------------------------------------------------

void SecretBytes::append(const void* p, std::size_t len) {
  const std::uint8_t* b = static_cast<const std::uint8_t*>(p);
  v_.insert(v_.end(), b, b + len);
}

void SecretBytes::append_u32(std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) v_.push_back(static_cast<std::uint8_t>(v >> s));
}

void SecretBytes::append_blob(const void* p, std::size_t len) {
  append_u32(static_cast<std::uint32_t>(len));
  append(p, len);
}

// --- limb helpers -----------------------------------------------------------

namespace {

using SecretLimbs = std::vector<mp_limb_t, SecretAllocator<mp_limb_t>>;

constexpr std::size_t kLimbBytes = sizeof(mp_limb_t);

std::size_t limbs_for_bytes(std::size_t len) { return (len + kLimbBytes - 1) / kLimbBytes; }

const mp_limb_t* limbs_of(const mpz_class& v) { return mpz_limbs_read(v.get_mpz_t()); }
std::size_t nlimbs_of(const mpz_class& v) {
  return static_cast<std::size_t>(mpz_size(v.get_mpz_t()));
}

/// Big-endian bytes -> least-significant-first limbs, data-independent
/// control flow (indices depend only on lengths).
void be_bytes_to_limbs(const std::uint8_t* b, std::size_t len, mp_limb_t* out, std::size_t nl) {
  for (std::size_t i = 0; i < nl; ++i) out[i] = 0;
  for (std::size_t i = 0; i < len; ++i) {
    std::size_t sig = len - 1 - i;  // byte significance, 0 = least
    out[sig / kLimbBytes] |= static_cast<mp_limb_t>(b[i]) << (8 * (sig % kLimbBytes));
  }
}

void limbs_to_be_bytes(const mp_limb_t* v, std::size_t nl, std::uint8_t* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    std::size_t sig = len - 1 - i;
    std::size_t limb = sig / kLimbBytes;
    out[i] = limb < nl ? static_cast<std::uint8_t>(v[limb] >> (8 * (sig % kLimbBytes))) : 0;
  }
}

/// 1 if x == 0 else 0, branch-free.
mp_limb_t ct_limb_is_zero(mp_limb_t x) {
  return static_cast<mp_limb_t>(1) & ~((x | (static_cast<mp_limb_t>(0) - x)) >> (GMP_NUMB_BITS - 1));
}

/// r = (a + b) mod q over n limbs; a, b in [0, q). Scratch t must hold n
/// limbs. Constant time.
void limb_add_mod(mp_limb_t* r, const mp_limb_t* a, const mp_limb_t* b, const mp_limb_t* q,
                  mp_size_t n, mp_limb_t* t) {
  mp_limb_t cy = mpn_add_n(r, a, b, n);
  mp_limb_t bw = mpn_sub_n(t, r, q, n);
  // Keep the reduced candidate t when the sum overflowed a limb boundary
  // (cy) or is >= q (no borrow). cy=1 with bw=0 cannot occur: a+b < 2q.
  mpn_cnd_swap(cy | (bw ^ 1), r, t, n);
}

/// r = (a - b) mod q over n limbs; a, b in [0, q). Constant time.
void limb_sub_mod(mp_limb_t* r, const mp_limb_t* a, const mp_limb_t* b, const mp_limb_t* q,
                  mp_size_t n) {
  mp_limb_t bw = mpn_sub_n(r, a, b, n);
  mpn_cnd_add_n(bw, r, r, q, n);
}

/// r = (a * b) mod q over n limbs. Constant time (mpn_sec_mul + sec_div_r).
void limb_mul_mod(mp_limb_t* r, const mp_limb_t* a, const mp_limb_t* b, const mp_limb_t* q,
                  mp_size_t n) {
  SecretLimbs prod(2 * static_cast<std::size_t>(n));
  SecretLimbs scratch(static_cast<std::size_t>(
      std::max(mpn_sec_mul_itch(n, n), mpn_sec_div_r_itch(2 * n, n))));
  mpn_sec_mul(prod.data(), a, n, b, n, scratch.data());
  mpn_sec_div_r(prod.data(), 2 * n, q, n, scratch.data());
  for (mp_size_t i = 0; i < n; ++i) r[i] = prod[static_cast<std::size_t>(i)];
}

}  // namespace

// --- SecretScalar -----------------------------------------------------------

SecretScalar::SecretScalar(const Group& grp, std::size_t nlimbs) : grp_(&grp), v_(nlimbs, 0) {}

const Group& SecretScalar::group() const {
  if (grp_ == nullptr) throw std::logic_error("SecretScalar: empty");
  return *grp_;
}

void SecretScalar::check_same(const SecretScalar& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) throw std::logic_error("SecretScalar: empty operand");
  if (!(*grp_ == *o.grp_)) throw std::logic_error("SecretScalar: mixed groups");
}

SecretScalar SecretScalar::zero(const Group& grp) {
  return SecretScalar(grp, nlimbs_of(grp.q()));
}

SecretScalar SecretScalar::from_scalar(const Scalar& s) {
  const Group& grp = s.group();
  SecretScalar out(grp, nlimbs_of(grp.q()));
  const mpz_class& v = s.value();  // already in [0, q)
  std::size_t vn = nlimbs_of(v);
  const mp_limb_t* vp = limbs_of(v);
  for (std::size_t i = 0; i < vn; ++i) out.v_[i] = vp[i];
  ct_poison(out.v_.data(), out.v_.size() * kLimbBytes);
  return out;
}

SecretScalar SecretScalar::from_bytes(const Group& grp, const Bytes& b) {
  std::size_t qn = nlimbs_of(grp.q());
  std::size_t nl = std::max(limbs_for_bytes(b.size()), qn);
  SecretLimbs wide(nl);
  be_bytes_to_limbs(b.data(), b.size(), wide.data(), nl);
  SecretLimbs scratch(static_cast<std::size_t>(
      mpn_sec_div_r_itch(static_cast<mp_size_t>(nl), static_cast<mp_size_t>(qn))));
  mpn_sec_div_r(wide.data(), static_cast<mp_size_t>(nl), limbs_of(grp.q()),
                static_cast<mp_size_t>(qn), scratch.data());
  SecretScalar out(grp, qn);
  for (std::size_t i = 0; i < qn; ++i) out.v_[i] = wide[i];
  ct_poison(out.v_.data(), out.v_.size() * kLimbBytes);
  return out;
}

SecretScalar SecretScalar::random(const Group& grp, Drbg& rng) {
  // Identical byte consumption and value to Scalar::random: q_bytes + 8
  // big-endian bytes reduced mod q — but sampled into wiped storage and
  // reduced with mpn_sec_div_r.
  SecretBytes buf(grp.q_bytes() + 8);
  rng.fill(buf.data(), buf.size());
  std::size_t qn = nlimbs_of(grp.q());
  std::size_t nl = std::max(limbs_for_bytes(buf.size()), qn);
  SecretLimbs wide(nl);
  be_bytes_to_limbs(buf.data(), buf.size(), wide.data(), nl);
  ct_poison(wide.data(), wide.size() * kLimbBytes);
  SecretLimbs scratch(static_cast<std::size_t>(
      mpn_sec_div_r_itch(static_cast<mp_size_t>(nl), static_cast<mp_size_t>(qn))));
  mpn_sec_div_r(wide.data(), static_cast<mp_size_t>(nl), limbs_of(grp.q()),
                static_cast<mp_size_t>(qn), scratch.data());
  SecretScalar out(grp, qn);
  for (std::size_t i = 0; i < qn; ++i) out.v_[i] = wide[i];
  return out;
}

SecretScalar SecretScalar::derive(const Group& grp, std::string_view domain,
                                  const SecretScalar& secret, const std::vector<const Bytes*>& pub) {
  // Writer-compatible framing, assembled in wiped storage.
  SecretBytes material;
  material.append_str(domain);
  {
    std::size_t qb = secret.group().q_bytes();
    material.append_u32(static_cast<std::uint32_t>(qb));
    std::size_t at = material.size();
    material.append(Bytes(qb, 0));
    SecretLimbs tmp(secret.v_.begin(), secret.v_.end());
    limbs_to_be_bytes(tmp.data(), tmp.size(), material.data() + at, qb);
  }
  for (const Bytes* p : pub) material.append_blob(*p);

  // Counter-mode SHA-256 expansion to q_bytes + 8 — bit-for-bit the stream
  // Scalar::hash_to_scalar produces for the same input bytes.
  std::size_t want = grp.q_bytes() + 8;
  SecretBytes stream;
  std::uint8_t ctr = 0;
  while (stream.size() < want) {
    SecretBytes block(material);
    block.append(&ctr, 1);
    ++ctr;
    std::uint8_t d[32];
    sha256_into(block.data(), block.size(), d);
    stream.append(d, 32);
    secure_wipe(d, sizeof(d));
  }

  std::size_t qn = nlimbs_of(grp.q());
  std::size_t nl = std::max(limbs_for_bytes(want), qn);
  SecretLimbs wide(nl);
  be_bytes_to_limbs(stream.data(), want, wide.data(), nl);
  SecretLimbs scratch(static_cast<std::size_t>(
      mpn_sec_div_r_itch(static_cast<mp_size_t>(nl), static_cast<mp_size_t>(qn))));
  mpn_sec_div_r(wide.data(), static_cast<mp_size_t>(nl), limbs_of(grp.q()),
                static_cast<mp_size_t>(qn), scratch.data());
  SecretScalar out(grp, qn);
  for (std::size_t i = 0; i < qn; ++i) out.v_[i] = wide[i];
  ct_poison(out.v_.data(), out.v_.size() * kLimbBytes);
  return out;
}

SecretScalar SecretScalar::operator+(const SecretScalar& o) const {
  check_same(o);
  mp_size_t n = static_cast<mp_size_t>(v_.size());
  SecretScalar out(*grp_, v_.size());
  SecretLimbs t(v_.size());
  limb_add_mod(out.v_.data(), v_.data(), o.v_.data(), limbs_of(grp_->q()), n, t.data());
  return out;
}

SecretScalar SecretScalar::operator-(const SecretScalar& o) const {
  check_same(o);
  mp_size_t n = static_cast<mp_size_t>(v_.size());
  SecretScalar out(*grp_, v_.size());
  limb_sub_mod(out.v_.data(), v_.data(), o.v_.data(), limbs_of(grp_->q()), n);
  return out;
}

SecretScalar SecretScalar::operator*(const SecretScalar& o) const {
  check_same(o);
  mp_size_t n = static_cast<mp_size_t>(v_.size());
  SecretScalar out(*grp_, v_.size());
  limb_mul_mod(out.v_.data(), v_.data(), o.v_.data(), limbs_of(grp_->q()), n);
  return out;
}

SecretScalar& SecretScalar::operator+=(const SecretScalar& o) {
  *this = *this + o;
  return *this;
}

SecretScalar& SecretScalar::operator*=(const SecretScalar& o) {
  *this = *this * o;
  return *this;
}

SecretScalar SecretScalar::operator+(const Scalar& o) const { return *this + from_scalar(o); }
SecretScalar SecretScalar::operator-(const Scalar& o) const { return *this - from_scalar(o); }
SecretScalar SecretScalar::operator*(const Scalar& o) const { return *this * from_scalar(o); }

SecretScalar& SecretScalar::operator+=(const Scalar& o) {
  *this = *this + o;
  return *this;
}

SecretScalar& SecretScalar::operator*=(const Scalar& o) {
  *this = *this * o;
  return *this;
}

void SecretScalar::one_if_zero() {
  if (grp_ == nullptr) throw std::logic_error("SecretScalar: empty");
  mp_limb_t acc = 0;
  for (mp_limb_t l : v_) acc |= l;
  SecretLimbs one(v_.size(), 0);
  one[0] = 1;
  mpn_cnd_add_n(ct_limb_is_zero(acc), v_.data(), v_.data(), one.data(),
                static_cast<mp_size_t>(v_.size()));
}

bool SecretScalar::ct_eq(const SecretScalar& o) const {
  check_same(o);
  mp_limb_t acc = 0;
  for (std::size_t i = 0; i < v_.size(); ++i) acc |= v_[i] ^ o.v_[i];
  mp_limb_t zero = ct_limb_is_zero(acc);
  ct_unpoison(&zero, sizeof(zero));  // the boolean verdict is declassified
  return zero != 0;
}

Element SecretScalar::commit_to() const {
  return commit_to(Element::generator(group()));
}

Element SecretScalar::commit_to(const Element& base) const {
  const Group& grp = group();
  if (!(base.group() == grp)) throw std::logic_error("SecretScalar: mixed groups");
  if (grp.backend() == GroupBackend::Ec256) {
    if (base.is_identity()) throw std::logic_error("SecretScalar: commit to zero base");
    ec256::Point r = ec256::scalar_mul_ct(base.point(), v_.data(), v_.size());
    ct_unpoison(&r, sizeof(r));  // g^x is a public commitment
    return Element::from_point(grp, r);
  }
  const mpz_class& p = grp.p();
  std::size_t pn = nlimbs_of(p);
  std::size_t bn = nlimbs_of(base.value());
  if (bn == 0) throw std::logic_error("SecretScalar: commit to zero base");
  // Fixed exponent width: every commitment scans the full qn*limb bits, so
  // the work is independent of the exponent's value.
  mp_bitcnt_t enb = static_cast<mp_bitcnt_t>(v_.size()) * GMP_NUMB_BITS;
  SecretLimbs ep(v_.begin(), v_.end());
  SecretLimbs rp(pn);
  SecretLimbs scratch(static_cast<std::size_t>(
      mpn_sec_powm_itch(static_cast<mp_size_t>(bn), enb, static_cast<mp_size_t>(pn))));
  mpn_sec_powm(rp.data(), limbs_of(base.value()), static_cast<mp_size_t>(bn), ep.data(), enb,
               limbs_of(p), static_cast<mp_size_t>(pn), scratch.data());
  ct_unpoison(rp.data(), rp.size() * kLimbBytes);  // g^x is a public commitment
  Bytes be(grp.p_bytes());
  limbs_to_be_bytes(rp.data(), rp.size(), be.data(), be.size());
  Element e = Element::from_bytes(grp, be);
  if (e.empty()) throw std::logic_error("SecretScalar: commit_to produced invalid element");
  return e;
}

Scalar SecretScalar::reveal() const {
  const Group& grp = group();
  SecretLimbs tmp(v_.begin(), v_.end());
  ct_unpoison(tmp.data(), tmp.size() * kLimbBytes);
  mpz_class v;
  mpz_import(v.get_mpz_t(), tmp.size(), -1, kLimbBytes, 0, 0, tmp.data());
  return Scalar::from_mpz(grp, v);
}

Bytes SecretScalar::reveal_bytes() const {
  const Group& grp = group();
  SecretLimbs tmp(v_.begin(), v_.end());
  ct_unpoison(tmp.data(), tmp.size() * kLimbBytes);
  Bytes out(grp.q_bytes());
  limbs_to_be_bytes(tmp.data(), tmp.size(), out.data(), out.size());
  return out;
}

}  // namespace dkg::crypto
