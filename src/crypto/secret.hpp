// Taint types for secret material. Every genuinely-secret value in the
// library — polynomial coefficients, VSS subshares, DKG key shares, Schnorr
// and DLEQ nonces, signing keys, DRBG key state — lives in one of the two
// types below, never in a bare Scalar/Bytes:
//
//   * SecretScalar: an element of Z_q held as a fixed-width limb vector.
//     All arithmetic runs through GMP's side-channel-silent mpn_sec_* /
//     mpn_cnd_* primitives, so secret-domain computation is constant-time by
//     construction (mpz_class normalizes and branches on limb values, which
//     is why this type does NOT wrap mpz_class). Storage is wiped before it
//     is released.
//   * SecretBytes: a wiped-on-free byte buffer for symmetric key material
//     (DRBG seeds, hash inputs during nonce derivation).
//
// Neither type converts implicitly to Scalar/Bytes. The only exits are:
//   reveal()/reveal_bytes() — declassify; every call site in src/ must carry
//     a `// reveal-ok: <reason>` justification (enforced by
//     tools/lint/secret_lint.py rule SEC01);
//   commit_to() — g^x (or base^x) via mpn_sec_powm; the result is a public
//     commitment, computed without variable-time exponentiation.
//
// Under -DDKG_CTCHECK (see tools/ctcheck/) secret limbs are poisoned with
// valgrind/MSan client requests at creation, so any secret-dependent branch
// or table index anywhere downstream is flagged by the checker.
#pragma once

#include <gmp.h>

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/group.hpp"
#include "crypto/scalar.hpp"
#include "crypto/secret_bytes.hpp"

namespace dkg::crypto {

class Element;

// --- SecretScalar -----------------------------------------------------------

/// An element of Z_q in taint-typed, constant-time, wiped storage. Group
/// mixing rules match Scalar (throws std::logic_error). Arithmetic cost is
/// independent of the operand values; only the (public) group parameters
/// determine the running time.
class SecretScalar {
 public:
  SecretScalar() = default;  // empty; using it in arithmetic throws

  static SecretScalar zero(const Group& grp);
  /// Taints a public scalar (the sanctioned public -> secret entry point).
  static SecretScalar from_scalar(const Scalar& s);
  /// Uniform in [0, q). Consumes exactly the same Drbg byte stream as
  /// Scalar::random and produces the same value, so switching a sampling
  /// site to the secret domain never perturbs downstream randomness.
  static SecretScalar random(const Group& grp, Drbg& rng);
  /// Big-endian decode reduced mod q (same value as Scalar::from_bytes).
  static SecretScalar from_bytes(const Group& grp, const Bytes& b);
  /// Deterministic nonce derivation: hashes
  ///   Writer{str(domain), blob(secret bytes), blob(pub[0]), ...}
  /// into Z_q with the exact counter-mode expansion of
  /// Scalar::hash_to_scalar, keeping every intermediate buffer in wiped
  /// storage. Schnorr and DLEQ nonces are derived through this.
  static SecretScalar derive(const Group& grp, std::string_view domain,
                             const SecretScalar& secret, const std::vector<const Bytes*>& pub);

  bool empty() const { return grp_ == nullptr; }
  const Group& group() const;

  SecretScalar operator+(const SecretScalar& o) const;
  SecretScalar operator-(const SecretScalar& o) const;
  SecretScalar operator*(const SecretScalar& o) const;
  SecretScalar& operator+=(const SecretScalar& o);
  SecretScalar& operator*=(const SecretScalar& o);
  // Mixed secret (x) public operands: the public operand's value may leak,
  // the secret one's may not.
  SecretScalar operator+(const Scalar& o) const;
  SecretScalar operator-(const Scalar& o) const;
  SecretScalar operator*(const Scalar& o) const;
  SecretScalar& operator+=(const Scalar& o);
  SecretScalar& operator*=(const Scalar& o);

  /// Constant-time: if the value is zero, set it to one (Schnorr/DLEQ
  /// vanishing-nonce guard — replaces the old `if (k.is_zero())` branch).
  void one_if_zero();

  /// Constant-time equality (the boolean result is declassified; the
  /// comparison itself leaks nothing about where operands differ).
  bool ct_eq(const SecretScalar& o) const;

  /// g^x via mpn_sec_powm: full fixed-width exponent scan, no comb tables,
  /// no mpz normalization of the exponent. The result is public.
  Element commit_to() const;
  /// base^x, same contract. `base` is public.
  Element commit_to(const Element& base) const;

  /// Declassifies to a public Scalar. Every call site in src/ must carry a
  /// `// reveal-ok:` justification (lint rule SEC01).
  Scalar reveal() const;
  /// Declassifies to the fixed-width (q_bytes) big-endian encoding.
  Bytes reveal_bytes() const;

 private:
  SecretScalar(const Group& grp, std::size_t nlimbs);
  void check_same(const SecretScalar& o) const;

  const Group* grp_ = nullptr;
  // Exactly mpz_size(q) limbs, value in [0, q). Wiped on free.
  std::vector<mp_limb_t, SecretAllocator<mp_limb_t>> v_;
};

}  // namespace dkg::crypto
