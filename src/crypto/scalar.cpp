#include "crypto/scalar.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace dkg::crypto {

const Group& Scalar::group() const {
  if (grp_ == nullptr) throw std::logic_error("Scalar: empty");
  return *grp_;
}

void Scalar::check_same(const Scalar& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) throw std::logic_error("Scalar: empty operand");
  if (!(*grp_ == *o.grp_)) throw std::logic_error("Scalar: mixed groups");
}

Scalar Scalar::zero(const Group& grp) { return Scalar(grp, 0); }

Scalar Scalar::one(const Group& grp) { return Scalar(grp, 1); }

Scalar Scalar::from_u64(const Group& grp, std::uint64_t v) {
  mpz_class m;
  mpz_import(m.get_mpz_t(), 1, 1, 8, 0, 0, &v);
  return Scalar(grp, mod(m, grp.q()));
}

Scalar Scalar::from_mpz(const Group& grp, const mpz_class& v) {
  return Scalar(grp, mod(v, grp.q()));
}

Scalar Scalar::random(const Group& grp, Drbg& rng) {
  // Sample q_bytes + 8 extra bytes and reduce: statistical distance from
  // uniform is < 2^-64, ample for a simulation-grade library.
  Bytes b = rng.bytes(grp.q_bytes() + 8);
  return Scalar(grp, mod(mpz_from_bytes(b), grp.q()));
}

Scalar Scalar::from_bytes(const Group& grp, const Bytes& b) {
  return Scalar(grp, mod(mpz_from_bytes(b), grp.q()));
}

Scalar Scalar::hash_to_scalar(const Group& grp, const Bytes& data) {
  // Expand to q_bytes + 8 via counter-mode SHA-256, then reduce.
  Bytes stream;
  std::uint8_t ctr = 0;
  while (stream.size() < grp.q_bytes() + 8) {
    Bytes block = data;
    block.push_back(ctr++);
    Bytes d = sha256(block);
    stream.insert(stream.end(), d.begin(), d.end());
  }
  stream.resize(grp.q_bytes() + 8);
  return Scalar(grp, mod(mpz_from_bytes(stream), grp.q()));
}

Scalar Scalar::operator+(const Scalar& o) const {
  check_same(o);
  return Scalar(*grp_, mod(v_ + o.v_, grp_->q()));
}

Scalar Scalar::operator-(const Scalar& o) const {
  check_same(o);
  return Scalar(*grp_, mod(v_ - o.v_, grp_->q()));
}

Scalar Scalar::operator*(const Scalar& o) const {
  check_same(o);
  return Scalar(*grp_, mod(v_ * o.v_, grp_->q()));
}

Scalar& Scalar::operator+=(const Scalar& o) {
  *this = *this + o;
  return *this;
}

Scalar& Scalar::operator*=(const Scalar& o) {
  *this = *this * o;
  return *this;
}

Scalar Scalar::negate() const {
  if (grp_ == nullptr) throw std::logic_error("Scalar: empty");
  return Scalar(*grp_, mod(-v_, grp_->q()));
}

Scalar Scalar::inverse() const {
  if (grp_ == nullptr) throw std::logic_error("Scalar: empty");
  if (v_ == 0) throw std::domain_error("Scalar: inverse of zero");
  return Scalar(*grp_, invmod(v_, grp_->q()));
}

bool Scalar::operator==(const Scalar& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) return grp_ == o.grp_;
  return *grp_ == *o.grp_ && v_ == o.v_;
}

Bytes Scalar::to_bytes() const {
  return mpz_to_bytes(v_, group().q_bytes());
}

}  // namespace dkg::crypto
