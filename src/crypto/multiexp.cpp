#include "crypto/multiexp.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "crypto/montgomery.hpp"

namespace dkg::crypto {

namespace {

std::atomic<bool> g_montgomery{true};

/// w-bit digit of |e| at digit position `pos` (little-endian digit order).
/// Reads whole limbs instead of w mpz_tstbit calls — the digit walks below
/// extract hundreds of digits per exponentiation.
unsigned digit_at(const mpz_class& e, std::size_t pos, unsigned w) {
  const std::size_t bit = pos * w;
  const mp_size_t li = static_cast<mp_size_t>(bit / GMP_NUMB_BITS);
  const unsigned off = bit % GMP_NUMB_BITS;
  mp_limb_t d = mpz_getlimbn(e.get_mpz_t(), li) >> off;  // 0 past the top limb
  if (off + w > GMP_NUMB_BITS) {
    d |= mpz_getlimbn(e.get_mpz_t(), li + 1) << (GMP_NUMB_BITS - off);
  }
  return static_cast<unsigned>(d & ((mp_limb_t{1} << w) - 1));
}

/// Hot-loop modular multiply-accumulate: acc = acc * m mod p, through one
/// preallocated temporary (mpz_class operator chains would reallocate).
struct ModMul {
  explicit ModMul(const mpz_class& p) : p_(p) {}
  void mul(mpz_class& acc, const mpz_class& m) {
    mpz_mul(tmp_.get_mpz_t(), acc.get_mpz_t(), m.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp_.get_mpz_t(), p_.get_mpz_t());
  }
  void sqr(mpz_class& acc) {
    mpz_mul(tmp_.get_mpz_t(), acc.get_mpz_t(), acc.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp_.get_mpz_t(), p_.get_mpz_t());
  }

 private:
  const mpz_class& p_;
  mpz_class tmp_;
};

/// The engine's Montgomery context for a group: the cached per-modulus ctx
/// when p is odd and the REDC path is enabled, nullptr otherwise.
const MontgomeryCtx* engine_ctx(const Group& grp) {
  return g_montgomery.load(std::memory_order_relaxed) ? MontgomeryCtx::for_group(grp) : nullptr;
}

/// Working-domain accumulator for the hot loops: one running value that
/// lives in Montgomery form when `ctx` is non-null (odd modulus, engine
/// enabled) and in plain canonical form otherwise. Operands enter the
/// domain as they are folded in, the whole squaring/digit chain stays
/// inside, and take()/value() convert back at the exit — so the REDC chains
/// are division-free yet bit-identical to the plain path (from_mont of the
/// REDC chain IS the plain product).
class DomainAcc {
 public:
  explicit DomainAcc(const Group& grp) : DomainAcc(grp, engine_ctx(grp)) {}
  DomainAcc(const Group& grp, const MontgomeryCtx* ctx) : ctx_(ctx), plain_(grp.p()) {
    if (ctx_ != nullptr) mont_.emplace(*ctx_);
  }

  bool montgomery() const { return ctx_ != nullptr; }

  void set_one() {
    if (ctx_ != nullptr) {
      mont_->acc_set_one();
    } else {
      acc_ = 1;
    }
  }
  /// acc = a value already in this domain (a table entry, or domain_value()).
  void set(const mpz_class& v) {
    if (ctx_ != nullptr) {
      mont_->acc_set(v);
    } else {
      acc_ = v;
    }
  }
  /// acc = the domain image of a canonical residue v in [0, p).
  void set_entered(const mpz_class& v) {
    if (ctx_ != nullptr) {
      mont_->acc_enter(v);
    } else {
      acc_ = v;
    }
  }
  /// acc *= m for m already in this domain.
  void mul(const mpz_class& m) {
    if (ctx_ != nullptr) {
      mont_->acc_mul(m);
    } else {
      plain_.mul(acc_, m);
    }
  }
  /// acc *= (domain image of canonical v) — one fused entry conversion.
  void mul_entered(const mpz_class& v) {
    if (ctx_ != nullptr) {
      mont_->acc_mul_entered(v);
    } else {
      plain_.mul(acc_, v);
    }
  }
  void sqr() {
    if (ctx_ != nullptr) {
      mont_->acc_sqr();
    } else {
      plain_.sqr(acc_);
    }
  }
  void save() {
    if (ctx_ != nullptr) {
      mont_->acc_save();
    } else {
      sv_ = acc_;
    }
  }
  void mul_saved() {
    if (ctx_ != nullptr) {
      mont_->acc_mul_saved();
    } else {
      plain_.mul(acc_, sv_);
    }
  }
  bool is_one() const { return ctx_ != nullptr ? mont_->acc_is_one() : acc_ == 1; }
  /// The accumulator as a DOMAIN value (for building same-domain tables).
  mpz_class domain_value() const {
    if (ctx_ != nullptr) {
      mpz_class out;
      mont_->acc_get(out);
      return out;
    }
    return acc_;
  }
  /// Exit conversion: the accumulator as the canonical residue.
  mpz_class take() {
    if (ctx_ != nullptr) {
      mont_->acc_redc();
      mpz_class out;
      mont_->acc_get(out);
      return out;
    }
    return std::move(acc_);
  }

 private:
  const MontgomeryCtx* ctx_;
  ModMul plain_;
  std::optional<MontgomeryCtx::Mul> mont_;
  mpz_class acc_, sv_;  // the plain-path registers
};

void check_operands(const Group& grp, const std::vector<const Element*>& bases,
                    const std::vector<Scalar>* exps) {
  if (exps != nullptr && bases.size() != exps->size()) {
    throw std::invalid_argument("multiexp: bases/exps size mismatch");
  }
  for (std::size_t k = 0; k < bases.size(); ++k) {
    if (bases[k] == nullptr || bases[k]->empty() || (exps != nullptr && (*exps)[k].empty())) {
      throw std::logic_error("multiexp: empty operand");
    }
    if (!(bases[k]->group() == grp) || (exps != nullptr && !((*exps)[k].group() == grp))) {
      throw std::logic_error("multiexp: mixed groups");
    }
  }
}

}  // namespace

unsigned multiexp_window(std::size_t bits) {
  // Per base, a 2^w-ary pass costs (2^w - 2) precomputation multiplications
  // plus ceil(bits/w) digit multiplications; the squaring chain is shared
  // across bases and fixed at `bits`, so minimize the per-base term.
  unsigned best = 1;
  std::size_t best_cost = static_cast<std::size_t>(-1);
  for (unsigned w = 1; w <= 8; ++w) {
    std::size_t cost = ((std::size_t{1} << w) - 2) + (bits + w - 1) / w;
    if (cost < best_cost) {
      best_cost = cost;
      best = w;
    }
  }
  return best;
}

bool multiexp_montgomery_enabled() { return g_montgomery.load(std::memory_order_relaxed); }

void multiexp_set_montgomery(bool on) { g_montgomery.store(on, std::memory_order_relaxed); }

Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                 const std::vector<Scalar>& exps) {
  check_operands(grp, bases, &exps);
  const mpz_class& p = grp.p();
  std::size_t bits = 0;
  for (const Scalar& e : exps) {
    if (e.value() != 0) {
      std::size_t b = mpz_sizeinbase(e.value().get_mpz_t(), 2);
      if (b > bits) bits = b;
    }
  }
  if (bits == 0) return Element::identity(grp);  // no terms, or all exponents zero
  if (grp.backend() == GroupBackend::Ec256) {
    if (bases.size() == 1) {
      return Element::from_point(grp, ec256::scalar_mul(bases[0]->point(), exps[0].value()));
    }
    // Straus over Jacobian accumulation: per-base digit tables are built
    // with mixed adds and ALL tables share one batch normalization, the
    // squaring chain becomes point doublings shared across every term, and
    // each nonzero digit costs a single mixed add. The window policy
    // minimizes the same per-base cost expression as mod-p.
    const unsigned w = multiexp_window(bits);
    const std::size_t tlen = std::size_t{1} << w;
    std::vector<ec256::Jac> jt(bases.size() * tlen);  // slot 0 per row unused
    for (std::size_t k = 0; k < bases.size(); ++k) {
      const ec256::Point& b = bases[k]->point();
      ec256::Jac* row = &jt[k * tlen];
      row[1] = ec256::to_jac(b);
      for (std::size_t j = 2; j < tlen; ++j) row[j] = ec256::jac_add_mixed(row[j - 1], b);
    }
    std::vector<ec256::Point> tab;
    ec256::batch_to_affine(jt, tab);
    const std::size_t digits = (bits + w - 1) / w;
    ec256::Jac acc{};
    bool any = false;
    for (std::size_t pos = digits; pos-- > 0;) {
      if (any) {
        for (unsigned s = 0; s < w; ++s) acc = ec256::jac_double(acc);
      }
      for (std::size_t k = 0; k < bases.size(); ++k) {
        unsigned d = digit_at(exps[k].value(), pos, w);
        if (d != 0) {
          acc = ec256::jac_add_mixed(acc, tab[k * tlen + d]);
          any = true;
        }
      }
    }
    return Element::from_point(grp, ec256::to_affine(acc));
  }
  if (bases.size() == 1) {
    // Straus degenerates to plain windowed exponentiation; GMP's powm
    // (Montgomery + sliding window) is strictly better there.
    return Element(grp, powm(bases[0]->value(), exps[0].value(), p));
  }

  const unsigned w = multiexp_window(bits);
  const std::size_t tlen = std::size_t{1} << w;
  // The whole evaluation runs in the working domain (Montgomery for odd p):
  // bases enter once, tables and accumulator stay inside, the result leaves.
  DomainAcc acc(grp);
  // Per-base tables: tab[k * tlen + j] = domain image of bases[k]^j for
  // j >= 1 (a zero digit is skipped below, so slot 0 stays unused).
  std::vector<mpz_class> tab(bases.size() * tlen);
  for (std::size_t k = 0; k < bases.size(); ++k) {
    mpz_class* row = &tab[k * tlen];
    acc.set_entered(bases[k]->value());
    row[1] = acc.domain_value();
    for (std::size_t j = 2; j < tlen; ++j) {
      acc.mul(row[1]);
      row[j] = acc.domain_value();
    }
  }

  const std::size_t digits = (bits + w - 1) / w;
  acc.set_one();
  for (std::size_t pos = digits; pos-- > 0;) {
    if (!acc.is_one()) {
      for (unsigned s = 0; s < w; ++s) acc.sqr();
    }
    for (std::size_t k = 0; k < bases.size(); ++k) {
      unsigned d = digit_at(exps[k].value(), pos, w);
      if (d != 0) acc.mul(tab[k * tlen + d]);
    }
  }
  return Element(grp, acc.take());
}

Element multiexp(const Group& grp, const std::vector<Element>& bases,
                 const std::vector<Scalar>& exps) {
  std::vector<const Element*> ptrs;
  ptrs.reserve(bases.size());
  for (const Element& b : bases) ptrs.push_back(&b);
  return multiexp(grp, ptrs, exps);
}

namespace {

/// The Ec256 index-power product for i >= 1: Horner over point arithmetic,
///   (((B_t * i) + B_{t-1}) * i + ...) * i + B_0,
/// accumulated in Jacobian with mixed adds and normalized once. On a
/// prime-order curve every point's order divides q, so the chain is exact
/// for ALL i and bases — the order_q_bases escape hatch and the Straus
/// fallback of the mod-p path are simply never needed here.
Element ec_index_product(const Group& grp, const std::vector<const Element*>& bases,
                         std::uint64_t i) {
  const std::size_t t = bases.size() - 1;
  ec256::Jac acc = ec256::to_jac(bases[t]->point());
  for (std::size_t j = t; j-- > 0;) {
    acc = ec256::jac_mul_u64(acc, i);
    acc = ec256::jac_add_mixed(acc, bases[j]->point());
  }
  return Element::from_point(grp, ec256::to_affine(acc));
}

/// The shared multiexp_index core for i >= 1 and non-empty bases. `ctx` is
/// the working domain; when `mont` is non-null it holds pre-entered images
/// of the bases under `ctx` and every per-call entry conversion is skipped.
/// Returns the product residue (Element semantics belong to the wrappers).
mpz_class index_product(const Group& grp, const std::vector<const Element*>& bases,
                        std::uint64_t i, const MontgomeryCtx* ctx,
                        const std::vector<const mpz_class*>* mont, bool order_q_bases) {
  const std::size_t t = bases.size() - 1;
  if (i == 1) {
    if (ctx != nullptr && mont != nullptr && t >= 2) {
      // With free entry conversions the domain product wins: t REDC muls
      // plus one exit reduction against t full mul+mod divisions.
      DomainAcc acc(grp, ctx);
      acc.set(*(*mont)[0]);
      for (std::size_t k = 1; k <= t; ++k) acc.mul(*(*mont)[k]);
      return acc.take();
    }
    // Without a cache the conversions would outweigh REDC's edge here.
    ModMul mm(grp.p());
    mpz_class acc = bases[0]->value();
    for (std::size_t k = 1; k < bases.size(); ++k) mm.mul(acc, bases[k]->value());
    return acc;
  }
  unsigned ibits = 0;
  for (std::uint64_t v = i; v != 0; v >>= 1) ++ibits;
  std::size_t qbits = mpz_sizeinbase(grp.q().get_mpz_t(), 2);
  if (order_q_bases || t * ibits <= qbits - 1) {
    // i^t < 2^(qbits-1) <= q: the integer exponents i^j equal their mod-q
    // reductions, so Horner in the exponent is bit-identical to the naive
    // reduced-power product for ALL inputs. The chain runs in the working
    // domain; each base folds in pre-entered (cache) or pays one fused
    // entry conversion.
    //
    // order_q_bases widens the regime past that integer bound: for bases of
    // order dividing q, B^e depends only on e mod q, so the chain's integer
    // exponents i^j and the naive reduced powers name the same element even
    // when i^t wraps — the caller vouches for the subgroup membership
    // (multiexp.hpp).
    DomainAcc acc(grp, ctx);
    if (mont != nullptr) {
      acc.set(*(*mont)[t]);
    } else {
      acc.set_entered(bases[t]->value());
    }
    for (std::size_t j = t; j-- > 0;) {
      // acc = acc^i, left-to-right square-and-multiply on the u64 index.
      acc.save();
      for (unsigned b = ibits - 1; b-- > 0;) {
        acc.sqr();
        if ((i >> b) & 1u) acc.mul_saved();
      }
      if (mont != nullptr) {
        acc.mul(*(*mont)[j]);
      } else {
        acc.mul_entered(bases[j]->value());
      }
    }
    return acc.take();
  }
  // Large index or tiny q: reduced powers + Straus (the rare regime; the
  // Straus tables re-enter the bases themselves, so the cache is unused).
  std::vector<Scalar> ipow;
  ipow.reserve(bases.size());
  Scalar x = Scalar::from_u64(grp, i);
  Scalar acc = Scalar::one(grp);
  for (std::size_t j = 0; j < bases.size(); ++j) {
    ipow.push_back(acc);
    acc = acc * x;
  }
  return mpz_class(multiexp(grp, bases, ipow).value());
}

}  // namespace

Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       std::uint64_t i, bool order_q_bases) {
  check_operands(grp, bases, nullptr);
  if (bases.empty()) return Element::identity(grp);
  if (i == 0) return *bases[0];  // ipow = 1, 0, 0, ... (0^0 = 1 convention)
  if (grp.backend() == GroupBackend::Ec256) return ec_index_product(grp, bases, i);
  return Element(grp, index_product(grp, bases, i, engine_ctx(grp), nullptr, order_q_bases));
}

Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       const std::vector<const mpz_class*>& mont, const MontgomeryCtx& ctx,
                       std::uint64_t i, bool order_q_bases) {
  check_operands(grp, bases, nullptr);
  if (mont.size() != bases.size()) {
    throw std::invalid_argument("multiexp_index: bases/mont size mismatch");
  }
  if (bases.empty()) return Element::identity(grp);
  if (i == 0) return *bases[0];
  // Unreachable for Ec256 in practice (MontDomainBases::get returns nullptr
  // there), but dispatch anyway so the overloads stay interchangeable.
  if (grp.backend() == GroupBackend::Ec256) return ec_index_product(grp, bases, i);
  return Element(grp, index_product(grp, bases, i, &ctx, &mont, order_q_bases));
}

Element multiexp_index(const Group& grp, const std::vector<Element>& bases, std::uint64_t i,
                       bool order_q_bases) {
  std::vector<const Element*> ptrs;
  ptrs.reserve(bases.size());
  for (const Element& b : bases) ptrs.push_back(&b);
  return multiexp_index(grp, ptrs, i, order_q_bases);
}

// --- MontDomainBases -------------------------------------------------------

const MontDomainBases::Image* MontDomainBases::get(const Group& grp,
                                                   const std::vector<Element>& entries) const {
  const MontgomeryCtx* ctx = engine_ctx(grp);
  if (ctx == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (img_ == nullptr) {
    auto img = std::make_unique<Image>();
    img->ctx = ctx;
    MontgomeryCtx::Mul mm(*ctx);
    img->vals.reserve(entries.size());
    mpz_class v;
    for (const Element& e : entries) {
      v = e.value();
      mm.to_mont(v);
      img->vals.push_back(v);
    }
    img_ = std::move(img);
  }
  // A toggle flip cannot invalidate a built image (handed-out pointers stay
  // valid for the owner's lifetime); it just stops being offered while the
  // engine is off or the ctx cache returned a different context.
  return img_->ctx == ctx ? img_.get() : nullptr;
}

void MontDomainBases::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  img_.reset();
}

// --- FixedBaseTable --------------------------------------------------------

FixedBaseTable::FixedBaseTable(const Group& grp, const mpz_class& base, unsigned w)
    : grp_(grp), base_(base), mont_(engine_ctx(grp)), w_(w) {
  // Exponents are Scalars in [0, q); one extra row absorbs the top digit
  // when |q| is not a multiple of w.
  std::size_t qbits = mpz_sizeinbase(grp_.q().get_mpz_t(), 2);
  rows_ = (qbits + w_ - 1) / w_;
  const std::size_t row_len = (std::size_t{1} << w_) - 1;  // j in [1, 2^w)
  if (grp_.backend() == GroupBackend::Ec256) {
    // `base` is the mpz view of a compressed encoding (the backend-generic
    // cache key); recover the point, then build the comb entirely in
    // Jacobian with two shared inversions: one normalizing the per-row
    // bases B^(2^(i*w)), one normalizing all rows_ * row_len entries.
    Bytes be = mpz_to_bytes(base, ec256::kEncodedBytes);
    ec256::Point b;
    if (!ec256::decode(b, be.data(), be.size())) {
      throw std::logic_error("FixedBaseTable: invalid ec256 base encoding");
    }
    std::vector<ec256::Jac> rbj(rows_);
    ec256::Jac cur = ec256::to_jac(b);
    for (std::size_t i = 0; i < rows_; ++i) {
      rbj[i] = cur;
      if (i + 1 < rows_) {
        for (unsigned s = 0; s < w_; ++s) cur = ec256::jac_double(cur);
      }
    }
    std::vector<ec256::Point> rb;
    ec256::batch_to_affine(rbj, rb);
    std::vector<ec256::Jac> jt(rows_ * row_len);
    for (std::size_t i = 0; i < rows_; ++i) {
      ec256::Jac e = ec256::to_jac(rb[i]);
      for (std::size_t j = 0; j < row_len; ++j) {
        jt[i * row_len + j] = e;
        if (j + 1 < row_len) e = ec256::jac_add_mixed(e, rb[i]);
      }
    }
    ec256::batch_to_affine(jt, ec_rows_);
    return;
  }
  // The whole table lives in the working domain fixed at build time
  // (Montgomery for odd p): pow() then runs its entire digit walk on REDC
  // muls and pays a single exit conversion — entry conversion happens once
  // per TABLE, here, not per exponentiation.
  DomainAcc acc(grp_, mont_);
  table_.resize(rows_ * row_len);
  acc.set_entered(base);
  for (std::size_t i = 0; i < rows_; ++i) {
    mpz_class* row = &table_[i * row_len];
    row[0] = acc.domain_value();  // B^(1 * 2^(i*w))
    for (std::size_t j = 1; j < row_len; ++j) {
      acc.mul(row[0]);
      row[j] = acc.domain_value();
    }
    if (i + 1 < rows_) {
      // acc holds row_base^(2^w - 1), the row's last entry; one more mul by
      // row_base reaches row_base^(2^w) — the next row's base — for the
      // price of a single multiplication instead of w squarings.
      acc.mul(row[0]);
    }
  }
}

ec256::Jac FixedBaseTable::pow_jac(const Scalar& e) const {
  if (grp_.backend() != GroupBackend::Ec256) {
    throw std::logic_error("FixedBaseTable::pow_jac: mod-p table");
  }
  const std::size_t row_len = (std::size_t{1} << w_) - 1;
  ec256::Jac acc{};
  for (std::size_t i = 0; i < rows_; ++i) {
    unsigned d = digit_at(e.value(), i, w_);
    if (d != 0) acc = ec256::jac_add_mixed(acc, ec_rows_[i * row_len + (d - 1)]);
  }
  return acc;
}

Element FixedBaseTable::pow(const Scalar& e) const {
  const std::size_t row_len = (std::size_t{1} << w_) - 1;
  if (grp_.backend() == GroupBackend::Ec256) {
    return Element::from_point(grp_, ec256::to_affine(pow_jac(e)));
  }
  // mont_ records the domain the table was BUILT in; the process-wide
  // engine toggle must not reinterpret existing entries.
  DomainAcc acc(grp_, mont_);
  bool started = false;
  for (std::size_t i = 0; i < rows_; ++i) {
    unsigned d = digit_at(e.value(), i, w_);
    if (d == 0) continue;
    if (started) {
      acc.mul(table_[i * row_len + (d - 1)]);
    } else {
      acc.set(table_[i * row_len + (d - 1)]);  // skip the mul by the identity
      started = true;
    }
  }
  if (!started) acc.set_one();
  return Element(grp_, acc.take());
}

std::size_t FixedBaseTable::memory_bytes() const {
  if (grp_.backend() == GroupBackend::Ec256) return ec_rows_.size() * sizeof(ec256::Point);
  return table_.size() * grp_.p_bytes();
}

std::unique_ptr<const FixedBaseTable> FixedBaseTable::build(const Group& grp,
                                                            const mpz_class& base) {
  // Caller-owned table, outside the global (group, base) cache: a keyring of
  // n public keys would evict the g/h tables from the bounded cache at
  // n = 128, so per-signer tables (crypto/sigverify.hpp) own their storage
  // and scope their lifetime to the ring.
  return std::unique_ptr<const FixedBaseTable>(new FixedBaseTable(grp, base, kWindow));
}

const FixedBaseTable* FixedBaseTable::lookup(const Group& grp, const mpz_class& base, unsigned w) {
  // Keyed by (group, base) VALUE, not address: the four canonical groups are
  // function-local statics but callers may also pass their own Group
  // instances, whose lifetime we must not depend on. unique_ptr entries keep
  // returned references stable across cache growth.
  static std::mutex mu;
  static std::vector<std::unique_ptr<FixedBaseTable>> cache;
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& t : cache) {
    if (t->grp_ == grp && t->base_ == base) return t.get();
  }
  if (cache.size() >= kMaxCachedTables) return nullptr;
  cache.push_back(std::unique_ptr<FixedBaseTable>(new FixedBaseTable(grp, base, w)));
  return cache.back().get();
}

namespace {
// The cached-generator comb width is a pure function of the backend, so the
// (group, base)-keyed cache never holds two widths for one key.
unsigned generator_window(const Group& grp) {
  return grp.backend() == GroupBackend::Ec256 ? FixedBaseTable::kWindowEc
                                              : FixedBaseTable::kWindow;
}
}  // namespace

// exp_g/exp_h are the hottest operations in the repo and SweepDriver workers
// issue them concurrently, so the mutex-guarded cache scan must not sit on
// the steady-state path: each thread memoizes its last hit per base kind and
// revalidates with a few mpz compares (matches()) — correct even if a caller's
// Group object was destroyed and a different group reallocated at the same
// address, because the memo is validated by VALUE, never by address.
const FixedBaseTable* FixedBaseTable::for_g(const Group& grp) {
  thread_local const FixedBaseTable* memo = nullptr;
  if (memo != nullptr && memo->matches(grp, grp.g())) return memo;
  memo = lookup(grp, grp.g(), generator_window(grp));
  return memo;
}

const FixedBaseTable* FixedBaseTable::for_h(const Group& grp) {
  thread_local const FixedBaseTable* memo = nullptr;
  if (memo != nullptr && memo->matches(grp, grp.h())) return memo;
  memo = lookup(grp, grp.h(), generator_window(grp));
  return memo;
}

}  // namespace dkg::crypto
