#include "crypto/multiexp.hpp"

#include <memory>
#include <mutex>
#include <stdexcept>

namespace dkg::crypto {

namespace {

/// w-bit digit of |e| at digit position `pos` (little-endian digit order).
unsigned digit_at(const mpz_class& e, std::size_t pos, unsigned w) {
  unsigned d = 0;
  for (unsigned b = 0; b < w; ++b) {
    if (mpz_tstbit(e.get_mpz_t(), pos * w + b) != 0) d |= 1u << b;
  }
  return d;
}

/// Hot-loop modular multiply-accumulate: acc = acc * m mod p, through one
/// preallocated temporary (mpz_class operator chains would reallocate).
struct ModMul {
  explicit ModMul(const mpz_class& p) : p_(p) {}
  void mul(mpz_class& acc, const mpz_class& m) {
    mpz_mul(tmp_.get_mpz_t(), acc.get_mpz_t(), m.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp_.get_mpz_t(), p_.get_mpz_t());
  }
  void sqr(mpz_class& acc) {
    mpz_mul(tmp_.get_mpz_t(), acc.get_mpz_t(), acc.get_mpz_t());
    mpz_mod(acc.get_mpz_t(), tmp_.get_mpz_t(), p_.get_mpz_t());
  }

 private:
  const mpz_class& p_;
  mpz_class tmp_;
};

void check_operands(const Group& grp, const std::vector<const Element*>& bases,
                    const std::vector<Scalar>* exps) {
  if (exps != nullptr && bases.size() != exps->size()) {
    throw std::invalid_argument("multiexp: bases/exps size mismatch");
  }
  for (std::size_t k = 0; k < bases.size(); ++k) {
    if (bases[k] == nullptr || bases[k]->empty() || (exps != nullptr && (*exps)[k].empty())) {
      throw std::logic_error("multiexp: empty operand");
    }
    if (!(bases[k]->group() == grp) || (exps != nullptr && !((*exps)[k].group() == grp))) {
      throw std::logic_error("multiexp: mixed groups");
    }
  }
}

}  // namespace

unsigned multiexp_window(std::size_t bits) {
  // Per base, a 2^w-ary pass costs (2^w - 2) precomputation multiplications
  // plus ceil(bits/w) digit multiplications; the squaring chain is shared
  // across bases and fixed at `bits`, so minimize the per-base term.
  unsigned best = 1;
  std::size_t best_cost = static_cast<std::size_t>(-1);
  for (unsigned w = 1; w <= 8; ++w) {
    std::size_t cost = ((std::size_t{1} << w) - 2) + (bits + w - 1) / w;
    if (cost < best_cost) {
      best_cost = cost;
      best = w;
    }
  }
  return best;
}

Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                 const std::vector<Scalar>& exps) {
  check_operands(grp, bases, &exps);
  const mpz_class& p = grp.p();
  std::size_t bits = 0;
  for (const Scalar& e : exps) {
    if (e.value() != 0) {
      std::size_t b = mpz_sizeinbase(e.value().get_mpz_t(), 2);
      if (b > bits) bits = b;
    }
  }
  if (bits == 0) return Element::identity(grp);  // no terms, or all exponents zero
  if (bases.size() == 1) {
    // Straus degenerates to plain windowed exponentiation; GMP's powm
    // (Montgomery + sliding window) is strictly better there.
    return Element(grp, powm(bases[0]->value(), exps[0].value(), p));
  }

  const unsigned w = multiexp_window(bits);
  const std::size_t tlen = std::size_t{1} << w;
  ModMul mm(p);
  // Per-base tables: tab[k * tlen + j] = bases[k]^j, j in [0, 2^w).
  std::vector<mpz_class> tab(bases.size() * tlen);
  for (std::size_t k = 0; k < bases.size(); ++k) {
    mpz_class* row = &tab[k * tlen];
    row[0] = 1;
    row[1] = bases[k]->value();
    for (std::size_t j = 2; j < tlen; ++j) {
      row[j] = row[j - 1];
      mm.mul(row[j], row[1]);
    }
  }

  const std::size_t digits = (bits + w - 1) / w;
  mpz_class acc{1};
  for (std::size_t pos = digits; pos-- > 0;) {
    if (acc != 1) {
      for (unsigned s = 0; s < w; ++s) mm.sqr(acc);
    }
    for (std::size_t k = 0; k < bases.size(); ++k) {
      unsigned d = digit_at(exps[k].value(), pos, w);
      if (d != 0) mm.mul(acc, tab[k * tlen + d]);
    }
  }
  return Element(grp, std::move(acc));
}

Element multiexp(const Group& grp, const std::vector<Element>& bases,
                 const std::vector<Scalar>& exps) {
  std::vector<const Element*> ptrs;
  ptrs.reserve(bases.size());
  for (const Element& b : bases) ptrs.push_back(&b);
  return multiexp(grp, ptrs, exps);
}

Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                       std::uint64_t i) {
  check_operands(grp, bases, nullptr);
  if (bases.empty()) return Element::identity(grp);
  if (i == 0) return *bases[0];  // ipow = 1, 0, 0, ... (0^0 = 1 convention)
  const mpz_class& p = grp.p();
  ModMul mm(p);
  if (i == 1) {
    mpz_class acc = bases[0]->value();
    for (std::size_t k = 1; k < bases.size(); ++k) mm.mul(acc, bases[k]->value());
    return Element(grp, std::move(acc));
  }
  const std::size_t t = bases.size() - 1;
  unsigned ibits = 0;
  for (std::uint64_t v = i; v != 0; v >>= 1) ++ibits;
  std::size_t qbits = mpz_sizeinbase(grp.q().get_mpz_t(), 2);
  if (t * ibits <= qbits - 1) {
    // i^t < 2^(qbits-1) <= q: the integer exponents i^j equal their mod-q
    // reductions, so Horner in the exponent is bit-identical to the naive
    // reduced-power product for ALL inputs.
    mpz_class acc = bases[t]->value();
    mpz_class save;
    for (std::size_t j = t; j-- > 0;) {
      // acc = acc^i, left-to-right square-and-multiply on the u64 index.
      save = acc;
      for (unsigned b = ibits - 1; b-- > 0;) {
        mm.sqr(acc);
        if ((i >> b) & 1u) mm.mul(acc, save);
      }
      mm.mul(acc, bases[j]->value());
    }
    return Element(grp, std::move(acc));
  }
  // Large index or tiny q: reduced powers + Straus.
  std::vector<Scalar> ipow;
  ipow.reserve(bases.size());
  Scalar x = Scalar::from_u64(grp, i);
  Scalar acc = Scalar::one(grp);
  for (std::size_t j = 0; j < bases.size(); ++j) {
    ipow.push_back(acc);
    acc = acc * x;
  }
  return multiexp(grp, bases, ipow);
}

Element multiexp_index(const Group& grp, const std::vector<Element>& bases, std::uint64_t i) {
  std::vector<const Element*> ptrs;
  ptrs.reserve(bases.size());
  for (const Element& b : bases) ptrs.push_back(&b);
  return multiexp_index(grp, ptrs, i);
}

// --- FixedBaseTable --------------------------------------------------------

FixedBaseTable::FixedBaseTable(const Group& grp, const mpz_class& base)
    : grp_(grp), base_(base) {
  const mpz_class& p = grp_.p();
  ModMul mm(p);
  // Exponents are Scalars in [0, q); one extra row absorbs the top digit
  // when |q| is not a multiple of w.
  std::size_t qbits = mpz_sizeinbase(grp_.q().get_mpz_t(), 2);
  rows_ = (qbits + w_ - 1) / w_;
  const std::size_t row_len = (std::size_t{1} << w_) - 1;  // j in [1, 2^w)
  table_.resize(rows_ * row_len);
  mpz_class row_base = base;
  for (std::size_t i = 0; i < rows_; ++i) {
    mpz_class* row = &table_[i * row_len];
    row[0] = row_base;  // B^(1 * 2^(i*w))
    for (std::size_t j = 1; j < row_len; ++j) {
      row[j] = row[j - 1];
      mm.mul(row[j], row_base);
    }
    if (i + 1 < rows_) {
      for (unsigned s = 0; s < w_; ++s) mm.sqr(row_base);
    }
  }
}

Element FixedBaseTable::pow(const Scalar& e) const {
  ModMul mm(grp_.p());
  const std::size_t row_len = (std::size_t{1} << w_) - 1;
  mpz_class acc{1};
  for (std::size_t i = 0; i < rows_; ++i) {
    unsigned d = digit_at(e.value(), i, w_);
    if (d != 0) mm.mul(acc, table_[i * row_len + (d - 1)]);
  }
  return Element(grp_, std::move(acc));
}

std::size_t FixedBaseTable::memory_bytes() const {
  return table_.size() * grp_.p_bytes();
}

const FixedBaseTable* FixedBaseTable::lookup(const Group& grp, const mpz_class& base) {
  // Keyed by (group, base) VALUE, not address: the four canonical groups are
  // function-local statics but callers may also pass their own Group
  // instances, whose lifetime we must not depend on. unique_ptr entries keep
  // returned references stable across cache growth.
  static std::mutex mu;
  static std::vector<std::unique_ptr<FixedBaseTable>> cache;
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& t : cache) {
    if (t->grp_ == grp && t->base_ == base) return t.get();
  }
  if (cache.size() >= kMaxCachedTables) return nullptr;
  cache.push_back(std::unique_ptr<FixedBaseTable>(new FixedBaseTable(grp, base)));
  return cache.back().get();
}

// exp_g/exp_h are the hottest operations in the repo and SweepDriver workers
// issue them concurrently, so the mutex-guarded cache scan must not sit on
// the steady-state path: each thread memoizes its last hit per base kind and
// revalidates with a few mpz compares (matches()) — correct even if a caller's
// Group object was destroyed and a different group reallocated at the same
// address, because the memo is validated by VALUE, never by address.
const FixedBaseTable* FixedBaseTable::for_g(const Group& grp) {
  thread_local const FixedBaseTable* memo = nullptr;
  if (memo != nullptr && memo->matches(grp, grp.g())) return memo;
  memo = lookup(grp, grp.g());
  return memo;
}

const FixedBaseTable* FixedBaseTable::for_h(const Group& grp) {
  thread_local const FixedBaseTable* memo = nullptr;
  if (memo != nullptr && memo->matches(grp, grp.h())) return memo;
  memo = lookup(grp, grp.h());
  return memo;
}

}  // namespace dkg::crypto
