// Shared-payload interning for commitment objects. A commitment matrix is
// ONE immutable object referenced by every send/echo/ready message of a
// broadcast round, but each of those messages used to re-serialize its
// (t+1)^2 entries on the way to the wire — the ~n^5 byte/CPU wall the E4
// full-commitment sweep hits. WireMemo pairs an object's canonical encoding
// with its SHA-256 digest and computes both exactly once per object, so
// serialization, signing payloads and digest lookups all share one buffer.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "common/bytes.hpp"

namespace dkg::crypto {

/// Thread-safe one-shot memo of (canonical bytes, sha256 digest).
///
/// Value-semantic holder for value-semantic owners (the same contract as
/// MontDomainBases): copies and assignments start empty — the owner's
/// entries changed or were duplicated — the pair is built at most once
/// behind a mutex, and the returned references stay stable for the owner's
/// lifetime. The encode callback must be a pure function of the owner's
/// immutable state.
class WireMemo {
 public:
  WireMemo() = default;
  WireMemo(const WireMemo&) noexcept {}
  WireMemo(WireMemo&&) noexcept {}
  WireMemo& operator=(const WireMemo&) noexcept {
    reset();
    return *this;
  }
  WireMemo& operator=(WireMemo&&) noexcept {
    reset();
    return *this;
  }

  using Encoder = std::function<Bytes()>;

  /// The canonical encoding; `encode` runs at most once per object.
  const Bytes& bytes(const Encoder& encode) const;
  /// SHA-256 of bytes(encode), memoized together with the encoding.
  const Bytes& digest(const Encoder& encode) const;

 private:
  struct Interned {
    Bytes bytes;
    Bytes digest;
  };

  const Interned& intern(const Encoder& encode) const;
  void reset();

  mutable std::mutex mu_;
  mutable std::unique_ptr<const Interned> interned_;
};

}  // namespace dkg::crypto
