// Deterministic random bit generator: ChaCha20 keyed by SHA-256 of a seed.
// All protocol and adversary randomness flows through Drbg instances so that
// every simulation, test and benchmark is exactly reproducible from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/secret_bytes.hpp"

namespace dkg::crypto {

class Drbg {
 public:
  explicit Drbg(const Bytes& seed);
  explicit Drbg(std::uint64_t seed);
  /// Key state (ChaCha key, buffered keystream) is scrubbed on teardown;
  /// seed material lives in wiped storage for its whole lifetime.
  ~Drbg();
  Drbg(const Drbg&) = default;
  Drbg(Drbg&&) = default;
  Drbg& operator=(const Drbg&) = default;
  Drbg& operator=(Drbg&&) = default;
  /// Convenience: domain-separated child generator, e.g. one per node.
  Drbg fork(std::string_view label) const;

  void fill(std::uint8_t* out, std::size_t len);
  Bytes bytes(std::size_t len);
  std::uint64_t next_u64();
  /// Uniform in [0, bound) via rejection sampling; bound > 0.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double uniform_real();

 private:
  explicit Drbg(const SecretBytes& seed);
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 12> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;
  SecretBytes seed_material_;
};

}  // namespace dkg::crypto
