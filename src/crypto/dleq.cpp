#include "crypto/dleq.hpp"

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

namespace {
Scalar challenge(const Element& g1, const Element& h1, const Element& g2, const Element& h2,
                 const Element& a1, const Element& a2) {
  Writer w;
  w.str("hybriddkg/dleq/v1");
  w.blob(g1.to_bytes());
  w.blob(h1.to_bytes());
  w.blob(g2.to_bytes());
  w.blob(h2.to_bytes());
  w.blob(a1.to_bytes());
  w.blob(a2.to_bytes());
  return Scalar::hash_to_scalar(g1.group(), w.data());
}
}  // namespace

Bytes DleqProof::to_bytes() const {
  Writer w;
  w.raw(c.to_bytes());
  w.raw(r.to_bytes());
  return w.take();
}

DleqProof dleq_prove(const Element& g1, const Element& h1, const Element& g2, const Element& h2,
                     const SecretScalar& x) {
  const Group& grp = x.group();
  Bytes g1b = g1.to_bytes();
  Bytes g2b = g2.to_bytes();
  Bytes h1b = h1.to_bytes();
  Bytes h2b = h2.to_bytes();
  SecretScalar k = SecretScalar::derive(grp, "hybriddkg/dleq/nonce", x, {&g1b, &g2b, &h1b, &h2b});
  k.one_if_zero();  // vanishing-nonce guard, branch-free
  Element a1 = k.commit_to(g1);
  Element a2 = k.commit_to(g2);
  Scalar c = challenge(g1, h1, g2, h2, a1, a2);
  // reveal-ok: r = k + x*c is the published proof response.
  Scalar r = (k + x * c).reveal();
  return DleqProof{c, r};
}

bool dleq_verify(const Element& g1, const Element& h1, const Element& g2, const Element& h2,
                 const DleqProof& proof) {
  if (h1.empty() || h2.empty() || proof.c.empty() || proof.r.empty()) return false;
  // The first base is the group generator in every proof this repo checks;
  // route it through the fixed-base comb table.
  const Group& grp = g1.group();
  Element b1 = g1.value() == grp.g() ? Element::exp_g(proof.r) : g1.pow(proof.r);
  Element b2 = g2.value() == grp.g() ? Element::exp_g(proof.r) : g2.pow(proof.r);
  Element a1 = b1 * h1.pow(proof.c).inverse();
  Element a2 = b2 * h2.pow(proof.c).inverse();
  return challenge(g1, h1, g2, h2, a1, a2) == proof.c;
}

Element hash_to_group(const Group& grp, const Bytes& data) {
  if (grp.backend() == GroupBackend::Ec256) {
    // Cofactor 1: any curve point is already in the prime-order group, so
    // try-and-increment replaces the (p-1)/q exponentiation cofactor clear.
    return Element::from_point(grp, ec256::hash_to_curve("hybriddkg/hash-to-group/v1", data));
  }
  mpz_class r = (grp.p() - 1) / grp.q();
  std::size_t width = grp.p_bytes();
  for (std::uint32_t ctr = 0;; ++ctr) {
    Writer w;
    w.str("hybriddkg/hash-to-group/v1");
    w.blob(data);
    w.u32(ctr);
    Bytes stream;
    Bytes block = sha256(w.data());
    while (stream.size() < width) {
      stream.insert(stream.end(), block.begin(), block.end());
      block = sha256(block);
    }
    stream.resize(width);
    mpz_class u = mod(mpz_from_bytes(stream), grp.p());
    if (u <= 1) continue;
    mpz_class h = powm(u, r, grp.p());
    if (h != 1) {
      Element e = Element::from_bytes(grp, mpz_to_bytes(h, width));
      if (!e.empty()) return e;
    }
  }
}

}  // namespace dkg::crypto
