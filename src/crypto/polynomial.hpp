// Univariate polynomials over Z_q. A degree-t polynomial is the unit of
// secret sharing: a(0) is the secret, a(i) is node i's share — so the
// coefficient vector is secret material and is held in SecretScalar (taint
// typed, constant-time arithmetic, wiped storage). Evaluations are secret
// too; call sites that put a point on the wire declassify it explicitly with
// reveal() (audited by tools/lint/secret_lint.py rule SEC01).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/scalar.hpp"
#include "crypto/secret.hpp"

namespace dkg::crypto {

class Polynomial {
 public:
  /// Zero polynomial of the given degree (all coefficients zero).
  Polynomial(const Group& grp, std::size_t degree);
  /// From explicit secret coefficients, constant term first. Non-empty.
  explicit Polynomial(std::vector<SecretScalar> coeffs);
  /// From public coefficients (Lagrange interpolation of public points, wire
  /// decode); each coefficient is tainted on entry.
  explicit Polynomial(const std::vector<Scalar>& coeffs);

  /// Uniformly random degree-t polynomial.
  static Polynomial random(const Group& grp, std::size_t degree, Drbg& rng);
  /// Random polynomial with a fixed constant term (a(0) = c).
  static Polynomial random_with_constant(const Scalar& c, std::size_t degree, Drbg& rng);
  static Polynomial random_with_constant(const SecretScalar& c, std::size_t degree, Drbg& rng);

  std::size_t degree() const { return coeffs_.size() - 1; }
  const Group& group() const { return coeffs_.front().group(); }
  const SecretScalar& coeff(std::size_t j) const { return coeffs_.at(j); }
  SecretScalar& coeff(std::size_t j) { return coeffs_.at(j); }
  const std::vector<SecretScalar>& coeffs() const { return coeffs_; }

  /// Horner evaluation a(x) at a public point.
  SecretScalar eval(const Scalar& x) const;
  SecretScalar eval_at(std::uint64_t x) const;

  Polynomial operator+(const Polynomial& o) const;

  /// Canonical encoding: degree (u32) then fixed-width coefficients. This is
  /// a declassification (rows ride in `send` messages addressed to their
  /// owner); callers decide where the bytes may go.
  Bytes to_bytes() const;
  /// Returns an empty optional-like signal via degree mismatch: callers pass
  /// the expected degree so Byzantine senders cannot inflate messages.
  static Polynomial from_bytes(const Group& grp, const Bytes& b, std::size_t expect_degree);

  /// Coefficient-wise constant-time comparison (verdict declassified).
  bool operator==(const Polynomial& o) const;

 private:
  std::vector<SecretScalar> coeffs_;  // coeffs_[j] multiplies x^j
};

}  // namespace dkg::crypto
