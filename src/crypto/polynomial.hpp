// Univariate polynomials over Z_q. A degree-t polynomial is the unit of
// secret sharing: a(0) is the secret, a(i) is node i's share.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/scalar.hpp"

namespace dkg::crypto {

class Polynomial {
 public:
  /// Zero polynomial of the given degree (all coefficients zero).
  Polynomial(const Group& grp, std::size_t degree);
  /// From explicit coefficients, constant term first. Must be non-empty.
  explicit Polynomial(std::vector<Scalar> coeffs);

  /// Uniformly random degree-t polynomial.
  static Polynomial random(const Group& grp, std::size_t degree, Drbg& rng);
  /// Random polynomial with a fixed constant term (a(0) = c).
  static Polynomial random_with_constant(const Scalar& c, std::size_t degree, Drbg& rng);

  std::size_t degree() const { return coeffs_.size() - 1; }
  const Group& group() const { return coeffs_.front().group(); }
  const Scalar& coeff(std::size_t j) const { return coeffs_.at(j); }
  Scalar& coeff(std::size_t j) { return coeffs_.at(j); }
  const std::vector<Scalar>& coeffs() const { return coeffs_; }

  /// Horner evaluation a(x).
  Scalar eval(const Scalar& x) const;
  Scalar eval_at(std::uint64_t x) const;

  Polynomial operator+(const Polynomial& o) const;

  /// Canonical encoding: degree (u32) then fixed-width coefficients.
  Bytes to_bytes() const;
  /// Returns an empty optional-like signal via degree mismatch: callers pass
  /// the expected degree so Byzantine senders cannot inflate messages.
  static Polynomial from_bytes(const Group& grp, const Bytes& b, std::size_t expect_degree);

  bool operator==(const Polynomial& o) const { return coeffs_ == o.coeffs_; }

 private:
  std::vector<Scalar> coeffs_;  // coeffs_[j] multiplies x^j
};

}  // namespace dkg::crypto
