#include "crypto/ec256.hpp"

#include <stdexcept>

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

// The limb code below indexes fixed 4-limb arrays with public loop indices
// and folds carries/borrows with masks, never with value-dependent control
// flow, so the same primitives are safe under the constant-time ladder.
static_assert(GMP_NUMB_BITS == 64, "ec256.cpp requires 64-bit nail-free GMP limbs");

namespace dkg::crypto::ec256 {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// secp256k1: p = 2^256 - 2^32 - 977, so 2^256 ≡ kC (mod p) with a 33-bit
// fold constant — the whole reduction is two mul-by-kC passes.
constexpr Fe kP = {0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
                   0xFFFFFFFFFFFFFFFFULL};
constexpr u64 kC = 0x1000003D1ULL;
constexpr Fe kOne = {1, 0, 0, 0};

const char kFieldPHex[] = "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
const char kOrderNHex[] = "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141";
const char kGxHex[] = "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
const char kGyHex[] = "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";

// --- limb utilities (branch-free) -------------------------------------------

inline u64 nonzero_bit(u64 x) { return (x | (0 - x)) >> 63; }
inline u64 mask_bit(u64 bit) { return 0 - bit; }  // bit in {0,1} -> 0 / ~0

inline u64 fe_nonzero(const Fe& a) { return nonzero_bit(a[0] | a[1] | a[2] | a[3]); }
inline u64 fe_is_zero_mask(const Fe& a) { return mask_bit(1 ^ fe_nonzero(a)); }

/// r = m ? a : r for a full mask m (0 or ~0).
inline void fe_csel(Fe& r, const Fe& a, u64 m) {
  for (int i = 0; i < 4; ++i) r[i] = (r[i] & ~m) | (a[i] & m);
}

/// r -= p if r >= p (r < 2p on entry).
inline void fe_cond_sub_p(Fe& r) {
  Fe t;
  u64 bw = 0;
  for (int i = 0; i < 4; ++i) {
    u64 d = r[i] - bw;
    u64 b1 = static_cast<u64>(r[i] < bw);
    t[i] = d - kP[i];
    bw = b1 | static_cast<u64>(d < kP[i]);
  }
  fe_csel(r, t, mask_bit(1 ^ bw));  // keep the subtraction iff it didn't borrow
}

inline void fe_add(Fe& r, const Fe& a, const Fe& b) {
  Fe s;
  u128 c = 0;
  for (int i = 0; i < 4; ++i) {
    c += static_cast<u128>(a[i]) + b[i];
    s[i] = static_cast<u64>(c);
    c >>= 64;
  }
  u64 cy = static_cast<u64>(c);
  Fe t;
  u64 bw = 0;
  for (int i = 0; i < 4; ++i) {
    u64 d = s[i] - bw;
    u64 b1 = static_cast<u64>(s[i] < bw);
    t[i] = d - kP[i];
    bw = b1 | static_cast<u64>(d < kP[i]);
  }
  r = s;
  fe_csel(r, t, mask_bit(cy | (1 ^ bw)));
}

inline void fe_sub(Fe& r, const Fe& a, const Fe& b) {
  Fe s;
  u64 bw = 0;
  for (int i = 0; i < 4; ++i) {
    u64 d = a[i] - bw;
    u64 b1 = static_cast<u64>(a[i] < bw);
    s[i] = d - b[i];
    bw = b1 | static_cast<u64>(d < b[i]);
  }
  Fe t;
  u128 c = 0;
  for (int i = 0; i < 4; ++i) {
    c += static_cast<u128>(s[i]) + kP[i];
    t[i] = static_cast<u64>(c);
    c >>= 64;
  }
  r = s;
  fe_csel(r, t, mask_bit(bw));
}

inline void fe_neg(Fe& r, const Fe& a) {
  Fe z{};
  fe_sub(r, z, a);
}

/// 192-bit accumulator multiply-accumulate for the comba product scan.
// Fully unrolled operand-scanning schoolbook: row i adds a[i]*b into
// t[i..i+4] with the carry riding in the high half of a u128 accumulator.
// Each step is carry(<2^64) + product(<=(2^64-1)^2) + limb(<2^64), whose
// maximum is exactly 2^128 - 1 — no u128 overflow. Straight-line and
// branch-free (shared by the constant-time ladder).
inline void mul_wide(u64 t[8], const Fe& a, const Fe& b) {
  u128 c;
  c = static_cast<u128>(a[0]) * b[0];
  t[0] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[0]) * b[1];
  t[1] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[0]) * b[2];
  t[2] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[0]) * b[3];
  t[3] = static_cast<u64>(c);
  t[4] = static_cast<u64>(c >> 64);

  c = static_cast<u128>(a[1]) * b[0] + t[1];
  t[1] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[1]) * b[1] + t[2];
  t[2] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[1]) * b[2] + t[3];
  t[3] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[1]) * b[3] + t[4];
  t[4] = static_cast<u64>(c);
  t[5] = static_cast<u64>(c >> 64);

  c = static_cast<u128>(a[2]) * b[0] + t[2];
  t[2] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[2]) * b[1] + t[3];
  t[3] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[2]) * b[2] + t[4];
  t[4] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[2]) * b[3] + t[5];
  t[5] = static_cast<u64>(c);
  t[6] = static_cast<u64>(c >> 64);

  c = static_cast<u128>(a[3]) * b[0] + t[3];
  t[3] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[3]) * b[1] + t[4];
  t[4] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[3]) * b[2] + t[5];
  t[5] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[3]) * b[3] + t[6];
  t[6] = static_cast<u64>(c);
  t[7] = static_cast<u64>(c >> 64);
}

// Dedicated squaring: 6 cross products doubled by a limb shift plus the 4
// diagonal squares — 10 wide multiplications against mul_wide's 16. Same
// straight-line/branch-free property.
inline void sqr_wide(u64 t[8], const Fe& a) {
  u128 c;
  c = static_cast<u128>(a[0]) * a[1];
  t[1] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[0]) * a[2];
  t[2] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[0]) * a[3];
  t[3] = static_cast<u64>(c);
  t[4] = static_cast<u64>(c >> 64);

  c = static_cast<u128>(a[1]) * a[2] + t[3];
  t[3] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[1]) * a[3] + t[4];
  t[4] = static_cast<u64>(c);
  t[5] = static_cast<u64>(c >> 64);

  c = static_cast<u128>(a[2]) * a[3] + t[5];
  t[5] = static_cast<u64>(c);
  t[6] = static_cast<u64>(c >> 64);

  t[7] = t[6] >> 63;
  t[6] = (t[6] << 1) | (t[5] >> 63);
  t[5] = (t[5] << 1) | (t[4] >> 63);
  t[4] = (t[4] << 1) | (t[3] >> 63);
  t[3] = (t[3] << 1) | (t[2] >> 63);
  t[2] = (t[2] << 1) | (t[1] >> 63);
  t[1] = t[1] << 1;

  c = static_cast<u128>(a[0]) * a[0];
  t[0] = static_cast<u64>(c);
  c = (c >> 64) + t[1];
  t[1] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[1]) * a[1] + t[2];
  t[2] = static_cast<u64>(c);
  c = (c >> 64) + t[3];
  t[3] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[2]) * a[2] + t[4];
  t[4] = static_cast<u64>(c);
  c = (c >> 64) + t[5];
  t[5] = static_cast<u64>(c);
  c = (c >> 64) + static_cast<u128>(a[3]) * a[3] + t[6];
  t[6] = static_cast<u64>(c);
  t[7] += static_cast<u64>(c >> 64);  // < 2^512 total: cannot overflow
}

/// Reduces a 512-bit product to canonical [0, p) by folding the high half
/// through 2^256 ≡ kC twice (see the bound analysis inline).
inline void fe_reduce(Fe& r, const u64 t[8]) {
  // m = t_hi * kC (5 limbs, m[4] < 2^33).
  u64 m[5];
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 pr = static_cast<u128>(t[4 + i]) * kC + carry;
    m[i] = static_cast<u64>(pr);
    carry = static_cast<u64>(pr >> 64);
  }
  m[4] = carry;
  // r = t_lo + m[0..3]; hi = m[4] + carry-out <= 2^33.
  u128 s = 0;
  for (int i = 0; i < 4; ++i) {
    s += static_cast<u128>(t[i]) + m[i];
    r[i] = static_cast<u64>(s);
    s >>= 64;
  }
  u64 hi = m[4] + static_cast<u64>(s);
  // Fold hi: value = r + hi * 2^256 ≡ r + hi * kC, hi * kC < 2^67.
  u128 f = static_cast<u128>(hi) * kC;
  u64 f0 = static_cast<u64>(f), f1 = static_cast<u64>(f >> 64);
  u128 s2 = static_cast<u128>(r[0]) + f0;
  r[0] = static_cast<u64>(s2);
  s2 = (s2 >> 64) + r[1] + f1;
  r[1] = static_cast<u64>(s2);
  s2 = (s2 >> 64) + r[2];
  r[2] = static_cast<u64>(s2);
  s2 = (s2 >> 64) + r[3];
  r[3] = static_cast<u64>(s2);
  u64 cy = static_cast<u64>(s2 >> 64);
  // If that overflowed 2^256 the wrapped value is < 2^67, so one more
  // masked +kC cannot carry; either way r < 2p afterwards.
  u64 add0 = kC & mask_bit(cy);
  u64 o = static_cast<u64>((r[0] += add0) < add0);
  o = static_cast<u64>((r[1] += o) < o);
  o = static_cast<u64>((r[2] += o) < o);
  r[3] += o;  // cannot overflow (see bound above)
  fe_cond_sub_p(r);
}

inline void fe_mul(Fe& r, const Fe& a, const Fe& b) {
  u64 t[8];
  mul_wide(t, a, b);
  fe_reduce(r, t);
}

inline void fe_sqr(Fe& r, const Fe& a) {
  u64 t[8];
  sqr_wide(t, a);
  fe_reduce(r, t);
}

inline u64 fe_eq_mask(const Fe& a, const Fe& b) {
  u64 d = (a[0] ^ b[0]) | (a[1] ^ b[1]) | (a[2] ^ b[2]) | (a[3] ^ b[3]);
  return mask_bit(1 ^ nonzero_bit(d));
}

// --- derived constants (parsed once from the hex strings) -------------------

inline Fe fe_from_mpz(const mpz_class& v) {
  Fe r{};
  std::size_t count = 0;
  mpz_export(r.data(), &count, -1, sizeof(u64), 0, 0, v.get_mpz_t());
  return r;
}

inline mpz_class fe_to_mpz(const Fe& a) {
  mpz_class v;
  mpz_import(v.get_mpz_t(), 4, -1, sizeof(u64), 0, 0, a.data());
  return v;
}

struct Consts {
  mpz_class p_mpz{kFieldPHex, 16};
  mpz_class n_mpz{kOrderNHex, 16};
  Fe pm2 = fe_from_mpz(p_mpz - 2);            // Fermat inversion exponent
  Fe sqrt_e = fe_from_mpz((p_mpz + 1) / 4);   // p ≡ 3 (mod 4) square root
  Fe b7 = {7, 0, 0, 0};
};

const Consts& consts() {
  static const Consts c;
  return c;
}

/// a^e for a PUBLIC constant exponent (inversion / square-root chains):
/// branching on the fixed exponent bits is data-independent.
inline void fe_pow_const(Fe& r, const Fe& a, const Fe& e) {
  Fe acc = kOne;
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) fe_sqr(acc, acc);
    if ((e[i >> 6] >> (i & 63)) & 1) {
      if (started) {
        fe_mul(acc, acc, a);
      } else {
        acc = a;
        started = true;
      }
    }
  }
  r = started ? acc : kOne;
}

/// Constant-time inversion (0 -> 0), for the ladder's final normalization.
inline void fe_inv_ct(Fe& r, const Fe& a) { fe_pow_const(r, a, consts().pm2); }

/// Variable-time inversion for public data (mpz binary xgcd is several
/// times faster than the 255-squaring Fermat chain at this size).
inline void fe_inv_var(Fe& r, const Fe& a) {
  mpz_class v = fe_to_mpz(a);
  if (v == 0) {
    r = Fe{};
    return;
  }
  mpz_class inv;
  mpz_invert(inv.get_mpz_t(), v.get_mpz_t(), consts().p_mpz.get_mpz_t());
  r = fe_from_mpz(inv);
}

inline void fe_from_be(Fe& r, const std::uint8_t* b) {
  for (int i = 0; i < 4; ++i) {
    u64 limb = 0;
    for (int j = 0; j < 8; ++j) limb = (limb << 8) | b[(3 - i) * 8 + j];
    r[i] = limb;
  }
}

inline void fe_to_be(std::uint8_t* b, const Fe& a) {
  for (int i = 0; i < 4; ++i) {
    u64 limb = a[3 - i];
    for (int j = 7; j >= 0; --j) {
      b[i * 8 + j] = static_cast<std::uint8_t>(limb);
      limb >>= 8;
    }
  }
}

/// x < p, variable time (wire decoding of public data).
inline bool fe_canonical(const Fe& a) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] < kP[i]) return true;
    if (a[i] > kP[i]) return false;
  }
  return false;
}

// --- point primitives -------------------------------------------------------

/// Branch-free Jacobian doubling (dbl-2009-l, a = 0). Z = 0 propagates.
Jac dbl(const Jac& P) {
  Fe A, B, C, D, E, F, t;
  Jac r;
  fe_sqr(A, P.X);
  fe_sqr(B, P.Y);
  fe_sqr(C, B);
  fe_add(t, P.X, B);
  fe_sqr(t, t);
  fe_sub(t, t, A);
  fe_sub(t, t, C);
  fe_add(D, t, t);
  fe_add(E, A, A);
  fe_add(E, E, A);
  fe_sqr(F, E);
  fe_sub(r.X, F, D);
  fe_sub(r.X, r.X, D);
  fe_sub(t, D, r.X);
  fe_mul(r.Y, E, t);
  fe_add(C, C, C);
  fe_add(C, C, C);
  fe_add(C, C, C);
  fe_sub(r.Y, r.Y, C);
  fe_mul(r.Z, P.Y, P.Z);
  fe_add(r.Z, r.Z, r.Z);
  return r;
}

/// Generic mixed-add body (madd-2007-bl shape): assumes a and b finite and
/// a != ±b; H and R are exported so complete wrappers can mask the special
/// cases. Branch-free. When H == 0 the result's Z is 0 (infinity), which is
/// already the correct answer for b == -a.
void madd_core(Jac& r, Fe& H, Fe& R, const Jac& a, const Point& b) {
  Fe Z1Z1, U2, S2, H2, H3, V, t;
  fe_sqr(Z1Z1, a.Z);
  fe_mul(U2, b.x, Z1Z1);
  fe_mul(S2, a.Z, Z1Z1);
  fe_mul(S2, S2, b.y);
  fe_sub(H, U2, a.X);
  fe_sub(R, S2, a.Y);
  fe_sqr(H2, H);
  fe_mul(H3, H2, H);
  fe_mul(V, a.X, H2);
  fe_sqr(r.X, R);
  fe_sub(r.X, r.X, H3);
  fe_sub(r.X, r.X, V);
  fe_sub(r.X, r.X, V);
  fe_sub(t, V, r.X);
  fe_mul(r.Y, R, t);
  fe_mul(t, a.Y, H3);
  fe_sub(r.Y, r.Y, t);
  fe_mul(r.Z, a.Z, H);
}

inline void jac_csel(Jac& r, const Jac& a, u64 m) {
  fe_csel(r.X, a.X, m);
  fe_csel(r.Y, a.Y, m);
  fe_csel(r.Z, a.Z, m);
}

/// Complete constant-time mixed add: any combination of infinities and the
/// a == ±b cases resolved with masks (the ladder's accumulator step).
Jac ct_add_mixed(const Jac& a, const Point& b) {
  Jac gen, r;
  Fe H, R;
  madd_core(gen, H, R, a, b);
  Jac d = dbl(a);
  const u64 m_a_inf = fe_is_zero_mask(a.Z);
  const u64 m_b_inf = mask_bit(b.inf);
  const u64 m_h0 = fe_is_zero_mask(H);
  const u64 m_r0 = fe_is_zero_mask(R);
  r = gen;  // covers the generic case AND b == -a (gen.Z == 0 there)
  jac_csel(r, d, m_h0 & m_r0 & ~m_a_inf & ~m_b_inf);  // b == a: double
  Jac jb;
  jb.X = b.x;
  jb.Y = b.y;
  jb.Z = Fe{u64{1} & ~b.inf, 0, 0, 0};
  jac_csel(r, jb, m_a_inf);            // a infinite: result is b
  jac_csel(r, a, m_b_inf & ~m_a_inf);  // b infinite: result is a
  return r;
}

Point to_affine_var(const Jac& a) {
  if (!fe_nonzero(a.Z)) return Point{};
  Fe zi, zi2, zi3;
  Point r;
  fe_inv_var(zi, a.Z);
  fe_sqr(zi2, zi);
  fe_mul(zi3, zi2, zi);
  fe_mul(r.x, a.X, zi2);
  fe_mul(r.y, a.Y, zi3);
  r.inf = 0;
  return r;
}

/// Masked scan of the full 16-entry window table (digit is secret).
void ct_select(Point& r, const Point tbl[16], u64 digit) {
  Fe x{}, y{};
  u64 inf = 0;
  for (u64 j = 0; j < 16; ++j) {
    const u64 m = mask_bit(1 ^ nonzero_bit(j ^ digit));
    for (int i = 0; i < 4; ++i) {
      x[i] |= tbl[j].x[i] & m;
      y[i] |= tbl[j].y[i] & m;
    }
    inf |= tbl[j].inf & m;
  }
  r.x = x;
  r.y = y;
  r.inf = inf;
}

}  // namespace

// --- public surface ---------------------------------------------------------

const char* field_p_hex() { return kFieldPHex; }
const char* order_n_hex() { return kOrderNHex; }

const Point& generator() {
  static const Point g = [] {
    Point p;
    p.x = fe_from_mpz(mpz_class(kGxHex, 16));
    p.y = fe_from_mpz(mpz_class(kGyHex, 16));
    p.inf = 0;
    return p;
  }();
  return g;
}

const Point& pedersen_h() {
  static const Point h = hash_to_curve("hybriddkg/pedersen-h/ec256/v1", Bytes{});
  return h;
}

bool on_curve(const Point& a) {
  if (a.inf) return true;
  Fe lhs, rhs;
  fe_sqr(lhs, a.y);
  fe_sqr(rhs, a.x);
  fe_mul(rhs, rhs, a.x);
  fe_add(rhs, rhs, consts().b7);
  return fe_eq_mask(lhs, rhs) != 0;
}

bool eq(const Point& a, const Point& b) {
  if (a.inf || b.inf) return a.inf == b.inf;
  return (fe_eq_mask(a.x, b.x) & fe_eq_mask(a.y, b.y)) != 0;
}

Bytes encode(const Point& a) {
  Bytes b(kEncodedBytes, 0);
  if (a.inf) return b;
  b[0] = static_cast<std::uint8_t>(0x02 | (a.y[0] & 1));
  fe_to_be(b.data() + 1, a.x);
  return b;
}

bool decode(Point& out, const std::uint8_t* b, std::size_t len) {
  if (len != kEncodedBytes) return false;
  if (b[0] == 0) {
    // Identity: all 33 bytes zero is the only canonical form.
    for (std::size_t i = 1; i < kEncodedBytes; ++i) {
      if (b[i] != 0) return false;
    }
    out = Point{};
    return true;
  }
  if (b[0] != 0x02 && b[0] != 0x03) return false;
  Fe x;
  fe_from_be(x, b + 1);
  if (!fe_canonical(x)) return false;
  Fe rhs, y, chk;
  fe_sqr(rhs, x);
  fe_mul(rhs, rhs, x);
  fe_add(rhs, rhs, consts().b7);
  fe_pow_const(y, rhs, consts().sqrt_e);
  fe_sqr(chk, y);
  if (!fe_eq_mask(chk, rhs)) return false;  // x is off the curve
  if ((y[0] & 1) != (b[0] & 1)) fe_neg(y, y);
  // Prime odd order means no 2-torsion, so y != 0 and both parities are
  // reachable; this is defensive only.
  if ((y[0] & 1) != static_cast<u64>(b[0] & 1)) return false;
  out.x = x;
  out.y = y;
  out.inf = 0;
  return true;
}

Jac to_jac(const Point& a) {
  Jac r;
  r.X = a.x;
  r.Y = a.y;
  r.Z = Fe{u64{1} & ~a.inf, 0, 0, 0};
  return r;
}

Point to_affine(const Jac& a) { return to_affine_var(a); }

void batch_to_affine(const std::vector<Jac>& in, std::vector<Point>& out) {
  const std::size_t k = in.size();
  out.assign(k, Point{});
  std::vector<Fe> prefix(k);
  Fe run = kOne;
  for (std::size_t i = 0; i < k; ++i) {
    prefix[i] = run;
    if (fe_nonzero(in[i].Z)) fe_mul(run, run, in[i].Z);
  }
  Fe inv;
  fe_inv_var(inv, run);
  for (std::size_t i = k; i-- > 0;) {
    if (!fe_nonzero(in[i].Z)) continue;  // out[i] stays the identity
    Fe zi, zi2, zi3;
    fe_mul(zi, inv, prefix[i]);
    fe_mul(inv, inv, in[i].Z);
    fe_sqr(zi2, zi);
    fe_mul(zi3, zi2, zi);
    fe_mul(out[i].x, in[i].X, zi2);
    fe_mul(out[i].y, in[i].Y, zi3);
    out[i].inf = 0;
  }
}

Jac jac_double(const Jac& a) { return dbl(a); }

Jac jac_add_mixed(const Jac& a, const Point& b) {
  if (b.inf) return a;
  if (!fe_nonzero(a.Z)) return to_jac(b);
  Jac r;
  Fe H, R;
  madd_core(r, H, R, a, b);
  if (!fe_nonzero(H)) {
    if (!fe_nonzero(R)) return dbl(a);
    return Jac{};  // b == -a
  }
  return r;
}

Jac jac_add(const Jac& a, const Jac& b) {
  if (!fe_nonzero(a.Z)) return b;
  if (!fe_nonzero(b.Z)) return a;
  Fe Z1Z1, Z2Z2, U1, U2, S1, S2, H, R, H2, H3, V, t;
  fe_sqr(Z1Z1, a.Z);
  fe_sqr(Z2Z2, b.Z);
  fe_mul(U1, a.X, Z2Z2);
  fe_mul(U2, b.X, Z1Z1);
  fe_mul(S1, a.Y, b.Z);
  fe_mul(S1, S1, Z2Z2);
  fe_mul(S2, b.Y, a.Z);
  fe_mul(S2, S2, Z1Z1);
  fe_sub(H, U2, U1);
  fe_sub(R, S2, S1);
  if (!fe_nonzero(H)) {
    if (!fe_nonzero(R)) return dbl(a);
    return Jac{};
  }
  Jac r;
  fe_sqr(H2, H);
  fe_mul(H3, H2, H);
  fe_mul(V, U1, H2);
  fe_sqr(r.X, R);
  fe_sub(r.X, r.X, H3);
  fe_sub(r.X, r.X, V);
  fe_sub(r.X, r.X, V);
  fe_sub(t, V, r.X);
  fe_mul(r.Y, R, t);
  fe_mul(t, S1, H3);
  fe_sub(r.Y, r.Y, t);
  fe_mul(r.Z, a.Z, b.Z);
  fe_mul(r.Z, r.Z, H);
  return r;
}

Jac jac_mul_u64(const Jac& a, std::uint64_t e) {
  if (e == 0 || !fe_nonzero(a.Z)) return Jac{};
  int top = 63;
  while (((e >> top) & 1) == 0) --top;
  Jac acc = a;
  for (int i = top - 1; i >= 0; --i) {
    acc = dbl(acc);
    if ((e >> i) & 1) acc = jac_add(acc, a);
  }
  return acc;
}

Jac jac_negate(const Jac& a) {
  Jac r = a;
  fe_neg(r.Y, a.Y);
  return r;
}

bool jac_eq(const Jac& a, const Jac& b) {
  // X/Z^2 and Y/Z^3 compare by cross-multiplication, so neither side pays
  // an inversion. Z == 0 (the identity) short-circuits: the projective
  // ratios are undefined there and the masks below would lie.
  const bool a_inf = !fe_nonzero(a.Z);
  const bool b_inf = !fe_nonzero(b.Z);
  if (a_inf || b_inf) return a_inf == b_inf;
  Fe za, zb, l, r;
  fe_sqr(za, a.Z);
  fe_sqr(zb, b.Z);
  fe_mul(l, a.X, zb);
  fe_mul(r, b.X, za);
  if (!fe_eq_mask(l, r)) return false;
  fe_mul(za, za, a.Z);
  fe_mul(zb, zb, b.Z);
  fe_mul(l, a.Y, zb);
  fe_mul(r, b.Y, za);
  return fe_eq_mask(l, r) != 0;
}

Point add(const Point& a, const Point& b) {
  return to_affine_var(jac_add_mixed(to_jac(a), b));
}

Point negate(const Point& a) {
  Point r = a;
  fe_neg(r.y, a.y);
  return r;
}

Point scalar_mul_u64(const Point& a, std::uint64_t e) {
  return to_affine_var(jac_mul_u64(to_jac(a), e));
}

Point scalar_mul(const Point& a, const mpz_class& e) {
  mpz_class red = mod(e, consts().n_mpz);
  if (red == 0 || a.inf) return Point{};
  Fe el = fe_from_mpz(red);
  // 4-bit fixed windows over a batch-normalized odd-and-even table: the
  // table build is 14 mixed adds + one shared inversion, and every window
  // step is then a cheap mixed add.
  std::vector<Jac> jt(16, Jac{});
  jt[1] = to_jac(a);
  for (int j = 2; j < 16; ++j) jt[j] = jac_add_mixed(jt[j - 1], a);
  std::vector<Point> tbl;
  batch_to_affine(jt, tbl);
  Jac acc{};
  bool any = false;
  for (int w = 63; w >= 0; --w) {
    if (any) {
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
    }
    const u64 d = (el[w >> 4] >> ((w & 15) * 4)) & 0xF;
    if (d != 0) {
      acc = jac_add_mixed(acc, tbl[d]);
      any = true;
    }
  }
  return to_affine_var(acc);
}

Point scalar_mul_ct(const Point& base, const mp_limb_t* e, std::size_t en) {
  // The window table depends only on the PUBLIC base; variable-time build,
  // one shared inversion, then the contents are public values scanned with
  // masks below.
  std::vector<Jac> jt(16, Jac{});
  jt[1] = to_jac(base);
  for (int j = 2; j < 16; ++j) jt[j] = jac_add_mixed(jt[j - 1], base);
  std::vector<Point> norm;
  batch_to_affine(jt, norm);
  Point tbl[16];
  for (int j = 0; j < 16; ++j) tbl[j] = norm[static_cast<std::size_t>(j)];

  // Fixed schedule: every window costs 4 doublings, one full-table masked
  // scan and one complete masked add, independent of the exponent bits.
  Jac acc{};
  const std::size_t windows = (en * 64 + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    acc = dbl(acc);
    acc = dbl(acc);
    acc = dbl(acc);
    acc = dbl(acc);
    const u64 limb = static_cast<u64>(e[w >> 4]);
    const u64 d = (limb >> ((w & 15) * 4)) & 0xF;
    Point sel;
    ct_select(sel, tbl, d);
    acc = ct_add_mixed(acc, sel);
  }

  // Constant-time normalization: Fermat inversion maps Z = 0 to 0, and the
  // infinity verdict is folded in with masks.
  Fe zi, zi2, zi3;
  fe_inv_ct(zi, acc.Z);
  fe_sqr(zi2, zi);
  fe_mul(zi3, zi2, zi);
  Point r;
  fe_mul(r.x, acc.X, zi2);
  fe_mul(r.y, acc.Y, zi3);
  const u64 m_inf = fe_is_zero_mask(acc.Z);
  const Fe z{};
  fe_csel(r.x, z, m_inf);
  fe_csel(r.y, z, m_inf);
  r.inf = m_inf & 1;
  return r;
}

Point hash_to_curve(std::string_view domain, const Bytes& data) {
  for (std::uint32_t ctr = 0;; ++ctr) {
    Writer w;
    w.str(domain);
    w.blob(data);
    w.u32(ctr);
    Bytes h = sha256(w.data());
    Fe x;
    fe_from_be(x, h.data());
    if (!fe_canonical(x)) continue;
    Fe rhs, y, chk;
    fe_sqr(rhs, x);
    fe_mul(rhs, rhs, x);
    fe_add(rhs, rhs, consts().b7);
    fe_pow_const(y, rhs, consts().sqrt_e);
    fe_sqr(chk, y);
    if (!fe_eq_mask(chk, rhs)) continue;  // ~half of all x are non-residues
    if (y[0] & 1) fe_neg(y, y);           // deterministic: always the even root
    Point r;
    r.x = x;
    r.y = y;
    r.inf = 0;
    return r;
  }
}

}  // namespace dkg::crypto::ec256
