#include "crypto/element.hpp"

#include <stdexcept>

#include "crypto/multiexp.hpp"

namespace dkg::crypto {

namespace {
inline bool is_ec(const Group& grp) { return grp.backend() == GroupBackend::Ec256; }
}  // namespace

const Group& Element::group() const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  return *grp_;
}

void Element::check_same(const Element& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) throw std::logic_error("Element: empty operand");
  if (!(*grp_ == *o.grp_)) throw std::logic_error("Element: mixed groups");
}

Element::Element(const Group& grp, const ec256::Point& pt)
    : grp_(&grp), v_(mpz_from_bytes(ec256::encode(pt))), pt_(pt) {}

Element Element::identity(const Group& grp) {
  if (is_ec(grp)) return Element(grp, ec256::Point{});
  return Element(grp, 1);
}

Element Element::generator(const Group& grp) {
  if (is_ec(grp)) return Element(grp, ec256::generator());
  return Element(grp, grp.g());
}

Element Element::pedersen_h(const Group& grp) {
  if (is_ec(grp)) return Element(grp, ec256::pedersen_h());
  return Element(grp, grp.h());
}

Element Element::exp_g(const Scalar& x) {
  const Group& grp = x.group();
  if (const FixedBaseTable* t = FixedBaseTable::for_g(grp)) return t->pow(x);
  if (is_ec(grp)) return Element(grp, ec256::scalar_mul(ec256::generator(), x.value()));
  return Element(grp, powm(grp.g(), x.value(), grp.p()));
}

Element Element::exp_h(const Scalar& x) {
  const Group& grp = x.group();
  if (const FixedBaseTable* t = FixedBaseTable::for_h(grp)) return t->pow(x);
  if (is_ec(grp)) return Element(grp, ec256::scalar_mul(ec256::pedersen_h(), x.value()));
  return Element(grp, powm(grp.h(), x.value(), grp.p()));
}

Element Element::from_bytes(const Group& grp, const Bytes& b) {
  if (is_ec(grp)) {
    ec256::Point pt;
    if (!ec256::decode(pt, b.data(), b.size())) return Element{};
    return Element(grp, pt);
  }
  mpz_class v = mpz_from_bytes(b);
  if (v <= 0 || v >= grp.p()) return Element{};
  return Element(grp, std::move(v));
}

Element Element::from_point(const Group& grp, const ec256::Point& pt) {
  if (!is_ec(grp)) throw std::logic_error("Element: from_point on a mod-p group");
  return Element(grp, pt);
}

Element Element::operator*(const Element& o) const {
  check_same(o);
  if (is_ec(*grp_)) return Element(*grp_, ec256::add(pt_, o.pt_));
  return Element(*grp_, mod(v_ * o.v_, grp_->p()));
}

Element& Element::operator*=(const Element& o) {
  *this = *this * o;
  return *this;
}

Element Element::pow(const Scalar& e) const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  if (is_ec(*grp_)) return Element(*grp_, ec256::scalar_mul(pt_, e.value()));
  return Element(*grp_, powm(v_, e.value(), grp_->p()));
}

Element Element::pow_u64(std::uint64_t e) const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  if (is_ec(*grp_)) return Element(*grp_, ec256::scalar_mul_u64(pt_, e));
  mpz_class ez;
  mpz_import(ez.get_mpz_t(), 1, 1, 8, 0, 0, &e);
  return Element(*grp_, powm(v_, ez, grp_->p()));
}

Element Element::inverse() const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  if (is_ec(*grp_)) return Element(*grp_, ec256::negate(pt_));
  return Element(*grp_, invmod(v_, grp_->p()));
}

bool Element::is_identity() const {
  if (grp_ == nullptr) return false;
  if (is_ec(*grp_)) return pt_.inf != 0;
  return v_ == 1;
}

bool Element::in_subgroup() const {
  if (grp_ == nullptr) return false;
  // Cofactor-1 curve points are on-curve by construction (checked decode or
  // internal arithmetic), and "on the curve" is the whole subgroup story.
  if (is_ec(*grp_)) return true;
  return grp_->in_subgroup(v_);
}

bool Element::operator==(const Element& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) return grp_ == o.grp_;
  // v_ is a canonical value key in both backends (residue / encoding).
  return *grp_ == *o.grp_ && v_ == o.v_;
}

Bytes Element::to_bytes() const {
  const Group& grp = group();
  if (is_ec(grp)) return ec256::encode(pt_);
  return mpz_to_bytes(v_, grp.p_bytes());
}

}  // namespace dkg::crypto
