#include "crypto/element.hpp"

#include <stdexcept>

#include "crypto/multiexp.hpp"

namespace dkg::crypto {

const Group& Element::group() const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  return *grp_;
}

void Element::check_same(const Element& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) throw std::logic_error("Element: empty operand");
  if (!(*grp_ == *o.grp_)) throw std::logic_error("Element: mixed groups");
}

Element Element::identity(const Group& grp) { return Element(grp, 1); }

Element Element::generator(const Group& grp) { return Element(grp, grp.g()); }

Element Element::pedersen_h(const Group& grp) { return Element(grp, grp.h()); }

Element Element::exp_g(const Scalar& x) {
  const Group& grp = x.group();
  if (const FixedBaseTable* t = FixedBaseTable::for_g(grp)) return t->pow(x);
  return Element(grp, powm(grp.g(), x.value(), grp.p()));
}

Element Element::exp_h(const Scalar& x) {
  const Group& grp = x.group();
  if (const FixedBaseTable* t = FixedBaseTable::for_h(grp)) return t->pow(x);
  return Element(grp, powm(grp.h(), x.value(), grp.p()));
}

Element Element::from_bytes(const Group& grp, const Bytes& b) {
  mpz_class v = mpz_from_bytes(b);
  if (v <= 0 || v >= grp.p()) return Element{};
  return Element(grp, std::move(v));
}

Element Element::operator*(const Element& o) const {
  check_same(o);
  return Element(*grp_, mod(v_ * o.v_, grp_->p()));
}

Element& Element::operator*=(const Element& o) {
  *this = *this * o;
  return *this;
}

Element Element::pow(const Scalar& e) const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  return Element(*grp_, powm(v_, e.value(), grp_->p()));
}

Element Element::pow_u64(std::uint64_t e) const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  mpz_class ez;
  mpz_import(ez.get_mpz_t(), 1, 1, 8, 0, 0, &e);
  return Element(*grp_, powm(v_, ez, grp_->p()));
}

Element Element::inverse() const {
  if (grp_ == nullptr) throw std::logic_error("Element: empty");
  return Element(*grp_, invmod(v_, grp_->p()));
}

bool Element::in_subgroup() const {
  if (grp_ == nullptr) return false;
  return grp_->in_subgroup(v_);
}

bool Element::operator==(const Element& o) const {
  if (grp_ == nullptr || o.grp_ == nullptr) return grp_ == o.grp_;
  return *grp_ == *o.grp_ && v_ == o.v_;
}

Bytes Element::to_bytes() const {
  return mpz_to_bytes(v_, group().p_bytes());
}

}  // namespace dkg::crypto
