// Element: a member of the order-q subgroup of Z_p*. Commitment entries and
// public keys are Elements. Value type with the same group-tagging rules as
// Scalar.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "crypto/scalar.hpp"

namespace dkg::crypto {

class Element {
 public:
  Element() = default;

  static Element identity(const Group& grp);
  static Element generator(const Group& grp);
  /// The Pedersen second generator h.
  static Element pedersen_h(const Group& grp);
  /// g^x — the workhorse commitment operation.
  static Element exp_g(const Scalar& x);
  /// h^x.
  static Element exp_h(const Scalar& x);
  /// Decodes a fixed-width (p_bytes) encoding. Returns an empty Element on
  /// range failure. Does NOT check subgroup membership (expensive); callers
  /// handling adversarial input use `in_subgroup()` where it matters.
  static Element from_bytes(const Group& grp, const Bytes& b);

  bool empty() const { return grp_ == nullptr; }
  const Group& group() const;
  const mpz_class& value() const { return v_; }

  Element operator*(const Element& o) const;
  Element& operator*=(const Element& o);
  Element pow(const Scalar& e) const;
  /// Raise to a small non-negative integer (index powers in verify-poly).
  Element pow_u64(std::uint64_t e) const;
  Element inverse() const;

  bool is_identity() const { return grp_ != nullptr && v_ == 1; }
  bool in_subgroup() const;
  bool operator==(const Element& o) const;
  bool operator!=(const Element& o) const { return !(*this == o); }

  /// Fixed-width (group().p_bytes()) big-endian encoding.
  Bytes to_bytes() const;

 private:
  Element(const Group& grp, mpz_class v) : grp_(&grp), v_(std::move(v)) {}
  void check_same(const Element& o) const;

  // The multi-exponentiation engine (crypto/multiexp.hpp) constructs
  // Elements from raw residues it has computed itself.
  friend class FixedBaseTable;
  friend Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                          const std::vector<Scalar>& exps);
  friend Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                                std::uint64_t i, bool order_q_bases);
  friend Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                                const std::vector<const mpz_class*>& mont,
                                const MontgomeryCtx& ctx, std::uint64_t i, bool order_q_bases);

  const Group* grp_ = nullptr;
  mpz_class v_;
};

}  // namespace dkg::crypto
