// Element: a member of the prime-order group — a residue in the order-q
// subgroup of Z_p* (GroupBackend::ModP) or a secp256k1 curve point
// (GroupBackend::Ec256). Commitment entries and public keys are Elements.
// Value type with the same group-tagging rules as Scalar.
//
// Representation invariant per backend:
//  * ModP:  v_ is the canonical residue in [1, p); pt_ is unused.
//  * Ec256: pt_ is the canonical affine point (the fast representation all
//    arithmetic runs on) and v_ is the mpz view of its 33-byte compressed
//    encoding — so value() stays a stable, canonical, backend-agnostic VALUE
//    KEY (equality, FixedBaseTable/cache keys, to_bytes) for both backends.
//    value() of an Ec256 element is NOT a residue to do modular math with.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "crypto/ec256.hpp"
#include "crypto/scalar.hpp"

namespace dkg::crypto {

class Element {
 public:
  Element() = default;

  static Element identity(const Group& grp);
  static Element generator(const Group& grp);
  /// The Pedersen second generator h.
  static Element pedersen_h(const Group& grp);
  /// g^x — the workhorse commitment operation.
  static Element exp_g(const Scalar& x);
  /// h^x.
  static Element exp_h(const Scalar& x);
  /// Decodes a fixed-width (element_bytes) encoding. Returns an empty
  /// Element on failure. ModP checks the residue range only (subgroup
  /// membership is expensive; callers handling adversarial input use
  /// `in_subgroup()` where it matters); Ec256 decoding is fully checked —
  /// on-curve, canonical x, strict identity form — because on a cofactor-1
  /// curve that IS the subgroup check.
  static Element from_bytes(const Group& grp, const Bytes& b);
  /// Ec256 engine entry: wraps a curve point the caller computed itself
  /// (multiexp / comb / ladder results). Must be on the curve.
  static Element from_point(const Group& grp, const ec256::Point& pt);

  bool empty() const { return grp_ == nullptr; }
  const Group& group() const;
  const mpz_class& value() const { return v_; }
  /// Ec256 only: the affine point (the representation arithmetic uses).
  const ec256::Point& point() const { return pt_; }

  Element operator*(const Element& o) const;
  Element& operator*=(const Element& o);
  Element pow(const Scalar& e) const;
  /// Raise to a small non-negative integer (index powers in verify-poly).
  Element pow_u64(std::uint64_t e) const;
  Element inverse() const;

  bool is_identity() const;
  bool in_subgroup() const;
  bool operator==(const Element& o) const;
  bool operator!=(const Element& o) const { return !(*this == o); }

  /// Fixed-width (group().element_bytes()) encoding: big-endian residue or
  /// compressed point.
  Bytes to_bytes() const;

 private:
  Element(const Group& grp, mpz_class v) : grp_(&grp), v_(std::move(v)) {}
  Element(const Group& grp, const ec256::Point& pt);
  void check_same(const Element& o) const;

  // The multi-exponentiation engine (crypto/multiexp.hpp) constructs
  // Elements from raw residues it has computed itself.
  friend class FixedBaseTable;
  friend Element multiexp(const Group& grp, const std::vector<const Element*>& bases,
                          const std::vector<Scalar>& exps);
  friend Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                                std::uint64_t i, bool order_q_bases);
  friend Element multiexp_index(const Group& grp, const std::vector<const Element*>& bases,
                                const std::vector<const mpz_class*>& mont,
                                const MontgomeryCtx& ctx, std::uint64_t i, bool order_q_bases);

  const Group* grp_ = nullptr;
  mpz_class v_;
  ec256::Point pt_;  // Ec256 backend only (see header comment)
};

}  // namespace dkg::crypto
