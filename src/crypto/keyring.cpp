#include "crypto/keyring.hpp"

#include <stdexcept>

namespace dkg::crypto {

std::shared_ptr<const Keyring> Keyring::generate(const Group& grp, std::size_t n,
                                                 std::uint64_t seed) {
  Drbg rng(seed);
  Drbg keys = rng.fork("keyring");
  std::vector<KeyPair> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pairs.push_back(schnorr_keygen(grp, keys));
  return std::shared_ptr<const Keyring>(new Keyring(grp, std::move(pairs)));
}

const Element& Keyring::public_key(std::uint32_t node) const {
  if (node == 0 || node > pairs_.size()) throw std::out_of_range("Keyring: bad node index");
  return pairs_[node - 1].pk;
}

const KeyPair& Keyring::key_pair(std::uint32_t node) const {
  if (node == 0 || node > pairs_.size()) throw std::out_of_range("Keyring: bad node index");
  return pairs_[node - 1];
}

Signature Keyring::sign_as(std::uint32_t node, const Bytes& msg) const {
  return schnorr_sign(key_pair(node), msg);
}

const FixedBaseTable* Keyring::table_for(std::uint32_t node) const {
  return tables_.for_slot(node - 1, *grp_, pairs_[node - 1].pk);
}

bool Keyring::verify_from(std::uint32_t node, const Bytes& msg, const Signature& sig) const {
  if (node == 0 || node > pairs_.size()) return false;
  const bool use_cache = sig_cache_enabled();
  Bytes key;
  if (use_cache) {
    key = VerifiedSigCache::key(*grp_, node, msg, sig);
    if (cache_.contains(key)) {
      sig_stats_count_cache_hit();
      return true;
    }
    sig_stats_count_cache_miss();
  }
  if (!schnorr_verify(pairs_[node - 1].pk, msg, sig, table_for(node))) return false;
  if (use_cache) cache_.insert(key);
  return true;
}

bool Keyring::verify_many(const std::vector<SignerRef>& sigs, const Bytes& payload,
                          std::vector<std::uint32_t>* bad) const {
  bool all = true;
  const bool use_cache = sig_cache_enabled();
  // Misses collected for one batch pass; parallel arrays keep the cache key
  // paired with its check so positives are recorded under the right digest.
  std::vector<SigCheck> checks;
  std::vector<Bytes> keys;
  std::vector<std::uint32_t> signers;
  for (const SignerRef& ref : sigs) {
    if (ref.signer == 0 || ref.signer > pairs_.size() || ref.sig == nullptr) {
      all = false;
      if (bad != nullptr) bad->push_back(ref.signer);
      continue;
    }
    Bytes key;
    if (use_cache) {
      key = VerifiedSigCache::key(*grp_, ref.signer, payload, *ref.sig);
      if (cache_.contains(key)) {
        sig_stats_count_cache_hit();
        continue;
      }
      sig_stats_count_cache_miss();
    }
    checks.push_back(SigCheck{&pairs_[ref.signer - 1].pk, &payload, ref.sig,
                              table_for(ref.signer)});
    keys.push_back(std::move(key));
    signers.push_back(ref.signer);
  }

  std::vector<std::size_t> bad_idx;
  if (sig_batch_enabled() && checks.size() >= 2) {
    if (!schnorr_verify_batch(*grp_, checks, &bad_idx)) all = false;
  } else {
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (!schnorr_verify(*checks[i].pk, *checks[i].msg, *checks[i].sig, checks[i].pk_table)) {
        bad_idx.push_back(i);
        all = false;
      }
    }
  }
  std::vector<bool> failed(checks.size(), false);
  for (std::size_t i : bad_idx) {
    failed[i] = true;
    if (bad != nullptr) bad->push_back(signers[i]);
  }
  if (use_cache) {
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (!failed[i]) cache_.insert(keys[i]);
    }
  }
  return all;
}

std::shared_ptr<const Keyring> Keyring::with_added_node(std::uint64_t seed) const {
  Drbg rng(seed);
  Drbg keys = rng.fork("keyring/added");
  std::vector<KeyPair> pairs = pairs_;
  pairs.push_back(schnorr_keygen(*grp_, keys));
  return std::shared_ptr<const Keyring>(new Keyring(*grp_, std::move(pairs)));
}

}  // namespace dkg::crypto
