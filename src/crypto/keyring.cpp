#include "crypto/keyring.hpp"

#include <stdexcept>

namespace dkg::crypto {

std::shared_ptr<const Keyring> Keyring::generate(const Group& grp, std::size_t n,
                                                 std::uint64_t seed) {
  Drbg rng(seed);
  Drbg keys = rng.fork("keyring");
  std::vector<KeyPair> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pairs.push_back(schnorr_keygen(grp, keys));
  return std::shared_ptr<const Keyring>(new Keyring(grp, std::move(pairs)));
}

const Element& Keyring::public_key(std::uint32_t node) const {
  if (node == 0 || node > pairs_.size()) throw std::out_of_range("Keyring: bad node index");
  return pairs_[node - 1].pk;
}

const KeyPair& Keyring::key_pair(std::uint32_t node) const {
  if (node == 0 || node > pairs_.size()) throw std::out_of_range("Keyring: bad node index");
  return pairs_[node - 1];
}

Signature Keyring::sign_as(std::uint32_t node, const Bytes& msg) const {
  return schnorr_sign(key_pair(node), msg);
}

bool Keyring::verify_from(std::uint32_t node, const Bytes& msg, const Signature& sig) const {
  if (node == 0 || node > pairs_.size()) return false;
  return schnorr_verify(pairs_[node - 1].pk, msg, sig);
}

std::shared_ptr<const Keyring> Keyring::with_added_node(std::uint64_t seed) const {
  Drbg rng(seed);
  Drbg keys = rng.fork("keyring/added");
  std::vector<KeyPair> pairs = pairs_;
  pairs.push_back(schnorr_keygen(*grp_, keys));
  return std::shared_ptr<const Keyring>(new Keyring(*grp_, std::move(pairs)));
}

}  // namespace dkg::crypto
