// Wiped-on-free byte storage for symmetric secret material (DRBG seeds and
// key state, hash inputs during nonce derivation), plus the allocator and
// test/ctcheck plumbing shared with SecretScalar (crypto/secret.hpp). Split
// from secret.hpp so low-level headers (drbg) can hold secret buffers
// without a circular include through scalar.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace dkg::crypto {

// --- ctcheck poisoning hooks ------------------------------------------------
// No-ops unless compiled with -DDKG_CTCHECK and a checker backend (valgrind
// client requests or MSan) is available; see secret.cpp.
void ct_poison(void* p, std::size_t len) noexcept;
void ct_unpoison(void* p, std::size_t len) noexcept;

// --- scraping-allocator plumbing --------------------------------------------

/// Test hook: called with the contents of every secret buffer at the moment
/// it is freed, BEFORE the wipe. tests/test_secret_hygiene.cpp installs one
/// to prove that (a) all secret frees route through the wiping allocator and
/// (b) the wipe actually happens before memory returns to the heap.
using SecretScrapeHook = void (*)(const void* data, std::size_t len);
void set_secret_scrape_hook(SecretScrapeHook hook) noexcept;

void* secret_alloc(std::size_t len);
void secret_free(void* p, std::size_t len) noexcept;

/// Allocator used by all secret-material containers: frees are reported to
/// the scrape hook (tests) and wiped before the memory returns to the heap.
template <class T>
struct SecretAllocator {
  using value_type = T;

  SecretAllocator() noexcept = default;
  template <class U>
  SecretAllocator(const SecretAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) { return static_cast<T*>(secret_alloc(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { secret_free(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const SecretAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const SecretAllocator<U>&) const noexcept {
    return false;
  }
};

// --- SecretBytes ------------------------------------------------------------

/// A byte buffer whose storage is wiped before release. Used for DRBG seed
/// material and for assembling hash inputs that contain secrets.
class SecretBytes {
 public:
  SecretBytes() = default;
  explicit SecretBytes(std::size_t len) : v_(len, 0) {}
  explicit SecretBytes(const Bytes& b) : v_(b.begin(), b.end()) {}

  std::uint8_t* data() { return v_.data(); }
  const std::uint8_t* data() const { return v_.data(); }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  void append(const void* p, std::size_t len);
  void append(const Bytes& b) { append(b.data(), b.size()); }
  void append(const SecretBytes& b) { append(b.data(), b.size()); }
  /// Appends a big-endian u32 (Writer::u32-compatible framing).
  void append_u32(std::uint32_t v);
  /// Appends Writer::blob framing: u32 length then the bytes.
  void append_blob(const void* p, std::size_t len);
  void append_blob(const Bytes& b) { append_blob(b.data(), b.size()); }
  /// Appends Writer::str framing (identical to blob for raw bytes).
  void append_str(std::string_view s) { append_blob(s.data(), s.size()); }

  /// Declassifies to a plain heap Bytes copy (SEC01-audited).
  Bytes reveal() const { return Bytes(v_.begin(), v_.end()); }

 private:
  std::vector<std::uint8_t, SecretAllocator<std::uint8_t>> v_;
};

}  // namespace dkg::crypto
