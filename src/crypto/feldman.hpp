// Feldman commitments (paper §1, §3): the dealer publishes C_{jl} = g^{f_jl}
// for the symmetric bivariate dealing polynomial. Receivers check their row
// polynomial (verify-poly) and cross-points (verify-point) against C.
//
// Two shapes are provided:
//  * FeldmanMatrix  — the (t+1)x(t+1) matrix used during Sh;
//  * FeldmanVector  — a univariate commitment V_l = g^{a_l}; the long-term
//    verification data for a share set (row 0 of a matrix, or the Lagrange
//    combination produced by share renewal / node addition, §5.2/§6.2).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/bipolynomial.hpp"
#include "crypto/element.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/polynomial.hpp"
#include "crypto/wire_memo.hpp"

namespace dkg::crypto {

class FeldmanVector;

/// Per-commitment grid of ec256 share values g^{f(a, b)}, grown by bivariate
/// finite differences in Jacobian coordinates (defined in feldman.cpp). The
/// curve backend's verify-point / verify-poly / eval-commit read from it
/// instead of re-running an index-power product per check.
class EcShareGrid;

/// Value-semantic slot holding the lazily built grid — same copy/move
/// semantics and rationale as MontDomainBases: copies and assignments start
/// empty (the owner's entries were duplicated), the grid is built at most
/// once behind a mutex, and its address stays stable for the owner's
/// lifetime.
class EcGridSlot {
 public:
  EcGridSlot();
  EcGridSlot(const EcGridSlot&) noexcept;
  EcGridSlot(EcGridSlot&&) noexcept;
  EcGridSlot& operator=(const EcGridSlot&) noexcept;
  EcGridSlot& operator=(EcGridSlot&&) noexcept;
  ~EcGridSlot();

  /// The grid over `entries` (built on first use). `entries` must be the
  /// owning commitment's immutable row-major (t+1)x(t+1) entry vector, the
  /// same on every call.
  EcShareGrid& get(std::size_t t, const std::vector<Element>& entries) const;

 private:
  mutable std::mutex mu_;
  mutable std::unique_ptr<EcShareGrid> grid_;
};

class FeldmanMatrix {
 public:
  /// Commit to a symmetric bivariate polynomial: C_{jl} = g^{f_jl}.
  static FeldmanMatrix commit(const BiPolynomial& f);
  /// Identity matrix (commitment to the zero polynomial) — the neutral
  /// element for entrywise products when aggregating DKG contributions.
  static FeldmanMatrix identity(const Group& grp, std::size_t t);
  /// From explicit row-major entries (t+1)^2 — used by the AVSS baseline,
  /// whose dealing polynomial is not symmetric.
  static FeldmanMatrix from_entries(std::size_t t, std::vector<Element> entries);

  std::size_t degree() const { return t_; }
  const Group& group() const { return entries_.front().group(); }
  const Element& entry(std::size_t j, std::size_t l) const;

  /// Paper predicate verify-poly(C, i, a): g^{a_l} == prod_j C_{jl}^{i^j}.
  bool verify_poly(std::uint64_t i, const Polynomial& a) const;
  /// Column variant for non-symmetric matrices (AVSS): checks b(x) = f(x, i)
  /// via g^{b_j} == prod_l C_{jl}^{i^l}.
  bool verify_poly_col(std::uint64_t i, const Polynomial& b) const;
  /// Column sub-range [l_lo, l_hi) of verify_poly: the t+1 column checks are
  /// independent, so the verify pool splits them across workers and ANDs the
  /// range verdicts — same result as verify_poly (which merely early-exits).
  bool verify_poly_range(std::uint64_t i, const Polynomial& a, std::size_t l_lo,
                         std::size_t l_hi) const;
  /// Row sub-range [j_lo, j_hi) of verify_poly_col.
  bool verify_poly_col_range(std::uint64_t i, const Polynomial& b, std::size_t j_lo,
                             std::size_t j_hi) const;
  /// Paper predicate verify-point(C, i, m, alpha): alpha == f(m, i).
  bool verify_point(std::uint64_t i, std::uint64_t m, const Scalar& alpha) const;
  /// Commitment to the evaluation f(m, i) = prod_{jl} C_{jl}^{m^j i^l}.
  Element eval_commit(std::uint64_t m, std::uint64_t i) const;

  /// Projection onto the row polynomial a_i(x) = f(x, i): entry j is
  /// prod_l C_{jl}^{i^l}, so verify-point(i, m, alpha) for FIXED i is
  /// row_commitment(i).verify_share(m, alpha) — (t+1) exponentiations per
  /// point instead of (t+1)^2. A receiver checks n points against the same
  /// (C, i), so the VSS layers cache this projection per commitment
  /// (identical results: the projected entries ARE the hoisted inner
  /// products of eval_commit).
  FeldmanVector row_commitment(std::uint64_t i) const;
  /// Projection onto the column polynomial b_m(y) = f(m, y): entry l is
  /// prod_j C_{jl}^{m^j}. The fixed-m mirror of row_commitment (the two
  /// coincide for the symmetric matrices of HybridVSS, not for AVSS).
  FeldmanVector col_commitment(std::uint64_t m) const;
  /// Entries [j_lo, j_hi) of row_commitment(i): each entry is an independent
  /// index-power product, so the pool computes disjoint ranges concurrently
  /// and reassembles the full vector (identical entries, identical order).
  std::vector<Element> row_commitment_entries(std::uint64_t i, std::size_t j_lo,
                                              std::size_t j_hi) const;
  /// Entries [l_lo, l_hi) of col_commitment(m).
  std::vector<Element> col_commitment_entries(std::uint64_t m, std::size_t l_lo,
                                              std::size_t l_hi) const;

  /// g^s where s = f(0,0) — the public key fragment this dealing carries.
  const Element& c00() const { return entry(0, 0); }

  /// Entrywise product: commitment to the sum of the dealing polynomials
  /// (DKG share aggregation, Fig 2 "C_{p,q} <- prod (C_d)_{p,q}").
  FeldmanMatrix operator*(const FeldmanMatrix& o) const;

  /// Row j=* at l=0: the univariate commitment to f(x, 0), i.e. the
  /// verification vector for shares s_i = f(i, 0).
  FeldmanVector share_vector() const;

  /// Canonical encoding, serialized ONCE per commitment object (thread-safe
  /// memo) and shared by reference by every message that carries this
  /// commitment — the wire layer's payload-interning primitive. The returned
  /// reference is stable for this object's lifetime.
  const Bytes& canonical_bytes() const;
  /// A fresh copy of canonical_bytes() (kept for value-semantic callers).
  Bytes to_bytes() const { return canonical_bytes(); }
  /// SHA-256 of the canonical encoding; identifies C in echo/ready messages
  /// and signs ready_sig_payload. Memoized together with canonical_bytes().
  const Bytes& digest() const;
  /// Deserializes and validates shape. Subgroup membership of entries is
  /// checked when `check_subgroup` (costly; used in adversarial tests).
  static std::optional<FeldmanMatrix> from_bytes(const Group& grp, const Bytes& b,
                                                 std::size_t expect_t,
                                                 bool check_subgroup = false);
  /// The deserialization path for adversarial input (VSS/DKG message
  /// handlers): additionally rejects matrices with entries outside the
  /// order-q subgroup, which plain from_bytes skips per the
  /// Element::from_bytes caveat.
  static std::optional<FeldmanMatrix> from_bytes_checked(const Group& grp, const Bytes& b,
                                                         std::size_t expect_t);
  /// Digest-keyed decode cache over from_bytes_checked: the n receivers of
  /// one broadcast matrix share ONE decode, one MontDomainBases entry-image
  /// cache and one canonical-bytes/digest memo instead of n of each. Keyed
  /// by sha256 of the exact byte string; a hit is revalidated against the
  /// SAME group instance (by identity — cached entries reference the
  /// decode-time Group, so the static Group singletons share while ad-hoc
  /// groups decode fresh) and expect_t. Returns nullptr exactly when
  /// from_bytes_checked would. Thread-safe (including concurrent first
  /// touch); bounded FIFO.
  static std::shared_ptr<const FeldmanMatrix> from_bytes_interned(const Group& grp,
                                                                  const Bytes& b,
                                                                  std::size_t expect_t);

  bool operator==(const FeldmanMatrix& o) const { return t_ == o.t_ && entries_ == o.entries_; }

  /// Whether every entry is known to lie in the order-q subgroup: true for
  /// dealer-built commitments, subgroup-checked decodes and products of
  /// such matrices. Lets the verify paths take the Horner index-product
  /// chain for any index (multiexp.hpp `order_q_bases`).
  bool order_q_entries() const { return order_q_; }

 private:
  FeldmanMatrix(std::size_t t, std::vector<Element> entries, bool order_q = false)
      : t_(t), entries_(std::move(entries)), order_q_(order_q) {}

  Bytes encode() const;  // the canonical wire encoding (uncached)

  std::size_t t_;
  std::vector<Element> entries_;  // row-major (t+1)x(t+1)
  bool order_q_ = false;          // see order_q_entries()
  // A commitment is one shared object checked by every receiver; this keeps
  // its entries in the REDC domain across all those verify-poly/projection
  // calls (built on first use, invisible in results and in operator==).
  MontDomainBases mont_;
  // Likewise for the wire side: one canonical encoding + digest shared by
  // every message/signature that carries this commitment.
  WireMemo wire_;
  // ec256 only: the share-value grid behind the curve backend's verify
  // paths (built on first EC verify; invisible in results and operator==).
  EcGridSlot ec_grid_;
};

class FeldmanVector {
 public:
  /// V_l = g^{a_l} for a univariate polynomial a.
  static FeldmanVector commit(const Polynomial& a);
  /// `order_q_entries = true` asserts every entry lies in the order-q
  /// subgroup (see FeldmanMatrix::order_q_entries) — only pass it for
  /// entries that are subgroup-checked or products/powers of such.
  explicit FeldmanVector(std::vector<Element> entries, bool order_q_entries = false);

  std::size_t degree() const { return entries_.size() - 1; }
  const Group& group() const { return entries_.front().group(); }
  const Element& entry(std::size_t l) const { return entries_.at(l); }

  /// g^{a(i)} = prod_l V_l^{i^l}.
  Element eval_commit(std::uint64_t i) const;
  /// Checks g^{share} == eval_commit(i).
  bool verify_share(std::uint64_t i, const Scalar& share) const;
  /// g^{a(0)} — the group public key under this commitment.
  const Element& c0() const { return entries_.front(); }

  /// Batch variant of verify_share: folds every (i, share) check into one
  /// multi-exponentiation via a random linear combination with
  /// `rng`-derived coefficients. True iff all shares verify (a false result
  /// is certain; a true result is wrong with probability <= 1/q — fall back
  /// to per-share verify_share to identify the offender).
  bool verify_share_batch(const std::vector<std::pair<std::uint64_t, Scalar>>& shares,
                          Drbg& rng) const;
  /// Sub-range [lo, hi) of a batch check, with its own coefficient stream —
  /// the pool's chunked entry point. Each chunk is a complete RLC check of
  /// its shares, so the AND over disjoint chunks accepts exactly the honest
  /// inputs verify_share_batch accepts (both sides are whp-sound screens
  /// backed by the same per-share fallback on reject).
  bool verify_share_batch_range(const std::vector<std::pair<std::uint64_t, Scalar>>& shares,
                                std::size_t lo, std::size_t hi, Drbg& rng) const;

  /// See FeldmanMatrix::canonical_bytes / digest.
  const Bytes& canonical_bytes() const;
  Bytes to_bytes() const { return canonical_bytes(); }
  const Bytes& digest() const;
  static std::optional<FeldmanVector> from_bytes(const Group& grp, const Bytes& b,
                                                 std::size_t expect_t,
                                                 bool check_subgroup = false);
  /// See FeldmanMatrix::from_bytes_checked.
  static std::optional<FeldmanVector> from_bytes_checked(const Group& grp, const Bytes& b,
                                                         std::size_t expect_t);

  bool operator==(const FeldmanVector& o) const { return entries_ == o.entries_; }

  /// See FeldmanMatrix::order_q_entries.
  bool order_q_entries() const { return order_q_; }

 private:
  Bytes encode() const;  // the canonical wire encoding (uncached)

  std::vector<Element> entries_;
  bool order_q_ = false;  // see order_q_entries()
  MontDomainBases mont_;  // see FeldmanMatrix::mont_
  WireMemo wire_;         // see FeldmanMatrix::wire_
};

/// One row-polynomial check for verify_poly_batch: does `row` match
/// commitment's row `index` (the paper's verify-poly predicate)?
struct RowCheck {
  const FeldmanMatrix* commitment = nullptr;
  std::uint64_t index = 0;
  const Polynomial* row = nullptr;
};

/// Folds k verify-poly checks into ONE multi-exponentiation via a random
/// linear combination with `rng`-derived coefficients: with r_{d,l} random,
///   g^{sum_{d,l} r_{d,l} a_d[l]} == prod_{d,j,l} C_d[j,l]^{r_{d,l} i_d^j}.
/// True iff every dealing verifies (whp); on false, at least one check is
/// certainly bad — rerun per-dealing verify_poly to identify which.
/// Degenerate inputs (empty set) are vacuously true; degree mismatches fail
/// deterministically, exactly as verify_poly would.
bool verify_poly_batch(const std::vector<RowCheck>& checks, Drbg& rng);

}  // namespace dkg::crypto
