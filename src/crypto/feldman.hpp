// Feldman commitments (paper §1, §3): the dealer publishes C_{jl} = g^{f_jl}
// for the symmetric bivariate dealing polynomial. Receivers check their row
// polynomial (verify-poly) and cross-points (verify-point) against C.
//
// Two shapes are provided:
//  * FeldmanMatrix  — the (t+1)x(t+1) matrix used during Sh;
//  * FeldmanVector  — a univariate commitment V_l = g^{a_l}; the long-term
//    verification data for a share set (row 0 of a matrix, or the Lagrange
//    combination produced by share renewal / node addition, §5.2/§6.2).
#pragma once

#include <optional>
#include <vector>

#include "crypto/bipolynomial.hpp"
#include "crypto/element.hpp"
#include "crypto/polynomial.hpp"

namespace dkg::crypto {

class FeldmanVector;

class FeldmanMatrix {
 public:
  /// Commit to a symmetric bivariate polynomial: C_{jl} = g^{f_jl}.
  static FeldmanMatrix commit(const BiPolynomial& f);
  /// Identity matrix (commitment to the zero polynomial) — the neutral
  /// element for entrywise products when aggregating DKG contributions.
  static FeldmanMatrix identity(const Group& grp, std::size_t t);
  /// From explicit row-major entries (t+1)^2 — used by the AVSS baseline,
  /// whose dealing polynomial is not symmetric.
  static FeldmanMatrix from_entries(std::size_t t, std::vector<Element> entries);

  std::size_t degree() const { return t_; }
  const Group& group() const { return entries_.front().group(); }
  const Element& entry(std::size_t j, std::size_t l) const;

  /// Paper predicate verify-poly(C, i, a): g^{a_l} == prod_j C_{jl}^{i^j}.
  bool verify_poly(std::uint64_t i, const Polynomial& a) const;
  /// Column variant for non-symmetric matrices (AVSS): checks b(x) = f(x, i)
  /// via g^{b_j} == prod_l C_{jl}^{i^l}.
  bool verify_poly_col(std::uint64_t i, const Polynomial& b) const;
  /// Paper predicate verify-point(C, i, m, alpha): alpha == f(m, i).
  bool verify_point(std::uint64_t i, std::uint64_t m, const Scalar& alpha) const;
  /// Commitment to the evaluation f(m, i) = prod_{jl} C_{jl}^{m^j i^l}.
  Element eval_commit(std::uint64_t m, std::uint64_t i) const;

  /// g^s where s = f(0,0) — the public key fragment this dealing carries.
  const Element& c00() const { return entry(0, 0); }

  /// Entrywise product: commitment to the sum of the dealing polynomials
  /// (DKG share aggregation, Fig 2 "C_{p,q} <- prod (C_d)_{p,q}").
  FeldmanMatrix operator*(const FeldmanMatrix& o) const;

  /// Row j=* at l=0: the univariate commitment to f(x, 0), i.e. the
  /// verification vector for shares s_i = f(i, 0).
  FeldmanVector share_vector() const;

  Bytes to_bytes() const;
  /// SHA-256 of the canonical encoding; identifies C in echo/ready messages.
  Bytes digest() const;
  /// Deserializes and validates shape. Subgroup membership of entries is
  /// checked when `check_subgroup` (costly; used in adversarial tests).
  static std::optional<FeldmanMatrix> from_bytes(const Group& grp, const Bytes& b,
                                                 std::size_t expect_t,
                                                 bool check_subgroup = false);

  bool operator==(const FeldmanMatrix& o) const { return t_ == o.t_ && entries_ == o.entries_; }

 private:
  FeldmanMatrix(std::size_t t, std::vector<Element> entries)
      : t_(t), entries_(std::move(entries)) {}

  std::size_t t_;
  std::vector<Element> entries_;  // row-major (t+1)x(t+1)
};

class FeldmanVector {
 public:
  /// V_l = g^{a_l} for a univariate polynomial a.
  static FeldmanVector commit(const Polynomial& a);
  explicit FeldmanVector(std::vector<Element> entries);

  std::size_t degree() const { return entries_.size() - 1; }
  const Group& group() const { return entries_.front().group(); }
  const Element& entry(std::size_t l) const { return entries_.at(l); }

  /// g^{a(i)} = prod_l V_l^{i^l}.
  Element eval_commit(std::uint64_t i) const;
  /// Checks g^{share} == eval_commit(i).
  bool verify_share(std::uint64_t i, const Scalar& share) const;
  /// g^{a(0)} — the group public key under this commitment.
  const Element& c0() const { return entries_.front(); }

  Bytes to_bytes() const;
  Bytes digest() const;
  static std::optional<FeldmanVector> from_bytes(const Group& grp, const Bytes& b,
                                                 std::size_t expect_t);

  bool operator==(const FeldmanVector& o) const { return entries_ == o.entries_; }

 private:
  std::vector<Element> entries_;
};

}  // namespace dkg::crypto
