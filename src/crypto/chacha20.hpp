// ChaCha20 block function (RFC 8439) — the keystream generator behind the
// library's deterministic random bit generator.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dkg::crypto {

/// Computes one 64-byte ChaCha20 block.
/// `key` is 32 bytes, `nonce` 12 bytes, `counter` the 32-bit block counter.
std::array<std::uint8_t, 64> chacha20_block(const std::array<std::uint8_t, 32>& key,
                                            const std::array<std::uint8_t, 12>& nonce,
                                            std::uint32_t counter);

}  // namespace dkg::crypto
