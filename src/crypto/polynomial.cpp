#include "crypto/polynomial.hpp"

#include <stdexcept>

#include "common/serialize.hpp"

namespace dkg::crypto {

Polynomial::Polynomial(const Group& grp, std::size_t degree)
    : coeffs_(degree + 1, SecretScalar::zero(grp)) {}

Polynomial::Polynomial(std::vector<SecretScalar> coeffs) : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) throw std::invalid_argument("Polynomial: no coefficients");
}

Polynomial::Polynomial(const std::vector<Scalar>& coeffs) {
  if (coeffs.empty()) throw std::invalid_argument("Polynomial: no coefficients");
  coeffs_.reserve(coeffs.size());
  for (const Scalar& c : coeffs) coeffs_.push_back(SecretScalar::from_scalar(c));
}

Polynomial Polynomial::random(const Group& grp, std::size_t degree, Drbg& rng) {
  std::vector<SecretScalar> c;
  c.reserve(degree + 1);
  for (std::size_t j = 0; j <= degree; ++j) c.push_back(SecretScalar::random(grp, rng));
  return Polynomial(std::move(c));
}

Polynomial Polynomial::random_with_constant(const Scalar& c0, std::size_t degree, Drbg& rng) {
  return random_with_constant(SecretScalar::from_scalar(c0), degree, rng);
}

Polynomial Polynomial::random_with_constant(const SecretScalar& c0, std::size_t degree,
                                            Drbg& rng) {
  Polynomial p = random(c0.group(), degree, rng);
  p.coeff(0) = c0;
  return p;
}

SecretScalar Polynomial::eval(const Scalar& x) const {
  SecretScalar acc = coeffs_.back();
  for (std::size_t j = coeffs_.size() - 1; j-- > 0;) {
    acc = acc * x + coeffs_[j];
  }
  return acc;
}

SecretScalar Polynomial::eval_at(std::uint64_t x) const {
  return eval(Scalar::from_u64(group(), x));
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  if (coeffs_.size() != o.coeffs_.size()) throw std::invalid_argument("Polynomial: degree mismatch");
  std::vector<SecretScalar> c;
  c.reserve(coeffs_.size());
  for (std::size_t j = 0; j < coeffs_.size(); ++j) c.push_back(coeffs_[j] + o.coeffs_[j]);
  return Polynomial(std::move(c));
}

Bytes Polynomial::to_bytes() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(degree()));
  // reveal-ok: canonical wire encoding of a dealt row; the caller addresses
  // it to the row's owner (vss send / avss send).
  for (const SecretScalar& c : coeffs_) w.raw(c.reveal_bytes());
  return w.take();
}

Polynomial Polynomial::from_bytes(const Group& grp, const Bytes& b, std::size_t expect_degree) {
  Reader r(b);
  std::uint32_t deg = r.u32();
  if (deg != expect_degree) throw std::out_of_range("Polynomial: unexpected degree");
  std::vector<SecretScalar> c;
  c.reserve(deg + 1);
  for (std::uint32_t j = 0; j <= deg; ++j) {
    Bytes sb(grp.q_bytes());
    for (auto& byte : sb) byte = r.u8();
    c.push_back(SecretScalar::from_bytes(grp, sb));
  }
  return Polynomial(std::move(c));
}

bool Polynomial::operator==(const Polynomial& o) const {
  if (coeffs_.size() != o.coeffs_.size()) return false;
  bool eq = true;
  for (std::size_t j = 0; j < coeffs_.size(); ++j) eq &= coeffs_[j].ct_eq(o.coeffs_[j]);
  return eq;
}

}  // namespace dkg::crypto
