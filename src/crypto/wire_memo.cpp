#include "crypto/wire_memo.hpp"

#include "crypto/sha256.hpp"

namespace dkg::crypto {

const WireMemo::Interned& WireMemo::intern(const Encoder& encode) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!interned_) {
    auto built = std::make_unique<Interned>();
    built->bytes = encode();
    built->digest = sha256(built->bytes);
    interned_ = std::move(built);
  }
  return *interned_;
}

const Bytes& WireMemo::bytes(const Encoder& encode) const { return intern(encode).bytes; }

const Bytes& WireMemo::digest(const Encoder& encode) const { return intern(encode).digest; }

void WireMemo::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  interned_.reset();
}

}  // namespace dkg::crypto
