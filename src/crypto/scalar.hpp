// Scalar: an element of Z_q, the exponent field of a Schnorr group.
// Shares, polynomial coefficients, signature values and Lagrange
// coefficients are all Scalars. Value type; every Scalar remembers its
// group, and mixing groups is a programming error (throws).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/group.hpp"

namespace dkg::crypto {

class Scalar {
 public:
  Scalar() = default;  // "empty" scalar; using it in arithmetic throws.

  static Scalar zero(const Group& grp);
  static Scalar one(const Group& grp);
  static Scalar from_u64(const Group& grp, std::uint64_t v);
  static Scalar from_mpz(const Group& grp, const mpz_class& v);  // reduced mod q
  /// Uniform in [0, q).
  static Scalar random(const Group& grp, Drbg& rng);
  /// Canonical fixed-width decode; reduces mod q.
  static Scalar from_bytes(const Group& grp, const Bytes& b);
  /// Hash arbitrary bytes into Z_q (for signature challenges).
  static Scalar hash_to_scalar(const Group& grp, const Bytes& data);

  bool empty() const { return grp_ == nullptr; }
  const Group& group() const;
  const mpz_class& value() const { return v_; }

  Scalar operator+(const Scalar& o) const;
  Scalar operator-(const Scalar& o) const;
  Scalar operator*(const Scalar& o) const;
  Scalar& operator+=(const Scalar& o);
  Scalar& operator*=(const Scalar& o);
  Scalar negate() const;
  /// Multiplicative inverse; throws std::domain_error on zero.
  Scalar inverse() const;

  bool is_zero() const { return grp_ != nullptr && v_ == 0; }
  bool operator==(const Scalar& o) const;
  bool operator!=(const Scalar& o) const { return !(*this == o); }

  /// Fixed-width (group().q_bytes()) big-endian encoding.
  Bytes to_bytes() const;

 private:
  Scalar(const Group& grp, mpz_class v) : grp_(&grp), v_(std::move(v)) {}
  void check_same(const Scalar& o) const;

  const Group* grp_ = nullptr;
  mpz_class v_;
};

}  // namespace dkg::crypto
