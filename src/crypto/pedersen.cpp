#include "crypto/pedersen.hpp"

#include "common/serialize.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/sha256.hpp"

namespace dkg::crypto {

PedersenMatrix PedersenMatrix::commit(const PedersenDealing& d) {
  std::size_t t = d.f.degree();
  if (d.f_prime.degree() != t) throw std::invalid_argument("PedersenMatrix: degree mismatch");
  std::vector<Element> entries;
  entries.reserve((t + 1) * (t + 1));
  // Dealer-side: both secret exponents run through constant-time commit_to.
  const Element h = Element::pedersen_h(d.f.group());
  for (std::size_t j = 0; j <= t; ++j) {
    for (std::size_t l = 0; l <= t; ++l) {
      entries.push_back(d.f.coeff(j, l).commit_to() * d.f_prime.coeff(j, l).commit_to(h));
    }
  }
  return PedersenMatrix(t, std::move(entries));
}

const Element& PedersenMatrix::entry(std::size_t j, std::size_t l) const {
  return entries_.at(j * (t_ + 1) + l);
}

bool PedersenMatrix::verify_poly(std::uint64_t i, const Polynomial& a,
                                 const Polynomial& a_prime) const {
  if (a.degree() != t_ || a_prime.degree() != t_) return false;
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_));
  for (std::size_t l = 0; l <= t_; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: verify-poly re-derives public commitments of rows this node
    // already holds; receiver-local verification stays on the fast engine.
    Element lhs = Element::exp_g(a.coeff(l).reveal()) * Element::exp_h(a_prime.coeff(l).reveal());
    if (lhs != col.product(i)) return false;
  }
  return true;
}

bool PedersenMatrix::verify_poly_range(std::uint64_t i, const Polynomial& a,
                                       const Polynomial& a_prime, std::size_t l_lo,
                                       std::size_t l_hi) const {
  if (a.degree() != t_ || a_prime.degree() != t_) return false;
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_));
  for (std::size_t l = l_lo; l < l_hi; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    // reveal-ok: range split of verify_poly (see verify_poly above).
    Element lhs = Element::exp_g(a.coeff(l).reveal()) * Element::exp_h(a_prime.coeff(l).reveal());
    if (lhs != col.product(i)) return false;
  }
  return true;
}

bool PedersenMatrix::verify_point(std::uint64_t i, std::uint64_t m, const Scalar& alpha,
                                  const Scalar& alpha_prime) const {
  const Group& grp = group();
  IndexBases col(grp, t_ + 1, mont_.get(grp, entries_));
  std::vector<Element> inner;
  inner.reserve(t_ + 1);
  for (std::size_t l = 0; l <= t_; ++l) {
    for (std::size_t j = 0; j <= t_; ++j) col.assign(j, entry(j, l), j * (t_ + 1) + l);
    inner.push_back(col.product(m));
  }
  return Element::exp_g(alpha) * Element::exp_h(alpha_prime) == multiexp_index(grp, inner, i);
}

Bytes PedersenMatrix::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(t_));
  for (const Element& e : entries_) w.raw(e.to_bytes());
  return w.take();
}

const Bytes& PedersenMatrix::canonical_bytes() const {
  return wire_.bytes([this] { return encode(); });
}

const Bytes& PedersenMatrix::digest() const {
  return wire_.digest([this] { return encode(); });
}

std::optional<PedersenMatrix> PedersenMatrix::from_bytes(const Group& grp, const Bytes& b,
                                                         std::size_t expect_t,
                                                         bool check_subgroup) {
  try {
    Reader r(b);
    std::uint32_t t = r.u32();
    if (t != expect_t) return std::nullopt;
    std::vector<Element> entries;
    entries.reserve((t + 1) * (t + 1));
    for (std::size_t k = 0; k < std::size_t(t + 1) * (t + 1); ++k) {
      Bytes eb(grp.element_bytes());
      for (auto& byte : eb) byte = r.u8();
      Element e = Element::from_bytes(grp, eb);
      if (e.empty()) return std::nullopt;
      if (check_subgroup && !e.in_subgroup()) return std::nullopt;
      entries.push_back(std::move(e));
    }
    if (!r.done()) return std::nullopt;
    return PedersenMatrix(t, std::move(entries));
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<PedersenMatrix> PedersenMatrix::from_bytes_checked(const Group& grp, const Bytes& b,
                                                                 std::size_t expect_t) {
  return from_bytes(grp, b, expect_t, /*check_subgroup=*/true);
}

}  // namespace dkg::crypto
