#include "crypto/chacha20.hpp"

#include "common/bytes.hpp"

namespace dkg::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32_le(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}
}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const std::array<std::uint8_t, 32>& key,
                                            const std::array<std::uint8_t, 12>& nonce,
                                            std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32_le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32_le(nonce.data() + 4 * i);

  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out{};
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  // The working state holds the key schedule; scrub it before the frames
  // are reused (secret-hygiene: no key material left on the stack).
  secure_wipe(state, sizeof(state));
  secure_wipe(x, sizeof(x));
  return out;
}

}  // namespace dkg::crypto
