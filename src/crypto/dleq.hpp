// Chaum-Pedersen discrete-log-equality proofs: NIZK that
// log_{g1}(h1) == log_{g2}(h2). The application layer uses them to make
// partial decryptions (threshold ElGamal) and VUF evaluations (random
// beacon) publicly verifiable — robustness against Byzantine shareholders.
#pragma once

#include "crypto/drbg.hpp"
#include "crypto/element.hpp"
#include "crypto/secret.hpp"

namespace dkg::crypto {

struct DleqProof {
  Scalar c;  // challenge
  Scalar r;  // response

  Bytes to_bytes() const;
};

/// Proves log_{g1}(h1) == log_{g2}(h2) == x (Fiat-Shamir, deterministic
/// nonce derived from (x, statement)). Witness and nonce stay in the
/// constant-time secret domain until the published response is formed.
DleqProof dleq_prove(const Element& g1, const Element& h1, const Element& g2, const Element& h2,
                     const SecretScalar& x);
inline DleqProof dleq_prove(const Element& g1, const Element& h1, const Element& g2,
                            const Element& h2, const Scalar& x) {
  return dleq_prove(g1, h1, g2, h2, SecretScalar::from_scalar(x));
}

bool dleq_verify(const Element& g1, const Element& h1, const Element& g2, const Element& h2,
                 const DleqProof& proof);

/// Hash arbitrary bytes into the order-q subgroup with unknown discrete log
/// (exponentiation by (p-1)/q of an expanded digest). Domain-separated.
Element hash_to_group(const Group& grp, const Bytes& data);

}  // namespace dkg::crypto
