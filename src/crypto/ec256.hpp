// ec256 backend engine: secp256k1 (y^2 = x^3 + 7 over GF(p), p = 2^256 -
// 2^32 - 977), the short-Weierstrass prime-order curve behind the
// GroupBackend::Ec256 parameter set. The paper argues its protocols for
// generic kappa-bit discrete-log groups (§2.3); this backend instantiates
// them on a curve group where an element is 33 bytes instead of p_bytes and
// a field element is four 64-bit limbs on the stack — no heap per element.
//
// Representation choices, in the order they matter:
//  * Fe: a fixed std::array of 4 little-endian limbs, always canonical in
//    [0, p). All field arithmetic is branch-free (masked folds of the
//    pseudo-Mersenne tail 2^256 = 2^32 + 977 mod p), so the same primitives
//    serve both the variable-time public paths and the constant-time secret
//    ladder without a second implementation.
//  * Point: affine + an explicit infinity flag; the canonical, hashable,
//    encodable form every crypto::Element holds. Compressed encoding is 33
//    bytes (0x02/0x03 || big-endian x; the identity is 33 zero bytes),
//    decode rejects off-curve x, non-canonical field encodings and junk
//    prefixes — the curve has cofactor 1, so "on curve" IS the subgroup
//    check that costs a full powm in the mod-p backend.
//  * Jac: Jacobian projective coordinates (Z == 0 encodes infinity) for the
//    hot chains. multiexp/multiexp_index/FixedBaseTable accumulate in Jac
//    and normalize once at the end (batch_to_affine shares a single field
//    inversion across any number of results).
//
// Constant time: scalar_mul_ct is the SecretScalar ladder — fixed 4-bit
// windows over the full 256-bit limb width, a masked scan of the whole
// precomputed (public-base) table per digit, and a complete masked add that
// handles the infinity and P == Q cases with limb masks instead of
// branches. It is exercised by tools/ctcheck (timing + valgrind poison).
#pragma once

#include <gmp.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/mpz.hpp"

namespace dkg::crypto::ec256 {

/// Field element of GF(p): 4 little-endian 64-bit limbs, canonical [0, p).
using Fe = std::array<std::uint64_t, 4>;

/// Affine point; `inf == 1` is the identity (x and y are then zero).
struct Point {
  Fe x{};
  Fe y{};
  std::uint64_t inf = 1;
};

/// Jacobian point (X/Z^2, Y/Z^3); Z == 0 encodes the identity.
struct Jac {
  Fe X{};
  Fe Y{};
  Fe Z{};
};

/// Compressed encoding width: prefix byte + 32-byte big-endian x.
constexpr std::size_t kEncodedBytes = 33;

/// Curve parameters as hex strings (no 0x prefix) for Group construction:
/// the field prime p and the (prime) group order n.
const char* field_p_hex();
const char* order_n_hex();

/// The standard base point G and the derived Pedersen second generator h
/// (hash-to-curve with an independent domain tag; dlog_G(h) unknown).
const Point& generator();
const Point& pedersen_h();

bool on_curve(const Point& a);
bool eq(const Point& a, const Point& b);

/// 33-byte compressed encoding (see header comment for the format).
Bytes encode(const Point& a);
/// Strict decode: exactly 33 bytes, canonical x < p, point on curve, and
/// the identity only as all-zero bytes. Returns false on any failure.
bool decode(Point& out, const std::uint8_t* b, std::size_t len);

/// Complete variable-time group law on public points.
Point add(const Point& a, const Point& b);
Point negate(const Point& a);
Point scalar_mul(const Point& a, const mpz_class& e);  // e taken mod n
Point scalar_mul_u64(const Point& a, std::uint64_t e);

/// Constant-time scalar multiplication for the SecretScalar domain: `base`
/// is public, the exponent limbs (little-endian, value < n, en limbs) are
/// secret. Runtime depends only on `en`, never on the exponent's value.
Point scalar_mul_ct(const Point& base, const mp_limb_t* e, std::size_t en);

/// Deterministic try-and-increment hash onto the curve (the EC counterpart
/// of the mod-p hash-to-subgroup): sha256 counter stream -> x candidates,
/// first valid x wins, y is the even square root. dlog of the result is
/// unknown for any non-trivially-chosen data.
Point hash_to_curve(std::string_view domain, const Bytes& data);

// --- Jacobian toolkit (the multiexp/sigverify accumulation layer) ----------

Jac to_jac(const Point& a);
Point to_affine(const Jac& a);
/// Normalizes every input with ONE shared field inversion (Montgomery's
/// batch-inversion trick); out.size() == in.size() on return.
void batch_to_affine(const std::vector<Jac>& in, std::vector<Point>& out);

Jac jac_double(const Jac& a);
Jac jac_add(const Jac& a, const Jac& b);
/// Mixed addition (affine b, including b == identity); complete.
Jac jac_add_mixed(const Jac& a, const Point& b);
Jac jac_mul_u64(const Jac& a, std::uint64_t e);
Jac jac_negate(const Jac& a);
/// Variable-time equality of the group elements two Jacobian points name
/// (cross-multiplied ratio compare — no inversion, no normalization).
bool jac_eq(const Jac& a, const Jac& b);

}  // namespace dkg::crypto::ec256
