#include "crypto/bipolynomial.hpp"

namespace dkg::crypto {

BiPolynomial::BiPolynomial(std::size_t t, std::vector<SecretScalar> upper)
    : t_(t), coeffs_(std::move(upper)) {}

std::size_t BiPolynomial::index(std::size_t j, std::size_t l) const {
  if (j > l) std::swap(j, l);
  // Row-major upper triangle of a (t+1)x(t+1) matrix.
  return j * (t_ + 1) - j * (j - 1) / 2 + (l - j);
}

BiPolynomial BiPolynomial::random(const Scalar& secret, std::size_t t, Drbg& rng) {
  return random(SecretScalar::from_scalar(secret), t, rng);
}

BiPolynomial BiPolynomial::random(const SecretScalar& secret, std::size_t t, Drbg& rng) {
  const Group& grp = secret.group();
  std::size_t n_upper = (t + 1) * (t + 2) / 2;
  std::vector<SecretScalar> upper;
  upper.reserve(n_upper);
  for (std::size_t k = 0; k < n_upper; ++k) upper.push_back(SecretScalar::random(grp, rng));
  BiPolynomial f(t, std::move(upper));
  f.coeffs_[f.index(0, 0)] = secret;
  return f;
}

const SecretScalar& BiPolynomial::coeff(std::size_t j, std::size_t l) const {
  return coeffs_.at(index(j, l));
}

Polynomial BiPolynomial::row(std::uint64_t i) const {
  const Group& grp = group();
  Scalar x = Scalar::from_u64(grp, i);
  // a_i(y) coefficient of y^l is sum_j f_{jl} x^j.
  std::vector<SecretScalar> out;
  out.reserve(t_ + 1);
  for (std::size_t l = 0; l <= t_; ++l) {
    SecretScalar acc = coeff(t_, l);
    for (std::size_t j = t_; j-- > 0;) acc = acc * x + coeff(j, l);
    out.push_back(acc);
  }
  return Polynomial(std::move(out));
}

SecretScalar BiPolynomial::eval(const Scalar& x, const Scalar& y) const {
  // Evaluate row polynomial in y at x first, Horner in both variables.
  const Group& grp = group();
  SecretScalar acc = SecretScalar::zero(grp);
  for (std::size_t l = t_ + 1; l-- > 0;) {
    SecretScalar rowv = coeff(t_, l);
    for (std::size_t j = t_; j-- > 0;) rowv = rowv * x + coeff(j, l);
    acc = acc * y + rowv;
  }
  return acc;
}

SecretScalar BiPolynomial::eval_at(std::uint64_t x, std::uint64_t y) const {
  const Group& grp = group();
  return eval(Scalar::from_u64(grp, x), Scalar::from_u64(grp, y));
}

}  // namespace dkg::crypto
