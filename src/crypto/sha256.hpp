// Self-contained SHA-256 (FIPS 180-4). Used for commitment digests,
// signature challenges, and DRBG seeding; keeps the library dependency-free
// beyond GMP.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dkg::crypto {

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& b) { update(b.data(), b.size()); }
  /// Finalizes and returns the 32-byte digest; the object must not be
  /// updated afterwards.
  Bytes finish();

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> h_;
  std::uint64_t total_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
};

/// One-shot digest.
Bytes sha256(const Bytes& data);

/// Digest of the concatenation of several byte strings, each length-framed
/// so the combined encoding is injective.
Bytes sha256_framed(std::initializer_list<const Bytes*> parts);

}  // namespace dkg::crypto
