// Self-contained SHA-256 (FIPS 180-4). Used for commitment digests,
// signature challenges, and DRBG seeding; keeps the library dependency-free
// beyond GMP.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dkg::crypto {

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& b) { update(b.data(), b.size()); }
  /// Finalizes and returns the 32-byte digest; the object must not be
  /// updated afterwards.
  Bytes finish();
  /// Finalizes into a caller-owned buffer — the digest never touches the
  /// heap, so callers hashing secret material (nonce derivation, DRBG
  /// keying) can keep the output in wipeable storage.
  void finish_into(std::uint8_t out[32]);
  /// Wipes the hasher's internal state (buffered input chunk included).
  void wipe() noexcept;

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> h_;
  std::uint64_t total_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
};

/// One-shot digest.
Bytes sha256(const Bytes& data);

/// One-shot digest into a caller-owned buffer; wipes the hasher state before
/// returning. For hashing secret material without heap-resident copies.
void sha256_into(const std::uint8_t* data, std::size_t len, std::uint8_t out[32]);

/// Digest of the concatenation of several byte strings, each length-framed
/// so the combined encoding is injective.
Bytes sha256_framed(std::initializer_list<const Bytes*> parts);

}  // namespace dkg::crypto
