#include "app/threshold_elgamal.hpp"

#include "crypto/lagrange.hpp"

namespace dkg::app {

using crypto::Element;
using crypto::Scalar;

ElGamalCiphertext elgamal_encrypt(const Element& public_key, const Element& m, crypto::Drbg& rng) {
  const crypto::Group& grp = public_key.group();
  Scalar k = Scalar::random(grp, rng);
  return ElGamalCiphertext{Element::exp_g(k), m * public_key.pow(k)};
}

PartialDecryption partial_decrypt(const ElGamalCiphertext& ct, std::uint64_t index,
                                  const crypto::SecretScalar& share) {
  const crypto::Group& grp = share.group();
  Element d = share.commit_to(ct.c1);
  // Prove log_g(g^{s_i}) == log_{c1}(d_i).
  crypto::DleqProof proof =
      crypto::dleq_prove(Element::generator(grp), share.commit_to(), ct.c1, d, share);
  return PartialDecryption{index, std::move(d), std::move(proof)};
}

bool verify_partial(const ElGamalCiphertext& ct, const crypto::FeldmanVector& vec,
                    const PartialDecryption& pd) {
  if (pd.index == 0) return false;
  const crypto::Group& grp = vec.group();
  Element pk_i = vec.eval_commit(pd.index);  // g^{s_i}
  return crypto::dleq_verify(Element::generator(grp), pk_i, ct.c1, pd.d, pd.proof);
}

std::optional<Element> combine_decryption(const ElGamalCiphertext& ct,
                                          const crypto::FeldmanVector& vec, std::size_t t,
                                          const std::vector<PartialDecryption>& partials) {
  const crypto::Group& grp = vec.group();
  std::vector<const PartialDecryption*> valid;
  std::vector<std::uint64_t> xs;
  for (const PartialDecryption& pd : partials) {
    bool dup = false;
    for (std::uint64_t x : xs) dup |= (x == pd.index);
    if (dup || !verify_partial(ct, vec, pd)) continue;
    valid.push_back(&pd);
    xs.push_back(pd.index);
    if (valid.size() == t + 1) break;
  }
  if (valid.size() < t + 1) return std::nullopt;
  // c1^s by Lagrange interpolation in the exponent at 0 (one multi-exp).
  std::vector<std::pair<std::uint64_t, Element>> pts;
  pts.reserve(valid.size());
  for (const PartialDecryption* pd : valid) pts.emplace_back(pd->index, pd->d);
  Element c1_s = crypto::exp_interpolate_at(grp, pts, 0);
  return ct.c2 * c1_s.inverse();
}

}  // namespace dkg::app
