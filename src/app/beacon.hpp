// Distributed randomness beacon — the distributed coin / PRF application the
// paper motivates (§1, refs [4],[7],[8]). Per round r, shareholder i
// publishes a VUF evaluation share U_r^{s_i} (U_r = hash-to-group(r), with a
// DLEQ proof against g^{s_i}); t+1 verified shares combine via Lagrange in
// the exponent to the unique value U_r^s, whose hash is the beacon output.
// Uniqueness of U_r^s makes the coin unbiased and unpredictable until t+1
// nodes evaluate.
#pragma once

#include <optional>
#include <vector>

#include "crypto/dleq.hpp"
#include "crypto/feldman.hpp"

namespace dkg::app {

struct BeaconShare {
  std::uint64_t index = 0;
  std::uint64_t round = 0;
  crypto::Element value;  // U_r^{s_i}
  crypto::DleqProof proof;
};

/// The round's base point U_r (publicly computable).
crypto::Element beacon_base(const crypto::Group& grp, std::uint64_t round);

/// The share never leaves the secret domain: U_r^{s_i} and g^{s_i} are both
/// constant-time commit_to exponentiations.
BeaconShare beacon_evaluate(const crypto::Group& grp, std::uint64_t round, std::uint64_t index,
                            const crypto::SecretScalar& share);

bool beacon_verify_share(const crypto::FeldmanVector& vec, const BeaconShare& bs);

/// Combines t+1 valid shares into the 32-byte beacon output for `round`.
std::optional<Bytes> beacon_combine(const crypto::FeldmanVector& vec, std::size_t t,
                                    std::uint64_t round, const std::vector<BeaconShare>& shares);

}  // namespace dkg::app
