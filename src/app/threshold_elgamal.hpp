// Threshold ElGamal decryption on top of a DKG'd key (paper §1: "dealerless
// threshold public-key encryption"). Ciphertext (c1, c2) = (g^k, m * y^k);
// shareholder i publishes d_i = c1^{s_i} with a DLEQ proof against its
// public verification value g^{s_i} (from the DKG commitment), and any t+1
// verified partials combine via Lagrange in the exponent to c1^s.
#pragma once

#include <optional>
#include <vector>

#include "crypto/dleq.hpp"
#include "crypto/feldman.hpp"

namespace dkg::app {

struct ElGamalCiphertext {
  crypto::Element c1;  // g^k
  crypto::Element c2;  // m * y^k
};

/// Encrypts a group-element message under the DKG public key y = vec.c0().
ElGamalCiphertext elgamal_encrypt(const crypto::Element& public_key, const crypto::Element& m,
                                  crypto::Drbg& rng);

struct PartialDecryption {
  std::uint64_t index = 0;
  crypto::Element d;  // c1^{s_i}
  crypto::DleqProof proof;
};

/// Shareholder-side: produce a verifiable partial decryption. The share
/// stays in the secret domain (constant-time commit_to exponentiations).
PartialDecryption partial_decrypt(const ElGamalCiphertext& ct, std::uint64_t index,
                                  const crypto::SecretScalar& share);

/// Anyone-side: verify a partial against the DKG verification vector.
bool verify_partial(const ElGamalCiphertext& ct, const crypto::FeldmanVector& vec,
                    const PartialDecryption& pd);

/// Combines t+1 verified partials: m = c2 / c1^s. Returns nullopt if fewer
/// than t+1 distinct valid partials are supplied.
std::optional<crypto::Element> combine_decryption(const ElGamalCiphertext& ct,
                                                  const crypto::FeldmanVector& vec, std::size_t t,
                                                  const std::vector<PartialDecryption>& partials);

}  // namespace dkg::app
