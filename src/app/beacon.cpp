#include "app/beacon.hpp"

#include "common/serialize.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/sha256.hpp"

namespace dkg::app {

using crypto::Element;
using crypto::Scalar;

Element beacon_base(const crypto::Group& grp, std::uint64_t round) {
  Writer w;
  w.str("hybriddkg/beacon/base");
  w.u64(round);
  return crypto::hash_to_group(grp, w.data());
}

BeaconShare beacon_evaluate(const crypto::Group& grp, std::uint64_t round, std::uint64_t index,
                            const crypto::SecretScalar& share) {
  Element base = beacon_base(grp, round);
  Element value = share.commit_to(base);
  crypto::DleqProof proof =
      crypto::dleq_prove(Element::generator(grp), share.commit_to(), base, value, share);
  return BeaconShare{index, round, std::move(value), std::move(proof)};
}

bool beacon_verify_share(const crypto::FeldmanVector& vec, const BeaconShare& bs) {
  if (bs.index == 0) return false;
  const crypto::Group& grp = vec.group();
  Element base = beacon_base(grp, bs.round);
  Element pk_i = vec.eval_commit(bs.index);
  return crypto::dleq_verify(Element::generator(grp), pk_i, base, bs.value, bs.proof);
}

std::optional<Bytes> beacon_combine(const crypto::FeldmanVector& vec, std::size_t t,
                                    std::uint64_t round, const std::vector<BeaconShare>& shares) {
  const crypto::Group& grp = vec.group();
  std::vector<const BeaconShare*> valid;
  std::vector<std::uint64_t> xs;
  for (const BeaconShare& bs : shares) {
    if (bs.round != round) continue;
    bool dup = false;
    for (std::uint64_t x : xs) dup |= (x == bs.index);
    if (dup || !beacon_verify_share(vec, bs)) continue;
    valid.push_back(&bs);
    xs.push_back(bs.index);
    if (valid.size() == t + 1) break;
  }
  if (valid.size() < t + 1) return std::nullopt;
  // g^{s * log_g(base)} by Lagrange interpolation in the exponent at 0.
  std::vector<std::pair<std::uint64_t, Element>> pts;
  pts.reserve(valid.size());
  for (const BeaconShare* bs : valid) pts.emplace_back(bs->index, bs->value);
  Element combined = crypto::exp_interpolate_at(grp, pts, 0);
  Writer w;
  w.str("hybriddkg/beacon/out");
  w.u64(round);
  w.blob(combined.to_bytes());
  return crypto::sha256(w.data());
}

}  // namespace dkg::app
