#include "app/threshold_schnorr.hpp"

#include "common/serialize.hpp"
#include "crypto/lagrange.hpp"
#include "crypto/sha256.hpp"

namespace dkg::app {

using crypto::Element;
using crypto::Scalar;

crypto::Scalar SigningSession::challenge() const {
  // Must match crypto/schnorr.cpp's challenge derivation so the combined
  // signature verifies under schnorr_verify.
  Writer w;
  w.str("hybriddkg/schnorr/v1");
  w.blob(nonce_point.to_bytes());
  w.blob(key_vec.c0().to_bytes());
  w.blob(message);
  return Scalar::hash_to_scalar(nonce_point.group(), w.data());
}

PartialSignature partial_sign(const SigningSession& session, std::uint64_t index,
                              const crypto::SecretScalar& key_share,
                              const crypto::SecretScalar& nonce_share) {
  Scalar c = session.challenge();
  // reveal-ok: sigma_i = k_i + c*s_i is the published partial signature.
  return PartialSignature{index, (nonce_share + key_share * c).reveal()};
}

bool verify_partial(const SigningSession& session, const PartialSignature& ps) {
  if (ps.index == 0) return false;
  Scalar c = session.challenge();
  // Both eval_commits are index-power multi-exps (Horner in the exponent).
  Element expected =
      session.nonce_vec.eval_commit(ps.index) * session.key_vec.eval_commit(ps.index).pow(c);
  return Element::exp_g(ps.sigma) == expected;
}

std::optional<crypto::Signature> combine_signature(const SigningSession& session, std::size_t t,
                                                   const std::vector<PartialSignature>& partials) {
  const crypto::Group& grp = session.nonce_point.group();
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (const PartialSignature& ps : partials) {
    bool dup = false;
    for (const auto& [x, y] : pts) dup |= (x == ps.index);
    if (dup || !verify_partial(session, ps)) continue;
    pts.emplace_back(ps.index, ps.sigma);
    if (pts.size() == t + 1) break;
  }
  if (pts.size() < t + 1) return std::nullopt;
  Scalar s = crypto::interpolate_at(grp, pts, 0);
  return crypto::Signature{session.challenge(), s};
}

}  // namespace dkg::app
