// Unified experiment engine (layer above sim/vss/dkg/proactive/baseline):
// a ScenarioSpec names one fully-deterministic protocol run — which harness
// to drive (Variant), the group and n/t/f regime, the seed, commitment mode,
// delay model and fault plan — and a ScenarioResult carries its simulated
// metrics plus the measured CPU wall-clock. Every scenario is self-contained
// given its spec, so independent scenarios are embarrassingly parallel; the
// SweepDriver (sweep.hpp) exploits exactly that.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "crypto/group.hpp"
#include "engine/adversary_spec.hpp"
#include "sim/message.hpp"
#include "vss/hybridvss.hpp"

namespace dkg::engine {

/// Which protocol harness executes the scenario (the paper's protagonists
/// plus the comparison protocols its evaluation contrasts against).
enum class Variant {
  HybridVss,     // one HybridVSS sharing (paper §3)
  Avss,          // AVSS comparison implementation (paper §3 vs [17])
  Dkg,           // HybridDKG via core::DkgRunner (paper §4)
  Proactive,     // DKG + one share-renewal phase (paper §5)
  NodeAdd,       // group modification: node addition (paper §6.2)
  JointFeldman,  // synchronous baseline [1]
  Gennaro,       // synchronous baseline [9]
};

const char* variant_name(Variant v);

/// One crash (and optional recovery) in a scenario's fault plan.
/// recover_at == 0 means the node stays down for the whole run.
struct CrashSpec {
  sim::NodeId node = 0;
  sim::Time crash_at = 0;
  sim::Time recover_at = 0;
};

/// Full description of one deterministic protocol run. Plain data: specs are
/// cheap to copy, compare and expand into grids, and carry no simulator
/// state, so any thread may execute any spec.
struct ScenarioSpec {
  std::string label;  // row name in tables and BENCH_*.json
  Variant variant = Variant::Dkg;
  const crypto::Group* grp = &crypto::Group::tiny256();
  std::size_t n = 7;
  std::size_t t = 1;
  std::size_t f = 1;
  std::uint64_t seed = 1;
  vss::CommitmentMode mode = vss::CommitmentMode::Full;
  std::uint32_t tau = 1;
  std::uint64_t d_kappa = 8;

  /// Link delays: uniform in [delay_lo, delay_hi] ticks, plus an optional
  /// adversarial penalty on links touching slow_nodes (§2.1).
  sim::Time delay_lo = 10;
  sim::Time delay_hi = 100;
  std::set<sim::NodeId> slow_nodes;
  sim::Time slow_penalty = 0;
  /// 0 = harness default (comfortably above an honest VSS round trip).
  sim::Time timeout_base = 0;

  /// Crash/recovery fault plan applied before the run starts.
  std::vector<CrashSpec> crashes;
  /// HybridVss only: post a RecoverOp shortly after each recovery so the
  /// recovering node exercises the §3 help/replay flow.
  bool post_recover_op = false;
  /// Dkg only: completion quorum for run_to_completion (0 = all honest).
  std::size_t min_outputs = 0;
  /// Proactive only: nodes crashed (and later recovered) mid-renewal.
  std::vector<sim::NodeId> renewal_crashed;
  /// Adversary strategy for this run (engine/adversary_spec.hpp). Inactive
  /// (kind == None) specs behave — and seed — exactly as before the
  /// adversary layer existed; active ones add the safety/liveness verdict
  /// extras and mix their parameters into derived_seed.
  AdversarySpec adversary;

  /// Event budget for discrete-event runs / round budget for the
  /// synchronous baselines. Exhaustion marks the result !completed.
  std::uint64_t max_events = 50'000'000;
  std::size_t max_rounds = 64;

  /// Intra-scenario verification parallelism (engine/verify_pool.hpp): the
  /// scenario's cap on verify threads. 0 inherits the process-wide
  /// VerifyPool::configure() value; 1 forces sequential verification for
  /// this scenario regardless of pool size. Simulated metrics are
  /// bit-identical for every value — only cpu_ms moves.
  unsigned verify_jobs = 0;

  /// Stable per-scenario seed: mixes `seed` with the scenario's identity
  /// (variant, group, n/t/f, mode, label and an optional caller domain) so
  /// grids can derive distinct, reproducible sub-seeds without hand-picking
  /// constants. Pure function of the spec — never of address or time.
  std::uint64_t derived_seed(std::string_view domain = {}) const;
};

/// Typed metric value for harness-specific result columns.
using MetricValue = std::variant<std::uint64_t, std::int64_t, double, bool, std::string>;

/// Outcome of one scenario. `completed` is the engine-level truth about
/// whether the run finished inside its event budget (the old benches used
/// to ignore this and happily emit metrics for incomplete runs); `ok`
/// additionally folds in the harness's own protocol-level success checks.
struct ScenarioResult {
  bool completed = false;
  bool ok = false;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  sim::Time completion_time = 0;
  /// Measured wall-clock of this scenario on its worker thread
  /// (steady_clock around the harness run) — the only nondeterministic
  /// field. Under concurrent jobs, scheduler contention can inflate it;
  /// record comparable trajectories with --jobs 1.
  double cpu_ms = 0.0;
  /// Harness-specific columns, in emission order (e.g. vss_messages,
  /// lead_changes, renewal_bytes).
  std::vector<std::pair<std::string, MetricValue>> extras;

  void set_extra(std::string key, MetricValue v) {
    extras.emplace_back(std::move(key), std::move(v));
  }
  const MetricValue* extra(std::string_view key) const;
  /// Convenience for table printing: the extra as u64, or `fallback`.
  std::uint64_t extra_u64(std::string_view key, std::uint64_t fallback = 0) const;
};

}  // namespace dkg::engine
