// Engine-level adversary selection: an AdversarySpec on ScenarioSpec picks
// one composable strategy from the library (sim/adversary.hpp + the
// Byzantine node implementations in vss/ and dkg/) and parameterizes it.
// Every ScenarioRunner threads the spec through its harness, so each bench
// grid can run under each adversary with transcripts that stay a pure
// function of ScenarioSpec::derived_seed.
//
// Strategy -> paper-claim map (details in EXPERIMENTS.md):
//  * equivocating/inconsistent/selective/silent dealers — §3 VSS safety
//    (E11 agreement under equivocation; bad-dealer disqualification);
//  * silent/selective-delivery leaders — §4 Fig 3 leader change liveness;
//  * colluding t-subsets (Coalition) — §2.2 secrecy: the union of t views
//    must not determine the secret;
//  * adaptive delay — §2.1/E10: stalling the adversary's own frontier links
//    must not slow the honest mesh;
//  * healing partition — weak liveness: stall while split, finish after;
//  * churn storm — §2.2 crash/recovery budget (f concurrent, d(kappa)
//    lifetime) under the §3/§5.3 recovery flows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "sim/faultplan.hpp"

namespace dkg::engine {

struct ScenarioSpec;
struct ScenarioResult;

enum class AdversaryKind {
  None,
  SilentDealer,        // dealer never sends (VSS grids; fail-silent dealer elsewhere)
  EquivocatingDealer,  // k-way commitment equivocation (classes knob)
  InconsistentDealer,  // wrong-polynomial rows to a victim set
  SelectiveDealer,     // valid send to a chosen few, silence to the rest
  SilentLeader,        // DKG leader never proposes (timeout + lead-ch path)
  SelectiveLeader,     // genuine proposal to one short of the echo quorum
  Collusion,           // silent t-subset pooling received state (Coalition)
  AdaptiveDelay,       // frontier-phase stalling on corrupted links (E10)
  Partition,           // network split with a scheduled heal
  ChurnStorm,          // crash/recover storm within the f / d(kappa) budget
};

/// Parameter block for one adversary strategy. All fields have derivable
/// defaults (0 / empty = "derive from the scenario"), so a bare kind is a
/// complete spec. Inactive specs (kind == None) leave every scenario
/// bit-identical to the pre-adversary engine, including derived_seed.
struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::None;

  /// Nodes the adversary controls / targets. Empty = derive per kind:
  /// dealer and leader kinds take node 1 (the dealer / view-1 leader),
  /// Collusion and AdaptiveDelay the t highest ids, Partition a minority
  /// side of min(t+f, (n-1)/2) highest ids, ChurnStorm none (its victims
  /// crash and recover; they are never Byzantine).
  std::set<sim::NodeId> corrupted;

  /// EquivocatingDealer: distinct commitments dealt round-robin (>= 2).
  std::size_t classes = 2;
  /// InconsistentDealer: victim count (0 = legacy even-id victim set).
  std::size_t victims = 0;
  /// SelectiveDealer: recipients of the valid send (0 = t+1).
  std::size_t recipients = 0;

  /// AdaptiveDelay: penalty added to frontier-phase corrupted links.
  sim::Time penalty = 100'000;

  /// Partition: split/heal schedule. heal_at == 0 derives both: split at
  /// time 0, heal at (delay_hi + 1) * 3 — mid-protocol for every grid.
  sim::Time split_at = 0;
  sim::Time heal_at = 0;

  /// ChurnStorm: lifetime crash budget (0 = 2f) and placement horizon
  /// (0 = (delay_hi + 1) * 4).
  std::size_t storm_crashes = 0;
  sim::Time storm_horizon = 0;

  bool active() const { return kind != AdversaryKind::None; }
};

/// Stable CLI/JSON name of a kind ("silent-dealer", "adaptive-delay", ...).
const char* adversary_name(AdversaryKind k);
/// Inverse of adversary_name; nullopt for unknown names.
std::optional<AdversaryKind> adversary_from_name(std::string_view name);
/// Every kind except None, in declaration order (bench grid axis).
const std::vector<AdversaryKind>& all_adversary_kinds();

/// True for kinds that physically replace nodes with Byzantine
/// implementations (dealer/leader kinds, Collusion) — replaced nodes are
/// excluded from honest-output checks. Delay/partition/churn targets stay
/// honest protocol participants.
bool adversary_replaces_nodes(AdversaryKind k);

/// The resolved corrupted/target set for this scenario (explicit override
/// or the per-kind derivation documented on AdversarySpec::corrupted).
std::set<sim::NodeId> adversary_corrupted(const ScenarioSpec& spec);

/// Whether the hybrid model still promises completion of the whole honest
/// mesh under this spec's adversary. False only where the paper makes no
/// liveness claim: Byzantine dealers (and the leader kinds, which degrade
/// to a fail-silent dealer) on the VSS grids — liveness is promised for
/// honest dealers only — and churn on AVSS (which, unlike HybridVSS, has
/// no §3/§5.3 recovery flow — exactly the paper's argument for it).
bool adversary_expects_liveness(const ScenarioSpec& spec);

/// The scenario's delay model: UniformDelay, wrapped by AdversarialDelay
/// when slow_nodes/slow_penalty are set, wrapped by the adversary's
/// AdaptiveDelay/PartitionDelay when one of those kinds is active.
std::unique_ptr<sim::DelayModel> make_delay_model(const ScenarioSpec& spec);

/// The ChurnStorm fault plan: storm_crashes windows over nodes 2..n, at
/// most f concurrently down, seeded from derived_seed("adversary/churn").
sim::FaultPlan churn_storm_plan(const ScenarioSpec& spec);

/// Appends the safety/liveness verdict columns every adversarial run emits
/// ("adversary", "honest_completed", "honest_total", "safety_ok",
/// "liveness_ok") and folds them into res.ok. `honest_done` of
/// `honest_total` honest nodes finished; `agreement` is the runner's
/// variant-specific honest-output agreement predicate.
void set_adversary_verdicts(const ScenarioSpec& spec, ScenarioResult& res,
                            std::size_t honest_done, std::size_t honest_total, bool agreement);

}  // namespace dkg::engine
