// Pool-backed helpers over the crypto layer's splittable verification entry
// points (feldman/pedersen range checks, chunked batch verifies, chunked
// verify_many). Every helper is a drop-in for its sequential counterpart:
// when the pool is inactive (knob off, jobs <= 1, or already inside a pool
// task) it calls the exact sequential code path, and when active it splits
// the work across a VerifyScope and merges results in deterministic spec
// order — verdicts, bad_signers attribution and all observable effects are
// identical either way. See verify_pool.hpp for the purity contract.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keyring.hpp"
#include "crypto/pedersen.hpp"

namespace dkg::engine {

/// verify_poly with the t+1 column checks split across the pool.
bool parallel_verify_poly(const crypto::FeldmanMatrix& c, std::uint64_t i,
                          const crypto::Polynomial& a);
/// verify_poly_col with the t+1 row checks split across the pool.
bool parallel_verify_poly_col(const crypto::FeldmanMatrix& c, std::uint64_t i,
                              const crypto::Polynomial& b);
/// PedersenMatrix::verify_poly, column-split.
bool parallel_verify_poly(const crypto::PedersenMatrix& c, std::uint64_t i,
                          const crypto::Polynomial& a, const crypto::Polynomial& a_prime);

/// row_commitment / col_commitment with the t+1 entry products split across
/// the pool (identical entries, identical order).
crypto::FeldmanVector parallel_row_commitment(const crypto::FeldmanMatrix& c, std::uint64_t i);
crypto::FeldmanVector parallel_col_commitment(const crypto::FeldmanMatrix& c, std::uint64_t m);

/// The echo/ready fan-out evaluations row(1..n), revealed for their
/// recipients, computed index-parallel. out[j-1] = row(j). Pure function of
/// (row, n): identical values in any mode.
std::vector<crypto::Scalar> parallel_eval_row(const crypto::Polynomial& row, std::size_t n);

/// verify_share_batch, chunked. Pool-off runs the exact sequential RLC over
/// `rng`; pool-on splits into fixed-size chunks with fork()-derived
/// coefficient streams (layout independent of the job count, so the verdict
/// does not depend on --verify-jobs). Both sides accept every honest input
/// and reject bad input whp; callers already per-share-fallback on reject.
/// The caller must not rely on `rng`'s position afterwards.
bool parallel_verify_share_batch(const crypto::FeldmanVector& vec,
                                 const std::vector<std::pair<std::uint64_t, crypto::Scalar>>& shares,
                                 crypto::Drbg& rng);

/// Keyring::verify_many, chunked across the pool. The merged `bad` list is
/// provably identical to the sequential one for any chunking: verify_many
/// emits out-of-range refs in scan order first, then failed signers in check
/// order, and concatenating contiguous chunks preserves both orders.
bool parallel_verify_many(const crypto::Keyring& ring,
                          const std::vector<crypto::Keyring::SignerRef>& refs,
                          const Bytes& payload, std::vector<std::uint32_t>* bad);

}  // namespace dkg::engine
