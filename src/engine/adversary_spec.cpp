#include "engine/adversary_spec.hpp"

#include <algorithm>

#include "engine/scenario.hpp"
#include "sim/adversary.hpp"

namespace dkg::engine {

const char* adversary_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::None: return "none";
    case AdversaryKind::SilentDealer: return "silent-dealer";
    case AdversaryKind::EquivocatingDealer: return "equivocating-dealer";
    case AdversaryKind::InconsistentDealer: return "inconsistent-dealer";
    case AdversaryKind::SelectiveDealer: return "selective-dealer";
    case AdversaryKind::SilentLeader: return "silent-leader";
    case AdversaryKind::SelectiveLeader: return "selective-leader";
    case AdversaryKind::Collusion: return "collusion";
    case AdversaryKind::AdaptiveDelay: return "adaptive-delay";
    case AdversaryKind::Partition: return "partition";
    case AdversaryKind::ChurnStorm: return "churn-storm";
  }
  return "unknown";
}

std::optional<AdversaryKind> adversary_from_name(std::string_view name) {
  for (AdversaryKind k : all_adversary_kinds()) {
    if (name == adversary_name(k)) return k;
  }
  if (name == "none") return AdversaryKind::None;
  return std::nullopt;
}

const std::vector<AdversaryKind>& all_adversary_kinds() {
  static const std::vector<AdversaryKind> kinds = {
      AdversaryKind::SilentDealer,   AdversaryKind::EquivocatingDealer,
      AdversaryKind::InconsistentDealer, AdversaryKind::SelectiveDealer,
      AdversaryKind::SilentLeader,   AdversaryKind::SelectiveLeader,
      AdversaryKind::Collusion,      AdversaryKind::AdaptiveDelay,
      AdversaryKind::Partition,      AdversaryKind::ChurnStorm,
  };
  return kinds;
}

bool adversary_replaces_nodes(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::SilentDealer:
    case AdversaryKind::EquivocatingDealer:
    case AdversaryKind::InconsistentDealer:
    case AdversaryKind::SelectiveDealer:
    case AdversaryKind::SilentLeader:
    case AdversaryKind::SelectiveLeader:
    case AdversaryKind::Collusion:
      return true;
    case AdversaryKind::None:
    case AdversaryKind::AdaptiveDelay:
    case AdversaryKind::Partition:
    case AdversaryKind::ChurnStorm:
      return false;
  }
  return false;
}

namespace {

std::set<sim::NodeId> highest_ids(std::size_t n, std::size_t count) {
  std::set<sim::NodeId> out;
  for (std::size_t k = 0; k < count && k < n; ++k) out.insert(n - k);
  return out;
}

}  // namespace

std::set<sim::NodeId> adversary_corrupted(const ScenarioSpec& spec) {
  const AdversarySpec& adv = spec.adversary;
  if (!adv.corrupted.empty()) return adv.corrupted;
  switch (adv.kind) {
    case AdversaryKind::SilentDealer:
    case AdversaryKind::EquivocatingDealer:
    case AdversaryKind::InconsistentDealer:
    case AdversaryKind::SelectiveDealer:
    case AdversaryKind::SilentLeader:
    case AdversaryKind::SelectiveLeader:
      return {1};  // the VSS dealer / view-1 leader
    case AdversaryKind::Collusion:
      return highest_ids(spec.n, spec.t);
    case AdversaryKind::AdaptiveDelay:
      return highest_ids(spec.n, std::max<std::size_t>(1, spec.t));
    case AdversaryKind::Partition: {
      std::size_t side = std::min(spec.t + spec.f, spec.n > 0 ? (spec.n - 1) / 2 : 0);
      return highest_ids(spec.n, std::max<std::size_t>(1, side));
    }
    case AdversaryKind::None:
    case AdversaryKind::ChurnStorm:
      return {};
  }
  return {};
}

bool adversary_expects_liveness(const ScenarioSpec& spec) {
  switch (spec.adversary.kind) {
    case AdversaryKind::SilentDealer:
    case AdversaryKind::EquivocatingDealer:
    case AdversaryKind::InconsistentDealer:
    case AdversaryKind::SelectiveDealer:
    case AdversaryKind::SilentLeader:
    case AdversaryKind::SelectiveLeader:
      // A Byzantine dealer voids the VSS liveness promise (§3: liveness
      // only for honest dealers) — and a lone sharing has no leader role,
      // so the leader kinds degrade to a fail-silent dealer there. On the
      // DKG-family grids the corrupted node is merely one dealer among n
      // (or one leader among n candidate leaders), and the remaining
      // honest nodes carry completion.
      return spec.variant != Variant::HybridVss && spec.variant != Variant::Avss;
    case AdversaryKind::ChurnStorm:
      // AVSS has no recovery/help flow: a crashed node loses messages for
      // good, so only HybridVSS-family protocols promise completion under
      // churn (the paper's §3 recovery argument).
      return spec.variant != Variant::Avss;
    case AdversaryKind::None:
    case AdversaryKind::Collusion:
    case AdversaryKind::AdaptiveDelay:
    case AdversaryKind::Partition:
      return true;
  }
  return true;
}

std::unique_ptr<sim::DelayModel> make_delay_model(const ScenarioSpec& spec) {
  std::unique_ptr<sim::DelayModel> d =
      std::make_unique<sim::UniformDelay>(spec.delay_lo, spec.delay_hi);
  if (!spec.slow_nodes.empty() && spec.slow_penalty > 0) {
    d = std::make_unique<sim::AdversarialDelay>(std::move(d), spec.slow_nodes,
                                                spec.slow_penalty);
  }
  const AdversarySpec& adv = spec.adversary;
  switch (adv.kind) {
    case AdversaryKind::AdaptiveDelay:
      d = std::make_unique<sim::AdaptiveDelay>(std::move(d), adversary_corrupted(spec),
                                               adv.penalty);
      break;
    case AdversaryKind::Partition: {
      sim::Time heal = adv.heal_at != 0 ? adv.heal_at : (spec.delay_hi + 1) * 3;
      d = std::make_unique<sim::PartitionDelay>(std::move(d), adversary_corrupted(spec),
                                                adv.split_at, heal);
      break;
    }
    default:
      break;
  }
  return d;
}

sim::FaultPlan churn_storm_plan(const ScenarioSpec& spec) {
  const AdversarySpec& adv = spec.adversary;
  // Node 1 (dealer / view-1 leader) is spared so churn composes with the
  // protocol-critical roles instead of degenerating into a dealer fault.
  std::vector<sim::NodeId> candidates;
  for (sim::NodeId i = 2; i <= spec.n; ++i) candidates.push_back(i);
  std::size_t total = adv.storm_crashes != 0 ? adv.storm_crashes : 2 * spec.f;
  sim::Time horizon = adv.storm_horizon != 0 ? adv.storm_horizon : (spec.delay_hi + 1) * 4;
  crypto::Drbg rng(spec.derived_seed("adversary/churn"));
  return sim::FaultPlan::random(candidates, spec.f, total, horizon,
                                /*min_outage=*/spec.delay_hi + 1,
                                /*max_outage=*/(spec.delay_hi + 1) * 6, rng);
}

void set_adversary_verdicts(const ScenarioSpec& spec, ScenarioResult& res,
                            std::size_t honest_done, std::size_t honest_total, bool agreement) {
  bool liveness =
      !adversary_expects_liveness(spec) || (res.completed && honest_done == honest_total);
  res.set_extra("adversary", std::string(adversary_name(spec.adversary.kind)));
  res.set_extra("honest_completed", static_cast<std::uint64_t>(honest_done));
  res.set_extra("honest_total", static_cast<std::uint64_t>(honest_total));
  res.set_extra("safety_ok", agreement);
  res.set_extra("liveness_ok", liveness);
  res.ok = agreement && liveness;
}

}  // namespace dkg::engine
