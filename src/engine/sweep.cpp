#include "engine/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace dkg::engine {

namespace {

ScenarioResult timed_run(const ScenarioSpec& spec) {
  auto start = std::chrono::steady_clock::now();
  ScenarioResult res;
  try {
    res = run_scenario(spec);
  } catch (const std::exception& e) {
    // A throwing harness is a failed scenario, not a failed sweep: record
    // it so the bench can exit non-zero with the other results intact.
    res = ScenarioResult{};
    res.set_extra("error", std::string(e.what()));
  }
  auto end = std::chrono::steady_clock::now();
  res.cpu_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return res;
}

}  // namespace

unsigned SweepDriver::default_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<ScenarioResult> SweepDriver::run(unsigned jobs) const {
  if (jobs == 0) jobs = default_jobs();
  std::vector<ScenarioResult> results(specs_.size());
  if (jobs <= 1 || specs_.size() <= 1) {
    for (std::size_t i = 0; i < specs_.size(); ++i) results[i] = timed_run(specs_[i]);
    return results;
  }
  // Work-stealing by atomic index: each worker claims the next unstarted
  // spec and writes its own result slot, so merge order is spec order by
  // construction and no locking is needed.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs_.size()) return;
      results[i] = timed_run(specs_[i]);
    }
  };
  std::vector<std::thread> pool;
  std::size_t count = std::min<std::size_t>(jobs, specs_.size());
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return results;
}

}  // namespace dkg::engine
